module synergy

go 1.24
