// Viewmaint: the read-committed isolation protocol under concurrency.
//
// Demonstrates §VIII-B/C live: a writer repeatedly performs multi-row view
// updates (renaming an employee propagates to every Employee-Works_On view
// row through the 6-step mark/update/unmark procedure) while concurrent
// readers scan the view. Readers restart whenever they observe a dirty mark,
// so in-progress updates are never visible — the read-committed guarantee.
// (Rows committed between scanner batches can still differ within one scan;
// that is permitted by read committed and counted separately.)
//
//	go run ./examples/viewmaint
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
	"synergy/internal/synergy"
)

func main() {
	workload := append(schema.CompanyWorkload(), "UPDATE Employee SET EName = ? WHERE EID = ?")
	sys, err := synergy.New(schema.Company(), schema.CompanyRoots(), workload, synergy.Config{})
	if err != nil {
		log.Fatal(err)
	}

	const employees = 8
	var addr, dept, emp, wo []schema.Row
	for a := int64(1); a <= 4; a++ {
		addr = append(addr, schema.Row{"AID": a, "Street": fmt.Sprintf("%d Oak", a), "City": "N", "Zip": "1"})
	}
	dept = append(dept, schema.Row{"DNo": int64(1), "DName": "eng"})
	for e := int64(1); e <= employees; e++ {
		emp = append(emp, schema.Row{"EID": e, "EName": fmt.Sprintf("emp-%d", e),
			"EHome_AID": (e % 4) + 1, "EOffice_AID": (e % 4) + 1, "E_DNo": int64(1)})
		for p := int64(1); p <= 4; p++ {
			wo = append(wo, schema.Row{"WO_EID": e, "WO_PNo": p, "Hours": e*10 + p})
		}
	}
	for table, rows := range map[string][]schema.Row{
		"Address": addr, "Department": dept, "Employee": emp, "Works_On": wo,
		"Project": {{"PNo": int64(1), "PName": "x", "P_DNo": int64(1)}}, "Dependent": {},
	} {
		if err := sys.LoadBase(table, rows); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.BuildViews(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("writer: renaming employee 2 in a loop (multi-row view update, 6-step §VIII-B)")
	fmt.Println("readers: scanning Employee-Works_On concurrently (restart on dirty mark, §VIII-C)")
	fmt.Println()

	scan := sqlparser.MustParse(
		`SELECT * FROM Employee as e, Works_On as wo WHERE e.EID = wo.WO_EID and wo.Hours > 0`,
	).(*sqlparser.SelectStmt)
	update := sqlparser.MustParse("UPDATE Employee SET EName = ? WHERE EID = ?")

	var (
		writerWG  sync.WaitGroup
		readerWG  sync.WaitGroup
		stop      = make(chan struct{})
		writes    atomic.Int64
		reads     atomic.Int64
		restarts  atomic.Int64
		starved   atomic.Int64
		torn      atomic.Int64
		markSeen  atomic.Int64
		writerErr atomic.Value
	)

	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; i < 300; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("renamed-%04d", i)
			if err := sys.Exec(sim.NewCtx(), update, []schema.Value{name, int64(2)}); err != nil {
				writerErr.Store(err)
				return
			}
			writes.Add(1)
			// Brief yield so readers interleave with the
			// mark/update/unmark window.
			if i%20 == 19 {
				runtime.Gosched()
			}
		}
	}()

	for r := 0; r < 3; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for i := 0; i < 400; i++ {
				ctx := sim.NewCtx()
				rs, err := sys.Query(ctx, scan, nil)
				if err != nil {
					// Restart budget exhausted under write
					// pressure: back off and try again.
					starved.Add(1)
					restarts.Add(ctx.Snapshot().Restarts)
					time.Sleep(200 * time.Microsecond)
					continue
				}
				reads.Add(1)
				restarts.Add(ctx.Snapshot().Restarts)
				// Consistency check: employee 2's rows must all carry
				// the same name within one scan (per-row atomicity +
				// restart protocol).
				names := map[string]bool{}
				for _, row := range rs.Rows {
					if row["EID"].(int64) != 2 {
						continue
					}
					names[row["EName"].(string)] = true
					if row["_dirty"] != nil {
						markSeen.Add(1)
					}
				}
				if len(names) > 1 {
					// Permitted under read committed: commits
					// landing between scanner batches.
					torn.Add(1)
					_ = keys(names)
				}
			}
		}()
	}
	readerWG.Wait()
	close(stop)
	writerWG.Wait()
	if err, ok := writerErr.Load().(error); ok && err != nil {
		log.Fatal(err)
	}

	fmt.Printf("writes committed:          %d\n", writes.Load())
	fmt.Printf("scans completed:           %d\n", reads.Load())
	fmt.Printf("dirty-mark restarts:       %d\n", restarts.Load())
	fmt.Printf("scans starved (retried):   %d\n", starved.Load())
	fmt.Printf("dirty marks in results:    %d (must be 0)\n", markSeen.Load())
	fmt.Printf("cross-batch name changes:  %d (allowed under read committed)\n", torn.Load())
	if markSeen.Load() == 0 {
		fmt.Println("\nread-committed holds: no scan ever returned a dirty-marked row.")
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
