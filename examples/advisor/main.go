// Advisor: schema-aware vs workload-only view selection (§III-3, §IX-D2).
//
// Runs both selection mechanisms over the identical TPC-W workload and
// database statistics and prints their chosen view sets side by side:
//
//   - Synergy's schema-based/workload-driven mechanism (§V, §VI), which only
//     materializes key/foreign-key paths inside rooted trees, and
//   - the schema-relationships-UNaware tuning advisor (MVCC-UA), which
//     materializes whole query results under a storage budget.
//
// The contrast is the design argument of the paper: the advisor picks one
// large aggregate (great for Q10, useless elsewhere), while Synergy covers
// ten of eleven joins with composable hierarchy views.
//
//	go run ./examples/advisor
package main

import (
	"fmt"
	"log"

	"synergy/internal/core"
	"synergy/internal/sqlparser"
	"synergy/internal/tpcw"
	"synergy/internal/tuning"
)

func main() {
	const customers = 500
	data := tpcw.Generate(customers, 7)
	stats := data.Stats()

	// Synergy's mechanism.
	w, err := core.ParseWorkload(tpcw.WorkloadSQL())
	if err != nil {
		log.Fatal(err)
	}
	design, err := core.BuildDesign(tpcw.Schema(), tpcw.Roots(), w)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Synergy: schema-based, workload-driven (§V, §VI) ===")
	fmt.Printf("roots: %v\n", design.Roots)
	for _, v := range design.Views {
		fmt.Printf("  view %-28s key=(%v) root=%s\n", v.DisplayName(), v.Key, v.Root)
	}
	covered := 0
	for _, sel := range design.Workload.Selects() {
		if design.Rewritten[sel].UsesViews() {
			covered++
		}
	}
	fmt.Printf("queries rewritten to views: %d of %d\n\n", covered, len(design.Workload.Selects()))

	// The tuning advisor.
	queries := map[string]*sqlparser.SelectStmt{}
	for _, st := range tpcw.JoinQueries() {
		queries[st.ID] = sqlparser.MustParse(st.SQL).(*sqlparser.SelectStmt)
	}
	cands := tuning.Candidates(queries, stats)
	recs := tuning.Recommend(cands, stats, 0)

	fmt.Println("=== Tuning advisor: workload-only, schema-oblivious (MVCC-UA) ===")
	fmt.Printf("candidates considered: %d\n", len(cands))
	fmt.Printf("recommended under default budget:\n%s", tuning.Describe(recs))
	fmt.Printf("queries served by advisor views: %d of %d\n\n", len(recs), len(queries))

	fmt.Println("=== Why the difference matters (§III-3) ===")
	fmt.Println("The advisor materializes whole query results: optimal for the one query,")
	fmt.Println("but storage grows with every query added and updates must maintain wide,")
	fmt.Println("non-key-aligned views. Synergy restricts views to key/foreign-key paths in")
	fmt.Println("rooted trees, so every base row maps to one lockable hierarchy: a write")
	fmt.Println("takes exactly one lock, and maintenance reads are bounded by the path length.")

	// Quantify the write-amplification difference for one statement.
	up := sqlparser.MustParse("UPDATE Item SET i_stock = ? WHERE i_id = ?")
	plan, err := core.PlanWrite(design, up)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nUPDATE Item under Synergy touches %d views (plan locks root %q):\n", len(plan.Actions), plan.Root)
	for _, a := range plan.Actions {
		fmt.Printf("  %-28s locator=%v\n", a.View.DisplayName(), a.Locator)
	}
}
