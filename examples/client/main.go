// Command client is the runnable serving-layer example: it connects to a
// Synergy wire server through the standard library's database/sql with the
// "synergy" driver and a mysql-style DSN, and runs a multi-statement
// transaction — BEGIN, a placeholder INSERT, a SELECT that reads the
// transaction's own write, COMMIT — in each of the three concurrency modes.
//
// By default it is self-contained: it deploys the Company schema in process
// (one system per mode) and serves it over an in-process listener. Point
// -dsn at a running synergy-server to go over TCP instead:
//
//	go run ./examples/client
//	go run ./examples/client -dsn 'app@tcp(127.0.0.1:4306)'
//
// The DSN's mode parameter picks the backend, e.g.
// "app@inproc(example)?mode=occ&reads=watermark".
package main

import (
	"database/sql"
	"fmt"
	"os"

	"synergy/internal/schema"
	"synergy/internal/server"
	"synergy/internal/synergy"
)

func main() {
	base := ""
	if len(os.Args) > 2 && os.Args[1] == "-dsn" {
		base = os.Args[2]
	}
	if err := run(base); err != nil {
		fmt.Fprintln(os.Stderr, "client:", err)
		os.Exit(1)
	}
}

func run(base string) error {
	if base == "" {
		var err error
		if base, err = startStandalone(); err != nil {
			return err
		}
		fmt.Println("serving Company schema in process (no -dsn given)")
	}
	for i, mode := range []string{"hierarchical", "mvcc", "occ"} {
		if err := demo(fmt.Sprintf("%s?mode=%s&reads=stale", base, mode), mode, int64(100+i)); err != nil {
			return fmt.Errorf("%s: %w", mode, err)
		}
	}
	return nil
}

// demo runs one multi-statement transaction through database/sql.
func demo(dsnStr, mode string, hours int64) error {
	db, err := sql.Open("synergy", dsnStr)
	if err != nil {
		return err
	}
	defer db.Close()
	db.SetMaxOpenConns(1) // the wire session is stateful

	fmt.Printf("\n== %s (%s)\n", mode, dsnStr)
	tx, err := db.Begin()
	if err != nil {
		return err
	}
	// A placeholder write: employee 3 joins project 3 at a distinctive
	// hours value so the read below finds exactly this row.
	if _, err := tx.Exec("INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
		int64(3), int64(3), hours); err != nil {
		tx.Rollback()
		return err
	}
	// W3 of the Company workload, reading the transaction's own write.
	rows, err := tx.Query("SELECT * FROM Employee as e, Works_On as wo WHERE e.EID = wo.WO_EID and wo.Hours = ?", hours)
	if err != nil {
		tx.Rollback()
		return err
	}
	cols, _ := rows.Columns()
	n := 0
	for rows.Next() {
		vals := make([]any, len(cols))
		ptrs := make([]any, len(cols))
		for i := range vals {
			ptrs[i] = &vals[i]
		}
		if err := rows.Scan(ptrs...); err != nil {
			rows.Close()
			tx.Rollback()
			return err
		}
		fmt.Printf("  row: ")
		for i, c := range cols {
			fmt.Printf("%s=%v ", c, vals[i])
		}
		fmt.Println()
		n++
	}
	rows.Close()
	if err := rows.Err(); err != nil {
		tx.Rollback()
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	fmt.Printf("  committed; in-transaction read saw %d row(s) including the uncommitted insert\n", n)

	// The session's accumulated simulated cost, via the charge-free
	// introspection variable.
	var micros int64
	if err := db.QueryRow("SELECT @@synergy_sim_micros").Scan(&micros); err != nil {
		return err
	}
	fmt.Printf("  session simulated cost so far: %d us\n", micros)
	return nil
}

// startStandalone deploys the Company schema per mode and serves it over an
// in-process listener, returning the base DSN.
func startStandalone() (string, error) {
	var backends []server.Backend
	for _, m := range []struct {
		name string
		mode synergy.ConcurrencyMode
	}{
		{"hierarchical", synergy.Hierarchical},
		{"mvcc", synergy.MVCC},
		{"occ", synergy.OCC},
	} {
		sys, err := deploy(m.mode)
		if err != nil {
			return "", err
		}
		backends = append(backends, server.SystemBackend(m.name, sys))
	}
	srv, err := server.New(server.Config{Backends: backends, Default: "hierarchical"})
	if err != nil {
		return "", err
	}
	l, err := server.ListenInproc("example")
	if err != nil {
		return "", err
	}
	go srv.Serve(l)
	return "app@inproc(example)", nil
}

// deploy stands up one Company-schema system with the shell's dataset.
func deploy(mode synergy.ConcurrencyMode) (*synergy.System, error) {
	workload := append(schema.CompanyWorkload(), "UPDATE Employee SET EName = ? WHERE EID = ?")
	cfg := synergy.Config{Concurrency: mode}
	if mode != synergy.Hierarchical {
		cfg.MaxVersions = 16
	}
	sys, err := synergy.New(schema.Company(), schema.CompanyRoots(), workload, cfg)
	if err != nil {
		return nil, err
	}
	var addresses, departments, employees, projects, worksOn []schema.Row
	for a := int64(1); a <= 8; a++ {
		addresses = append(addresses, schema.Row{"AID": a, "Street": fmt.Sprintf("%d Main St", a), "City": "Nashville", "Zip": fmt.Sprintf("%05d", 37000+a)})
	}
	for d := int64(1); d <= 3; d++ {
		departments = append(departments, schema.Row{"DNo": d, "DName": fmt.Sprintf("dept-%d", d)})
	}
	for e := int64(1); e <= 12; e++ {
		employees = append(employees, schema.Row{
			"EID": e, "EName": fmt.Sprintf("employee-%d", e),
			"EHome_AID": (e % 8) + 1, "EOffice_AID": ((e + 3) % 8) + 1, "E_DNo": (e % 3) + 1,
		})
	}
	for p := int64(1); p <= 4; p++ {
		projects = append(projects, schema.Row{"PNo": p, "PName": fmt.Sprintf("project-%d", p), "P_DNo": (p % 3) + 1})
	}
	for e := int64(1); e <= 12; e++ {
		for p := int64(1); p <= 2; p++ {
			worksOn = append(worksOn, schema.Row{"WO_EID": e, "WO_PNo": p, "Hours": e*5 + p})
		}
	}
	for table, rows := range map[string][]schema.Row{
		"Address": addresses, "Department": departments, "Employee": employees,
		"Project": projects, "Works_On": worksOn,
	} {
		if err := sys.LoadBase(table, rows); err != nil {
			return nil, err
		}
	}
	if err := sys.BuildViews(); err != nil {
		return nil, err
	}
	return sys, nil
}
