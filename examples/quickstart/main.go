// Quickstart: the paper's worked example end to end.
//
// This program walks the Company database of Figure 2 through the Synergy
// pipeline (Figure 3): schema graph -> DAG -> rooted trees (Figures 4-5),
// workload-driven view selection and query rewriting (Figure 6 procedure),
// then deploys the system, loads data, and runs the workload both ways —
// joins on base tables vs the selected materialized views.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
	"synergy/internal/synergy"
)

func main() {
	// 1. Design: schema + roots + workload -> views (Figure 3).
	workload := schema.CompanyWorkload()
	sys, err := synergy.New(schema.Company(), schema.CompanyRoots(), workload, synergy.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Synergy design for the Company schema (Figures 4-6) ===")
	fmt.Println(sys.Design.Summary())

	fmt.Println("=== Query rewrites (§VI-B) ===")
	for i, sel := range sys.Design.Workload.Selects() {
		rw := sys.Design.Rewritten[sel]
		fmt.Printf("W%d original : %s\n", i+1, sel)
		fmt.Printf("W%d rewritten: %s\n\n", i+1, rw.Stmt)
	}

	// 2. Load a small dataset.
	var addresses, departments, employees, worksOn []schema.Row
	for a := int64(1); a <= 5; a++ {
		addresses = append(addresses, schema.Row{"AID": a, "Street": fmt.Sprintf("%d Elm St", a), "City": "Nashville", "Zip": "37201"})
	}
	for d := int64(1); d <= 2; d++ {
		departments = append(departments, schema.Row{"DNo": d, "DName": fmt.Sprintf("dept-%d", d)})
	}
	for e := int64(1); e <= 10; e++ {
		employees = append(employees, schema.Row{
			"EID": e, "EName": fmt.Sprintf("employee-%d", e),
			"EHome_AID": (e % 5) + 1, "EOffice_AID": ((e + 2) % 5) + 1, "E_DNo": (e % 2) + 1,
		})
	}
	for e := int64(1); e <= 10; e++ {
		worksOn = append(worksOn, schema.Row{"WO_EID": e, "WO_PNo": int64(1), "Hours": e * 4})
	}
	loads := map[string][]schema.Row{
		"Address": addresses, "Department": departments,
		"Employee": employees, "Works_On": worksOn,
		"Project":   {{"PNo": int64(1), "PName": "apollo", "P_DNo": int64(1)}},
		"Dependent": {},
	}
	for table, rows := range loads {
		if err := sys.LoadBase(table, rows); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.BuildViews(); err != nil {
		log.Fatal(err)
	}

	// 3. Run W1 both ways: view scan vs join algorithm.
	w1 := sys.Design.Workload.Selects()[0]
	params := []schema.Value{int64(3)}

	viewCtx := sim.NewCtx()
	rs, err := sys.Query(viewCtx, w1, params) // rewritten: uses Address-Employee
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== W1 via materialized view ===")
	for _, r := range rs.Rows {
		fmt.Printf("  %v lives at %v (%v)\n", r["EName"], r["Street"], r["City"])
	}
	fmt.Printf("  simulated response time: %v\n\n", viewCtx.Elapsed())

	joinCtx := sim.NewCtx()
	if _, err := sys.Engine.Query(joinCtx, w1, params); err != nil { // base tables
		log.Fatal(err)
	}
	fmt.Printf("=== W1 via base-table join: %v (%.1fx slower) ===\n\n",
		joinCtx.Elapsed(), float64(joinCtx.Elapsed())/float64(viewCtx.Elapsed()))

	// 4. A write transaction: single lock, view maintenance (§VII, §VIII).
	stmt := sqlparser.MustParse("INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)")
	wctx := sim.NewCtx()
	if err := sys.Exec(wctx, stmt, []schema.Value{int64(3), int64(2), int64(12)}); err != nil {
		log.Fatal(err)
	}
	snap := wctx.Snapshot()
	fmt.Printf("=== insert into Works_On: %v, locks held: %d (always exactly one) ===\n",
		wctx.Elapsed(), snap.Locks)

	// The view reflects the write immediately.
	w3 := sys.Design.Workload.Selects()[2]
	rs, _ = sys.Query(sim.NewCtx(), w3, []schema.Value{int64(12)})
	fmt.Printf("employees working 12 hours (via Employee-Works_On view): %d row(s)\n", len(rs.Rows))
}
