// Bookstore: the TPC-W online bookstore on the Synergy public API.
//
// Deploys the full TPC-W schema (the workload the paper's introduction
// motivates), loads a generated database, and drives a browsing-and-buying
// session: best sellers, book detail, cart manipulation, order placement —
// printing the simulated response time of every interaction.
//
//	go run ./examples/bookstore
package main

import (
	"fmt"
	"log"

	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
	"synergy/internal/synergy"
	"synergy/internal/tpcw"
)

func main() {
	const customers = 200
	fmt.Printf("deploying Synergy over TPC-W (%d customers, %d items)...\n\n",
		customers, 10*customers)

	sys, err := synergy.New(tpcw.Schema(), tpcw.Roots(), tpcw.WorkloadSQL(), synergy.Config{
		BaseIndexes: tpcw.BaseIndexes(),
	})
	if err != nil {
		log.Fatal(err)
	}
	data := tpcw.Generate(customers, 2024)
	for table, rows := range data.Tables {
		if err := sys.LoadBase(table, rows); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.BuildViews(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("materialized views:")
	for _, v := range sys.Design.Views {
		fmt.Printf("  %s\n", v.DisplayName())
	}
	fmt.Println()

	run := func(label, sql string, params ...schema.Value) {
		ctx := sim.NewCtx()
		stmt := sqlparser.MustParse(sql)
		if sel, ok := stmt.(*sqlparser.SelectStmt); ok {
			rs, err := sys.Query(ctx, sel, params)
			if err != nil {
				log.Fatalf("%s: %v", label, err)
			}
			fmt.Printf("%-28s %4d row(s) in %10v\n", label, len(rs.Rows), ctx.Elapsed())
			return
		}
		if err := sys.Exec(ctx, stmt, params); err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-28s %15s in %10v (locks: %d)\n", label, "ok", ctx.Elapsed(), ctx.Snapshot().Locks)
	}

	// A browsing session.
	q4, _ := tpcw.StatementByID("Q4")
	run("browse subject (Q4)", q4.SQL, "HISTORY")
	q6, _ := tpcw.StatementByID("Q6")
	run("book detail (Q6)", q6.SQL, int64(17))
	q10, _ := tpcw.StatementByID("Q10")
	run("best sellers (Q10)", q10.SQL, "COMPUTERS")

	// Cart.
	cartID := data.NextCartID()
	run("new cart (W6)", "INSERT INTO Shopping_cart (sc_id, sc_time) VALUES (?, ?)", cartID, int64(19500))
	run("add to cart (W7)", "INSERT INTO Shopping_cart_line (scl_sc_id, scl_i_id, scl_qty) VALUES (?, ?, ?)",
		cartID, int64(17), int64(2))
	q8, _ := tpcw.StatementByID("Q8")
	run("view cart (Q8)", q8.SQL, cartID)

	// Checkout: order + line + payment + customer update.
	orderID := data.NextOrderID()
	run("place order (W1)", `INSERT INTO Orders (o_id, o_c_id, o_date, o_sub_total, o_tax, o_total,
		o_ship_type, o_ship_date, o_bill_addr_id, o_ship_addr_id, o_status)
		VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)`,
		orderID, int64(5), int64(19800), 29.99, 2.47, 32.46, "AIR", int64(19805), int64(9), int64(9), "PENDING")
	run("order line (W3)", "INSERT INTO Order_line (ol_o_id, ol_id, ol_i_id, ol_qty, ol_discount, ol_comments) VALUES (?, ?, ?, ?, ?, ?)",
		orderID, int64(1), int64(17), int64(2), 0.0, "gift wrap")
	run("payment (W2)", `INSERT INTO CC_Xacts (cx_o_id, cx_type, cx_num, cx_name, cx_expire,
		cx_auth_id, cx_xact_amt, cx_xact_date, cx_co_id) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)`,
		orderID, "VISA", "4111111111111111", "PAT DOE", int64(21000), "AUTH0987654321", 32.46, int64(19800), int64(1))
	run("buy confirm (W13)", "UPDATE Customer SET c_balance = ?, c_ytd_pmt = ?, c_last_login = ?, c_login = ? WHERE c_id = ?",
		-32.46, 132.46, int64(19800), int64(3), int64(5))

	// The new order is visible through the Customer-Orders view.
	q2, _ := tpcw.StatementByID("Q2")
	run("latest order (Q2)", q2.SQL, tpcw.Uname(5))
	q1, _ := tpcw.StatementByID("Q1")
	run("order contents (Q1)", q1.SQL, orderID)

	fmt.Printf("\ndatabase size: %.1f MB across %d NoSQL tables\n",
		float64(sys.DatabaseBytes())/1e6, len(sys.Store.Tables()))
}
