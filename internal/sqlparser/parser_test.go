package sqlparser

import (
	"strings"
	"testing"
)

func mustSelect(t *testing.T, src string) *SelectStmt {
	t.Helper()
	s, err := ParseSelect(src)
	if err != nil {
		t.Fatalf("ParseSelect(%q): %v", src, err)
	}
	return s
}

func TestSelectStar(t *testing.T) {
	s := mustSelect(t, "SELECT * FROM Employee")
	if !s.Star || len(s.From) != 1 || s.From[0].Name != "Employee" {
		t.Fatalf("parsed: %+v", s)
	}
}

func TestSelectWithAliasAndJoin(t *testing.T) {
	// W1 from the paper's Company workload (§V-B2).
	s := mustSelect(t, `SELECT * FROM Employee as e, Address as a
		WHERE a.AID = e.EHome_AID and e.EID = ?`)
	if len(s.From) != 2 {
		t.Fatalf("tables = %d, want 2", len(s.From))
	}
	if s.From[0].Binding() != "e" || s.From[1].Binding() != "a" {
		t.Fatalf("bindings = %q, %q", s.From[0].Binding(), s.From[1].Binding())
	}
	joins := s.JoinPredicates()
	if len(joins) != 1 {
		t.Fatalf("join predicates = %d, want 1", len(joins))
	}
	filters := s.FilterPredicates()
	if len(filters) != 1 {
		t.Fatalf("filter predicates = %d, want 1", len(filters))
	}
	if _, ok := filters[0].Right.(Param); !ok {
		t.Fatalf("filter right side = %T, want Param", filters[0].Right)
	}
}

func TestImplicitAlias(t *testing.T) {
	s := mustSelect(t, "SELECT * FROM Order_line ol WHERE ol.ol_i_id = ?")
	if s.From[0].Alias != "ol" {
		t.Fatalf("alias = %q, want ol", s.From[0].Alias)
	}
}

func TestThreeWayJoinWithFilters(t *testing.T) {
	// W2 from the Company workload.
	s := mustSelect(t, `SELECT * FROM Department as d, Employee as e, Works_On as wo
		WHERE d.DNo = e.E_DNo and e.EID = wo.WO_EID and d.DNo = ?`)
	if len(s.JoinPredicates()) != 2 {
		t.Fatalf("joins = %d, want 2", len(s.JoinPredicates()))
	}
}

func TestOrderByLimit(t *testing.T) {
	// Q2-like query (Figure 15).
	s := mustSelect(t, `SELECT * FROM Customer c, Orders o
		WHERE c.c_id = o.o_c_id and c.c_uname = ? ORDER BY o.o_date DESC, o.o_id DESC LIMIT 1`)
	if len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || !s.OrderBy[1].Desc {
		t.Fatalf("order by = %+v", s.OrderBy)
	}
	if s.Limit != 1 {
		t.Fatalf("limit = %d, want 1", s.Limit)
	}
}

func TestGroupByAggregates(t *testing.T) {
	// Q10-like best-seller query shape.
	s := mustSelect(t, `SELECT i.i_id, i.i_title, SUM(ol.ol_qty) AS total
		FROM Item i, Order_line ol WHERE ol.ol_i_id = i.i_id AND i.i_subject = ?
		GROUP BY i.i_id ORDER BY total DESC LIMIT 50`)
	if len(s.GroupBy) != 1 || s.GroupBy[0].Column != "i_id" {
		t.Fatalf("group by = %+v", s.GroupBy)
	}
	agg, ok := s.Items[2].Expr.(AggExpr)
	if !ok || agg.Fn != "SUM" || agg.Arg.Column != "ol_qty" {
		t.Fatalf("aggregate = %+v", s.Items[2].Expr)
	}
	if s.Items[2].Alias != "total" {
		t.Fatalf("alias = %q", s.Items[2].Alias)
	}
}

func TestCountStar(t *testing.T) {
	s := mustSelect(t, "SELECT COUNT(*) FROM Orders WHERE o_c_id = ?")
	agg, ok := s.Items[0].Expr.(AggExpr)
	if !ok || !agg.Star {
		t.Fatalf("expr = %+v, want COUNT(*)", s.Items[0].Expr)
	}
}

func TestDerivedTable(t *testing.T) {
	// Q10/Q11 use a recent-orders temp table (Figure 15).
	s := mustSelect(t, `SELECT * FROM Order_line ol,
		(SELECT o_id FROM Orders ORDER BY o_date DESC LIMIT 3333) recent
		WHERE ol.ol_o_id = recent.o_id`)
	if s.From[1].Sub == nil || s.From[1].Alias != "recent" {
		t.Fatalf("derived table = %+v", s.From[1])
	}
	if s.From[1].Sub.Limit != 3333 {
		t.Fatalf("sub limit = %d", s.From[1].Sub.Limit)
	}
}

func TestDerivedTableRequiresAlias(t *testing.T) {
	_, err := Parse("SELECT * FROM (SELECT * FROM t)")
	if err == nil {
		t.Fatal("derived table without alias should fail")
	}
}

func TestSelfJoinAliases(t *testing.T) {
	// Q9: Item as I, Item as J (Figure 15).
	s := mustSelect(t, `SELECT J.i_id, J.i_title FROM Item I, Item J
		WHERE I.i_related1 = J.i_id AND I.i_id = ?`)
	if s.From[0].Binding() != "I" || s.From[1].Binding() != "J" {
		t.Fatalf("bindings: %q, %q", s.From[0].Binding(), s.From[1].Binding())
	}
}

func TestInequalityPredicate(t *testing.T) {
	s := mustSelect(t, "SELECT * FROM Order_line ol WHERE ol.ol_i_id <> ? AND ol.ol_qty >= 2")
	if s.Where[0].Op != OpNe || s.Where[1].Op != OpGe {
		t.Fatalf("ops = %v, %v", s.Where[0].Op, s.Where[1].Op)
	}
}

func TestBangEqualsNormalized(t *testing.T) {
	s := mustSelect(t, "SELECT * FROM t WHERE a != 5")
	if s.Where[0].Op != OpNe {
		t.Fatalf("op = %v, want <>", s.Where[0].Op)
	}
}

func TestInsert(t *testing.T) {
	stmt, err := Parse("INSERT INTO Orders (o_id, o_c_id, o_total) VALUES (?, ?, 12.50)")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if ins.Table != "Orders" || len(ins.Columns) != 3 || len(ins.Values) != 3 {
		t.Fatalf("insert = %+v", ins)
	}
	if lit, ok := ins.Values[2].(Literal); !ok || lit.Value.(float64) != 12.50 {
		t.Fatalf("literal = %+v", ins.Values[2])
	}
	if p0, ok := ins.Values[0].(Param); !ok || p0.Index != 0 {
		t.Fatalf("param 0 = %+v", ins.Values[0])
	}
	if p1 := ins.Values[1].(Param); p1.Index != 1 {
		t.Fatalf("param 1 index = %d", p1.Index)
	}
}

func TestInsertColumnValueMismatch(t *testing.T) {
	if _, err := Parse("INSERT INTO t (a, b) VALUES (?)"); err == nil {
		t.Fatal("mismatched column/value count should fail")
	}
}

func TestUpdate(t *testing.T) {
	stmt, err := Parse("UPDATE Customer SET c_balance = ?, c_ytd_pmt = ? WHERE c_id = ?")
	if err != nil {
		t.Fatal(err)
	}
	up := stmt.(*UpdateStmt)
	if up.Table != "Customer" || len(up.Set) != 2 || len(up.Where) != 1 {
		t.Fatalf("update = %+v", up)
	}
}

func TestDelete(t *testing.T) {
	stmt, err := Parse("DELETE FROM Shopping_cart_line WHERE scl_sc_id = ? AND scl_i_id = ?")
	if err != nil {
		t.Fatal(err)
	}
	del := stmt.(*DeleteStmt)
	if del.Table != "Shopping_cart_line" || len(del.Where) != 2 {
		t.Fatalf("delete = %+v", del)
	}
}

func TestStringLiteralEscapes(t *testing.T) {
	s := mustSelect(t, "SELECT * FROM t WHERE name = 'O''Brien'")
	lit := s.Where[0].Right.(Literal)
	if lit.Value.(string) != "O'Brien" {
		t.Fatalf("literal = %q", lit.Value)
	}
}

func TestNegativeNumber(t *testing.T) {
	s := mustSelect(t, "SELECT * FROM t WHERE bal < -10")
	lit := s.Where[0].Right.(Literal)
	if lit.Value.(int64) != -10 {
		t.Fatalf("literal = %v", lit.Value)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse("select * from T where a = 1 order by a limit 5"); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse("SeLeCt * FrOm T"); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE a =",
		"SELECT * FROM t LIMIT 0",
		"SELECT * FROM t LIMIT x",
		"INSERT INTO t VALUES",
		"UPDATE t",
		"DROP TABLE t",
		"SELECT * FROM t WHERE a = 'unterminated",
		"SELECT * FROM t; SELECT * FROM u",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT * FROM Employee AS e, Address AS a WHERE a.AID = e.EHome_AID AND e.EID = ?",
		"SELECT i.i_id, SUM(ol.ol_qty) AS total FROM Item AS i, Order_line AS ol WHERE ol.ol_i_id = i.i_id GROUP BY i.i_id ORDER BY total DESC LIMIT 50",
		"INSERT INTO t (a, b) VALUES (?, 'x')",
		"UPDATE t SET a = ? WHERE b = 3",
		"DELETE FROM t WHERE a = ?",
	}
	for _, src := range srcs {
		s1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		printed := s1.String()
		s2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of %q: %v", printed, err)
		}
		if s1.String() != s2.String() {
			t.Fatalf("round trip mismatch:\n  first:  %s\n  second: %s", s1, s2)
		}
	}
}

func TestParamNumberingAcrossClauses(t *testing.T) {
	s := mustSelect(t, "SELECT * FROM t WHERE a = ? AND b = ? AND c = ?")
	for i, pred := range s.Where {
		p, ok := pred.Right.(Param)
		if !ok || p.Index != i {
			t.Fatalf("predicate %d param = %+v", i, pred.Right)
		}
	}
}

func TestMustParsePanicsOnBadSQL(t *testing.T) {
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "MustParse") {
			t.Fatalf("expected MustParse panic, got %v", r)
		}
	}()
	MustParse("not sql")
}
