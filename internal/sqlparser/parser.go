package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("trailing input %q", p.peek().text)
	}
	return stmt, nil
}

// MustParse parses or panics; for statically known statements (workload
// definitions, tests).
func MustParse(src string) Statement {
	s, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("sqlparser.MustParse(%q): %v", src, err))
	}
	return s
}

// ParseSelect parses a statement and asserts it is a SELECT.
func ParseSelect(src string) (*SelectStmt, error) {
	s, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := s.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: not a SELECT: %s", src)
	}
	return sel, nil
}

type parser struct {
	src    string
	toks   []token
	pos    int
	params int
}

func (p *parser) peek() token   { return p.toks[p.pos] }
func (p *parser) atEOF() bool   { return p.peek().kind == tokEOF }
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(s int) { p.pos = s }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near position %d in %q)", fmt.Sprintf(format, args...), p.peek().pos, p.src)
}

// keyword reports whether the next token is the given keyword
// (case-insensitive) and consumes it if so.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

// peekKeyword reports whether the next token is the keyword, without
// consuming.
func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errorf("expected %s", strings.ToUpper(kw))
	}
	return nil
}

func (p *parser) symbol(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.symbol(sym) {
		return p.errorf("expected %q", sym)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errorf("expected identifier, got %q", t.text)
	}
	p.pos++
	return t.text, nil
}

var reservedAfterTable = map[string]bool{
	"where": true, "group": true, "order": true, "limit": true,
	"and": true, "on": true, "set": true, "values": true, "as": true,
	"inner": true, "join": true, "from": true,
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.peekKeyword("select"):
		return p.parseSelect()
	case p.peekKeyword("insert"):
		return p.parseInsert()
	case p.peekKeyword("update"):
		return p.parseUpdate()
	case p.peekKeyword("delete"):
		return p.parseDelete()
	default:
		return nil, p.errorf("expected SELECT, INSERT, UPDATE or DELETE")
	}
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	if p.symbol("*") {
		s.Star = true
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			s.Items = append(s.Items, item)
			if !p.symbol(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		s.From = append(s.From, ref)
		if !p.symbol(",") {
			break
		}
	}
	if p.keyword("where") {
		preds, err := p.parseConjunction()
		if err != nil {
			return nil, err
		}
		s.Where = preds
	}
	if p.keyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, col)
			if !p.symbol(",") {
				break
			}
		}
	}
	if p.keyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: col}
			if p.keyword("desc") {
				item.Desc = true
			} else {
				p.keyword("asc")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.symbol(",") {
				break
			}
		}
	}
	if p.keyword("limit") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errorf("expected LIMIT count")
		}
		p.pos++
		n, err := strconv.Atoi(t.text)
		if err != nil || n <= 0 {
			return nil, p.errorf("bad LIMIT %q", t.text)
		}
		s.Limit = n
	}
	return s, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	expr, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: expr}
	if p.keyword("as") {
		alias, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	var ref TableRef
	if p.symbol("(") {
		sub, err := p.parseSelect()
		if err != nil {
			return ref, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return ref, err
		}
		ref.Sub = sub
	} else {
		name, err := p.ident()
		if err != nil {
			return ref, err
		}
		ref.Name = name
	}
	if p.keyword("as") {
		alias, err := p.ident()
		if err != nil {
			return ref, err
		}
		ref.Alias = alias
	} else if t := p.peek(); t.kind == tokIdent && !reservedAfterTable[strings.ToLower(t.text)] {
		p.pos++
		ref.Alias = t.text
	}
	if ref.Sub != nil && ref.Alias == "" {
		return ref, p.errorf("derived table requires an alias")
	}
	return ref, nil
}

func (p *parser) parseConjunction() ([]Predicate, error) {
	var preds []Predicate
	for {
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pred)
		if !p.keyword("and") {
			break
		}
	}
	return preds, nil
}

func (p *parser) parsePredicate() (Predicate, error) {
	left, err := p.parseOperand()
	if err != nil {
		return Predicate{}, err
	}
	t := p.peek()
	if t.kind != tokSymbol {
		return Predicate{}, p.errorf("expected comparison operator, got %q", t.text)
	}
	var op CompareOp
	switch t.text {
	case "=":
		op = OpEq
	case "<>":
		op = OpNe
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	default:
		return Predicate{}, p.errorf("unknown operator %q", t.text)
	}
	p.pos++
	right, err := p.parseOperand()
	if err != nil {
		return Predicate{}, err
	}
	return Predicate{Left: left, Op: op, Right: right}, nil
}

// parseOperand parses a column ref, literal or parameter (no aggregates).
func (p *parser) parseOperand() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokSymbol && t.text == "?":
		p.pos++
		e := Param{Index: p.params}
		p.params++
		return e, nil
	case t.kind == tokNumber:
		p.pos++
		return numberLiteral(t.text)
	case t.kind == tokString:
		p.pos++
		return Literal{Value: t.text}, nil
	case t.kind == tokIdent:
		return p.parseColumnRef()
	default:
		return nil, p.errorf("expected operand, got %q", t.text)
	}
}

// parseExpr parses a select-list expression, which additionally allows
// aggregates.
func (p *parser) parseExpr() (Expr, error) {
	t := p.peek()
	if t.kind == tokIdent {
		fn := strings.ToUpper(t.text)
		switch fn {
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			save := p.save()
			p.pos++
			if p.symbol("(") {
				if fn == "COUNT" && p.symbol("*") {
					if err := p.expectSymbol(")"); err != nil {
						return nil, err
					}
					return AggExpr{Fn: fn, Star: true}, nil
				}
				col, err := p.parseColumnRef()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return AggExpr{Fn: fn, Arg: &col}, nil
			}
			p.restore(save) // plain identifier that looks like an agg name
		}
	}
	return p.parseOperand()
}

func (p *parser) parseColumnRef() (ColumnRef, error) {
	first, err := p.ident()
	if err != nil {
		return ColumnRef{}, err
	}
	if p.symbol(".") {
		col, err := p.ident()
		if err != nil {
			return ColumnRef{}, err
		}
		return ColumnRef{Table: first, Column: col}, nil
	}
	return ColumnRef{Column: first}, nil
}

func numberLiteral(text string) (Expr, error) {
	if strings.Contains(text, ".") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", text)
		}
		return Literal{Value: f}, nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("sql: bad number %q", text)
	}
	return Literal{Value: n}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("insert"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	s := &InsertStmt{Table: table}
	if p.symbol("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			s.Columns = append(s.Columns, col)
			if !p.symbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("values"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for {
		v, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		s.Values = append(s.Values, v)
		if !p.symbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if len(s.Columns) > 0 && len(s.Columns) != len(s.Values) {
		return nil, p.errorf("%d columns but %d values", len(s.Columns), len(s.Values))
	}
	return s, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	if err := p.expectKeyword("update"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("set"); err != nil {
		return nil, err
	}
	s := &UpdateStmt{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		v, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		s.Set = append(s.Set, Assignment{Column: col, Value: v})
		if !p.symbol(",") {
			break
		}
	}
	if p.keyword("where") {
		preds, err := p.parseConjunction()
		if err != nil {
			return nil, err
		}
		s.Where = preds
	}
	return s, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if err := p.expectKeyword("delete"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	s := &DeleteStmt{Table: table}
	if p.keyword("where") {
		preds, err := p.parseConjunction()
		if err != nil {
			return nil, err
		}
		s.Where = preds
	}
	return s, nil
}
