// Package sqlparser parses the SQL dialect the paper's workloads are written
// in (§II-B): single-statement SELECT/INSERT/UPDATE/DELETE with comma-style
// joins, conjunctive WHERE clauses, aggregates, GROUP BY, ORDER BY, LIMIT,
// derived tables and ? parameters. The TPC-W statements in the paper's
// appendix (Figures 15 and 16) and the Company-schema examples (§V) all fall
// in this subset.
package sqlparser

import (
	"fmt"
	"strings"
)

// Statement is any parsed SQL statement.
type Statement interface {
	stmt()
	String() string
}

// Expr is a scalar expression: a column reference, literal, parameter or
// aggregate call.
type Expr interface {
	expr()
	String() string
}

// ColumnRef names a column, optionally qualified by a table name or alias.
type ColumnRef struct {
	Table  string // may be ""
	Column string
}

func (ColumnRef) expr() {}

func (c ColumnRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// Literal is a typed constant: int64, float64 or string.
type Literal struct {
	Value any
}

func (Literal) expr() {}

func (l Literal) String() string {
	if s, ok := l.Value.(string); ok {
		return "'" + s + "'"
	}
	return fmt.Sprint(l.Value)
}

// Param is a ? placeholder; Index is its zero-based position in the
// statement.
type Param struct {
	Index int
}

func (Param) expr() {}

func (p Param) String() string { return "?" }

// AggExpr is an aggregate call: COUNT(*), SUM(col), AVG(col), MIN(col),
// MAX(col).
type AggExpr struct {
	Fn   string // upper case
	Arg  *ColumnRef
	Star bool // COUNT(*)
}

func (AggExpr) expr() {}

func (a AggExpr) String() string {
	if a.Star {
		return a.Fn + "(*)"
	}
	return a.Fn + "(" + a.Arg.String() + ")"
}

// CompareOp is a comparison operator in a predicate.
type CompareOp string

const (
	OpEq CompareOp = "="
	OpNe CompareOp = "<>"
	OpLt CompareOp = "<"
	OpLe CompareOp = "<="
	OpGt CompareOp = ">"
	OpGe CompareOp = ">="
)

// Predicate is one conjunct of a WHERE clause.
type Predicate struct {
	Left  Expr
	Op    CompareOp
	Right Expr
}

func (p Predicate) String() string {
	return p.Left.String() + " " + string(p.Op) + " " + p.Right.String()
}

// IsJoin reports whether both sides are column references — an equi-join
// condition when Op is "=".
func (p Predicate) IsJoin() bool {
	_, l := p.Left.(ColumnRef)
	_, r := p.Right.(ColumnRef)
	return l && r
}

// TableRef is one entry of a FROM clause: a named table (with optional
// alias) or a derived table (sub-select with required alias).
type TableRef struct {
	Name  string
	Alias string
	Sub   *SelectStmt
}

// Binding returns the name this table is referred to by in predicates.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

func (t TableRef) String() string {
	var b strings.Builder
	if t.Sub != nil {
		b.WriteString("(" + t.Sub.String() + ")")
	} else {
		b.WriteString(t.Name)
	}
	if t.Alias != "" {
		b.WriteString(" AS " + t.Alias)
	}
	return b.String()
}

// SelectItem is one projection of a SELECT list.
type SelectItem struct {
	Expr  Expr
	Alias string
}

func (s SelectItem) String() string {
	if s.Alias != "" {
		return s.Expr.String() + " AS " + s.Alias
	}
	return s.Expr.String()
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Col  ColumnRef
	Desc bool
}

func (o OrderItem) String() string {
	if o.Desc {
		return o.Col.String() + " DESC"
	}
	return o.Col.String()
}

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Star    bool
	Items   []SelectItem
	From    []TableRef
	Where   []Predicate
	GroupBy []ColumnRef
	OrderBy []OrderItem
	Limit   int // 0 = no limit
}

func (*SelectStmt) stmt() {}

func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Star {
		b.WriteString("*")
	} else {
		for i, it := range s.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(it.String())
		}
	}
	b.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	if len(s.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range s.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.String())
		}
	}
	if s.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

// JoinPredicates returns the equi-join conjuncts of the WHERE clause.
func (s *SelectStmt) JoinPredicates() []Predicate {
	var out []Predicate
	for _, p := range s.Where {
		if p.Op == OpEq && p.IsJoin() {
			out = append(out, p)
		}
	}
	return out
}

// FilterPredicates returns the non-join conjuncts of the WHERE clause.
func (s *SelectStmt) FilterPredicates() []Predicate {
	var out []Predicate
	for _, p := range s.Where {
		if !(p.Op == OpEq && p.IsJoin()) {
			out = append(out, p)
		}
	}
	return out
}

// InsertStmt is an INSERT ... VALUES statement.
type InsertStmt struct {
	Table   string
	Columns []string
	Values  []Expr
}

func (*InsertStmt) stmt() {}

func (s *InsertStmt) String() string {
	var b strings.Builder
	b.WriteString("INSERT INTO " + s.Table)
	if len(s.Columns) > 0 {
		b.WriteString(" (" + strings.Join(s.Columns, ", ") + ")")
	}
	b.WriteString(" VALUES (")
	for i, v := range s.Values {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteString(")")
	return b.String()
}

// Assignment is one SET clause of an UPDATE.
type Assignment struct {
	Column string
	Value  Expr
}

// UpdateStmt is an UPDATE statement.
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where []Predicate
}

func (*UpdateStmt) stmt() {}

func (s *UpdateStmt) String() string {
	var b strings.Builder
	b.WriteString("UPDATE " + s.Table + " SET ")
	for i, a := range s.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Column + " = " + a.Value.String())
	}
	if len(s.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range s.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	return b.String()
}

// DeleteStmt is a DELETE statement.
type DeleteStmt struct {
	Table string
	Where []Predicate
}

func (*DeleteStmt) stmt() {}

func (s *DeleteStmt) String() string {
	var b strings.Builder
	b.WriteString("DELETE FROM " + s.Table)
	if len(s.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range s.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	return b.String()
}
