package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , . ? = < > <= >= <> !=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenizes SQL text. Keywords are returned as identifiers; the parser
// matches them case-insensitively.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case strings.ContainsRune("(),.?=*", rune(c)):
			l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: l.pos})
			l.pos++
		case c == '<':
			l.lexCompound("<=", "<>", "<")
		case c == '>':
			l.lexCompound(">=", ">")
		case c == '!':
			if strings.HasPrefix(l.src[l.pos:], "!=") {
				l.toks = append(l.toks, token{kind: tokSymbol, text: "<>", pos: l.pos})
				l.pos += 2
			} else {
				return nil, fmt.Errorf("sql: unexpected %q at %d", c, l.pos)
			}
		case c == '-':
			// Negative number literal.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
				l.lexNumber()
			} else {
				return nil, fmt.Errorf("sql: unexpected %q at %d", c, l.pos)
			}
		default:
			return nil, fmt.Errorf("sql: unexpected %q at %d", c, l.pos)
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string at %d", start)
}

func (l *lexer) lexCompound(options ...string) {
	for _, op := range options {
		if strings.HasPrefix(l.src[l.pos:], op) {
			l.toks = append(l.toks, token{kind: tokSymbol, text: op, pos: l.pos})
			l.pos += len(op)
			return
		}
	}
}
