package sqlparser

// CountParams returns the number of ? placeholders a statement binds — the
// parameter count a prepared-statement server must advertise. Placeholders
// are numbered left to right by the parser, so the count is the highest
// Param index plus one.
func CountParams(stmt Statement) int {
	max := -1
	expr := func(e Expr) {
		if p, ok := e.(Param); ok && p.Index > max {
			max = p.Index
		}
	}
	preds := func(ps []Predicate) {
		for _, p := range ps {
			expr(p.Left)
			expr(p.Right)
		}
	}
	var sel func(s *SelectStmt)
	sel = func(s *SelectStmt) {
		for _, it := range s.Items {
			expr(it.Expr)
		}
		for _, f := range s.From {
			if f.Sub != nil {
				sel(f.Sub)
			}
		}
		preds(s.Where)
	}
	switch s := stmt.(type) {
	case *SelectStmt:
		sel(s)
	case *InsertStmt:
		for _, v := range s.Values {
			expr(v)
		}
	case *UpdateStmt:
		for _, a := range s.Set {
			expr(a.Value)
		}
		preds(s.Where)
	case *DeleteStmt:
		preds(s.Where)
	}
	return max + 1
}
