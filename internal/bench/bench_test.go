package bench

import (
	"strings"
	"sync"
	"testing"

	"synergy/internal/sim"
	"synergy/internal/sqlparser"
	"synergy/internal/tpcw"
)

// The system set is expensive to build; share one across tests.
var (
	setOnce sync.Once
	testSet *SystemSet
	setErr  error
)

func systems(t *testing.T) *SystemSet {
	t.Helper()
	setOnce.Do(func() {
		testSet, setErr = BuildSystems(100, 42, nil)
	})
	if setErr != nil {
		t.Fatal(setErr)
	}
	return testSet
}

func TestSummarize(t *testing.T) {
	m := Summarize([]sim.Micros{1000, 2000, 3000})
	if m.Mean != 2.0 {
		t.Fatalf("mean = %v, want 2.0ms", m.Mean)
	}
	if m.StdErr <= 0 {
		t.Fatal("stderr should be positive")
	}
	if m.N != 3 {
		t.Fatalf("n = %d", m.N)
	}
	if Summarize(nil).String() != "X" {
		t.Fatal("empty measurement should render X")
	}
}

func TestFigure10ShapeAtSmallScale(t *testing.T) {
	rows, err := RunFigure10([]int{50, 200}, 3, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Speedup() <= 1 {
			t.Errorf("scale=%d %s: view scan (%0.1f) not faster than join (%0.1f)",
				r.Customers, r.Query, r.ViewScan.Mean, r.JoinAlgo.Mean)
		}
	}
	// The gap widens with scale and with join width (Q2 > Q1 at the top
	// scale), the qualitative content of Figure 10.
	q2Small, q2Big := rows[1], rows[3]
	if q2Big.Speedup() <= q2Small.Speedup() {
		t.Errorf("speedup should grow with scale: %0.1fx -> %0.1fx", q2Small.Speedup(), q2Big.Speedup())
	}
}

func TestFigure11Shape(t *testing.T) {
	rows, err := RunFigure11([]int{10, 100}, 3, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("want 2 rows")
	}
	r10, r100 := rows[0], rows[1]
	// Fixed connection cost dominates at 10 locks; the marginal per-lock
	// cost is a few ms (the paper's 342 -> 571ms shape: strongly
	// sublinear in lock count).
	if r10.Overhead.Mean < 200 {
		t.Errorf("10-lock overhead = %.0fms, want a few hundred ms (cold client)", r10.Overhead.Mean)
	}
	if r100.Overhead.Mean <= r10.Overhead.Mean {
		t.Error("overhead must grow with lock count")
	}
	if r100.Overhead.Mean >= 10*r10.Overhead.Mean {
		t.Errorf("overhead grew linearly (%.0f -> %.0f); fixed cost should amortize", r10.Overhead.Mean, r100.Overhead.Mean)
	}
}

func TestFigure12Orderings(t *testing.T) {
	set := systems(t)
	g, err := RunFigure12(set, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	// VoltDB unsupported set is exactly {Q3, Q7, Q9, Q10}.
	var unsupported []string
	for _, q := range g.Statements {
		if g.Cells[q]["VoltDB"].N == 0 {
			unsupported = append(unsupported, q)
		}
	}
	if got := strings.Join(unsupported, ","); got != "Q3,Q7,Q9,Q10" {
		t.Errorf("VoltDB unsupported = %s, want Q3,Q7,Q9,Q10", got)
	}

	all := g.Statements
	syn := g.MeanOver("Synergy", all)
	base := g.MeanOver("Baseline", all)
	mvccA := g.MeanOver("MVCC-A", all)
	mvccUA := g.MeanOver("MVCC-UA", all)
	// §IX-D3 orderings: Synergy beats every MVCC system and the baseline;
	// MVCC-A (with views) beats MVCC-UA and Baseline.
	if !(syn < mvccA && mvccA < mvccUA && mvccUA <= base) {
		t.Errorf("join means out of order: synergy=%.0f mvccA=%.0f mvccUA=%.0f baseline=%.0f",
			syn, mvccA, mvccUA, base)
	}
	// VoltDB has a fixed per-transaction floor (~14ms command-log and
	// round-trip) which dominates at this tiny test scale, so the paper's
	// "Synergy 11x slower than VoltDB" only emerges at realistic scale
	// (the cmd/synergy-bench harness shows it). Assert the scale-
	// independent facts here: VoltDB beats every MVCC system and stays
	// near its floor.
	sup := g.SupportedBy("VoltDB")
	if v, m := g.MeanOver("VoltDB", sup), g.MeanOver("MVCC-A", sup); v >= m {
		t.Errorf("VoltDB (%.1f) should beat MVCC-A (%.1f) on supported joins", v, m)
	}
	if v := g.MeanOver("VoltDB", sup); v > 100 {
		t.Errorf("VoltDB supported-join mean = %.1fms, want near its txn floor", v)
	}
	// MVCC-UA answers Q10 from its one view: cheaper than Baseline's full
	// join even under the shared MVCC floor (the gap widens with scale).
	if ua, b := g.Cells["Q10"]["MVCC-UA"].Mean, g.Cells["Q10"]["Baseline"].Mean; ua >= b {
		t.Errorf("Q10: MVCC-UA (%.0f) should be below Baseline (%.0f)", ua, b)
	}
}

func TestFigure14Orderings(t *testing.T) {
	set := systems(t)
	g, err := RunFigure14(set, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	all := g.Statements
	syn := g.MeanOver("Synergy", all)
	volt := g.MeanOver("VoltDB", all)
	base := g.MeanOver("Baseline", all)
	mvccA := g.MeanOver("MVCC-A", all)
	// §IX-D4: Synergy writes are far cheaper than every MVCC system but
	// costlier than VoltDB.
	if !(volt < syn && syn < mvccA && syn < base) {
		t.Errorf("write means out of order: volt=%.0f syn=%.0f mvccA=%.0f base=%.0f", volt, syn, mvccA, base)
	}
	// MVCC overhead dominates: baseline writes land in the 800-1000ms
	// band even with no views to maintain.
	if base < 800 || base > 1200 {
		t.Errorf("baseline write mean = %.0fms, want ~850-1000 (Tephra overhead)", base)
	}
	// W6 and W11 are the cheapest Synergy writes (no views on the
	// shopping cart, §IX-D4).
	w6 := g.Cells["W6"]["Synergy"].Mean
	w11 := g.Cells["W11"]["Synergy"].Mean
	w13 := g.Cells["W13"]["Synergy"].Mean
	if w6 >= w13 || w11 >= w13 {
		t.Errorf("W6 (%.1f) and W11 (%.1f) should be far below W13 (%.1f)", w6, w11, w13)
	}
	// W13 (update customer: multi-row view update) is the most expensive
	// Synergy write.
	for _, w := range all {
		if m := g.Cells[w]["Synergy"]; m.N > 0 && m.Mean > g.Cells["W13"]["Synergy"].Mean {
			t.Errorf("W13 should be the most expensive Synergy write; %s = %.1f > %.1f", w, m.Mean, g.Cells["W13"]["Synergy"].Mean)
		}
	}
}

func TestTableIIOrdering(t *testing.T) {
	set := systems(t)
	rows, err := RunTableII(set, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.System] = r.Total.Mean
	}
	// Table II orderings that hold at any scale: Synergy far below every
	// MVCC system; views help MVCC-A and MVCC-UA relative to Baseline.
	// (The paper's MVCC-A << MVCC-UA gap comes from join costs that only
	// dominate at realistic scale; at this test scale the two are within
	// noise of each other — the cmd harness at larger scale separates
	// them.)
	if byName["Synergy"] >= byName["MVCC-A"]/10 {
		t.Errorf("Synergy (%0.1fs) should be far below MVCC-A (%0.1fs)", byName["Synergy"], byName["MVCC-A"])
	}
	if byName["MVCC-A"] >= byName["Baseline"] {
		t.Errorf("MVCC-A (%0.1fs) should beat Baseline (%0.1fs)", byName["MVCC-A"], byName["Baseline"])
	}
	if byName["MVCC-UA"] >= byName["Baseline"] {
		t.Errorf("MVCC-UA (%0.1fs) should beat Baseline (%0.1fs)", byName["MVCC-UA"], byName["Baseline"])
	}
}

func TestTableIIIOrdering(t *testing.T) {
	set := systems(t)
	rows := RunTableIII(set)
	byName := map[string]int64{}
	for _, r := range rows {
		byName[r.System] = r.MeasuredBytes
	}
	// Table III ordering: VoltDB smallest; Synergy and MVCC-A largest
	// (views); MVCC-UA slightly above Baseline.
	if byName["VoltDB"] >= byName["Baseline"] {
		t.Errorf("VoltDB (%d) should be smaller than Baseline (%d)", byName["VoltDB"], byName["Baseline"])
	}
	if byName["Synergy"] <= byName["Baseline"] {
		t.Error("Synergy must exceed Baseline (views)")
	}
	if byName["MVCC-UA"] <= byName["Baseline"] || byName["MVCC-UA"] >= byName["Synergy"] {
		t.Errorf("MVCC-UA (%d) should sit between Baseline (%d) and Synergy (%d)",
			byName["MVCC-UA"], byName["Baseline"], byName["Synergy"])
	}
	// The paper reports 2.1x; our fully covered view-indexes (the §II-A
	// reading of "covered indexes") push the reproduction to ~3-4x.
	// EXPERIMENTS.md discusses the delta.
	ratio := float64(byName["Synergy"]) / float64(byName["Baseline"])
	if ratio < 1.8 || ratio > 4.8 {
		t.Errorf("Synergy/Baseline size ratio = %.2f, want the 2-4.5x band (paper: 2.1x)", ratio)
	}
	if mvccA := byName["MVCC-A"]; mvccA < byName["Baseline"] || mvccA > byName["Synergy"] {
		t.Errorf("MVCC-A (%d) should carry the same views as Synergy (%d)", mvccA, byName["Synergy"])
	}
}

func TestQueryResultsAgreeAcrossSystems(t *testing.T) {
	set := systems(t)
	// Q1 on Synergy (view) and Baseline (join) must return the same
	// number of rows for identical parameters — materialization must not
	// change semantics.
	st, _ := tpcw.StatementByID("Q1")
	for rep := 0; rep < 5; rep++ {
		params := st.Params(set.Data, sim.NewRNG(int64(rep)))
		counts := map[string]int{}
		for _, name := range []string{"Synergy", "Baseline"} {
			var sys EvalSystem
			if name == "Synergy" {
				sys = set.Synergy
			} else {
				sys = set.Baseline
			}
			ctx := sim.NewCtx()
			if err := sys.Run(ctx, st, params); err != nil {
				t.Fatal(err)
			}
			counts[name] = int(ctx.Snapshot().RowsReturned)
		}
		_ = counts // row counts include scan internals; correctness is
		// asserted via direct result comparison below.
	}
	// Direct comparison through the public APIs.
	params := st.Params(set.Data, sim.NewRNG(99))
	sel := set.Synergy.parsed.get(st).(interface{ String() string })
	_ = sel
	rsV, err := set.Synergy.sys.Query(sim.NewCtx(), mustSelect(st.SQL), params)
	if err != nil {
		t.Fatal(err)
	}
	rsB, err := set.Baseline.sys.Query(sim.NewCtx(), mustSelect(st.SQL), params)
	if err != nil {
		t.Fatal(err)
	}
	if len(rsV.Rows) != len(rsB.Rows) {
		t.Fatalf("Q1 row counts differ: view=%d base=%d", len(rsV.Rows), len(rsB.Rows))
	}
}

func TestStaticArtifacts(t *testing.T) {
	f13 := Figure13Matrix()
	for _, want := range []string{"VoltDB", "Synergy", "Hierarchical locking", "MVCC", "Schema-relationships aware"} {
		if !strings.Contains(f13, want) {
			t.Errorf("Figure 13 missing %q", want)
		}
	}
	t1 := TableIQualitative()
	for _, want := range []string{"NoSQL", "NewSQL", "Synergy", "read-committed"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestRenderers(t *testing.T) {
	set := systems(t)
	g, err := RunFigure12(set, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderGrid("Figure 12", g)
	if !strings.Contains(out, "Q10") || !strings.Contains(out, "X") {
		t.Fatalf("grid render missing content:\n%s", out)
	}
	if cmp := RenderComparisons(g); !strings.Contains(cmp, "Synergy vs") {
		t.Fatalf("comparisons render: %s", cmp)
	}
	rows := RunTableIII(set)
	if out := RenderTableIII(rows, set.Data.Card.Customers); !strings.Contains(out, "VoltDB") {
		t.Fatal("table III render missing VoltDB")
	}
}

// mustSelect parses a SELECT for tests.
func mustSelect(sql string) *sqlparser.SelectStmt {
	return sqlparser.MustParse(sql).(*sqlparser.SelectStmt)
}
