package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"synergy/internal/mvcc"
	"synergy/internal/occ"
	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
	"synergy/internal/synergy"
)

// ContentionModes are the three concurrency mechanisms of the sweep, in
// column order: the two the paper compares (Figure 13) plus the optimistic
// third mode.
var ContentionModes = []struct {
	Name string
	Mode synergy.ConcurrencyMode
}{
	{"Hierarchical", synergy.Hierarchical},
	{"MVCC", synergy.MVCC},
	{"OCC", synergy.OCC},
}

// ContentionCell is one (mode, hot-row count) measurement of the sweep.
type ContentionCell struct {
	Mode    string
	HotRows int
	// Txns is the number of committed transactions (every transaction is
	// retried until it commits).
	Txns int
	// Mean is the simulated latency per committed transaction, conflict
	// retries and lock backoff included.
	Mean Measurement
	// Conflicts counts validation aborts (OCC) / commit-time write-write
	// conflicts (MVCC); hierarchical locking blocks instead of aborting, so
	// its cell stays 0 and contention shows up in Mean via lock backoff.
	Conflicts int64
	// Retries counts transaction re-executions after a conflict.
	Retries int64
}

// AbortRate is conflicts per attempted commit.
func (c ContentionCell) AbortRate() float64 {
	attempts := int64(c.Txns) + c.Retries
	if attempts == 0 {
		return 0
	}
	return float64(c.Conflicts) / float64(attempts)
}

// ContentionResult is the full sweep: one row per hot-row count, one cell
// per concurrency mode.
type ContentionResult struct {
	Workers, Rounds int
	// Ops is the number of UPDATE statements each transaction executes.
	// Longer transactions shift the OCC-vs-locking balance: an OCC conflict
	// loser re-executes all Ops statements, while a lock queue amortizes
	// its one-time spin over them — the crossover the PR-4 notes predicted.
	Ops     int
	HotRows []int
	// Herd records whether conflict losers retried as an overlapping wave
	// (see ContentionOpts.Herd) rather than solo.
	Herd  bool
	Cells map[int]map[string]ContentionCell // hotRows -> mode -> cell
}

// ContentionOpts select optional sweep behaviors beyond the calibrated
// defaults.
type ContentionOpts struct {
	// Herd makes the optimistic modes' conflict losers retry as a
	// simultaneous wave instead of solo: every loser backs off on the shared
	// capped-exponential schedule, then all of them re-execute overlapped and
	// race to commit again, so each retry wave crowns one winner and sends
	// the rest around once more — the thundering-herd retry storm a naive
	// client-side retry loop produces. Off by default: the solo-retry cells
	// are the calibrated baseline earlier PRs pinned.
	Herd bool
}

// contentionSchema is a Root with a materialized Root-Leaf view, the fanout
// shape where a root update pays multi-row view maintenance — the §VIII-B
// write the three mechanisms guard differently.
func contentionSchema() (*schema.Schema, []string) {
	s := schema.New()
	s.AddRelation(&schema.Relation{
		Name: "Root",
		Columns: []schema.Column{
			{Name: "RID", Type: schema.TInt},
			{Name: "RVal", Type: schema.TString},
		},
		PK: []string{"RID"},
	})
	s.AddRelation(&schema.Relation{
		Name: "Leaf",
		Columns: []schema.Column{
			{Name: "LID", Type: schema.TInt},
			{Name: "L_RID", Type: schema.TInt},
			{Name: "LVal", Type: schema.TString},
		},
		PK:  []string{"LID"},
		FKs: []schema.ForeignKey{{Cols: []string{"L_RID"}, RefTable: "Root"}},
	})
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s, []string{
		"SELECT * FROM Root as r, Leaf as l WHERE r.RID = l.L_RID and l.LVal = ?",
		"UPDATE Root SET RVal = ? WHERE RID = ?",
	}
}

// buildContentionSystem deploys one mode over hotRows root rows with
// leavesPerRoot view rows under each.
func buildContentionSystem(mode synergy.ConcurrencyMode, hotRows, leavesPerRoot int, costs *sim.Costs) (*synergy.System, error) {
	s, workload := contentionSchema()
	cfg := synergy.Config{Concurrency: mode, Costs: costs}
	if mode != synergy.Hierarchical {
		cfg.MaxVersions = 16
	}
	sys, err := synergy.New(s, []string{"Root"}, workload, cfg)
	if err != nil {
		return nil, err
	}
	roots := make([]schema.Row, 0, hotRows)
	for i := 1; i <= hotRows; i++ {
		roots = append(roots, schema.Row{"RID": int64(i), "RVal": fmt.Sprintf("r%d", i)})
	}
	if err := sys.LoadBase("Root", roots); err != nil {
		return nil, err
	}
	var leaves []schema.Row
	for i := 1; i <= hotRows; i++ {
		for j := 0; j < leavesPerRoot; j++ {
			leaves = append(leaves, schema.Row{
				"LID": int64((i-1)*leavesPerRoot + j + 1), "L_RID": int64(i),
				"LVal": fmt.Sprintf("l-%d-%d", i, j),
			})
		}
	}
	if err := sys.LoadBase("Leaf", leaves); err != nil {
		return nil, err
	}
	if err := sys.BuildViews(); err != nil {
		return nil, err
	}
	return sys, nil
}

// RunContention runs the Figure-13-style contention sweep: rounds of
// `workers` transactions, each executing `ops` root updates on rows drawn
// from a shrinking hot set, under each of the three concurrency mechanisms.
// Fewer hot rows mean more same-row overlap: hierarchical locking
// serializes behind the root lock (the losers' latency inflates with
// backoff), while MVCC and OCC abort the overlapped transactions at commit
// and retry them (abort rate climbs). Raising ops lengthens transactions:
// an optimistic loser re-executes every statement on retry while a lock
// queue pays its spin once, which is where the abort-rate/latency
// crossover between OCC and hierarchical lives.
//
// The harness is deterministic: each round is a wave of `workers`
// simultaneous arrivals. The optimistic modes never block, so the wave
// opens every transaction before committing any — maximal overlap through
// the transaction API, with conflict losers re-running solo like a
// backed-off client. Hierarchical lock acquisition blocks instead, so its
// wave charges each same-row arrival the contended-spin schedule until its
// predecessors' hold time elapses (see runLockingCell). OCC cells are
// charged the measured transaction-layer overhead (WAL logging + hop) their
// production write path pays, calibrated per system; MVCC, as in the
// paper's systems, runs client-side against the Tephra-like server with no
// transaction layer.
func RunContention(hotRows []int, workers, rounds, ops int, seed int64, costs *sim.Costs) (*ContentionResult, error) {
	return RunContentionOpts(hotRows, workers, rounds, ops, seed, costs, ContentionOpts{})
}

// RunContentionOpts is RunContention with explicit sweep options.
func RunContentionOpts(hotRows []int, workers, rounds, ops int, seed int64, costs *sim.Costs, opts ContentionOpts) (*ContentionResult, error) {
	if len(hotRows) == 0 {
		hotRows = []int{1, 4, 16}
	}
	if workers <= 0 {
		workers = 4
	}
	if rounds <= 0 {
		rounds = 25
	}
	if ops <= 0 {
		ops = 1
	}
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	res := &ContentionResult{
		Workers: workers, Rounds: rounds, Ops: ops, HotRows: hotRows,
		Herd:  opts.Herd,
		Cells: map[int]map[string]ContentionCell{},
	}
	for _, hr := range hotRows {
		res.Cells[hr] = map[string]ContentionCell{}
		for _, m := range ContentionModes {
			sys, err := buildContentionSystem(m.Mode, hr, 4, costs)
			if err != nil {
				return nil, err
			}
			var cell ContentionCell
			if m.Mode == synergy.Hierarchical {
				// Locking blocks instead of aborting, so there is no retry
				// storm to model: the herd cells share the calibrated queue.
				cell, err = runLockingCell(sys, hr, workers, rounds, ops, seed, costs)
			} else if opts.Herd {
				cell, err = runHerdCell(sys, m.Mode, hr, workers, rounds, ops, seed, costs)
			} else {
				cell, err = runOptimisticCell(sys, m.Mode, hr, workers, rounds, ops, seed, costs)
			}
			if err != nil {
				return nil, fmt.Errorf("contention %s/%d hot rows: %w", m.Name, hr, err)
			}
			cell.Mode, cell.HotRows = m.Name, hr
			res.Cells[hr][m.Name] = cell
		}
	}
	return res, nil
}

// drawRows picks a transaction's ops root rows from the hot set.
func drawRows(rng *rand.Rand, hotRows, ops int) []int64 {
	rows := make([]int64, ops)
	for i := range rows {
		rows[i] = int64(rng.Intn(hotRows) + 1)
	}
	return rows
}

var contentionUpdate = sqlparser.MustParse("UPDATE Root SET RVal = ? WHERE RID = ?")

// runLockingCell drives the hierarchical system through the same waves of
// simultaneous arrivals as the optimistic cells, modeling the lock queue
// deterministically: within a wave, transactions on the same root rows
// serialize behind those rows' locks, and an arrival is charged the lock
// manager's exact contended-spin schedule — one failed checkAndPut round
// trip plus capped exponential backoff per attempt — until its most
// contended row's predecessors (whose holds overlap) have committed. The
// transactions then execute uncontended, so the stored state matches a
// serial run while the latency carries the queueing cost a real overlapped
// wave pays. Multi-statement transactions (ops > 1) hold every touched
// row's lock until commit, so each updated row's release time advances to
// the whole transaction's completion.
func runLockingCell(sys *synergy.System, hotRows, workers, rounds, ops int, seed int64, costs *sim.Costs) (ContentionCell, error) {
	rng := rand.New(rand.NewSource(seed))
	samples := make([]sim.Micros, 0, workers*rounds)
	for r := 0; r < rounds; r++ {
		// release[row] is the wave-relative simulated time at which the
		// row's lock frees for the next arrival.
		release := map[int64]sim.Micros{}
		for w := 0; w < workers; w++ {
			rows := drawRows(rng, hotRows, ops)
			// Locks are held to commit, so the arrival queues behind the
			// latest-releasing of its rows; spins on the others overlap it.
			var gate sim.Micros
			for _, row := range rows {
				if release[row] > gate {
					gate = release[row]
				}
			}
			ctx := sim.NewCtx()
			// Spin until the predecessors holding the gating lock commit:
			// the schedule the contended Acquire loop charges.
			var waited sim.Micros
			for attempt := 0; waited < gate; attempt++ {
				ctx.Charge(costs.RPC + costs.CheckAndPut) // failed checkAndPut
				b := costs.LockBackoff(attempt)
				if b <= 0 {
					// Degenerate schedule (zero backoff): wait out the
					// holder directly instead of spinning forever.
					ctx.Charge(gate - waited)
					break
				}
				ctx.Charge(b)
				waited += b
			}
			// Execute uncontended through the full production path: the
			// WAL-logged transaction layer, one transaction, ops statements.
			hold := sim.NewCtx()
			stmts := make([]sqlparser.Statement, len(rows))
			paramsList := make([][]schema.Value, len(rows))
			for i, row := range rows {
				stmts[i] = contentionUpdate
				paramsList[i] = []schema.Value{fmt.Sprintf("r%d-w%d-s%d", r, w, i), row}
			}
			if err := sys.ExecTxn(hold, stmts, paramsList); err != nil {
				return ContentionCell{}, err
			}
			done := gate + hold.Elapsed()
			for _, row := range rows {
				release[row] = done
			}
			ctx.Join(hold)
			samples = append(samples, ctx.Elapsed())
		}
	}
	return ContentionCell{Txns: len(samples), Mean: Summarize(samples)}, nil
}

// runOptimisticCell drives an MVCC or OCC system in deterministic waves:
// all of a round's transactions begin and buffer their ops updates before
// any commits, so every same-row pair overlaps; the first commit wins and
// the rest abort at conflict detection and re-run solo — re-executing
// every statement, which is what makes long transactions expensive to lose.
func runOptimisticCell(sys *synergy.System, mode synergy.ConcurrencyMode, hotRows, workers, rounds, ops int, seed int64, costs *sim.Costs) (ContentionCell, error) {
	rng := rand.New(rand.NewSource(seed))
	samples := make([]sim.Micros, 0, workers*rounds)
	var conflicts, retries int64
	const maxRetries = 100

	layer, err := calibrateTxnLayer(sys, mode)
	if err != nil {
		return ContentionCell{}, err
	}

	execAll := func(ctx *sim.Ctx, tx *synergy.Tx, r, w int, rows []int64) error {
		for i, row := range rows {
			if err := tx.Exec(ctx, contentionUpdate,
				[]schema.Value{fmt.Sprintf("r%d-w%d-s%d", r, w, i), row}); err != nil {
				return err
			}
		}
		return nil
	}

	for r := 0; r < rounds; r++ {
		ctxs := make([]*sim.Ctx, workers)
		txs := make([]*synergy.Tx, workers)
		rows := make([][]int64, workers)
		for w := 0; w < workers; w++ {
			rows[w] = drawRows(rng, hotRows, ops)
			ctxs[w] = sim.NewCtx()
			ctxs[w].Charge(layer) // once per transaction; internal retries re-log nothing
			txs[w] = sys.BeginTx(ctxs[w])
			if err := execAll(ctxs[w], txs[w], r, w, rows[w]); err != nil {
				return ContentionCell{}, err
			}
		}
		for w := 0; w < workers; w++ {
			err := txs[w].Commit(ctxs[w])
			for attempt := 0; err != nil; attempt++ {
				if !isConflict(err) || attempt >= maxRetries {
					return ContentionCell{}, err
				}
				// Conflict loser: back off on the shared capped
				// exponential schedule and re-run the whole transaction —
				// every statement — alone on the same request context,
				// exactly like the synergy transaction layer's
				// bounded-backoff retry.
				conflicts++
				retries++
				ctxs[w].CountOCCRetry()
				ctxs[w].Charge(costs.LockBackoff(attempt))
				tx := sys.BeginTx(ctxs[w])
				if err = execAll(ctxs[w], tx, r, w, rows[w]); err == nil {
					err = tx.Commit(ctxs[w])
				} else if isConflict(err) {
					// A statement-level conflict (MVCC write-write) still
					// needs the buffered work discarded before re-running.
					_ = tx.Abort(ctxs[w])
				}
			}
			samples = append(samples, ctxs[w].Elapsed())
		}
	}
	return ContentionCell{
		Txns: len(samples), Mean: Summarize(samples),
		Conflicts: conflicts, Retries: retries,
	}, nil
}

// calibrateTxnLayer measures the transaction layer's per-transaction
// overhead for the wave harness to charge. OCC production writes route
// through the WAL-logged transaction layer, which the harness bypasses to
// interleave transactions: one uncontended update through the full path
// minus one through the transaction API isolates the layer hop plus the WAL
// statement/outcome appends, so the cells compare concurrency mechanisms,
// not logging. MVCC runs client-side with no transaction layer, as in the
// paper's systems, so its calibration delta is ~0 by construction.
func calibrateTxnLayer(sys *synergy.System, mode synergy.ConcurrencyMode) (sim.Micros, error) {
	if mode != synergy.OCC {
		return 0, nil
	}
	full := sim.NewCtx()
	if err := sys.Exec(full, contentionUpdate, []schema.Value{"calibrate", int64(1)}); err != nil {
		return 0, err
	}
	direct := sim.NewCtx()
	tx := sys.BeginTx(direct)
	if err := tx.Exec(direct, contentionUpdate, []schema.Value{"calibrate", int64(1)}); err != nil {
		return 0, err
	}
	if err := tx.Commit(direct); err != nil {
		return 0, err
	}
	if d := full.Elapsed() - direct.Elapsed(); d > 0 {
		return d, nil
	}
	return 0, nil
}

// runHerdCell is runOptimisticCell with the losers' retry discipline
// inverted: instead of re-running solo like a backed-off client, every
// conflict loser in a wave backs off and then re-executes simultaneously
// with the other losers, racing to commit again. Each retry wave crowns one
// winner, so a round with k same-row overlaps pays k retry waves whose
// backoff charges climb the capped-exponential schedule — the contention
// collapse a naive retry loop produces under a thundering herd.
func runHerdCell(sys *synergy.System, mode synergy.ConcurrencyMode, hotRows, workers, rounds, ops int, seed int64, costs *sim.Costs) (ContentionCell, error) {
	rng := rand.New(rand.NewSource(seed))
	samples := make([]sim.Micros, 0, workers*rounds)
	var conflicts, retries int64
	const maxWaves = 100

	layer, err := calibrateTxnLayer(sys, mode)
	if err != nil {
		return ContentionCell{}, err
	}

	execAll := func(ctx *sim.Ctx, tx *synergy.Tx, r, w int, rows []int64) error {
		for i, row := range rows {
			if err := tx.Exec(ctx, contentionUpdate,
				[]schema.Value{fmt.Sprintf("r%d-w%d-s%d", r, w, i), row}); err != nil {
				return err
			}
		}
		return nil
	}

	for r := 0; r < rounds; r++ {
		ctxs := make([]*sim.Ctx, workers)
		txs := make([]*synergy.Tx, workers)
		rows := make([][]int64, workers)
		pending := make([]int, 0, workers)
		for w := 0; w < workers; w++ {
			rows[w] = drawRows(rng, hotRows, ops)
			ctxs[w] = sim.NewCtx()
			ctxs[w].Charge(layer)
			txs[w] = sys.BeginTx(ctxs[w])
			if err := execAll(ctxs[w], txs[w], r, w, rows[w]); err != nil {
				return ContentionCell{}, err
			}
			pending = append(pending, w)
		}
		for attempt := 0; len(pending) > 0; attempt++ {
			if attempt >= maxWaves {
				return ContentionCell{}, fmt.Errorf("herd cell: %d workers still conflicting after %d waves", len(pending), attempt)
			}
			losers := pending[:0:0]
			for _, w := range pending {
				var err error
				if txs[w] != nil {
					err = txs[w].Commit(ctxs[w])
				} else {
					// The re-execution itself conflicted last wave (MVCC
					// write-write at statement level); the loser goes around
					// again without a commit attempt.
					err = mvcc.ErrConflict
				}
				if err == nil {
					samples = append(samples, ctxs[w].Elapsed())
					continue
				}
				if !isConflict(err) {
					return ContentionCell{}, err
				}
				conflicts++
				retries++
				ctxs[w].CountOCCRetry()
				ctxs[w].Charge(costs.LockBackoff(attempt))
				losers = append(losers, w)
			}
			// Every loser re-executes before any of them re-commits: the
			// herd stays maximally overlapped on each wave.
			for _, w := range losers {
				tx := sys.BeginTx(ctxs[w])
				if err := execAll(ctxs[w], tx, r, w, rows[w]); err != nil {
					if !isConflict(err) {
						return ContentionCell{}, err
					}
					_ = tx.Abort(ctxs[w])
					tx = nil
				}
				txs[w] = tx
			}
			pending = losers
		}
	}
	return ContentionCell{
		Txns: len(samples), Mean: Summarize(samples),
		Conflicts: conflicts, Retries: retries,
	}, nil
}

// isConflict matches both optimistic mechanisms' conflict sentinels.
func isConflict(err error) bool {
	return errors.Is(err, occ.ErrConflict) || errors.Is(err, mvcc.ErrConflict)
}

// RenderContention formats the sweep as a Figure-13-style grid: the
// mechanisms matrix made quantitative along a contention axis.
func RenderContention(r *ContentionResult) string {
	var b strings.Builder
	retryStyle := "solo retries"
	if r.Herd {
		retryStyle = "herd retries"
	}
	fmt.Fprintf(&b, "Contention sweep: %d rounds x %d overlapping transactions x %d root updates each, %s (ms/txn; abort%% = conflicts per commit attempt)\n",
		r.Rounds, r.Workers, r.Ops, retryStyle)
	fmt.Fprintf(&b, "%-10s", "hot rows")
	for _, m := range ContentionModes {
		fmt.Fprintf(&b, " %30s", m.Name)
	}
	b.WriteByte('\n')
	for _, hr := range r.HotRows {
		fmt.Fprintf(&b, "%-10d", hr)
		for _, m := range ContentionModes {
			c := r.Cells[hr][m.Name]
			cell := fmt.Sprintf("%s (%.0f%%, %d retries)", c.Mean, 100*c.AbortRate(), c.Retries)
			fmt.Fprintf(&b, " %30s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
