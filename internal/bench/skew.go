package bench

import (
	"fmt"
	"strings"

	"synergy/internal/cluster"
	"synergy/internal/hbase"
	"synergy/internal/sim"
)

// The hot-region experiment: Zipf-skewed key popularity against a region-
// partitioned store, with and without the load balancer. It is the scaling
// story the paper's eight-node testbed leaves implicit — §II-C's "regions
// are the unit of distribution and load balancing" — made measurable:
//
//   - keys are ordered and ranks map to key order, so Zipf skew concentrates
//     traffic on the head regions (the newest-orders / hottest-tenant
//     pattern of range-keyed schemas);
//   - the cluster's per-server queueing model makes every op pay the wait
//     behind its region server's backlog, so a hot server is slow in the
//     measured latency, not just in a counter;
//   - the balancer (load splits + greedy moves, zk-elected) is the knob
//     under test: off reproduces the static round-robin assignment, on lets
//     hot regions split and spread.
//
// Everything runs in waves on one goroutine: each wave's ops issue
// sequentially on fresh contexts (they all "arrive" at the model's current
// virtual time), the virtual clock advances by the wave's makespan, and —
// in balanced cells — the balancer ticks synchronously between waves.
// Results are deterministic for a given seed.

// SkewOpts sizes the skew sweep.
type SkewOpts struct {
	Keys     int // keyspace size (default 50,000)
	Regions  int // pre-split region count (default 10)
	WaveOps  int // concurrent ops per wave (default 64)
	Waves    int // measured waves (default 40)
	Warmup   int // unmeasured warm-up waves (default 10)
	ReadFrac int // percent of ops that are reads (default 90)
	// LoadSplitThreshold for balanced cells (default WaveOps/4): decayed
	// per-region op score above which the balancer splits.
	LoadSplitThreshold int
}

func (o *SkewOpts) normalize() {
	if o.Keys <= 0 {
		o.Keys = 50_000
	}
	if o.Regions <= 0 {
		o.Regions = 10
	}
	if o.WaveOps <= 0 {
		o.WaveOps = 64
	}
	if o.Waves <= 0 {
		o.Waves = 40
	}
	if o.Warmup < 0 {
		o.Warmup = 0
	} else if o.Warmup == 0 {
		o.Warmup = 10
	}
	if o.ReadFrac <= 0 || o.ReadFrac > 100 {
		o.ReadFrac = 90
	}
	if o.LoadSplitThreshold <= 0 {
		o.LoadSplitThreshold = o.WaveOps / 4
	}
}

// SkewCell is one (distribution, balancer mode) measurement.
type SkewCell struct {
	S        float64 // Zipf exponent; 0 = uniform
	Balanced bool
	// Latency is the mean per-op simulated latency across measured waves.
	Latency Measurement
	// QueueShare is the fraction of total simulated op time spent queued
	// behind region-server backlogs.
	QueueShare float64
	// HotShare is the busiest server's fraction of measured server work.
	HotShare float64
	Regions  int   // final region count
	Moves    int64 // balancer moves performed
	Splits   int64 // balancer load splits performed
}

// SkewResult is the full sweep.
type SkewResult struct {
	Opts  SkewOpts
	Ss    []float64
	Cells map[float64]map[bool]SkewCell // s -> balanced -> cell
}

const skewTable = "skew"

// skewKey maps a popularity rank to a row key. Identity order: rank r is the
// r-th key of the sorted keyspace, so low (hot) ranks cluster in the head
// regions.
func skewKey(rank int) string { return fmt.Sprintf("k%08d", rank) }

// RunSkew measures every (s, balancer) cell.
func RunSkew(ss []float64, opts SkewOpts, seed int64) (*SkewResult, error) {
	opts.normalize()
	if len(ss) == 0 {
		ss = []float64{0, 0.99, 1.2}
	}
	res := &SkewResult{Opts: opts, Ss: ss, Cells: map[float64]map[bool]SkewCell{}}
	rng := sim.NewRNG(seed).Derive("skew")
	for _, s := range ss {
		res.Cells[s] = map[bool]SkewCell{}
		for _, balanced := range []bool{false, true} {
			cell, err := runSkewCell(s, balanced, opts, rng)
			if err != nil {
				return nil, err
			}
			res.Cells[s][balanced] = cell
		}
	}
	return res, nil
}

// runSkewCell builds a fresh cluster and drives the wave workload. Both
// balancer modes draw the op sequence from the same derived stream, so a
// cell pair differs only in what the balancer does.
func runSkewCell(s float64, balanced bool, opts SkewOpts, rng *sim.RNG) (SkewCell, error) {
	cl := cluster.NewDefault(nil)
	cl.EnableQueueing()
	hc := hbase.NewHCluster(cl, nil, nil)

	spec := hbase.TableSpec{Name: skewTable}
	if balanced {
		spec.LoadSplitThreshold = opts.LoadSplitThreshold
	}
	stride := opts.Keys / opts.Regions
	for b := stride; b < opts.Keys; b += stride {
		spec.SplitKeys = append(spec.SplitKeys, skewKey(b))
	}
	if err := hc.CreateTable(spec); err != nil {
		return SkewCell{}, err
	}
	rows := make([]hbase.BulkRow, opts.Keys)
	for i := range rows {
		rows[i] = hbase.BulkRow{Key: skewKey(i), Cells: []hbase.Cell{{Qualifier: "v", Value: []byte("seed")}}}
	}
	if err := hc.BulkLoad(skewTable, rows); err != nil {
		return SkewCell{}, err
	}

	var bal *hbase.Balancer
	if balanced {
		var err error
		bal, err = hc.NewBalancer("bench")
		if err != nil {
			return SkewCell{}, err
		}
		defer bal.Close()
	}

	// Same stream name for both balancer modes of a distribution: identical
	// op sequences, so the balancer is the only difference between cells.
	ops := rng.Derive(fmt.Sprintf("ops/s=%g", s))
	zipf := sim.NewZipf(ops.Derive("rank"), opts.Keys, s)
	mix := ops.Derive("mix")
	client := hc.NewWarmClient()

	var (
		waveMeans  []sim.Micros
		totalTime  sim.Micros
		queueTime  sim.Micros
		serverBusy = map[string]sim.Micros{}
	)
	baseline := map[string]sim.Micros{}
	for _, nl := range cl.NodeLoads() {
		baseline[nl.Node] = nl.Busy
	}
	totalWaves := opts.Warmup + opts.Waves
	for wave := 0; wave < totalWaves; wave++ {
		measured := wave >= opts.Warmup
		var waveSum, makespan sim.Micros
		for op := 0; op < opts.WaveOps; op++ {
			key := skewKey(zipf.Next())
			ctx := sim.NewCtx()
			if mix.Intn(100) < opts.ReadFrac {
				if _, err := client.Get(ctx, skewTable, key, hbase.ReadOpts{}); err != nil {
					return SkewCell{}, err
				}
			} else {
				err := client.Put(ctx, skewTable, key, []hbase.Cell{{Qualifier: "v", Value: []byte("w")}})
				if err != nil {
					return SkewCell{}, err
				}
			}
			e := ctx.Elapsed()
			waveSum += e
			if e > makespan {
				makespan = e
			}
			if measured {
				totalTime += e
				queueTime += ctx.Snapshot().QueueWaitTime
			}
		}
		if measured {
			waveMeans = append(waveMeans, waveSum/sim.Micros(opts.WaveOps))
		} else if wave == opts.Warmup-1 {
			// Server-work attribution starts at the measurement boundary.
			for _, nl := range cl.NodeLoads() {
				baseline[nl.Node] = nl.Busy
			}
		}
		cl.Advance(makespan)
		if bal != nil {
			// Synchronous tick on a background context: deterministic, and
			// none of the coordination cost lands on a client op.
			bal.Tick(sim.NewCtx())
		}
	}

	cell := SkewCell{S: s, Balanced: balanced, Latency: Summarize(waveMeans)}
	if totalTime > 0 {
		cell.QueueShare = float64(queueTime) / float64(totalTime)
	}
	var busyTotal, busyMax sim.Micros
	for _, nl := range cl.NodeLoads() {
		if cl.Node(nl.Node) == nil || cl.Node(nl.Node).Role != cluster.RoleSlave {
			continue
		}
		busy := nl.Busy - baseline[nl.Node]
		serverBusy[nl.Node] = busy
		busyTotal += busy
		if busy > busyMax {
			busyMax = busy
		}
	}
	if busyTotal > 0 {
		cell.HotShare = float64(busyMax) / float64(busyTotal)
	}
	cell.Regions = hc.RegionCount(skewTable)
	if bal != nil {
		cell.Moves = bal.Moves()
		cell.Splits = bal.Splits()
	}
	return cell, nil
}

// RenderSkew prints the sweep as a balancer off/on comparison per
// distribution, with the degradation each cell shows over its uniform
// counterpart.
func RenderSkew(r *SkewResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hot-region load under Zipf skew (%d keys, %d ops/wave, %d waves, %d%% reads)\n",
		r.Opts.Keys, r.Opts.WaveOps, r.Opts.Waves, r.Opts.ReadFrac)
	fmt.Fprintf(&b, "%-12s  %-28s  %-28s\n", "", "balancer off", "balancer on")
	fmt.Fprintf(&b, "%-12s  %-12s %-6s %-8s  %-12s %-6s %-8s %s\n",
		"distribution", "ms/op", "xunif", "hot%", "ms/op", "xunif", "hot%", "regions/moves")
	uniOff, uniOn := 1.0, 1.0
	if cells, ok := r.Cells[0]; ok {
		if c, ok := cells[false]; ok && c.Latency.Mean > 0 {
			uniOff = c.Latency.Mean
		}
		if c, ok := cells[true]; ok && c.Latency.Mean > 0 {
			uniOn = c.Latency.Mean
		}
	}
	for _, s := range r.Ss {
		off, on := r.Cells[s][false], r.Cells[s][true]
		name := "uniform"
		if s != 0 {
			name = fmt.Sprintf("zipf %.2f", s)
		}
		fmt.Fprintf(&b, "%-12s  %-12s %-6s %-8s  %-12s %-6s %-8s %d/%d\n",
			name,
			off.Latency.String(), fmt.Sprintf("%.2fx", off.Latency.Mean/uniOff),
			fmt.Sprintf("%.0f%%", off.HotShare*100),
			on.Latency.String(), fmt.Sprintf("%.2fx", on.Latency.Mean/uniOn),
			fmt.Sprintf("%.0f%%", on.HotShare*100),
			on.Regions, on.Moves)
	}
	b.WriteString("ms/op: mean per-op simulated latency (queue wait included); xunif: vs the\n")
	b.WriteString("uniform cell of the same column; hot%: busiest server's share of server work.\n")
	return b.String()
}
