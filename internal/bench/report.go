package bench

import (
	"fmt"
	"strings"
)

// RenderFigure10 formats the micro-benchmark results.
func RenderFigure10(rows []Figure10Row) string {
	var b strings.Builder
	b.WriteString("Figure 10: micro-benchmark — view scan vs join algorithm (ms)\n")
	fmt.Fprintf(&b, "%-10s %-6s %16s %16s %10s\n", "customers", "query", "view scan", "join algorithm", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %-6s %16s %16s %9.1fx\n",
			r.Customers, r.Query, r.ViewScan, r.JoinAlgo, r.Speedup())
	}
	return b.String()
}

// RenderFigure11 formats the lock-overhead results.
func RenderFigure11(rows []Figure11Row) string {
	var b strings.Builder
	b.WriteString("Figure 11: two-phase row locking overhead in HBase (cold client)\n")
	fmt.Fprintf(&b, "%-12s %16s\n", "locks", "overhead (ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12d %16s\n", r.Locks, r.Overhead)
	}
	return b.String()
}

// RenderGrid formats Figure 12 / Figure 14 style results.
func RenderGrid(title string, g *GridResult) string {
	var b strings.Builder
	b.WriteString(title + " (ms; X = unsupported)\n")
	fmt.Fprintf(&b, "%-6s", "stmt")
	for _, sys := range g.Systems {
		fmt.Fprintf(&b, " %16s", sys)
	}
	b.WriteByte('\n')
	for _, st := range g.Statements {
		fmt.Fprintf(&b, "%-6s", st)
		for _, sys := range g.Systems {
			fmt.Fprintf(&b, " %16s", g.Cells[st][sys])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderComparisons prints the discussion ratios of §IX-D3/D4 for a grid.
func RenderComparisons(g *GridResult) string {
	var b strings.Builder
	all := g.Statements
	syn := g.MeanOver("Synergy", all)
	if syn <= 0 {
		return ""
	}
	for _, sys := range []string{"MVCC-UA", "MVCC-A", "Baseline"} {
		if m := g.MeanOver(sys, all); m > 0 {
			fmt.Fprintf(&b, "Synergy vs %-9s mean ratio: %.1fx\n", sys+":", m/syn)
		}
	}
	// VoltDB over its supported subset only.
	sup := g.SupportedBy("VoltDB")
	if len(sup) > 0 {
		v := g.MeanOver("VoltDB", sup)
		s := g.MeanOver("Synergy", sup)
		if v > 0 {
			fmt.Fprintf(&b, "Synergy vs VoltDB (supported subset): %.1fx slower\n", s/v)
		}
	}
	return b.String()
}

// RenderTableII formats Table II.
func RenderTableII(rows []TableIIRow) string {
	var b strings.Builder
	b.WriteString("Table II: sum of response times of all TPC-W statements (s)\n")
	fmt.Fprintf(&b, "%-10s %16s\n", "system", "total (s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %16s\n", r.System, r.Total)
	}
	return b.String()
}

// RenderTableIII formats Table III.
func RenderTableIII(rows []TableIIIRow, customers int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III: database sizes (measured at %d customers, extrapolated to 1M)\n", customers)
	fmt.Fprintf(&b, "%-10s %18s %18s\n", "system", "measured (MB)", "at 1M cust (GB)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %18.1f %18.1f\n", r.System, float64(r.MeasuredBytes)/1e6, r.ExtrapolatedGB)
	}
	return b.String()
}
