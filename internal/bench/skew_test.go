package bench

import (
	"strings"
	"testing"
)

// skewTestOpts is large enough to show the acceptance margins (off-mode
// degradation ≥ 2x under Zipf 0.99, on-mode recovery within ~1.3x of
// uniform) but a fraction of the CLI default's runtime.
func skewTestOpts() SkewOpts {
	return SkewOpts{Keys: 20_000, WaveOps: 64, Waves: 16, Warmup: 8}
}

// TestSkewDeterministic: the sweep is a pure function of (ss, opts, seed) —
// every cell, counter and region count repeats exactly.
func TestSkewDeterministic(t *testing.T) {
	ss := []float64{0, 0.99}
	a, err := RunSkew(ss, skewTestOpts(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSkew(ss, skewTestOpts(), 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ss {
		for _, balanced := range []bool{false, true} {
			ca, cb := a.Cells[s][balanced], b.Cells[s][balanced]
			if ca != cb {
				t.Fatalf("cell (s=%g, balanced=%v) not deterministic:\n  %+v\n  %+v", s, balanced, ca, cb)
			}
		}
	}
}

// TestSkewBalancerRecoversHotRegionLoss is the experiment's acceptance
// criterion: with the balancer off, Zipf skew degrades mean latency at
// least 2x over uniform; with it on, the skewed cell lands within 1.3x of
// its uniform counterpart, and the hot server's share of work drops.
func TestSkewBalancerRecoversHotRegionLoss(t *testing.T) {
	res, err := RunSkew([]float64{0, 0.99}, skewTestOpts(), 1)
	if err != nil {
		t.Fatal(err)
	}
	uniOff := res.Cells[0][false].Latency.Mean
	uniOn := res.Cells[0][true].Latency.Mean
	off := res.Cells[0.99][false]
	on := res.Cells[0.99][true]

	if degrade := off.Latency.Mean / uniOff; degrade < 2.0 {
		t.Fatalf("balancer-off degradation uniform→zipf = %.2fx, want >= 2x (skew must hurt)", degrade)
	}
	if recover := on.Latency.Mean / uniOn; recover > 1.3 {
		t.Fatalf("balancer-on zipf/uniform = %.2fx, want <= 1.3x (balancer must fix it)", recover)
	}
	if on.HotShare >= off.HotShare {
		t.Fatalf("hot-server share %0.f%% -> %.0f%% with balancing, want a drop",
			off.HotShare*100, on.HotShare*100)
	}
	if on.Moves == 0 && on.Splits == 0 {
		t.Fatal("balanced cell recovered without any balancer action — nothing was tested")
	}
	if off.QueueShare <= res.Cells[0][false].QueueShare {
		t.Fatal("skewed queue-wait share should exceed uniform's")
	}
}

// TestRenderSkew smoke-checks the report shape.
func TestRenderSkew(t *testing.T) {
	opts := SkewOpts{Keys: 2000, WaveOps: 16, Waves: 4, Warmup: 2}
	res, err := RunSkew([]float64{0, 1.2}, opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderSkew(res)
	for _, want := range []string{"balancer off", "balancer on", "uniform", "zipf 1.20", "ms/op"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
