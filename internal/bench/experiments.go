package bench

import (
	"fmt"
	"strings"

	"synergy/internal/cluster"
	"synergy/internal/hbase"
	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
	"synergy/internal/synergy"
	"synergy/internal/tpcw"
)

// ---------------------------------------------------------------------------
// Figure 10 — micro-benchmark: view scan vs join algorithm

// Figure10Row is one (scale, query) cell of Figure 10.
type Figure10Row struct {
	Customers int
	Query     string // "Q1" (2-way) or "Q2" (3-way)
	ViewScan  Measurement
	JoinAlgo  Measurement
}

// Speedup reports the view-scan advantage.
func (r Figure10Row) Speedup() float64 {
	if r.ViewScan.Mean == 0 {
		return 0
	}
	return r.JoinAlgo.Mean / r.ViewScan.Mean
}

// RunFigure10 regenerates Figure 10: for each database scale, the response
// time of the micro-benchmark joins evaluated via the join algorithm and via
// a scan of the materialized view (§IX-B2). The database scale is the number
// of customers with 1:10 customer:order and order:order-line ratios.
func RunFigure10(scales []int, reps int, seed int64, costs *sim.Costs) ([]Figure10Row, error) {
	if len(scales) == 0 {
		scales = []int{500, 5000, 50000}
	}
	rng := sim.NewRNG(seed)
	var out []Figure10Row
	for _, scale := range scales {
		sys, err := synergy.New(tpcw.MicroSchema(), tpcw.MicroRoots(), tpcw.MicroWorkloadSQL(), synergy.Config{Costs: costs})
		if err != nil {
			return nil, err
		}
		for table, rows := range tpcw.MicroGenerate(scale, seed) {
			if err := sys.LoadBase(table, rows); err != nil {
				return nil, err
			}
		}
		if err := sys.BuildViews(); err != nil {
			return nil, err
		}
		queries := []struct {
			name string
			sel  *sqlparser.SelectStmt
		}{
			{"Q1", sys.Design.Workload.Selects()[0]},
			{"Q2", sys.Design.Workload.Selects()[1]},
		}
		for _, q := range queries {
			row := Figure10Row{Customers: scale, Query: q.name}
			m, err := measure(reps, rng.Derive(fmt.Sprintf("f10/view/%d/%s", scale, q.name)), func(int) (sim.Micros, error) {
				ctx := sim.NewCtx()
				_, err := sys.Query(ctx, q.sel, nil) // rewritten: view scan
				return ctx.Elapsed(), err
			})
			if err != nil {
				return nil, err
			}
			row.ViewScan = m
			m, err = measure(reps, rng.Derive(fmt.Sprintf("f10/join/%d/%s", scale, q.name)), func(int) (sim.Micros, error) {
				ctx := sim.NewCtx()
				_, err := sys.Engine.Query(ctx, q.sel, nil) // base tables: join algorithm
				return ctx.Elapsed(), err
			})
			if err != nil {
				return nil, err
			}
			row.JoinAlgo = m
			out = append(out, row)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 11 — two-phase row locking overhead

// Figure11Row is one lock-count measurement.
type Figure11Row struct {
	Locks    int
	Overhead Measurement
}

// RunFigure11 regenerates Figure 11: the client-measured overhead of
// acquiring and releasing N row locks in HBase via checkAndPut, from a cold
// client (§IX-C).
func RunFigure11(counts []int, reps int, seed int64, costs *sim.Costs) ([]Figure11Row, error) {
	if len(counts) == 0 {
		counts = []int{10, 100, 1000}
	}
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	rng := sim.NewRNG(seed)
	var out []Figure11Row
	for _, n := range counts {
		cl := cluster.NewDefault(costs)
		store := hbase.NewHCluster(cl, nil, nil)
		lm := synergy.NewLockManager(store)
		if err := lm.CreateLockTables([]string{"FIG11"}); err != nil {
			return nil, err
		}
		// Populate lock entries.
		entries := make([]hbase.BulkRow, 0, n)
		for i := 0; i < n; i++ {
			entries = append(entries, hbase.BulkRow{Key: schema.EncodeKey(int64(i))})
		}
		if err := lm.BulkCreateEntries("FIG11", entries); err != nil {
			return nil, err
		}
		m, err := measure(reps, rng.Derive(fmt.Sprintf("f11/%d", n)), func(int) (sim.Micros, error) {
			ctx := sim.NewCtx()
			client := store.NewClient() // cold: pays connection setup
			for i := 0; i < n; i++ {
				if err := lm.AcquireWith(ctx, client, "FIG11", schema.EncodeKey(int64(i))); err != nil {
					return 0, err
				}
			}
			for i := 0; i < n; i++ {
				if err := lm.ReleaseWith(ctx, client, "FIG11", schema.EncodeKey(int64(i))); err != nil {
					return 0, err
				}
			}
			return ctx.Elapsed(), nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Figure11Row{Locks: n, Overhead: m})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figures 12 and 14 — TPC-W statement response times across systems

// GridResult holds per-statement, per-system measurements.
type GridResult struct {
	Statements []string
	Systems    []string
	Cells      map[string]map[string]Measurement // stmt -> system -> measurement
}

func runGrid(set *SystemSet, stmts []tpcw.Stmt, reps int, seed int64) (*GridResult, error) {
	res := &GridResult{Cells: map[string]map[string]Measurement{}}
	for _, sys := range set.All() {
		res.Systems = append(res.Systems, sys.Name())
	}
	rng := sim.NewRNG(seed)
	for _, st := range stmts {
		res.Statements = append(res.Statements, st.ID)
		res.Cells[st.ID] = map[string]Measurement{}
		// Every system sees the identical parameter sequence so the
		// comparison is apples to apples.
		paramSets := make([][]schema.Value, reps)
		pstream := rng.Derive("params/" + st.ID)
		for r := range paramSets {
			paramSets[r] = st.Params(set.Data, pstream)
		}
		for _, sys := range set.All() {
			if !sys.Supported(st) {
				res.Cells[st.ID][sys.Name()] = Measurement{} // N == 0 renders X
				continue
			}
			m, err := measure(reps, rng.Derive("noise/"+st.ID+"/"+sys.Name()), func(rep int) (sim.Micros, error) {
				ctx := sim.NewCtx()
				err := sys.Run(ctx, st, paramSets[rep])
				return ctx.Elapsed(), err
			})
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", st.ID, sys.Name(), err)
			}
			res.Cells[st.ID][sys.Name()] = m
		}
	}
	return res, nil
}

// RunFigure12 regenerates Figure 12: join queries Q1-Q11 across the five
// systems.
func RunFigure12(set *SystemSet, reps int, seed int64) (*GridResult, error) {
	return runGrid(set, tpcw.JoinQueries(), reps, seed)
}

// RunFigure14 regenerates Figure 14: write statements W1-W13 across the five
// systems.
func RunFigure14(set *SystemSet, reps int, seed int64) (*GridResult, error) {
	return runGrid(set, tpcw.WriteStatements(), reps, seed)
}

// MeanOver averages a system's column over a statement subset (used for the
// "on average Synergy is Nx faster" discussion numbers).
func (g *GridResult) MeanOver(system string, stmts []string) float64 {
	var sum float64
	n := 0
	for _, s := range stmts {
		m, ok := g.Cells[s][system]
		if !ok || m.N == 0 {
			continue
		}
		sum += m.Mean
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// SupportedBy lists statements a system has measurements for.
func (g *GridResult) SupportedBy(system string) []string {
	var out []string
	for _, s := range g.Statements {
		if m, ok := g.Cells[s][system]; ok && m.N > 0 {
			out = append(out, s)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Table II — sum of response times of all statements

// TableIIRow is one system's full-benchmark response time.
type TableIIRow struct {
	System string
	Total  Measurement // seconds
}

// RunTableII regenerates Table II: the sum of the response times of every
// statement in the workload, per HBase-backed system (VoltDB excluded, as it
// does not support all queries).
func RunTableII(set *SystemSet, reps int, seed int64) ([]TableIIRow, error) {
	rng := sim.NewRNG(seed)
	stmts := tpcw.AllStatements()
	// Shared parameter sequences: all systems run the same values.
	paramSets := make([][][]schema.Value, reps)
	pstream := rng.Derive("t2/params")
	for r := range paramSets {
		paramSets[r] = make([][]schema.Value, len(stmts))
		for i, st := range stmts {
			paramSets[r][i] = st.Params(set.Data, pstream)
		}
	}
	var out []TableIIRow
	for _, sys := range set.HBaseSystems() {
		noise := rng.Derive("t2/noise/" + sys.Name())
		samples := make([]sim.Micros, 0, reps)
		for rep := 0; rep < reps; rep++ {
			var total sim.Micros
			for i, st := range stmts {
				ctx := sim.NewCtx()
				if err := sys.Run(ctx, st, paramSets[rep][i]); err != nil {
					return nil, fmt.Errorf("%s on %s: %w", st.ID, sys.Name(), err)
				}
				// Measurement noise applies per statement; the
				// aggregate's relative noise shrinks as 1/sqrt(n).
				total += noise.Jitter(ctx.Elapsed(), 0.02)
			}
			samples = append(samples, total)
		}
		m := Summarize(samples)
		// Report in seconds as the paper does.
		m.Mean /= 1000
		m.StdErr /= 1000
		out = append(out, TableIIRow{System: sys.Name(), Total: m})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Table III — database sizes

// TableIIIRow is one system's storage footprint.
type TableIIIRow struct {
	System string
	// MeasuredBytes at the generated scale.
	MeasuredBytes int64
	// ExtrapolatedGB scales linearly to the paper's 1M customers.
	ExtrapolatedGB float64
}

// RunTableIII regenerates Table III: database sizes across systems,
// extrapolated linearly from the generated scale to 1M customers.
func RunTableIII(set *SystemSet) []TableIIIRow {
	scale := float64(1_000_000) / float64(set.Data.Card.Customers)
	var out []TableIIIRow
	for _, sys := range set.All() {
		b := sys.DatabaseBytes()
		out = append(out, TableIIIRow{
			System:         sys.Name(),
			MeasuredBytes:  b,
			ExtrapolatedGB: float64(b) * scale / 1e9,
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// Static artifacts

// Figure13Matrix renders the mechanisms matrix of Figure 13.
func Figure13Matrix() string {
	var b strings.Builder
	w := func(cols ...string) {
		fmt.Fprintf(&b, "%-22s %-26s %-26s\n", cols[0], cols[1], cols[2])
	}
	b.WriteString("Figure 13: mechanisms used in each evaluated system\n")
	w("System", "MV Selection", "Concurrency Control")
	w("------", "------------", "-------------------")
	w("VoltDB", "None", "Single-threaded partitions")
	w("Synergy", "Schema-relationships aware", "Hierarchical locking")
	w("MVCC-A", "Schema-relationships aware", "MVCC")
	w("MVCC-UA", "Schema-relationships UNaware", "MVCC")
	w("Baseline", "None", "MVCC")
	// Beyond the paper: the optimistic third mechanism this reproduction
	// adds to the comparison (see the contention sweep).
	w("Synergy-OCC", "Schema-relationships aware", "OCC (backward validation)")
	return b.String()
}

// TableIQualitative renders Table I.
func TableIQualitative() string {
	var b strings.Builder
	w := func(cols ...string) {
		fmt.Fprintf(&b, "%-10s %-18s %-34s %-38s %-16s\n", cols[0], cols[1], cols[2], cols[3], cols[4])
	}
	b.WriteString("Table I: qualitative comparison of NoSQL, NewSQL and Synergy systems\n")
	w("System", "Scalability", "Query Expressiveness", "Transaction Support", "Disk Utilization")
	w("------", "-----------", "--------------------", "-------------------", "----------------")
	w("NoSQL", "Linear scale out", "SQL", "ACID, snapshot isolation", "Higher than NewSQL")
	w("NewSQL", "Linear scale out", "SQL, joins on partition keys", "ACID, serializable isolation", "Lowest")
	w("Synergy", "Linear scale out", "SQL, MVs on key/foreign-key joins", "ACID, read-committed isolation", "Highest")
	return b.String()
}
