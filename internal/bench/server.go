package bench

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"synergy/internal/server"
	"synergy/internal/sim"
	"synergy/internal/synergy"
)

// The server experiment drives the MySQL wire server end to end: N
// concurrent client connections per concurrency mode, each running
// multi-statement transactions over a real net.Conn byte stream (in-process
// loopback for determinism), plus a deterministic admission-control
// demonstration that fills the execution slots and the wait queue exactly
// to their bounds.
//
// Latency is simulated time (sim.Ctx) read back through the charge-free
// @@synergy_sim_micros introspection variable, so the numbers are
// reproducible run to run: connections work disjoint key ranges, and
// per-server store queueing is off, so no cross-connection interaction
// perturbs a connection's accumulated cost.

// ServerOpts parameterizes the server experiment.
type ServerOpts struct {
	// Conns is the concurrent client connections per mode (default 8).
	Conns int
	// Txns is the transactions each connection runs (default 16).
	Txns int
	// Slots is the server's statement execution pool (default 8).
	Slots int
	// Queue is the admission wait-queue bound (default 16).
	Queue int
}

func (o *ServerOpts) defaults() {
	if o.Conns <= 0 {
		o.Conns = 8
	}
	if o.Txns <= 0 {
		o.Txns = 16
	}
	if o.Slots <= 0 {
		o.Slots = 8
	}
	if o.Queue <= 0 {
		o.Queue = 16
	}
}

// ServerModeResult is one concurrency mode's serving measurement.
type ServerModeResult struct {
	Mode string
	// ConnectMicros is the per-connection handshake cost.
	ConnectMicros sim.Micros
	// Txn is the per-transaction simulated latency across all connections
	// (BEGIN + INSERT + UPDATE + SELECT + COMMIT, five round-trips).
	Txn Measurement
	// TPS is the modeled steady-state throughput: min(conns, slots)
	// transactions in flight, each taking the mean latency.
	TPS float64
	// Queued and Rejected are the admission gate's counters for the run.
	// Queued is wall-clock-scheduling dependent (how often a statement
	// found every slot busy), so the render omits it; Rejected is
	// deterministically zero whenever conns-slots fits the queue bound.
	Queued, Rejected int64
}

// ServerAdmission is the deterministic gate demonstration.
type ServerAdmission struct {
	Slots, Queue int
	// Queued statements waited and then completed without error.
	Queued int64
	// Rejected statements failed fast with the server-busy error.
	Rejected int64
	// Completed counts queued statements that finished successfully after
	// the slots freed.
	Completed int
}

// ServerResult is the full server experiment output.
type ServerResult struct {
	Opts      ServerOpts
	Modes     []ServerModeResult
	Admission ServerAdmission
}

// serverBenchSeq disambiguates in-process listener names across runs in one
// process (tests run the experiment repeatedly).
var serverBenchSeq atomic.Int64

var serverModes = []struct {
	Name string
	Mode synergy.ConcurrencyMode
}{
	{"Synergy", synergy.Hierarchical},
	{"MVCC", synergy.MVCC},
	{"OCC", synergy.OCC},
}

// RunServer runs the wire-serving experiment.
func RunServer(opts ServerOpts, costs *sim.Costs) (*ServerResult, error) {
	opts.defaults()
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	res := &ServerResult{Opts: opts}
	for _, m := range serverModes {
		mr, err := runServerMode(m.Name, m.Mode, opts, costs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.Name, err)
		}
		res.Modes = append(res.Modes, *mr)
	}
	adm, err := runServerAdmission(opts, costs)
	if err != nil {
		return nil, fmt.Errorf("admission: %w", err)
	}
	res.Admission = *adm
	return res, nil
}

func runServerMode(name string, mode synergy.ConcurrencyMode, opts ServerOpts, costs *sim.Costs) (*ServerModeResult, error) {
	// One root row per connection: disjoint write sets, no lock contention
	// or optimistic conflicts, so every connection's simulated cost is
	// independent of scheduling.
	sys, err := buildContentionSystem(mode, opts.Conns, 2, costs)
	if err != nil {
		return nil, err
	}
	srv, err := server.New(server.Config{
		Backends: []server.Backend{server.SystemBackend("synergy", sys)},
		MaxConns: opts.Conns + 1,
		Slots:    opts.Slots,
		Queue:    opts.Queue,
		Costs:    costs,
	})
	if err != nil {
		return nil, err
	}
	addr := fmt.Sprintf("bench-server-%s-%d", name, serverBenchSeq.Add(1))
	l, err := server.ListenInproc(addr)
	if err != nil {
		return nil, err
	}
	go srv.Serve(l)
	defer srv.Close()

	mr := &ServerModeResult{Mode: name, ConnectMicros: costs.WireConnect}
	type connOut struct {
		lats []sim.Micros
		err  error
	}
	outs := make(chan connOut, opts.Conns)
	for w := 0; w < opts.Conns; w++ {
		go func(w int) {
			lats, err := runServerConn(addr, w, opts.Txns)
			outs <- connOut{lats, err}
		}(w)
	}
	var all []sim.Micros
	for i := 0; i < opts.Conns; i++ {
		out := <-outs
		if out.err != nil {
			return nil, out.err
		}
		all = append(all, out.lats...)
	}
	mr.Txn = Summarize(all)
	if mr.Txn.Mean > 0 {
		inFlight := opts.Conns
		if opts.Slots < inFlight {
			inFlight = opts.Slots
		}
		// Mean is milliseconds per transaction; inFlight run concurrently.
		mr.TPS = float64(inFlight) * 1000 / mr.Txn.Mean
	}
	st := srv.Stats()
	mr.Queued, mr.Rejected = st.Admission.Queued, st.Admission.Rejected
	return mr, nil
}

// runServerConn is one client connection's workload: txns transactions of
// INSERT + UPDATE + SELECT between BEGIN/COMMIT, all on the connection's own
// root row. Returns per-transaction simulated durations.
func runServerConn(addr string, w, txns int) ([]sim.Micros, error) {
	c, err := server.Dial("inproc", addr, fmt.Sprintf("bench-%d", w), "")
	if err != nil {
		return nil, err
	}
	defer c.Close()
	ins, err := c.Prepare("INSERT INTO Leaf (LID, L_RID, LVal) VALUES (?, ?, ?)")
	if err != nil {
		return nil, err
	}
	upd, err := c.Prepare("UPDATE Root SET RVal = ? WHERE RID = ?")
	if err != nil {
		return nil, err
	}
	sel, err := c.Prepare("SELECT * FROM Root as r, Leaf as l WHERE r.RID = l.L_RID and l.LVal = ?")
	if err != nil {
		return nil, err
	}
	rid := int64(w + 1)
	var lats []sim.Micros
	last, err := c.SimMicros()
	if err != nil {
		return nil, err
	}
	for i := 0; i < txns; i++ {
		val := fmt.Sprintf("w%d-t%d", w, i)
		if err := c.Begin(); err != nil {
			return nil, err
		}
		if err := ins.Exec(int64(1000+w*txns+i), rid, val); err != nil {
			return nil, err
		}
		if err := upd.Exec(val, rid); err != nil {
			return nil, err
		}
		rs, err := sel.Query(val)
		if err != nil {
			return nil, err
		}
		if len(rs.Rows) != 1 {
			return nil, fmt.Errorf("conn %d txn %d: %d rows, want 1", w, i, len(rs.Rows))
		}
		if err := c.Commit(); err != nil {
			return nil, err
		}
		now, err := c.SimMicros()
		if err != nil {
			return nil, err
		}
		lats = append(lats, sim.Micros(now-last))
		last = now
	}
	return lats, nil
}

// runServerAdmission demonstrates the gate deterministically: every slot is
// occupied, exactly Queue statements queue (none error), and one more is
// rejected fast with the server-busy error; freeing the slots completes
// every queued statement.
func runServerAdmission(opts ServerOpts, costs *sim.Costs) (*ServerAdmission, error) {
	sys, err := buildContentionSystem(synergy.Hierarchical, 1, 1, costs)
	if err != nil {
		return nil, err
	}
	srv, err := server.New(server.Config{
		Backends: []server.Backend{server.SystemBackend("synergy", sys)},
		MaxConns: opts.Queue + 2,
		Slots:    opts.Slots,
		Queue:    opts.Queue,
		Costs:    costs,
	})
	if err != nil {
		return nil, err
	}
	addr := fmt.Sprintf("bench-server-admission-%d", serverBenchSeq.Add(1))
	l, err := server.ListenInproc(addr)
	if err != nil {
		return nil, err
	}
	go srv.Serve(l)
	defer srv.Close()

	gate := srv.Gate()
	held := 0
	for gate.TryAcquire() {
		held++
	}

	done := make(chan error, opts.Queue)
	conns := make([]*server.Client, 0, opts.Queue)
	for i := 0; i < opts.Queue; i++ {
		c, err := server.Dial("inproc", addr, "adm", "")
		if err != nil {
			return nil, err
		}
		conns = append(conns, c)
		go func(c *server.Client) {
			_, err := c.Query("SELECT RVal FROM Root WHERE RID = 1")
			done <- err
		}(c)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	// Wait until all of them are queued behind the occupied slots.
	for gate.Waiting() < opts.Queue {
		time.Sleep(time.Millisecond)
	}

	// The queue is at its bound: one more statement must fail fast.
	over, err := server.Dial("inproc", addr, "adm-over", "")
	if err != nil {
		return nil, err
	}
	defer over.Close()
	if _, err := over.Query("SELECT RVal FROM Root WHERE RID = 1"); err == nil {
		return nil, fmt.Errorf("expected a server-busy rejection past the queue bound")
	}

	for i := 0; i < held; i++ {
		gate.Release()
	}
	adm := &ServerAdmission{Slots: opts.Slots, Queue: opts.Queue}
	for i := 0; i < opts.Queue; i++ {
		if err := <-done; err != nil {
			return nil, fmt.Errorf("queued statement failed: %w", err)
		}
		adm.Completed++
	}
	st := srv.Stats().Admission
	adm.Queued, adm.Rejected = st.Queued, st.Rejected
	return adm, nil
}

// RenderServer formats the server experiment.
func RenderServer(r *ServerResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Wire server: %d connections x %d transactions per mode, %d execution slots, queue bound %d (ms/txn simulated)\n",
		r.Opts.Conns, r.Opts.Txns, r.Opts.Slots, r.Opts.Queue)
	fmt.Fprintf(&b, "%-10s %-22s %-12s %s\n", "mode", "txn latency", "modeled tps", "rejected")
	for _, m := range r.Modes {
		fmt.Fprintf(&b, "%-10s %-22s %-12.0f %d\n", m.Mode, m.Txn.String(), m.TPS, m.Rejected)
	}
	a := r.Admission
	fmt.Fprintf(&b, "admission: %d slots held, %d statements queued (all %d completed after release), %d rejected at the bound\n",
		a.Slots, a.Queued, a.Completed, a.Rejected)
	return b.String()
}
