package bench

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"strings"
	"time"

	"synergy/internal/schema"
	"synergy/internal/server"
	"synergy/internal/sim"
	"synergy/internal/synergy"
	"synergy/internal/tpcw"
)

// The large-scan experiment measures the streaming query path end to end: a
// full scan of the TPC-W Customer table (17 mixed-type columns) through the
// MySQL wire server over a real in-process socket, streamed (cursor
// execution, SET synergy_stream=1) versus materialized (the server buffers
// the whole result set before encoding). The client always streams and
// discards rows, so the memory and allocation deltas isolate the server
// side of the path.
//
// Three claims are checked, per row count:
//
//   - simulated time is identical between the two paths (the cost model
//     charges the same scan work and the same response bytes);
//   - the wire bytes are identical (an FNV-64a checksum over every row
//     packet payload matches);
//   - streaming's peak memory is bounded by the scan chunk, not the result
//     (PeakBytes stays near-flat in row count while materialized grows
//     linearly), and its allocations stay near-constant in row count.
//
// Time-to-first-row makes the latency difference visible: a streamed scan
// produces its first row after one region chunk, a materialized one only
// after the whole table was buffered.

// LargeScanOpts parameterizes the large-scan experiment.
type LargeScanOpts struct {
	// Rows lists the Customer-table sizes to sweep (default 10k, 100k).
	Rows []int
	// Seed drives the deterministic data generator.
	Seed int64
}

func (o *LargeScanOpts) defaults() {
	if len(o.Rows) == 0 {
		o.Rows = []int{10000, 100000}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// LargeScanCell is one (rows, path) measurement.
type LargeScanCell struct {
	Rows     int
	Streamed bool
	// SimMS is the scan's simulated latency in milliseconds.
	SimMS float64
	// TTFRMS is the simulated time to the first row packet, milliseconds.
	TTFRMS float64
	// PeakBytes is the peak live heap observed during the scan above the
	// pre-scan baseline (server + discarding client; the server side
	// dominates).
	PeakBytes uint64
	// AllocBytes and Allocs are the total allocation deltas for the scan.
	AllocBytes, Allocs uint64
	// Hash is an FNV-64a checksum over every row packet payload.
	Hash uint64
	// WallMS is wall-clock milliseconds, for orientation only.
	WallMS float64
}

// LargeScanResult is the full experiment output.
type LargeScanResult struct {
	Opts  LargeScanOpts
	Cells []LargeScanCell
}

// largeScanSchema is the Customer relation alone: the experiment wants one
// wide table of controllable size, not the whole TPC-W database.
func largeScanSchema() *schema.Schema {
	s := schema.New()
	full := tpcw.Schema()
	cust := full.Relation("Customer")
	if cust == nil {
		panic("bench: TPC-W schema lost its Customer relation")
	}
	s.AddRelation(&schema.Relation{Name: cust.Name, Columns: cust.Columns, PK: cust.PK})
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// RunLargeScan runs the large-scan experiment.
func RunLargeScan(opts LargeScanOpts, costs *sim.Costs) (*LargeScanResult, error) {
	opts.defaults()
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	res := &LargeScanResult{Opts: opts}
	for _, rows := range opts.Rows {
		cells, err := runLargeScanSize(rows, opts.Seed, costs)
		if err != nil {
			return nil, fmt.Errorf("largescan %d rows: %w", rows, err)
		}
		res.Cells = append(res.Cells, cells...)
	}
	return res, nil
}

func runLargeScanSize(rows int, seed int64, costs *sim.Costs) ([]LargeScanCell, error) {
	sys, err := synergy.New(largeScanSchema(), []string{"Customer"}, nil,
		synergy.Config{Concurrency: synergy.Hierarchical, Costs: costs})
	if err != nil {
		return nil, err
	}
	if err := sys.LoadBase("Customer", tpcw.GenerateCustomers(rows, seed)); err != nil {
		return nil, err
	}
	if err := sys.BuildViews(); err != nil {
		return nil, err
	}
	srv, err := server.New(server.Config{
		Backends: []server.Backend{server.SystemBackend("synergy", sys)},
		Costs:    costs,
	})
	if err != nil {
		return nil, err
	}
	addr := fmt.Sprintf("bench-largescan-%d-%d", rows, serverBenchSeq.Add(1))
	l, err := server.ListenInproc(addr)
	if err != nil {
		return nil, err
	}
	go srv.Serve(l)
	defer srv.Close()

	c, err := server.Dial("inproc", addr, "largescan", "")
	if err != nil {
		return nil, err
	}
	defer c.Close()

	var out []LargeScanCell
	for _, streamed := range []bool{true, false} {
		mode := "0"
		if streamed {
			mode = "1"
		}
		if err := c.Exec("SET synergy_stream = " + mode); err != nil {
			return nil, err
		}
		// Warm-up scan: fills the store's chunk and arena pools so the
		// measured pass reflects steady state for both paths.
		if _, _, _, err := largeScanOnce(c); err != nil {
			return nil, err
		}
		cell, err := measureLargeScan(c, rows, streamed)
		if err != nil {
			return nil, err
		}
		out = append(out, *cell)
	}
	// The two paths must be observationally identical; a CI smoke run of
	// this experiment is what pins the equivalence at scale.
	if out[0].Hash != out[1].Hash {
		return nil, fmt.Errorf("wire bytes diverge: streamed fnv64a %016x, materialized %016x",
			out[0].Hash, out[1].Hash)
	}
	if out[0].SimMS != out[1].SimMS {
		return nil, fmt.Errorf("simulated cost diverges: streamed %.3fms, materialized %.3fms",
			out[0].SimMS, out[1].SimMS)
	}
	return out, nil
}

// largeScanOnce runs one full-table scan, streaming and discarding client
// side, returning the row count, wire checksum and wall time.
func largeScanOnce(c *server.Client) (n int, hash uint64, wall time.Duration, err error) {
	h := fnv.New64a()
	start := time.Now()
	rs, err := c.QueryStream("SELECT * FROM Customer")
	if err != nil {
		return 0, 0, 0, err
	}
	for rs.Next() {
		n++
		h.Write(rs.RawBytes())
	}
	if err := rs.Close(); err != nil {
		return 0, 0, 0, err
	}
	return n, h.Sum64(), time.Since(start), nil
}

func measureLargeScan(c *server.Client, rows int, streamed bool) (*LargeScanCell, error) {
	sim0, err := c.SimMicros()
	if err != nil {
		return nil, err
	}
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	// Peak sampler: the materialized path's buffered result set is live the
	// whole time the response is being written, so a millisecond sampler
	// can't miss it; the streamed path never accumulates anything to see.
	stop := make(chan struct{})
	peaked := make(chan uint64, 1)
	go func() {
		peak := base.HeapAlloc
		var m runtime.MemStats
		for {
			select {
			case <-stop:
				peaked <- peak
				return
			default:
				runtime.ReadMemStats(&m)
				if m.HeapAlloc > peak {
					peak = m.HeapAlloc
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()

	n, hash, wall, err := largeScanOnce(c)
	close(stop)
	peak := <-peaked
	if err != nil {
		return nil, err
	}
	if n != rows {
		return nil, fmt.Errorf("scan returned %d rows, want %d", n, rows)
	}
	var end runtime.MemStats
	runtime.ReadMemStats(&end)

	sim1, err := c.SimMicros()
	if err != nil {
		return nil, err
	}
	ttfr, err := c.SysVar("synergy_sim_ttfr_micros")
	if err != nil {
		return nil, err
	}
	ttfrMicros, _ := ttfr.(int64)

	cell := &LargeScanCell{
		Rows:       rows,
		Streamed:   streamed,
		SimMS:      float64(sim1-sim0) / 1000,
		TTFRMS:     float64(ttfrMicros) / 1000,
		AllocBytes: end.TotalAlloc - base.TotalAlloc,
		Allocs:     end.Mallocs - base.Mallocs,
		Hash:       hash,
		WallMS:     float64(wall.Microseconds()) / 1000,
	}
	if peak > base.HeapAlloc {
		cell.PeakBytes = peak - base.HeapAlloc
	}
	return cell, nil
}

// RenderLargeScan formats the experiment, pairing each row count's streamed
// and materialized cells.
func RenderLargeScan(r *LargeScanResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Large scans through the wire server: SELECT * FROM Customer, streamed vs materialized (simulated ms; peak/alloc bytes are process deltas)\n")
	fmt.Fprintf(&b, "%-10s %-14s %-10s %-10s %-12s %-12s %-12s %-10s\n",
		"rows", "path", "sim ms", "ttfr ms", "peak MiB", "alloc MiB", "allocs", "wall ms")
	byRows := map[int][]LargeScanCell{}
	var order []int
	for _, c := range r.Cells {
		if _, seen := byRows[c.Rows]; !seen {
			order = append(order, c.Rows)
		}
		byRows[c.Rows] = append(byRows[c.Rows], c)
	}
	mib := func(n uint64) float64 { return float64(n) / (1 << 20) }
	for _, rows := range order {
		var streamed, mat *LargeScanCell
		for i := range byRows[rows] {
			c := &byRows[rows][i]
			if c.Streamed {
				streamed = c
			} else {
				mat = c
			}
		}
		for _, c := range []*LargeScanCell{streamed, mat} {
			if c == nil {
				continue
			}
			path := "materialized"
			if c.Streamed {
				path = "streamed"
			}
			fmt.Fprintf(&b, "%-10d %-14s %-10.1f %-10.1f %-12.1f %-12.1f %-12d %-10.0f\n",
				c.Rows, path, c.SimMS, c.TTFRMS, mib(c.PeakBytes), mib(c.AllocBytes), c.Allocs, c.WallMS)
		}
		if streamed != nil && mat != nil {
			match := "MATCH"
			if streamed.Hash != mat.Hash {
				match = "MISMATCH"
			}
			fmt.Fprintf(&b, "  wire bytes %s (fnv64a %016x), peak ratio %s, alloc ratio %s\n",
				match, streamed.Hash,
				ratio(float64(mat.PeakBytes), float64(streamed.PeakBytes)),
				ratio(float64(mat.AllocBytes), float64(streamed.AllocBytes)))
		}
	}
	return b.String()
}

// ratio formats num/den as "N.Nx"; a zero denominator means the streamed
// side was too small to observe at all, which is the best possible outcome.
func ratio(num, den float64) string {
	if den <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", num/den)
}
