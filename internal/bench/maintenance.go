package bench

import (
	"fmt"
	"strings"
	"time"

	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
	"synergy/internal/synergy"
)

// MaintenanceLanes are the three view-maintenance modes of the sweep, in
// column order: the paper's synchronous §VIII-B protocol and the two
// deferred lanes layered on the changefeed.
var MaintenanceLanes = []struct {
	Name string
	Mode synergy.MaintenanceMode
}{
	{"Sync", synergy.SyncMaintenance},
	{"Async", synergy.AsyncMaintenance},
	{"Hybrid", synergy.HybridMaintenance},
}

// MaintenanceCell is one (lane, view count) measurement.
type MaintenanceCell struct {
	Lane  string
	Views int
	// Write is the simulated latency of one root update — the write that
	// fans out to every view. Sync pays the full §VIII-B mark/update/un-mark
	// per view inline; the deferred lanes pay one changefeed hop.
	Write Measurement
	// StaleLag is the mean freshness gap (store timestamp ticks) a ReadStale
	// query observes while the changefeed backlog from the write burst is
	// still unapplied. Sync is always 0.
	StaleLag float64
	// WatermarkRead is the simulated latency of a ReadWatermark query issued
	// while its view's delta is still queued: the reader is charged the
	// watermark wait plus the applier work it blocked on. Sync pays a plain
	// read.
	WatermarkRead Measurement
	// DrainMs is the total background applier cost (simulated ms) of the
	// write burst — the work the deferred lanes moved off the writer's
	// latency path. Sync is 0: the same work is inside Write.
	DrainMs float64
	// OCCAbortRate and OCCMean report a 1-hot-row OCC contention wave under
	// this lane: deferred maintenance shrinks the transaction a conflict
	// loser must re-execute, so retries get cheaper even when the abort rate
	// (a property of the overlap structure) stays put.
	OCCAbortRate float64
	OCCMean      Measurement
}

// MaintenanceResult is the full sweep: one row per view count, one cell per
// maintenance lane.
type MaintenanceResult struct {
	Reps       int
	ViewCounts []int
	Cells      map[int]map[string]MaintenanceCell // views -> lane -> cell
}

// maintenanceSchema is a Root fanning out to `views` leaf relations, each
// carrying a Root-Leaf materialized view — the shape where one root update
// pays view maintenance `views` times.
func maintenanceSchema(views int) (*schema.Schema, []string) {
	s := schema.New()
	s.AddRelation(&schema.Relation{
		Name: "Root",
		Columns: []schema.Column{
			{Name: "RID", Type: schema.TInt},
			{Name: "RVal", Type: schema.TString},
		},
		PK: []string{"RID"},
	})
	workload := make([]string, 0, views+1)
	for i := 0; i < views; i++ {
		leaf := fmt.Sprintf("Leaf%02d", i)
		s.AddRelation(&schema.Relation{
			Name: leaf,
			Columns: []schema.Column{
				{Name: leaf + "ID", Type: schema.TInt},
				{Name: leaf + "_RID", Type: schema.TInt},
				{Name: leaf + "Val", Type: schema.TString},
			},
			PK:  []string{leaf + "ID"},
			FKs: []schema.ForeignKey{{Cols: []string{leaf + "_RID"}, RefTable: "Root"}},
		})
		workload = append(workload, fmt.Sprintf(
			"SELECT * FROM Root as r, %s as l WHERE r.RID = l.%s_RID and l.%sVal = ?",
			leaf, leaf, leaf))
	}
	workload = append(workload, "UPDATE Root SET RVal = ? WHERE RID = ?")
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s, workload
}

// buildMaintenanceSystem deploys the fanout design under one maintenance
// lane with rowsPer view rows hanging off the hot root row.
func buildMaintenanceSystem(views, rowsPer int, lane synergy.MaintenanceMode, conc synergy.ConcurrencyMode, costs *sim.Costs) (*synergy.System, error) {
	s, workload := maintenanceSchema(views)
	cfg := synergy.Config{Concurrency: conc, Costs: costs, Maintenance: lane}
	if conc != synergy.Hierarchical {
		cfg.MaxVersions = 16
	}
	sys, err := synergy.New(s, []string{"Root"}, workload, cfg)
	if err != nil {
		return nil, err
	}
	if err := sys.LoadBase("Root", []schema.Row{{"RID": int64(1), "RVal": "one"}}); err != nil {
		return nil, err
	}
	for i := 0; i < views; i++ {
		leaf := fmt.Sprintf("Leaf%02d", i)
		rows := make([]schema.Row, 0, rowsPer)
		for j := 0; j < rowsPer; j++ {
			rows = append(rows, schema.Row{
				leaf + "ID": int64(j + 1), leaf + "_RID": int64(1),
				leaf + "Val": fmt.Sprintf("%s-%d", leaf, j),
			})
		}
		if err := sys.LoadBase(leaf, rows); err != nil {
			return nil, err
		}
	}
	if err := sys.BuildViews(); err != nil {
		return nil, err
	}
	if lane != synergy.SyncMaintenance && sys.Feed == nil {
		return nil, fmt.Errorf("bench: %v lane built no changefeed", lane)
	}
	return sys, nil
}

var maintenanceUpdate = sqlparser.MustParse("UPDATE Root SET RVal = ? WHERE RID = ?")

// RunMaintenance runs the view-maintenance sweep: for each view count and
// each lane it measures the root-update write latency, the staleness a
// ReadStale query observes against the resulting backlog, the price a
// ReadWatermark reader pays to wait the backlog out, the background applier
// cost the lane deferred, and an OCC contention mini-wave showing how lane
// choice changes what a conflict loser re-executes.
func RunMaintenance(viewCounts []int, reps int, seed int64, costs *sim.Costs) (*MaintenanceResult, error) {
	if len(viewCounts) == 0 {
		viewCounts = []int{1, 4, 16}
	}
	if reps <= 0 {
		reps = 10
	}
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	res := &MaintenanceResult{
		Reps: reps, ViewCounts: viewCounts,
		Cells: map[int]map[string]MaintenanceCell{},
	}
	root := sim.NewRNG(seed)
	for _, vc := range viewCounts {
		res.Cells[vc] = map[string]MaintenanceCell{}
		for _, lane := range MaintenanceLanes {
			rng := root.Derive(fmt.Sprintf("maintenance/%s/%d", lane.Name, vc))
			cell, err := runMaintenanceCell(lane.Name, lane.Mode, vc, reps, seed, rng, costs)
			if err != nil {
				return nil, fmt.Errorf("maintenance %s/%d views: %w", lane.Name, vc, err)
			}
			res.Cells[vc][lane.Name] = cell
		}
	}
	return res, nil
}

func runMaintenanceCell(name string, mode synergy.MaintenanceMode, views, reps int, seed int64, rng *sim.RNG, costs *sim.Costs) (MaintenanceCell, error) {
	const rowsPer = 8
	sys, err := buildMaintenanceSystem(views, rowsPer, mode, synergy.Hierarchical, costs)
	if err != nil {
		return MaintenanceCell{}, err
	}
	cell := MaintenanceCell{Lane: name, Views: views}

	// Write burst. The feed is paused so the backlog survives for the
	// staleness probes; the appliers run on their own contexts either way,
	// so pausing doesn't change what the writer is charged.
	if sys.Feed != nil {
		sys.Feed.Pause()
	}
	cell.Write, err = measure(reps, rng, func(rep int) (sim.Micros, error) {
		ctx := sim.NewCtx()
		err := sys.Exec(ctx, maintenanceUpdate, []schema.Value{fmt.Sprintf("w%d", rep), int64(1)})
		return ctx.Elapsed(), err
	})
	if err != nil {
		return MaintenanceCell{}, err
	}

	// ReadStale probe against the burst's backlog.
	sel := sys.Design.Workload.Selects()[0]
	probe := sim.NewCtx()
	if _, err := sys.Query(probe, sel, []schema.Value{"Leaf00-0"}); err != nil {
		return MaintenanceCell{}, err
	}
	if s := probe.Snapshot(); s.StaleReads > 0 {
		cell.StaleLag = float64(s.StaleLag) / float64(s.StaleReads)
	}

	// Drain the burst's backlog before the watermark probes. Draining at a
	// quiescent point keeps the applier's batch boundaries — and so the
	// per-batch hop charges in the drain column — deterministic: every lane
	// pops its whole backlog in fixed-size batches instead of racing the
	// probe loop's pause/resume cycling.
	if sys.Feed != nil {
		if err := sys.Feed.Drain(); err != nil {
			return MaintenanceCell{}, err
		}
	}

	// ReadWatermark probe: one queued delta per lane, reader blocked on the
	// paused lane; Resume releases the appliers and the reader is charged
	// the wait plus the applier work it blocked on. The per-rep Drain
	// returns every lane to empty so each rep applies exactly one
	// single-delta batch per lane.
	sys.SetAsyncReadMode(synergy.ReadWatermark)
	wmSamples := make([]sim.Micros, 0, reps)
	for rep := 0; rep < reps; rep++ {
		ctx := sim.NewCtx()
		if sys.Feed == nil {
			if _, err := sys.Query(ctx, sel, []schema.Value{"Leaf00-0"}); err != nil {
				return MaintenanceCell{}, err
			}
			wmSamples = append(wmSamples, rng.Jitter(ctx.Elapsed(), 0.02))
			continue
		}
		sys.Feed.Pause()
		if err := sys.Exec(sim.NewCtx(), maintenanceUpdate,
			[]schema.Value{fmt.Sprintf("wm%d", rep), int64(1)}); err != nil {
			return MaintenanceCell{}, err
		}
		errc := make(chan error, 1)
		go func() {
			_, qerr := sys.Query(ctx, sel, []schema.Value{"Leaf00-0"})
			errc <- qerr
		}()
		time.Sleep(2 * time.Millisecond) // let the reader reach its watermark wait
		sys.Feed.Resume()
		if err := <-errc; err != nil {
			return MaintenanceCell{}, err
		}
		if err := sys.Feed.Drain(); err != nil {
			return MaintenanceCell{}, err
		}
		wmSamples = append(wmSamples, rng.Jitter(ctx.Elapsed(), 0.02))
	}
	cell.WatermarkRead = Summarize(wmSamples)
	sys.SetAsyncReadMode(synergy.ReadStale)

	// Account the deferred applier work (burst + watermark-probe deltas).
	if sys.Feed != nil {
		cell.DrainMs = sys.Feed.AppliedCost().Milliseconds()
	}

	// OCC mini-wave: one hot row, four overlapping single-update
	// transactions per round. The overlap structure fixes the abort rate;
	// the lane fixes how much work each loser re-executes.
	occSys, err := buildMaintenanceSystem(views, rowsPer, mode, synergy.OCC, costs)
	if err != nil {
		return MaintenanceCell{}, err
	}
	occCell, err := runOptimisticCell(occSys, synergy.OCC, 1, 4, reps, 1, seed, costs)
	if err != nil {
		return MaintenanceCell{}, err
	}
	if occSys.Feed != nil {
		if err := occSys.Feed.Drain(); err != nil {
			return MaintenanceCell{}, err
		}
	}
	cell.OCCAbortRate = occCell.AbortRate()
	cell.OCCMean = occCell.Mean
	return cell, nil
}

// RenderMaintenance formats the sweep as a lanes-by-views grid.
func RenderMaintenance(r *MaintenanceResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "View maintenance lanes: write cost vs staleness (%d reps; ms simulated)\n", r.Reps)
	fmt.Fprintf(&b, "%-6s %-7s %12s %11s %12s %9s %18s\n",
		"views", "lane", "write ms/op", "stale lag", "wm-read ms", "drain ms", "occ ms (abort%)")
	for _, vc := range r.ViewCounts {
		for _, lane := range MaintenanceLanes {
			c := r.Cells[vc][lane.Name]
			occ := fmt.Sprintf("%s (%.0f%%)", c.OCCMean, 100*c.OCCAbortRate)
			fmt.Fprintf(&b, "%-6d %-7s %12s %11.1f %12s %9.2f %18s\n",
				vc, c.Lane, c.Write.String(), c.StaleLag, c.WatermarkRead.String(), c.DrainMs, occ)
		}
	}
	return b.String()
}
