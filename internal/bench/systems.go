package bench

import (
	"fmt"
	"sort"

	"synergy/internal/core"
	"synergy/internal/hbase"
	"synergy/internal/newsql"
	"synergy/internal/phoenix"
	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
	"synergy/internal/synergy"
	"synergy/internal/tpcw"
	"synergy/internal/tuning"
)

// EvalSystem is one column of Figures 12/14 and Tables II/III.
type EvalSystem interface {
	Name() string
	// Run executes one workload statement, charging its response time to
	// ctx.
	Run(ctx *sim.Ctx, st tpcw.Stmt, params []schema.Value) error
	// Supported reports whether the system can execute the statement
	// (VoltDB cannot run Q3/Q7/Q9/Q10).
	Supported(st tpcw.Stmt) bool
	// DatabaseBytes reports the storage footprint (Table III).
	DatabaseBytes() int64
}

// parsedCache pre-parses statement SQL once.
type parsedCache map[string]sqlparser.Statement

func (c parsedCache) get(st tpcw.Stmt) sqlparser.Statement {
	if s, ok := c[st.ID]; ok {
		return s
	}
	s := sqlparser.MustParse(st.SQL)
	c[st.ID] = s
	return s
}

// synergySys wraps a synergy.System deployment (used for Synergy, MVCC-A and
// Baseline, which differ only in Config).
type synergySys struct {
	name   string
	sys    *synergy.System
	parsed parsedCache
}

func (s *synergySys) Name() string { return s.name }

func (s *synergySys) Run(ctx *sim.Ctx, st tpcw.Stmt, params []schema.Value) error {
	stmt := s.parsed.get(st)
	if sel, ok := stmt.(*sqlparser.SelectStmt); ok {
		_, err := s.sys.Query(ctx, sel, params)
		return err
	}
	return s.sys.Exec(ctx, stmt, params)
}

func (s *synergySys) Supported(tpcw.Stmt) bool { return true }
func (s *synergySys) DatabaseBytes() int64     { return s.sys.DatabaseBytes() }

// Design exposes the deployed Synergy design for reporting.
func (s *synergySys) Design() *core.Design { return s.sys.Design }

// System exposes the underlying deployment (examples and tests).
func (s *synergySys) System() *synergy.System { return s.sys }

// uaSys is MVCC-UA: the baseline deployment plus the tuning-advisor view
// (the bestseller aggregate) with special-cased Q10 routing and incremental
// maintenance.
type uaSys struct {
	base    *synergySys
	viewSQL *sqlparser.SelectStmt
	eng     *phoenix.Engine
	ua      *phoenix.TableInfo
	recs    []*tuning.Candidate
}

// uaViewName is the materialized tuning-advisor view.
const uaViewName = "UA_BESTSELLER"

func (s *uaSys) Name() string { return "MVCC-UA" }

func (s *uaSys) Run(ctx *sim.Ctx, st tpcw.Stmt, params []schema.Value) error {
	if st.ID == "Q10" {
		// The advisor's view answers the bestseller query directly.
		_, err := s.base.sys.Query(ctx, s.viewSQL, params[:1])
		return err
	}
	if err := s.base.Run(ctx, st, params); err != nil {
		return err
	}
	// Incremental view maintenance on the writes that affect it.
	switch st.ID {
	case "W3": // insert Order_line: qty accrues to the item's row
		iID := params[2].(int64)
		qty := params[3].(int64)
		row, found, err := s.eng.GetRow(ctx, s.ua, hbase.ReadOpts{}, iID)
		if err != nil || !found {
			return err
		}
		row["qty"] = row["qty"].(int64) + qty
		// Sequential like every other figure-harness write path.
		return s.eng.PutRow(ctx, s.ua, row, phoenix.WriteOpts{Sequential: true})
	}
	return nil
}

func (s *uaSys) Supported(tpcw.Stmt) bool { return true }
func (s *uaSys) DatabaseBytes() int64     { return s.base.DatabaseBytes() }

// voltSys wraps the VoltDB-like fleet.
type voltSys struct {
	fleet  *newsql.Fleet
	parsed parsedCache
	data   *tpcw.Data
}

func (s *voltSys) Name() string { return "VoltDB" }

func (s *voltSys) Run(ctx *sim.Ctx, st tpcw.Stmt, params []schema.Value) error {
	stmt := s.parsed.get(st)
	if sel, ok := stmt.(*sqlparser.SelectStmt); ok {
		_, err := s.fleet.Query(ctx, sel, params)
		return err
	}
	return s.fleet.Exec(ctx, stmt, params)
}

func (s *voltSys) Supported(st tpcw.Stmt) bool {
	stmt := s.parsed.get(st)
	sel, ok := stmt.(*sqlparser.SelectStmt)
	if !ok {
		return true
	}
	params := st.Params(s.data, sim.NewRNG(1))
	return s.fleet.Supported(sel, params)
}

func (s *voltSys) DatabaseBytes() int64 { return s.fleet.DatabaseBytes() }

// SystemSet is the full evaluation deployment over one generated database.
type SystemSet struct {
	Data     *tpcw.Data
	Synergy  *synergySys
	MVCCA    *synergySys
	MVCCUA   *uaSys
	Baseline *synergySys
	VoltDB   *voltSys
}

// All returns the systems in the paper's column order.
func (s *SystemSet) All() []EvalSystem {
	return []EvalSystem{s.VoltDB, s.Synergy, s.MVCCA, s.MVCCUA, s.Baseline}
}

// HBaseSystems returns the four HBase-backed systems (Table II excludes
// VoltDB).
func (s *SystemSet) HBaseSystems() []EvalSystem {
	return []EvalSystem{s.Synergy, s.MVCCA, s.MVCCUA, s.Baseline}
}

// BuildSystems generates the TPC-W database at numCust customers and deploys
// all five systems over it (§IX-D2).
func BuildSystems(numCust int, seed int64, costs *sim.Costs) (*SystemSet, error) {
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	data := tpcw.Generate(numCust, seed)
	sch := tpcw.Schema
	set := &SystemSet{Data: data}

	mk := func(name string, cfg synergy.Config) (*synergySys, error) {
		cfg.Costs = costs
		cfg.BaseIndexes = tpcw.BaseIndexes()
		// The paper's testbed client issued one RPC per mutation and
		// committed per statement; the figure reproductions pin both knobs
		// so measured shapes match §IX. The batched and transaction-scoped
		// pipelines are compared against this baseline by the write-path
		// benchmarks in internal/synergy.
		cfg.SequentialWrites = true
		cfg.StatementFlush = true
		if cfg.MaxVersions == 0 {
			cfg.MaxVersions = 1
		}
		sys, err := synergy.New(sch(), tpcw.Roots(), tpcw.WorkloadSQL(), cfg)
		if err != nil {
			return nil, err
		}
		for table, rows := range data.Tables {
			if err := sys.LoadBase(table, rows); err != nil {
				return nil, fmt.Errorf("%s: loading %s: %w", name, table, err)
			}
		}
		if err := sys.BuildViews(); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		return &synergySys{name: name, sys: sys, parsed: parsedCache{}}, nil
	}

	var err error
	// Synergy: schema-aware views + hierarchical locking.
	if set.Synergy, err = mk("Synergy", synergy.Config{Concurrency: synergy.Hierarchical}); err != nil {
		return nil, err
	}
	// MVCC-A: Synergy's views, Tephra-style MVCC.
	if set.MVCCA, err = mk("MVCC-A", synergy.Config{Concurrency: synergy.MVCC, MaxVersions: 16}); err != nil {
		return nil, err
	}
	// Baseline: base tables only, MVCC.
	if set.Baseline, err = mk("Baseline", synergy.Config{Concurrency: synergy.MVCC, MaxVersions: 16, DisableViews: true}); err != nil {
		return nil, err
	}
	// MVCC-UA: base tables + the tuning advisor's view, MVCC.
	uaBase, err := mk("MVCC-UA", synergy.Config{Concurrency: synergy.MVCC, MaxVersions: 16, DisableViews: true})
	if err != nil {
		return nil, err
	}
	set.MVCCUA, err = buildUA(uaBase, data)
	if err != nil {
		return nil, err
	}

	// VoltDB: three partitioning schemes over packed in-memory tables.
	fleet := newsql.NewFleet(sch(), tpcw.PartitionSchemes(), 5, costs)
	for table, rows := range data.Tables {
		if err := fleet.Load(table, rows); err != nil {
			return nil, fmt.Errorf("voltdb: loading %s: %w", table, err)
		}
	}
	set.VoltDB = &voltSys{fleet: fleet, parsed: parsedCache{}, data: data}
	return set, nil
}

// buildUA runs the tuning advisor over the workload and materializes its
// recommendation (the bestseller aggregate) on the baseline deployment.
func buildUA(base *synergySys, data *tpcw.Data) (*uaSys, error) {
	// Advisor pass: workload joins + database stats -> recommendations.
	queries := map[string]*sqlparser.SelectStmt{}
	for _, st := range tpcw.JoinQueries() {
		queries[st.ID] = sqlparser.MustParse(st.SQL).(*sqlparser.SelectStmt)
	}
	stats := data.Stats()
	recs := tuning.Recommend(tuning.Candidates(queries, stats), stats, 0)

	ua := &uaSys{base: base, eng: base.sys.Engine, recs: recs}

	// Materialize the bestseller aggregate: qty per item over the order
	// lines, with the filter column (i_subject) and displayed attributes.
	cols := []schema.Column{
		{Name: "i_id", Type: schema.TInt},
		{Name: "i_title", Type: schema.TString},
		{Name: "i_subject", Type: schema.TString},
		{Name: "a_fname", Type: schema.TString},
		{Name: "a_lname", Type: schema.TString},
		{Name: "qty", Type: schema.TInt},
	}
	info, err := base.sys.Catalog.RegisterView(uaViewName, cols, []string{"i_id"}, nil, hbase.TableSpec{MaxVersions: 16})
	if err != nil {
		return nil, err
	}
	if err := base.sys.Catalog.RegisterIndex(uaViewName, phoenix.IndexInfo{Name: "IX_UA_subject", On: []string{"i_subject"}}, hbase.TableSpec{MaxVersions: 16}); err != nil {
		return nil, err
	}
	ua.ua = info

	// Compute contents from the generated data (setup path).
	qty := map[int64]int64{}
	for _, ol := range data.Tables["Order_line"] {
		qty[ol["ol_i_id"].(int64)] += ol["ol_qty"].(int64)
	}
	authors := map[int64]schema.Row{}
	for _, a := range data.Tables["Author"] {
		authors[a["a_id"].(int64)] = a
	}
	var rows []schema.Row
	for _, it := range data.Tables["Item"] {
		id := it["i_id"].(int64)
		q, sold := qty[id]
		if !sold {
			continue
		}
		a := authors[it["i_a_id"].(int64)]
		rows = append(rows, schema.Row{
			"i_id": id, "i_title": it["i_title"], "i_subject": it["i_subject"],
			"a_fname": a["a_fname"], "a_lname": a["a_lname"], "qty": q,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i]["i_id"].(int64) < rows[j]["i_id"].(int64) })
	ctx := sim.NewCtx()
	for _, r := range rows {
		if err := ua.eng.PutRow(ctx, info, r, phoenix.WriteOpts{}); err != nil {
			return nil, err
		}
	}
	base.sys.Store.MajorCompact(uaViewName)
	base.sys.Store.MajorCompact("IX_UA_subject")

	ua.viewSQL = sqlparser.MustParse(fmt.Sprintf(
		`SELECT i_id, i_title, a_fname, a_lname, qty FROM %s WHERE i_subject = ?
		 ORDER BY qty DESC LIMIT 50`, uaViewName)).(*sqlparser.SelectStmt)
	return ua, nil
}
