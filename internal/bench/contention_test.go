package bench

import (
	"strings"
	"testing"
)

// TestContentionSweepShape: the sweep reports every (hot-row, mode) cell,
// every transaction commits, and the mechanisms behave according to type —
// hierarchical locking never aborts, while under single-hot-row contention
// the MVCC and OCC columns carry latency no lower than their uncontended
// cells (retries and backoff cannot make transactions cheaper).
func TestContentionSweepShape(t *testing.T) {
	res, err := RunContention([]int{1, 8}, 4, 10, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, hr := range []int{1, 8} {
		for _, m := range ContentionModes {
			c, ok := res.Cells[hr][m.Name]
			if !ok {
				t.Fatalf("missing cell %s/%d", m.Name, hr)
			}
			if c.Txns != 4*10 {
				t.Errorf("%s/%d: %d committed txns, want 40", m.Name, hr, c.Txns)
			}
			if m.Name == "Hierarchical" && c.Conflicts != 0 {
				t.Errorf("hierarchical locking reported %d conflicts; it blocks, it does not abort", c.Conflicts)
			}
		}
	}
	// OCC's latency must sit far below MVCC's (no Tephra begin/commit
	// round trips) — the headline of the three-way comparison.
	occ8 := res.Cells[8]["OCC"].Mean.Mean
	mvcc8 := res.Cells[8]["MVCC"].Mean.Mean
	if occ8 >= mvcc8/10 {
		t.Errorf("OCC at 8 hot rows = %.1fms, want far below MVCC's %.1fms", occ8, mvcc8)
	}
	// The optimistic waves overlap by construction: a single hot row must
	// produce validation aborts, and spreading the updates over 8 rows must
	// reduce them. Contention must also cost latency.
	for _, mode := range []string{"MVCC", "OCC"} {
		hot, cool := res.Cells[1][mode], res.Cells[8][mode]
		if hot.Conflicts == 0 {
			t.Errorf("%s at 1 hot row reported no conflicts; waves must overlap", mode)
		}
		if cool.Conflicts >= hot.Conflicts {
			t.Errorf("%s conflicts did not fall with more hot rows: %d -> %d", mode, hot.Conflicts, cool.Conflicts)
		}
		if hot.Mean.Mean <= cool.Mean.Mean {
			t.Errorf("%s mean latency under contention (%.2fms) not above uncontended (%.2fms)",
				mode, hot.Mean.Mean, cool.Mean.Mean)
		}
	}

	// Hierarchical locking pays contention as queueing: latency must rise
	// as the hot set shrinks, with no aborts ever.
	if h1, h8 := res.Cells[1]["Hierarchical"].Mean.Mean, res.Cells[8]["Hierarchical"].Mean.Mean; h1 <= h8 {
		t.Errorf("hierarchical latency under contention (%.2fms) not above uncontended (%.2fms)", h1, h8)
	}

	out := RenderContention(res)
	for _, want := range []string{"Hierarchical", "MVCC", "OCC", "hot rows"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestContentionMultiStatementSweep pins the -ops dimension: every
// transaction of a long sweep really executes all its statements (latency
// grows with ops in every mode), losers abort-and-retry whole transactions
// (the conflict structure on one hot row is independent of ops — same
// overlap, same losers — but each retry redoes ops statements), and the
// sweep answers the PR-4 crossover question. The answer it measures:
// hierarchical does NOT overtake OCC under deterministic solo-retry waves —
// a lock-queue arrival waits out every predecessor's full (ops-scaled)
// hold, while an optimistic loser re-executes the transaction once — so
// OCC's relative edge widens rather than shrinks as transactions lengthen.
// The assertion pins that direction; if the retry model ever changes to
// re-contend (herd retries), this is the test to revisit.
func TestContentionMultiStatementSweep(t *testing.T) {
	short, err := RunContention([]int{1}, 4, 6, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	long, err := RunContention([]int{1}, 4, 6, 8, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if short.Ops != 1 || long.Ops != 8 {
		t.Fatalf("ops recorded as %d and %d, want 1 and 8", short.Ops, long.Ops)
	}
	for _, m := range ContentionModes {
		s, l := short.Cells[1][m.Name], long.Cells[1][m.Name]
		if s.Txns != 4*6 || l.Txns != 4*6 {
			t.Errorf("%s: committed %d/%d txns, want 24/24", m.Name, s.Txns, l.Txns)
		}
		if l.Mean.Mean <= s.Mean.Mean {
			t.Errorf("%s: 8-statement txns (%.2fms) not costlier than 1-statement (%.2fms)",
				m.Name, l.Mean.Mean, s.Mean.Mean)
		}
	}
	// One hot row: row draws are all row 1, so overlap — and therefore the
	// abort structure — is identical at any ops; only the redo cost grows.
	for _, mode := range []string{"MVCC", "OCC"} {
		s, l := short.Cells[1][mode], long.Cells[1][mode]
		if s.Conflicts == 0 || l.Conflicts != s.Conflicts {
			t.Errorf("%s conflicts: ops=1 %d, ops=8 %d; want equal and nonzero", mode, s.Conflicts, l.Conflicts)
		}
	}
	ratio := func(r *ContentionResult) float64 {
		return r.Cells[1]["OCC"].Mean.Mean / r.Cells[1]["Hierarchical"].Mean.Mean
	}
	if rs, rl := ratio(short), ratio(long); rl >= rs {
		t.Errorf("no crossover expected under solo-retry waves: OCC/hierarchical ratio ops=1 %.3f -> ops=8 %.3f should fall", rs, rl)
	}
}
