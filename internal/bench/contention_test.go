package bench

import (
	"strings"
	"testing"
)

// TestContentionSweepShape: the sweep reports every (hot-row, mode) cell,
// every transaction commits, and the mechanisms behave according to type —
// hierarchical locking never aborts, while under single-hot-row contention
// the MVCC and OCC columns carry latency no lower than their uncontended
// cells (retries and backoff cannot make transactions cheaper).
func TestContentionSweepShape(t *testing.T) {
	res, err := RunContention([]int{1, 8}, 4, 10, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, hr := range []int{1, 8} {
		for _, m := range ContentionModes {
			c, ok := res.Cells[hr][m.Name]
			if !ok {
				t.Fatalf("missing cell %s/%d", m.Name, hr)
			}
			if c.Txns != 4*10 {
				t.Errorf("%s/%d: %d committed txns, want 40", m.Name, hr, c.Txns)
			}
			if m.Name == "Hierarchical" && c.Conflicts != 0 {
				t.Errorf("hierarchical locking reported %d conflicts; it blocks, it does not abort", c.Conflicts)
			}
		}
	}
	// OCC's latency must sit far below MVCC's (no Tephra begin/commit
	// round trips) — the headline of the three-way comparison.
	occ8 := res.Cells[8]["OCC"].Mean.Mean
	mvcc8 := res.Cells[8]["MVCC"].Mean.Mean
	if occ8 >= mvcc8/10 {
		t.Errorf("OCC at 8 hot rows = %.1fms, want far below MVCC's %.1fms", occ8, mvcc8)
	}
	// The optimistic waves overlap by construction: a single hot row must
	// produce validation aborts, and spreading the updates over 8 rows must
	// reduce them. Contention must also cost latency.
	for _, mode := range []string{"MVCC", "OCC"} {
		hot, cool := res.Cells[1][mode], res.Cells[8][mode]
		if hot.Conflicts == 0 {
			t.Errorf("%s at 1 hot row reported no conflicts; waves must overlap", mode)
		}
		if cool.Conflicts >= hot.Conflicts {
			t.Errorf("%s conflicts did not fall with more hot rows: %d -> %d", mode, hot.Conflicts, cool.Conflicts)
		}
		if hot.Mean.Mean <= cool.Mean.Mean {
			t.Errorf("%s mean latency under contention (%.2fms) not above uncontended (%.2fms)",
				mode, hot.Mean.Mean, cool.Mean.Mean)
		}
	}

	// Hierarchical locking pays contention as queueing: latency must rise
	// as the hot set shrinks, with no aborts ever.
	if h1, h8 := res.Cells[1]["Hierarchical"].Mean.Mean, res.Cells[8]["Hierarchical"].Mean.Mean; h1 <= h8 {
		t.Errorf("hierarchical latency under contention (%.2fms) not above uncontended (%.2fms)", h1, h8)
	}

	out := RenderContention(res)
	for _, want := range []string{"Hierarchical", "MVCC", "OCC", "hot rows"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
