// Package bench is the experiment harness: it assembles the five evaluated
// systems of §IX-D2 (Synergy, MVCC-A, MVCC-UA, Baseline, VoltDB) over a
// shared TPC-W database and regenerates every figure and table of the
// paper's evaluation — Figures 10-14 and Tables I-III — with the paper's
// methodology (10 repetitions, mean and standard error of the response
// time).
package bench

import (
	"fmt"
	"math"

	"synergy/internal/sim"
)

// Measurement is a mean ± standard error in milliseconds, the statistic
// every figure reports.
type Measurement struct {
	Mean   float64
	StdErr float64
	N      int
}

func (m Measurement) String() string {
	if m.N == 0 {
		return "X"
	}
	return fmt.Sprintf("%.1f±%.1f", m.Mean, m.StdErr)
}

// Summarize reduces repetition samples (simulated durations) to a
// Measurement.
func Summarize(samples []sim.Micros) Measurement {
	n := len(samples)
	if n == 0 {
		return Measurement{}
	}
	var sum float64
	for _, s := range samples {
		sum += s.Milliseconds()
	}
	mean := sum / float64(n)
	if n == 1 {
		return Measurement{Mean: mean, N: 1}
	}
	var ss float64
	for _, s := range samples {
		d := s.Milliseconds() - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	return Measurement{Mean: mean, StdErr: sd / math.Sqrt(float64(n)), N: n}
}

// measure runs fn reps times and summarizes, applying a small multiplicative
// jitter stream to model run-to-run measurement noise (the simulation itself
// is deterministic; parameters already vary per repetition).
func measure(reps int, rng *sim.RNG, fn func(rep int) (sim.Micros, error)) (Measurement, error) {
	if reps <= 0 {
		reps = 10
	}
	noise := rng.Derive("noise")
	samples := make([]sim.Micros, 0, reps)
	for r := 0; r < reps; r++ {
		t, err := fn(r)
		if err != nil {
			return Measurement{}, err
		}
		samples = append(samples, noise.Jitter(t, 0.02))
	}
	return Summarize(samples), nil
}
