package bench

import (
	"testing"
)

// TestRunServerDeterministic runs the wire-serving experiment twice and
// requires byte-identical reports: the simulated latencies must not depend
// on goroutine scheduling (disjoint key ranges, store queueing off).
func TestRunServerDeterministic(t *testing.T) {
	opts := ServerOpts{Conns: 4, Txns: 4, Slots: 2, Queue: 3}
	a, err := RunServer(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunServer(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := RenderServer(a), RenderServer(b)
	if ra != rb {
		t.Fatalf("nondeterministic server experiment:\n--- run 1\n%s\n--- run 2\n%s", ra, rb)
	}

	for _, m := range a.Modes {
		if m.Txn.N != opts.Conns*opts.Txns {
			t.Fatalf("%s: %d samples, want %d", m.Mode, m.Txn.N, opts.Conns*opts.Txns)
		}
		if m.Txn.Mean <= 0 || m.TPS <= 0 {
			t.Fatalf("%s: degenerate measurement %+v tps %f", m.Mode, m.Txn, m.TPS)
		}
		if m.Rejected != 0 {
			t.Fatalf("%s: workload run rejected %d statements (should queue, not error)", m.Mode, m.Rejected)
		}
	}
	adm := a.Admission
	if adm.Queued != int64(opts.Queue) || adm.Completed != opts.Queue || adm.Rejected != 1 {
		t.Fatalf("admission demo %+v, want Queued=%d Completed=%d Rejected=1", adm, opts.Queue, opts.Queue)
	}
}
