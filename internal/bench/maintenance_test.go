package bench

import (
	"strings"
	"testing"
)

// TestMaintenanceSweepShape: the sweep reports every (views, lane) cell and
// the lanes behave according to type — sync is always fresh and defers
// nothing, the deferred lanes take maintenance off the writer's latency
// (the ≥3x acceptance criterion, asserted here at the experiment level),
// accumulate real staleness, and push the deferred work into the drain
// column. The OCC mini-wave must show deferred lanes shrinking what a
// conflict loser re-executes.
func TestMaintenanceSweepShape(t *testing.T) {
	res, err := RunMaintenance([]int{1, 16}, 3, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, vc := range []int{1, 16} {
		for _, lane := range MaintenanceLanes {
			c, ok := res.Cells[vc][lane.Name]
			if !ok {
				t.Fatalf("missing cell %s/%d views", lane.Name, vc)
			}
			if lane.Name == "Sync" {
				if c.StaleLag != 0 || c.DrainMs != 0 {
					t.Errorf("Sync/%d: stale lag %.1f, drain %.2fms; sync defers nothing", vc, c.StaleLag, c.DrainMs)
				}
				continue
			}
			if c.StaleLag <= 0 {
				t.Errorf("%s/%d: no staleness observed against a paused backlog", lane.Name, vc)
			}
			if c.DrainMs <= 0 {
				t.Errorf("%s/%d: no deferred applier work accounted", lane.Name, vc)
			}
			// A watermark read waits out a queued delta; it must cost more
			// than the sync lane's always-fresh read.
			if syncRead := res.Cells[vc]["Sync"].WatermarkRead.Mean; c.WatermarkRead.Mean <= syncRead {
				t.Errorf("%s/%d: watermark read %.2fms not above fresh sync read %.2fms",
					lane.Name, vc, c.WatermarkRead.Mean, syncRead)
			}
		}
	}
	// The headline: at 16 views the deferred lanes must beat sync by at
	// least the 3x acceptance target on writer-visible latency, and the
	// same shift must show in what an OCC conflict loser re-executes.
	syncCell := res.Cells[16]["Sync"]
	for _, lane := range []string{"Async", "Hybrid"} {
		c := res.Cells[16][lane]
		if ratio := syncCell.Write.Mean / c.Write.Mean; ratio < 3 {
			t.Errorf("%s write at 16 views %.2fms vs sync %.2fms: %.2fx, want >= 3x",
				lane, c.Write.Mean, syncCell.Write.Mean, ratio)
		}
		if c.OCCMean.Mean >= syncCell.OCCMean.Mean {
			t.Errorf("%s OCC wave %.2fms not below sync's %.2fms", lane, c.OCCMean.Mean, syncCell.OCCMean.Mean)
		}
	}
	out := RenderMaintenance(res)
	for _, want := range []string{"Sync", "Async", "Hybrid", "views", "drain"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestHerdRetriesIntensifyContention pins the -herd flag's contract: herd
// waves re-contend, so on one hot row the optimistic modes must abort more
// and pay more latency than the calibrated solo-retry waves — while the
// solo cells themselves (the pinned baseline) and the hierarchical lock
// queue (which blocks instead of retrying) are untouched by the flag.
func TestHerdRetriesIntensifyContention(t *testing.T) {
	solo, err := RunContention([]int{1}, 4, 10, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	herd, err := RunContentionOpts([]int{1}, 4, 10, 1, 1, nil, ContentionOpts{Herd: true})
	if err != nil {
		t.Fatal(err)
	}
	if solo.Herd || !herd.Herd {
		t.Fatalf("Herd recorded as %v/%v, want false/true", solo.Herd, herd.Herd)
	}
	for _, mode := range []string{"MVCC", "OCC"} {
		s, h := solo.Cells[1][mode], herd.Cells[1][mode]
		if s.Txns != 40 || h.Txns != 40 {
			t.Errorf("%s: committed %d/%d txns, want 40/40 (no transaction lost to the herd)", mode, s.Txns, h.Txns)
		}
		if h.Conflicts <= s.Conflicts {
			t.Errorf("%s: herd conflicts %d not above solo %d; losers must re-collide", mode, h.Conflicts, s.Conflicts)
		}
		if h.Mean.Mean <= s.Mean.Mean {
			t.Errorf("%s: herd latency %.2fms not above solo %.2fms", mode, h.Mean.Mean, s.Mean.Mean)
		}
	}
	sh, hh := solo.Cells[1]["Hierarchical"], herd.Cells[1]["Hierarchical"]
	if sh.Mean != hh.Mean || hh.Conflicts != 0 {
		t.Errorf("hierarchical cell changed under -herd (%.2fms vs %.2fms, %d conflicts); locking has no retry storm",
			sh.Mean.Mean, hh.Mean.Mean, hh.Conflicts)
	}
}
