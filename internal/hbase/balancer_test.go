package hbase

import (
	"fmt"
	"sync"
	"testing"

	"synergy/internal/cluster"
	"synergy/internal/sim"
)

// key maps i into the zero-padded key order the balancer tests split on.
func bkey(i int) string { return fmt.Sprintf("k%04d", i) }

// heatRegion drives n gets at key through c so the hosting region's load
// score rises by n.
func heatRegion(t *testing.T, c *Client, tbl, key string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := c.Get(sim.NewCtx(), tbl, key, ReadOpts{}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestScanDrainsAcrossMove: a scanner opened before a balancer move keeps its
// *Region pointers and drains against the old assignment — the row stream is
// identical to an undisturbed scan.
func TestScanDrainsAcrossMove(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t", SplitKeys: []string{bkey(50)}})
	c := hc.NewWarmClient()
	ctx := sim.NewCtx()
	for i := 0; i < 100; i++ {
		if err := c.Put(ctx, "t", bkey(i), []Cell{put("v", fmt.Sprint(i), 0)}); err != nil {
			t.Fatal(err)
		}
	}

	want := make([]string, 0, 100)
	sc, err := c.Scan(sim.NewCtx(), "t", ScanSpec{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range sc.All(sim.NewCtx()) {
		want = append(want, row.Key)
	}

	sc, err = c.Scan(sim.NewCtx(), "t", ScanSpec{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for i := 0; i < 10; i++ { // partially drain before the move
		row, ok := sc.Next(sim.NewCtx())
		if !ok {
			t.Fatal("scan exhausted early")
		}
		got = append(got, row.Key)
	}
	tbl, err := hc.lookup("t")
	if err != nil {
		t.Fatal(err)
	}
	r := tbl.regionFor(bkey(0))
	hc.moveRegion(sim.NewCtx(), tbl, r, "slave-4")
	if r.Server() != "slave-4" {
		t.Fatalf("region server = %s after move, want slave-4", r.Server())
	}
	for {
		row, ok := sc.Next(sim.NewCtx())
		if !ok {
			break
		}
		got = append(got, row.Key)
	}
	if len(got) != len(want) {
		t.Fatalf("scan across move returned %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %s, want %s", i, got[i], want[i])
		}
	}
}

// TestStaleRegionWritesForwardAcrossSplit: writes applied through a *Region
// held from before a split — a mutation batch grouped concurrently with the
// split — forward to the owning daughter instead of vanishing into the dead
// parent's memstore.
func TestStaleRegionWritesForwardAcrossSplit(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t", SplitThreshold: 10_000})
	c := hc.NewWarmClient()
	ctx := sim.NewCtx()
	for i := 0; i < 100; i++ {
		if err := c.Put(ctx, "t", bkey(i), []Cell{put("v", "old", 0)}); err != nil {
			t.Fatal(err)
		}
	}
	tbl, err := hc.lookup("t")
	if err != nil {
		t.Fatal(err)
	}
	stale := tbl.regionFor(bkey(0)) // held across the split, as a batch group would
	tbl.spec.SplitThreshold = 10
	hc.splitIfNeeded(tbl)
	if got := hc.RegionCount("t"); got < 2 {
		t.Fatalf("regions = %d after forced split, want >= 2", got)
	}
	if tbl.regionFor(bkey(99)) == stale {
		t.Fatal("table still routes to the pre-split region")
	}

	stale.put(bkey(99), []Cell{{Qualifier: "v", Value: []byte("new"), TS: hc.NextTS()}})
	stale.increment(bkey(7), "n", 5, hc.NextTS())
	stale.deleteRow(bkey(3), hc.NextTS(), nil)
	if !stale.checkAndPut(bkey(42), "v", []byte("old"), Cell{Qualifier: "v", Value: []byte("cas"), TS: hc.NextTS()}) {
		t.Fatal("checkAndPut through the stale region did not see current data")
	}

	if got, _ := c.Get(ctx, "t", bkey(99), ReadOpts{}); string(got.Get("v")) != "new" {
		t.Fatalf("put through stale region lost: v = %q", got.Get("v"))
	}
	if got, _ := c.Get(ctx, "t", bkey(7), ReadOpts{}); len(got.Get("n")) != 8 {
		t.Fatal("increment through stale region lost")
	}
	if got, _ := c.Get(ctx, "t", bkey(3), ReadOpts{}); !got.Empty() {
		t.Fatalf("delete through stale region lost: %v", got)
	}
	if got, _ := c.Get(ctx, "t", bkey(42), ReadOpts{}); string(got.Get("v")) != "cas" {
		t.Fatalf("checkAndPut through stale region lost: v = %q", got.Get("v"))
	}
}

// TestMutateBatchAcrossConcurrentSplitLosesNothing races a large MutateBatch
// against load splits of the same table and verifies every mutation landed.
// Run under -race this also pins the region/meta locking.
func TestMutateBatchAcrossConcurrentSplitLosesNothing(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t", SplitThreshold: 10_000, LoadSplitThreshold: 50})
	c := hc.NewWarmClient()
	const n = 600
	muts := make([]Mutation, 0, n)
	for i := 0; i < n; i++ {
		muts = append(muts, PutMutation("t", bkey(i), []Cell{{Qualifier: "v", Value: []byte("x")}}, 0))
	}
	tbl, err := hc.lookup("t")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			hc.splitIfNeeded(tbl)
		}
	}()
	if err := c.MutateBatch(sim.NewCtx(), muts); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	hc.splitIfNeeded(tbl)
	ctx := sim.NewCtx()
	for i := 0; i < n; i++ {
		got, err := c.Get(ctx, "t", bkey(i), ReadOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if string(got.Get("v")) != "x" {
			t.Fatalf("row %s lost across concurrent split", bkey(i))
		}
	}
}

// TestBalancerMovesCoHostedHotRegions: two hot regions sharing a server give
// the balancer a strictly improving move; it relocates one and the meta
// generation bumps.
func TestBalancerMovesCoHostedHotRegions(t *testing.T) {
	hc := newTestCluster(t)
	// 6 regions over 5 slaves: regions 0 and 5 both land on slave-0.
	var splits []string
	for i := 1; i < 6; i++ {
		splits = append(splits, bkey(i*100))
	}
	mustCreate(t, hc, TableSpec{Name: "t", SplitKeys: splits})
	c := hc.NewWarmClient()
	ctx := sim.NewCtx()
	for i := 0; i < 600; i += 50 {
		if err := c.Put(ctx, "t", bkey(i), []Cell{put("v", "1", 0)}); err != nil {
			t.Fatal(err)
		}
	}
	tbl, err := hc.lookup("t")
	if err != nil {
		t.Fatal(err)
	}
	r0, r5 := tbl.regionFor(bkey(0)), tbl.regionFor(bkey(500))
	if r0.Server() != r5.Server() {
		t.Fatalf("fixture: regions on %s and %s, want co-hosted", r0.Server(), r5.Server())
	}

	bal, err := hc.NewBalancer("test")
	if err != nil {
		t.Fatal(err)
	}
	defer bal.Close()
	if !bal.IsLeader() {
		t.Fatal("sole balancer is not leader")
	}

	heatRegion(t, c, "t", bkey(0), 40)
	heatRegion(t, c, "t", bkey(500), 40)
	genBefore := tbl.gen.Load()
	if !bal.Tick(sim.NewCtx()) {
		t.Fatal("tick with two co-hosted hot regions performed no move")
	}
	if bal.Moves() != 1 {
		t.Fatalf("moves = %d, want 1", bal.Moves())
	}
	if r0.Server() == r5.Server() {
		t.Fatal("hot regions still co-hosted after balancing")
	}
	if tbl.gen.Load() == genBefore {
		t.Fatal("region move did not bump the table generation")
	}
}

// TestMetaCacheRefreshOnMove: after a move, a warm client's next op pays
// exactly one MetaLookup, then the cache is warm again.
func TestMetaCacheRefreshOnMove(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t", SplitKeys: []string{bkey(50)}})
	c := hc.NewWarmClient()
	if err := c.Put(sim.NewCtx(), "t", bkey(1), []Cell{put("v", "1", 0)}); err != nil {
		t.Fatal(err)
	}
	warm := sim.NewCtx()
	if _, err := c.Get(warm, "t", bkey(1), ReadOpts{}); err != nil {
		t.Fatal(err)
	}

	tbl, err := hc.lookup("t")
	if err != nil {
		t.Fatal(err)
	}
	hc.moveRegion(sim.NewCtx(), tbl, tbl.regionFor(bkey(1)), "slave-4")

	stale := sim.NewCtx()
	if _, err := c.Get(stale, "t", bkey(1), ReadOpts{}); err != nil {
		t.Fatal(err)
	}
	if got, want := stale.Elapsed()-warm.Elapsed(), hc.Costs().MetaLookup; got != want {
		t.Fatalf("post-move get cost %v extra, want one MetaLookup (%v)", got, want)
	}
	again := sim.NewCtx()
	if _, err := c.Get(again, "t", bkey(1), ReadOpts{}); err != nil {
		t.Fatal(err)
	}
	if again.Elapsed() != warm.Elapsed() {
		t.Fatalf("re-warmed get = %v, want %v", again.Elapsed(), warm.Elapsed())
	}
}

// TestBalancerElectionFailover: the second balancer is a hot standby that
// takes the election when the leader closes; non-leader ticks are no-ops.
func TestBalancerElectionFailover(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t"})
	b1, err := hc.NewBalancer("b1")
	if err != nil {
		t.Fatal(err)
	}
	b2, err := hc.NewBalancer("b2")
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if !b1.IsLeader() || b2.IsLeader() {
		t.Fatalf("leadership = %v/%v, want b1 leading", b1.IsLeader(), b2.IsLeader())
	}
	if b2.Tick(sim.NewCtx()) {
		t.Fatal("standby tick performed a move")
	}
	b1.Close()
	if !b2.IsLeader() {
		t.Fatal("standby did not take over after leader close")
	}
}

// TestBalancerBackgroundLoopRaceClean drives the Start/Poke/Stop background
// loop against a concurrent read/write workload; -race is the assertion.
func TestBalancerBackgroundLoopRaceClean(t *testing.T) {
	cl := cluster.NewDefault(nil)
	cl.EnableQueueing()
	hc := NewHCluster(cl, nil, nil)
	if err := hc.CreateTable(TableSpec{Name: "t", SplitThreshold: 10_000, LoadSplitThreshold: 100,
		SplitKeys: []string{bkey(200), bkey(400)}}); err != nil {
		t.Fatal(err)
	}
	bal, err := hc.NewBalancer("bg")
	if err != nil {
		t.Fatal(err)
	}
	bal.Start()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := hc.NewWarmClient()
			for i := 0; i < 200; i++ {
				k := bkey((w*131 + i*17) % 600)
				if i%3 == 0 {
					if err := c.Put(sim.NewCtx(), "t", k, []Cell{put("v", "x", 0)}); err != nil {
						t.Error(err)
						return
					}
				} else if _, err := c.Get(sim.NewCtx(), "t", k, ReadOpts{}); err != nil {
					t.Error(err)
					return
				}
				if i%25 == 0 {
					bal.Poke()
				}
			}
		}(w)
	}
	wg.Wait()
	bal.Stop()
	bal.Close()
	c := hc.NewWarmClient()
	if _, err := c.Get(sim.NewCtx(), "t", bkey(0), ReadOpts{}); err != nil {
		t.Fatal(err)
	}
}
