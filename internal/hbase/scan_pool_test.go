package hbase

import (
	"fmt"
	"sync"
	"testing"

	"synergy/internal/sim"
)

// TestSharedPoolConcurrentScanners runs many scanners on one client at
// once: every scan must return the full, correctly ordered result while
// all of them draw workers from the single shared pool. Run under -race
// this is the acceptance check for the per-client pool.
func TestSharedPoolConcurrentScanners(t *testing.T) {
	_, c := buildScanFixture(t, 3000, 6)
	want, _ := drainSpec(t, c, ScanSpec{Sequential: true})

	const scanners = 8
	var wg sync.WaitGroup
	errs := make(chan error, scanners)
	for g := 0; g < scanners; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := sim.NewCtx()
			sc, err := c.Scan(ctx, "t", ScanSpec{})
			if err != nil {
				errs <- err
				return
			}
			rows := sc.All(ctx)
			if len(rows) != len(want) {
				errs <- fmt.Errorf("got %d rows, want %d", len(rows), len(want))
				return
			}
			for i := range rows {
				if rows[i].Key != want[i].Key {
					errs <- fmt.Errorf("row %d key %q, want %q", i, rows[i].Key, want[i].Key)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSharedPoolInterleavedScansOneGoroutine is the starvation trap the
// caller-runs claim exists for: a partially drained scan A parks blocked
// producers on the pool, then the same goroutine opens and fully drains
// scan B before ever returning to A. Without the consumer claiming B's
// unstarted region jobs inline, B could wait forever on workers wedged
// behind A's full streams.
func TestSharedPoolInterleavedScansOneGoroutine(t *testing.T) {
	hc, c := buildScanFixture(t, 3000, 6)
	// Shrink the pool to two workers so scan A's blocked producers occupy
	// the whole pool (A spans 6 regions; its first two drains park on full
	// streams once the partial drain below stops consuming).
	hc.Costs().ScanParallelism = 2
	c.pool = nil // rebuild at the new size on next use

	ctxA := sim.NewCtx()
	scA, err := c.Scan(ctxA, "t", ScanSpec{Batch: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ { // partial drain; producers stay parked
		if _, ok := scA.Next(ctxA); !ok {
			t.Fatal("scan A exhausted too early")
		}
	}

	ctxB := sim.NewCtx()
	scB, err := c.Scan(ctxB, "t", ScanSpec{Batch: 50})
	if err != nil {
		t.Fatal(err)
	}
	rowsB := scB.All(ctxB)

	rowsA := scA.All(ctxA)
	seq, _ := drainSpec(t, c, ScanSpec{Sequential: true})
	if len(rowsB) != len(seq) {
		t.Fatalf("scan B returned %d rows, want %d", len(rowsB), len(seq))
	}
	if got := 10 + len(rowsA); got != len(seq) {
		t.Fatalf("scan A returned %d rows total, want %d", got, len(seq))
	}
	for i := range rowsB {
		if rowsB[i].Key != seq[i].Key {
			t.Fatalf("scan B row %d = %q, want %q", i, rowsB[i].Key, seq[i].Key)
		}
	}
}

// TestScanPoolWorkerCap verifies the pool never spawns more goroutines
// than its size, however many region jobs a scan submits.
func TestScanPoolWorkerCap(t *testing.T) {
	p := newScanPool(3)
	p.mu.Lock()
	if p.workers != 0 {
		p.mu.Unlock()
		t.Fatalf("fresh pool has %d workers", p.workers)
	}
	p.mu.Unlock()

	_, c := buildScanFixture(t, 3000, 6)
	c.pool = p // 6 region jobs over a 3-worker pool
	ctx := sim.NewCtx()
	sc, err := c.Scan(ctx, "t", ScanSpec{})
	if err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	if p.workers > p.size {
		p.mu.Unlock()
		t.Fatalf("pool spawned %d workers, cap %d", p.workers, p.size)
	}
	p.mu.Unlock()
	sc.All(ctx)
}

// TestScanParallelismOverrideUsesPrivatePool pins the per-scan override:
// an explicit ScanSpec.Parallelism must not be capped by (or occupy) the
// client's shared pool.
func TestScanParallelismOverrideUsesPrivatePool(t *testing.T) {
	_, c := buildScanFixture(t, 2000, 4)
	shared := c.sharedScanPool()
	ctx := sim.NewCtx()
	sc, err := c.Scan(ctx, "t", ScanSpec{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	shared.mu.Lock()
	queued := len(shared.queue)
	shared.mu.Unlock()
	if queued != 0 {
		t.Fatalf("override scan queued %d jobs on the shared pool", queued)
	}
	rows := sc.All(ctx)
	seq, _ := drainSpec(t, c, ScanSpec{Sequential: true})
	if len(rows) != len(seq) {
		t.Fatalf("override scan rows = %d, want %d", len(rows), len(seq))
	}
}

// TestPooledChunkReuseInterleavedScans hammers the pooled chunk buffers:
// many goroutines on one shared client, each interleaving a partially
// drained parallel scan with limited scans and early Closes, so released
// chunks recycle through the client pool while sibling scans are mid
// flight. Every retained row is a Clone taken at Next time and checked
// after the churn — a chunk recycled while still referenced, or an arena
// window crossing into a neighbor row, shows up as a corrupted clone (and
// under -race as a data race on the recycled buffers).
func TestPooledChunkReuseInterleavedScans(t *testing.T) {
	_, c := buildScanFixture(t, 3000, 6)
	want, _ := drainSpec(t, c, ScanSpec{Sequential: true})
	wantByKey := make(map[string]RowResult, len(want))
	for _, r := range want {
		wantByKey[r.Key] = r
	}

	const goroutines = 8
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			check := func(rows []RowResult) error {
				for _, r := range rows {
					ref, ok := wantByKey[r.Key]
					if !ok {
						return fmt.Errorf("unknown key %q surfaced", r.Key)
					}
					if len(r.Cells) != len(ref.Cells) {
						return fmt.Errorf("row %q has %d pairs, want %d", r.Key, len(r.Cells), len(ref.Cells))
					}
					for i := range r.Cells {
						if r.Cells[i].Qualifier != ref.Cells[i].Qualifier ||
							string(r.Cells[i].Value) != string(ref.Cells[i].Value) {
							return fmt.Errorf("row %q pair %d corrupted: %+v", r.Key, i, r.Cells[i])
						}
					}
				}
				return nil
			}
			for round := 0; round < rounds; round++ {
				// Scan A: parallel, partially drained with retained clones.
				ctxA := sim.NewCtx()
				scA, err := c.Scan(ctxA, "t", ScanSpec{})
				if err != nil {
					errs <- err
					return
				}
				var kept []RowResult
				for i := 0; i < 40+17*g; i++ {
					row, ok := scA.Next(ctxA)
					if !ok {
						break
					}
					if i%3 == 0 {
						kept = append(kept, row.Clone())
					}
				}
				// Scan B: limited, fully drained while A is parked.
				ctxB := sim.NewCtx()
				scB, err := c.Scan(ctxB, "t", ScanSpec{Limit: 50 + round})
				if err != nil {
					errs <- err
					return
				}
				if err := check(scB.All(ctxB)); err != nil {
					errs <- err
					return
				}
				// Abandon A mid-flight on odd rounds (close-path recycling),
				// drain it on even rounds (exhaust-path recycling).
				if round%2 == 1 {
					scA.Close(ctxA)
				} else {
					for {
						if _, ok := scA.Next(ctxA); !ok {
							break
						}
					}
				}
				if err := check(kept); err != nil {
					errs <- fmt.Errorf("retained clones after churn: %w", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
