package hbase

import (
	"fmt"
	"sync"
	"testing"

	"synergy/internal/sim"
)

// TestSharedPoolConcurrentScanners runs many scanners on one client at
// once: every scan must return the full, correctly ordered result while
// all of them draw workers from the single shared pool. Run under -race
// this is the acceptance check for the per-client pool.
func TestSharedPoolConcurrentScanners(t *testing.T) {
	_, c := buildScanFixture(t, 3000, 6)
	want, _ := drainSpec(t, c, ScanSpec{Sequential: true})

	const scanners = 8
	var wg sync.WaitGroup
	errs := make(chan error, scanners)
	for g := 0; g < scanners; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := sim.NewCtx()
			sc, err := c.Scan(ctx, "t", ScanSpec{})
			if err != nil {
				errs <- err
				return
			}
			rows := sc.All(ctx)
			if len(rows) != len(want) {
				errs <- fmt.Errorf("got %d rows, want %d", len(rows), len(want))
				return
			}
			for i := range rows {
				if rows[i].Key != want[i].Key {
					errs <- fmt.Errorf("row %d key %q, want %q", i, rows[i].Key, want[i].Key)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSharedPoolInterleavedScansOneGoroutine is the starvation trap the
// caller-runs claim exists for: a partially drained scan A parks blocked
// producers on the pool, then the same goroutine opens and fully drains
// scan B before ever returning to A. Without the consumer claiming B's
// unstarted region jobs inline, B could wait forever on workers wedged
// behind A's full streams.
func TestSharedPoolInterleavedScansOneGoroutine(t *testing.T) {
	hc, c := buildScanFixture(t, 3000, 6)
	// Shrink the pool to two workers so scan A's blocked producers occupy
	// the whole pool (A spans 6 regions; its first two drains park on full
	// streams once the partial drain below stops consuming).
	hc.Costs().ScanParallelism = 2
	c.pool = nil // rebuild at the new size on next use

	ctxA := sim.NewCtx()
	scA, err := c.Scan(ctxA, "t", ScanSpec{Batch: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ { // partial drain; producers stay parked
		if _, ok := scA.Next(ctxA); !ok {
			t.Fatal("scan A exhausted too early")
		}
	}

	ctxB := sim.NewCtx()
	scB, err := c.Scan(ctxB, "t", ScanSpec{Batch: 50})
	if err != nil {
		t.Fatal(err)
	}
	rowsB := scB.All(ctxB)

	rowsA := scA.All(ctxA)
	seq, _ := drainSpec(t, c, ScanSpec{Sequential: true})
	if len(rowsB) != len(seq) {
		t.Fatalf("scan B returned %d rows, want %d", len(rowsB), len(seq))
	}
	if got := 10 + len(rowsA); got != len(seq) {
		t.Fatalf("scan A returned %d rows total, want %d", got, len(seq))
	}
	for i := range rowsB {
		if rowsB[i].Key != seq[i].Key {
			t.Fatalf("scan B row %d = %q, want %q", i, rowsB[i].Key, seq[i].Key)
		}
	}
}

// TestScanPoolWorkerCap verifies the pool never spawns more goroutines
// than its size, however many region jobs a scan submits.
func TestScanPoolWorkerCap(t *testing.T) {
	p := newScanPool(3)
	p.mu.Lock()
	if p.workers != 0 {
		p.mu.Unlock()
		t.Fatalf("fresh pool has %d workers", p.workers)
	}
	p.mu.Unlock()

	_, c := buildScanFixture(t, 3000, 6)
	c.pool = p // 6 region jobs over a 3-worker pool
	ctx := sim.NewCtx()
	sc, err := c.Scan(ctx, "t", ScanSpec{})
	if err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	if p.workers > p.size {
		p.mu.Unlock()
		t.Fatalf("pool spawned %d workers, cap %d", p.workers, p.size)
	}
	p.mu.Unlock()
	sc.All(ctx)
}

// TestScanParallelismOverrideUsesPrivatePool pins the per-scan override:
// an explicit ScanSpec.Parallelism must not be capped by (or occupy) the
// client's shared pool.
func TestScanParallelismOverrideUsesPrivatePool(t *testing.T) {
	_, c := buildScanFixture(t, 2000, 4)
	shared := c.sharedScanPool()
	ctx := sim.NewCtx()
	sc, err := c.Scan(ctx, "t", ScanSpec{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	shared.mu.Lock()
	queued := len(shared.queue)
	shared.mu.Unlock()
	if queued != 0 {
		t.Fatalf("override scan queued %d jobs on the shared pool", queued)
	}
	rows := sc.All(ctx)
	seq, _ := drainSpec(t, c, ScanSpec{Sequential: true})
	if len(rows) != len(seq) {
		t.Fatalf("override scan rows = %d, want %d", len(rows), len(seq))
	}
}
