package hbase

import (
	"bytes"
	"fmt"
	"testing"
)

// FuzzCellsMerge fuzzes the sorted-slice row machinery end to end: fuzz
// bytes become a cell-operation tape (puts, column tombstones, row
// tombstones, spread over up to three sorted parts), the parts are merged
// with mergeCellsInto, and the invariants every consumer of Cells relies
// on are checked:
//
//   - sortedness: merged cell indexes are ordered by cellLess, and every
//     materialized Cells slice is strictly ascending by qualifier;
//   - precedence/stability: on identical (qualifier, ts, type) coordinates
//     the earlier (higher-precedence) part's cell wins;
//   - last-write-wins + tombstone handling: the slice read matches the
//     reference map read under plain, snapshot, excluded-version and
//     projected options, and binary-search Get agrees pair for pair.
//
// CI runs this for a short -fuzztime as a smoke step; run it longer
// locally when touching rowdata.go or merge.go.
//
// The aliasing phase at the end deliberately scribbles over a returned
// Cells to prove reads stay independent (cellsvet:owner).
func FuzzCellsMerge(f *testing.F) {
	f.Add([]byte{0x01, 0x22, 0x43, 0x10, 0x05})
	f.Add([]byte{0xff, 0x00, 0x80, 0x7f, 0x33, 0x9a, 0x02, 0x41})
	f.Add(bytes.Repeat([]byte{0x42, 0x13}, 40))
	f.Fuzz(func(t *testing.T, tape []byte) {
		parts := [3]*rowData{{}, {}, {}}
		for off := 0; off+3 < len(tape); off += 4 {
			qual := fmt.Sprintf("q%d", tape[off]%8)
			ts := int64(tape[off+1]%32) + 1
			kind := CellType(tape[off+2] % 3)
			part := int(tape[off+3]) % len(parts)
			c := Cell{Qualifier: qual, TS: ts, Type: kind}
			switch kind {
			case TypePut:
				// The value encodes (part, offset) so precedence on
				// coordinate ties is observable from the winning cell.
				c.Value = []byte(fmt.Sprintf("p%d-%d", part, off))
			case TypeDeleteRow:
				c.Qualifier = "" // row tombstones live at the empty qualifier
			}
			parts[part].apply(c, 4)
			if !sortedByCellLess(parts[part].cells) {
				t.Fatalf("part %d unsorted after apply(%+v)", part, c)
			}
		}

		m := merged(parts[0], parts[1], parts[2])
		if !sortedByCellLess(m.cells) {
			t.Fatalf("merged cells unsorted: %+v", m.cells)
		}
		total := len(parts[0].cells) + len(parts[1].cells) + len(parts[2].cells)
		if len(m.cells) != total {
			t.Fatalf("merge dropped cells: %d in, %d out", total, len(m.cells))
		}
		// Stability: among equal coordinates, part order must be preserved
		// (put values encode their part index at Value[1]).
		for i := 1; i < len(m.cells); i++ {
			a, b := m.cells[i-1], m.cells[i]
			if a.Qualifier == b.Qualifier && a.TS == b.TS && a.Type == b.Type &&
				a.Type == TypePut && a.Value[1] > b.Value[1] {
				t.Fatalf("merge not stable at %d: part %c before part %c", i, a.Value[1], b.Value[1])
			}
		}

		optsList := []ReadOpts{
			{},
			{ReadTS: 9},
			{Excluded: func(ts int64) bool { return ts%3 == 0 }},
			{Columns: []string{"q1", "q4"}},
		}
		for oi, opts := range optsList {
			got := m.read(opts)
			if !got.sortedOK() {
				t.Fatalf("opts %d: read not strictly sorted: %v", oi, got)
			}
			want := readRefMap(m, opts)
			if len(got) != len(want) {
				t.Fatalf("opts %d: slice read %d pairs, map read %d (%v vs %v)", oi, len(got), len(want), got, want)
			}
			for _, p := range got {
				if !bytes.Equal(p.Value, want[p.Qualifier]) {
					t.Fatalf("opts %d: %s = %q, reference %q", oi, p.Qualifier, p.Value, want[p.Qualifier])
				}
				if !bytes.Equal(got.Get(p.Qualifier), p.Value) {
					t.Fatalf("opts %d: binary-search Get(%s) diverges from pair", oi, p.Qualifier)
				}
			}
			if got.Get("absent-qualifier") != nil {
				t.Fatalf("opts %d: Get of absent qualifier returned a value", oi)
			}
		}

		// Aliasing: a returned Cells is freshly materialized — clobbering
		// every pair in it (structs, not the shared Value bytes) must not
		// change what a later read or an earlier Clone observes.
		scribbled := m.read(ReadOpts{})
		snap := scribbled.Clone()
		for i := range scribbled {
			scribbled[i] = Pair{Qualifier: "zz-scribble", Value: []byte("scribble")}
		}
		fresh := m.read(ReadOpts{})
		if len(fresh) != len(snap) {
			t.Fatalf("scribbling a returned Cells changed a later read: %d vs %d pairs", len(fresh), len(snap))
		}
		for i := range fresh {
			if fresh[i].Qualifier != snap[i].Qualifier || !bytes.Equal(fresh[i].Value, snap[i].Value) {
				t.Fatalf("scribbling a returned Cells leaked into pair %d: %+v vs %+v", i, fresh[i], snap[i])
			}
		}

		// Compaction must preserve the sort invariant and read equivalence
		// for the plain view it is defined over (latest versions survive,
		// tombstoned data does not return).
		before := m.read(ReadOpts{})
		mc := m.clone()
		mc.compact(1)
		if !sortedByCellLess(mc.cells) {
			t.Fatalf("compacted cells unsorted: %+v", mc.cells)
		}
		after := mc.read(ReadOpts{})
		if len(before) != len(after) {
			t.Fatalf("compaction changed visible row: %v -> %v", before, after)
		}
		for i := range before {
			if before[i].Qualifier != after[i].Qualifier || !bytes.Equal(before[i].Value, after[i].Value) {
				t.Fatalf("compaction changed visible pair %d: %v -> %v", i, before[i], after[i])
			}
		}
	})
}

// sortedByCellLess reports whether cells are in non-decreasing cellLess
// order (ties allowed: merges keep same-coordinate duplicates adjacent).
func sortedByCellLess(cells []Cell) bool {
	for i := 1; i < len(cells); i++ {
		if cellLess(cells[i], cells[i-1]) {
			return false
		}
	}
	return true
}
