package hbase

import (
	"bytes"
	"fmt"
	"testing"

	"synergy/internal/sim"
)

// readRefMap is the retired map-based rowData.read, kept verbatim as the
// reference model for the sorted-slice representation: both read the same
// cell index, so any divergence is a bug in the slice path (or a broken
// sort invariant feeding it).
func readRefMap(r *rowData, opts ReadOpts) map[string][]byte {
	if len(r.cells) == 0 {
		return nil
	}
	var rowDelTS int64 = -1
	for _, c := range r.cells {
		if c.Qualifier != "" {
			break
		}
		if c.Type == TypeDeleteRow && opts.visible(c.TS) {
			rowDelTS = c.TS
			break
		}
	}
	var out map[string][]byte
	i := 0
	for i < len(r.cells) {
		q := r.cells[i].Qualifier
		j := i
		for j < len(r.cells) && r.cells[j].Qualifier == q {
			j++
		}
		if q != "" && opts.wantsColumn(q) {
			for k := i; k < j; k++ {
				c := r.cells[k]
				if !opts.visible(c.TS) {
					continue
				}
				if c.Type == TypeDeleteCol {
					break
				}
				if c.TS <= rowDelTS {
					break
				}
				if out == nil {
					out = map[string][]byte{}
				}
				out[q] = c.Value
				break
			}
		}
		i = j
	}
	return out
}

// requireCellsMatchRef fails unless the slice read equals the reference map
// read: same qualifiers, same values, strictly sorted.
func requireCellsMatchRef(t testing.TB, where string, got Cells, want map[string][]byte) {
	t.Helper()
	if !got.sortedOK() {
		t.Fatalf("%s: Cells not strictly sorted: %v", where, got)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, reference has %d (%v vs %v)", where, len(got), len(want), got, want)
	}
	for _, p := range got {
		if !bytes.Equal(p.Value, want[p.Qualifier]) {
			t.Fatalf("%s: %s = %q, reference %q", where, p.Qualifier, p.Value, want[p.Qualifier])
		}
	}
}

// TestSliceMapParityStoreDump sweeps the whole scan fixture — multi-region,
// multi-file, memstore overlays, tombstones — and checks every row the
// store can materialize against the reference map read, under plain,
// snapshot and column-projected options.
func TestSliceMapParityStoreDump(t *testing.T) {
	hc, c := buildScanFixture(t, 2000, 5)
	optsList := map[string]ReadOpts{
		"plain":     {},
		"snapshot":  {ReadTS: 3},
		"projected": {Columns: []string{"v"}},
		"excluded":  {Excluded: func(ts int64) bool { return ts%2 == 0 }},
	}
	t1, err := hc.lookup("t")
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range optsList {
		// Every key ever written lives at k%06d for i in [0, 2000).
		for i := 0; i < 2000; i++ {
			key := scanKey(i)
			r := t1.regionFor(key)
			r.mu.RLock()
			rd := r.lookupLocked(key)
			var want map[string][]byte
			if rd != nil {
				want = readRefMap(rd, opts)
			}
			r.mu.RUnlock()
			got, err := c.Get(sim.NewCtx(), "t", key, opts)
			if err != nil {
				t.Fatal(err)
			}
			requireCellsMatchRef(t, fmt.Sprintf("%s %s", name, key), got.Cells, want)
		}
	}
	// The scan path must materialize the same rows as the point-get path.
	sc, err := c.Scan(sim.NewCtx(), "t", ScanSpec{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewCtx()
	for {
		row, ok := sc.Next(ctx)
		if !ok {
			break
		}
		point, err := c.Get(sim.NewCtx(), "t", row.Key, ReadOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if len(row.Cells) != len(point.Cells) {
			t.Fatalf("scan row %q has %d pairs, point get %d", row.Key, len(row.Cells), len(point.Cells))
		}
		for j := range row.Cells {
			if row.Cells[j].Qualifier != point.Cells[j].Qualifier || !bytes.Equal(row.Cells[j].Value, point.Cells[j].Value) {
				t.Fatalf("scan/get divergence at %q pair %d", row.Key, j)
			}
		}
	}
}

// TestSortedQualifiersView pins the small-fix satellite: SortedQualifiers
// and String are single passes over the already-sorted pairs, and mutating
// the returned qualifier slice must not corrupt the row.
func TestSortedQualifiersView(t *testing.T) {
	row := RowResult{Key: "k", Cells: Cells{
		{Qualifier: "a", Value: []byte("1")},
		{Qualifier: "b", Value: []byte("2")},
		{Qualifier: "c", Value: []byte("3")},
	}}
	quals := row.SortedQualifiers()
	if len(quals) != 3 || quals[0] != "a" || quals[2] != "c" {
		t.Fatalf("SortedQualifiers = %v", quals)
	}
	quals[0] = "zzz" // caller-owned; the row must be unaffected
	if string(row.Get("a")) != "1" {
		t.Fatal("mutating SortedQualifiers result corrupted the row")
	}
	if got, want := row.String(), "k{a=1 b=2 c=3}"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	var empty RowResult
	if empty.SortedQualifiers() != nil {
		t.Fatal("empty row should have nil qualifiers")
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = row.Cells.Get("b") }); allocs != 0 {
		t.Fatalf("Cells.Get allocates %v per call, want 0", allocs)
	}
}

// TestReturnedRowAliasing pins the contract behind the arena scan path: a
// row handed out by Get, Next or All may be scribbled over (Pair structs,
// never the shared Value bytes) without disturbing the store or any other
// returned row. Point reads are caller-stable; stream rows are compared
// through Clone, the supported way to retain them past the next Next.
//
// The scribbling below is deliberate rule-breaking to prove independence
// (cellsvet:owner).
func TestReturnedRowAliasing(t *testing.T) {
	_, c := buildScanFixture(t, 600, 3)

	// Point get: scribble the returned Cells, read again, compare.
	key := scanKey(42)
	first, err := c.Get(sim.NewCtx(), "t", key, ReadOpts{})
	if err != nil {
		t.Fatal(err)
	}
	snap := first.Clone()
	for i := range first.Cells {
		first.Cells[i] = Pair{Qualifier: "zz", Value: []byte("scribble")}
	}
	second, err := c.Get(sim.NewCtx(), "t", key, ReadOpts{})
	if err != nil {
		t.Fatal(err)
	}
	requireSameCells(t, "point get after scribble", second.Cells, snap.Cells)

	// Scan: clone every row, scribble the live window after cloning; the
	// clones and a fresh scan must be untouched. Appending to a window
	// must reallocate (windows are capacity-clipped), never write the
	// arena cell that belongs to the next row.
	for _, seq := range []bool{true, false} {
		ctx := sim.NewCtx()
		sc, err := c.Scan(ctx, "t", ScanSpec{Sequential: seq})
		if err != nil {
			t.Fatal(err)
		}
		var clones []RowResult
		for {
			row, ok := sc.Next(ctx)
			if !ok {
				break
			}
			clones = append(clones, row.Clone())
			grown := append(row.Cells, Pair{Qualifier: "zz", Value: []byte("overflow")})
			_ = grown
			for i := range row.Cells {
				row.Cells[i] = Pair{Qualifier: "zz", Value: []byte("scribble")}
			}
		}
		rescan, _ := drainSpec(t, c, ScanSpec{Sequential: seq})
		if len(rescan) != len(clones) {
			t.Fatalf("sequential=%v: scribbled scan left %d rows, clean rescan %d", seq, len(clones), len(rescan))
		}
		for i := range rescan {
			if rescan[i].Key != clones[i].Key {
				t.Fatalf("sequential=%v row %d: key %q vs clone %q", seq, i, rescan[i].Key, clones[i].Key)
			}
			requireSameCells(t, fmt.Sprintf("sequential=%v row %s", seq, rescan[i].Key), rescan[i].Cells, clones[i].Cells)
		}
	}
}

// requireSameCells fails unless both Cells hold the same qualifier/value
// pairs in the same order.
func requireSameCells(t testing.TB, where string, got, want Cells) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs vs %d", where, len(got), len(want))
	}
	for i := range got {
		if got[i].Qualifier != want[i].Qualifier || !bytes.Equal(got[i].Value, want[i].Value) {
			t.Fatalf("%s: pair %d: %s=%q vs %s=%q", where, i,
				got[i].Qualifier, got[i].Value, want[i].Qualifier, want[i].Value)
		}
	}
}
