package hbase

import (
	"sort"

	"synergy/internal/sim"
)

// RowStream is the minimal streaming-read contract shared by a plain
// Scanner and the overlay-merging scanner a ReadView returns. A fully
// drained stream needs no Close; abandoning one early must Close it so
// in-flight scatter-gather work is stopped and charged.
type RowStream interface {
	Next(ctx *sim.Ctx) (RowResult, bool)
	Close(ctx *sim.Ctx)
}

// Reader serves point gets and scans: either a Client (store reads) or a
// ReadView (transaction reads that merge a BufferedMutator's pending
// mutations over the store). The SQL layer reads through this interface so
// the read-before-write of a transaction sees the transaction's own
// buffered writes.
type Reader interface {
	Get(ctx *sim.Ctx, tbl, key string, opts ReadOpts) (RowResult, error)
	OpenScan(ctx *sim.Ctx, tbl string, spec ScanSpec) (RowStream, error)
}

// OpenScan adapts Scan to the Reader interface.
func (c *Client) OpenScan(ctx *sim.Ctx, tbl string, spec ScanSpec) (RowStream, error) {
	return c.Scan(ctx, tbl, spec)
}

// overlayTSBase lifts the synthetic timestamps of unstamped (TS == 0)
// buffered mutations above any store timestamp, so pending writes win the
// version merge the same way they will after the flush stamps them with
// fresh server timestamps. Explicitly stamped mutations (MVCC transactions
// write at their transaction id) keep their own timestamps.
const overlayTSBase = int64(1) << 60

// overlayKeep retains every pending version in the overlay; visibility is
// decided at read time, never by version trimming.
const overlayKeep = 1 << 30

// SnapshotRead returns the visibility filter of a begin-timestamp snapshot
// that still admits a transaction's own pending writes: store cells stamped
// above snap are hidden, while the synthetic overlay timestamps of unstamped
// buffered mutations (which live at overlayTSBase and above, far beyond any
// oracle-issued stamp) stay visible. OCC transactions read through this —
// their buffered writes carry no store timestamp until the commit flush, so
// a plain ReadTS filter would hide the transaction from itself.
func SnapshotRead(snap int64) ReadOpts {
	return ReadOpts{Excluded: func(ts int64) bool { return ts > snap && ts < overlayTSBase }}
}

// overlayTable indexes one table's pending mutations by row key, in the
// same (key -> sorted cells) shape as a region memstore.
type overlayTable struct {
	rows   map[string]*rowData
	keys   []string
	sorted bool
	// free recycles pending rowData structs (and their cell-slice capacity)
	// across the transactions that reuse this overlayTable through the
	// client's otPool. Recycling is safe by the overlay lifetime analysis:
	// no RowResult ever aliases a pending cell slice — ReadView.Get and the
	// overlay scanner materialize through rowData.read (which copies the
	// visible pairs out) and overlayRow's merged() path copies the Cell
	// structs themselves — so once a flush or discard retires the overlay,
	// the only shared state left is the Value byte slices, which recycling
	// never touches.
	free []*rowData
}

func newOverlayTable() *overlayTable {
	return &overlayTable{rows: make(map[string]*rowData)}
}

func (o *overlayTable) upsert(key string) *rowData {
	rd := o.rows[key]
	if rd == nil {
		if n := len(o.free); n > 0 {
			rd = o.free[n-1]
			o.free[n-1] = nil
			o.free = o.free[:n-1]
		} else {
			rd = &rowData{}
		}
		o.rows[key] = rd
		o.keys = append(o.keys, key)
		o.sorted = false
	}
	return rd
}

func (o *overlayTable) sortedKeys() []string {
	if !o.sorted {
		sort.Strings(o.keys)
		o.sorted = true
	}
	return o.keys
}

// keysInRange returns the pending keys in [start, stop); stop == "" is
// unbounded.
func (o *overlayTable) keysInRange(start, stop string) []string {
	keys := o.sortedKeys()
	lo := sort.SearchStrings(keys, start)
	hi := len(keys)
	if stop != "" {
		hi = sort.SearchStrings(keys, stop)
	}
	if lo >= hi {
		return nil
	}
	return keys[lo:hi]
}

// rowTombstoned reports whether the pending cells carry a visible row-wide
// tombstone, which masks the entire store row: such reads are served from
// the buffer alone, with no store RPC.
func rowTombstoned(rd *rowData, opts ReadOpts) bool {
	for _, c := range rd.cells {
		if c.Qualifier != "" {
			return false
		}
		if c.Type == TypeDeleteRow && opts.visible(c.TS) {
			return true
		}
	}
	return false
}

// overlayRow merges pending cells over the store-visible cells of one row.
// Store cells are re-injected at timestamp 0 — they already passed the
// store-side visibility filter, and every pending cell (synthetic or
// transaction-stamped) sorts at or above them — so the standard rowData
// version merge resolves precedence: pending row tombstones hide the store
// row, pending column tombstones hide their qualifier, pending puts win.
// The base pairs arrive already sorted by qualifier (every RowResult is),
// so the re-injection is a straight copy with no sort.
func overlayRow(key string, pending *rowData, base Cells, opts ReadOpts) RowResult {
	if len(base) == 0 {
		return RowResult{Key: key, Cells: pending.read(opts)}
	}
	bcells := make([]Cell, len(base))
	for i, p := range base {
		bcells[i] = Cell{Qualifier: p.Qualifier, Value: p.Value}
	}
	return RowResult{Key: key, Cells: merged(pending, &rowData{cells: bcells}).read(opts)}
}

// ReadView is the read-your-writes view of a transaction: point gets and
// scans merge the mutator's pending (buffered, unflushed) mutations over
// store reads in key order, so a transaction observes its own uncommitted
// writes while concurrent requests — which read through their own clients —
// never do. Once the mutator flushes (phase barrier or commit), the overlay
// empties and the view degenerates to plain store reads.
//
// Like the mutator it wraps, a ReadView belongs to one request and is not
// safe for concurrent use.
type ReadView struct {
	m *BufferedMutator
}

// View returns the mutator's read-your-writes view.
func (m *BufferedMutator) View() *ReadView { return &ReadView{m: m} }

// Get reads one row, merging pending mutations over the store row. A
// pending row-wide tombstone short-circuits: the buffer masks the store
// entirely and no store RPC is paid.
func (v *ReadView) Get(ctx *sim.Ctx, tbl, key string, opts ReadOpts) (RowResult, error) {
	pending := v.m.pendingRow(tbl, key)
	if pending == nil {
		return v.m.c.Get(ctx, tbl, key, opts)
	}
	if rowTombstoned(pending, opts) {
		return RowResult{Key: key, Cells: pending.read(opts)}, nil
	}
	base, err := v.m.c.Get(ctx, tbl, key, opts)
	if err != nil {
		return RowResult{}, err
	}
	return overlayRow(key, pending, base.Cells, opts), nil
}

// OpenScan opens a key-ordered scan that folds the pending rows for the
// table into the store stream. Tables with no pending mutations in range
// pass straight through to the store scanner.
//
// Filters split into a store-safe part and a merged-row part (the ROADMAP
// predicate-split follow-up): a row whose key has no pending mutations
// merges to exactly its store image, so the filter may drop it server-side
// (HBase pushdown preserved); rows whose keys carry pending cells are
// exempted from the pushed filter — the store must ship them so the client
// can filter the merged row. Filters must therefore be pure row predicates,
// which every SQL-layer filter is; a stateful or representation-sensitive
// filter opts out with ScanSpec.FilterMergedOnly and runs exclusively
// client-side over merged rows, the pre-split behavior.
func (v *ReadView) OpenScan(ctx *sim.Ctx, tbl string, spec ScanSpec) (RowStream, error) {
	ot := v.m.pendingTable(tbl)
	var keys []string
	if ot != nil {
		start, stop := spec.bounds()
		keys = ot.keysInRange(start, stop)
	}
	if len(keys) == 0 {
		return v.m.c.Scan(ctx, tbl, spec)
	}
	inner := spec
	inner.Filter = nil
	pushed := false
	if spec.Filter != nil && !spec.FilterMergedOnly {
		pend := make(map[string]struct{}, len(keys))
		for _, k := range keys {
			pend[k] = struct{}{}
		}
		f := spec.Filter
		inner.Filter = func(r RowResult) bool {
			if _, hasPending := pend[r.Key]; hasPending {
				return true // must reach the client for the merged-row check
			}
			return f(r)
		}
		pushed = true
	}
	if spec.Limit > 0 {
		if spec.Filter != nil && !pushed {
			// The store cannot know which rows the merged-row-only filter
			// will keep; scan unbounded and trim client-side.
			inner.Limit = 0
		} else {
			// Each pending key can hide at most one store row (and, with a
			// pushed filter, is the only kind of shipped row that can still
			// fail it), so Limit + pending suffices to produce Limit merged
			// rows (or exhaust).
			inner.Limit = spec.Limit + len(keys)
		}
	}
	sc, err := v.m.c.Scan(ctx, tbl, inner)
	if err != nil {
		return nil, err
	}
	return &overlayScanner{store: sc, spec: spec, ot: ot, keys: keys, pushed: pushed}, nil
}

// overlayScanner merges one table's pending rows into the store stream in
// key order, applying the original spec's filter and limit to the merged
// rows. When the filter was pushed to the store (pushed), pure store rows
// already passed it server-side and only pending-merged rows are
// re-checked client-side.
type overlayScanner struct {
	store  *Scanner
	spec   ScanSpec
	ot     *overlayTable
	keys   []string
	ki     int
	pushed bool

	srow   RowResult
	shave  bool // srow holds an unconsumed store row
	sdone  bool
	merged bool // last step() row involved pending cells
	sent   int
	done   bool
}

// Next returns the next merged row. ok is false when the scan is exhausted.
func (s *overlayScanner) Next(ctx *sim.Ctx) (RowResult, bool) {
	if s.done {
		return RowResult{}, false
	}
	for {
		row, ok := s.step(ctx)
		if !ok {
			s.done = true
			return RowResult{}, false
		}
		if s.spec.Filter != nil && (!s.pushed || s.merged) && !s.spec.Filter(row) {
			continue
		}
		s.sent++
		if s.spec.Limit > 0 && s.sent >= s.spec.Limit {
			s.done = true
			s.store.Close(ctx)
		}
		return row, true
	}
}

// step yields the next merged row before filter/limit are applied, marking
// whether it was built from pending cells (s.merged).
func (s *overlayScanner) step(ctx *sim.Ctx) (RowResult, bool) {
	for {
		if !s.shave && !s.sdone {
			if r, ok := s.store.Next(ctx); ok {
				s.srow, s.shave = r, true
			} else {
				s.sdone = true
			}
		}
		if s.ki < len(s.keys) && (!s.shave || s.keys[s.ki] <= s.srow.Key) {
			key := s.keys[s.ki]
			s.ki++
			var base Cells
			if s.shave && s.srow.Key == key {
				base = s.srow.Cells
				s.shave = false
			}
			res := overlayRow(key, s.ot.rows[key], base, s.spec.Read)
			if len(res.Cells) == 0 {
				continue // pending delete (or invisible pending row)
			}
			s.merged = true
			return res, true
		}
		if s.shave {
			s.shave = false
			s.merged = false
			return s.srow, true
		}
		if s.sdone {
			return RowResult{}, false
		}
	}
}

// Close releases an unfinished merged scan.
func (s *overlayScanner) Close(ctx *sim.Ctx) {
	if !s.done {
		s.store.Close(ctx)
		s.done = true
	}
}
