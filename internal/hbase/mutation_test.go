package hbase

import (
	"fmt"
	"testing"

	"synergy/internal/cluster"
	"synergy/internal/sim"
)

// splitCluster builds a table pre-split into `regions` regions over keys
// produced by scanKey.
func splitCluster(t *testing.T, regions, span int) (*HCluster, *Client) {
	t.Helper()
	hc := NewHCluster(cluster.NewDefault(nil), nil, nil)
	var splits []string
	for i := 1; i < regions; i++ {
		splits = append(splits, scanKey(i*span/regions))
	}
	mustCreate(t, hc, TableSpec{Name: "t", SplitKeys: splits})
	return hc, hc.NewWarmClient()
}

func totalWALEdits(hc *HCluster) int64 {
	var n int64
	for _, node := range []string{"master-0", "slave-0", "slave-1", "slave-2", "slave-3", "slave-4"} {
		n += hc.WALEdits(node)
	}
	return n
}

// TestMutateBatchMatchesEagerPath is the batch layer's core contract: a
// batch of puts and deletes leaves the store in exactly the state the same
// sequence of eager Put/DeleteAt calls produces, and logs the same number
// of WAL edits.
func TestMutateBatchMatchesEagerPath(t *testing.T) {
	build := func() (*HCluster, *Client) { return splitCluster(t, 4, 40) }
	type op struct {
		key   string
		del   bool
		cells []Cell
		quals []string
	}
	var ops []op
	for i := 0; i < 40; i++ {
		ops = append(ops, op{key: scanKey(i), cells: []Cell{put("v", fmt.Sprintf("val-%d", i), 0), put("w", "x", 0)}})
	}
	for i := 0; i < 40; i += 5 {
		ops = append(ops, op{key: scanKey(i), del: true})
	}
	for i := 1; i < 40; i += 7 {
		ops = append(ops, op{key: scanKey(i), del: true, quals: []string{"w"}})
	}
	// Re-put over a deleted row within the same batch: order must hold.
	ops = append(ops, op{key: scanKey(5), cells: []Cell{put("v", "resurrected", 0)}})

	hcBatch, cBatch := build()
	var muts []Mutation
	for _, o := range ops {
		if o.del {
			muts = append(muts, DeleteMutation("t", o.key, 0, o.quals...))
		} else {
			muts = append(muts, PutMutation("t", o.key, o.cells, 0))
		}
	}
	if err := cBatch.MutateBatch(sim.NewCtx(), muts); err != nil {
		t.Fatal(err)
	}

	hcEager, cEager := build()
	ctx := sim.NewCtx()
	for _, o := range ops {
		var err error
		if o.del {
			err = cEager.DeleteAt(ctx, "t", o.key, 0, o.quals...)
		} else {
			err = cEager.Put(ctx, "t", o.key, o.cells)
		}
		if err != nil {
			t.Fatal(err)
		}
	}

	drain := func(c *Client) []RowResult {
		sc, err := c.Scan(sim.NewCtx(), "t", ScanSpec{Sequential: true})
		if err != nil {
			t.Fatal(err)
		}
		return sc.All(sim.NewCtx())
	}
	requireSameRows(t, drain(cEager), drain(cBatch))
	if eb, bb := totalWALEdits(hcEager), totalWALEdits(hcBatch); eb != bb {
		t.Fatalf("WAL edits diverge: eager=%d batch=%d", eb, bb)
	}
}

// One batch RPC per touched region, and fork/join accounting: the batch is
// charged like the slowest region, not the sum of all regions.
func TestMutateBatchRegionGroupingAndCost(t *testing.T) {
	_, c := splitCluster(t, 4, 40)
	var muts []Mutation
	for i := 0; i < 40; i++ {
		muts = append(muts, PutMutation("t", scanKey(i), []Cell{put("v", fmt.Sprint(i), 0)}, 0))
	}
	batchCtx := sim.NewCtx()
	if err := c.MutateBatch(batchCtx, muts); err != nil {
		t.Fatal(err)
	}
	if got := batchCtx.Snapshot().RPCs; got != 4 {
		t.Fatalf("batch RPCs = %d, want 4 (one per region)", got)
	}

	_, cEager := splitCluster(t, 4, 40)
	eagerCtx := sim.NewCtx()
	for i := 0; i < 40; i++ {
		if err := cEager.Put(eagerCtx, "t", scanKey(i), []Cell{put("v", fmt.Sprint(i), 0)}); err != nil {
			t.Fatal(err)
		}
	}
	if b, e := batchCtx.Elapsed(), eagerCtx.Elapsed(); b*4 >= e {
		t.Fatalf("batched elapsed %v not at least 4x below eager %v", b, e)
	}
}

// A batch holding a single mutation has nothing to amortize: it must charge
// exactly what the eager Put/DeleteAt path charges for the same mutation.
func TestMutateBatchOfOneCostsLikeEagerPath(t *testing.T) {
	_, cBatch := splitCluster(t, 2, 10)
	_, cEager := splitCluster(t, 2, 10)
	cells := []Cell{put("v", "x", 0)}

	bCtx, eCtx := sim.NewCtx(), sim.NewCtx()
	if err := cBatch.MutateBatch(bCtx, []Mutation{PutMutation("t", scanKey(1), cells, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := cEager.Put(eCtx, "t", scanKey(1), cells); err != nil {
		t.Fatal(err)
	}
	if bCtx.Elapsed() != eCtx.Elapsed() {
		t.Fatalf("put-of-one: batched %v != eager %v", bCtx.Elapsed(), eCtx.Elapsed())
	}

	bCtx, eCtx = sim.NewCtx(), sim.NewCtx()
	if err := cBatch.MutateBatch(bCtx, []Mutation{DeleteMutation("t", scanKey(1), 0, "v")}); err != nil {
		t.Fatal(err)
	}
	if err := cEager.DeleteAt(eCtx, "t", scanKey(1), 0, "v"); err != nil {
		t.Fatal(err)
	}
	if bCtx.Elapsed() != eCtx.Elapsed() {
		t.Fatalf("delete-of-one: batched %v != eager %v", bCtx.Elapsed(), eCtx.Elapsed())
	}
}

// Region groups larger than MutateMaxBatch split into several RPCs.
func TestMutateBatchMaxBatchSplit(t *testing.T) {
	costs := sim.DefaultCosts()
	costs.MutateMaxBatch = 5
	hc := NewHCluster(cluster.NewDefault(costs), nil, nil)
	mustCreate(t, hc, TableSpec{Name: "t"})
	c := hc.NewWarmClient()
	var muts []Mutation
	for i := 0; i < 12; i++ {
		muts = append(muts, PutMutation("t", scanKey(i), []Cell{put("v", "x", 0)}, 0))
	}
	ctx := sim.NewCtx()
	if err := c.MutateBatch(ctx, muts); err != nil {
		t.Fatal(err)
	}
	// 12 mutations, one region, max 5 per RPC: ceil(12/5) = 3 RPCs.
	if got := ctx.Snapshot().RPCs; got != 3 {
		t.Fatalf("RPCs = %d, want 3", got)
	}
	if got := totalWALEdits(hc); got != 12 {
		t.Fatalf("WAL edits = %d, want 12", got)
	}
}

func TestMutateBatchUnknownTableAppliesNothing(t *testing.T) {
	_, c := splitCluster(t, 2, 10)
	muts := []Mutation{
		PutMutation("t", scanKey(0), []Cell{put("v", "x", 0)}, 0),
		PutMutation("missing", scanKey(1), []Cell{put("v", "x", 0)}, 0),
	}
	if err := c.MutateBatch(sim.NewCtx(), muts); err == nil {
		t.Fatal("expected unknown-table error")
	}
	got, err := c.Get(sim.NewCtx(), "t", scanKey(0), ReadOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Empty() {
		t.Fatalf("mutation applied despite batch error: %v", got)
	}
}

func TestBufferedMutatorAutoFlush(t *testing.T) {
	costs := sim.DefaultCosts()
	costs.MutateMaxBatch = 4
	hc := NewHCluster(cluster.NewDefault(costs), nil, nil)
	mustCreate(t, hc, TableSpec{Name: "t"})
	c := hc.NewWarmClient()
	m := c.NewBufferedMutator(false)
	ctx := sim.NewCtx()
	for i := 0; i < 5; i++ {
		if err := m.Put(ctx, "t", scanKey(i), []Cell{put("v", "x", 0)}); err != nil {
			t.Fatal(err)
		}
	}
	// The 4th put crossed the threshold and auto-flushed; the 5th waits.
	if got := m.Pending(); got != 1 {
		t.Fatalf("pending after auto-flush = %d, want 1", got)
	}
	if got, _ := c.Get(sim.NewCtx(), "t", scanKey(3), ReadOpts{}); got.Empty() {
		t.Fatal("auto-flushed row not visible")
	}
	if got, _ := c.Get(sim.NewCtx(), "t", scanKey(4), ReadOpts{}); !got.Empty() {
		t.Fatal("buffered row visible before Flush")
	}
	if err := m.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Get(sim.NewCtx(), "t", scanKey(4), ReadOpts{}); got.Empty() {
		t.Fatal("row missing after Flush")
	}
	if m.Pending() != 0 {
		t.Fatalf("pending after Flush = %d", m.Pending())
	}
}

// Sequential mode must behave exactly like the eager client calls.
func TestBufferedMutatorSequentialMode(t *testing.T) {
	_, c := splitCluster(t, 2, 10)
	m := c.NewBufferedMutator(true)
	ctx := sim.NewCtx()
	if err := m.Put(ctx, "t", scanKey(0), []Cell{put("v", "x", 0)}); err != nil {
		t.Fatal(err)
	}
	if m.Pending() != 0 {
		t.Fatal("sequential mode must not buffer")
	}
	if got, _ := c.Get(sim.NewCtx(), "t", scanKey(0), ReadOpts{}); got.Empty() {
		t.Fatal("sequential put not visible immediately")
	}
	if err := m.Delete(ctx, "t", scanKey(0), 0); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Get(sim.NewCtx(), "t", scanKey(0), ReadOpts{}); !got.Empty() {
		t.Fatal("sequential delete not applied")
	}
}
