package hbase

import (
	"bytes"
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"
)

// hrow is one row inside an immutable store file.
type hrow struct {
	key  string
	data *rowData
}

// hfile is an immutable, sorted store file produced by a memstore flush,
// a bulk load or a compaction.
type hfile struct {
	rows []hrow
}

func (f *hfile) seek(key string) int {
	return sort.Search(len(f.rows), func(i int) bool { return f.rows[i].key >= key })
}

func (f *hfile) find(key string) *rowData {
	i := f.seek(key)
	if i < len(f.rows) && f.rows[i].key == key {
		return f.rows[i].data
	}
	return nil
}

// memStore is the in-memory write buffer of a region.
type memStore struct {
	rows map[string]*rowData
	keys []string

	// sortMu guards the lazy key sort so that concurrent scans — which
	// hold only the region read lock — do not race re-sorting keys.
	sortMu sync.Mutex
	sorted bool
}

func newMemStore() *memStore {
	return &memStore{rows: make(map[string]*rowData)}
}

func (m *memStore) upsert(key string) *rowData {
	rd := m.rows[key]
	if rd == nil {
		rd = &rowData{}
		m.rows[key] = rd
		m.keys = append(m.keys, key)
		m.sorted = false
	}
	return rd
}

func (m *memStore) sortedKeys() []string {
	m.sortMu.Lock()
	if !m.sorted {
		sort.Strings(m.keys)
		m.sorted = true
	}
	m.sortMu.Unlock()
	return m.keys
}

func (m *memStore) len() int { return len(m.rows) }

// Region is one contiguous key range [start, end) of a table. An empty
// start/end means unbounded on that side.
type Region struct {
	mu    sync.RWMutex
	spec  *TableSpec
	start string
	end   string
	mem   *memStore
	files []*hfile

	// srvMu guards server. The balancer reassigns regions concurrently with
	// requests reading the assignment, so the field has its own lock instead
	// of riding r.mu (scans hold r.mu for whole chunks).
	srvMu  sync.Mutex
	server string // hosting region server node

	// loadReads/loadWrites are the decayed op counters behind load-triggered
	// splits and balancer placement. Recording is a lone atomic add — it
	// charges no simulated time, so enabling load accounting cannot perturb
	// any latency figure.
	loadReads  atomic.Int64
	loadWrites atomic.Int64

	// daughters is set (under mu) when the region splits: the region becomes
	// a forwarding shell. In-flight readers drain against its flushed, shared
	// store files, but writes arriving through a stale *Region — a mutation
	// batch grouped before a concurrent split — forward to the daughter that
	// owns the key, so no write ever lands in a dead memstore.
	daughters []*Region
}

func newRegion(spec *TableSpec, start, end string) *Region {
	return &Region{spec: spec, start: start, end: end, mem: newMemStore()}
}

// Server reports the region server currently hosting the region.
func (r *Region) Server() string {
	r.srvMu.Lock()
	defer r.srvMu.Unlock()
	return r.server
}

func (r *Region) setServer(s string) {
	r.srvMu.Lock()
	r.server = s
	r.srvMu.Unlock()
}

// recordRead/recordWrite tally server-side ops against the region's load
// counters (reads are weighted by rows examined; writes by mutations).
func (r *Region) recordRead(n int)  { r.loadReads.Add(int64(n)) }
func (r *Region) recordWrite(n int) { r.loadWrites.Add(int64(n)) }

// loadScore is the region's current hotness: examined-row reads plus
// mutations, both since the last decay.
func (r *Region) loadScore() int64 {
	return r.loadReads.Load() + r.loadWrites.Load()
}

// decayLoad halves the load counters — the balancer's exponential decay, so
// a region that cooled off stops looking hot after a few ticks.
func (r *Region) decayLoad() {
	r.loadReads.Store(r.loadReads.Load() / 2)
	r.loadWrites.Store(r.loadWrites.Load() / 2)
}

// contains reports whether key belongs to this region.
func (r *Region) contains(key string) bool {
	if key < r.start {
		return false
	}
	return r.end == "" || key < r.end
}

// getLocked assembles the merged rowData for a key. Caller holds r.mu.
func (r *Region) lookupLocked(key string) *rowData {
	var parts []*rowData
	if rd := r.mem.rows[key]; rd != nil {
		parts = append(parts, rd)
	}
	for _, f := range r.files {
		if rd := f.find(key); rd != nil {
			parts = append(parts, rd)
		}
	}
	switch len(parts) {
	case 0:
		return nil
	case 1:
		return parts[0]
	default:
		return merged(parts...)
	}
}

// get reads one row.
func (r *Region) get(key string, opts ReadOpts) RowResult {
	r.recordRead(1)
	r.mu.RLock()
	defer r.mu.RUnlock()
	rd := r.lookupLocked(key)
	if rd == nil {
		return RowResult{Key: key}
	}
	return RowResult{Key: key, Cells: rd.read(opts)}
}

// daughterFor returns the daughter owning key when the region has split, or
// nil while the region is live. Caller holds r.mu (either mode).
func (r *Region) daughterFor(key string) *Region {
	for _, d := range r.daughters {
		if d.contains(key) {
			return d
		}
	}
	return nil
}

// put applies cells to a row.
func (r *Region) put(key string, cells []Cell) {
	r.mu.Lock()
	if d := r.daughterFor(key); d != nil {
		r.mu.Unlock()
		d.put(key, cells)
		return
	}
	defer r.mu.Unlock()
	r.recordWrite(1)
	rd := r.mem.upsert(key)
	for _, c := range cells {
		rd.apply(c, r.spec.MaxVersions)
	}
}

// deleteRow writes a row tombstone, or column tombstones when qualifiers are
// given.
func (r *Region) deleteRow(key string, ts int64, qualifiers []string) {
	r.mu.Lock()
	if d := r.daughterFor(key); d != nil {
		r.mu.Unlock()
		d.deleteRow(key, ts, qualifiers)
		return
	}
	defer r.mu.Unlock()
	r.recordWrite(1)
	rd := r.mem.upsert(key)
	if len(qualifiers) == 0 {
		rd.apply(Cell{Qualifier: "", TS: ts, Type: TypeDeleteRow}, r.spec.MaxVersions)
		return
	}
	for _, q := range qualifiers {
		rd.apply(Cell{Qualifier: q, TS: ts, Type: TypeDeleteCol}, r.spec.MaxVersions)
	}
}

// checkAndPut atomically compares the current visible value of (key,
// qualifier) with expected (nil = must be absent) and applies the cell on
// match. Returns whether the put was applied.
func (r *Region) checkAndPut(key, qualifier string, expected []byte, c Cell) bool {
	r.mu.Lock()
	if d := r.daughterFor(key); d != nil {
		r.mu.Unlock()
		return d.checkAndPut(key, qualifier, expected, c)
	}
	defer r.mu.Unlock()
	r.recordWrite(1)
	var current []byte
	if rd := r.lookupLocked(key); rd != nil {
		current = rd.read(ReadOpts{}).Get(qualifier)
	}
	if !bytes.Equal(current, expected) {
		return false
	}
	rd := r.mem.upsert(key)
	rd.apply(c, r.spec.MaxVersions)
	return true
}

// increment atomically adds delta to a counter column and returns the new
// value.
func (r *Region) increment(key, qualifier string, delta int64, ts int64) int64 {
	r.mu.Lock()
	if d := r.daughterFor(key); d != nil {
		r.mu.Unlock()
		return d.increment(key, qualifier, delta, ts)
	}
	defer r.mu.Unlock()
	r.recordWrite(1)
	var cur int64
	if rd := r.lookupLocked(key); rd != nil {
		if v := rd.read(ReadOpts{}).Get(qualifier); len(v) == 8 {
			cur = int64(binary.BigEndian.Uint64(v))
		}
	}
	cur += delta
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, uint64(cur))
	rd := r.mem.upsert(key)
	rd.apply(Cell{Qualifier: qualifier, Value: buf, TS: ts}, r.spec.MaxVersions)
	return cur
}

// scanChunk fills buf with up to limit visible rows with key >= start (and
// < r.end), returning the number of rows examined server-side and the key to
// resume from ("" if the region is exhausted). filter, when non-nil, drops
// rows server-side (they still count as examined). buf must arrive empty
// (reset); the produced rows live in buf.rows and their Cells are windows
// into buf.arena, so they are valid only until the buffer's next reset —
// the chunkBuf ownership protocol governs when that may happen.
func (r *Region) scanChunk(buf *chunkBuf, start string, limit int, opts ReadOpts, filter func(RowResult) bool) (examined int, next string) {
	defer func() { r.recordRead(examined) }()
	r.mu.RLock()
	defer r.mu.RUnlock()

	m := newRowMerger(r.mem, r.files, start)
	defer m.release()
	need := m.remaining()
	if limit > 0 && limit < need {
		need = limit
	}
	if cap(buf.rows) < need {
		buf.rows = make([]RowResult, 0, need)
	}
	for limit <= 0 || len(buf.rows) < limit {
		key, parts, ok := m.next()
		if !ok || (r.end != "" && key >= r.end) {
			return examined, ""
		}
		var rd *rowData
		if len(parts) == 1 {
			rd = parts[0]
		} else {
			rd = m.foldParts(parts)
		}
		examined++
		var cells Cells
		buf.arena, cells = rd.readInto(buf.arena, opts)
		if len(cells) == 0 {
			continue // deleted or invisible row
		}
		res := RowResult{Key: key, Cells: cells}
		if filter != nil && !filter(res) {
			// Give the dropped row's pairs back to the arena; nothing
			// references them.
			buf.arena = buf.arena[:len(buf.arena)-len(cells)]
			continue
		}
		buf.rows = append(buf.rows, res)
	}
	// Limit reached: resume just after the last returned key.
	return examined, buf.rows[len(buf.rows)-1].Key + "\x00"
}

// flush moves the memstore into a new immutable store file.
func (r *Region) flush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
}

func (r *Region) flushLocked() {
	if r.mem.len() == 0 {
		return
	}
	keys := append([]string(nil), r.mem.sortedKeys()...)
	rows := make([]hrow, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, hrow{key: k, data: r.mem.rows[k]})
	}
	// Newest file first so same-coordinate duplicates resolve toward
	// recent data.
	r.files = append([]*hfile{{rows: rows}}, r.files...)
	r.mem = newMemStore()
}

// majorCompact merges memstore and all store files into one file, dropping
// tombstones and surplus versions (§IX: experiments major-compact after
// database population).
func (r *Region) majorCompact() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
	if len(r.files) == 0 {
		return
	}
	// Heap-based k-way merge of the sorted store files.
	m := newRowMerger(nil, r.files, "")
	defer m.release()
	out := make([]hrow, 0, m.remaining())
	for {
		key, parts, ok := m.next()
		if !ok {
			break
		}
		var rd *rowData
		if len(parts) == 1 {
			rd = parts[0].clone()
		} else {
			rd = &rowData{cells: mergeCellsInto(nil, parts)}
		}
		rd.compact(r.spec.MaxVersions)
		if !rd.empty() {
			out = append(out, hrow{key: key, data: rd})
		}
	}
	r.files = []*hfile{{rows: out}}
}

// rowCount estimates the number of distinct row keys (memstore rows may
// overlap file rows; the estimate is an upper bound, which is what split
// decisions need).
func (r *Region) rowCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := r.mem.len()
	for _, f := range r.files {
		n += len(f.rows)
	}
	return n
}

// sizeBytes reports the KeyValue-format storage footprint of the region.
func (r *Region) sizeBytes() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total int64
	for k, rd := range r.mem.rows {
		total += rd.sizeBytes(k)
	}
	for _, f := range r.files {
		for _, hr := range f.rows {
			total += hr.data.sizeBytes(hr.key)
		}
	}
	return total
}

// midKey returns a key near the middle of the region's data, or "" when the
// region is too small to split.
func (r *Region) midKey() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	// Use the largest store file for the estimate, as HBase does.
	var biggest *hfile
	for _, f := range r.files {
		if biggest == nil || len(f.rows) > len(biggest.rows) {
			biggest = f
		}
	}
	if biggest == nil || len(biggest.rows) < 2 {
		// No (usable) store file yet. Load-triggered splits arrive before the
		// first flush on write-hot regions, so fall back to the memstore's
		// sorted keys rather than refusing to split.
		if r.mem.len() < 2 {
			return ""
		}
		keys := r.mem.sortedKeys()
		return keys[len(keys)/2]
	}
	return biggest.rows[len(biggest.rows)/2].key
}

// split divides the region at key, returning the two halves. The receiver
// becomes a forwarding shell: readers still holding it drain against its
// flushed store files (shared with the daughters), and late writes forward
// to the daughter owning the key.
func (r *Region) split(key string) (*Region, *Region) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
	left := newRegion(r.spec, r.start, key)
	right := newRegion(r.spec, key, r.end)
	for _, f := range r.files {
		cut := f.seek(key)
		if cut > 0 {
			left.files = append(left.files, &hfile{rows: f.rows[:cut]})
		}
		if cut < len(f.rows) {
			right.files = append(right.files, &hfile{rows: f.rows[cut:]})
		}
	}
	// Each daughter inherits half the parent's load history, so a split hot
	// region does not instantly re-trigger a load split and the balancer's
	// next tick still sees the heat where it actually lives.
	left.loadReads.Store(r.loadReads.Load() / 2)
	left.loadWrites.Store(r.loadWrites.Load() / 2)
	right.loadReads.Store(r.loadReads.Load() / 2)
	right.loadWrites.Store(r.loadWrites.Load() / 2)
	r.daughters = []*Region{left, right}
	return left, right
}
