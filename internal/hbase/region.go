package hbase

import (
	"bytes"
	"encoding/binary"
	"sort"
	"sync"
)

// hrow is one row inside an immutable store file.
type hrow struct {
	key  string
	data *rowData
}

// hfile is an immutable, sorted store file produced by a memstore flush,
// a bulk load or a compaction.
type hfile struct {
	rows []hrow
}

func (f *hfile) seek(key string) int {
	return sort.Search(len(f.rows), func(i int) bool { return f.rows[i].key >= key })
}

func (f *hfile) find(key string) *rowData {
	i := f.seek(key)
	if i < len(f.rows) && f.rows[i].key == key {
		return f.rows[i].data
	}
	return nil
}

// memStore is the in-memory write buffer of a region.
type memStore struct {
	rows map[string]*rowData
	keys []string

	// sortMu guards the lazy key sort so that concurrent scans — which
	// hold only the region read lock — do not race re-sorting keys.
	sortMu sync.Mutex
	sorted bool
}

func newMemStore() *memStore {
	return &memStore{rows: make(map[string]*rowData)}
}

func (m *memStore) upsert(key string) *rowData {
	rd := m.rows[key]
	if rd == nil {
		rd = &rowData{}
		m.rows[key] = rd
		m.keys = append(m.keys, key)
		m.sorted = false
	}
	return rd
}

func (m *memStore) sortedKeys() []string {
	m.sortMu.Lock()
	if !m.sorted {
		sort.Strings(m.keys)
		m.sorted = true
	}
	m.sortMu.Unlock()
	return m.keys
}

func (m *memStore) len() int { return len(m.rows) }

// Region is one contiguous key range [start, end) of a table. An empty
// start/end means unbounded on that side.
type Region struct {
	mu    sync.RWMutex
	spec  *TableSpec
	start string
	end   string
	mem   *memStore
	files []*hfile

	server string // hosting region server node
}

func newRegion(spec *TableSpec, start, end string) *Region {
	return &Region{spec: spec, start: start, end: end, mem: newMemStore()}
}

// contains reports whether key belongs to this region.
func (r *Region) contains(key string) bool {
	if key < r.start {
		return false
	}
	return r.end == "" || key < r.end
}

// getLocked assembles the merged rowData for a key. Caller holds r.mu.
func (r *Region) lookupLocked(key string) *rowData {
	var parts []*rowData
	if rd := r.mem.rows[key]; rd != nil {
		parts = append(parts, rd)
	}
	for _, f := range r.files {
		if rd := f.find(key); rd != nil {
			parts = append(parts, rd)
		}
	}
	switch len(parts) {
	case 0:
		return nil
	case 1:
		return parts[0]
	default:
		return merged(parts...)
	}
}

// get reads one row.
func (r *Region) get(key string, opts ReadOpts) RowResult {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rd := r.lookupLocked(key)
	if rd == nil {
		return RowResult{Key: key}
	}
	return RowResult{Key: key, Cells: rd.read(opts)}
}

// put applies cells to a row.
func (r *Region) put(key string, cells []Cell) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rd := r.mem.upsert(key)
	for _, c := range cells {
		rd.apply(c, r.spec.MaxVersions)
	}
}

// deleteRow writes a row tombstone, or column tombstones when qualifiers are
// given.
func (r *Region) deleteRow(key string, ts int64, qualifiers []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rd := r.mem.upsert(key)
	if len(qualifiers) == 0 {
		rd.apply(Cell{Qualifier: "", TS: ts, Type: TypeDeleteRow}, r.spec.MaxVersions)
		return
	}
	for _, q := range qualifiers {
		rd.apply(Cell{Qualifier: q, TS: ts, Type: TypeDeleteCol}, r.spec.MaxVersions)
	}
}

// checkAndPut atomically compares the current visible value of (key,
// qualifier) with expected (nil = must be absent) and applies the cell on
// match. Returns whether the put was applied.
func (r *Region) checkAndPut(key, qualifier string, expected []byte, c Cell) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	var current []byte
	if rd := r.lookupLocked(key); rd != nil {
		current = rd.read(ReadOpts{}).Get(qualifier)
	}
	if !bytes.Equal(current, expected) {
		return false
	}
	rd := r.mem.upsert(key)
	rd.apply(c, r.spec.MaxVersions)
	return true
}

// increment atomically adds delta to a counter column and returns the new
// value.
func (r *Region) increment(key, qualifier string, delta int64, ts int64) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var cur int64
	if rd := r.lookupLocked(key); rd != nil {
		if v := rd.read(ReadOpts{}).Get(qualifier); len(v) == 8 {
			cur = int64(binary.BigEndian.Uint64(v))
		}
	}
	cur += delta
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, uint64(cur))
	rd := r.mem.upsert(key)
	rd.apply(Cell{Qualifier: qualifier, Value: buf, TS: ts}, r.spec.MaxVersions)
	return cur
}

// scanChunk returns up to limit visible rows with key >= start (and < r.end),
// the number of rows examined server-side, and the key to resume from ("" if
// the region is exhausted). filter, when non-nil, drops rows server-side
// (they still count as examined).
func (r *Region) scanChunk(start string, limit int, opts ReadOpts, filter func(RowResult) bool) (rows []RowResult, examined int, next string) {
	r.mu.RLock()
	defer r.mu.RUnlock()

	m := newRowMerger(r.mem, r.files, start)
	if limit > 0 {
		rows = make([]RowResult, 0, min(limit, m.remaining()))
	} else {
		rows = make([]RowResult, 0, m.remaining())
	}
	var scratch rowData // reused for transient multi-part merges
	for limit <= 0 || len(rows) < limit {
		key, parts, ok := m.next()
		if !ok || (r.end != "" && key >= r.end) {
			return rows, examined, ""
		}
		var rd *rowData
		if len(parts) == 1 {
			rd = parts[0]
		} else {
			scratch.cells = mergeCellsInto(scratch.cells, parts)
			rd = &scratch
		}
		examined++
		cells := rd.read(opts)
		if len(cells) == 0 {
			continue // deleted or invisible row
		}
		res := RowResult{Key: key, Cells: cells}
		if filter != nil && !filter(res) {
			continue
		}
		rows = append(rows, res)
	}
	// Limit reached: resume just after the last returned key.
	return rows, examined, rows[len(rows)-1].Key + "\x00"
}

// flush moves the memstore into a new immutable store file.
func (r *Region) flush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
}

func (r *Region) flushLocked() {
	if r.mem.len() == 0 {
		return
	}
	keys := append([]string(nil), r.mem.sortedKeys()...)
	rows := make([]hrow, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, hrow{key: k, data: r.mem.rows[k]})
	}
	// Newest file first so same-coordinate duplicates resolve toward
	// recent data.
	r.files = append([]*hfile{{rows: rows}}, r.files...)
	r.mem = newMemStore()
}

// majorCompact merges memstore and all store files into one file, dropping
// tombstones and surplus versions (§IX: experiments major-compact after
// database population).
func (r *Region) majorCompact() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
	if len(r.files) == 0 {
		return
	}
	// Heap-based k-way merge of the sorted store files.
	m := newRowMerger(nil, r.files, "")
	out := make([]hrow, 0, m.remaining())
	for {
		key, parts, ok := m.next()
		if !ok {
			break
		}
		var rd *rowData
		if len(parts) == 1 {
			rd = parts[0].clone()
		} else {
			rd = &rowData{cells: mergeCellsInto(nil, parts)}
		}
		rd.compact(r.spec.MaxVersions)
		if !rd.empty() {
			out = append(out, hrow{key: key, data: rd})
		}
	}
	r.files = []*hfile{{rows: out}}
}

// rowCount estimates the number of distinct row keys (memstore rows may
// overlap file rows; the estimate is an upper bound, which is what split
// decisions need).
func (r *Region) rowCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := r.mem.len()
	for _, f := range r.files {
		n += len(f.rows)
	}
	return n
}

// sizeBytes reports the KeyValue-format storage footprint of the region.
func (r *Region) sizeBytes() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total int64
	for k, rd := range r.mem.rows {
		total += rd.sizeBytes(k)
	}
	for _, f := range r.files {
		for _, hr := range f.rows {
			total += hr.data.sizeBytes(hr.key)
		}
	}
	return total
}

// midKey returns a key near the middle of the region's data, or "" when the
// region is too small to split.
func (r *Region) midKey() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	// Use the largest store file for the estimate, as HBase does.
	var biggest *hfile
	for _, f := range r.files {
		if biggest == nil || len(f.rows) > len(biggest.rows) {
			biggest = f
		}
	}
	if biggest == nil || len(biggest.rows) < 2 {
		return ""
	}
	return biggest.rows[len(biggest.rows)/2].key
}

// split divides the region at key, returning the two halves. The receiver
// must no longer be used afterwards.
func (r *Region) split(key string) (*Region, *Region) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
	left := newRegion(r.spec, r.start, key)
	right := newRegion(r.spec, key, r.end)
	for _, f := range r.files {
		cut := f.seek(key)
		if cut > 0 {
			left.files = append(left.files, &hfile{rows: f.rows[:cut]})
		}
		if cut < len(f.rows) {
			right.files = append(right.files, &hfile{rows: f.rows[cut:]})
		}
	}
	return left, right
}
