package hbase

import (
	"sort"
	"sync"
)

// mergeSource is one sorted (key, *rowData) stream feeding a rowMerger:
// either a region's memstore or one immutable store file. rank orders
// sources on key ties — memstore first, then store files newest-first — so
// a merged row's parts keep the same precedence the write path established.
type mergeSource struct {
	rank int
	key  string // current key; valid while the source is on the heap
	pos  int
	rows []hrow              // store-file source (nil for a memstore source)
	keys []string            // memstore key list
	mem  map[string]*rowData // memstore rows
}

func (s *mergeSource) data() *rowData {
	if s.rows != nil {
		return s.rows[s.pos].data
	}
	return s.mem[s.key]
}

// advance moves to the next row, reporting false when the source is drained.
func (s *mergeSource) advance() bool {
	s.pos++
	if s.rows != nil {
		if s.pos >= len(s.rows) {
			return false
		}
		s.key = s.rows[s.pos].key
		return true
	}
	if s.pos >= len(s.keys) {
		return false
	}
	s.key = s.keys[s.pos]
	return true
}

func (s *mergeSource) left() int {
	if s.rows != nil {
		return len(s.rows) - s.pos
	}
	return len(s.keys) - s.pos
}

// rowMerger streams (key, parts) pairs in ascending key order from any
// number of sorted sources via a binary min-heap keyed on each source's
// current row key. It replaces the O(sources) linear min-search per row the
// scan and compaction paths used to do with O(log sources) sift operations.
//
// Mergers are pooled: every scan chunk and every compaction fold used to
// allocate a fresh heap, source set and parts scratch, which made the merger
// the read path's second allocation hot spot after row materialization.
// newRowMerger draws from the package pool and release returns the merger;
// the heap, the source backing array, the parts scratch and the multi-part
// cell scratch all keep their capacity across folds.
type rowMerger struct {
	heap    []*mergeSource
	parts   []*rowData    // scratch, reused across next calls
	srcs    []mergeSource // backing storage for heap entries, reused across folds
	scratch rowData       // reusable output row for multi-part cell merges
}

var mergerPool = sync.Pool{New: func() any { return new(rowMerger) }}

// newRowMerger positions every non-empty source at the first key >= start.
// mem may be nil (compaction merges store files only). The merger comes from
// the package pool; callers must release() it when the fold is done.
func newRowMerger(mem *memStore, files []*hfile, start string) *rowMerger {
	m := mergerPool.Get().(*rowMerger)
	// Reserve the source backing array up front: the heap holds pointers
	// into it, so it must never reallocate while sources are being added.
	if need := len(files) + 1; cap(m.srcs) < need {
		m.srcs = make([]mergeSource, 0, need)
	}
	if cap(m.heap) < len(files)+1 {
		m.heap = make([]*mergeSource, 0, len(files)+1)
	}
	if mem != nil && mem.len() > 0 {
		keys := mem.sortedKeys()
		if i := sort.SearchStrings(keys, start); i < len(keys) {
			m.srcs = append(m.srcs, mergeSource{key: keys[i], pos: i, keys: keys, mem: mem.rows})
			m.heap = append(m.heap, &m.srcs[len(m.srcs)-1])
		}
	}
	for fi, f := range files {
		if i := f.seek(start); i < len(f.rows) {
			m.srcs = append(m.srcs, mergeSource{rank: fi + 1, key: f.rows[i].key, pos: i, rows: f.rows})
			m.heap = append(m.heap, &m.srcs[len(m.srcs)-1])
		}
	}
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
	return m
}

// release returns the merger to the package pool for the next chunk or
// compaction fold. Every reference into region data (memstore maps, store
// file rows, part rowDatas) is dropped first so an idle pooled merger never
// pins a store. The scratch row's cells are NOT cleared — rows handed out
// via foldParts are dead by release time (scanChunk has copied the visible
// pairs out; compaction clones multi-part rows), and keeping the capacity is
// the point of pooling.
func (m *rowMerger) release() {
	clear(m.srcs[:cap(m.srcs)])
	m.srcs = m.srcs[:0]
	clear(m.heap[:cap(m.heap)])
	m.heap = m.heap[:0]
	clear(m.parts[:cap(m.parts)])
	m.parts = m.parts[:0]
	mergerPool.Put(m)
}

// foldParts merges a multi-part row into the merger's reusable scratch row.
// The returned row is valid only until the next foldParts or release call.
func (m *rowMerger) foldParts(parts []*rowData) *rowData {
	m.scratch.cells = mergeCellsInto(m.scratch.cells, parts)
	return &m.scratch
}

// remaining upper-bounds the number of distinct keys left (sources may share
// keys), which is what result-buffer sizing needs.
func (m *rowMerger) remaining() int {
	n := 0
	for _, s := range m.heap {
		n += s.left()
	}
	return n
}

// next pops the smallest key and every source part carrying it, in rank
// order. The returned parts slice is reused by the following next call.
func (m *rowMerger) next() (key string, parts []*rowData, ok bool) {
	if len(m.heap) == 0 {
		return "", nil, false
	}
	key = m.heap[0].key
	m.parts = m.parts[:0]
	for len(m.heap) > 0 && m.heap[0].key == key {
		src := m.heap[0]
		m.parts = append(m.parts, src.data())
		if src.advance() {
			m.siftDown(0)
		} else {
			last := len(m.heap) - 1
			m.heap[0] = m.heap[last]
			m.heap = m.heap[:last]
			m.siftDown(0)
		}
	}
	return key, m.parts, true
}

func (m *rowMerger) less(i, j int) bool {
	a, b := m.heap[i], m.heap[j]
	if a.key != b.key {
		return a.key < b.key
	}
	return a.rank < b.rank
}

func (m *rowMerger) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(m.heap) && m.less(l, small) {
			small = l
		}
		if r < len(m.heap) && m.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		m.heap[i], m.heap[small] = m.heap[small], m.heap[i]
		i = small
	}
}

// mergeCellsInto merges the sorted cell lists of parts into dst, reusing
// dst's capacity. The merge is stable across parts — on coordinate ties the
// earlier (higher-precedence) part wins — unlike the unstable sort the old
// merged() relied on.
func mergeCellsInto(dst []Cell, parts []*rowData) []Cell {
	total := 0
	for _, p := range parts {
		total += len(p.cells)
	}
	if cap(dst) < total {
		dst = make([]Cell, 0, total)
	} else {
		dst = dst[:0]
	}
	switch len(parts) {
	case 0:
		return dst
	case 1:
		return append(dst, parts[0].cells...)
	case 2:
		a, b := parts[0].cells, parts[1].cells
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			if cellLess(b[j], a[i]) {
				dst = append(dst, b[j])
				j++
			} else {
				dst = append(dst, a[i])
				i++
			}
		}
		dst = append(dst, a[i:]...)
		return append(dst, b[j:]...)
	default:
		// Store-file fan-in per row is small; a linear pick beats heap
		// overhead at this width.
		idx := make([]int, len(parts))
		for {
			min := -1
			for pi, p := range parts {
				if idx[pi] >= len(p.cells) {
					continue
				}
				if min < 0 || cellLess(p.cells[idx[pi]], parts[min].cells[idx[min]]) {
					min = pi
				}
			}
			if min < 0 {
				return dst
			}
			dst = append(dst, parts[min].cells[idx[min]])
			idx[min]++
		}
	}
}
