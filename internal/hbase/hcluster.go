package hbase

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"synergy/internal/cluster"
	"synergy/internal/sdfs"
	"synergy/internal/sim"
	"synergy/internal/zk"
)

// Errors reported by the store.
var (
	ErrTableNotFound = errors.New("hbase: table not found")
	ErrTableExists   = errors.New("hbase: table exists")
	ErrUnsorted      = errors.New("hbase: bulk load rows not sorted")
)

// table is one table's region map, kept sorted by region start key.
type table struct {
	mu      sync.RWMutex
	spec    TableSpec
	regions []*Region

	// gen is the table's region-layout generation, bumped on every split and
	// every balancer move. Clients cache region locations per generation: a
	// stale cache costs one MetaLookup on the next touch, exactly like real
	// HBase clients refreshing hbase:meta after an NSRE.
	gen atomic.Int64
}

// regionFor locates the region containing key. Caller must not hold t.mu.
func (t *table) regionFor(key string) *Region {
	t.mu.RLock()
	defer t.mu.RUnlock()
	i := sort.Search(len(t.regions), func(i int) bool {
		r := t.regions[i]
		return r.end == "" || key < r.end
	})
	if i >= len(t.regions) {
		i = len(t.regions) - 1
	}
	return t.regions[i]
}

// regionsInRange returns regions overlapping [start, stop). stop == "" means
// unbounded.
func (t *table) regionsInRange(start, stop string) []*Region {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []*Region
	for _, r := range t.regions {
		if stop != "" && r.start != "" && r.start >= stop {
			break
		}
		if r.end != "" && r.end <= start {
			continue
		}
		out = append(out, r)
	}
	return out
}

// HCluster is the HBase deployment: an HMaster (region assignment), region
// servers on the cluster's slave nodes, WALs in the distributed filesystem
// and coordination state in ZooKeeper.
type HCluster struct {
	cl    *cluster.Cluster
	fs    *sdfs.FS
	costs *sim.Costs
	ens   *zk.Ensemble

	mu      sync.RWMutex
	tables  map[string]*table
	servers []string
	nextSrv int

	ts       atomic.Int64 // logical timestamp oracle
	zkSess   *zk.Session
	walMu    sync.Mutex
	walSeqs  map[string]int64
	walSyncs atomic.Int64
}

// NewHCluster deploys HBase over the given physical cluster. fs and ens may
// be nil, in which case private instances are created.
func NewHCluster(cl *cluster.Cluster, fs *sdfs.FS, ens *zk.Ensemble) *HCluster {
	if fs == nil {
		fs = sdfs.NewFS(cl, 3)
	}
	if ens == nil {
		ens = zk.NewEnsemble()
	}
	hc := &HCluster{
		cl:      cl,
		fs:      fs,
		costs:   cl.Costs(),
		ens:     ens,
		tables:  make(map[string]*table),
		walSeqs: make(map[string]int64),
		zkSess:  ens.NewSession(),
	}
	for _, n := range cl.Nodes(cluster.RoleSlave) {
		hc.servers = append(hc.servers, n.Name)
	}
	if len(hc.servers) == 0 {
		hc.servers = []string{"master-0"}
	}
	// Register the deployment in ZooKeeper as real HBase does.
	hc.zkSess.Create("/hbase", nil, zk.CreateOpts{})
	hc.zkSess.Create("/hbase/master", []byte("master-0"), zk.CreateOpts{Ephemeral: true})
	hc.zkSess.Create("/hbase/rs", nil, zk.CreateOpts{})
	for _, s := range hc.servers {
		hc.zkSess.Create("/hbase/rs/"+s, nil, zk.CreateOpts{Ephemeral: true})
	}
	return hc
}

// Costs exposes the shared latency calibration.
func (hc *HCluster) Costs() *sim.Costs { return hc.costs }

// NextTS returns a monotonically increasing logical timestamp, standing in
// for the millisecond clock HBase stamps cells with.
func (hc *HCluster) NextTS() int64 { return hc.ts.Add(1) }

// CurrentTS reports the highest timestamp issued so far without advancing
// the clock. Every cell in the store carries a stamp ≤ CurrentTS, which
// makes it the snapshot horizon watermark readers wait against.
func (hc *HCluster) CurrentTS() int64 { return hc.ts.Load() }

func (hc *HCluster) assignServer() string {
	s := hc.servers[hc.nextSrv%len(hc.servers)]
	hc.nextSrv++
	return s
}

// Servers lists the region server nodes, in assignment order.
func (hc *HCluster) Servers() []string {
	hc.mu.RLock()
	defer hc.mu.RUnlock()
	return append([]string(nil), hc.servers...)
}

// serverWork charges w of server-side work performed on server to ctx,
// routing through the cluster's per-server queueing model: with queueing
// enabled the op additionally waits out the server's backlog; disabled (the
// default) this is exactly ctx.Charge(w).
func (hc *HCluster) serverWork(ctx *sim.Ctx, server string, w sim.Micros) {
	hc.cl.ServerWork(ctx, server, w)
}

// CreateTable creates a table, optionally pre-split.
func (hc *HCluster) CreateTable(spec TableSpec) error {
	spec.normalize()
	hc.mu.Lock()
	defer hc.mu.Unlock()
	if _, dup := hc.tables[spec.Name]; dup {
		return fmt.Errorf("%w: %s", ErrTableExists, spec.Name)
	}
	t := &table{spec: spec}
	bounds := append([]string{""}, spec.SplitKeys...)
	sort.Strings(bounds)
	for i, start := range bounds {
		end := ""
		if i+1 < len(bounds) {
			end = bounds[i+1]
		}
		r := newRegion(&t.spec, start, end)
		r.setServer(hc.assignServer())
		t.regions = append(t.regions, r)
	}
	hc.tables[spec.Name] = t
	return nil
}

// DropTable removes a table and its data.
func (hc *HCluster) DropTable(name string) error {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	if _, ok := hc.tables[name]; !ok {
		return fmt.Errorf("%w: %s", ErrTableNotFound, name)
	}
	delete(hc.tables, name)
	return nil
}

// HasTable reports table existence.
func (hc *HCluster) HasTable(name string) bool {
	hc.mu.RLock()
	defer hc.mu.RUnlock()
	_, ok := hc.tables[name]
	return ok
}

// Tables lists table names, sorted.
func (hc *HCluster) Tables() []string {
	hc.mu.RLock()
	defer hc.mu.RUnlock()
	out := make([]string, 0, len(hc.tables))
	for n := range hc.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (hc *HCluster) lookup(name string) (*table, error) {
	hc.mu.RLock()
	defer hc.mu.RUnlock()
	t := hc.tables[name]
	if t == nil {
		return nil, fmt.Errorf("%w: %s", ErrTableNotFound, name)
	}
	return t, nil
}

// walAppend charges the write-ahead-log append for one mutation on a region
// server: an HDFS pipeline write of the edit.
func (hc *HCluster) walAppend(ctx *sim.Ctx, server string, editBytes int) {
	hc.walAppendBatch(ctx, server, editBytes, 1)
}

// walAppendBatch charges one WAL sync covering edits edits totalling
// editBytes. Batched mutations pay the HDFS pipeline latency once per batch
// — the edits travel in one group-committed sync, as real HBase region
// servers do — while every edit still lands in the log.
func (hc *HCluster) walAppendBatch(ctx *sim.Ctx, server string, editBytes, edits int) {
	if edits <= 0 {
		return
	}
	hc.serverWork(ctx, server, hc.costs.WALAppend+hc.costs.PerByte.Mul(editBytes*hc.fs.Replication()))
	hc.walSyncs.Add(1)
	hc.walMu.Lock()
	hc.walSeqs[server] += int64(edits)
	hc.walMu.Unlock()
}

// WALSyncs reports the total group-committed WAL syncs the cluster has
// performed. Edits travelling in one batch share a sync; the transaction-
// scoped write pipeline is measured by how few of these a transaction pays.
func (hc *HCluster) WALSyncs() int64 { return hc.walSyncs.Load() }

// WALEdits reports the number of WAL edits a server has logged (used by
// tests to verify the durability path is exercised).
func (hc *HCluster) WALEdits(server string) int64 {
	hc.walMu.Lock()
	defer hc.walMu.Unlock()
	return hc.walSeqs[server]
}

// FlushTable flushes every region's memstore.
func (hc *HCluster) FlushTable(name string) error {
	t, err := hc.lookup(name)
	if err != nil {
		return err
	}
	for _, r := range t.regionsInRange("", "") {
		r.flush()
	}
	hc.splitIfNeeded(t)
	return nil
}

// MajorCompact rewrites every region of the table into a single store file,
// dropping tombstones — the experiments do this after database population
// (§IX-B2, §IX-D1).
func (hc *HCluster) MajorCompact(name string) error {
	t, err := hc.lookup(name)
	if err != nil {
		return err
	}
	hc.splitIfNeeded(t)
	for _, r := range t.regionsInRange("", "") {
		r.majorCompact()
	}
	return nil
}

// splitIfNeeded splits any region whose row count exceeds the table's size
// threshold, or — when the table opts into load splits — whose decayed load
// score exceeds LoadSplitThreshold. Size-split daughters keep the historical
// placement (left stays, right round-robins); load-split daughters are both
// placed on the least-loaded servers, because the whole point of a load
// split is to let the halves land somewhere cold.
func (hc *HCluster) splitIfNeeded(t *table) {
	for {
		split := false
		t.mu.Lock()
		for i, r := range t.regions {
			overSize := r.rowCount() > t.spec.SplitThreshold
			overLoad := t.spec.LoadSplitThreshold > 0 && r.loadScore() > int64(t.spec.LoadSplitThreshold)
			if !overSize && !overLoad {
				continue
			}
			mid := r.midKey()
			if mid == "" || mid == r.start {
				continue
			}
			left, right := r.split(mid)
			if overLoad {
				hc.placeByLoadLocked(t, r, left, right)
			} else {
				left.setServer(r.Server())
				hc.mu.Lock()
				right.setServer(hc.assignServer())
				hc.mu.Unlock()
			}
			t.regions = append(t.regions[:i], append([]*Region{left, right}, t.regions[i+1:]...)...)
			t.gen.Add(1)
			split = true
			break
		}
		t.mu.Unlock()
		if !split {
			return
		}
	}
}

// placeByLoadLocked assigns the two daughters of a load split to the
// least-loaded servers, measured by this table's summed region load scores
// (ties break lexicographically by server name for determinism). The hotter
// daughter is placed first and its score added to the tally before the
// second placement, so the halves of a hot region never pile onto the same
// cold server. Caller holds t.mu; parent is the region being replaced and is
// excluded from the tally.
func (hc *HCluster) placeByLoadLocked(t *table, parent, left, right *Region) {
	tally := make(map[string]int64)
	for _, s := range hc.Servers() {
		tally[s] = 0
	}
	for _, r := range t.regions {
		if r == parent {
			continue
		}
		tally[r.Server()] += r.loadScore()
	}
	coldest := func() string {
		best := ""
		for s, l := range tally {
			if best == "" || l < tally[best] || (l == tally[best] && s < best) {
				best = s
			}
		}
		return best
	}
	first, second := left, right
	if right.loadScore() > left.loadScore() {
		first, second = right, left
	}
	s := coldest()
	first.setServer(s)
	tally[s] += first.loadScore()
	s = coldest()
	second.setServer(s)
}

// moveRegion relocates a region to dest, charging the mover's ctx the
// region-move cost and invalidating client meta caches via the table
// generation. Requests already holding the *Region keep working — the data
// moves with the struct, only the server attribution changes — which models
// HBase's move semantics where in-flight scanners drain against the old
// assignment and new requests discover the new one.
func (hc *HCluster) moveRegion(ctx *sim.Ctx, t *table, r *Region, dest string) {
	r.setServer(dest)
	t.gen.Add(1)
	ctx.Charge(hc.costs.RegionMove)
}

// RegionCount reports how many regions a table currently has.
func (hc *HCluster) RegionCount(name string) int {
	t, err := hc.lookup(name)
	if err != nil {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.regions)
}

// RowEstimate reports the approximate number of rows in a table (used by
// the SQL planner for join ordering).
func (hc *HCluster) RowEstimate(name string) int {
	t, err := hc.lookup(name)
	if err != nil {
		return 0
	}
	n := 0
	for _, r := range t.regionsInRange("", "") {
		n += r.rowCount()
	}
	return n
}

// TableBytes reports the KeyValue-format storage footprint of a table
// (single replica).
func (hc *HCluster) TableBytes(name string) int64 {
	t, err := hc.lookup(name)
	if err != nil {
		return 0
	}
	var total int64
	for _, r := range t.regionsInRange("", "") {
		total += r.sizeBytes()
	}
	return total
}

// TotalBytes sums TableBytes over all tables.
func (hc *HCluster) TotalBytes() int64 {
	var total int64
	for _, name := range hc.Tables() {
		total += hc.TableBytes(name)
	}
	return total
}

// BulkRow is one pre-sorted row for BulkLoad.
type BulkRow struct {
	Key   string
	Cells []Cell
}

// BulkLoad writes pre-sorted rows directly as store files, bypassing the WAL
// and memstore — the standard HBase bulk-load path used to populate the
// benchmark database. Rows must be sorted by key; cells with zero timestamps
// receive load-time stamps.
func (hc *HCluster) BulkLoad(name string, rows []BulkRow) error {
	t, err := hc.lookup(name)
	if err != nil {
		return err
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Key > rows[i].Key {
			return fmt.Errorf("%w: %q > %q", ErrUnsorted, rows[i-1].Key, rows[i].Key)
		}
	}
	ts := hc.NextTS()
	t.mu.RLock()
	regions := append([]*Region(nil), t.regions...)
	t.mu.RUnlock()

	idx := 0
	for _, r := range regions {
		if idx >= len(rows) {
			break
		}
		end := len(rows)
		if r.end != "" {
			end = idx + sort.Search(len(rows)-idx, func(j int) bool { return rows[idx+j].Key >= r.end })
		}
		if end == idx {
			continue
		}
		chunk := rows[idx:end]
		idx = end
		hrows := make([]hrow, 0, len(chunk))
		var prev *hrow
		for _, br := range chunk {
			rd := &rowData{cells: make([]Cell, 0, len(br.Cells))}
			for _, c := range br.Cells {
				if c.TS == 0 {
					c.TS = ts
				}
				rd.apply(c, t.spec.MaxVersions)
			}
			if prev != nil && prev.key == br.Key {
				prev.data = merged(prev.data, rd)
				continue
			}
			hrows = append(hrows, hrow{key: br.Key, data: rd})
			prev = &hrows[len(hrows)-1]
		}
		r.mu.Lock()
		r.files = append([]*hfile{{rows: hrows}}, r.files...)
		r.mu.Unlock()
	}
	hc.splitIfNeeded(t)
	return nil
}
