package hbase

import (
	"sync"

	"synergy/internal/sim"
)

// Client is an application-side HBase handle, analogous to an HBase
// Connection + Table API. Clients carry the connection/meta-cache state whose
// warm-up cost dominates the paper's lock-overhead experiment (Figure 11):
// a cold client pays ConnectionSetup before its first operation and a
// MetaLookup per table on first touch.
type Client struct {
	hc   *HCluster
	node string // node the client runs on

	mu        sync.Mutex
	connected bool
	// metaCache maps table name → the region-layout generation this client
	// last looked up. A split or balancer move bumps the table's generation,
	// so the client's next touch misses and pays one MetaLookup — the
	// meta-cache invalidation real HBase clients experience as an NSRE retry.
	metaCache map[string]int64

	// mutPool recycles Mutation buffers across BufferedMutator flushes —
	// the write path's dominant per-statement allocation once batching
	// amortized the RPCs.
	mutPool sync.Pool
	// overlayPool and otPool recycle the read-your-writes overlay index
	// (the per-table map and the overlayTable structs) across transactions
	// on the same client — the maps were the next allocation hot spot after
	// Mutation buffers on maintenance-heavy statements.
	overlayPool sync.Pool
	otPool      sync.Pool

	// chunkPool recycles scan chunk buffers (rows + cell arena) across the
	// client's scanners — the read path's dominant allocation once rows
	// stopped being materialized one slice at a time. See chunkBuf for the
	// ownership protocol.
	chunkPool sync.Pool

	// pool is the client's shared scatter-gather scan pool (lazily built;
	// guarded by mu). All of the client's parallel scans draw region-fetch
	// workers from it, modeling Phoenix's global thread pool: a client's
	// total in-flight region fetches never exceed Costs.ScanParallelism,
	// however many scanners are open.
	pool *scanPool
}

// sharedScanPool returns the client's scan pool, creating it at
// Costs.ScanParallelism workers on first use.
func (c *Client) sharedScanPool() *scanPool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pool == nil {
		c.pool = newScanPool(c.hc.costs.ScanParallelism)
	}
	return c.pool
}

// getMutBuf returns an empty Mutation buffer, reusing a flushed one when
// available.
func (c *Client) getMutBuf() []Mutation {
	if v := c.mutPool.Get(); v != nil {
		return (*v.(*[]Mutation))[:0]
	}
	return make([]Mutation, 0, 16)
}

// putMutBuf recycles a Mutation buffer. MutateBatch copies mutations into
// region groups before applying, so the buffer is dead once a flush
// returns.
func (c *Client) putMutBuf(buf []Mutation) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:0]
	c.mutPool.Put(&buf)
}

// getOverlay returns an empty overlay index, reusing a recycled one.
func (c *Client) getOverlay() map[string]*overlayTable {
	if v := c.overlayPool.Get(); v != nil {
		return v.(map[string]*overlayTable)
	}
	return make(map[string]*overlayTable, 4)
}

// getOverlayTable returns an empty per-table overlay, reusing a recycled
// one (rows map kept allocated, keys slice kept at capacity).
func (c *Client) getOverlayTable() *overlayTable {
	if v := c.otPool.Get(); v != nil {
		return v.(*overlayTable)
	}
	return newOverlayTable()
}

// putOverlay recycles an overlay index, its tables, and the pending rowData
// structs themselves onto each table's freelist. Recycling the rowDatas is
// safe because no returned RowResult aliases a pending cell slice — every
// overlay read path (ReadView.Get, overlayRow, the overlay scanner) copies
// the visible pairs out of the pending cells before returning, so the only
// state a caller can still hold is the Value byte slices, which are shared,
// immutable, and never cleared here. Safe only once nothing reads through
// the overlay anymore, which the BufferedMutator contract already
// guarantees (one request, scans drained before a flush boundary).
func (c *Client) putOverlay(ov map[string]*overlayTable) {
	for tbl, ot := range ov {
		for _, rd := range ot.rows {
			clear(rd.cells[:cap(rd.cells)]) // drop value refs; keep capacity
			rd.cells = rd.cells[:0]
			ot.free = append(ot.free, rd)
		}
		clear(ot.rows)
		ot.keys = ot.keys[:0]
		ot.sorted = false
		c.otPool.Put(ot)
		delete(ov, tbl)
	}
	c.overlayPool.Put(ov)
}

// getChunkBuf returns an empty chunk buffer, reusing a released one when
// available.
func (c *Client) getChunkBuf() *chunkBuf {
	if v := c.chunkPool.Get(); v != nil {
		return v.(*chunkBuf)
	}
	return &chunkBuf{}
}

// putChunkBuf releases a chunk buffer back to the pool. Callers must
// guarantee that no row handed out from the buffer is still consumer-visible
// under the Cells lifetime rule — the legal release points are enumerated on
// chunkBuf.
func (c *Client) putChunkBuf(b *chunkBuf) {
	if b == nil {
		return
	}
	b.reset()
	c.chunkPool.Put(b)
}

// NewClient returns a cold client running on the workload driver node.
func (hc *HCluster) NewClient() *Client {
	return &Client{hc: hc, node: "client-0", metaCache: make(map[string]int64)}
}

// NewWarmClient returns a client with established connections and a primed
// meta cache, as a long-running application server would hold.
func (hc *HCluster) NewWarmClient() *Client {
	c := hc.NewClient()
	c.connected = true
	for _, name := range hc.Tables() {
		if t, err := hc.lookup(name); err == nil {
			c.metaCache[name] = t.gen.Load() + 1
		}
	}
	return c
}

// prepare charges connection warm-up and region location lookup as needed.
// The cache is keyed by the table's region-layout generation: a split or a
// balancer move since the last lookup means the cached locations are stale
// and the client pays one fresh MetaLookup.
func (c *Client) prepare(ctx *sim.Ctx, t *table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.connected {
		ctx.Charge(c.hc.costs.ConnectionSetup)
		c.connected = true
	}
	// Cache generations are stored +1 so the zero value of a missing entry
	// never collides with a real generation.
	gen := t.gen.Load() + 1
	if c.metaCache[t.spec.Name] != gen {
		ctx.Charge(c.hc.costs.MetaLookup)
		c.metaCache[t.spec.Name] = gen
	}
}

// open resolves a table and charges the client's connection/meta warm-up —
// the shared entry of every data operation.
func (c *Client) open(ctx *sim.Ctx, tbl string) (*table, error) {
	t, err := c.hc.lookup(tbl)
	if err != nil {
		return nil, err
	}
	c.prepare(ctx, t)
	return t, nil
}

// Get reads one row.
func (c *Client) Get(ctx *sim.Ctx, tbl, key string, opts ReadOpts) (RowResult, error) {
	t, err := c.open(ctx, tbl)
	if err != nil {
		return RowResult{}, err
	}
	r := t.regionFor(key)
	srv := r.Server()
	res := r.get(key, opts)
	c.hc.serverWork(ctx, srv, c.hc.costs.GetSeek)
	c.hc.cl.RPC(ctx, c.node, srv, res.Bytes())
	if !res.Empty() {
		ctx.CountRowsReturned(1)
	}
	return res, nil
}

// Put writes cells to a row. Zero-timestamp cells are stamped server-side.
func (c *Client) Put(ctx *sim.Ctx, tbl, key string, cells []Cell) error {
	t, err := c.open(ctx, tbl)
	if err != nil {
		return err
	}
	r := t.regionFor(key)
	srv := r.Server()
	ts := c.hc.NextTS()
	bytes := 0
	stamped := make([]Cell, len(cells))
	for i, cell := range cells {
		if cell.TS == 0 {
			cell.TS = ts
		}
		stamped[i] = cell
		bytes += len(key) + len(cell.Qualifier) + len(cell.Value) + kvOverhead
	}
	c.hc.cl.RPC(ctx, c.node, srv, bytes)
	c.hc.walAppend(ctx, srv, bytes)
	c.hc.serverWork(ctx, srv, c.hc.costs.PutApply)
	r.put(key, stamped)
	return nil
}

// Delete removes a whole row, or only the given qualifiers.
func (c *Client) Delete(ctx *sim.Ctx, tbl, key string, qualifiers ...string) error {
	return c.DeleteAt(ctx, tbl, key, 0, qualifiers...)
}

// DeleteAt removes a row (or qualifiers) with an explicit tombstone
// timestamp; ts == 0 uses the server clock. MVCC transactions stamp
// tombstones with their transaction id.
func (c *Client) DeleteAt(ctx *sim.Ctx, tbl, key string, ts int64, qualifiers ...string) error {
	t, err := c.open(ctx, tbl)
	if err != nil {
		return err
	}
	if ts == 0 {
		ts = c.hc.NextTS()
	}
	r := t.regionFor(key)
	srv := r.Server()
	c.hc.cl.RPC(ctx, c.node, srv, len(key)+32)
	c.hc.walAppend(ctx, srv, len(key)+32)
	c.hc.serverWork(ctx, srv, c.hc.costs.PutApply)
	r.deleteRow(key, ts, qualifiers)
	return nil
}

// Increment atomically adds delta to a big-endian int64 counter cell.
func (c *Client) Increment(ctx *sim.Ctx, tbl, key, qualifier string, delta int64) (int64, error) {
	t, err := c.open(ctx, tbl)
	if err != nil {
		return 0, err
	}
	r := t.regionFor(key)
	srv := r.Server()
	c.hc.cl.RPC(ctx, c.node, srv, len(key)+len(qualifier)+16)
	c.hc.walAppend(ctx, srv, len(key)+len(qualifier)+16)
	c.hc.serverWork(ctx, srv, c.hc.costs.GetSeek+c.hc.costs.PutApply)
	return r.increment(key, qualifier, delta, c.hc.NextTS()), nil
}

// CheckAndPut atomically puts cell iff the current value of (key, qualifier)
// equals expected (nil = absent). It is the primitive the Synergy lock tables
// are built on (§VIII-A, §IX-C).
func (c *Client) CheckAndPut(ctx *sim.Ctx, tbl, key, qualifier string, expected []byte, cell Cell) (bool, error) {
	t, err := c.open(ctx, tbl)
	if err != nil {
		return false, err
	}
	r := t.regionFor(key)
	srv := r.Server()
	if cell.TS == 0 {
		cell.TS = c.hc.NextTS()
	}
	bytes := len(key) + len(cell.Qualifier) + len(cell.Value) + len(expected) + kvOverhead
	c.hc.cl.RPC(ctx, c.node, srv, bytes)
	c.hc.serverWork(ctx, srv, c.hc.costs.CheckAndPut)
	ok := r.checkAndPut(key, qualifier, expected, cell)
	if ok {
		c.hc.walAppend(ctx, srv, bytes)
		c.hc.serverWork(ctx, srv, c.hc.costs.PutApply)
	}
	return ok, nil
}

// ScanSpec describes a scan.
type ScanSpec struct {
	Start  string // inclusive; "" = table start
	Stop   string // exclusive; "" = table end
	Prefix string // convenience: restricts to keys with this prefix
	Limit  int    // max rows returned; 0 = unlimited
	Read   ReadOpts
	// Filter drops rows server-side; dropped rows are examined but not
	// shipped (HBase filter pushdown). Filters must be pure row predicates:
	// a transaction's read-your-writes view evaluates the same filter both
	// server-side (store rows with no pending mutations) and client-side
	// (rows merged with pending cells).
	Filter func(RowResult) bool
	// FilterMergedOnly marks the filter as safe only over fully merged
	// rows: a read-your-writes view then keeps it entirely client-side
	// instead of pushing the store-safe split down. Plain store scans
	// ignore it (there is nothing to merge).
	FilterMergedOnly bool
	// Batch overrides the scanner caching (rows per RPC).
	Batch int
	// Sequential forces region-at-a-time draining even when the scan
	// could scatter-gather. Point probes and short prefix scans set it:
	// their fan-out overhead outweighs the parallelism. Limit-bounded
	// scans scatter-gather only once Limit reaches the chunk size (at
	// least one full scanner RPC per region), where speculative per-region
	// prefetch amortizes the fan-out; smaller limits stay sequential for
	// early termination.
	Sequential bool
	// Parallelism caps the in-flight region scans of a scatter-gather
	// scan (0 = the cost model's ScanParallelism).
	Parallelism int
}

func (s ScanSpec) bounds() (start, stop string) {
	start, stop = s.Start, s.Stop
	if s.Prefix != "" {
		start = s.Prefix
		stop = s.Prefix + "\xff\xff\xff\xff"
	}
	return start, stop
}

// Scanner streams rows from a table in key order across regions.
//
// Unlimited scans over multi-region ranges run in scatter-gather mode, as
// real Phoenix does for intra-query parallelism: a bounded worker pool
// drains every in-range region concurrently and the client folds the
// disjoint per-region streams back into one key-ordered stream. Limit-
// bounded scans (and spec.Sequential) keep the region-at-a-time path, where
// early termination beats parallel prefetch. A Scanner assumes one sim.Ctx
// per request: the ctx passed to Next/Close is the one the scatter-gather
// fork/join cost is charged to.
type Scanner struct {
	client  *Client
	tbl     *table
	spec    ScanSpec
	batch   int
	regions []*Region
	par     *parScanner // nil in sequential mode
	ri      int         // current region index
	resume  string      // next key within current region
	opened  bool        // ScanOpen charged for current region
	chunk   *chunkBuf   // sequential mode: the one buffer refilled in place
	buf     []RowResult
	bi      int
	sent    int
	done    bool
}

// Scan opens a scanner.
func (c *Client) Scan(ctx *sim.Ctx, tbl string, spec ScanSpec) (*Scanner, error) {
	t, err := c.open(ctx, tbl)
	if err != nil {
		return nil, err
	}
	start, stop := spec.bounds()
	batch := spec.Batch
	if batch <= 0 {
		batch = c.hc.costs.ScannerBatch
	}
	s := &Scanner{
		client:  c,
		tbl:     t,
		spec:    spec,
		batch:   batch,
		regions: t.regionsInRange(start, stop),
		resume:  start,
	}
	if (spec.Limit <= 0 || spec.Limit >= batch) && !spec.Sequential && len(s.regions) > 1 {
		par := spec.Parallelism
		if par <= 0 {
			par = c.hc.costs.ScanParallelism
		}
		if par > 1 {
			// Scans ride the client's shared pool; an explicit Parallelism
			// override gets a private pool of that size (per-query pool
			// sizing, outside the shared cap).
			var pool *scanPool
			if spec.Parallelism > 0 {
				pool = newScanPool(spec.Parallelism)
			} else {
				pool = c.sharedScanPool()
			}
			s.par = startParScan(ctx, s, pool)
		}
	}
	return s, nil
}

// Next returns the next row. ok is false when the scan is exhausted.
func (s *Scanner) Next(ctx *sim.Ctx) (row RowResult, ok bool) {
	if s.done {
		return RowResult{}, false
	}
	if s.par != nil {
		row, ok = s.par.next(ctx)
		if !ok {
			s.done = true
			return row, ok
		}
		s.sent++
		if s.spec.Limit > 0 && s.sent >= s.spec.Limit {
			// Client-side trim: stop the region workers and fold their
			// already-performed (speculative) work into ctx.
			s.done = true
			s.par.close(ctx)
		}
		return row, true
	}
	for s.bi >= len(s.buf) {
		if !s.fetch(ctx) {
			s.done = true
			return RowResult{}, false
		}
	}
	row = s.buf[s.bi]
	s.bi++
	s.sent++
	if s.spec.Limit > 0 && s.sent >= s.spec.Limit {
		s.done = true
	}
	return row, true
}

// Close releases an unfinished scan. A fully drained scanner needs no
// Close; callers that abandon a scan early (dirty-read restarts) must call
// it so scatter-gather workers stop and their already-performed work is
// still charged to ctx. Close invalidates previously returned rows (the
// Cells lifetime rule), which is what lets it recycle the sequential chunk
// buffer.
func (s *Scanner) Close(ctx *sim.Ctx) {
	if s.par != nil {
		s.par.close(ctx)
	}
	s.releaseChunk()
	s.done = true
}

// releaseChunk returns the sequential scanner's chunk buffer to the client
// pool. Called only at points that invalidate previously returned rows —
// exhaustion of the last region, or Close.
func (s *Scanner) releaseChunk() {
	if s.chunk != nil {
		s.client.putChunkBuf(s.chunk)
		s.chunk, s.buf, s.bi = nil, nil, 0
	}
}

// fetchChunk performs one scanner RPC against region r into buf, charging
// ctx for the server-side work and the response shipment. It is shared by
// the sequential path and the scatter-gather workers so that both modes
// charge identically. The buffer is reset on entry — this is the refill
// point that invalidates whatever rows it previously held. next is "" when
// the region is exhausted; truncated reports that the stop key cut the
// chunk, meaning every remaining key in this and any later region is out of
// range.
func (s *Scanner) fetchChunk(ctx *sim.Ctx, r *Region, buf *chunkBuf, resume string, want int, stop string) (next string, truncated bool) {
	hc := s.client.hc
	srv := r.Server()
	buf.reset()
	examined, next := r.scanChunk(buf, resume, want, s.spec.Read, s.spec.Filter)
	if stop != "" {
		for len(buf.rows) > 0 && buf.rows[len(buf.rows)-1].Key >= stop {
			buf.rows = buf.rows[:len(buf.rows)-1]
			truncated = true
		}
	}
	ctx.CountRowsScanned(examined)
	hc.serverWork(ctx, srv, sim.Micros(int64(examined)*int64(hc.costs.ScanNextRow)))
	bytes := 0
	for _, row := range buf.rows {
		bytes += row.Bytes()
	}
	ctx.CountRowsReturned(len(buf.rows))
	hc.cl.RPC(ctx, s.client.node, srv, bytes)
	return next, truncated
}

// fetch pulls the next chunk from the current region into the scanner's
// owned chunk buffer, advancing to the next region as needed. Reports false
// when all regions are exhausted, at which point the buffer returns to the
// client pool (exhaustion invalidates previously returned rows).
func (s *Scanner) fetch(ctx *sim.Ctx) bool {
	hc := s.client.hc
	_, stop := s.spec.bounds()
	if s.chunk == nil {
		s.chunk = s.client.getChunkBuf()
	}
	for s.ri < len(s.regions) {
		r := s.regions[s.ri]
		if !s.opened {
			hc.serverWork(ctx, r.Server(), hc.costs.ScanOpen)
			s.opened = true
			if s.resume < r.start {
				s.resume = r.start
			}
		}
		want := s.batch
		if s.spec.Limit > 0 {
			if remaining := s.spec.Limit - s.sent; remaining < want {
				want = remaining
			}
		}
		next, truncated := s.fetchChunk(ctx, r, s.chunk, s.resume, want, stop)
		switch {
		case truncated:
			// Terminate so no further region is ever opened.
			s.ri = len(s.regions)
			s.opened = false
		case next == "":
			s.ri++
			s.opened = false
			if s.ri < len(s.regions) {
				s.resume = s.regions[s.ri].start
			}
		default:
			s.resume = next
		}
		if len(s.chunk.rows) > 0 {
			s.buf, s.bi = s.chunk.rows, 0
			return true
		}
	}
	s.releaseChunk()
	return false
}

// All drains the scanner into a caller-owned slice. The rows are deep-copied
// out of the stream's pooled chunk buffers into one arena owned by the
// result, so All costs O(log rows) allocations rather than one Clone per
// row, and the returned rows are caller-stable forever (point-read
// semantics) rather than bound by the stream lifetime rule.
//
//cellsvet:owner
func (s *Scanner) All(ctx *sim.Ctx) []RowResult {
	var out []RowResult
	var arena Cells
	for {
		row, ok := s.Next(ctx)
		if !ok {
			return out
		}
		start := len(arena)
		arena = append(arena, row.Cells...)
		out = append(out, RowResult{Key: row.Key, Cells: arena[start:len(arena):len(arena)]})
	}
}
