package hbase

import (
	"fmt"
	"testing"

	"synergy/internal/cluster"
	"synergy/internal/sim"
)

// overlayFixture builds a 3-region table seeded with rows 0,2,4,...,18 and
// a transaction-scoped mutator over it.
func overlayFixture(t *testing.T) (*HCluster, *Client, *BufferedMutator) {
	t.Helper()
	hc, c := splitCluster(t, 3, 20)
	ctx := sim.NewCtx()
	for i := 0; i < 20; i += 2 {
		if err := c.Put(ctx, "t", scanKey(i), []Cell{put("v", fmt.Sprintf("stored-%d", i), 0), put("w", "base", 0)}); err != nil {
			t.Fatal(err)
		}
	}
	return hc, c, c.NewTxMutator()
}

func drainStream(ctx *sim.Ctx, s RowStream) []RowResult {
	var out []RowResult
	for {
		r, ok := s.Next(ctx)
		if !ok {
			return out
		}
		// Streamed rows are valid only until the next Next call; retaining
		// them across the drain requires a deep copy (the Cells lifetime
		// rule).
		out = append(out, r.Clone())
	}
}

// The overlay contract: a get/scan through the ReadView before the flush
// sees exactly what a plain get/scan sees after the flush.
func TestOverlayReadsMatchPostFlushState(t *testing.T) {
	_, c, m := overlayFixture(t)
	ctx := sim.NewCtx()
	// A mixed pending buffer: new rows, overwrites, a row delete over a
	// stored row, a column delete, a delete-then-reput.
	steps := func(m *BufferedMutator) {
		mustDo := func(err error) {
			t.Helper()
			if err != nil {
				t.Fatal(err)
			}
		}
		mustDo(m.Put(ctx, "t", scanKey(1), []Cell{put("v", "new-1", 0)}))
		mustDo(m.Put(ctx, "t", scanKey(2), []Cell{put("v", "overwritten-2", 0)}))
		mustDo(m.Delete(ctx, "t", scanKey(4), 0))
		mustDo(m.Delete(ctx, "t", scanKey(6), 0, "w"))
		mustDo(m.Delete(ctx, "t", scanKey(8), 0))
		mustDo(m.Put(ctx, "t", scanKey(8), []Cell{put("v", "reborn-8", 0)}))
		mustDo(m.Put(ctx, "t", scanKey(19), []Cell{put("v", "new-19", 0)}))
	}
	steps(m)

	view := m.View()
	var before []RowResult
	sc, err := view.OpenScan(ctx, "t", ScanSpec{})
	if err != nil {
		t.Fatal(err)
	}
	before = drainStream(ctx, sc)

	// Point gets through the view, before flush.
	for _, k := range []int{1, 2, 4, 6, 8, 10, 19} {
		got, err := view.Get(ctx, "t", scanKey(k), ReadOpts{})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range before {
			if r.Key == scanKey(k) {
				found = true
				if r.String() != got.String() {
					t.Fatalf("get/scan mismatch for %s: %s vs %s", scanKey(k), got, r)
				}
			}
		}
		if !found && !got.Empty() {
			t.Fatalf("get %s returned %s but scan omitted it", scanKey(k), got)
		}
	}

	if err := m.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	sc2, err := c.Scan(ctx, "t", ScanSpec{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	after := sc2.All(ctx)
	requireSameRows(t, after, before)
}

func TestOverlayGetSeesPendingWrites(t *testing.T) {
	_, c, m := overlayFixture(t)
	ctx := sim.NewCtx()
	view := m.View()

	if err := m.Put(ctx, "t", scanKey(1), []Cell{put("v", "pending", 0)}); err != nil {
		t.Fatal(err)
	}
	got, err := view.Get(ctx, "t", scanKey(1), ReadOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Get("v")) != "pending" {
		t.Fatalf("overlay get = %s, want pending value", got)
	}
	// The store must not have it yet, and a plain client read must not see it.
	plain, err := c.Get(ctx, "t", scanKey(1), ReadOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Empty() {
		t.Fatalf("buffered write leaked to the store: %s", plain)
	}

	// Pending put over a stored row merges with the untouched column.
	if err := m.Put(ctx, "t", scanKey(2), []Cell{put("v", "pending-2", 0)}); err != nil {
		t.Fatal(err)
	}
	got, err = view.Get(ctx, "t", scanKey(2), ReadOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Get("v")) != "pending-2" || string(got.Get("w")) != "base" {
		t.Fatalf("merged get = %s, want pending v + stored w", got)
	}
}

// A pending row tombstone masks the store row entirely — and is served from
// the buffer with no store RPC.
func TestOverlayRowTombstoneSkipsStoreRPC(t *testing.T) {
	_, _, m := overlayFixture(t)
	ctx := sim.NewCtx()
	view := m.View()
	if err := m.Delete(ctx, "t", scanKey(2), 0); err != nil {
		t.Fatal(err)
	}
	probe := sim.NewCtx()
	got, err := view.Get(probe, "t", scanKey(2), ReadOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Empty() {
		t.Fatalf("deleted row visible through overlay: %s", got)
	}
	if rpcs := probe.Snapshot().RPCs; rpcs != 0 {
		t.Fatalf("tombstoned read paid %d store RPCs, want 0", rpcs)
	}
}

// Limit scans through the overlay return exactly Limit merged rows even
// when pending deletes hide store rows at the front of the range.
func TestOverlayLimitScanSurvivesPendingDeletes(t *testing.T) {
	_, _, m := overlayFixture(t)
	ctx := sim.NewCtx()
	for _, k := range []int{0, 2, 4} {
		if err := m.Delete(ctx, "t", scanKey(k), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Put(ctx, "t", scanKey(5), []Cell{put("v", "new-5", 0)}); err != nil {
		t.Fatal(err)
	}
	sc, err := m.View().OpenScan(ctx, "t", ScanSpec{Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := drainStream(ctx, sc)
	want := []string{scanKey(5), scanKey(6), scanKey(8)}
	if len(got) != len(want) {
		t.Fatalf("limit scan returned %d rows, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.Key != want[i] {
			t.Fatalf("row %d = %s, want %s", i, r.Key, want[i])
		}
	}
}

// Discard drops the pending buffer: the view reverts to plain store reads
// and a later flush ships nothing.
func TestOverlayDiscard(t *testing.T) {
	_, c, m := overlayFixture(t)
	ctx := sim.NewCtx()
	if err := m.Put(ctx, "t", scanKey(1), []Cell{put("v", "doomed", 0)}); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(ctx, "t", scanKey(2), 0); err != nil {
		t.Fatal(err)
	}
	m.Discard()
	if m.Pending() != 0 {
		t.Fatalf("pending after discard = %d", m.Pending())
	}
	got, err := m.View().Get(ctx, "t", scanKey(1), ReadOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Empty() {
		t.Fatalf("discarded write still visible through view: %s", got)
	}
	got, err = m.View().Get(ctx, "t", scanKey(2), ReadOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Empty() {
		t.Fatal("discarded delete still hides the stored row")
	}
	if err := m.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	stored, err := c.Get(ctx, "t", scanKey(1), ReadOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !stored.Empty() {
		t.Fatalf("discarded write reached the store: %s", stored)
	}
}

// Filtered scans apply the filter to merged rows: a pending overwrite can
// move a row in or out of the filtered set.
func TestOverlayScanFilterSeesMergedRows(t *testing.T) {
	_, _, m := overlayFixture(t)
	ctx := sim.NewCtx()
	if err := m.Put(ctx, "t", scanKey(2), []Cell{put("v", "keep-me", 0)}); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(ctx, "t", scanKey(3), []Cell{put("v", "keep-me", 0)}); err != nil {
		t.Fatal(err)
	}
	sc, err := m.View().OpenScan(ctx, "t", ScanSpec{Filter: func(r RowResult) bool {
		return string(r.Get("v")) == "keep-me"
	}})
	if err != nil {
		t.Fatal(err)
	}
	got := drainStream(ctx, sc)
	if len(got) != 2 || got[0].Key != scanKey(2) || got[1].Key != scanKey(3) {
		t.Fatalf("filtered merge scan = %v, want rows 2 and 3", got)
	}
}

// TestOverlayFilterPushdownParity is the predicate-split contract: with
// pending writes in range, a filtered overlay scan must return the same
// rows whether the store-safe split pushes down (default), the filter runs
// merged-row-only (FilterMergedOnly), or the scan happens after the flush
// against the plain store — including rows whose pending cells flip the
// filter verdict in either direction, with and without a limit.
func TestOverlayFilterPushdownParity(t *testing.T) {
	_, c, m := overlayFixture(t)
	ctx := sim.NewCtx()
	mustDo := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	// Stored rows 0..18 (even) carry v=stored-N. Pending: row 2 flips to a
	// passing value, row 4 flips a passing stored value away, row 5 is a
	// pending-only insert that passes, row 6 is deleted, row 8's filter
	// column is untouched but another column changes.
	filter := func(r RowResult) bool { return string(r.Get("v")) == "keep" }
	mustDo(c.Put(ctx, "t", scanKey(4), []Cell{put("v", "keep", 0)}))
	mustDo(c.Put(ctx, "t", scanKey(8), []Cell{put("v", "keep", 0)}))
	mustDo(c.Put(ctx, "t", scanKey(12), []Cell{put("v", "keep", 0)}))
	mustDo(m.Put(ctx, "t", scanKey(2), []Cell{put("v", "keep", 0)}))
	mustDo(m.Put(ctx, "t", scanKey(4), []Cell{put("v", "not-any-more", 0)}))
	mustDo(m.Put(ctx, "t", scanKey(5), []Cell{put("v", "keep", 0)}))
	mustDo(m.Delete(ctx, "t", scanKey(12), 0))
	mustDo(m.Put(ctx, "t", scanKey(8), []Cell{put("w", "other-column", 0)}))

	for _, limit := range []int{0, 2} {
		pushSpec := ScanSpec{Filter: filter, Limit: limit}
		mergedSpec := ScanSpec{Filter: filter, Limit: limit, FilterMergedOnly: true}
		sc1, err := m.View().OpenScan(ctx, "t", pushSpec)
		if err != nil {
			t.Fatal(err)
		}
		pushed := drainStream(ctx, sc1)
		sc2, err := m.View().OpenScan(ctx, "t", mergedSpec)
		if err != nil {
			t.Fatal(err)
		}
		clientSide := drainStream(ctx, sc2)
		requireSameRows(t, clientSide, pushed)
		want := []string{scanKey(2), scanKey(5), scanKey(8)}
		if limit > 0 {
			want = want[:limit]
		}
		if len(pushed) != len(want) {
			t.Fatalf("limit=%d: got %d rows, want %v", limit, len(pushed), want)
		}
		for i, k := range want {
			if pushed[i].Key != k {
				t.Fatalf("limit=%d row %d = %q, want %q", limit, i, pushed[i].Key, k)
			}
		}
	}

	// Post-flush, the plain store must agree with what the overlay served.
	sc, err := m.View().OpenScan(ctx, "t", ScanSpec{Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	before := drainStream(ctx, sc)
	mustDo(m.Flush(ctx))
	sc3, err := c.Scan(ctx, "t", ScanSpec{Filter: filter, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	requireSameRows(t, sc3.All(ctx), before)
}

// TestOverlayPushdownSavesShipping pins that the split actually restores
// pushdown: with pending rows present, the pushed variant must ship fewer
// rows from the store than the merged-only variant (which disables the
// server-side filter entirely).
func TestOverlayPushdownSavesShipping(t *testing.T) {
	_, _, m := overlayFixture(t)
	ctx := sim.NewCtx()
	if err := m.Put(ctx, "t", scanKey(3), []Cell{put("v", "keep", 0)}); err != nil {
		t.Fatal(err)
	}
	filter := func(r RowResult) bool { return string(r.Get("v")) == "keep" }

	run := func(spec ScanSpec) sim.Stats {
		c := sim.NewCtx()
		sc, err := m.View().OpenScan(c, "t", spec)
		if err != nil {
			t.Fatal(err)
		}
		drainStream(c, sc)
		return c.Snapshot()
	}
	pushed := run(ScanSpec{Filter: filter})
	mergedOnly := run(ScanSpec{Filter: filter, FilterMergedOnly: true})
	if pushed.RowsScanned != mergedOnly.RowsScanned {
		t.Fatalf("both variants must examine every row server-side: %d vs %d", pushed.RowsScanned, mergedOnly.RowsScanned)
	}
	if pushed.RowsReturned >= mergedOnly.RowsReturned {
		t.Fatalf("pushdown shipped %d rows, merged-only %d; the split should ship fewer", pushed.RowsReturned, mergedOnly.RowsReturned)
	}
}

// MVCC-stamped pending cells honor the snapshot read options, exactly as
// they will once flushed.
func TestOverlaySnapshotVisibility(t *testing.T) {
	costs := sim.DefaultCosts()
	hc := NewHCluster(cluster.NewDefault(costs), nil, nil)
	mustCreate(t, hc, TableSpec{Name: "t", MaxVersions: 16})
	c := hc.NewWarmClient()
	ctx := sim.NewCtx()
	if err := c.Put(ctx, "t", "row", []Cell{{Qualifier: "v", Value: []byte("committed"), TS: 5}}); err != nil {
		t.Fatal(err)
	}
	m := c.NewTxMutator()
	if err := m.Put(ctx, "t", "row", []Cell{{Qualifier: "v", Value: []byte("mine"), TS: 10}}); err != nil {
		t.Fatal(err)
	}
	view := m.View()
	own, err := view.Get(ctx, "t", "row", ReadOpts{ReadTS: 10})
	if err != nil {
		t.Fatal(err)
	}
	if string(own.Get("v")) != "mine" {
		t.Fatalf("own snapshot read = %s, want pending version", own)
	}
	// A snapshot that excludes the pending transaction's timestamp falls
	// back to the committed version.
	older, err := view.Get(ctx, "t", "row", ReadOpts{ReadTS: 7})
	if err != nil {
		t.Fatal(err)
	}
	if string(older.Get("v")) != "committed" {
		t.Fatalf("older snapshot read = %s, want committed version", older)
	}
}

// Mutation buffers are recycled across flushes: a second statement's flush
// must not re-allocate the buffer the first returned to the pool.
func TestMutationBufferPooling(t *testing.T) {
	_, c, m := overlayFixture(t)
	ctx := sim.NewCtx()
	if err := m.Put(ctx, "t", scanKey(1), []Cell{put("v", "a", 0)}); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	buf := c.getMutBuf()
	if cap(buf) == 0 {
		t.Fatal("flush did not recycle the mutation buffer")
	}
	c.putMutBuf(buf)
	_ = m
}
