package hbase

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"synergy/internal/cluster"
	"synergy/internal/sim"
)

// buildScanFixture creates a pre-split table with a mix of store files and
// memstore data: bulk-loaded base rows, overwrites, deletes and late puts
// that never get flushed. Deterministic by construction.
func buildScanFixture(t testing.TB, rowsN, regions int) (*HCluster, *Client) {
	t.Helper()
	hc := NewHCluster(cluster.NewDefault(nil), nil, nil)
	var splits []string
	for i := 1; i < regions; i++ {
		splits = append(splits, scanKey(i*rowsN/regions))
	}
	if err := hc.CreateTable(TableSpec{Name: "t", MaxVersions: 3, SplitKeys: splits}); err != nil {
		t.Fatal(err)
	}
	bulk := make([]BulkRow, rowsN)
	for i := range bulk {
		bulk[i] = BulkRow{Key: scanKey(i), Cells: []Cell{
			put("v", fmt.Sprintf("base-%d", i), 0),
			put("w", fmt.Sprintf("wide-%d", i), 0),
		}}
	}
	if err := hc.BulkLoad("t", bulk); err != nil {
		t.Fatal(err)
	}
	c := hc.NewWarmClient()
	ctx := sim.NewCtx()
	// Overwrite every 7th row, delete every 13th, then flush so the scan
	// has to merge multiple store files.
	for i := 0; i < rowsN; i += 7 {
		c.Put(ctx, "t", scanKey(i), []Cell{put("v", fmt.Sprintf("over-%d", i), 0)})
	}
	for i := 0; i < rowsN; i += 13 {
		c.Delete(ctx, "t", scanKey(i))
	}
	hc.FlushTable("t")
	// Late writes stay in the memstore.
	for i := 0; i < rowsN; i += 11 {
		c.Put(ctx, "t", scanKey(i), []Cell{put("v", fmt.Sprintf("late-%d", i), 0)})
	}
	return hc, c
}

func scanKey(i int) string { return fmt.Sprintf("k%06d", i) }

func drainSpec(t testing.TB, c *Client, spec ScanSpec) ([]RowResult, sim.Stats) {
	t.Helper()
	ctx := sim.NewCtx()
	sc, err := c.Scan(ctx, "t", spec)
	if err != nil {
		t.Fatal(err)
	}
	rows := sc.All(ctx)
	return rows, ctx.Snapshot()
}

func requireSameRows(t *testing.T, seq, par []RowResult) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("row counts differ: sequential=%d parallel=%d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Key != par[i].Key {
			t.Fatalf("row %d key: sequential=%q parallel=%q", i, seq[i].Key, par[i].Key)
		}
		if len(seq[i].Cells) != len(par[i].Cells) {
			t.Fatalf("row %q cell counts differ", seq[i].Key)
		}
		for j, p := range seq[i].Cells {
			pp := par[i].Cells[j]
			if p.Qualifier != pp.Qualifier || !bytes.Equal(p.Value, pp.Value) {
				t.Fatalf("row %q pair %d: %s=%q != %s=%q", seq[i].Key, j, p.Qualifier, p.Value, pp.Qualifier, pp.Value)
			}
		}
	}
}

// TestScanParallelSequentialParity is the tentpole's contract: both modes
// return byte-identical rows in identical key order, across region splits,
// with multi-file merges, tombstones and memstore overlays in play.
func TestScanParallelSequentialParity(t *testing.T) {
	_, c := buildScanFixture(t, 4000, 8)
	specs := map[string]ScanSpec{
		"full":       {},
		"range":      {Start: scanKey(500), Stop: scanKey(3500)},
		"stop-mid":   {Stop: scanKey(1777)},
		"filter":     {Filter: func(r RowResult) bool { return len(r.Get("v"))%2 == 0 }},
		"snapshot":   {Read: ReadOpts{ReadTS: 1}}, // bulk-load stamp only
		"projection": {Read: ReadOpts{Columns: []string{"w"}}},
		"smallbatch": {Batch: 17},
	}
	for name, spec := range specs {
		seqSpec, parSpec := spec, spec
		seqSpec.Sequential = true
		seq, seqStats := drainSpec(t, c, seqSpec)
		par, parStats := drainSpec(t, c, parSpec)
		if len(seq) == 0 {
			t.Fatalf("%s: fixture returned no rows", name)
		}
		requireSameRows(t, seq, par)
		for i := 1; i < len(par); i++ {
			if par[i-1].Key >= par[i].Key {
				t.Fatalf("%s: out of order at %d", name, i)
			}
		}
		// The same physical work happens in either mode; only the
		// simulated elapsed time may differ.
		if seqStats.RowsScanned != parStats.RowsScanned || seqStats.RowsReturned != parStats.RowsReturned ||
			seqStats.RPCs != parStats.RPCs || seqStats.BytesMoved != parStats.BytesMoved {
			t.Fatalf("%s: work counters diverge: seq=%+v par=%+v", name, seqStats, parStats)
		}
	}
}

// A multi-region scatter-gather scan must simulate faster than draining the
// regions one at a time, and the gap must come from overlap, not from
// skipped work.
func TestScanParallelSimulatedSpeedup(t *testing.T) {
	_, c := buildScanFixture(t, 4000, 8)
	_, seqStats := drainSpec(t, c, ScanSpec{Sequential: true})
	_, parStats := drainSpec(t, c, ScanSpec{})
	if parStats.Elapsed >= seqStats.Elapsed {
		t.Fatalf("parallel elapsed %v not below sequential %v", parStats.Elapsed, seqStats.Elapsed)
	}
	// 8 regions of equal size: expect the fork/join max to be well under
	// half the sequential sum even after merge charges.
	if parStats.Elapsed*2 >= seqStats.Elapsed {
		t.Fatalf("parallel elapsed %v not at least 2x below sequential %v", parStats.Elapsed, seqStats.Elapsed)
	}
}

func TestScanStopKeyAcrossBatches(t *testing.T) {
	hc := NewHCluster(cluster.NewDefault(nil), nil, nil)
	mustCreate(t, hc, TableSpec{Name: "t"})
	c := hc.NewWarmClient()
	ctx := sim.NewCtx()
	for i := 0; i < 20; i++ {
		c.Put(ctx, "t", scanKey(i), []Cell{put("v", "x", 0)})
	}
	// Batch of 2 forces the stop key to be hit mid-chunk several fetches
	// in; the scanner must stop exactly at k5 and never fetch beyond.
	scanCtx := sim.NewCtx()
	sc, err := c.Scan(scanCtx, "t", ScanSpec{Stop: scanKey(5), Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows := sc.All(scanCtx)
	if len(rows) != 5 || rows[4].Key != scanKey(4) {
		t.Fatalf("rows = %d (last %q), want 5 ending at %q", len(rows), rows[len(rows)-1].Key, scanKey(4))
	}
	// Chunks [0,1] [2,3] [4,5→trimmed]: exactly 3 scanner RPCs, and the
	// truncation must terminate the scan rather than re-open the region.
	if s := scanCtx.Snapshot(); s.RPCs != 3 {
		t.Fatalf("scanner RPCs = %d, want 3", s.RPCs)
	}
}

func TestScanStopKeyNeverOpensLaterRegions(t *testing.T) {
	hc := NewHCluster(cluster.NewDefault(nil), nil, nil)
	mustCreate(t, hc, TableSpec{Name: "t", SplitKeys: []string{scanKey(10), scanKey(20)}})
	c := hc.NewWarmClient()
	ctx := sim.NewCtx()
	for i := 0; i < 30; i++ {
		c.Put(ctx, "t", scanKey(i), []Cell{put("v", "x", 0)})
	}
	// Stop inside region 0: regions 1 and 2 must not contribute RPCs.
	scanCtx := sim.NewCtx()
	sc, _ := c.Scan(scanCtx, "t", ScanSpec{Stop: scanKey(5), Sequential: true})
	if rows := sc.All(scanCtx); len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	if s := scanCtx.Snapshot(); s.RPCs != 1 {
		t.Fatalf("RPCs = %d, want 1 (single chunk from region 0)", s.RPCs)
	}
}

func TestScanLimitBatchInteraction(t *testing.T) {
	hc := NewHCluster(cluster.NewDefault(nil), nil, nil)
	mustCreate(t, hc, TableSpec{Name: "t", SplitKeys: []string{scanKey(10), scanKey(20)}})
	c := hc.NewWarmClient()
	ctx := sim.NewCtx()
	for i := 0; i < 30; i++ {
		c.Put(ctx, "t", scanKey(i), []Cell{put("v", fmt.Sprint(i), 0)})
	}
	cases := []struct {
		limit, batch, want int
	}{
		{7, 3, 7},    // limit not a batch multiple
		{7, 100, 7},  // batch larger than limit: one trimmed chunk
		{15, 4, 15},  // limit crosses a region boundary
		{100, 8, 30}, // limit beyond table size
		{30, 30, 30}, // exact
	}
	for _, tc := range cases {
		for _, sequential := range []bool{true, false} {
			scanCtx := sim.NewCtx()
			sc, err := c.Scan(scanCtx, "t", ScanSpec{Limit: tc.limit, Batch: tc.batch, Sequential: sequential})
			if err != nil {
				t.Fatal(err)
			}
			rows := sc.All(scanCtx)
			if len(rows) != tc.want {
				t.Fatalf("limit=%d batch=%d seq=%v: rows = %d, want %d", tc.limit, tc.batch, sequential, len(rows), tc.want)
			}
			for i := range rows {
				if rows[i].Key != scanKey(i) {
					t.Fatalf("limit=%d batch=%d seq=%v: row %d = %q", tc.limit, tc.batch, sequential, i, rows[i].Key)
				}
			}
			s := scanCtx.Snapshot()
			if sequential {
				// A sequential Limit scan trims its last chunk request,
				// so rows shipped never exceed the limit.
				if s.RowsReturned > int64(tc.limit) {
					t.Fatalf("limit=%d batch=%d: shipped %d rows", tc.limit, tc.batch, s.RowsReturned)
				}
			} else if s.RowsReturned > int64(tc.limit)*3 {
				// A scatter-gather Limit scan speculatively fetches up to
				// Limit rows per region (3 regions here) before the
				// client-side trim.
				t.Fatalf("limit=%d batch=%d: shipped %d rows, speculative bound is %d", tc.limit, tc.batch, s.RowsReturned, tc.limit*3)
			}
		}
	}
}

// TestScanLimitParallelSequentialParity is the limit-bounded scatter-gather
// contract (ROADMAP follow-up): once Limit is at least a full chunk, the
// fan-out path with per-region limits and client-side trim returns exactly
// the rows the sequential path returns.
func TestScanLimitParallelSequentialParity(t *testing.T) {
	_, c := buildScanFixture(t, 4000, 8)
	specs := map[string]ScanSpec{
		"one-chunk":     {Limit: 64, Batch: 64},
		"multi-chunk":   {Limit: 900, Batch: 100},
		"cross-region":  {Limit: 2000, Batch: 250},
		"range":         {Start: scanKey(500), Stop: scanKey(3500), Limit: 700, Batch: 70},
		"filtered":      {Limit: 300, Batch: 50, Filter: func(r RowResult) bool { return len(r.Get("v"))%2 == 0 }},
		"beyond-table":  {Limit: 100_000, Batch: 500},
		"exactly-table": {Limit: 4000, Batch: 400},
	}
	for name, spec := range specs {
		seqSpec, parSpec := spec, spec
		seqSpec.Sequential = true
		seq, _ := drainSpec(t, c, seqSpec)
		par, parStats := drainSpec(t, c, parSpec)
		if len(seq) == 0 {
			t.Fatalf("%s: fixture returned no rows", name)
		}
		requireSameRows(t, seq, par)
		// Early termination must actually stop the workers: speculative
		// overfetch is bounded by limit rows per region.
		if spec.Limit > 0 && parStats.RowsReturned > int64(spec.Limit)*8 {
			t.Fatalf("%s: shipped %d rows, bound %d", name, parStats.RowsReturned, spec.Limit*8)
		}
	}
}

// A limit scan below one chunk keeps the sequential early-termination path
// even without spec.Sequential.
func TestScanSmallLimitStaysSequential(t *testing.T) {
	_, c := buildScanFixture(t, 4000, 8)
	ctx := sim.NewCtx()
	sc, err := c.Scan(ctx, "t", ScanSpec{Limit: 5, Batch: 100})
	if err != nil {
		t.Fatal(err)
	}
	if sc.par != nil {
		t.Fatal("Limit < chunk size must not scatter-gather")
	}
	if rows := sc.All(ctx); len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
}

func TestScanCloseReleasesWorkers(t *testing.T) {
	_, c := buildScanFixture(t, 4000, 8)
	before := runtime.NumGoroutine()
	ctx := sim.NewCtx()
	sc, err := c.Scan(ctx, "t", ScanSpec{Batch: 16}) // small batches keep workers alive
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sc.Next(ctx); !ok {
		t.Fatal("expected at least one row")
	}
	sc.Close(ctx)
	if _, ok := sc.Next(ctx); ok {
		t.Fatal("Next after Close must report exhaustion")
	}
	// Abandoned fetch work is still charged.
	if ctx.Elapsed() <= 0 {
		t.Fatal("closed scan charged nothing")
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("scatter-gather workers leaked: %d goroutines, started with %d", n, before)
	}
}

// Prefix scans auto-select mode and must stay correct either way.
func TestScanPrefixAcrossRegions(t *testing.T) {
	hc := NewHCluster(cluster.NewDefault(nil), nil, nil)
	mustCreate(t, hc, TableSpec{Name: "t", SplitKeys: []string{"user/3", "user/6"}})
	c := hc.NewWarmClient()
	ctx := sim.NewCtx()
	for i := 0; i < 9; i++ {
		c.Put(ctx, "t", fmt.Sprintf("user/%d", i), []Cell{put("v", fmt.Sprint(i), 0)})
	}
	c.Put(ctx, "t", "zother", []Cell{put("v", "no", 0)})
	for _, sequential := range []bool{true, false} {
		sc, _ := c.Scan(sim.NewCtx(), "t", ScanSpec{Prefix: "user/", Sequential: sequential})
		rows := sc.All(sim.NewCtx())
		if len(rows) != 9 {
			t.Fatalf("sequential=%v: prefix rows = %d, want 9", sequential, len(rows))
		}
	}
}
