package hbase

import "sort"

// rowData holds every retained cell version of one row, sorted by
// (qualifier ascending, timestamp descending, tombstones before puts at equal
// timestamps) — the HBase KeyValue sort order. Row-wide delete tombstones use
// the empty qualifier so they sort first.
type rowData struct {
	cells []Cell
}

// cellLess orders cells within a row.
func cellLess(a, b Cell) bool {
	if a.Qualifier != b.Qualifier {
		return a.Qualifier < b.Qualifier
	}
	if a.TS != b.TS {
		return a.TS > b.TS // newest first
	}
	return a.Type > b.Type // tombstones (higher type value) first
}

// apply inserts one cell, keeping sort order and trimming put versions of
// the qualifier beyond maxVersions. Tombstones are retained until compaction.
func (r *rowData) apply(c Cell, maxVersions int) {
	i := sort.Search(len(r.cells), func(i int) bool { return !cellLess(r.cells[i], c) })
	if i < len(r.cells) && r.cells[i].Qualifier == c.Qualifier && r.cells[i].TS == c.TS && r.cells[i].Type == c.Type {
		r.cells[i] = c // same coordinates: overwrite in place
		return
	}
	r.cells = append(r.cells, Cell{})
	copy(r.cells[i+1:], r.cells[i:])
	r.cells[i] = c

	if c.Type != TypePut {
		return
	}
	// Trim surplus put versions of this qualifier.
	puts := 0
	for j := i; j < len(r.cells) && r.cells[j].Qualifier == c.Qualifier; j++ {
		if r.cells[j].Type != TypePut {
			continue
		}
		puts++
		if puts > maxVersions {
			r.cells = append(r.cells[:j], r.cells[j+1:]...)
			j--
		}
	}
}

// read materializes the latest visible value per qualifier, honoring
// tombstones and the read options' version filters. Returns nil when no cell
// is visible (row absent). The cell index is sorted ascending by qualifier,
// so the produced pair slice is born sorted — no consumer ever re-sorts.
func (r *rowData) read(opts ReadOpts) Cells {
	if len(r.cells) == 0 {
		return nil
	}
	// Newest visible row-wide tombstone.
	var rowDelTS int64 = -1
	for _, c := range r.cells {
		if c.Qualifier != "" {
			break
		}
		if c.Type == TypeDeleteRow && opts.visible(c.TS) {
			rowDelTS = c.TS
			break
		}
	}

	// The slice is allocated only once a visible cell is found, so fully
	// tombstoned or invisible rows cost no allocation; it is presized to
	// the remaining qualifier-group count so wide rows never regrow. One
	// allocation per visible row — the map representation paid two (header
	// + buckets) and lost the qualifier order.
	var out Cells
	i := 0
	for i < len(r.cells) {
		q := r.cells[i].Qualifier
		j := i
		for j < len(r.cells) && r.cells[j].Qualifier == q {
			j++
		}
		if q != "" && opts.wantsColumn(q) {
			for k := i; k < j; k++ {
				c := r.cells[k]
				if !opts.visible(c.TS) {
					continue
				}
				if c.Type == TypeDeleteCol {
					break // hides everything older
				}
				if c.TS <= rowDelTS {
					break // hidden by row tombstone
				}
				if out == nil {
					out = make(Cells, 0, r.qualifiersFrom(i))
				}
				out = append(out, Pair{Qualifier: q, Value: c.Value})
				break
			}
		}
		i = j
	}
	return out
}

// qualifiersFrom counts distinct qualifiers from cell index i on.
func (r *rowData) qualifiersFrom(i int) int {
	n := 0
	for j := i; j < len(r.cells); {
		q := r.cells[j].Qualifier
		n++
		for j < len(r.cells) && r.cells[j].Qualifier == q {
			j++
		}
	}
	return n
}

// compact rewrites the row keeping only the newest maxVersions put cells per
// qualifier that survive tombstones, and drops the tombstones themselves —
// major-compaction semantics.
func (r *rowData) compact(maxVersions int) {
	var rowDelTS int64 = -1
	for _, c := range r.cells {
		if c.Qualifier != "" {
			break
		}
		if c.Type == TypeDeleteRow {
			rowDelTS = c.TS
			break
		}
	}
	kept := r.cells[:0]
	i := 0
	for i < len(r.cells) {
		q := r.cells[i].Qualifier
		j := i
		for j < len(r.cells) && r.cells[j].Qualifier == q {
			j++
		}
		if q != "" {
			var colDel bool
			puts := 0
			for k := i; k < j; k++ {
				c := r.cells[k]
				if c.Type == TypeDeleteCol {
					colDel = true
					continue
				}
				if c.Type != TypePut || c.TS <= rowDelTS || colDel {
					continue
				}
				if puts < maxVersions {
					kept = append(kept, c)
					puts++
				}
			}
		}
		i = j
	}
	r.cells = kept
}

// sizeBytes reports the KeyValue-format footprint of the row.
func (r *rowData) sizeBytes(key string) int64 {
	var n int64
	for _, c := range r.cells {
		n += KVSize(key, c)
	}
	return n
}

// empty reports whether no cells remain.
func (r *rowData) empty() bool { return len(r.cells) == 0 }

// clone deep-copies the cell index (values are immutable by convention and
// shared).
func (r *rowData) clone() *rowData {
	return &rowData{cells: append([]Cell(nil), r.cells...)}
}

// merged returns a rowData combining the parts' cells in sort order. Parts
// must be given in precedence order (memstore first, then files newest
// first); the underlying merge is linear over the already-sorted parts
// rather than a re-sort, and stable, so earlier parts win coordinate ties.
func merged(parts ...*rowData) *rowData {
	live := make([]*rowData, 0, len(parts))
	for _, p := range parts {
		if p != nil {
			live = append(live, p)
		}
	}
	return &rowData{cells: mergeCellsInto(nil, live)}
}
