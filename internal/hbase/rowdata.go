package hbase

import "sort"

// rowData holds every retained cell version of one row, sorted by
// (qualifier ascending, timestamp descending, tombstones before puts at equal
// timestamps) — the HBase KeyValue sort order. Row-wide delete tombstones use
// the empty qualifier so they sort first.
type rowData struct {
	cells []Cell
}

// cellLess orders cells within a row.
func cellLess(a, b Cell) bool {
	if a.Qualifier != b.Qualifier {
		return a.Qualifier < b.Qualifier
	}
	if a.TS != b.TS {
		return a.TS > b.TS // newest first
	}
	return a.Type > b.Type // tombstones (higher type value) first
}

// apply inserts one cell, keeping sort order and trimming put versions of
// the qualifier beyond maxVersions. Tombstones are retained until compaction.
func (r *rowData) apply(c Cell, maxVersions int) {
	i := sort.Search(len(r.cells), func(i int) bool { return !cellLess(r.cells[i], c) })
	if i < len(r.cells) && r.cells[i].Qualifier == c.Qualifier && r.cells[i].TS == c.TS && r.cells[i].Type == c.Type {
		r.cells[i] = c // same coordinates: overwrite in place
		return
	}
	r.cells = append(r.cells, Cell{})
	copy(r.cells[i+1:], r.cells[i:])
	r.cells[i] = c

	if c.Type != TypePut {
		return
	}
	// Trim surplus put versions of this qualifier.
	puts := 0
	for j := i; j < len(r.cells) && r.cells[j].Qualifier == c.Qualifier; j++ {
		if r.cells[j].Type != TypePut {
			continue
		}
		puts++
		if puts > maxVersions {
			r.cells = append(r.cells[:j], r.cells[j+1:]...)
			j--
		}
	}
}

// read materializes the latest visible value per qualifier, honoring
// tombstones and the read options' version filters. Returns nil when no cell
// is visible (row absent). The cell index is sorted ascending by qualifier,
// so the produced pair slice is born sorted — no consumer ever re-sorts.
// The result is a fresh, caller-stable allocation (point reads hand it out
// forever); the scan path uses readInto to amortize the allocation into a
// per-chunk arena instead.
func (r *rowData) read(opts ReadOpts) Cells {
	pairs, _ := r.readInto(nil, opts)
	return pairs
}

// readInto is read appending into a caller-owned arena: the visible pairs
// of the row are appended to dst and returned both as the extended arena
// and as the row's own full-capacity-clipped window into it (nil when no
// cell is visible — such rows cost no arena space). The scan chunk path
// calls it once per row over one pooled arena, which is what turns the
// read path's dominant per-row allocation into a per-chunk one. Growth is
// safe mid-chunk: append relocations copy the arena, and earlier rows keep
// aliasing the abandoned block, which lives until the chunk is released.
//
// With a nil dst the first visible cell allocates a fresh slice presized
// to the remaining qualifier-group count (the point-read behavior: one
// exact allocation per visible row, none for invisible rows).
//
//cellsvet:owner
func (r *rowData) readInto(dst Cells, opts ReadOpts) (arena, row Cells) {
	if len(r.cells) == 0 {
		return dst, nil
	}
	// Newest visible row-wide tombstone.
	var rowDelTS int64 = -1
	for _, c := range r.cells {
		if c.Qualifier != "" {
			break
		}
		if c.Type == TypeDeleteRow && opts.visible(c.TS) {
			rowDelTS = c.TS
			break
		}
	}

	start := len(dst)
	i := 0
	for i < len(r.cells) {
		q := r.cells[i].Qualifier
		j := i
		for j < len(r.cells) && r.cells[j].Qualifier == q {
			j++
		}
		if q != "" && opts.wantsColumn(q) {
			for k := i; k < j; k++ {
				c := r.cells[k]
				if !opts.visible(c.TS) {
					continue
				}
				if c.Type == TypeDeleteCol {
					break // hides everything older
				}
				if c.TS <= rowDelTS {
					break // hidden by row tombstone
				}
				if dst == nil {
					dst = make(Cells, 0, r.qualifiersFrom(i))
				}
				dst = append(dst, Pair{Qualifier: q, Value: c.Value})
				break
			}
		}
		i = j
	}
	if len(dst) == start {
		return dst, nil
	}
	// Clip the row's capacity to its length: even an owner slipping an
	// append past the vet rule could then never clobber the next row.
	return dst, dst[start:len(dst):len(dst)]
}

// qualifiersFrom counts distinct qualifiers from cell index i on.
func (r *rowData) qualifiersFrom(i int) int {
	n := 0
	for j := i; j < len(r.cells); {
		q := r.cells[j].Qualifier
		n++
		for j < len(r.cells) && r.cells[j].Qualifier == q {
			j++
		}
	}
	return n
}

// compact rewrites the row keeping only the newest maxVersions put cells per
// qualifier that survive tombstones, and drops the tombstones themselves —
// major-compaction semantics.
func (r *rowData) compact(maxVersions int) {
	var rowDelTS int64 = -1
	for _, c := range r.cells {
		if c.Qualifier != "" {
			break
		}
		if c.Type == TypeDeleteRow {
			rowDelTS = c.TS
			break
		}
	}
	kept := r.cells[:0]
	i := 0
	for i < len(r.cells) {
		q := r.cells[i].Qualifier
		j := i
		for j < len(r.cells) && r.cells[j].Qualifier == q {
			j++
		}
		if q != "" {
			var colDel bool
			puts := 0
			for k := i; k < j; k++ {
				c := r.cells[k]
				if c.Type == TypeDeleteCol {
					colDel = true
					continue
				}
				if c.Type != TypePut || c.TS <= rowDelTS || colDel {
					continue
				}
				if puts < maxVersions {
					kept = append(kept, c)
					puts++
				}
			}
		}
		i = j
	}
	r.cells = kept
}

// sizeBytes reports the KeyValue-format footprint of the row.
func (r *rowData) sizeBytes(key string) int64 {
	var n int64
	for _, c := range r.cells {
		n += KVSize(key, c)
	}
	return n
}

// empty reports whether no cells remain.
func (r *rowData) empty() bool { return len(r.cells) == 0 }

// clone deep-copies the cell index (values are immutable by convention and
// shared).
func (r *rowData) clone() *rowData {
	return &rowData{cells: append([]Cell(nil), r.cells...)}
}

// merged returns a rowData combining the parts' cells in sort order. Parts
// must be given in precedence order (memstore first, then files newest
// first); the underlying merge is linear over the already-sorted parts
// rather than a re-sort, and stable, so earlier parts win coordinate ties.
func merged(parts ...*rowData) *rowData {
	live := make([]*rowData, 0, len(parts))
	for _, p := range parts {
		if p != nil {
			live = append(live, p)
		}
	}
	return &rowData{cells: mergeCellsInto(nil, live)}
}
