package hbase

import (
	"sync"
	"sync/atomic"

	"synergy/internal/sim"
)

// Mutation is one row write — a put or a delete — destined for a batch RPC.
// A batch may span tables: the Synergy write path fans one logical write
// into base-table, view and index mutations, and the client groups them by
// region regardless of table.
type Mutation struct {
	Table string
	Key   string
	// Cells are the put payload; ignored for deletes.
	Cells []Cell
	// Delete marks the mutation as a tombstone write instead of a put.
	Delete bool
	// TS stamps the tombstone (deletes) or any zero-timestamp cell (puts);
	// 0 uses the server clock at apply time.
	TS int64
	// Qualifiers restricts a delete to specific columns; empty deletes the
	// whole row.
	Qualifiers []string
	// CheckAndPut marks the mutation conditional: at apply time the single
	// cell in Cells lands via the region's atomic CheckAndPut iff the
	// current visible value of (Key, CheckQualifier) equals CheckExpected
	// (nil = must be absent). A failed check is not an error — the mutation
	// is simply skipped, and only applied conditionals pay the put/WAL
	// costs, exactly like the eager Client.CheckAndPut. The Synergy commit
	// protocol uses this to fold lock-table maintenance into the commit
	// flush instead of paying eager round trips.
	CheckAndPut    bool
	CheckQualifier string
	CheckExpected  []byte
}

// PutMutation builds a put.
func PutMutation(tbl, key string, cells []Cell, ts int64) Mutation {
	return Mutation{Table: tbl, Key: key, Cells: cells, TS: ts}
}

// DeleteMutation builds a row (or column) tombstone write.
func DeleteMutation(tbl, key string, ts int64, qualifiers ...string) Mutation {
	return Mutation{Table: tbl, Key: key, Delete: true, TS: ts, Qualifiers: qualifiers}
}

// CheckAndPutMutation builds a conditional single-cell put, resolved
// atomically against the row's current state at apply time (expected nil =
// the qualifier must be absent).
func CheckAndPutMutation(tbl, key, qualifier string, expected []byte, cell Cell) Mutation {
	return Mutation{Table: tbl, Key: key, Cells: []Cell{cell}, CheckAndPut: true, CheckQualifier: qualifier, CheckExpected: expected}
}

// bytes approximates the wire size of the mutation inside a batch RPC,
// matching what the eager Put/DeleteAt/CheckAndPut paths charge for the
// same mutation so batched and sequential runs stay byte-for-byte
// comparable.
func (m *Mutation) bytes() int {
	if m.Delete {
		return len(m.Key) + 32
	}
	n := 0
	for _, c := range m.Cells {
		n += len(m.Key) + len(c.Qualifier) + len(c.Value) + kvOverhead
	}
	if m.CheckAndPut {
		n += len(m.CheckExpected)
	}
	return n
}

// regionGroup is the slice of a batch destined for one region, applied under
// one (or, above MutateMaxBatch, a few) simulated RPCs.
type regionGroup struct {
	region *Region
	muts   []Mutation
}

// MutateBatch applies a group of puts and deletes as real HBase's
// Table.batch/BufferedMutator does: mutations are grouped by region, each
// region's group travels in one batch RPC with one WAL sync (groups larger
// than Costs.MutateMaxBatch split into several RPCs), and independent
// regions are dispatched in parallel with fork/join cost accounting — the
// caller waits for the slowest region, not the sum.
//
// Mutations keep their relative order within a row (same row ⇒ same region ⇒
// same ordered group). Zero timestamps are stamped in batch order before
// dispatch, so results are deterministic regardless of goroutine scheduling
// and match what the same sequence of Put/DeleteAt calls would have written.
func (c *Client) MutateBatch(ctx *sim.Ctx, muts []Mutation) error {
	_, err := c.mutateBatch(ctx, muts)
	return err
}

// mutateBatch is MutateBatch plus the batch's high timestamp: the largest
// stamp assigned to (or carried by) any mutation in the batch, which is the
// commit timestamp the changefeed records for asynchronously maintained
// views. Zero when the batch is empty.
func (c *Client) mutateBatch(ctx *sim.Ctx, muts []Mutation) (int64, error) {
	if len(muts) == 0 {
		return 0, nil
	}
	// Resolve tables first so an unknown table fails before any mutation is
	// applied, and the meta-cache charges land once per table.
	tables := make(map[string]*table)
	for i := range muts {
		if _, ok := tables[muts[i].Table]; ok {
			continue
		}
		t, err := c.hc.lookup(muts[i].Table)
		if err != nil {
			return 0, err
		}
		c.prepare(ctx, t)
		tables[muts[i].Table] = t
	}
	// Stamp server-side timestamps in batch order, one per mutation as the
	// eager path does, then group by region preserving arrival order.
	var maxTS int64
	var groups []*regionGroup
	byRegion := make(map[*Region]*regionGroup)
	for _, m := range muts {
		if m.TS == 0 {
			m.TS = c.hc.NextTS()
		}
		if m.TS > maxTS {
			maxTS = m.TS
		}
		if !m.Delete {
			stamped := make([]Cell, len(m.Cells))
			for i, cell := range m.Cells {
				if cell.TS == 0 {
					cell.TS = m.TS
				}
				if cell.TS > maxTS {
					maxTS = cell.TS
				}
				stamped[i] = cell
			}
			m.Cells = stamped
		}
		r := tables[m.Table].regionFor(m.Key)
		g := byRegion[r]
		if g == nil {
			g = &regionGroup{region: r}
			byRegion[r] = g
			groups = append(groups, g)
		}
		g.muts = append(g.muts, m)
	}

	if len(groups) == 1 {
		c.applyGroup(ctx, groups[0])
		return maxTS, nil
	}
	// Independent regions dispatch in parallel in the modeled system:
	// fork/join accounting charges the caller max(region elapsed), not the
	// sum, and the Join is order-independent — so whether the groups apply
	// on the caller or on real workers, the simulated results are identical.
	//
	// Small batches (at most mutateInlineGroups regions) apply inline on the
	// caller: goroutine dispatch for two or three memstore inserts costs more
	// than it saves, and the serial apply keeps the dirty-mark window tight.
	// Larger fan-outs — a view-maintaining write touching many regions —
	// apply on a bounded pool of Costs.MutateParallelism lanes, each group
	// claimed exactly once off a shared counter. The caller is lane zero and
	// keeps draining groups itself, so a flush is never slower than the old
	// serial apply while spawned helpers get scheduled — that matters to the
	// OCC path, where flush wall-time is a window other transactions' begin
	// snapshots are lowered through. Timestamps were stamped in batch order
	// above, the groups hold disjoint regions, and the WAL counters are
	// lock-protected, so lane scheduling cannot change what is written; the
	// Join below is a max over children regardless of completion order.
	children := make([]*sim.Ctx, len(groups))
	if len(groups) <= mutateInlineGroups || len(muts) < mutatePoolMinMuts {
		for i, g := range groups {
			children[i] = ctx.Fork()
			c.applyGroup(children[i], g)
		}
	} else {
		var next atomic.Int64
		drain := func() {
			for {
				i := int(next.Add(1)) - 1
				if i >= len(groups) {
					return
				}
				children[i] = ctx.Fork()
				c.applyGroup(children[i], groups[i])
			}
		}
		helpers := c.hc.costs.MutateParallelism - 1
		if max := len(groups) - 1; helpers > max {
			helpers = max
		}
		var wg sync.WaitGroup
		wg.Add(helpers)
		for w := 0; w < helpers; w++ {
			go func() {
				defer wg.Done()
				drain()
			}()
		}
		drain()
		wg.Wait()
	}
	ctx.Join(children...)
	return maxTS, nil
}

// mutateInlineGroups is the region-group count at or below which MutateBatch
// applies inline on the caller instead of dispatching the worker pool, and
// mutatePoolMinMuts is the batch size below which it stays inline no matter
// how many regions the batch touches: scheduling helpers costs microseconds
// of wall time, which only amortizes when the lanes have real work — and an
// OCC commit's flush window must stay tight, since in-flight flush
// watermarks lower every concurrent transaction's begin snapshot.
const (
	mutateInlineGroups = 3
	mutatePoolMinMuts  = 64
)

// applyGroup ships one region's mutations, splitting at MutateMaxBatch. Each
// sub-batch pays one RPC + batch overhead + one WAL sync, plus the per-
// mutation apply costs. A single-mutation sub-batch charges exactly what
// the eager Put/DeleteAt path charges — there is nothing to amortize, so
// batching a lone mutation must not cost extra.
func (c *Client) applyGroup(ctx *sim.Ctx, g *regionGroup) {
	hc := c.hc
	maxBatch := hc.costs.MutateMaxBatch
	if maxBatch <= 0 {
		maxBatch = len(g.muts)
	}
	for off := 0; off < len(g.muts); off += maxBatch {
		chunk := g.muts[off:min(off+maxBatch, len(g.muts))]
		// Resolve the hosting server per sub-batch RPC: a balancer move
		// between sub-batches routes the rest of the group (and its WAL
		// edits) to the region's new owner.
		srv := g.region.Server()
		bytes := 0
		cas := 0
		for i := range chunk {
			bytes += chunk[i].bytes()
			if chunk[i].CheckAndPut {
				cas++
			}
		}
		hc.cl.RPC(ctx, c.node, srv, bytes)
		// Unconditional mutations pay PutApply up front; conditionals pay
		// the CheckAndPut compare, and the apply cost only if the check
		// passes — mirroring the eager paths mutation by mutation.
		serverCost := sim.Micros(int64(len(chunk)-cas) * int64(hc.costs.PutApply))
		serverCost += sim.Micros(int64(cas) * int64(hc.costs.CheckAndPut))
		if len(chunk) > 1 {
			serverCost += hc.costs.MutateBatchOverhead
			serverCost += sim.Micros(int64(len(chunk)) * int64(hc.costs.MutatePerMutation))
		}
		hc.serverWork(ctx, srv, serverCost)
		if cas == 0 {
			hc.walAppendBatch(ctx, srv, bytes, len(chunk))
			for i := range chunk {
				m := &chunk[i]
				if m.Delete {
					g.region.deleteRow(m.Key, m.TS, m.Qualifiers)
				} else {
					g.region.put(m.Key, m.Cells)
				}
			}
			continue
		}
		// Conditional mutations reach the WAL only when applied, so the
		// sub-batch applies first and syncs the surviving edits after — the
		// same total the eager path charges, one sync instead of many.
		walBytes, walMuts := 0, 0
		for i := range chunk {
			m := &chunk[i]
			switch {
			case m.CheckAndPut:
				if g.region.checkAndPut(m.Key, m.CheckQualifier, m.CheckExpected, m.Cells[0]) {
					hc.serverWork(ctx, srv, hc.costs.PutApply)
					walBytes += m.bytes()
					walMuts++
				}
			case m.Delete:
				g.region.deleteRow(m.Key, m.TS, m.Qualifiers)
				walBytes += m.bytes()
				walMuts++
			default:
				g.region.put(m.Key, m.Cells)
				walBytes += m.bytes()
				walMuts++
			}
		}
		if walMuts > 0 {
			hc.walAppendBatch(ctx, srv, walBytes, walMuts)
		}
	}
}

// BufferedMutator accumulates mutations and flushes them as batch RPCs, the
// client-side write pipeline of the batched mutation path. In sequential
// mode it degenerates to the eager per-mutation Put/DeleteAt path, which is
// what the batched-vs-sequential benchmarks and parity tests compare
// against.
//
// Buffered mutations are additionally indexed into a read-your-writes
// overlay (see ReadView): a transaction that owns the mutator reads its own
// pending writes merged over the store, while nothing is visible to anyone
// else until Flush. Discard drops the pending buffer without applying it —
// the abort path of a transaction-scoped mutator.
//
// A BufferedMutator is not safe for concurrent use; like a Scanner it
// belongs to one request.
type BufferedMutator struct {
	c *Client
	// max triggers an auto-flush when the buffer reaches it; transaction-
	// scoped mutators disable it so nothing persists before a barrier.
	max        int
	sequential bool
	// ryw maintains the read-your-writes overlay. Only transaction-scoped
	// mutators pay for it — statement-scoped batches are flushed before
	// anything reads, so indexing their mutations would be pure overhead.
	ryw     bool
	muts    []Mutation
	overlay map[string]*overlayTable
	seq     int64 // synthetic overlay timestamps for unstamped mutations
	// flushTS is the high timestamp across every flush so far — the commit
	// timestamp a transaction's changefeed deltas are tagged with.
	flushTS int64
}

// NewBufferedMutator returns a mutator that auto-flushes at
// Costs.MutateMaxBatch buffered mutations. sequential selects the eager
// per-mutation path instead of batching.
func (c *Client) NewBufferedMutator(sequential bool) *BufferedMutator {
	max := c.hc.costs.MutateMaxBatch
	if max <= 0 {
		max = 1 << 30
	}
	return &BufferedMutator{c: c, max: max, sequential: sequential}
}

// NewTxMutator returns a transaction-scoped mutator: auto-flush is
// disabled, so nothing reaches the store before an explicit Flush — a
// protocol phase barrier or the transaction's commit — and Discard is a
// true no-op abort. Flushing still splits oversized region groups at
// Costs.MutateMaxBatch per RPC. There is deliberately no sequential
// variant: eager writes would break every guarantee above (transactions
// that want the eager path simply run without a transaction mutator).
func (c *Client) NewTxMutator() *BufferedMutator {
	return &BufferedMutator{c: c, max: 1 << 30, ryw: true}
}

// Sequential reports whether the mutator issues mutations eagerly.
func (m *BufferedMutator) Sequential() bool { return m.sequential }

// Pending reports the buffered, unflushed mutation count.
func (m *BufferedMutator) Pending() int { return len(m.muts) }

// Put buffers (or, sequentially, issues) a row put.
func (m *BufferedMutator) Put(ctx *sim.Ctx, tbl, key string, cells []Cell) error {
	if m.sequential {
		return m.c.Put(ctx, tbl, key, cells)
	}
	return m.add(ctx, PutMutation(tbl, key, cells, 0))
}

// Delete buffers (or issues) a row/column tombstone with an explicit
// timestamp (0 = server clock).
func (m *BufferedMutator) Delete(ctx *sim.Ctx, tbl, key string, ts int64, qualifiers ...string) error {
	if m.sequential {
		return m.c.DeleteAt(ctx, tbl, key, ts, qualifiers...)
	}
	return m.add(ctx, DeleteMutation(tbl, key, ts, qualifiers...))
}

// CheckAndPut buffers a conditional single-cell put resolved atomically at
// flush time (or, sequentially, issues it eagerly, discarding the outcome).
// Deferred conditionals suit writes that are idempotent housekeeping — lock
// table maintenance — where the caller does not branch on the result.
func (m *BufferedMutator) CheckAndPut(ctx *sim.Ctx, tbl, key, qualifier string, expected []byte, cell Cell) error {
	if m.sequential {
		_, err := m.c.CheckAndPut(ctx, tbl, key, qualifier, expected, cell)
		return err
	}
	return m.add(ctx, CheckAndPutMutation(tbl, key, qualifier, expected, cell))
}

func (m *BufferedMutator) add(ctx *sim.Ctx, mut Mutation) error {
	if m.muts == nil {
		m.muts = m.c.getMutBuf()
	}
	m.muts = append(m.muts, mut)
	m.overlayApply(mut)
	if len(m.muts) >= m.max {
		return m.Flush(ctx)
	}
	return nil
}

// overlayApply indexes one buffered mutation into the read-your-writes
// overlay. The buffered Mutation itself is left untouched (its zero
// timestamps are stamped at flush time); the overlay applies copies carrying
// either the mutation's explicit timestamp or a synthetic one above every
// store timestamp, so the pending version wins the merge exactly as the
// flushed version will.
func (m *BufferedMutator) overlayApply(mut Mutation) {
	if !m.ryw || m.sequential {
		return // nobody reads through this buffer before it flushes
	}
	if mut.CheckAndPut {
		// Conditional outcomes are unknowable client-side, and the lock
		// housekeeping that uses them is never read through the overlay.
		return
	}
	if m.overlay == nil {
		m.overlay = m.c.getOverlay()
	}
	ot := m.overlay[mut.Table]
	if ot == nil {
		ot = m.c.getOverlayTable()
		m.overlay[mut.Table] = ot
	}
	rd := ot.upsert(mut.Key)
	ts := mut.TS
	if ts == 0 {
		m.seq++
		ts = overlayTSBase + m.seq
	}
	if mut.Delete {
		if len(mut.Qualifiers) == 0 {
			rd.apply(Cell{TS: ts, Type: TypeDeleteRow}, overlayKeep)
			return
		}
		for _, q := range mut.Qualifiers {
			rd.apply(Cell{Qualifier: q, TS: ts, Type: TypeDeleteCol}, overlayKeep)
		}
		return
	}
	for _, c := range mut.Cells {
		if c.TS == 0 {
			c.TS = ts
		}
		rd.apply(c, overlayKeep)
	}
}

// pendingTable returns the overlay index for a table, or nil when nothing
// is pending there.
func (m *BufferedMutator) pendingTable(tbl string) *overlayTable {
	if m.overlay == nil {
		return nil
	}
	return m.overlay[tbl]
}

// pendingRow returns the pending cells of one row, or nil.
func (m *BufferedMutator) pendingRow(tbl, key string) *rowData {
	if ot := m.pendingTable(tbl); ot != nil {
		return ot.rows[key]
	}
	return nil
}

// StampPending assigns a store timestamp to every unstamped pending
// mutation in buffer order, drawing from next (cells inherit the mutation's
// stamp at flush, as flush-time stamping does). OCC commits call this under
// the validator's lock, so a commit's stamps form a block that no snapshot
// horizon or other commit's watermark can land inside — which is what makes
// a multi-mutation commit atomic to snapshot readers and the validator's
// fully-visible-iff-older check sound. Returns the pending mutation count.
func (m *BufferedMutator) StampPending(next func() int64) int {
	for i := range m.muts {
		if m.muts[i].TS == 0 {
			m.muts[i].TS = next()
		}
	}
	return len(m.muts)
}

// Flush ships every buffered mutation. A flush boundary is also an ordering
// barrier: everything buffered before it is applied before anything added
// after, which is what the dirty-mark / update / un-mark phases of the
// Synergy write protocol rely on. Once flushed, the overlay empties — the
// writes are in the store and plain reads see them.
func (m *BufferedMutator) Flush(ctx *sim.Ctx) error {
	if len(m.muts) == 0 {
		return nil
	}
	muts := m.muts
	m.muts = nil
	if m.overlay != nil {
		m.c.putOverlay(m.overlay)
		m.overlay = nil
	}
	ts, err := m.c.mutateBatch(ctx, muts)
	if ts > m.flushTS {
		m.flushTS = ts
	}
	m.c.putMutBuf(muts)
	return err
}

// FlushTS reports the highest store timestamp any flush of this mutator has
// stamped (zero before the first flush). After a transaction's final flush
// it is the transaction's commit timestamp: every cell the transaction wrote
// carries a stamp ≤ FlushTS, so a view watermark at FlushTS covers it.
func (m *BufferedMutator) FlushTS() int64 { return m.flushTS }

// Discard drops every buffered mutation (and the overlay) without applying
// anything — the abort path of a transaction-scoped mutator. Mutations
// already flushed (phase barriers, auto-flush) are durable and are not
// undone here; transaction layers handle their visibility (MVCC
// invalidation, dirty-mark cleanup).
func (m *BufferedMutator) Discard() {
	if m.muts != nil {
		m.c.putMutBuf(m.muts)
		m.muts = nil
	}
	if m.overlay != nil {
		m.c.putOverlay(m.overlay)
		m.overlay = nil
	}
}
