package hbase

import (
	"fmt"
	"testing"
	"testing/quick"
)

func put(q, v string, ts int64) Cell {
	return Cell{Qualifier: q, Value: []byte(v), TS: ts}
}

func TestRowDataLatestWins(t *testing.T) {
	rd := &rowData{}
	rd.apply(put("a", "v1", 1), 3)
	rd.apply(put("a", "v2", 2), 3)
	got := rd.read(ReadOpts{})
	if string(got.Get("a")) != "v2" {
		t.Fatalf("read = %q, want v2", got.Get("a"))
	}
}

func TestRowDataVersionTrim(t *testing.T) {
	rd := &rowData{}
	for ts := int64(1); ts <= 5; ts++ {
		rd.apply(put("a", fmt.Sprintf("v%d", ts), ts), 2)
	}
	if n := len(rd.cells); n != 2 {
		t.Fatalf("retained %d versions, want 2", n)
	}
	if got := rd.read(ReadOpts{}); string(got.Get("a")) != "v5" {
		t.Fatalf("latest = %q, want v5", got.Get("a"))
	}
}

func TestRowDataSnapshotRead(t *testing.T) {
	rd := &rowData{}
	rd.apply(put("a", "old", 5), 10)
	rd.apply(put("a", "new", 9), 10)
	got := rd.read(ReadOpts{ReadTS: 7})
	if string(got.Get("a")) != "old" {
		t.Fatalf("snapshot@7 = %q, want old", got.Get("a"))
	}
}

func TestRowDataExcludedVersions(t *testing.T) {
	rd := &rowData{}
	rd.apply(put("a", "committed", 5), 10)
	rd.apply(put("a", "aborted", 8), 10)
	got := rd.read(ReadOpts{Excluded: func(ts int64) bool { return ts == 8 }})
	if string(got.Get("a")) != "committed" {
		t.Fatalf("read with exclusion = %q, want committed", got.Get("a"))
	}
}

func TestRowDataRowTombstone(t *testing.T) {
	rd := &rowData{}
	rd.apply(put("a", "v", 1), 10)
	rd.apply(put("b", "w", 2), 10)
	rd.apply(Cell{Qualifier: "", TS: 5, Type: TypeDeleteRow}, 10)
	if got := rd.read(ReadOpts{}); got != nil {
		t.Fatalf("read after row tombstone = %v, want nil", got)
	}
	// A put newer than the tombstone is visible again.
	rd.apply(put("a", "reborn", 7), 10)
	got := rd.read(ReadOpts{})
	if string(got.Get("a")) != "reborn" || got.Get("b") != nil {
		t.Fatalf("read = %v, want only a=reborn", got)
	}
}

func TestRowDataColumnTombstone(t *testing.T) {
	rd := &rowData{}
	rd.apply(put("a", "v", 1), 10)
	rd.apply(put("b", "w", 1), 10)
	rd.apply(Cell{Qualifier: "a", TS: 5, Type: TypeDeleteCol}, 10)
	got := rd.read(ReadOpts{})
	if got.Get("a") != nil || string(got.Get("b")) != "w" {
		t.Fatalf("read = %v, want only b=w", got)
	}
}

func TestRowDataColumnProjection(t *testing.T) {
	rd := &rowData{}
	rd.apply(put("a", "1", 1), 1)
	rd.apply(put("b", "2", 1), 1)
	rd.apply(put("c", "3", 1), 1)
	got := rd.read(ReadOpts{Columns: []string{"a", "c"}})
	if len(got) != 2 || got.Get("b") != nil {
		t.Fatalf("projection = %v, want a and c only", got)
	}
}

func TestRowDataCompactDropsTombstones(t *testing.T) {
	rd := &rowData{}
	rd.apply(put("a", "v1", 1), 10)
	rd.apply(put("a", "v2", 2), 10)
	rd.apply(Cell{Qualifier: "a", TS: 3, Type: TypeDeleteCol}, 10)
	rd.apply(put("a", "v3", 4), 10)
	rd.compact(1)
	if n := len(rd.cells); n != 1 {
		t.Fatalf("cells after compact = %d, want 1", n)
	}
	if got := rd.read(ReadOpts{}); string(got.Get("a")) != "v3" {
		t.Fatalf("read after compact = %q, want v3", got.Get("a"))
	}
}

func TestRowDataCompactRowTombstone(t *testing.T) {
	rd := &rowData{}
	rd.apply(put("a", "dead", 1), 10)
	rd.apply(Cell{Qualifier: "", TS: 5, Type: TypeDeleteRow}, 10)
	rd.compact(10)
	if !rd.empty() {
		t.Fatalf("compacted row should be empty, has %v", rd.cells)
	}
}

func TestRowDataSizeBytes(t *testing.T) {
	rd := &rowData{}
	rd.apply(put("col", "value", 1), 1)
	want := KVSize("rowkey", rd.cells[0])
	if got := rd.sizeBytes("rowkey"); got != want {
		t.Fatalf("sizeBytes = %d, want %d", got, want)
	}
}

func TestMergedPreservesOrder(t *testing.T) {
	a := &rowData{}
	a.apply(put("x", "newer", 5), 10)
	b := &rowData{}
	b.apply(put("x", "older", 2), 10)
	b.apply(put("y", "only", 1), 10)
	m := merged(a, b)
	got := m.read(ReadOpts{})
	if string(got.Get("x")) != "newer" || string(got.Get("y")) != "only" {
		t.Fatalf("merged read = %v", got)
	}
}

// Property: after applying any set of puts to a single qualifier, read
// returns the value with the maximum timestamp.
func TestRowDataMaxTSWinsProperty(t *testing.T) {
	f := func(tss []uint8) bool {
		if len(tss) == 0 {
			return true
		}
		rd := &rowData{}
		var maxTS int64 = -1
		var want string
		for _, u := range tss {
			ts := int64(u) + 1
			v := fmt.Sprintf("v%d", ts)
			rd.apply(put("q", v, ts), 1000)
			if ts >= maxTS {
				// Equal timestamps: last applied overwrites.
				maxTS = ts
				want = v
			}
		}
		got := rd.read(ReadOpts{})
		return string(got.Get("q")) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: read(ReadTS=k) never returns a cell with timestamp > k.
func TestRowDataSnapshotNeverFutureProperty(t *testing.T) {
	f := func(tss []uint8, readTS uint8) bool {
		rd := &rowData{}
		for _, u := range tss {
			ts := int64(u) + 1
			rd.apply(put("q", fmt.Sprintf("%d", ts), ts), 1000)
		}
		// ReadTS zero means "no snapshot bound", so test with ts >= 1.
		snap := int64(readTS) + 1
		got := rd.read(ReadOpts{ReadTS: snap})
		if got == nil {
			return true
		}
		var seen int64
		fmt.Sscanf(string(got.Get("q")), "%d", &seen)
		return seen <= snap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
