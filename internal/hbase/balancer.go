package hbase

import (
	"sort"
	"sync"

	"synergy/internal/sim"
	"synergy/internal/zk"
)

// Balancer is the load-triggered region balancer: a ZooKeeper-elected
// coordinator that watches per-region load counters, performs load splits,
// and moves the hottest region off the hottest server when that strictly
// improves the spread — HBase's StochasticLoadBalancer reduced to the greedy
// move that matters for the paper's hot-region experiment.
//
// Only the elected leader acts; every Balancer instance joins the
// /hbase/balancer election on its own ZooKeeper session, so a second
// instance (another process in the real system) is a hot standby that takes
// over when the leader's session closes. Ticks are explicit — tests and
// experiments call Tick (or Poke the background loop) at deterministic
// points instead of a wall-clock timer firing nondeterministically.
type Balancer struct {
	hc   *HCluster
	sess *zk.Session
	elec *zk.Election

	mu      sync.Mutex
	running bool
	poke    chan struct{}
	stop    chan struct{}
	done    chan struct{}

	moves  int64
	splits int64
}

// ServerLoad is one region server's summed load score in a balancer's view.
type ServerLoad struct {
	Server string
	Load   int64
}

// NewBalancer joins the balancer election on a fresh session against the
// deployment's ZooKeeper ensemble.
func (hc *HCluster) NewBalancer(name string) (*Balancer, error) {
	sess := hc.ens.NewSession()
	elec, err := zk.JoinElection(sess, "/hbase/balancer", name)
	if err != nil {
		sess.Close()
		return nil, err
	}
	return &Balancer{hc: hc, sess: sess, elec: elec}, nil
}

// IsLeader reports whether this balancer holds the election.
func (b *Balancer) IsLeader() bool {
	lead, err := b.elec.IsLeader()
	return err == nil && lead
}

// Moves reports how many region moves this balancer has performed.
func (b *Balancer) Moves() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.moves
}

// Splits reports how many load splits this balancer's ticks have triggered
// (measured as region-count growth across its split passes).
func (b *Balancer) Splits() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.splits
}

// Close resigns the election and releases the session. A running background
// loop must be stopped first.
func (b *Balancer) Close() {
	b.Stop()
	b.sess.Close()
}

// ServerLoads sums the decayed load score of every region per server, over
// all tables, sorted hottest first (ties lexicographic for determinism).
func (b *Balancer) ServerLoads() []ServerLoad {
	tally := make(map[string]int64)
	for _, s := range b.hc.Servers() {
		tally[s] = 0
	}
	for _, name := range b.hc.Tables() {
		t, err := b.hc.lookup(name)
		if err != nil {
			continue
		}
		for _, r := range t.regionsInRange("", "") {
			tally[r.Server()] += r.loadScore()
		}
	}
	out := make([]ServerLoad, 0, len(tally))
	for s, l := range tally {
		out = append(out, ServerLoad{Server: s, Load: l})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Load != out[j].Load {
			return out[i].Load > out[j].Load
		}
		return out[i].Server < out[j].Server
	})
	return out
}

// Tick runs one balancing pass, charging its coordination work to ctx (a
// background context, never a client request). A non-leader tick is a no-op.
// The pass: load splits first (a hot region might just be two hot halves),
// then at most one greedy move — the hottest region on the hottest server
// relocates to the coldest server, but only when that strictly narrows the
// hot/cold gap — then exponential decay of every region's counters, so
// sustained heat dominates history. Returns whether a move happened.
func (b *Balancer) Tick(ctx *sim.Ctx) bool {
	if !b.IsLeader() {
		return false
	}
	// Split pass: let hot regions halve before deciding moves.
	for _, name := range b.hc.Tables() {
		t, err := b.hc.lookup(name)
		if err != nil {
			continue
		}
		if t.spec.LoadSplitThreshold <= 0 {
			continue
		}
		before := b.hc.RegionCount(name)
		b.hc.splitIfNeeded(t)
		if grew := b.hc.RegionCount(name) - before; grew > 0 {
			b.mu.Lock()
			b.splits += int64(grew)
			b.mu.Unlock()
		}
	}

	moved := b.moveOnce(ctx)

	// Decay after acting: the counters accumulated since the last tick have
	// been consumed; halving them keeps the score an exponentially weighted
	// window rather than an all-time total.
	for _, name := range b.hc.Tables() {
		t, err := b.hc.lookup(name)
		if err != nil {
			continue
		}
		for _, r := range t.regionsInRange("", "") {
			r.decayLoad()
		}
	}
	return moved
}

// moveOnce performs the greedy move if one strictly improves the spread.
func (b *Balancer) moveOnce(ctx *sim.Ctx) bool {
	loads := b.ServerLoads()
	if len(loads) < 2 {
		return false
	}
	hot, cold := loads[0], loads[len(loads)-1]
	if hot.Load <= cold.Load {
		return false
	}
	// Hottest region on the hottest server — but not one carrying so much
	// load that moving it just swaps which server is hot. Prefer the largest
	// score that still strictly narrows the gap.
	var (
		bestT     *table
		bestR     *Region
		bestScore int64 = -1
	)
	for _, name := range b.hc.Tables() {
		t, err := b.hc.lookup(name)
		if err != nil {
			continue
		}
		for _, r := range t.regionsInRange("", "") {
			if r.Server() != hot.Server {
				continue
			}
			s := r.loadScore()
			if s <= bestScore {
				continue
			}
			// Strict improvement: the destination must stay cooler than the
			// source was, or the move only trades places.
			if cold.Load+s >= hot.Load {
				continue
			}
			bestT, bestR, bestScore = t, r, s
		}
	}
	if bestR == nil || bestScore <= 0 {
		return false
	}
	b.hc.moveRegion(ctx, bestT, bestR, cold.Server)
	b.mu.Lock()
	b.moves++
	b.mu.Unlock()
	return true
}

// Start launches the background balancing loop. The loop holds no timer: it
// ticks when Poke is called (experiments poke between waves) and exits on
// Stop. Each background tick charges a fresh context — balancer work never
// lands on a client request.
func (b *Balancer) Start() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.running {
		return
	}
	b.running = true
	b.poke = make(chan struct{}, 1)
	b.stop = make(chan struct{})
	b.done = make(chan struct{})
	go func(poke, stop chan struct{}, done chan struct{}) {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			case <-poke:
				b.Tick(sim.NewCtx())
			}
		}
	}(b.poke, b.stop, b.done)
}

// Poke requests one background tick; a tick already pending is enough.
// No-op when the loop is not running.
func (b *Balancer) Poke() {
	b.mu.Lock()
	poke := b.poke
	running := b.running
	b.mu.Unlock()
	if !running {
		return
	}
	select {
	case poke <- struct{}{}:
	default:
	}
}

// Stop terminates the background loop and waits for it to exit.
func (b *Balancer) Stop() {
	b.mu.Lock()
	if !b.running {
		b.mu.Unlock()
		return
	}
	b.running = false
	stop, done := b.stop, b.done
	b.mu.Unlock()
	close(stop)
	<-done
}
