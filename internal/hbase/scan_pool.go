package hbase

import "sync"

// scanPool is the client-owned bounded worker pool behind scatter-gather
// scans — the analogue of Phoenix's global intra-query thread pool, which
// is shared by every query a client runs rather than sized per scanner.
// sim.Costs.ScanParallelism is the pool size: a single wide scan fans out
// to at most that many concurrent region fetches, and concurrent scans on
// the same client queue behind one another instead of multiplying the
// fan-out (the oversubscription the per-Scanner pools of PR 1 allowed).
//
// Jobs are claimed with a CAS before they run, and the scan consumer may
// claim its next-needed region itself and fetch it inline when no worker
// has started it yet — the CallerRunsPolicy of the real thread pool. That
// caller-runs escape is also what makes the shared pool deadlock-free: a
// consumer never blocks waiting on a job that is still queued, so a pool
// saturated by blocked producers of one scan cannot strand another scan.
//
// Workers are spawned on demand, up to the pool size, and exit when the
// queue drains, so an idle client holds no goroutines.
type scanPool struct {
	size    int
	mu      sync.Mutex
	queue   []*scanJob
	workers int
}

func newScanPool(size int) *scanPool {
	if size < 1 {
		size = 1
	}
	return &scanPool{size: size}
}

// submit enqueues one region-drain job and tops the worker pool up. The
// queue is unbounded so submission never blocks the scanning request.
func (p *scanPool) submit(j *scanJob) {
	p.mu.Lock()
	p.queue = append(p.queue, j)
	spawn := p.workers < p.size
	if spawn {
		p.workers++
	}
	p.mu.Unlock()
	if spawn {
		go p.work()
	}
}

// work drains queued jobs until none remain, skipping jobs already claimed
// by a scan consumer (caller-runs) or a closing scan.
func (p *scanPool) work() {
	for {
		p.mu.Lock()
		var j *scanJob
		for len(p.queue) > 0 {
			j = p.queue[0]
			p.queue[0] = nil
			p.queue = p.queue[1:]
			if j.claim() {
				break
			}
			j = nil
		}
		if j == nil {
			p.workers--
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()
		j.run()
	}
}
