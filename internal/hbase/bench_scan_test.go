package hbase

import (
	"fmt"
	"testing"

	"synergy/internal/sim"
)

// BenchmarkScanMultiRegion compares the sequential and scatter-gather read
// paths over an 8-region table, reporting both wall-clock time and the
// deterministic simulated response time (sim-ms/op). The simulated cost
// shows the fork/join gain on any machine; the wall-clock gain additionally
// needs GOMAXPROCS >= the region count, since scatter-gather workers are
// CPU-bound (single-core runners serialize them).
func BenchmarkScanMultiRegion(b *testing.B) {
	const regions, rows = 8, 64_000
	_, c := buildScanFixture(b, rows, regions)
	for _, mode := range []struct {
		name       string
		sequential bool
	}{
		{"sequential", true},
		{"parallel", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var simTotal sim.Micros
			for i := 0; i < b.N; i++ {
				ctx := sim.NewCtx()
				sc, err := c.Scan(ctx, "t", ScanSpec{Sequential: mode.sequential})
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for {
					if _, ok := sc.Next(ctx); !ok {
						break
					}
					n++
				}
				if n == 0 {
					b.Fatal("scan returned no rows")
				}
				simTotal += ctx.Elapsed()
			}
			b.ReportMetric(simTotal.Milliseconds()/float64(b.N), "sim-ms/op")
		})
	}
}

// BenchmarkMajorCompact exercises the heap-based k-way store-file merge.
// The store files are immutable and shared across iterations; each
// iteration compacts a fresh Region wrapper around them.
func BenchmarkMajorCompact(b *testing.B) {
	const files, rowsPerFile = 8, 4_000
	spec := &TableSpec{Name: "t", MaxVersions: 1, SplitThreshold: 1 << 30}
	built := newRegion(spec, "", "")
	for f := 0; f < files; f++ {
		for i := 0; i < rowsPerFile; i++ {
			// Staggered keys so files interleave and most rows need a
			// multi-way cell merge.
			key := scanKey(i*2 + f%2)
			built.put(key, []Cell{put("v", fmt.Sprintf("f%d-%d", f, i), int64(f*rowsPerFile+i+1))})
		}
		built.flush()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := newRegion(spec, "", "")
		r.files = append([]*hfile(nil), built.files...)
		r.majorCompact()
	}
}

// BenchmarkRowDataRead measures the per-row materialization cost that every
// scanned row pays: tombstone resolution, version filtering and result-map
// construction.
func BenchmarkRowDataRead(b *testing.B) {
	rd := &rowData{}
	for q := 0; q < 8; q++ {
		for v := 0; v < 3; v++ {
			rd.apply(put(fmt.Sprintf("q%02d", q), fmt.Sprintf("val-%d-%d", q, v), int64(v+1)), 3)
		}
	}
	rd.apply(Cell{Qualifier: "q03", TS: 2, Type: TypeDeleteCol}, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := rd.read(ReadOpts{}); len(out) == 0 {
			b.Fatal("read returned nothing")
		}
	}
}

// BenchmarkScanChunkMerge isolates the server-side chunk path: heap merge
// across store files plus per-row reads, no client or RPC accounting.
func BenchmarkScanChunkMerge(b *testing.B) {
	const rows = 8_000
	spec := &TableSpec{Name: "t", MaxVersions: 1, SplitThreshold: 1 << 30}
	r := newRegion(spec, "", "")
	for f := 0; f < 4; f++ {
		for i := f; i < rows; i += 4 {
			r.put(scanKey(i), []Cell{put("v", fmt.Sprint(i), int64(i+1))})
		}
		r.flush()
	}
	buf := &chunkBuf{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.reset()
		if _, next := r.scanChunk(buf, "", 0, ReadOpts{}, nil); next != "" {
			b.Fatalf("next = %q, want exhausted", next)
		}
		if len(buf.rows) != rows {
			b.Fatalf("rows = %d, want %d", len(buf.rows), rows)
		}
	}
}
