// Package hbase is a simulated HBase: a column-family-oriented, horizontally
// partitioned, sorted key-value store modeled after the system the paper
// builds on (§II-C). It reproduces the pieces of HBase that the paper's
// results depend on:
//
//   - tables of rows sorted by row key, split into regions hosted by region
//     servers, so data really is distributed and cross-node work really does
//     pay network latency;
//   - the five-operation data manipulation API (Get, Put, Scan, Delete,
//     Increment) plus CheckAndPut, the atomic compare-and-set the Synergy
//     lock tables are built on (§VIII-A);
//   - multi-version cells with timestamps, which the Tephra-like MVCC layer
//     (internal/mvcc) uses for snapshot reads;
//   - memstore flushes, store files and major compaction, whose storage
//     format drives the disk-utilization comparison of Table III.
//
// All operations charge simulated latency to the caller's sim.Ctx via the
// shared cluster cost model.
package hbase

import (
	"fmt"
	"sort"
	"strings"
)

// CellType distinguishes data cells from tombstones.
type CellType byte

const (
	TypePut CellType = iota
	// TypeDeleteRow is a tombstone covering every cell of the row at or
	// before its timestamp.
	TypeDeleteRow
	// TypeDeleteCol is a tombstone covering one qualifier at or before its
	// timestamp.
	TypeDeleteCol
)

// Cell is one versioned value within a row. The reproduction uses a single
// column family per table (the paper's baseline transformation assigns all
// attributes to one family, §II-D), so cells carry only the qualifier.
type Cell struct {
	Qualifier string
	Value     []byte
	TS        int64
	Type      CellType
}

// kvOverhead approximates the fixed per-cell bytes of the HBase KeyValue
// wire/storage format: key length (4) + value length (4) + row length (2) +
// family length (1) + family ("0", 1 byte) + timestamp (8) + type (1) and
// block-index amortization. This per-cell overhead is the reason HBase
// databases are several times larger than packed-tuple stores (Table III).
const kvOverhead = 21

// KVSize returns the storage footprint of one cell in a row with the given
// key, following the HBase KeyValue format.
func KVSize(rowKey string, c Cell) int64 {
	return int64(kvOverhead + len(rowKey) + len(c.Qualifier) + len(c.Value))
}

// RowResult is the materialized latest-visible-version view of one row.
type RowResult struct {
	Key   string
	Cells map[string][]byte // qualifier -> value
}

// Empty reports whether the row has no visible cells.
func (r RowResult) Empty() bool { return len(r.Cells) == 0 }

// Get returns the value of a qualifier, or nil.
func (r RowResult) Get(qualifier string) []byte { return r.Cells[qualifier] }

// Bytes returns the approximate payload size of the row as shipped to a
// client.
func (r RowResult) Bytes() int {
	n := len(r.Key)
	for q, v := range r.Cells {
		n += kvOverhead + len(q) + len(v)
	}
	return n
}

// String renders the row compactly for debugging and tests.
func (r RowResult) String() string {
	quals := make([]string, 0, len(r.Cells))
	for q := range r.Cells {
		quals = append(quals, q)
	}
	sort.Strings(quals)
	var b strings.Builder
	fmt.Fprintf(&b, "%s{", r.Key)
	for i, q := range quals {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", q, r.Cells[q])
	}
	b.WriteByte('}')
	return b.String()
}

// ReadOpts control version visibility for Get and Scan.
type ReadOpts struct {
	// ReadTS, when non-zero, hides cells with a timestamp greater than it
	// (Tephra snapshot reads).
	ReadTS int64
	// Excluded, when non-nil, hides cells whose timestamp it reports true
	// for (Tephra's invalid/in-progress transaction list).
	Excluded func(ts int64) bool
	// Columns, when non-empty, restricts the result to these qualifiers.
	Columns []string
}

func (o ReadOpts) visible(ts int64) bool {
	if o.ReadTS != 0 && ts > o.ReadTS {
		return false
	}
	if o.Excluded != nil && o.Excluded(ts) {
		return false
	}
	return true
}

func (o ReadOpts) wantsColumn(q string) bool {
	if len(o.Columns) == 0 {
		return true
	}
	for _, c := range o.Columns {
		if c == q {
			return true
		}
	}
	return false
}

// TableSpec describes a table at creation time.
type TableSpec struct {
	Name string
	// MaxVersions bounds retained versions per qualifier (HBase column
	// family setting). Tables written through the MVCC layer need more
	// than one.
	MaxVersions int
	// SplitThreshold is the row count at which a region splits. Zero
	// selects the default.
	SplitThreshold int
	// SplitKeys optionally pre-splits the table into len(SplitKeys)+1
	// regions at creation, as bulk-loaded deployments do.
	SplitKeys []string
}

func (s *TableSpec) normalize() {
	if s.MaxVersions <= 0 {
		s.MaxVersions = 1
	}
	if s.SplitThreshold <= 0 {
		s.SplitThreshold = defaultSplitThreshold
	}
}

// defaultSplitThreshold keeps regions around the size a 10 GB HBase region
// would hold for our row sizes, scaled down to simulation scale.
const defaultSplitThreshold = 200_000
