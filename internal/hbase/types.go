// Package hbase is a simulated HBase: a column-family-oriented, horizontally
// partitioned, sorted key-value store modeled after the system the paper
// builds on (§II-C). It reproduces the pieces of HBase that the paper's
// results depend on:
//
//   - tables of rows sorted by row key, split into regions hosted by region
//     servers, so data really is distributed and cross-node work really does
//     pay network latency;
//   - the five-operation data manipulation API (Get, Put, Scan, Delete,
//     Increment) plus CheckAndPut, the atomic compare-and-set the Synergy
//     lock tables are built on (§VIII-A);
//   - multi-version cells with timestamps, which the Tephra-like MVCC layer
//     (internal/mvcc) uses for snapshot reads;
//   - memstore flushes, store files and major compaction, whose storage
//     format drives the disk-utilization comparison of Table III.
//
// All operations charge simulated latency to the caller's sim.Ctx via the
// shared cluster cost model.
package hbase

import (
	"strings"
)

// CellType distinguishes data cells from tombstones.
type CellType byte

const (
	TypePut CellType = iota
	// TypeDeleteRow is a tombstone covering every cell of the row at or
	// before its timestamp.
	TypeDeleteRow
	// TypeDeleteCol is a tombstone covering one qualifier at or before its
	// timestamp.
	TypeDeleteCol
)

// Cell is one versioned value within a row. The reproduction uses a single
// column family per table (the paper's baseline transformation assigns all
// attributes to one family, §II-D), so cells carry only the qualifier.
type Cell struct {
	Qualifier string
	Value     []byte
	TS        int64
	Type      CellType
}

// kvOverhead approximates the fixed per-cell bytes of the HBase KeyValue
// wire/storage format: key length (4) + value length (4) + row length (2) +
// family length (1) + family ("0", 1 byte) + timestamp (8) + type (1) and
// block-index amortization. This per-cell overhead is the reason HBase
// databases are several times larger than packed-tuple stores (Table III).
const kvOverhead = 21

// KVSize returns the storage footprint of one cell in a row with the given
// key, following the HBase KeyValue format.
func KVSize(rowKey string, c Cell) int64 {
	return int64(kvOverhead + len(rowKey) + len(c.Qualifier) + len(c.Value))
}

// Pair is one qualifier/value entry of a materialized row. Values are
// immutable by convention and shared with the store.
type Pair struct {
	Qualifier string
	Value     []byte
}

// Cells is the materialized latest-visible-version content of a row: a
// pair slice sorted ascending by qualifier. The slice form is the row hot
// path's representation of choice — a scan materializes one slice per row
// (a map costs two allocations and loses the order every merge, codec and
// print site then re-derives), Get is a binary search, and the merge sites
// (region k-way merge, read-your-writes overlay) consume the sortedness
// directly instead of rebuilding maps. Ranging over Cells IS the sorted
// qualifier iteration.
//
// Immutability is a hard rule, not a convention: a Cells produced by the
// read path may be a window into a per-chunk arena shared with every other
// row of its scan chunk, so appending to it, writing an element (or an
// element's field) through it, or re-slicing it beyond its length corrupts
// neighboring rows. cmd/cellsvet enforces the rule repo-wide in CI; the few
// legitimate producers (rowData.readInto, the overlay merge, Clone) are
// annotated `//cellsvet:owner` at their declaration.
//
// Lifetime: rows returned by a RowStream (Scanner.Next and the overlay
// scanner) are valid only until the stream's next Next or Close call —
// their Cells may alias a pooled chunk arena that is recycled when the
// scanner advances to the next chunk. Consumers that retain a scanned row
// must Clone it. Point reads (Client.Get, ReadView.Get) and rows already
// deep-copied by Clone are caller-stable forever. The Pair.Value byte
// slices are shared with the store and never recycled or overwritten, so
// values decoded or retained from a row stay valid regardless.
type Cells []Pair

// Clone returns a caller-stable deep copy of the pair slice (the values
// stay shared with the store; they are immutable and never recycled). Use
// it when retaining a scanned row beyond the stream's next Next/Close.
//
//cellsvet:owner
func (c Cells) Clone() Cells {
	if len(c) == 0 {
		return nil
	}
	out := make(Cells, len(c))
	copy(out, c)
	return out
}

// Get returns the value stored under a qualifier, or nil. Binary search
// over the sorted pairs — the slice analogue of the old map index.
func (c Cells) Get(qualifier string) []byte {
	lo, hi := 0, len(c)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c[mid].Qualifier < qualifier {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c) && c[lo].Qualifier == qualifier {
		return c[lo].Value
	}
	return nil
}

// sortedOK reports whether the pairs are strictly ascending by qualifier —
// the invariant every producer must uphold (fuzzed in cells_fuzz_test.go).
func (c Cells) sortedOK() bool {
	for i := 1; i < len(c); i++ {
		if c[i-1].Qualifier >= c[i].Qualifier {
			return false
		}
	}
	return true
}

// RowResult is the materialized latest-visible-version view of one row.
// Rows handed out by a RowStream follow the Cells lifetime rule: valid
// until the stream's next Next/Close, Clone to retain.
type RowResult struct {
	Key   string
	Cells Cells // sorted ascending by qualifier
}

// Clone returns a caller-stable deep copy of the row.
func (r RowResult) Clone() RowResult {
	return RowResult{Key: r.Key, Cells: r.Cells.Clone()}
}

// Empty reports whether the row has no visible cells.
func (r RowResult) Empty() bool { return len(r.Cells) == 0 }

// Get returns the value of a qualifier, or nil.
func (r RowResult) Get(qualifier string) []byte { return r.Cells.Get(qualifier) }

// SortedQualifiers returns the row's qualifiers in ascending order. The
// pair slice is already sorted, so this is a single pass with exactly one
// allocation for the returned slice — callers that only iterate should
// range over Cells directly, the zero-alloc sorted view. The result is
// owned by the caller; mutating it cannot corrupt the row.
func (r RowResult) SortedQualifiers() []string {
	if len(r.Cells) == 0 {
		return nil
	}
	quals := make([]string, len(r.Cells))
	for i := range r.Cells {
		quals[i] = r.Cells[i].Qualifier
	}
	return quals
}

// Bytes returns the approximate payload size of the row as shipped to a
// client.
func (r RowResult) Bytes() int {
	n := len(r.Key)
	for i := range r.Cells {
		n += kvOverhead + len(r.Cells[i].Qualifier) + len(r.Cells[i].Value)
	}
	return n
}

// String renders the row compactly for debugging and tests: one pass over
// the already-sorted pairs, no qualifier re-sort and no scratch slice.
func (r RowResult) String() string {
	var b strings.Builder
	b.Grow(len(r.Key) + 2 + 16*len(r.Cells))
	b.WriteString(r.Key)
	b.WriteByte('{')
	for i := range r.Cells {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(r.Cells[i].Qualifier)
		b.WriteByte('=')
		b.Write(r.Cells[i].Value)
	}
	b.WriteByte('}')
	return b.String()
}

// ReadOpts control version visibility for Get and Scan.
type ReadOpts struct {
	// ReadTS, when non-zero, hides cells with a timestamp greater than it
	// (Tephra snapshot reads).
	ReadTS int64
	// Excluded, when non-nil, hides cells whose timestamp it reports true
	// for (Tephra's invalid/in-progress transaction list).
	Excluded func(ts int64) bool
	// Columns, when non-empty, restricts the result to these qualifiers.
	Columns []string
}

func (o ReadOpts) visible(ts int64) bool {
	if o.ReadTS != 0 && ts > o.ReadTS {
		return false
	}
	if o.Excluded != nil && o.Excluded(ts) {
		return false
	}
	return true
}

func (o ReadOpts) wantsColumn(q string) bool {
	if len(o.Columns) == 0 {
		return true
	}
	for _, c := range o.Columns {
		if c == q {
			return true
		}
	}
	return false
}

// TableSpec describes a table at creation time.
type TableSpec struct {
	Name string
	// MaxVersions bounds retained versions per qualifier (HBase column
	// family setting). Tables written through the MVCC layer need more
	// than one.
	MaxVersions int
	// SplitThreshold is the row count at which a region splits. Zero
	// selects the default.
	SplitThreshold int
	// LoadSplitThreshold, when positive, additionally splits a region whose
	// decayed load score (examined-row reads + mutations since the last
	// balancer decay) exceeds it — HBase's request-based split policy for
	// hot regions that are nowhere near the size threshold. Zero disables
	// load splits, which is the default: size-only splitting is what every
	// pre-existing experiment calibrated against.
	LoadSplitThreshold int
	// SplitKeys optionally pre-splits the table into len(SplitKeys)+1
	// regions at creation, as bulk-loaded deployments do.
	SplitKeys []string
}

func (s *TableSpec) normalize() {
	if s.MaxVersions <= 0 {
		s.MaxVersions = 1
	}
	if s.SplitThreshold <= 0 {
		s.SplitThreshold = defaultSplitThreshold
	}
}

// defaultSplitThreshold keeps regions around the size a 10 GB HBase region
// would hold for our row sizes, scaled down to simulation scale.
const defaultSplitThreshold = 200_000
