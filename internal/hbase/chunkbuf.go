package hbase

// chunkBuf is the unit of scan memory: one scanner chunk's worth of
// materialized rows plus the single []Pair arena every row's Cells is a
// window into. The pair is what turns the read path's per-row allocations
// into per-chunk ones — Region.scanChunk fills one chunkBuf per scanner RPC
// (rowData.readInto appends each row's visible pairs to the shared arena),
// and the buffer cycles through a Client-owned sync.Pool once the consumer
// releases it.
//
// Ownership protocol (the release points that make pooling safe under the
// Cells lifetime rule):
//
//   - the sequential Scanner owns one chunkBuf and refills it in place —
//     each refill is a Next call, which is exactly when previously returned
//     rows become invalid; the buffer returns to the pool at exhaustion or
//     Close;
//   - scatter-gather workers (parScanner.drainRegion) fetch each chunk into
//     a fresh pooled buffer and hand it over the prefetch channel; the
//     consumer releases chunk N when it installs chunk N+1 (refill), or at
//     natural exhaustion;
//   - a closing scan releases only chunks no consumer ever saw: buffers
//     drained from the prefetch channels after the workers stop, and
//     buffers a cancelled worker failed to send. The consumer-visible
//     current chunk is deliberately left to the GC — Scanner.Next returns a
//     row and trims the scan in the same call when the limit is reached, so
//     that chunk may still back a row the caller is holding.
type chunkBuf struct {
	rows  []RowResult
	arena Cells
}

// reset drops every row and value reference while keeping both backing
// arrays at capacity, so a pooled buffer never pins row keys or cell
// values while idle.
func (b *chunkBuf) reset() {
	clear(b.rows[:cap(b.rows)])
	b.rows = b.rows[:0]
	clear(b.arena[:cap(b.arena)])
	b.arena = b.arena[:0]
}
