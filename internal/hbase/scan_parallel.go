package hbase

import (
	"sync"
	"sync/atomic"

	"synergy/internal/sim"
)

// chunkPrefetch bounds how many fetched-but-unconsumed batches each region
// stream may hold, so a fast producer cannot buffer an entire region ahead
// of the consumer.
const chunkPrefetch = 2

// parScanner is the scatter-gather engine behind Scanner: every in-range
// region becomes one drain job on the client's shared scan pool (see
// scanPool), and the consumer folds the per-region streams back into one
// key-ordered stream. Regions hold disjoint ascending key ranges, so the
// ordered merge delivers region i's buffered chunks before region i+1's
// while later regions prefetch in the background.
//
// Jobs the pool has not started by the time the consumer needs them are
// claimed and fetched inline on the consuming request (caller-runs), so a
// busy pool slows a scan down to at worst the sequential pace but can
// never stall it.
//
// Simulated cost follows fork/join semantics: each region stream charges its
// RPCs and per-row work to a forked child ctx, and when the scan finishes
// (or is closed early) the parent is charged max(child elapsed) plus a
// per-chunk merge cost — not the sum, since the region fetches overlap.
type parScanner struct {
	s       *Scanner
	streams []regionStream // one per region, in region (= key) order
	jobs    []scanJob      // one per region, claimed exactly once
	cancel  chan struct{}
	wg      sync.WaitGroup

	ci     int       // region currently being consumed
	cur    *chunkBuf // pooled buffer backing buf; released at the next install
	buf    []RowResult
	bi     int
	chunks int64 // chunks folded into the ordered stream
	width  int   // pool width the cost join models (0 = unbounded)
	joined bool

	// Caller-runs state: set while the consumer itself drains the claimed
	// region ci chunk-by-chunk instead of reading a worker's stream.
	inline       bool
	inlineEOF    bool
	inlineResume string
	inlineSent   int
}

type regionStream struct {
	ch  chan *chunkBuf
	ctx *sim.Ctx
}

// scanJob is one region's drain work, submitted to a scanPool. Whoever
// wins the claim — a pool worker, the consumer (caller-runs), or a closing
// scan sweeping unstarted jobs — owns the job's wg slot.
type scanJob struct {
	p     *parScanner
	idx   int
	taken atomic.Bool
}

// claim marks the job taken; only the winner may run (or discard) it.
func (j *scanJob) claim() bool { return j.taken.CompareAndSwap(false, true) }

// run drains the job's region on a pool worker.
func (j *scanJob) run() {
	defer j.p.wg.Done()
	j.p.drainRegion(j.idx)
}

// startParScan forks one child ctx per region and submits one drain job per
// region, in key order, to the pool — the stream the consumer needs next is
// always the oldest queued work.
func startParScan(ctx *sim.Ctx, s *Scanner, pool *scanPool) *parScanner {
	p := &parScanner{
		s:       s,
		streams: make([]regionStream, len(s.regions)),
		jobs:    make([]scanJob, len(s.regions)),
		cancel:  make(chan struct{}),
		width:   pool.size,
	}
	p.wg.Add(len(s.regions))
	for i := range s.regions {
		p.streams[i] = regionStream{ch: make(chan *chunkBuf, chunkPrefetch), ctx: ctx.Fork()}
		p.jobs[i] = scanJob{p: p, idx: i}
	}
	for i := range p.jobs {
		pool.submit(&p.jobs[i])
	}
	return p
}

// openRegion charges the region-open cost to region i's child ctx and
// returns the clamped resume key — the shared entry protocol of a worker
// drain and a caller-runs inline drain.
func (p *parScanner) openRegion(i int) (resume string) {
	start, _ := p.s.spec.bounds()
	resume = start
	r := p.s.regions[i]
	if resume < r.start {
		resume = r.start
	}
	hc := p.s.client.hc
	hc.serverWork(p.streams[i].ctx, r.Server(), hc.costs.ScanOpen)
	return resume
}

// nextChunk performs one scanner RPC of region i from resume into buf,
// charging the region's child ctx exactly as the sequential path charges
// its parent. done reports the region exhausted — by its end, the stop key,
// or the per-region limit cap. Both the worker path (drainRegion) and the
// caller-runs path (fetchInline) fetch exclusively through here, so the
// two can never diverge on limit or resume semantics.
//
// Limit-bounded scatter-gather scans cap every region at Limit rows: the
// merged result takes the first Limit rows in key order, so no single region
// can contribute more. Rows past the limit in early regions are speculative
// overfetch — the client trims them and cancels the workers.
func (p *parScanner) nextChunk(i int, buf *chunkBuf, resume string, sent int) (next string, done bool) {
	_, stop := p.s.spec.bounds()
	limit := p.s.spec.Limit
	want := p.s.batch
	if limit > 0 && limit-sent < want {
		want = limit - sent
	}
	next, truncated := p.s.fetchChunk(p.streams[i].ctx, p.s.regions[i], buf, resume, want, stop)
	done = truncated || next == "" || (limit > 0 && sent+len(buf.rows) >= limit)
	return next, done
}

// drainRegion fetches region i chunk by chunk on a pool worker, streaming
// the chunks to the consumer. Each chunk rides its own pooled buffer;
// ownership passes to the consumer on send, and buffers that never make it
// out (empty chunks, cancelled sends) go straight back to the pool.
func (p *parScanner) drainRegion(i int) {
	st := p.streams[i]
	defer close(st.ch)
	if p.cancelled() {
		return
	}
	resume := p.openRegion(i)
	sent := 0
	for {
		buf := p.s.client.getChunkBuf()
		next, done := p.nextChunk(i, buf, resume, sent)
		sent += len(buf.rows)
		if len(buf.rows) > 0 {
			select {
			case st.ch <- buf:
			case <-p.cancel:
				p.s.client.putChunkBuf(buf) // no consumer ever saw it
				return
			}
		} else {
			p.s.client.putChunkBuf(buf) // empty chunk: nothing escaped
		}
		if done {
			return
		}
		// Check between chunks too: a fully filtered-out region never
		// sends, and a closed scan must not keep draining it.
		if p.cancelled() {
			return
		}
		resume = next
	}
}

func (p *parScanner) cancelled() bool {
	select {
	case <-p.cancel:
		return true
	default:
		return false
	}
}

// next returns the next row in key order, joining the forked costs into ctx
// once every stream is exhausted.
func (p *parScanner) next(ctx *sim.Ctx) (RowResult, bool) {
	for p.bi >= len(p.buf) {
		if p.inline {
			if p.fetchInline() {
				continue // buf refilled
			}
			p.inline, p.inlineEOF = false, false
			p.wg.Done() // the consumer owned this claimed job
			p.ci++
			continue
		}
		if p.ci >= len(p.streams) {
			p.finish(ctx)
			return RowResult{}, false
		}
		if p.jobs[p.ci].claim() {
			// The pool has not started this region yet — run it inline
			// rather than wait for a worker (CallerRunsPolicy).
			p.startInline(p.ci)
			continue
		}
		chunk, ok := <-p.streams[p.ci].ch
		if !ok {
			p.ci++
			continue
		}
		p.installChunk(chunk)
	}
	row := p.buf[p.bi]
	p.bi++
	return row, true
}

// installChunk makes b the consumer-visible chunk and recycles the previous
// one — the refill point at which rows handed out from the old chunk become
// invalid under the Cells lifetime rule.
func (p *parScanner) installChunk(b *chunkBuf) {
	if p.cur != nil {
		p.s.client.putChunkBuf(p.cur)
	}
	p.cur = b
	p.buf, p.bi = b.rows, 0
	p.chunks++
}

// startInline begins a consumer-driven drain of region i.
func (p *parScanner) startInline(i int) {
	p.inline, p.inlineEOF = true, false
	p.inlineResume, p.inlineSent = p.openRegion(i), 0
}

// fetchInline pulls the next chunk of the consumer-claimed region into a
// fresh pooled buffer and installs it. Reports false once the region is
// exhausted.
func (p *parScanner) fetchInline() bool {
	if p.inlineEOF {
		return false
	}
	for {
		buf := p.s.client.getChunkBuf()
		next, done := p.nextChunk(p.ci, buf, p.inlineResume, p.inlineSent)
		p.inlineSent += len(buf.rows)
		p.inlineEOF = done
		p.inlineResume = next
		if len(buf.rows) > 0 {
			p.installChunk(buf)
			return true
		}
		p.s.client.putChunkBuf(buf)
		if done {
			return false
		}
	}
}

// close cancels outstanding region fetches and joins whatever work they
// already performed into ctx. Jobs still queued on the pool are claimed
// away so no worker ever starts them.
//
// Chunk recycling on close is deliberately partial: only buffers no
// consumer ever saw — those still sitting in the prefetch channels once the
// workers have stopped — return to the pool. The consumer-visible current
// chunk is left to the GC, because Scanner.Next trims a limit-bounded scan
// in the same call that returns the limit-th row: that row still aliases
// p.cur when close runs.
func (p *parScanner) close(ctx *sim.Ctx) {
	if p.joined {
		return
	}
	close(p.cancel)
	if p.inline {
		p.inline = false
		p.wg.Done() // consumer owned the claimed job it was draining
	}
	for i := range p.jobs {
		if p.jobs[i].claim() {
			p.wg.Done() // never started; nothing fetched, nothing to charge
		}
	}
	// Unblock producers stuck on full streams, then wait them out.
	p.wg.Wait()
	// Producers are done, so a non-blocking sweep sees every buffered
	// chunk. Channels of claimed-away jobs were never closed — range would
	// block on them, hence the select.
	for i := range p.streams {
	drain:
		for {
			select {
			case buf, ok := <-p.streams[i].ch:
				if !ok {
					break drain
				}
				p.s.client.putChunkBuf(buf)
			default:
				break drain
			}
		}
	}
	p.cur = nil // stays with the consumer's last rows; GC reclaims it
	p.join(ctx)
}

func (p *parScanner) finish(ctx *sim.Ctx) {
	if p.joined {
		return
	}
	// Natural exhaustion: this Next call returns no row, so rows handed out
	// from the current chunk are no longer valid and it can be recycled.
	if p.cur != nil {
		p.s.client.putChunkBuf(p.cur)
		p.cur, p.buf, p.bi = nil, nil, 0
	}
	p.wg.Wait() // all streams closed, workers are done or exiting
	p.join(ctx)
}

// join folds the per-region children back into the parent under the pool's
// real concurrency: a scan over more regions than the pool has workers pays
// ceil(regions/width) rounds of region cost, not one — the shared pool's
// completion time, which is what makes pool sharing visible in figures.
func (p *parScanner) join(ctx *sim.Ctx) {
	p.joined = true
	children := make([]*sim.Ctx, len(p.streams))
	for i := range p.streams {
		children[i] = p.streams[i].ctx
	}
	ctx.JoinWidth(p.width, children...)
	ctx.Charge(sim.Micros(p.chunks * int64(p.s.client.hc.costs.ScanMergeChunk)))
}
