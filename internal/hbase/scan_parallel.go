package hbase

import (
	"sync"

	"synergy/internal/sim"
)

// chunkPrefetch bounds how many fetched-but-unconsumed batches each region
// stream may hold, so a fast producer cannot buffer an entire region ahead
// of the consumer.
const chunkPrefetch = 2

// parScanner is the scatter-gather engine behind Scanner: a bounded worker
// pool drains every in-range region concurrently, and the consumer folds the
// per-region streams back into one key-ordered stream. Regions hold disjoint
// ascending key ranges, so the ordered merge delivers region i's buffered
// chunks before region i+1's while later regions prefetch in the background.
//
// Simulated cost follows fork/join semantics: each region stream charges its
// RPCs and per-row work to a forked child ctx, and when the scan finishes
// (or is closed early) the parent is charged max(child elapsed) plus a
// per-chunk merge cost — not the sum, since the region fetches overlap.
type parScanner struct {
	s       *Scanner
	streams []regionStream // one per region, in region (= key) order
	cancel  chan struct{}
	wg      sync.WaitGroup

	ci     int // region currently being consumed
	buf    []RowResult
	bi     int
	chunks int64 // chunks folded into the ordered stream
	joined bool
}

type regionStream struct {
	ch  chan []RowResult
	ctx *sim.Ctx
}

// startParScan forks one child ctx per region and launches the worker pool.
// Workers take regions in key order, so the stream the consumer needs next
// is always among the ones being fetched.
func startParScan(ctx *sim.Ctx, s *Scanner, parallelism int) *parScanner {
	p := &parScanner{
		s:       s,
		streams: make([]regionStream, len(s.regions)),
		cancel:  make(chan struct{}),
	}
	queue := make(chan int, len(s.regions))
	for i := range s.regions {
		p.streams[i] = regionStream{ch: make(chan []RowResult, chunkPrefetch), ctx: ctx.Fork()}
		queue <- i
	}
	close(queue)
	workers := min(parallelism, len(s.regions))
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker(queue)
	}
	return p
}

func (p *parScanner) worker(queue <-chan int) {
	defer p.wg.Done()
	for i := range queue {
		if !p.drainRegion(i) {
			return // cancelled
		}
	}
}

// drainRegion fetches region i chunk by chunk, charging the region's child
// ctx exactly as the sequential path charges its parent. Reports false when
// the scan was cancelled.
//
// Limit-bounded scatter-gather scans cap every region at Limit rows: the
// merged result takes the first Limit rows in key order, so no single region
// can contribute more. Rows past the limit in early regions are speculative
// overfetch — the client trims them and cancels the workers.
func (p *parScanner) drainRegion(i int) bool {
	st := p.streams[i]
	defer close(st.ch)
	if p.cancelled() {
		return false
	}
	r := p.s.regions[i]
	start, stop := p.s.spec.bounds()
	limit := p.s.spec.Limit
	resume := start
	if resume < r.start {
		resume = r.start
	}
	st.ctx.Charge(p.s.client.hc.costs.ScanOpen)
	sent := 0
	for {
		want := p.s.batch
		if limit > 0 && limit-sent < want {
			want = limit - sent
		}
		rows, next, truncated := p.s.fetchChunk(st.ctx, r, resume, want, stop)
		sent += len(rows)
		if len(rows) > 0 {
			select {
			case st.ch <- rows:
			case <-p.cancel:
				return false
			}
		}
		if truncated || next == "" || (limit > 0 && sent >= limit) {
			return true
		}
		// Check between chunks too: a fully filtered-out region never
		// sends, and a closed scan must not keep draining it.
		if p.cancelled() {
			return false
		}
		resume = next
	}
}

func (p *parScanner) cancelled() bool {
	select {
	case <-p.cancel:
		return true
	default:
		return false
	}
}

// next returns the next row in key order, joining the forked costs into ctx
// once every stream is exhausted.
func (p *parScanner) next(ctx *sim.Ctx) (RowResult, bool) {
	for p.bi >= len(p.buf) {
		if p.ci >= len(p.streams) {
			p.finish(ctx)
			return RowResult{}, false
		}
		chunk, ok := <-p.streams[p.ci].ch
		if !ok {
			p.ci++
			continue
		}
		p.buf, p.bi = chunk, 0
		p.chunks++
	}
	row := p.buf[p.bi]
	p.bi++
	return row, true
}

// close cancels outstanding region fetches and joins whatever work they
// already performed into ctx.
func (p *parScanner) close(ctx *sim.Ctx) {
	if p.joined {
		return
	}
	close(p.cancel)
	// Unblock producers stuck on full streams, then wait them out.
	p.wg.Wait()
	p.join(ctx)
}

func (p *parScanner) finish(ctx *sim.Ctx) {
	if p.joined {
		return
	}
	p.wg.Wait() // all streams closed, workers are done or exiting
	p.join(ctx)
}

func (p *parScanner) join(ctx *sim.Ctx) {
	p.joined = true
	children := make([]*sim.Ctx, len(p.streams))
	for i := range p.streams {
		children[i] = p.streams[i].ctx
	}
	ctx.Join(children...)
	ctx.Charge(sim.Micros(p.chunks * int64(p.s.client.hc.costs.ScanMergeChunk)))
}
