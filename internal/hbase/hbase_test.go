package hbase

import (
	"fmt"
	"sync"
	"testing"

	"synergy/internal/cluster"
	"synergy/internal/sim"
)

func newTestCluster(t *testing.T) *HCluster {
	t.Helper()
	return NewHCluster(cluster.NewDefault(nil), nil, nil)
}

func mustCreate(t *testing.T, hc *HCluster, spec TableSpec) {
	t.Helper()
	if err := hc.CreateTable(spec); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t"})
	c := hc.NewWarmClient()
	ctx := sim.NewCtx()
	if err := c.Put(ctx, "t", "row1", []Cell{put("a", "1", 0), put("b", "2", 0)}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(ctx, "t", "row1", ReadOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Get("a")) != "1" || string(got.Get("b")) != "2" {
		t.Fatalf("Get = %v", got)
	}
}

func TestGetMissingRow(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t"})
	c := hc.NewWarmClient()
	got, err := c.Get(sim.NewCtx(), "t", "nothing", ReadOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Empty() {
		t.Fatalf("expected empty result, got %v", got)
	}
}

func TestTableErrors(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t"})
	if err := hc.CreateTable(TableSpec{Name: "t"}); err == nil {
		t.Fatal("duplicate create should fail")
	}
	c := hc.NewWarmClient()
	if _, err := c.Get(sim.NewCtx(), "missing", "k", ReadOpts{}); err == nil {
		t.Fatal("get on missing table should fail")
	}
	if err := hc.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if hc.HasTable("t") {
		t.Fatal("table still present after drop")
	}
}

func TestDeleteRow(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t"})
	c := hc.NewWarmClient()
	ctx := sim.NewCtx()
	c.Put(ctx, "t", "r", []Cell{put("a", "1", 0)})
	c.Delete(ctx, "t", "r")
	got, _ := c.Get(ctx, "t", "r", ReadOpts{})
	if !got.Empty() {
		t.Fatalf("row visible after delete: %v", got)
	}
	// Re-insert after delete must be visible (timestamps advance).
	c.Put(ctx, "t", "r", []Cell{put("a", "2", 0)})
	got, _ = c.Get(ctx, "t", "r", ReadOpts{})
	if string(got.Get("a")) != "2" {
		t.Fatalf("reinserted row = %v", got)
	}
}

func TestDeleteColumns(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t"})
	c := hc.NewWarmClient()
	ctx := sim.NewCtx()
	c.Put(ctx, "t", "r", []Cell{put("a", "1", 0), put("b", "2", 0)})
	c.Delete(ctx, "t", "r", "a")
	got, _ := c.Get(ctx, "t", "r", ReadOpts{})
	if got.Get("a") != nil || string(got.Get("b")) != "2" {
		t.Fatalf("after column delete = %v", got)
	}
}

func TestIncrement(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t"})
	c := hc.NewWarmClient()
	ctx := sim.NewCtx()
	if v, _ := c.Increment(ctx, "t", "ctr", "n", 5); v != 5 {
		t.Fatalf("first increment = %d, want 5", v)
	}
	if v, _ := c.Increment(ctx, "t", "ctr", "n", -2); v != 3 {
		t.Fatalf("second increment = %d, want 3", v)
	}
}

func TestCheckAndPut(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "locks"})
	c := hc.NewWarmClient()
	ctx := sim.NewCtx()
	free, held := []byte("0"), []byte("1")
	c.Put(ctx, "locks", "k", []Cell{put("s", "0", 0)})

	ok, err := c.CheckAndPut(ctx, "locks", "k", "s", free, Cell{Qualifier: "s", Value: held})
	if err != nil || !ok {
		t.Fatalf("acquire = %v, %v; want true", ok, err)
	}
	ok, _ = c.CheckAndPut(ctx, "locks", "k", "s", free, Cell{Qualifier: "s", Value: held})
	if ok {
		t.Fatal("second acquire should fail while held")
	}
	ok, _ = c.CheckAndPut(ctx, "locks", "k", "s", held, Cell{Qualifier: "s", Value: free})
	if !ok {
		t.Fatal("release should succeed")
	}
	ok, _ = c.CheckAndPut(ctx, "locks", "k", "s", free, Cell{Qualifier: "s", Value: held})
	if !ok {
		t.Fatal("re-acquire after release should succeed")
	}
}

func TestCheckAndPutAbsent(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t"})
	c := hc.NewWarmClient()
	ctx := sim.NewCtx()
	ok, _ := c.CheckAndPut(ctx, "t", "new", "q", nil, Cell{Qualifier: "q", Value: []byte("v")})
	if !ok {
		t.Fatal("check-against-absent on missing row should succeed")
	}
	ok, _ = c.CheckAndPut(ctx, "t", "new", "q", nil, Cell{Qualifier: "q", Value: []byte("w")})
	if ok {
		t.Fatal("check-against-absent on existing row should fail")
	}
}

func TestCheckAndPutMutualExclusion(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "locks"})
	setup := hc.NewWarmClient()
	setup.Put(sim.NewCtx(), "locks", "k", []Cell{put("s", "0", 0)})

	const workers = 16
	var acquired sync.Map
	var wins int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := hc.NewWarmClient()
			ctx := sim.NewCtx()
			ok, err := c.CheckAndPut(ctx, "locks", "k", "s", []byte("0"), Cell{Qualifier: "s", Value: []byte("1")})
			if err != nil {
				t.Error(err)
				return
			}
			if ok {
				acquired.Store(id, true)
				mu.Lock()
				wins++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if wins != 1 {
		t.Fatalf("%d workers acquired the lock, want exactly 1", wins)
	}
}

func TestScanOrderAndBounds(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t"})
	c := hc.NewWarmClient()
	ctx := sim.NewCtx()
	for _, k := range []string{"d", "b", "a", "c", "e"} {
		c.Put(ctx, "t", k, []Cell{put("v", k, 0)})
	}
	sc, err := c.Scan(ctx, "t", ScanSpec{Start: "b", Stop: "e"})
	if err != nil {
		t.Fatal(err)
	}
	rows := sc.All(ctx)
	want := []string{"b", "c", "d"}
	if len(rows) != len(want) {
		t.Fatalf("scan rows = %d, want %d", len(rows), len(want))
	}
	for i, w := range want {
		if rows[i].Key != w {
			t.Fatalf("row %d = %q, want %q", i, rows[i].Key, w)
		}
	}
}

func TestScanPrefix(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t"})
	c := hc.NewWarmClient()
	ctx := sim.NewCtx()
	for _, k := range []string{"user/1", "user/2", "item/1", "zz"} {
		c.Put(ctx, "t", k, []Cell{put("v", "x", 0)})
	}
	sc, _ := c.Scan(ctx, "t", ScanSpec{Prefix: "user/"})
	rows := sc.All(ctx)
	if len(rows) != 2 {
		t.Fatalf("prefix scan rows = %d, want 2", len(rows))
	}
}

func TestScanLimit(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t"})
	c := hc.NewWarmClient()
	ctx := sim.NewCtx()
	for i := 0; i < 50; i++ {
		c.Put(ctx, "t", fmt.Sprintf("k%03d", i), []Cell{put("v", "x", 0)})
	}
	sc, _ := c.Scan(ctx, "t", ScanSpec{Limit: 7})
	if rows := sc.All(ctx); len(rows) != 7 {
		t.Fatalf("limited scan rows = %d, want 7", len(rows))
	}
}

func TestScanFilterPushdown(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t"})
	c := hc.NewWarmClient()
	ctx := sim.NewCtx()
	for i := 0; i < 20; i++ {
		v := "even"
		if i%2 == 1 {
			v = "odd"
		}
		c.Put(ctx, "t", fmt.Sprintf("k%02d", i), []Cell{put("v", v, 0)})
	}
	sc, _ := c.Scan(ctx, "t", ScanSpec{Filter: func(r RowResult) bool { return string(r.Get("v")) == "odd" }})
	rows := sc.All(ctx)
	if len(rows) != 10 {
		t.Fatalf("filtered rows = %d, want 10", len(rows))
	}
	if s := ctx.Snapshot(); s.RowsScanned < 20 {
		t.Fatalf("rows examined = %d, want >= 20 (filter must not skip examination)", s.RowsScanned)
	}
}

func TestBulkLoadAndScan(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t"})
	rows := make([]BulkRow, 1000)
	for i := range rows {
		rows[i] = BulkRow{Key: fmt.Sprintf("k%06d", i), Cells: []Cell{put("v", fmt.Sprint(i), 0)}}
	}
	if err := hc.BulkLoad("t", rows); err != nil {
		t.Fatal(err)
	}
	c := hc.NewWarmClient()
	ctx := sim.NewCtx()
	sc, _ := c.Scan(ctx, "t", ScanSpec{})
	got := sc.All(ctx)
	if len(got) != 1000 {
		t.Fatalf("scanned %d rows, want 1000", len(got))
	}
	if got[500].Key != "k000500" {
		t.Fatalf("row 500 key = %q", got[500].Key)
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t"})
	err := hc.BulkLoad("t", []BulkRow{{Key: "b"}, {Key: "a"}})
	if err == nil {
		t.Fatal("unsorted bulk load should fail")
	}
}

func TestRegionSplitDistributesData(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t", SplitThreshold: 100})
	rows := make([]BulkRow, 1000)
	for i := range rows {
		rows[i] = BulkRow{Key: fmt.Sprintf("k%06d", i), Cells: []Cell{put("v", "x", 0)}}
	}
	if err := hc.BulkLoad("t", rows); err != nil {
		t.Fatal(err)
	}
	if n := hc.RegionCount("t"); n < 4 {
		t.Fatalf("regions after load = %d, want >= 4", n)
	}
	// Scan must still see every row exactly once, in order.
	c := hc.NewWarmClient()
	ctx := sim.NewCtx()
	sc, _ := c.Scan(ctx, "t", ScanSpec{})
	got := sc.All(ctx)
	if len(got) != 1000 {
		t.Fatalf("post-split scan rows = %d, want 1000", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Key >= got[i].Key {
			t.Fatalf("scan out of order at %d: %q >= %q", i, got[i-1].Key, got[i].Key)
		}
	}
	// Regions should land on more than one server.
	servers := map[string]bool{}
	tbl, _ := hc.lookup("t")
	for _, r := range tbl.regionsInRange("", "") {
		servers[r.server] = true
	}
	if len(servers) < 2 {
		t.Fatalf("all regions on one server; want distribution")
	}
}

func TestPreSplitTable(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t", SplitKeys: []string{"g", "p"}})
	if n := hc.RegionCount("t"); n != 3 {
		t.Fatalf("pre-split regions = %d, want 3", n)
	}
	c := hc.NewWarmClient()
	ctx := sim.NewCtx()
	for _, k := range []string{"a", "h", "q"} {
		c.Put(ctx, "t", k, []Cell{put("v", k, 0)})
	}
	sc, _ := c.Scan(ctx, "t", ScanSpec{})
	if rows := sc.All(ctx); len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
}

func TestMajorCompactReclaimsTombstones(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t"})
	c := hc.NewWarmClient()
	ctx := sim.NewCtx()
	for i := 0; i < 100; i++ {
		c.Put(ctx, "t", fmt.Sprintf("k%03d", i), []Cell{put("v", "x", 0)})
	}
	for i := 0; i < 50; i++ {
		c.Delete(ctx, "t", fmt.Sprintf("k%03d", i))
	}
	before := hc.TableBytes("t")
	if err := hc.MajorCompact("t"); err != nil {
		t.Fatal(err)
	}
	after := hc.TableBytes("t")
	if after >= before {
		t.Fatalf("compaction did not reclaim space: %d -> %d", before, after)
	}
	sc, _ := c.Scan(ctx, "t", ScanSpec{})
	if rows := sc.All(ctx); len(rows) != 50 {
		t.Fatalf("rows after compact = %d, want 50", len(rows))
	}
}

func TestSnapshotScan(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t", MaxVersions: 10})
	c := hc.NewWarmClient()
	ctx := sim.NewCtx()
	c.Put(ctx, "t", "r", []Cell{{Qualifier: "v", Value: []byte("old"), TS: 5}})
	c.Put(ctx, "t", "r", []Cell{{Qualifier: "v", Value: []byte("new"), TS: 50}})
	sc, _ := c.Scan(ctx, "t", ScanSpec{Read: ReadOpts{ReadTS: 10}})
	rows := sc.All(ctx)
	if len(rows) != 1 || string(rows[0].Get("v")) != "old" {
		t.Fatalf("snapshot scan = %v, want old", rows)
	}
}

func TestColdClientPaysConnectionSetup(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t"})
	costs := hc.Costs()

	cold := hc.NewClient()
	coldCtx := sim.NewCtx()
	cold.Get(coldCtx, "t", "k", ReadOpts{})

	warm := hc.NewWarmClient()
	warmCtx := sim.NewCtx()
	warm.Get(warmCtx, "t", "k", ReadOpts{})

	if diff := coldCtx.Elapsed() - warmCtx.Elapsed(); diff < costs.ConnectionSetup {
		t.Fatalf("cold-warm difference = %v, want >= %v", diff, costs.ConnectionSetup)
	}
	// Second op on the cold client is warm.
	coldCtx2 := sim.NewCtx()
	cold.Get(coldCtx2, "t", "k", ReadOpts{})
	if coldCtx2.Elapsed() >= coldCtx.Elapsed() {
		t.Fatal("second op should not repay connection setup")
	}
}

func TestPutChargesWAL(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t"})
	c := hc.NewWarmClient()
	c.Put(sim.NewCtx(), "t", "k", []Cell{put("v", "x", 0)})
	var edits int64
	for _, s := range []string{"slave-0", "slave-1", "slave-2", "slave-3", "slave-4"} {
		edits += hc.WALEdits(s)
	}
	if edits != 1 {
		t.Fatalf("WAL edits = %d, want 1", edits)
	}
}

func TestConcurrentPutsAndScans(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t"})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := hc.NewWarmClient()
			ctx := sim.NewCtx()
			for i := 0; i < 200; i++ {
				c.Put(ctx, "t", fmt.Sprintf("w%d-k%04d", w, i), []Cell{put("v", "x", 0)})
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := hc.NewWarmClient()
			ctx := sim.NewCtx()
			for i := 0; i < 20; i++ {
				sc, err := c.Scan(ctx, "t", ScanSpec{})
				if err != nil {
					t.Error(err)
					return
				}
				rows := sc.All(ctx)
				for j := 1; j < len(rows); j++ {
					if rows[j-1].Key >= rows[j].Key {
						t.Errorf("scan out of order under concurrency")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	c := hc.NewWarmClient()
	sc, _ := c.Scan(sim.NewCtx(), "t", ScanSpec{})
	if rows := sc.All(sim.NewCtx()); len(rows) != 800 {
		t.Fatalf("final rows = %d, want 800", len(rows))
	}
}

func TestScanChargesGrowWithRows(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t"})
	rows := make([]BulkRow, 5000)
	for i := range rows {
		rows[i] = BulkRow{Key: fmt.Sprintf("k%06d", i), Cells: []Cell{put("v", "0123456789", 0)}}
	}
	hc.BulkLoad("t", rows)
	c := hc.NewWarmClient()

	small := sim.NewCtx()
	sc, _ := c.Scan(small, "t", ScanSpec{Limit: 100})
	sc.All(small)

	big := sim.NewCtx()
	sc2, _ := c.Scan(big, "t", ScanSpec{})
	sc2.All(big)

	if big.Elapsed() <= small.Elapsed()*5 {
		t.Fatalf("full scan (%v) should cost much more than 100-row scan (%v)", big.Elapsed(), small.Elapsed())
	}
}

func TestTableBytesAccounting(t *testing.T) {
	hc := newTestCluster(t)
	mustCreate(t, hc, TableSpec{Name: "t"})
	c := hc.NewWarmClient()
	ctx := sim.NewCtx()
	c.Put(ctx, "t", "rowkey-1", []Cell{put("qual", "some-value", 0)})
	got := hc.TableBytes("t")
	want := KVSize("rowkey-1", Cell{Qualifier: "qual", Value: []byte("some-value")})
	if got != want {
		t.Fatalf("TableBytes = %d, want %d", got, want)
	}
	if hc.TotalBytes() != got {
		t.Fatalf("TotalBytes = %d, want %d", hc.TotalBytes(), got)
	}
}
