// Package schema holds the relational data model of §II-A: relations with
// primary keys, foreign keys and covered indexes, and the schema graph whose
// key/foreign-key edges drive the candidate view generation mechanism of §V.
// It also provides the typed value model and the order-preserving key codec
// shared by every engine in the repository.
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// ColType is the type of a column.
type ColType int

const (
	TInt ColType = iota
	TFloat
	TString
)

func (t ColType) String() string {
	switch t {
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TString:
		return "STRING"
	default:
		return "?"
	}
}

// Column is one attribute of a relation.
type Column struct {
	Name string
	Type ColType
}

// ForeignKey is a reference from this relation's Cols to RefTable's primary
// key. A relation can have several (§II-A: F(R)).
type ForeignKey struct {
	Cols     []string
	RefTable string
}

func (fk ForeignKey) String() string {
	return fmt.Sprintf("(%s)->%s", strings.Join(fk.Cols, ","), fk.RefTable)
}

// Relation models a relation R: a set of attributes with a primary key
// PK(R) and foreign keys F(R) (§II-A).
type Relation struct {
	Name    string
	Columns []Column
	PK      []string
	FKs     []ForeignKey
}

// Col returns the named column, or nil.
func (r *Relation) Col(name string) *Column {
	for i := range r.Columns {
		if r.Columns[i].Name == name {
			return &r.Columns[i]
		}
	}
	return nil
}

// HasColumn reports whether the relation has the named attribute.
func (r *Relation) HasColumn(name string) bool { return r.Col(name) != nil }

// ColumnNames lists attribute names in declaration order.
func (r *Relation) ColumnNames() []string {
	out := make([]string, len(r.Columns))
	for i, c := range r.Columns {
		out[i] = c.Name
	}
	return out
}

// IsPK reports whether name is part of the primary key.
func (r *Relation) IsPK(name string) bool {
	for _, k := range r.PK {
		if k == name {
			return true
		}
	}
	return false
}

// Index models a covered index X(R): a set of attributes stored in the index
// itself, indexed on the tuple Cols; the index key is Cols ++ PK(R) in that
// order (§II-A).
type Index struct {
	Name  string
	Table string
	Cols  []string // Xtuple(R): the attributes the index is keyed on
	// Include lists the covered non-key attributes. Empty means all of
	// the relation's attributes are covered, which is how this
	// reproduction uses indexes throughout.
	Include []string
}

// Schema is a set of relations and their index sets (§II-A).
type Schema struct {
	relations map[string]*Relation
	order     []string
	indexes   map[string][]*Index // table -> indexes
}

// New returns an empty schema.
func New() *Schema {
	return &Schema{relations: map[string]*Relation{}, indexes: map[string][]*Index{}}
}

// AddRelation registers a relation. It panics on duplicates or dangling
// column references — schema definitions are static program data, and a bad
// one is a bug.
func (s *Schema) AddRelation(r *Relation) *Schema {
	if _, dup := s.relations[r.Name]; dup {
		panic(fmt.Sprintf("schema: duplicate relation %q", r.Name))
	}
	for _, k := range r.PK {
		if !r.HasColumn(k) {
			panic(fmt.Sprintf("schema: %s primary key column %q not declared", r.Name, k))
		}
	}
	for _, fk := range r.FKs {
		for _, c := range fk.Cols {
			if !r.HasColumn(c) {
				panic(fmt.Sprintf("schema: %s foreign key column %q not declared", r.Name, c))
			}
		}
	}
	s.relations[r.Name] = r
	s.order = append(s.order, r.Name)
	return s
}

// AddIndex registers a covered index on an existing relation.
func (s *Schema) AddIndex(ix *Index) *Schema {
	r := s.relations[ix.Table]
	if r == nil {
		panic(fmt.Sprintf("schema: index %q on unknown relation %q", ix.Name, ix.Table))
	}
	for _, c := range ix.Cols {
		if !r.HasColumn(c) {
			panic(fmt.Sprintf("schema: index %q column %q not in %s", ix.Name, c, ix.Table))
		}
	}
	s.indexes[ix.Table] = append(s.indexes[ix.Table], ix)
	return s
}

// Relation returns the named relation, or nil.
func (s *Schema) Relation(name string) *Relation { return s.relations[name] }

// Relations lists relations in declaration order.
func (s *Schema) Relations() []*Relation {
	out := make([]*Relation, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.relations[n])
	}
	return out
}

// RelationNames lists relation names in declaration order.
func (s *Schema) RelationNames() []string { return append([]string(nil), s.order...) }

// Indexes returns the index set I(R) of a relation.
func (s *Schema) Indexes(table string) []*Index { return s.indexes[table] }

// AllIndexes lists every index, ordered by table then name.
func (s *Schema) AllIndexes() []*Index {
	var out []*Index
	for _, t := range s.order {
		out = append(out, s.indexes[t]...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Validate checks referential structure: every FK must reference an existing
// relation whose PK length matches the FK column count.
func (s *Schema) Validate() error {
	for _, name := range s.order {
		r := s.relations[name]
		for _, fk := range r.FKs {
			ref := s.relations[fk.RefTable]
			if ref == nil {
				return fmt.Errorf("schema: %s references unknown relation %q", r.Name, fk.RefTable)
			}
			if len(fk.Cols) != len(ref.PK) {
				return fmt.Errorf("schema: %s fk %v arity %d != %s pk arity %d",
					r.Name, fk.Cols, len(fk.Cols), ref.Name, len(ref.PK))
			}
		}
	}
	return nil
}
