package schema

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCompanySchemaShape(t *testing.T) {
	s := Company()
	if got := len(s.Relations()); got != 7 {
		t.Fatalf("relations = %d, want 7 (Figure 2)", got)
	}
	emp := s.Relation("Employee")
	if emp == nil || len(emp.FKs) != 3 {
		t.Fatalf("Employee FKs = %+v, want 3", emp)
	}
	if !emp.IsPK("EID") || emp.IsPK("EName") {
		t.Fatal("Employee PK misidentified")
	}
	wo := s.Relation("Works_On")
	if len(wo.PK) != 2 {
		t.Fatalf("Works_On PK = %v, want composite", wo.PK)
	}
}

func TestSchemaValidate(t *testing.T) {
	s := New()
	s.AddRelation(&Relation{
		Name:    "A",
		Columns: []Column{{Name: "id", Type: TInt}, {Name: "b_ref", Type: TInt}},
		PK:      []string{"id"},
		FKs:     []ForeignKey{{Cols: []string{"b_ref"}, RefTable: "B"}},
	})
	if err := s.Validate(); err == nil {
		t.Fatal("dangling FK should fail validation")
	}
	s.AddRelation(&Relation{
		Name:    "B",
		Columns: []Column{{Name: "x", Type: TInt}, {Name: "y", Type: TInt}},
		PK:      []string{"x", "y"},
	})
	if err := s.Validate(); err == nil {
		t.Fatal("FK/PK arity mismatch should fail validation")
	}
}

func TestAddRelationPanics(t *testing.T) {
	cases := []func(){
		func() { // duplicate
			s := New()
			r := &Relation{Name: "A", Columns: []Column{{Name: "id"}}, PK: []string{"id"}}
			s.AddRelation(r)
			s.AddRelation(r)
		},
		func() { // PK not declared
			New().AddRelation(&Relation{Name: "A", Columns: []Column{{Name: "x"}}, PK: []string{"id"}})
		},
		func() { // index on unknown table
			New().AddIndex(&Index{Name: "i", Table: "missing"})
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCompanyGraphEdges(t *testing.T) {
	g := BuildGraph(Company())
	// Figure 4(a): 9 key/foreign-key edges (Employee references Address
	// twice: home and office).
	if got := len(g.Edges()); got != 9 {
		t.Fatalf("edges = %d, want 9", got)
	}
	addrOut := g.OutEdges("Address")
	if len(addrOut) != 3 { // EHome, EOffice, DPHome
		t.Fatalf("Address out-edges = %d, want 3", len(addrOut))
	}
	if len(g.InEdges("Works_On")) != 2 {
		t.Fatalf("Works_On in-edges = %d, want 2", len(g.InEdges("Works_On")))
	}
}

func TestTopoSortCompany(t *testing.T) {
	g := BuildGraph(Company())
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	for _, e := range g.Edges() {
		if pos[e.Parent] >= pos[e.Child] {
			t.Fatalf("topological violation: %s at %d, %s at %d", e.Parent, pos[e.Parent], e.Child, pos[e.Child])
		}
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	g := BuildGraph(Company())
	a, _ := g.TopoSort()
	b, _ := g.TopoSort()
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("non-deterministic topo order: %v vs %v", a, b)
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := NewGraph([]string{"A", "B"}, []Edge{
		{Parent: "A", Child: "B"},
		{Parent: "B", Child: "A"},
	})
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("cycle should fail topo sort")
	}
}

func TestPathsEnumeration(t *testing.T) {
	g := BuildGraph(Company())
	// Address -> Employee: two parallel edges (home, office).
	paths := g.Paths("Address", "Employee")
	if len(paths) != 2 {
		t.Fatalf("Address->Employee paths = %d, want 2", len(paths))
	}
	// Address -> Works_On: via Employee (either FK edge).
	paths = g.Paths("Address", "Works_On")
	if len(paths) != 2 {
		t.Fatalf("Address->Works_On paths = %d, want 2", len(paths))
	}
	for _, p := range paths {
		if p.Start() != "Address" || p.End() != "Works_On" {
			t.Fatalf("bad endpoints: %v", p)
		}
		if len(p.Edges) != len(p.Relations)-1 {
			t.Fatalf("malformed path: %v", p)
		}
	}
	// Department -> Works_On: via Employee and via Project.
	paths = g.Paths("Department", "Works_On")
	if len(paths) != 2 {
		t.Fatalf("Department->Works_On paths = %d, want 2", len(paths))
	}
	if got := g.Paths("Works_On", "Address"); len(got) != 0 {
		t.Fatalf("reverse paths = %d, want 0", len(got))
	}
}

func TestPathString(t *testing.T) {
	g := BuildGraph(Company())
	paths := g.Paths("Department", "Employee")
	if len(paths) != 1 || paths[0].String() != "Department - Employee" {
		t.Fatalf("paths = %v", paths)
	}
}

func TestCompareValues(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{int64(1), int64(2), -1},
		{int64(2), int64(2), 0},
		{float64(1.5), int64(2), -1},
		{int64(2), float64(1.5), 1},
		{"a", "b", -1},
		{nil, int64(0), -1},
		{nil, nil, 0},
		{int64(5), "5", -1}, // numbers before strings
	}
	for _, c := range cases {
		if got := CompareValues(c.a, c.b); got != c.want {
			t.Errorf("CompareValues(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEncodeKeyOrderPreservingInts(t *testing.T) {
	f := func(a, b int64) bool {
		ka, kb := EncodeKey(a), EncodeKey(b)
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		default:
			return ka == kb
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeKeyOrderPreservingFloats(t *testing.T) {
	f := func(a, b float64) bool {
		if a != a || b != b { // skip NaN
			return true
		}
		ka, kb := EncodeKey(a), EncodeKey(b)
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		default:
			return ka == kb
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeKeyOrderPreservingStrings(t *testing.T) {
	f := func(a, b string) bool {
		ka, kb := EncodeKey(a), EncodeKey(b)
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		default:
			return ka == kb
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompositeKeyOrdering(t *testing.T) {
	// (1, "b") < (2, "a") and (1, "a") < (1, "b").
	keys := []string{
		EncodeKey(int64(1), "a"),
		EncodeKey(int64(1), "b"),
		EncodeKey(int64(2), "a"),
	}
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	for i := range keys {
		if keys[i] != sorted[i] {
			t.Fatalf("composite key order violated at %d", i)
		}
	}
}

func TestKeyPrefixMatchesOnlyExactLeadingValues(t *testing.T) {
	// Prefix of (10) must match (10, x) but not (100, x) — the classic
	// delimited-key pitfall.
	p := KeyPrefix(int64(10))
	k10 := EncodeKey(int64(10), "x")
	k100 := EncodeKey(int64(100), "x")
	if !strings.HasPrefix(k10, p) {
		t.Fatal("prefix should match key with same leading value")
	}
	if strings.HasPrefix(k100, p) {
		t.Fatal("prefix must not match different leading value")
	}
	// Same for strings: "ab" prefix must not match "abc"'s key.
	ps := KeyPrefix("ab")
	kabc := EncodeKey("abc", int64(1))
	kab := EncodeKey("ab", int64(1))
	if strings.HasPrefix(kabc, ps) {
		t.Fatal(`prefix "ab" must not match "abc"`)
	}
	if !strings.HasPrefix(kab, ps) {
		t.Fatal(`prefix "ab" should match "ab"`)
	}
}

func TestEncodeKeyStringWithNulBytes(t *testing.T) {
	a := EncodeKey("a\x00b", "c")
	b := EncodeKey("a", "b\x00c")
	if a == b {
		t.Fatal("NUL-containing strings must not collide across key parts")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{"a": int64(1)}
	c := r.Clone()
	c["a"] = int64(2)
	if r["a"].(int64) != 1 {
		t.Fatal("clone aliases original")
	}
}
