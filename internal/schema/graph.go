package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Edge is a directed edge of the schema graph from a parent relation Ri to a
// child relation Rj, represented as the (PK, FK) tuple of Definition 2: PK is
// the primary key of the parent and FK the referencing foreign key of the
// child.
type Edge struct {
	Parent string
	Child  string
	PK     []string // primary key columns of Parent
	FK     []string // foreign key columns of Child
}

// ID identifies the edge uniquely, including which FK it uses (a child can
// reference the same parent twice, e.g. Employee's home and office
// addresses).
func (e Edge) ID() string {
	return fmt.Sprintf("%s->%s[%s]", e.Parent, e.Child, strings.Join(e.FK, ","))
}

func (e Edge) String() string {
	return fmt.Sprintf("(%s , %s)", strings.Join(e.PK, ","), strings.Join(e.FK, ","))
}

// Graph is the schema graph G = (H, E) of §V: vertices are relations, edges
// encode key/foreign-key relationships (Definition 1).
type Graph struct {
	nodes []string
	edges []Edge
}

// BuildGraph derives the schema graph from the relations' foreign keys.
func BuildGraph(s *Schema) *Graph {
	g := &Graph{nodes: s.RelationNames()}
	for _, child := range s.Relations() {
		for _, fk := range child.FKs {
			parent := s.Relation(fk.RefTable)
			if parent == nil {
				panic(fmt.Sprintf("schema: %s references unknown %q", child.Name, fk.RefTable))
			}
			g.edges = append(g.edges, Edge{
				Parent: parent.Name,
				Child:  child.Name,
				PK:     append([]string(nil), parent.PK...),
				FK:     append([]string(nil), fk.Cols...),
			})
		}
	}
	return g
}

// NewGraph builds a graph from explicit nodes and edges (used by tests and
// by the candidate-views mechanism when deriving the DAG).
func NewGraph(nodes []string, edges []Edge) *Graph {
	return &Graph{nodes: append([]string(nil), nodes...), edges: append([]Edge(nil), edges...)}
}

// Nodes lists the relations.
func (g *Graph) Nodes() []string { return append([]string(nil), g.nodes...) }

// Edges lists all edges.
func (g *Graph) Edges() []Edge { return append([]Edge(nil), g.edges...) }

// OutEdges lists edges leaving parent, in insertion order.
func (g *Graph) OutEdges(parent string) []Edge {
	var out []Edge
	for _, e := range g.edges {
		if e.Parent == parent {
			out = append(out, e)
		}
	}
	return out
}

// InEdges lists edges entering child.
func (g *Graph) InEdges(child string) []Edge {
	var out []Edge
	for _, e := range g.edges {
		if e.Child == child {
			out = append(out, e)
		}
	}
	return out
}

// HasNode reports membership.
func (g *Graph) HasNode(name string) bool {
	for _, n := range g.nodes {
		if n == name {
			return true
		}
	}
	return false
}

// TopoSort returns a deterministic topological ordering of the graph's
// nodes (ties broken alphabetically). It fails if the graph has a cycle; the
// paper assumes schemas free of circular references (§V).
func (g *Graph) TopoSort() ([]string, error) {
	indeg := make(map[string]int, len(g.nodes))
	for _, n := range g.nodes {
		indeg[n] = 0
	}
	// Parallel edges between the same pair both count; a node is ready
	// only when every incoming edge's parent has been emitted. Count
	// distinct incoming edges.
	for _, e := range g.edges {
		indeg[e.Child]++
	}
	ready := make([]string, 0, len(g.nodes))
	for _, n := range g.nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	sort.Strings(ready)
	var order []string
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		newly := []string{}
		for _, e := range g.OutEdges(n) {
			indeg[e.Child]--
			if indeg[e.Child] == 0 {
				newly = append(newly, e.Child)
			}
		}
		sort.Strings(newly)
		ready = append(ready, newly...)
		sort.Strings(ready)
	}
	if len(order) != len(g.nodes) {
		return nil, fmt.Errorf("schema: graph has a cycle; %d of %d nodes ordered", len(order), len(g.nodes))
	}
	return order, nil
}

// Path is an alternating sequence of relations and edges (Definition 3),
// beginning and ending in a relation.
type Path struct {
	Relations []string
	Edges     []Edge
}

// Start and End return the path's endpoints.
func (p Path) Start() string { return p.Relations[0] }
func (p Path) End() string   { return p.Relations[len(p.Relations)-1] }

func (p Path) String() string {
	var b strings.Builder
	for i, r := range p.Relations {
		if i > 0 {
			b.WriteString(" - ")
		}
		b.WriteString(r)
	}
	return b.String()
}

// Contains reports whether the path visits the relation.
func (p Path) Contains(rel string) bool {
	for _, r := range p.Relations {
		if r == rel {
			return true
		}
	}
	return false
}

// Paths enumerates every simple directed path from one relation to another.
// The graph must be acyclic (guaranteed after the DAG transformation of
// §V-B2 step 1); on cyclic graphs enumeration still terminates because paths
// are simple.
func (g *Graph) Paths(from, to string) []Path {
	var out []Path
	var walk func(cur string, rels []string, edges []Edge)
	walk = func(cur string, rels []string, edges []Edge) {
		if cur == to {
			out = append(out, Path{
				Relations: append([]string(nil), rels...),
				Edges:     append([]Edge(nil), edges...),
			})
			return
		}
		for _, e := range g.OutEdges(cur) {
			visited := false
			for _, r := range rels {
				if r == e.Child {
					visited = true
					break
				}
			}
			if visited {
				continue
			}
			walk(e.Child, append(rels, e.Child), append(edges, e))
		}
	}
	walk(from, []string{from}, nil)
	return out
}
