package schema

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Value is a typed SQL value: int64, float64, string or nil (SQL NULL).
type Value = any

// Row maps column name to value.
type Row map[string]Value

// Clone shallow-copies a row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// CompareValues orders two values: nil < numbers < strings; numbers compare
// numerically across int64/float64.
func CompareValues(a, b Value) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		default:
			return 1
		}
	}
	af, aNum := toFloat(a)
	bf, bNum := toFloat(b)
	if aNum && bNum {
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if aNum != bNum {
		if aNum {
			return -1
		}
		return 1
	}
	return strings.Compare(fmt.Sprint(a), fmt.Sprint(b))
}

func toFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case int:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

// ValuesEqual reports semantic equality (numeric across int/float).
func ValuesEqual(a, b Value) bool { return CompareValues(a, b) == 0 }

// --- Order-preserving key encoding -----------------------------------------
//
// Row keys in the NoSQL store are "delimited concatenations of the values of
// the key attributes" (§II-D). The encoding below preserves SQL ordering
// under bytewise comparison: integers are offset-binary big-endian, floats
// use the IEEE-754 total-order trick, strings are escaped so the delimiter
// never collides with content.

const keySep = byte(0x00)

// EncodeKey renders typed key attribute values into one sortable row key.
func EncodeKey(vals ...Value) string {
	var b strings.Builder
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(keySep)
		}
		b.Write(encodeKeyPart(v))
	}
	return b.String()
}

func encodeKeyPart(v Value) []byte {
	switch x := v.(type) {
	case nil:
		return []byte{0x01}
	case int64:
		var buf [9]byte
		buf[0] = 0x02
		binary.BigEndian.PutUint64(buf[1:], uint64(x)^(1<<63))
		return buf[:]
	case int:
		return encodeKeyPart(int64(x))
	case float64:
		bits := math.Float64bits(x)
		if x >= 0 || bits>>63 == 0 {
			bits ^= 1 << 63
		} else {
			bits = ^bits
		}
		var buf [9]byte
		buf[0] = 0x03
		binary.BigEndian.PutUint64(buf[1:], bits)
		return buf[:]
	case string:
		// Escape 0x00 -> 0x00 0xFF so the separator stays unambiguous.
		out := []byte{0x04}
		for i := 0; i < len(x); i++ {
			if x[i] == 0x00 {
				out = append(out, 0x00, 0xFF)
				continue
			}
			out = append(out, x[i])
		}
		return out
	default:
		panic(fmt.Sprintf("schema: unencodable key value %T", v))
	}
}

// KeyPrefix builds the scan prefix for a partial key (the given values plus
// a trailing separator), so that prefix scans match exactly the rows whose
// leading key attributes equal vals.
func KeyPrefix(vals ...Value) string {
	if len(vals) == 0 {
		return ""
	}
	return EncodeKey(vals...) + string(keySep)
}
