package schema

// Company builds the example Company database schema of Figure 2, used
// throughout §V and §VI to illustrate candidate view generation and views
// selection. Tests mirror the paper's worked example against it.
func Company() *Schema {
	s := New()
	s.AddRelation(&Relation{
		Name: "Address",
		Columns: []Column{
			{Name: "AID", Type: TInt},
			{Name: "Street", Type: TString},
			{Name: "City", Type: TString},
			{Name: "Zip", Type: TString},
		},
		PK: []string{"AID"},
	})
	s.AddRelation(&Relation{
		Name: "Department",
		Columns: []Column{
			{Name: "DNo", Type: TInt},
			{Name: "DName", Type: TString},
		},
		PK: []string{"DNo"},
	})
	s.AddRelation(&Relation{
		Name: "Employee",
		Columns: []Column{
			{Name: "EID", Type: TInt},
			{Name: "EName", Type: TString},
			{Name: "EHome_AID", Type: TInt},
			{Name: "EOffice_AID", Type: TInt},
			{Name: "E_DNo", Type: TInt},
		},
		PK: []string{"EID"},
		FKs: []ForeignKey{
			{Cols: []string{"EHome_AID"}, RefTable: "Address"},
			{Cols: []string{"EOffice_AID"}, RefTable: "Address"},
			{Cols: []string{"E_DNo"}, RefTable: "Department"},
		},
	})
	s.AddRelation(&Relation{
		Name: "Department_Location",
		Columns: []Column{
			{Name: "DL_DNo", Type: TInt},
			{Name: "DLocation", Type: TString},
		},
		PK: []string{"DL_DNo", "DLocation"},
		FKs: []ForeignKey{
			{Cols: []string{"DL_DNo"}, RefTable: "Department"},
		},
	})
	s.AddRelation(&Relation{
		Name: "Project",
		Columns: []Column{
			{Name: "PNo", Type: TInt},
			{Name: "PName", Type: TString},
			{Name: "P_DNo", Type: TInt},
		},
		PK: []string{"PNo"},
		FKs: []ForeignKey{
			{Cols: []string{"P_DNo"}, RefTable: "Department"},
		},
	})
	s.AddRelation(&Relation{
		Name: "Works_On",
		Columns: []Column{
			{Name: "WO_EID", Type: TInt},
			{Name: "WO_PNo", Type: TInt},
			{Name: "Hours", Type: TInt},
		},
		PK: []string{"WO_EID", "WO_PNo"},
		FKs: []ForeignKey{
			{Cols: []string{"WO_EID"}, RefTable: "Employee"},
			{Cols: []string{"WO_PNo"}, RefTable: "Project"},
		},
	})
	s.AddRelation(&Relation{
		Name: "Dependent",
		Columns: []Column{
			{Name: "DP_EID", Type: TInt},
			{Name: "DPName", Type: TString},
			{Name: "DPHome_AID", Type: TInt},
		},
		PK: []string{"DP_EID", "DPName"},
		FKs: []ForeignKey{
			{Cols: []string{"DP_EID"}, RefTable: "Employee"},
			{Cols: []string{"DPHome_AID"}, RefTable: "Address"},
		},
	})
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// CompanyRoots is the roots set Q_company = {Address, Department} used in
// the paper's worked example (Figure 4).
func CompanyRoots() []string { return []string{"Address", "Department"} }

// CompanyWorkload is the synthetic workload W_company = {w1, w2, w3} of
// §V-B2.
func CompanyWorkload() []string {
	return []string{
		// W1: address details of an employee.
		`SELECT * FROM Employee as e, Address as a WHERE a.AID = e.EHome_AID and e.EID = ?`,
		// W2: employees and their hours in a department.
		`SELECT * FROM Department as d, Employee as e, Works_On as wo
		 WHERE d.DNo = e.E_DNo and e.EID = wo.WO_EID and d.DNo = ?`,
		// W3: employees who work a certain number of hours.
		`SELECT * FROM Employee as e, Works_On as wo WHERE e.EID = wo.WO_EID and wo.Hours = ?`,
	}
}
