package zk

import (
	"errors"
	"sync"
	"testing"
)

func TestCreateGetSet(t *testing.T) {
	e := NewEnsemble()
	s := e.NewSession()
	if _, err := s.Create("/hbase", []byte("v1"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("/hbase", nil)
	if err != nil || string(got) != "v1" {
		t.Fatalf("Get = %q, %v; want v1", got, err)
	}
	if err := s.Set("/hbase", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Get("/hbase", nil)
	if string(got) != "v2" {
		t.Fatalf("Get after Set = %q, want v2", got)
	}
}

func TestCreateRequiresParent(t *testing.T) {
	e := NewEnsemble()
	s := e.NewSession()
	if _, err := s.Create("/a/b", nil, CreateOpts{}); !errors.Is(err, ErrNoNode) {
		t.Fatalf("error = %v, want ErrNoNode", err)
	}
}

func TestCreateDuplicate(t *testing.T) {
	e := NewEnsemble()
	s := e.NewSession()
	s.Create("/x", nil, CreateOpts{})
	if _, err := s.Create("/x", nil, CreateOpts{}); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("error = %v, want ErrNodeExists", err)
	}
}

func TestSequentialNames(t *testing.T) {
	e := NewEnsemble()
	s := e.NewSession()
	s.Create("/election", nil, CreateOpts{})
	p1, _ := s.Create("/election/n-", nil, CreateOpts{Sequential: true})
	p2, _ := s.Create("/election/n-", nil, CreateOpts{Sequential: true})
	if p1 == p2 {
		t.Fatal("sequential creates produced equal paths")
	}
	if p1 != "/election/n-0000000000" || p2 != "/election/n-0000000001" {
		t.Fatalf("sequential paths = %q, %q", p1, p2)
	}
}

func TestEphemeralRemovedOnClose(t *testing.T) {
	e := NewEnsemble()
	owner := e.NewSession()
	watcher := e.NewSession()
	owner.Create("/slaves", nil, CreateOpts{})
	owner.Create("/slaves/s0", nil, CreateOpts{Ephemeral: true})

	ch := make(chan Event, 1)
	kids, err := watcher.Children("/slaves", ch)
	if err != nil || len(kids) != 1 {
		t.Fatalf("Children = %v, %v", kids, err)
	}

	owner.Close()

	select {
	case ev := <-ch:
		if ev.Type != EventChildren {
			t.Fatalf("event = %v, want children event", ev)
		}
	default:
		t.Fatal("expected a child watch event after ephemeral owner closed")
	}
	kids, _ = watcher.Children("/slaves", nil)
	if len(kids) != 0 {
		t.Fatalf("ephemeral survived close: %v", kids)
	}
}

func TestDataWatchFiresOnce(t *testing.T) {
	e := NewEnsemble()
	s := e.NewSession()
	s.Create("/n", []byte("a"), CreateOpts{})
	ch := make(chan Event, 2)
	s.Get("/n", ch)
	s.Set("/n", []byte("b"))
	s.Set("/n", []byte("c")) // second change: watch already consumed
	if len(ch) != 1 {
		t.Fatalf("watch events = %d, want 1 (one-shot)", len(ch))
	}
}

func TestDeleteSemantics(t *testing.T) {
	e := NewEnsemble()
	s := e.NewSession()
	s.Create("/p", nil, CreateOpts{})
	s.Create("/p/c", nil, CreateOpts{})
	if err := s.Delete("/p"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("delete non-empty = %v, want ErrNotEmpty", err)
	}
	if err := s.Delete("/p/c"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("/p"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("/p"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("double delete = %v, want ErrNoNode", err)
	}
}

func TestDeleteFiresDataWatch(t *testing.T) {
	e := NewEnsemble()
	s := e.NewSession()
	s.Create("/n", nil, CreateOpts{})
	ch := make(chan Event, 1)
	s.Get("/n", ch)
	s.Delete("/n")
	select {
	case ev := <-ch:
		if ev.Type != EventDeleted {
			t.Fatalf("event type = %v, want deleted", ev.Type)
		}
	default:
		t.Fatal("expected delete event")
	}
}

func TestClosedSessionRejectsOps(t *testing.T) {
	e := NewEnsemble()
	s := e.NewSession()
	s.Close()
	if _, err := s.Create("/x", nil, CreateOpts{}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("create after close = %v, want ErrSessionClosed", err)
	}
	if _, err := s.Get("/x", nil); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("get after close = %v, want ErrSessionClosed", err)
	}
	if !s.Closed() {
		t.Fatal("Closed() = false after Close")
	}
}

func TestExistsWatchOnCreation(t *testing.T) {
	e := NewEnsemble()
	s := e.NewSession()
	s.Create("/dir", nil, CreateOpts{})
	ch := make(chan Event, 1)
	ok, err := s.Exists("/dir/pending", ch)
	if err != nil || ok {
		t.Fatalf("Exists = %v, %v; want false, nil", ok, err)
	}
	s.Create("/dir/pending", nil, CreateOpts{})
	if len(ch) != 1 {
		t.Fatal("expected creation to fire the armed watch")
	}
}

func TestElection(t *testing.T) {
	e := NewEnsemble()
	s1, s2 := e.NewSession(), e.NewSession()
	e1, err := JoinElection(s1, "/election", "node-1")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := JoinElection(s2, "/election", "node-2")
	if err != nil {
		t.Fatal(err)
	}
	if lead, _ := e1.IsLeader(); !lead {
		t.Fatal("first joiner should lead")
	}
	if lead, _ := e2.IsLeader(); lead {
		t.Fatal("second joiner should not lead")
	}
	if name, _ := e2.Leader(); name != "node-1" {
		t.Fatalf("Leader = %q, want node-1", name)
	}
	// Leader dies: leadership must pass.
	s1.Close()
	if lead, _ := e2.IsLeader(); !lead {
		t.Fatal("second joiner should lead after first session closes")
	}
}

func TestConcurrentSessionsNoRace(t *testing.T) {
	e := NewEnsemble()
	setup := e.NewSession()
	setup.Create("/root", nil, CreateOpts{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := e.NewSession()
			defer s.Close()
			for j := 0; j < 50; j++ {
				p, err := s.Create("/root/n-", nil, CreateOpts{Ephemeral: true, Sequential: true})
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get(p, nil); err != nil {
					t.Error(err)
					return
				}
				if err := s.Delete(p); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	kids, _ := setup.Children("/root", nil)
	if len(kids) != 0 {
		t.Fatalf("leftover nodes: %v", kids)
	}
}

func TestInvalidPaths(t *testing.T) {
	e := NewEnsemble()
	s := e.NewSession()
	for _, bad := range []string{"", "noslash", "/trailing/"} {
		if _, err := s.Create(bad, nil, CreateOpts{}); err == nil {
			t.Fatalf("Create(%q) accepted invalid path", bad)
		}
	}
}
