package zk

import (
	"sort"
	"strings"
)

// Election implements leader election over sequential ephemeral znodes, the
// standard ZooKeeper recipe: each participant creates an ephemeral sequential
// child under an election path; the lowest sequence number is the leader.
// The Synergy transaction layer master uses this both to establish itself and
// to detect slave failures (§VIII: "The Master node is responsible for
// detecting slave node failures").
type Election struct {
	sess *Session
	path string
	me   string
}

// JoinElection registers the caller as a candidate under path (created if
// absent) and returns its handle.
func JoinElection(sess *Session, path, name string) (*Election, error) {
	if ok, err := sess.Exists(path, nil); err != nil {
		return nil, err
	} else if !ok {
		if _, err := sess.Create(path, nil, CreateOpts{}); err != nil && !strings.Contains(err.Error(), "exists") {
			return nil, err
		}
	}
	me, err := sess.Create(path+"/"+name+"-", []byte(name), CreateOpts{Ephemeral: true, Sequential: true})
	if err != nil {
		return nil, err
	}
	return &Election{sess: sess, path: path, me: me}, nil
}

// IsLeader reports whether this candidate currently holds the lowest
// sequence number.
func (e *Election) IsLeader() (bool, error) {
	kids, err := e.sess.Children(e.path, nil)
	if err != nil {
		return false, err
	}
	if len(kids) == 0 {
		return false, nil
	}
	sort.Slice(kids, func(i, j int) bool { return seqOf(kids[i]) < seqOf(kids[j]) })
	return e.path+"/"+kids[0] == e.me, nil
}

// Me returns the candidate's znode path.
func (e *Election) Me() string { return e.me }

// Leader returns the name stored in the current leader's znode.
func (e *Election) Leader() (string, error) {
	kids, err := e.sess.Children(e.path, nil)
	if err != nil {
		return "", err
	}
	if len(kids) == 0 {
		return "", ErrNoNode
	}
	sort.Slice(kids, func(i, j int) bool { return seqOf(kids[i]) < seqOf(kids[j]) })
	data, err := e.sess.Get(e.path+"/"+kids[0], nil)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// seqOf extracts the trailing 10-digit sequence number.
func seqOf(name string) string {
	if len(name) < 10 {
		return name
	}
	return name[len(name)-10:]
}
