// Package zk is a simulated ZooKeeper ensemble: a hierarchical znode
// namespace with ephemeral and sequential nodes, one-shot watches and
// sessions. In the paper's architecture (Figure 7) ZooKeeper coordinates
// HBase (master liveness, region assignment bookkeeping) and the Synergy
// transaction layer (slave failure detection by the master, §VIII).
package zk

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Errors mirroring ZooKeeper's error codes.
var (
	ErrNoNode        = errors.New("zk: no node")
	ErrNodeExists    = errors.New("zk: node exists")
	ErrNotEmpty      = errors.New("zk: node has children")
	ErrSessionClosed = errors.New("zk: session closed")
)

// EventType identifies what happened to a watched node.
type EventType int

const (
	EventCreated EventType = iota
	EventDataChanged
	EventDeleted
	EventChildren
)

func (e EventType) String() string {
	switch e {
	case EventCreated:
		return "created"
	case EventDataChanged:
		return "data-changed"
	case EventDeleted:
		return "deleted"
	case EventChildren:
		return "children"
	default:
		return "unknown"
	}
}

// Event is delivered on a watch channel when a watched node changes.
type Event struct {
	Type EventType
	Path string
}

type znode struct {
	data     []byte
	ephemera *Session // owning session if ephemeral, else nil
	children map[string]*znode
	seq      int64 // next sequential-child counter

	dataWatches  []chan Event
	childWatches []chan Event
}

// Ensemble is the coordination service. A single Ensemble stands in for the
// replicated ZooKeeper quorum.
type Ensemble struct {
	mu      sync.Mutex
	root    *znode
	nextSID int64
}

// NewEnsemble returns an empty namespace with a root node "/".
func NewEnsemble() *Ensemble {
	return &Ensemble{root: &znode{children: map[string]*znode{}}}
}

// Session is one client connection. Closing it removes its ephemeral nodes,
// which is the liveness signal masters watch for.
type Session struct {
	ens    *Ensemble
	id     int64
	closed bool
	owned  map[string]struct{} // ephemeral paths owned by this session
}

// NewSession opens a session.
func (e *Ensemble) NewSession() *Session {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nextSID++
	return &Session{ens: e, id: e.nextSID, owned: map[string]struct{}{}}
}

// ID returns the session identifier.
func (s *Session) ID() int64 { return s.id }

func splitPath(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") || path != strings.TrimRight(path, "/") && path != "/" {
		return nil, fmt.Errorf("zk: invalid path %q", path)
	}
	if path == "/" {
		return nil, nil
	}
	return strings.Split(strings.TrimPrefix(path, "/"), "/"), nil
}

// lookup walks to the node at path. Caller holds e.mu.
func (e *Ensemble) lookup(path string) (*znode, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	n := e.root
	for _, p := range parts {
		next, ok := n.children[p]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoNode, path)
		}
		n = next
	}
	return n, nil
}

func notify(chans *[]chan Event, ev Event) {
	for _, ch := range *chans {
		select {
		case ch <- ev:
		default: // a slow watcher must not block the ensemble
		}
	}
	*chans = nil // ZooKeeper watches are one-shot
}

// CreateOpts control node creation.
type CreateOpts struct {
	Ephemeral  bool
	Sequential bool
}

// Create makes a znode at path with the given data. For sequential nodes the
// returned path carries the generated suffix. Parents must exist.
func (s *Session) Create(path string, data []byte, opts CreateOpts) (string, error) {
	e := s.ens
	e.mu.Lock()
	defer e.mu.Unlock()
	if s.closed {
		return "", ErrSessionClosed
	}
	parts, err := splitPath(path)
	if err != nil {
		return "", err
	}
	if len(parts) == 0 {
		return "", fmt.Errorf("%w: /", ErrNodeExists)
	}
	parentPath := "/" + strings.Join(parts[:len(parts)-1], "/")
	if len(parts) == 1 {
		parentPath = "/"
	}
	parent, err := e.lookup(parentPath)
	if err != nil {
		return "", err
	}
	name := parts[len(parts)-1]
	if opts.Sequential {
		name = fmt.Sprintf("%s%010d", name, parent.seq)
		parent.seq++
	}
	if _, dup := parent.children[name]; dup {
		return "", fmt.Errorf("%w: %s", ErrNodeExists, path)
	}
	n := &znode{data: append([]byte(nil), data...), children: map[string]*znode{}}
	if opts.Ephemeral {
		n.ephemera = s
	}
	parent.children[name] = n
	full := parentPath + "/" + name
	if parentPath == "/" {
		full = "/" + name
	}
	if opts.Ephemeral {
		s.owned[full] = struct{}{}
	}
	notify(&parent.childWatches, Event{Type: EventChildren, Path: parentPath})
	return full, nil
}

// Get returns the node's data and arms an optional one-shot data watch.
func (s *Session) Get(path string, watch chan Event) ([]byte, error) {
	e := s.ens
	e.mu.Lock()
	defer e.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	n, err := e.lookup(path)
	if err != nil {
		return nil, err
	}
	if watch != nil {
		n.dataWatches = append(n.dataWatches, watch)
	}
	return append([]byte(nil), n.data...), nil
}

// Set replaces the node's data.
func (s *Session) Set(path string, data []byte) error {
	e := s.ens
	e.mu.Lock()
	defer e.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	n, err := e.lookup(path)
	if err != nil {
		return err
	}
	n.data = append([]byte(nil), data...)
	notify(&n.dataWatches, Event{Type: EventDataChanged, Path: path})
	return nil
}

// Exists reports node presence and arms an optional one-shot watch that
// fires on creation, change or deletion.
func (s *Session) Exists(path string, watch chan Event) (bool, error) {
	e := s.ens
	e.mu.Lock()
	defer e.mu.Unlock()
	if s.closed {
		return false, ErrSessionClosed
	}
	n, err := e.lookup(path)
	if errors.Is(err, ErrNoNode) {
		// Watch for creation: arm on the parent's child watches.
		if watch != nil {
			if parent, perr := e.lookup(parentOf(path)); perr == nil {
				parent.childWatches = append(parent.childWatches, watch)
			}
		}
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if watch != nil {
		n.dataWatches = append(n.dataWatches, watch)
	}
	return true, nil
}

func parentOf(path string) string {
	i := strings.LastIndex(path, "/")
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

// Children lists a node's children, sorted, arming an optional one-shot
// child watch.
func (s *Session) Children(path string, watch chan Event) ([]string, error) {
	e := s.ens
	e.mu.Lock()
	defer e.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	n, err := e.lookup(path)
	if err != nil {
		return nil, err
	}
	if watch != nil {
		n.childWatches = append(n.childWatches, watch)
	}
	out := make([]string, 0, len(n.children))
	for name := range n.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Delete removes a childless node.
func (s *Session) Delete(path string) error {
	e := s.ens
	e.mu.Lock()
	defer e.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	return e.deleteLocked(path)
}

func (e *Ensemble) deleteLocked(path string) error {
	n, err := e.lookup(path)
	if err != nil {
		return err
	}
	if len(n.children) > 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, path)
	}
	parent, err := e.lookup(parentOf(path))
	if err != nil {
		return err
	}
	name := path[strings.LastIndex(path, "/")+1:]
	delete(parent.children, name)
	if n.ephemera != nil {
		delete(n.ephemera.owned, path)
	}
	notify(&n.dataWatches, Event{Type: EventDeleted, Path: path})
	notify(&parent.childWatches, Event{Type: EventChildren, Path: parentOf(path)})
	return nil
}

// Close ends the session, deleting its ephemeral nodes (firing watches).
// Closing twice is harmless.
func (s *Session) Close() {
	e := s.ens
	e.mu.Lock()
	defer e.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	paths := make([]string, 0, len(s.owned))
	for p := range s.owned {
		paths = append(paths, p)
	}
	// Delete deepest-first so parents empty out before removal.
	sort.Slice(paths, func(i, j int) bool { return len(paths[i]) > len(paths[j]) })
	for _, p := range paths {
		_ = e.deleteLocked(p)
	}
}

// Closed reports whether the session has ended.
func (s *Session) Closed() bool {
	s.ens.mu.Lock()
	defer s.ens.mu.Unlock()
	return s.closed
}
