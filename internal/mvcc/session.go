package mvcc

import (
	"synergy/internal/phoenix"
	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

// Session executes SQL statements as single-statement MVCC transactions
// through a Phoenix engine, the way the Baseline/MVCC-A/MVCC-UA systems run
// the workload with Phoenix-Tephra transaction support enabled (§IX-D2).
type Session struct {
	eng *phoenix.Engine
	srv *Server
}

// NewSession binds an engine to a transaction server.
func NewSession(eng *phoenix.Engine, srv *Server) *Session {
	return &Session{eng: eng, srv: srv}
}

// Engine exposes the underlying SQL engine.
func (s *Session) Engine() *phoenix.Engine { return s.eng }

// Server exposes the transaction server.
func (s *Session) Server() *Server { return s.srv }

// Query runs a SELECT inside a snapshot transaction.
func (s *Session) Query(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) (*phoenix.ResultSet, error) {
	tx := s.srv.Begin(ctx)
	rs, err := s.eng.QueryOpts(ctx, sel, params, phoenix.QueryOpts{Read: tx.ReadOpts()})
	if err != nil {
		s.srv.Abort(ctx, tx)
		return nil, err
	}
	if cerr := s.srv.Commit(ctx, tx); cerr != nil {
		return nil, cerr
	}
	return rs, nil
}

// Exec runs a write statement inside a transaction; on conflict the error is
// ErrConflict and the transaction's writes are invisible.
func (s *Session) Exec(ctx *sim.Ctx, stmt sqlparser.Statement, params []schema.Value) error {
	tx := s.srv.Begin(ctx)
	err := s.eng.Exec(ctx, stmt, params, phoenix.WriteOpts{
		TS:      tx.ID(),
		Read:    tx.ReadOpts(),
		OnWrite: tx.RecordWrite,
	})
	if err != nil {
		s.srv.Abort(ctx, tx)
		return err
	}
	return s.srv.Commit(ctx, tx)
}
