package mvcc

import (
	"errors"

	"synergy/internal/hbase"
	"synergy/internal/phoenix"
	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

// Session executes SQL statements as single-statement MVCC transactions
// through a Phoenix engine, the way the Baseline/MVCC-A/MVCC-UA systems run
// the workload with Phoenix-Tephra transaction support enabled (§IX-D2).
type Session struct {
	eng *phoenix.Engine
	srv *Server
}

// NewSession binds an engine to a transaction server.
func NewSession(eng *phoenix.Engine, srv *Server) *Session {
	return &Session{eng: eng, srv: srv}
}

// Engine exposes the underlying SQL engine.
func (s *Session) Engine() *phoenix.Engine { return s.eng }

// Server exposes the transaction server.
func (s *Session) Server() *Server { return s.srv }

// Query runs a SELECT inside a snapshot transaction.
func (s *Session) Query(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) (*phoenix.ResultSet, error) {
	cur, err := s.QueryStream(ctx, sel, params)
	if err != nil {
		return nil, err
	}
	return phoenix.DrainCursor(ctx, cur)
}

// QueryStream runs a SELECT inside a snapshot transaction, returning a
// cursor. The transaction stays open for the cursor's lifetime and is
// settled by Close: committed after a clean drain, aborted if the cursor
// saw an error. The caller must Close the cursor and check its error.
func (s *Session) QueryStream(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) (phoenix.RowCursor, error) {
	tx := s.srv.Begin(ctx)
	cur, err := s.eng.QueryStreamOpts(ctx, sel, params, phoenix.QueryOpts{Read: tx.ReadOpts()})
	if err != nil {
		s.srv.Abort(ctx, tx)
		return nil, err
	}
	return phoenix.WithClose(cur, func(ctx *sim.Ctx, inner phoenix.RowCursor) error {
		if inner.Err() != nil {
			s.srv.Abort(ctx, tx)
			return nil
		}
		return s.srv.Commit(ctx, tx)
	}), nil
}

// Exec runs a write statement inside a transaction; on conflict the error is
// ErrConflict and the transaction's writes are invisible.
func (s *Session) Exec(ctx *sim.Ctx, stmt sqlparser.Statement, params []schema.Value) error {
	tx := s.srv.Begin(ctx)
	err := s.eng.Exec(ctx, stmt, params, phoenix.WriteOpts{
		TS:      tx.ID(),
		Read:    tx.ReadOpts(),
		OnWrite: tx.RecordWrite,
	})
	if err != nil {
		s.srv.Abort(ctx, tx)
		return err
	}
	return s.srv.Commit(ctx, tx)
}

// SessionTx is one multi-statement snapshot transaction with read-your-
// writes: every write statement buffers into a transaction-scoped mutator
// instead of flushing per statement, queries and the read-before-write of
// UPDATE/DELETE merge the pending buffer over the snapshot through the
// overlay, Commit flushes once and then runs conflict detection, and Abort
// discards the buffer with nothing persisted.
type SessionTx struct {
	sess *Session
	tx   *Tx
	mut  *hbase.BufferedMutator
	used bool // a statement has run (next one checkpoints first)
	done bool
}

// BeginTxn opens a multi-statement transaction on the session.
func (s *Session) BeginTxn(ctx *sim.Ctx) *SessionTx {
	tx := s.srv.Begin(ctx)
	return &SessionTx{sess: s, tx: tx, mut: s.eng.Client().NewTxMutator()}
}

// ErrFinishedTxn reports use of a session transaction after Commit/Abort.
var ErrFinishedTxn = errors.New("mvcc: session transaction already finished")

// writeOpts returns the per-statement options carrying the transaction's
// snapshot, write-set recorder and shared mutator.
func (t *SessionTx) writeOpts() phoenix.WriteOpts {
	return phoenix.WriteOpts{
		TS:      t.tx.ID(),
		Read:    t.tx.ReadOpts(),
		OnWrite: t.tx.RecordWrite,
		Mutator: t.mut,
	}
}

// Exec buffers one write statement into the transaction. Each statement
// after the first runs at a fresh checkpoint (write pointer), so a
// statement's deletes never shadow a later statement's puts on the same
// row at an equal timestamp.
func (t *SessionTx) Exec(ctx *sim.Ctx, stmt sqlparser.Statement, params []schema.Value) error {
	if t.done {
		return ErrFinishedTxn
	}
	if t.used {
		t.tx.Checkpoint(ctx)
	}
	t.used = true
	return t.sess.eng.Exec(ctx, stmt, params, t.writeOpts())
}

// Query runs a SELECT inside the transaction; scans and point lookups see
// the transaction's own buffered writes merged over its snapshot.
func (t *SessionTx) Query(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) (*phoenix.ResultSet, error) {
	if t.done {
		return nil, ErrFinishedTxn
	}
	return t.sess.eng.QueryOpts(ctx, sel, params, phoenix.QueryOpts{Read: t.tx.ReadOpts(), View: t.mut.View()})
}

// QueryStream is Query returning a cursor. The cursor reads through the
// transaction's snapshot and write overlay but holds no transaction state:
// Close only releases the scanner. It must be closed before the next
// statement runs (the next Exec advances the transaction's checkpoint).
func (t *SessionTx) QueryStream(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) (phoenix.RowCursor, error) {
	if t.done {
		return nil, ErrFinishedTxn
	}
	return t.sess.eng.QueryStreamOpts(ctx, sel, params, phoenix.QueryOpts{Read: t.tx.ReadOpts(), View: t.mut.View()})
}

// Commit flushes the buffered writes as one batch round, then finishes the
// transaction (conflict detection included).
func (t *SessionTx) Commit(ctx *sim.Ctx) error {
	if t.done {
		return ErrFinishedTxn
	}
	t.done = true
	if err := t.mut.Flush(ctx); err != nil {
		t.sess.srv.Abort(ctx, t.tx)
		return err
	}
	return t.sess.srv.Commit(ctx, t.tx)
}

// Abort discards the buffered writes — nothing reaches the store — and
// invalidates the transaction.
func (t *SessionTx) Abort(ctx *sim.Ctx) {
	if t.done {
		return
	}
	t.done = true
	t.mut.Discard()
	t.sess.srv.Abort(ctx, t.tx)
}
