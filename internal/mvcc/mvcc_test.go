package mvcc

import (
	"errors"
	"sync"
	"testing"

	"synergy/internal/cluster"
	"synergy/internal/hbase"
	"synergy/internal/phoenix"
	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

func newSession(t *testing.T) *Session {
	t.Helper()
	hc := hbase.NewHCluster(cluster.NewDefault(nil), nil, nil)
	cat := phoenix.NewCatalog(hc)
	rel := &schema.Relation{
		Name: "Account",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TInt},
			{Name: "bal", Type: schema.TInt},
			{Name: "owner", Type: schema.TString},
		},
		PK: []string{"id"},
	}
	if _, err := cat.RegisterRelation(rel, hbase.TableSpec{MaxVersions: 1000}); err != nil {
		t.Fatal(err)
	}
	return NewSession(phoenix.NewEngine(cat), NewServer(hc.Costs()))
}

func insert(t *testing.T, s *Session, id, bal int64, owner string) {
	t.Helper()
	stmt := sqlparser.MustParse("INSERT INTO Account (id, bal, owner) VALUES (?, ?, ?)")
	if err := s.Exec(sim.NewCtx(), stmt, []schema.Value{id, bal, owner}); err != nil {
		t.Fatal(err)
	}
}

func balance(t *testing.T, s *Session, id int64) (int64, bool) {
	t.Helper()
	sel := sqlparser.MustParse("SELECT bal FROM Account WHERE id = ?").(*sqlparser.SelectStmt)
	rs, err := s.Query(sim.NewCtx(), sel, []schema.Value{id})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) == 0 {
		return 0, false
	}
	return rs.Rows[0]["bal"].(int64), true
}

func TestCommittedWritesVisible(t *testing.T) {
	s := newSession(t)
	insert(t, s, 1, 100, "alice")
	if bal, ok := balance(t, s, 1); !ok || bal != 100 {
		t.Fatalf("balance = %d, %v; want 100, true", bal, ok)
	}
}

func TestAbortedWritesInvisible(t *testing.T) {
	s := newSession(t)
	insert(t, s, 1, 100, "alice")
	ctx := sim.NewCtx()
	tx := s.Server().Begin(ctx)
	err := s.Engine().Exec(ctx, sqlparser.MustParse("UPDATE Account SET bal = ? WHERE id = ?"),
		[]schema.Value{int64(999), int64(1)}, phoenix.WriteOpts{TS: tx.ID(), Read: tx.ReadOpts(), OnWrite: tx.RecordWrite})
	if err != nil {
		t.Fatal(err)
	}
	s.Server().Abort(ctx, tx)
	if bal, _ := balance(t, s, 1); bal != 100 {
		t.Fatalf("aborted write visible: bal = %d", bal)
	}
}

func TestSnapshotIsolationAgainstInFlight(t *testing.T) {
	s := newSession(t)
	insert(t, s, 1, 100, "alice")
	ctx := sim.NewCtx()

	// Writer begins and writes but does not commit yet.
	writer := s.Server().Begin(ctx)
	if err := s.Engine().Exec(ctx, sqlparser.MustParse("UPDATE Account SET bal = ? WHERE id = ?"),
		[]schema.Value{int64(50), int64(1)}, phoenix.WriteOpts{TS: writer.ID(), Read: writer.ReadOpts(), OnWrite: writer.RecordWrite}); err != nil {
		t.Fatal(err)
	}

	// Reader beginning now must not see the in-flight write.
	reader := s.Server().Begin(ctx)
	sel := sqlparser.MustParse("SELECT bal FROM Account WHERE id = ?").(*sqlparser.SelectStmt)
	rs, err := s.Engine().QueryOpts(ctx, sel, []schema.Value{int64(1)}, phoenix.QueryOpts{Read: reader.ReadOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0]["bal"].(int64) != 100 {
		t.Fatalf("reader saw uncommitted write: %v", rs.Rows[0])
	}

	// Even after the writer commits, the reader's snapshot is stable.
	if err := s.Server().Commit(ctx, writer); err != nil {
		t.Fatal(err)
	}
	rs, _ = s.Engine().QueryOpts(ctx, sel, []schema.Value{int64(1)}, phoenix.QueryOpts{Read: reader.ReadOpts()})
	if rs.Rows[0]["bal"].(int64) != 100 {
		t.Fatalf("snapshot unstable after concurrent commit: %v", rs.Rows[0])
	}
	s.Server().Commit(ctx, reader)

	// A fresh transaction sees the committed value.
	if bal, _ := balance(t, s, 1); bal != 50 {
		t.Fatalf("new snapshot bal = %d, want 50", bal)
	}
}

func TestOwnWritesVisible(t *testing.T) {
	s := newSession(t)
	insert(t, s, 1, 100, "alice")
	ctx := sim.NewCtx()
	tx := s.Server().Begin(ctx)
	if err := s.Engine().Exec(ctx, sqlparser.MustParse("UPDATE Account SET bal = ? WHERE id = ?"),
		[]schema.Value{int64(42), int64(1)}, phoenix.WriteOpts{TS: tx.ID(), Read: tx.ReadOpts(), OnWrite: tx.RecordWrite}); err != nil {
		t.Fatal(err)
	}
	sel := sqlparser.MustParse("SELECT bal FROM Account WHERE id = ?").(*sqlparser.SelectStmt)
	rs, err := s.Engine().QueryOpts(ctx, sel, []schema.Value{int64(1)}, phoenix.QueryOpts{Read: tx.ReadOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0]["bal"].(int64) != 42 {
		t.Fatalf("own write invisible: %v", rs.Rows[0])
	}
	s.Server().Commit(ctx, tx)
}

func TestWriteWriteConflictAborts(t *testing.T) {
	s := newSession(t)
	insert(t, s, 1, 100, "alice")
	ctx := sim.NewCtx()

	t1 := s.Server().Begin(ctx)
	t2 := s.Server().Begin(ctx)
	upd := sqlparser.MustParse("UPDATE Account SET bal = ? WHERE id = ?")

	if err := s.Engine().Exec(ctx, upd, []schema.Value{int64(10), int64(1)},
		phoenix.WriteOpts{TS: t1.ID(), Read: t1.ReadOpts(), OnWrite: t1.RecordWrite}); err != nil {
		t.Fatal(err)
	}
	if err := s.Engine().Exec(ctx, upd, []schema.Value{int64(20), int64(1)},
		phoenix.WriteOpts{TS: t2.ID(), Read: t2.ReadOpts(), OnWrite: t2.RecordWrite}); err != nil {
		t.Fatal(err)
	}
	if err := s.Server().Commit(ctx, t1); err != nil {
		t.Fatalf("first committer should win: %v", err)
	}
	if err := s.Server().Commit(ctx, t2); !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer error = %v, want ErrConflict", err)
	}
	// The losing write must be invisible.
	if bal, _ := balance(t, s, 1); bal != 10 {
		t.Fatalf("bal = %d, want 10", bal)
	}
	if st := s.Server().Stats(); st.Conflicts != 1 {
		t.Fatalf("conflicts = %d, want 1", st.Conflicts)
	}
}

func TestNoConflictOnDisjointRows(t *testing.T) {
	s := newSession(t)
	insert(t, s, 1, 100, "a")
	insert(t, s, 2, 200, "b")
	ctx := sim.NewCtx()
	t1 := s.Server().Begin(ctx)
	t2 := s.Server().Begin(ctx)
	upd := sqlparser.MustParse("UPDATE Account SET bal = ? WHERE id = ?")
	s.Engine().Exec(ctx, upd, []schema.Value{int64(1), int64(1)},
		phoenix.WriteOpts{TS: t1.ID(), Read: t1.ReadOpts(), OnWrite: t1.RecordWrite})
	s.Engine().Exec(ctx, upd, []schema.Value{int64(2), int64(2)},
		phoenix.WriteOpts{TS: t2.ID(), Read: t2.ReadOpts(), OnWrite: t2.RecordWrite})
	if err := s.Server().Commit(ctx, t1); err != nil {
		t.Fatal(err)
	}
	if err := s.Server().Commit(ctx, t2); err != nil {
		t.Fatalf("disjoint rows must not conflict: %v", err)
	}
}

func TestPerStatementOverheadMatchesPaper(t *testing.T) {
	s := newSession(t)
	insert(t, s, 1, 100, "alice")
	ctx := sim.NewCtx()
	sel := sqlparser.MustParse("SELECT bal FROM Account WHERE id = ?").(*sqlparser.SelectStmt)
	if _, err := s.Query(ctx, sel, []schema.Value{int64(1)}); err != nil {
		t.Fatal(err)
	}
	// §IX-D4: "MVCC adds an overhead of 800-900 ms to each statement".
	lo, hi := sim.FromMillis(800), sim.FromMillis(950)
	if got := ctx.Elapsed(); got < lo || got > hi {
		t.Fatalf("per-statement elapsed = %v, want within [%v, %v]", got, lo, hi)
	}
}

func TestDeleteUnderMVCC(t *testing.T) {
	s := newSession(t)
	insert(t, s, 7, 70, "g")
	if err := s.Exec(sim.NewCtx(), sqlparser.MustParse("DELETE FROM Account WHERE id = ?"), []schema.Value{int64(7)}); err != nil {
		t.Fatal(err)
	}
	if _, ok := balance(t, s, 7); ok {
		t.Fatal("row visible after MVCC delete")
	}
}

func TestConcurrentSessionsRace(t *testing.T) {
	s := newSession(t)
	for i := int64(1); i <= 8; i++ {
		insert(t, s, i, 0, "u")
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int64) {
			defer wg.Done()
			upd := sqlparser.MustParse("UPDATE Account SET bal = ? WHERE id = ?")
			for i := 0; i < 8; i++ {
				err := s.Exec(sim.NewCtx(), upd, []schema.Value{int64(i), w + 1})
				if err != nil && !errors.Is(err, ErrConflict) {
					errs <- err
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Server().Stats()
	if st.Commits == 0 {
		t.Fatal("no transactions committed")
	}
}

func TestCommitTwiceRejected(t *testing.T) {
	s := newSession(t)
	ctx := sim.NewCtx()
	tx := s.Server().Begin(ctx)
	if err := s.Server().Commit(ctx, tx); err != nil {
		t.Fatal(err)
	}
	if err := s.Server().Commit(ctx, tx); !errors.Is(err, ErrFinished) {
		t.Fatalf("second commit = %v, want ErrFinished", err)
	}
}
