// Package mvcc is a Tephra-like multi-version concurrency control layer: a
// transaction server that issues snapshot transactions over the HBase-like
// store (§II-D). The Baseline, MVCC-A and MVCC-UA systems of the paper's
// evaluation run every statement through this layer; its begin/commit server
// round trips are the 800-900 ms per-statement overhead the paper measures
// (§IX-D4).
//
// Transactions write cells stamped with their transaction id and read with a
// snapshot filter that hides (a) transactions in progress at begin time, (b)
// invalidated (aborted) transactions and (c) transactions that began later.
// Write-write conflicts are detected at commit against the recently committed
// write sets (optimistic concurrency control).
package mvcc

import (
	"errors"
	"fmt"
	"sync"

	"synergy/internal/hbase"
	"synergy/internal/sim"
)

// ErrConflict reports a write-write conflict detected at commit.
var ErrConflict = errors.New("mvcc: transaction conflict")

// ErrFinished reports use of a transaction after commit or abort.
var ErrFinished = errors.New("mvcc: transaction already finished")

type commitRecord struct {
	txid     int64
	commitTS int64
	writes   map[string]struct{}
}

// Server is the transaction manager (the Tephra server in Figure 7's
// transaction layer).
type Server struct {
	costs *sim.Costs

	mu        sync.Mutex
	nextID    int64
	active    map[int64]struct{}
	invalid   map[int64]struct{}
	committed []commitRecord
	// stats
	begun, commits, aborts, conflicts int64
}

// NewServer creates a transaction server with the given latency calibration.
func NewServer(costs *sim.Costs) *Server {
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	return &Server{
		costs:   costs,
		active:  map[int64]struct{}{},
		invalid: map[int64]struct{}{},
	}
}

// Tx is one in-flight transaction.
type Tx struct {
	srv      *Server
	id       int64
	excluded map[int64]struct{} // active at begin
	writes   map[string]struct{}
	done     bool
}

// Begin starts a transaction, charging the snapshot-construction round trip.
func (s *Server) Begin(ctx *sim.Ctx) *Tx {
	ctx.Charge(s.costs.MVCCBegin)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	s.begun++
	id := s.nextID
	excl := make(map[int64]struct{}, len(s.active))
	for a := range s.active {
		excl[a] = struct{}{}
	}
	s.active[id] = struct{}{}
	return &Tx{srv: s, id: id, excluded: excl, writes: map[string]struct{}{}}
}

// ID returns the transaction id, which doubles as its write timestamp.
func (t *Tx) ID() int64 { return t.id }

// ReadOpts returns the snapshot visibility filter for this transaction's
// reads.
func (t *Tx) ReadOpts() hbase.ReadOpts {
	srv := t.srv
	id := t.id
	excluded := t.excluded
	return hbase.ReadOpts{
		ReadTS: id,
		Excluded: func(ts int64) bool {
			if ts == id {
				return false // own writes are visible
			}
			if _, inProgress := excluded[ts]; inProgress {
				return true
			}
			srv.mu.Lock()
			_, bad := srv.invalid[ts]
			if !bad {
				_, stillActive := srv.active[ts]
				bad = stillActive
			}
			srv.mu.Unlock()
			return bad
		},
	}
}

// RecordWrite adds a row to the transaction's write set; it has the
// signature of phoenix.WriteOpts.OnWrite.
func (t *Tx) RecordWrite(table, rowKey string) {
	t.writes[table+"\x00"+rowKey] = struct{}{}
}

// WriteCount reports the size of the write set.
func (t *Tx) WriteCount() int { return len(t.writes) }

// Commit finishes the transaction, charging the two-phase commit round trip
// and running conflict detection: if any transaction that committed after
// this one began wrote an overlapping row, this transaction aborts with
// ErrConflict (its writes become invisible via the invalid list).
func (s *Server) Commit(ctx *sim.Ctx, t *Tx) error {
	ctx.Charge(s.costs.MVCCCommit)
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.done {
		return ErrFinished
	}
	t.done = true
	delete(s.active, t.id)

	if len(t.writes) > 0 {
		for _, rec := range s.committed {
			if rec.commitTS <= t.id {
				continue // committed before we began: part of our snapshot
			}
			for w := range t.writes {
				if _, clash := rec.writes[w]; clash {
					s.invalid[t.id] = struct{}{}
					s.aborts++
					s.conflicts++
					return fmt.Errorf("%w: tx %d overlaps tx %d on %q", ErrConflict, t.id, rec.txid, w)
				}
			}
		}
		s.nextID++
		s.committed = append(s.committed, commitRecord{txid: t.id, commitTS: s.nextID, writes: t.writes})
		s.gcLocked()
	}
	s.commits++
	return nil
}

// Abort invalidates the transaction: its writes (stamped with its id) become
// permanently invisible.
func (s *Server) Abort(ctx *sim.Ctx, t *Tx) {
	ctx.Charge(s.costs.RPC)
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.done {
		return
	}
	t.done = true
	delete(s.active, t.id)
	if len(t.writes) > 0 {
		s.invalid[t.id] = struct{}{}
	}
	s.aborts++
}

// gcLocked prunes committed records no active transaction can conflict
// with. Caller holds s.mu.
func (s *Server) gcLocked() {
	minActive := s.nextID + 1
	for a := range s.active {
		if a < minActive {
			minActive = a
		}
	}
	kept := s.committed[:0]
	for _, rec := range s.committed {
		if rec.commitTS > minActive {
			kept = append(kept, rec)
		}
	}
	s.committed = kept
}

// Stats reports server counters.
type Stats struct {
	Begun, Commits, Aborts, Conflicts int64
	InvalidListSize                   int
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Begun: s.begun, Commits: s.commits, Aborts: s.aborts, Conflicts: s.conflicts,
		InvalidListSize: len(s.invalid),
	}
}
