// Package mvcc is a Tephra-like multi-version concurrency control layer: a
// transaction server that issues snapshot transactions over the HBase-like
// store (§II-D). The Baseline, MVCC-A and MVCC-UA systems of the paper's
// evaluation run every statement through this layer; its begin/commit server
// round trips are the 800-900 ms per-statement overhead the paper measures
// (§IX-D4).
//
// Transactions write cells stamped with their transaction id and read with a
// snapshot filter that hides (a) transactions in progress at begin time, (b)
// invalidated (aborted) transactions and (c) transactions that began later.
// Write-write conflicts are detected at commit against the recently committed
// write sets (optimistic concurrency control).
package mvcc

import (
	"errors"
	"fmt"
	"sync"

	"synergy/internal/hbase"
	"synergy/internal/sim"
)

// ErrConflict reports a write-write conflict detected at commit.
var ErrConflict = errors.New("mvcc: transaction conflict")

// ErrFinished reports use of a transaction after commit or abort.
var ErrFinished = errors.New("mvcc: transaction already finished")

type commitRecord struct {
	txid     int64
	commitTS int64
	writes   map[string]struct{}
}

// Server is the transaction manager (the Tephra server in Figure 7's
// transaction layer).
type Server struct {
	costs *sim.Costs
	// next allocates transaction ids / commit timestamps. Deployments over
	// an HBase cluster share the store's timestamp oracle (as Tephra's
	// transaction manager does), so snapshot ids order consistently against
	// bulk-loaded and non-transactional cell timestamps; standalone servers
	// fall back to a private counter.
	next func() int64

	mu        sync.Mutex
	last      int64 // highest id allocated, for GC horizon
	active    map[int64]struct{}
	invalid   map[int64]struct{}
	committed []commitRecord
	// stats
	begun, commits, aborts, conflicts int64
}

// NewServer creates a standalone transaction server with the given latency
// calibration, allocating ids from a private counter.
func NewServer(costs *sim.Costs) *Server {
	var ctr int64
	return NewServerWithOracle(costs, func() int64 { ctr++; return ctr })
}

// NewServerWithOracle creates a transaction server whose ids come from the
// given timestamp oracle — deployments pass the store's clock so snapshot
// visibility lines up with every cell timestamp in the cluster.
func NewServerWithOracle(costs *sim.Costs, next func() int64) *Server {
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	return &Server{
		costs:   costs,
		next:    next,
		active:  map[int64]struct{}{},
		invalid: map[int64]struct{}{},
	}
}

// ActiveTxns reports the number of in-flight transactions — snapshots the
// server is retaining conflict records for. Session layers use it to verify
// that a disconnected client's transaction was aborted and released.
func (s *Server) ActiveTxns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.active)
}

// allocLocked draws the next id from the oracle. Caller holds s.mu.
func (s *Server) allocLocked() int64 {
	id := s.next()
	if id > s.last {
		s.last = id
	}
	return id
}

// Tx is one in-flight transaction. A transaction holds one snapshot (taken
// at Begin) and one or more write pointers: Checkpoint — Tephra's
// mechanism for multi-statement transactions — allocates a fresh pointer
// per statement, so a statement's tombstones sort strictly below a later
// statement's puts on the same row instead of shadowing them at an equal
// timestamp. All of a transaction's pointers are visible to its own reads
// and invisible to everyone else until commit.
type Tx struct {
	srv      *Server
	id       int64              // snapshot id (first write pointer)
	cur      int64              // current statement's write pointer
	stamps   map[int64]struct{} // every write pointer of this transaction
	excluded map[int64]struct{} // active at begin
	writes   map[string]struct{}
	done     bool
}

// Begin starts a transaction, charging the snapshot-construction round trip.
func (s *Server) Begin(ctx *sim.Ctx) *Tx {
	ctx.Charge(s.costs.MVCCBegin)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.begun++
	id := s.allocLocked()
	excl := make(map[int64]struct{}, len(s.active))
	for a := range s.active {
		excl[a] = struct{}{}
	}
	s.active[id] = struct{}{}
	return &Tx{
		srv: s, id: id, cur: id,
		stamps:   map[int64]struct{}{id: {}},
		excluded: excl,
		writes:   map[string]struct{}{},
	}
}

// Checkpoint allocates a fresh write pointer for the transaction's next
// statement (a Tephra checkpoint: one transaction-manager round trip). The
// previous pointers stay registered — and excluded from every other
// snapshot — until the transaction finishes.
func (t *Tx) Checkpoint(ctx *sim.Ctx) {
	s := t.srv
	ctx.Charge(s.costs.RPC)
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.allocLocked()
	s.active[id] = struct{}{}
	t.stamps[id] = struct{}{}
	t.cur = id
}

// ID returns the transaction's current write pointer — the timestamp its
// next statement writes at.
func (t *Tx) ID() int64 { return t.cur }

// ReadOpts returns the snapshot visibility filter for this transaction's
// reads: everything committed at or before the Begin snapshot, plus the
// transaction's own write pointers, minus in-progress and invalidated
// transactions.
func (t *Tx) ReadOpts() hbase.ReadOpts {
	srv := t.srv
	id := t.id
	stamps := t.stamps
	excluded := t.excluded
	return hbase.ReadOpts{
		ReadTS: t.cur,
		Excluded: func(ts int64) bool {
			if _, own := stamps[ts]; own {
				return false // own writes are visible
			}
			if ts > id {
				return true // past our snapshot
			}
			if _, inProgress := excluded[ts]; inProgress {
				return true
			}
			srv.mu.Lock()
			_, bad := srv.invalid[ts]
			if !bad {
				_, stillActive := srv.active[ts]
				bad = stillActive
			}
			srv.mu.Unlock()
			return bad
		},
	}
}

// RecordWrite adds a row to the transaction's write set; it has the
// signature of phoenix.WriteOpts.OnWrite.
func (t *Tx) RecordWrite(table, rowKey string) {
	t.writes[table+"\x00"+rowKey] = struct{}{}
}

// WriteCount reports the size of the write set.
func (t *Tx) WriteCount() int { return len(t.writes) }

// Commit finishes the transaction, charging the two-phase commit round trip
// and running conflict detection: if any transaction that committed after
// this one began wrote an overlapping row, this transaction aborts with
// ErrConflict (its writes become invisible via the invalid list).
func (s *Server) Commit(ctx *sim.Ctx, t *Tx) error {
	ctx.Charge(s.costs.MVCCCommit)
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.done {
		return ErrFinished
	}
	t.done = true
	for id := range t.stamps {
		delete(s.active, id)
	}

	if len(t.writes) > 0 {
		for _, rec := range s.committed {
			if rec.commitTS <= t.id {
				continue // committed before we began: part of our snapshot
			}
			for w := range t.writes {
				if _, clash := rec.writes[w]; clash {
					for id := range t.stamps {
						s.invalid[id] = struct{}{}
					}
					s.aborts++
					s.conflicts++
					return fmt.Errorf("%w: tx %d overlaps tx %d on %q", ErrConflict, t.id, rec.txid, w)
				}
			}
		}
		s.committed = append(s.committed, commitRecord{txid: t.id, commitTS: s.allocLocked(), writes: t.writes})
		s.gcLocked()
	}
	s.commits++
	return nil
}

// Abort invalidates the transaction: its writes (stamped with its id) become
// permanently invisible.
func (s *Server) Abort(ctx *sim.Ctx, t *Tx) {
	ctx.Charge(s.costs.RPC)
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.done {
		return
	}
	t.done = true
	for id := range t.stamps {
		delete(s.active, id)
		if len(t.writes) > 0 {
			s.invalid[id] = struct{}{}
		}
	}
	s.aborts++
}

// gcLocked prunes committed records no active transaction can conflict
// with. Caller holds s.mu.
func (s *Server) gcLocked() {
	minActive := s.last + 1
	for a := range s.active {
		if a < minActive {
			minActive = a
		}
	}
	kept := s.committed[:0]
	for _, rec := range s.committed {
		if rec.commitTS > minActive {
			kept = append(kept, rec)
		}
	}
	s.committed = kept
}

// Stats reports server counters.
type Stats struct {
	Begun, Commits, Aborts, Conflicts int64
	InvalidListSize                   int
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Begun: s.begun, Commits: s.commits, Aborts: s.aborts, Conflicts: s.conflicts,
		InvalidListSize: len(s.invalid),
	}
}
