package mvcc

import (
	"errors"
	"testing"

	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

// TestSessionTxnReadYourWrites is the overlay parity contract at the SQL
// level: inside one multi-statement transaction, a point get, a limit scan
// and an unlimited scan all see the transaction's own uncommitted rows,
// while a concurrent session sees none of them until commit.
func TestSessionTxnReadYourWrites(t *testing.T) {
	s := newSession(t)
	insert(t, s, 1, 100, "alice")
	insert(t, s, 2, 200, "bob")

	ctx := sim.NewCtx()
	tx := s.BeginTxn(ctx)
	exec := func(q string, params ...schema.Value) {
		t.Helper()
		if err := tx.Exec(ctx, sqlparser.MustParse(q), params); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	exec("INSERT INTO Account (id, bal, owner) VALUES (?, ?, ?)", int64(3), int64(300), "carol")
	exec("UPDATE Account SET bal = ? WHERE id = ?", int64(333), int64(3))
	exec("UPDATE Account SET bal = ? WHERE id = ?", int64(111), int64(1))

	// Point get sees the buffered insert + update.
	point := sqlparser.MustParse("SELECT bal FROM Account WHERE id = ?").(*sqlparser.SelectStmt)
	rs, err := tx.Query(ctx, point, []schema.Value{int64(3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0]["bal"].(int64) != 333 {
		t.Fatalf("point get inside txn = %v, want bal 333", rs.Rows)
	}

	// Unlimited scan sees all three rows with buffered values.
	full := sqlparser.MustParse("SELECT id, bal FROM Account").(*sqlparser.SelectStmt)
	rs, err = tx.Query(ctx, full, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 3 {
		t.Fatalf("full scan inside txn = %d rows, want 3", len(rs.Rows))
	}
	bals := map[int64]int64{}
	for _, r := range rs.Rows {
		bals[r["id"].(int64)] = r["bal"].(int64)
	}
	if bals[1] != 111 || bals[2] != 200 || bals[3] != 333 {
		t.Fatalf("full scan inside txn = %v, want own updates visible", bals)
	}

	// Limit scan merges pending rows into the bounded stream.
	limited := sqlparser.MustParse("SELECT id FROM Account ORDER BY id ASC LIMIT 3").(*sqlparser.SelectStmt)
	rs, err = tx.Query(ctx, limited, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 3 {
		t.Fatalf("limit scan inside txn = %d rows, want 3", len(rs.Rows))
	}

	// A concurrent session sees none of it.
	if _, ok := balance(t, s, 3); ok {
		t.Fatal("concurrent session saw an uncommitted insert")
	}
	if bal, _ := balance(t, s, 1); bal != 100 {
		t.Fatalf("concurrent session saw uncommitted update: bal = %d", bal)
	}

	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if bal, ok := balance(t, s, 3); !ok || bal != 333 {
		t.Fatalf("post-commit balance = %d, %v; want 333", bal, ok)
	}
	if bal, _ := balance(t, s, 1); bal != 111 {
		t.Fatalf("post-commit balance = %d, want 111", bal)
	}
}

// TestSessionTxnDeleteThenReinsert is the checkpoint regression: without
// per-statement write pointers, a DELETE and a later re-INSERT of the same
// row share one timestamp and the tombstone shadows the put — the row is
// silently lost both inside the transaction and after commit.
func TestSessionTxnDeleteThenReinsert(t *testing.T) {
	s := newSession(t)
	insert(t, s, 1, 100, "alice")

	ctx := sim.NewCtx()
	tx := s.BeginTxn(ctx)
	if err := tx.Exec(ctx, sqlparser.MustParse("DELETE FROM Account WHERE id = ?"),
		[]schema.Value{int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Exec(ctx, sqlparser.MustParse("INSERT INTO Account (id, bal, owner) VALUES (?, ?, ?)"),
		[]schema.Value{int64(1), int64(500), "alice2"}); err != nil {
		t.Fatal(err)
	}
	// The transaction's own read sees the re-inserted row.
	point := sqlparser.MustParse("SELECT bal FROM Account WHERE id = ?").(*sqlparser.SelectStmt)
	rs, err := tx.Query(ctx, point, []schema.Value{int64(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0]["bal"].(int64) != 500 {
		t.Fatalf("read inside txn after delete+reinsert = %v, want bal 500", rs.Rows)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if bal, ok := balance(t, s, 1); !ok || bal != 500 {
		t.Fatalf("post-commit balance = %d, %v; re-inserted row lost", bal, ok)
	}
}

// TestSessionTxnAbortDiscards: an aborted transaction's buffered writes
// never reach the store, and the transaction counts as aborted.
func TestSessionTxnAbortDiscards(t *testing.T) {
	s := newSession(t)
	insert(t, s, 1, 100, "alice")

	ctx := sim.NewCtx()
	tx := s.BeginTxn(ctx)
	if err := tx.Exec(ctx, sqlparser.MustParse("UPDATE Account SET bal = ? WHERE id = ?"),
		[]schema.Value{int64(999), int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Exec(ctx, sqlparser.MustParse("INSERT INTO Account (id, bal, owner) VALUES (?, ?, ?)"),
		[]schema.Value{int64(7), int64(700), "ghost"}); err != nil {
		t.Fatal(err)
	}
	tx.Abort(ctx)

	if bal, _ := balance(t, s, 1); bal != 100 {
		t.Fatalf("aborted update visible: bal = %d", bal)
	}
	if _, ok := balance(t, s, 7); ok {
		t.Fatal("aborted insert visible")
	}
	if st := s.Server().Stats(); st.Aborts == 0 {
		t.Fatal("abort not recorded by the server")
	}
	if err := tx.Commit(ctx); !errors.Is(err, ErrFinishedTxn) {
		t.Fatalf("commit after abort = %v, want ErrFinishedTxn", err)
	}
}

// TestSessionTxnConflictAborts: conflict detection still runs at the
// transaction's single commit flush — overlapping writers lose exactly as
// they do per-statement, and the loser's flushed writes are invisible.
func TestSessionTxnConflictAborts(t *testing.T) {
	s := newSession(t)
	insert(t, s, 1, 100, "alice")

	ctx := sim.NewCtx()
	t1 := s.BeginTxn(ctx)
	t2 := s.BeginTxn(ctx)
	up := sqlparser.MustParse("UPDATE Account SET bal = ? WHERE id = ?")
	if err := t1.Exec(ctx, up, []schema.Value{int64(111), int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := t2.Exec(ctx, up, []schema.Value{int64(222), int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(ctx); !errors.Is(err, ErrConflict) {
		t.Fatalf("overlapping commit = %v, want ErrConflict", err)
	}
	if bal, _ := balance(t, s, 1); bal != 111 {
		t.Fatalf("balance = %d, want winner's 111", bal)
	}
}
