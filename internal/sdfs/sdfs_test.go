package sdfs

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"synergy/internal/cluster"
	"synergy/internal/sim"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	return NewFS(cluster.NewDefault(nil), 3)
}

func TestCreateAppendRead(t *testing.T) {
	fs := newFS(t)
	ctx := sim.NewCtx()
	if err := fs.Create(ctx, "/wal/slave-0.log"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(ctx, "/wal/slave-0.log", []byte("edit-1\n")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(ctx, "/wal/slave-0.log", []byte("edit-2\n")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAll(ctx, "/wal/slave-0.log")
	if err != nil {
		t.Fatal(err)
	}
	if want := []byte("edit-1\nedit-2\n"); !bytes.Equal(got, want) {
		t.Fatalf("ReadAll = %q, want %q", got, want)
	}
}

func TestCreateDuplicate(t *testing.T) {
	fs := newFS(t)
	ctx := sim.NewCtx()
	if err := fs.Create(ctx, "/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create(ctx, "/a"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create error = %v, want ErrExists", err)
	}
}

func TestAppendCreatesImplicitly(t *testing.T) {
	fs := newFS(t)
	ctx := sim.NewCtx()
	if err := fs.Append(ctx, "/implicit", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/implicit") {
		t.Fatal("append should create the file")
	}
}

func TestReadMissing(t *testing.T) {
	fs := newFS(t)
	if _, err := fs.ReadAll(sim.NewCtx(), "/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("error = %v, want ErrNotFound", err)
	}
}

func TestDelete(t *testing.T) {
	fs := newFS(t)
	ctx := sim.NewCtx()
	fs.Append(ctx, "/f", []byte("data"))
	if err := fs.Delete(ctx, "/f"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/f") {
		t.Fatal("file still exists after delete")
	}
	if err := fs.Delete(ctx, "/f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second delete error = %v, want ErrNotFound", err)
	}
}

func TestListSortedByPrefix(t *testing.T) {
	fs := newFS(t)
	ctx := sim.NewCtx()
	for _, p := range []string{"/wal/b", "/wal/a", "/hfiles/x"} {
		fs.Append(ctx, p, []byte("1"))
	}
	got := fs.List("/wal/")
	if len(got) != 2 || got[0] != "/wal/a" || got[1] != "/wal/b" {
		t.Fatalf("List(/wal/) = %v", got)
	}
}

func TestReplicationAccounting(t *testing.T) {
	fs := newFS(t)
	ctx := sim.NewCtx()
	payload := make([]byte, 1000)
	fs.Append(ctx, "/f", payload)
	if got := fs.TotalBytes(); got != 1000 {
		t.Fatalf("TotalBytes = %d, want 1000", got)
	}
	if got := fs.ReplicatedBytes(); got != 3000 {
		t.Fatalf("ReplicatedBytes = %d, want 3000 (3x replication)", got)
	}
}

func TestReplicationCappedByDatanodes(t *testing.T) {
	cl := cluster.New(nil)
	cl.AddNode("master-0", cluster.RoleMaster)
	cl.AddNode("client-0", cluster.RoleClient)
	cl.AddNode("slave-0", cluster.RoleSlave)
	cl.AddNode("slave-1", cluster.RoleSlave)
	fs := NewFS(cl, 3)
	if got := fs.Replication(); got != 2 {
		t.Fatalf("replication = %d, want 2 (capped at datanode count)", got)
	}
}

func TestAppendPipelineCharges(t *testing.T) {
	costs := sim.DefaultCosts()
	fs := NewFS(cluster.NewDefault(costs), 3)
	ctx := sim.NewCtx()
	fs.Append(ctx, "/wal", []byte("record"))
	// Expect at least 3 RPC hops (one per replica in the pipeline).
	if s := ctx.Snapshot(); s.RPCs < 3 {
		t.Fatalf("pipeline RPCs = %d, want >= 3", s.RPCs)
	}
	if ctx.Elapsed() < 3*costs.RPC {
		t.Fatalf("pipeline elapsed = %v, want >= %v", ctx.Elapsed(), 3*costs.RPC)
	}
}

func TestBlockRollover(t *testing.T) {
	fs := newFS(t)
	fs.blockSize = 10 // tiny blocks to force rollover
	ctx := sim.NewCtx()
	data := []byte("0123456789abcdefghij!") // 21 bytes -> 3 blocks
	fs.Append(ctx, "/big", data)
	got, err := fs.ReadAll(ctx, "/big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip across blocks corrupted data: %q", got)
	}
	fs.mu.RLock()
	nblocks := len(fs.files["/big"].blocks)
	fs.mu.RUnlock()
	if nblocks != 3 {
		t.Fatalf("blocks = %d, want 3", nblocks)
	}
}

func TestConcurrentAppendsDoNotRace(t *testing.T) {
	fs := newFS(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := sim.NewCtx()
			path := fmt.Sprintf("/wal/%d", i)
			for j := 0; j < 100; j++ {
				fs.Append(ctx, path, []byte("r"))
			}
		}(i)
	}
	wg.Wait()
	if got := fs.TotalBytes(); got != 800 {
		t.Fatalf("TotalBytes = %d, want 800", got)
	}
}

func TestLength(t *testing.T) {
	fs := newFS(t)
	ctx := sim.NewCtx()
	fs.Append(ctx, "/f", []byte("hello"))
	n, err := fs.Length("/f")
	if err != nil || n != 5 {
		t.Fatalf("Length = %d, %v; want 5, nil", n, err)
	}
	if _, err := fs.Length("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Length(missing) err = %v, want ErrNotFound", err)
	}
}
