// Package sdfs is a simulated HDFS: an append-only, block-replicated
// distributed filesystem. In the paper's architecture (Figure 7) HDFS stores
// the HBase write-ahead logs and store files as well as the Synergy
// transaction layer's WAL; this package plays that role.
//
// Files are append-only (HDFS semantics). Every append is pipelined through
// the block's replica chain, charging one RPC hop per replica, which is how
// the durability cost of WAL writes reaches the paper's response times.
package sdfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"synergy/internal/cluster"
	"synergy/internal/sim"
)

// DefaultBlockSize mirrors the HDFS default of 64 MiB (Hadoop 2.x era).
const DefaultBlockSize = 64 << 20

// Errors reported by the filesystem.
var (
	ErrNotFound = errors.New("sdfs: file not found")
	ErrExists   = errors.New("sdfs: file already exists")
)

// block is one replicated unit of file data. Contents are stored once; the
// replicas slice records which datanodes hold copies, which drives both the
// pipeline latency and the storage accounting.
type block struct {
	data     []byte
	replicas []string // datanode names
}

type file struct {
	blocks []*block
	length int64
}

// FS is the NameNode-plus-DataNodes ensemble.
type FS struct {
	mu          sync.RWMutex
	cl          *cluster.Cluster
	files       map[string]*file
	datanodes   []string
	replication int
	blockSize   int
	nextDN      int // round-robin placement cursor
}

// NewFS builds a filesystem over the cluster's slave nodes with the given
// replication factor (capped at the number of datanodes).
func NewFS(cl *cluster.Cluster, replication int) *FS {
	var dns []string
	for _, n := range cl.Nodes(cluster.RoleSlave) {
		dns = append(dns, n.Name)
	}
	if replication < 1 {
		replication = 1
	}
	if replication > len(dns) && len(dns) > 0 {
		replication = len(dns)
	}
	return &FS{
		cl:          cl,
		files:       make(map[string]*file),
		datanodes:   dns,
		replication: replication,
		blockSize:   DefaultBlockSize,
	}
}

// Replication reports the effective replication factor.
func (fs *FS) Replication() int { return fs.replication }

// Create makes an empty file. It charges a NameNode round trip.
func (fs *FS) Create(ctx *sim.Ctx, path string) error {
	fs.cl.RPC(ctx, "client-0", "master-0", 64)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, dup := fs.files[path]; dup {
		return fmt.Errorf("%w: %s", ErrExists, path)
	}
	fs.files[path] = &file{}
	return nil
}

// placeReplicas picks replica datanodes round-robin, like the HDFS default
// placement policy in a single rack.
func (fs *FS) placeReplicas() []string {
	if len(fs.datanodes) == 0 {
		return nil
	}
	reps := make([]string, 0, fs.replication)
	for i := 0; i < fs.replication; i++ {
		reps = append(reps, fs.datanodes[(fs.nextDN+i)%len(fs.datanodes)])
	}
	fs.nextDN = (fs.nextDN + 1) % len(fs.datanodes)
	return reps
}

// Append adds data to the end of the file, creating it if absent. The write
// is pipelined: client → replica 1 → replica 2 → ... with per-hop transfer
// cost, then acknowledged back, matching the HDFS write pipeline HBase WAL
// appends traverse.
func (fs *FS) Append(ctx *sim.Ctx, path string, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := fs.files[path]
	if f == nil {
		f = &file{}
		fs.files[path] = f
	}
	for len(data) > 0 {
		var b *block
		if n := len(f.blocks); n > 0 && len(f.blocks[n-1].data) < fs.blockSize {
			b = f.blocks[n-1]
		} else {
			b = &block{replicas: fs.placeReplicas()}
			f.blocks = append(f.blocks, b)
		}
		room := fs.blockSize - len(b.data)
		chunk := data
		if len(chunk) > room {
			chunk = chunk[:room]
		}
		b.data = append(b.data, chunk...)
		f.length += int64(len(chunk))
		data = data[len(chunk):]

		// Pipeline cost: first hop from the writer, then chained
		// replica-to-replica transfers.
		prev := "client-0"
		for _, dn := range b.replicas {
			fs.cl.RPC(ctx, prev, dn, len(chunk))
			prev = dn
		}
	}
	return nil
}

// ReadAll returns the full contents of a file, charging transfer from each
// block's first live replica.
func (fs *FS) ReadAll(ctx *sim.Ctx, path string) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f := fs.files[path]
	if f == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	out := make([]byte, 0, f.length)
	for _, b := range f.blocks {
		src := "master-0"
		if len(b.replicas) > 0 {
			src = b.replicas[0]
		}
		fs.cl.RPC(ctx, src, "client-0", len(b.data))
		out = append(out, b.data...)
	}
	return out, nil
}

// Delete removes a file. Deleting a missing file reports ErrNotFound.
func (fs *FS) Delete(ctx *sim.Ctx, path string) error {
	fs.cl.RPC(ctx, "client-0", "master-0", 64)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	delete(fs.files, path)
	return nil
}

// Exists reports whether the file is present.
func (fs *FS) Exists(path string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[path]
	return ok
}

// Length returns the byte length of a file, or ErrNotFound.
func (fs *FS) Length(path string) (int64, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f := fs.files[path]
	if f == nil {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return f.length, nil
}

// List returns all paths with the given prefix, sorted.
func (fs *FS) List(prefix string) []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// TotalBytes reports logical bytes stored (pre-replication).
func (fs *FS) TotalBytes() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var total int64
	for _, f := range fs.files {
		total += f.length
	}
	return total
}

// ReplicatedBytes reports physical bytes including replication, the number
// HDFS capacity accounting would show.
func (fs *FS) ReplicatedBytes() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var total int64
	for _, f := range fs.files {
		for _, b := range f.blocks {
			total += int64(len(b.data)) * int64(len(b.replicas))
		}
	}
	return total
}
