package core

import (
	"sort"

	"synergy/internal/schema"
	"synergy/internal/sqlparser"
)

// SelectViewsForQuery runs the marking procedure of §VI-A against the rooted
// trees and returns the views selected for one equi-join query, in selection
// order.
//
// Procedure: mark every tree edge (and its endpoints) that matches a join
// condition of the query; then repeatedly choose a path whose nodes and
// edges are all marked, starting at a marked node with no incoming marked
// edge and ending at a leaf or a node with no outgoing marked edge; select
// it as a view and un-mark its relations and their outgoing edges.
func SelectViewsForQuery(s *schema.Schema, trees []*RootedTree, sel *sqlparser.SelectStmt) []*View {
	// Self-joins (a relation joined with itself, Q9/Q11) never mark tree
	// edges: their join conditions are not key/foreign-key edges. Queries
	// that reference a relation twice through *different* foreign keys
	// (Q7's shipping and billing addresses) mark the shared edge once and
	// are rewritten with one view usage per alias group.
	joins := extractJoins(sel)
	var out []*View
	for _, tree := range trees {
		out = append(out, selectInTree(s, tree, joins)...)
	}
	return out
}

func selectInTree(s *schema.Schema, tree *RootedTree, joins []queryJoin) []*View {
	// Mark edges whose (PK, FK) join appears in the query, plus their
	// endpoints.
	markedEdge := map[string]bool{} // edge ID
	markedNode := map[string]bool{}
	for _, e := range tree.Edges() {
		for _, j := range joins {
			if j.matchesEdge(e) {
				markedEdge[e.ID()] = true
				markedNode[e.Parent] = true
				markedNode[e.Child] = true
				break
			}
		}
	}
	if len(markedEdge) == 0 {
		return nil
	}

	var views []*View
	for {
		path, ok := chooseMarkedPath(tree, markedNode, markedEdge)
		if !ok {
			break
		}
		views = append(views, buildView(s, tree.Root, path))
		// Un-mark participating relations and their outgoing edges.
		inPath := map[string]bool{}
		for _, r := range path.Relations {
			inPath[r] = true
			delete(markedNode, r)
		}
		for _, e := range tree.Edges() {
			if inPath[e.Parent] {
				delete(markedEdge, e.ID())
			}
		}
	}
	return views
}

// chooseMarkedPath finds the next path per the two §VI-A rules. Among
// candidates it prefers the longest (most joins materialized), breaking ties
// lexicographically — which reproduces the paper's Figure 6 choice of
// R2-R3-R4 before R5-R6.
func chooseMarkedPath(tree *RootedTree, markedNode map[string]bool, markedEdge map[string]bool) (schema.Path, bool) {
	// Start nodes: marked, with no incoming marked edge.
	var starts []string
	for n := range markedNode {
		in, hasIn := tree.ParentEdge(n)
		if hasIn && markedEdge[in.ID()] {
			continue
		}
		starts = append(starts, n)
	}
	sort.Strings(starts)

	var best schema.Path
	found := false
	var walk func(cur string, rels []string, edges []schema.Edge)
	walk = func(cur string, rels []string, edges []schema.Edge) {
		// Does the path end here? Leaf or no outgoing marked edge.
		extended := false
		for _, child := range tree.Children(cur) {
			e, _ := tree.ParentEdge(child)
			if !markedEdge[e.ID()] || !markedNode[child] {
				continue
			}
			extended = true
			walk(child, append(rels, child), append(edges, e))
		}
		if !extended && len(edges) > 0 {
			p := schema.Path{
				Relations: append([]string(nil), rels...),
				Edges:     append([]schema.Edge(nil), edges...),
			}
			if !found || len(p.Edges) > len(best.Edges) ||
				(len(p.Edges) == len(best.Edges) && p.String() < best.String()) {
				best = p
				found = true
			}
		}
	}
	for _, s := range starts {
		walk(s, []string{s}, nil)
	}
	return best, found
}

// SelectViews runs views selection over the whole workload (§VI-A "Final
// View Set"): per-query selections accumulate, de-duplicated by path.
// The per-query selections are also returned so queries can be rewritten
// with exactly the views chosen for them.
func SelectViews(s *schema.Schema, trees []*RootedTree, w *Workload) (final []*View, perQuery map[*sqlparser.SelectStmt][]*View) {
	perQuery = map[*sqlparser.SelectStmt][]*View{}
	seen := map[string]*View{}
	for _, sel := range w.Selects() {
		views := SelectViewsForQuery(s, trees, sel)
		var canonical []*View
		for _, v := range views {
			if existing, dup := seen[v.Name()]; dup {
				canonical = append(canonical, existing)
				continue
			}
			seen[v.Name()] = v
			final = append(final, v)
			canonical = append(canonical, v)
		}
		if len(canonical) > 0 {
			perQuery[sel] = canonical
		}
	}
	sort.Slice(final, func(i, j int) bool { return final[i].Name() < final[j].Name() })
	return final, perQuery
}
