package core

import (
	"fmt"
	"sort"

	"synergy/internal/sqlparser"
)

// ViewUsage records one appearance of a view in a rewritten query: the view,
// the alias it is bound to, and which original bindings it replaced.
type ViewUsage struct {
	View     *View
	Alias    string
	Replaced []string // original binding names, in view-relation order
}

// Rewritten is a query transformed to read from selected views (§VI-B).
type Rewritten struct {
	Original *sqlparser.SelectStmt
	Stmt     *sqlparser.SelectStmt
	Usages   []ViewUsage
}

// UsesViews reports whether rewriting replaced anything.
func (r *Rewritten) UsesViews() bool { return len(r.Usages) > 0 }

// RewriteQuery rewrites a query using the views selected for it: constituent
// relations are replaced by the view and join conditions internal to a view
// are removed (§VI-B). A view may be used several times when the query joins
// the same chain through different foreign keys (Q7's two addresses).
func RewriteQuery(sel *sqlparser.SelectStmt, views []*View) *Rewritten {
	joins := extractJoins(sel)
	binds := bindingRelations(sel)

	consumed := map[string]*ViewUsage{} // binding -> usage
	var usages []*ViewUsage

	for _, v := range views {
		for {
			usage := findUsage(v, joins, binds, consumed)
			if usage == nil {
				break
			}
			usage.Alias = fmt.Sprintf("v%d", len(usages))
			usages = append(usages, usage)
			for _, b := range usage.Replaced {
				consumed[b] = usage
			}
		}
	}
	if len(usages) == 0 {
		return &Rewritten{Original: sel, Stmt: sel}
	}

	out := &sqlparser.SelectStmt{
		Star:  sel.Star,
		Limit: sel.Limit,
	}
	// FROM: view usages first, then surviving bindings in original order.
	for _, u := range usages {
		out.From = append(out.From, sqlparser.TableRef{Name: u.View.Name(), Alias: u.Alias})
	}
	for _, ref := range sel.From {
		if _, gone := consumed[ref.Binding()]; !gone {
			out.From = append(out.From, ref)
		}
	}

	remap := func(c sqlparser.ColumnRef) sqlparser.ColumnRef {
		if c.Table == "" {
			return c
		}
		if u, ok := consumed[c.Table]; ok {
			return sqlparser.ColumnRef{Table: u.Alias, Column: c.Column}
		}
		return c
	}
	remapExpr := func(e sqlparser.Expr) sqlparser.Expr {
		switch x := e.(type) {
		case sqlparser.ColumnRef:
			return remap(x)
		case sqlparser.AggExpr:
			if x.Arg != nil {
				c := remap(*x.Arg)
				return sqlparser.AggExpr{Fn: x.Fn, Arg: &c, Star: x.Star}
			}
			return x
		default:
			return e
		}
	}

	// WHERE: drop join conditions whose both sides landed in the same
	// usage; remap the rest.
	for _, p := range sel.Where {
		l, lIsCol := p.Left.(sqlparser.ColumnRef)
		r, rIsCol := p.Right.(sqlparser.ColumnRef)
		if lIsCol && rIsCol && l.Table != "" && r.Table != "" {
			lu, lOK := consumed[l.Table]
			ru, rOK := consumed[r.Table]
			if lOK && rOK && lu == ru && p.Op == sqlparser.OpEq {
				continue // materialized inside the view
			}
		}
		out.Where = append(out.Where, sqlparser.Predicate{
			Left:  remapExpr(p.Left),
			Op:    p.Op,
			Right: remapExpr(p.Right),
		})
	}

	for _, it := range sel.Items {
		out.Items = append(out.Items, sqlparser.SelectItem{Expr: remapExpr(it.Expr), Alias: it.Alias})
	}
	for _, g := range sel.GroupBy {
		out.GroupBy = append(out.GroupBy, remap(g))
	}
	for _, o := range sel.OrderBy {
		out.OrderBy = append(out.OrderBy, sqlparser.OrderItem{Col: remap(o.Col), Desc: o.Desc})
	}

	final := make([]ViewUsage, len(usages))
	for i, u := range usages {
		final[i] = *u
	}
	return &Rewritten{Original: sel, Stmt: out, Usages: final}
}

// findUsage locates one not-yet-consumed group of bindings whose joins cover
// every edge of the view, mapping bindings 1:1 onto the view's relations.
func findUsage(v *View, joins []queryJoin, binds map[string]string, consumed map[string]*ViewUsage) *ViewUsage {
	// bindingFor[relation] per usage; seed from the view's first edge and
	// grow along the path.
	relIndex := map[string]int{}
	for i, r := range v.Relations {
		relIndex[r] = i
	}

	// Collect, per view edge, the candidate binding pairs.
	type pair struct{ parentBind, childBind string }
	edgeCands := make([][]pair, len(v.Edges))
	for ei, e := range v.Edges {
		for _, j := range joins {
			if !j.matchesEdge(e) {
				continue
			}
			var p pair
			if j.relA == e.Parent && j.colA == e.PK[0] {
				p = pair{parentBind: j.bindA, childBind: j.bindB}
			} else {
				p = pair{parentBind: j.bindB, childBind: j.bindA}
			}
			if p.parentBind == "" || p.childBind == "" {
				continue
			}
			if _, gone := consumed[p.parentBind]; gone {
				continue
			}
			if _, gone := consumed[p.childBind]; gone {
				continue
			}
			edgeCands[ei] = append(edgeCands[ei], p)
		}
		if len(edgeCands[ei]) == 0 {
			return nil
		}
		sort.Slice(edgeCands[ei], func(a, b int) bool {
			if edgeCands[ei][a].parentBind != edgeCands[ei][b].parentBind {
				return edgeCands[ei][a].parentBind < edgeCands[ei][b].parentBind
			}
			return edgeCands[ei][a].childBind < edgeCands[ei][b].childBind
		})
	}

	// Backtracking assignment of one binding per relation consistent
	// across all edges (view paths are short, so this is cheap).
	assign := make(map[string]string, len(v.Relations)) // relation -> binding
	used := map[string]bool{}
	var solve func(ei int) bool
	solve = func(ei int) bool {
		if ei == len(v.Edges) {
			return true
		}
		e := v.Edges[ei]
		for _, cand := range edgeCands[ei] {
			ok := true
			for rel, bind := range map[string]string{e.Parent: cand.parentBind, e.Child: cand.childBind} {
				if cur, has := assign[rel]; has && cur != bind {
					ok = false
					break
				}
				if _, has := assign[rel]; !has && used[bind] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			addedP := false
			addedC := false
			if _, has := assign[e.Parent]; !has {
				assign[e.Parent] = cand.parentBind
				used[cand.parentBind] = true
				addedP = true
			}
			if _, has := assign[e.Child]; !has {
				assign[e.Child] = cand.childBind
				used[cand.childBind] = true
				addedC = true
			}
			if solve(ei + 1) {
				return true
			}
			if addedP {
				used[assign[e.Parent]] = false
				delete(assign, e.Parent)
			}
			if addedC {
				used[assign[e.Child]] = false
				delete(assign, e.Child)
			}
		}
		return false
	}
	if !solve(0) {
		return nil
	}
	u := &ViewUsage{View: v}
	for _, r := range v.Relations {
		u.Replaced = append(u.Replaced, assign[r])
	}
	return u
}
