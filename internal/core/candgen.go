package core

import (
	"fmt"
	"sort"
	"strings"

	"synergy/internal/schema"
)

// RootedTree is the output of the candidate views generation mechanism
// (Definition 4): a directed tree rooted at a root relation with a unique
// path from the root to each non-root relation. Every path in a rooted tree
// is a candidate view.
type RootedTree struct {
	Root  string
	nodes map[string]bool
	// parentEdge[child] is the single tree edge entering child.
	parentEdge map[string]schema.Edge
}

func newRootedTree(root string) *RootedTree {
	return &RootedTree{Root: root, nodes: map[string]bool{root: true}, parentEdge: map[string]schema.Edge{}}
}

// addPath grafts a root-to-relation path onto the tree.
func (t *RootedTree) addPath(p schema.Path) {
	for i, e := range p.Edges {
		child := p.Relations[i+1]
		if existing, ok := t.parentEdge[child]; ok && existing.ID() != e.ID() {
			panic(fmt.Sprintf("core: tree %s would give %s two parents", t.Root, child))
		}
		t.parentEdge[child] = e
		t.nodes[child] = true
	}
}

// consistent reports whether grafting the path would keep every relation at
// a single parent.
func (t *RootedTree) consistent(p schema.Path) bool {
	for i, e := range p.Edges {
		child := p.Relations[i+1]
		if existing, ok := t.parentEdge[child]; ok && existing.ID() != e.ID() {
			return false
		}
	}
	return true
}

// Has reports whether the relation is in the tree.
func (t *RootedTree) Has(rel string) bool { return t.nodes[rel] }

// Nodes lists the tree's relations, sorted.
func (t *RootedTree) Nodes() []string {
	out := make([]string, 0, len(t.nodes))
	for n := range t.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Edges lists the tree's edges, sorted by child name.
func (t *RootedTree) Edges() []schema.Edge {
	children := make([]string, 0, len(t.parentEdge))
	for c := range t.parentEdge {
		children = append(children, c)
	}
	sort.Strings(children)
	out := make([]schema.Edge, 0, len(children))
	for _, c := range children {
		out = append(out, t.parentEdge[c])
	}
	return out
}

// Children lists the relations whose tree parent is rel, sorted.
func (t *RootedTree) Children(rel string) []string {
	var out []string
	for child, e := range t.parentEdge {
		if e.Parent == rel {
			out = append(out, child)
		}
	}
	sort.Strings(out)
	return out
}

// ParentEdge returns the edge entering child, with ok=false for the root or
// unknown relations.
func (t *RootedTree) ParentEdge(child string) (schema.Edge, bool) {
	e, ok := t.parentEdge[child]
	return e, ok
}

// PathFromRoot returns the unique root→rel path (Definition 4).
func (t *RootedTree) PathFromRoot(rel string) (schema.Path, bool) {
	if !t.nodes[rel] {
		return schema.Path{}, false
	}
	var rels []string
	var edges []schema.Edge
	cur := rel
	for cur != t.Root {
		e, ok := t.parentEdge[cur]
		if !ok {
			return schema.Path{}, false
		}
		rels = append([]string{cur}, rels...)
		edges = append([]schema.Edge{e}, edges...)
		cur = e.Parent
	}
	rels = append([]string{t.Root}, rels...)
	return schema.Path{Relations: rels, Edges: edges}, true
}

// DownwardPaths enumerates every path of length >= 1 edge in the tree (each
// is a candidate view per Definition 5), sorted by display name.
func (t *RootedTree) DownwardPaths() []schema.Path {
	var out []schema.Path
	var walk func(start string, rels []string, edges []schema.Edge)
	walk = func(cur string, rels []string, edges []schema.Edge) {
		if len(edges) > 0 {
			out = append(out, schema.Path{
				Relations: append([]string(nil), rels...),
				Edges:     append([]schema.Edge(nil), edges...),
			})
		}
		for _, child := range t.Children(cur) {
			e := t.parentEdge[child]
			walk(child, append(rels, child), append(edges, e))
		}
	}
	for _, start := range t.Nodes() {
		walk(start, []string{start}, nil)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

func (t *RootedTree) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tree(%s):", t.Root)
	for _, e := range t.Edges() {
		fmt.Fprintf(&b, " %s->%s", e.Parent, e.Child)
	}
	return b.String()
}

// CandidateResult carries the mechanism's outputs, including intermediates
// that the paper illustrates in Figure 5 (tests mirror them).
type CandidateResult struct {
	DAG        *schema.Graph
	TopoOrder  []string
	Trees      []*RootedTree     // one per root, in roots order
	RootOf     map[string]string // relation -> assigned root ("" if unassigned)
	Unassigned []string          // relations not reachable from any root
}

// Tree returns the rooted tree of a root.
func (r *CandidateResult) Tree(root string) *RootedTree {
	for _, t := range r.Trees {
		if t.Root == root {
			return t
		}
	}
	return nil
}

// GenerateCandidates runs the candidate views generation mechanism of §V-B:
//
//  1. transform the schema graph into a DAG by keeping at most one edge per
//     relation pair (maximum heuristic weight);
//  2. topologically order the DAG;
//  3. assign each non-root relation to at most one root by selecting a path
//     (forward topological order, heuristic-weighted paths);
//  4. transform each rooted graph into a rooted tree (reverse topological
//     order, keeping maximum-weight paths).
func GenerateCandidates(s *schema.Schema, roots []string, w *Workload) (*CandidateResult, error) {
	g := schema.BuildGraph(s)
	for _, r := range roots {
		if !g.HasNode(r) {
			return nil, fmt.Errorf("core: root %q is not a relation", r)
		}
	}
	h := newWeigher(w)

	// Step 1: multigraph -> DAG. For each (parent, child) pair keep the
	// edge with the maximum weight; ties break on FK column order so the
	// choice is deterministic (the paper's example drops the
	// (AID, EOffice_AID) edge in favor of the home-address edge).
	type pair struct{ p, c string }
	best := map[pair]schema.Edge{}
	bestW := map[pair]int{}
	for _, e := range g.Edges() {
		k := pair{e.Parent, e.Child}
		w := h.edgeWeight(e)
		cur, ok := best[k]
		if !ok || w > bestW[k] || (w == bestW[k] && e.ID() < cur.ID()) {
			best[k] = e
			bestW[k] = w
		}
	}
	var dagEdges []schema.Edge
	for _, e := range g.Edges() { // preserve insertion order for determinism
		k := pair{e.Parent, e.Child}
		if best[k].ID() == e.ID() {
			dagEdges = append(dagEdges, e)
		}
	}
	dag := schema.NewGraph(g.Nodes(), dagEdges)

	// Step 2: topological order.
	topo, err := dag.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("core: schema graph is cyclic: %w", err)
	}

	isRoot := map[string]bool{}
	for _, r := range roots {
		isRoot[r] = true
	}

	// Step 3: assign non-root relations to roots.
	rootOf := map[string]string{}
	rootedGraphEdges := map[string][]schema.Edge{} // root -> edges
	edgeSeen := map[string]map[string]bool{}
	addEdge := func(root string, e schema.Edge) {
		if edgeSeen[root] == nil {
			edgeSeen[root] = map[string]bool{}
		}
		if !edgeSeen[root][e.ID()] {
			edgeSeen[root][e.ID()] = true
			rootedGraphEdges[root] = append(rootedGraphEdges[root], e)
		}
	}

	var unassigned []string
	for _, rel := range topo {
		if isRoot[rel] {
			continue
		}
		// 3a: identify paths from each root.
		type scored struct {
			root string
			p    schema.Path
			w    int
		}
		var cands []scored
		for _, root := range roots {
			for _, p := range dag.Paths(root, rel) {
				cands = append(cands, scored{root: root, p: p, w: h.pathWeight(p)})
			}
		}
		if len(cands) == 0 {
			if _, ok := rootOf[rel]; !ok {
				unassigned = append(unassigned, rel)
			}
			continue
		}
		// 3b: sort by weight (desc); ties prefer longer paths (more
		// joins materializable), then the path rendering for
		// determinism.
		sort.SliceStable(cands, func(i, j int) bool {
			if cands[i].w != cands[j].w {
				return cands[i].w > cands[j].w
			}
			if len(cands[i].p.Edges) != len(cands[j].p.Edges) {
				return len(cands[i].p.Edges) > len(cands[j].p.Edges)
			}
			return cands[i].p.String() < cands[j].p.String()
		})
		for _, c := range cands {
			// The path must include a single root relation and no
			// relation assigned to a different root.
			ok := true
			rootCount := 0
			for _, pr := range c.p.Relations {
				if isRoot[pr] {
					rootCount++
					continue
				}
				if assigned, has := rootOf[pr]; has && assigned != c.root {
					ok = false
					break
				}
			}
			if rootCount != 1 || !ok {
				continue
			}
			// 3c: add the path to the root's rooted graph.
			for _, pr := range c.p.Relations {
				if !isRoot[pr] {
					rootOf[pr] = c.root
				}
			}
			for _, e := range c.p.Edges {
				addEdge(c.root, e)
			}
			break
		}
		if _, ok := rootOf[rel]; !ok {
			unassigned = append(unassigned, rel)
		}
	}

	// Step 4: rooted graphs -> rooted trees, examining non-root relations
	// in reverse topological order and keeping maximum-weight paths.
	var trees []*RootedTree
	for _, root := range roots {
		tree := newRootedTree(root)
		nodes := []string{root}
		for rel, r := range rootOf {
			if r == root {
				nodes = append(nodes, rel)
			}
		}
		rg := schema.NewGraph(nodes, rootedGraphEdges[root])
		// Reverse topological order of the non-root relations.
		var pending []string
		for _, rel := range topo {
			if rel != root && rootOf[rel] == root {
				pending = append(pending, rel)
			}
		}
		for len(pending) > 0 {
			last := pending[len(pending)-1]
			paths := rg.Paths(root, last)
			if len(paths) == 0 {
				// Already covered by a previously selected path.
				pending = pending[:len(pending)-1]
				continue
			}
			sort.SliceStable(paths, func(i, j int) bool {
				wi, wj := h.pathWeight(paths[i]), h.pathWeight(paths[j])
				if wi != wj {
					return wi > wj
				}
				if len(paths[i].Edges) != len(paths[j].Edges) {
					return len(paths[i].Edges) > len(paths[j].Edges)
				}
				return paths[i].String() < paths[j].String()
			})
			// A relation already grafted by a deeper path has its
			// parent fixed; candidate paths must agree with the
			// partial tree so every relation keeps a single parent.
			chosen := paths[0]
			for _, p := range paths {
				if tree.consistent(p) {
					chosen = p
					break
				}
			}
			tree.addPath(chosen)
			// Remove the path's non-root relations from the ordering.
			inPath := map[string]bool{}
			for _, pr := range chosen.Relations {
				inPath[pr] = true
			}
			kept := pending[:0]
			for _, rel := range pending {
				if !inPath[rel] {
					kept = append(kept, rel)
				}
			}
			pending = kept
		}
		trees = append(trees, tree)
	}

	sort.Strings(unassigned)
	return &CandidateResult{
		DAG:        dag,
		TopoOrder:  topo,
		Trees:      trees,
		RootOf:     rootOf,
		Unassigned: unassigned,
	}, nil
}
