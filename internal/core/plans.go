package core

import (
	"fmt"

	"synergy/internal/schema"
	"synergy/internal/sqlparser"
)

// WriteKind classifies a write statement.
type WriteKind int

const (
	WriteInsert WriteKind = iota
	WriteUpdate
	WriteDelete
)

func (k WriteKind) String() string {
	switch k {
	case WriteInsert:
		return "insert"
	case WriteUpdate:
		return "update"
	case WriteDelete:
		return "delete"
	default:
		return "?"
	}
}

// LocatorKind says how the rows of a view affected by an update are found
// (§VII-C).
type LocatorKind int

const (
	// LocateByViewKey: the updated relation is the view's last relation,
	// so the view key equals the base key.
	LocateByViewKey LocatorKind = iota
	// LocateByIndex: a maintenance index on the relation's key within the
	// view locates the rows.
	LocateByIndex
	// LocateByScan: no index exists; the whole view must be scanned (the
	// expensive case the maintenance indexes exist to avoid).
	LocateByScan
)

func (k LocatorKind) String() string {
	switch k {
	case LocateByViewKey:
		return "by-view-key"
	case LocateByIndex:
		return "by-maintenance-index"
	case LocateByScan:
		return "by-full-scan"
	default:
		return "?"
	}
}

// ViewAction is one view-maintenance obligation of a write statement
// (§VII): the applicability tests determine which actions a plan carries.
type ViewAction struct {
	View *View
	// ReadChain, for inserts, lists the tree edges whose parent rows must
	// be read to construct the view tuple (§VII-A2): k-1 reads for a
	// k-relation view, ordered from the inserted relation upward.
	ReadChain []schema.Edge
	// Locator, for updates, says how affected view rows are found.
	Locator LocatorKind
	// LocatorIndex is the maintenance index used by LocateByIndex.
	LocatorIndex *ViewIndex
}

// WritePlan is the auto-generated execution plan for one write statement
// (§VIII-B, "plan generator"): which root lock to take, which views to
// maintain and how.
type WritePlan struct {
	Table string
	Kind  WriteKind
	// Root is the root relation whose lock-table row guards this write;
	// empty when the relation is outside every rooted tree (no views can
	// contain it, so single-row atomicity suffices).
	Root string
	// LockChain holds the tree edges from the root down to Table;
	// resolving the root key walks it upward via foreign keys.
	LockChain []schema.Edge
	// Actions lists the views this write must maintain.
	Actions []ViewAction
}

// MultiRow reports whether the plan can touch more than one view row (only
// updates on non-last relations), which is what requires the dirty-marking
// protocol of §VIII-B.
func (p *WritePlan) MultiRow() bool {
	for _, a := range p.Actions {
		if p.Kind == WriteUpdate && a.View.Last() != p.Table {
			return true
		}
	}
	return false
}

// PlanWrite generates the write plan for a statement against the design
// (§VIII-B). The applicability tests are §VII's:
//
//   - insert applies to views whose last relation is the written relation;
//   - delete likewise (no cascading deletes);
//   - update applies to every view containing the relation.
func PlanWrite(d *Design, stmt sqlparser.Statement) (*WritePlan, error) {
	var table string
	var kind WriteKind
	switch s := stmt.(type) {
	case *sqlparser.InsertStmt:
		table, kind = s.Table, WriteInsert
	case *sqlparser.UpdateStmt:
		table, kind = s.Table, WriteUpdate
	case *sqlparser.DeleteStmt:
		table, kind = s.Table, WriteDelete
	default:
		return nil, fmt.Errorf("core: not a write statement: %T", stmt)
	}
	rel := d.Schema.Relation(table)
	if rel == nil {
		return nil, fmt.Errorf("core: unknown relation %q", table)
	}

	plan := &WritePlan{Table: table, Kind: kind}
	if root, ok := d.RootOf(table); ok {
		plan.Root = root
		chain, _ := d.LockChain(table)
		plan.LockChain = chain
	}

	for _, v := range d.ViewsOnRelation(table) {
		switch kind {
		case WriteInsert, WriteDelete:
			if v.Last() != table {
				continue // applicability test fails (§VII-A1, §VII-B1)
			}
			action := ViewAction{View: v}
			if kind == WriteInsert {
				// Read chain: walk the view path upward from the
				// inserted (last) relation to the first (§VII-A2).
				for i := len(v.Edges) - 1; i >= 0; i-- {
					action.ReadChain = append(action.ReadChain, v.Edges[i])
				}
			}
			plan.Actions = append(plan.Actions, action)
		case WriteUpdate:
			action := ViewAction{View: v}
			switch {
			case v.Last() == table:
				action.Locator = LocateByViewKey
			default:
				action.Locator = LocateByScan
				for _, ix := range d.IndexesOnView(v) {
					if ix.On[0] == rel.PK[0] {
						action.Locator = LocateByIndex
						action.LocatorIndex = ix
						break
					}
				}
			}
			plan.Actions = append(plan.Actions, action)
		}
	}
	return plan, nil
}
