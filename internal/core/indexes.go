package core

import (
	"sort"

	"synergy/internal/schema"
	"synergy/internal/sqlparser"
)

// DeriveViewIndexes implements §VI-C: for each view, each conjunctive query
// that uses it gets a view-index when the query only filters on view
// attributes that neither the view key nor an existing view-index is indexed
// upon.
func DeriveViewIndexes(rewritten []*Rewritten) []*ViewIndex {
	var out []*ViewIndex
	indexedOn := map[string]map[string]bool{} // view name -> leading attrs
	leading := func(v *View) map[string]bool {
		m := indexedOn[v.Name()]
		if m == nil {
			m = map[string]bool{v.Key[0]: true}
			indexedOn[v.Name()] = m
		}
		return m
	}
	for _, rw := range rewritten {
		for _, u := range rw.Usages {
			filters := filterColumnsOn(rw.Stmt, u.Alias)
			if len(filters) == 0 {
				continue
			}
			lead := leading(u.View)
			covered := false
			for _, f := range filters {
				if lead[f] {
					covered = true
					break
				}
			}
			if covered {
				continue
			}
			col := filters[0]
			ix := &ViewIndex{View: u.View, On: []string{col}}
			out = append(out, ix)
			lead[col] = true
		}
	}
	return out
}

// filterColumnsOn lists the columns of non-join equality/range filters bound
// to a binding, sorted.
func filterColumnsOn(sel *sqlparser.SelectStmt, bindingName string) []string {
	seen := map[string]bool{}
	for _, p := range sel.Where {
		if p.IsJoin() {
			continue
		}
		if c, ok := p.Left.(sqlparser.ColumnRef); ok && c.Table == bindingName {
			seen[c.Column] = true
		}
		if c, ok := p.Right.(sqlparser.ColumnRef); ok && c.Table == bindingName {
			seen[c.Column] = true
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// DeriveMaintenanceIndexes implements §VII-C: an update to a relation that
// is in a view but is not the view's last relation must locate the affected
// view rows; without an index on that relation's key within the view, the
// whole view would be scanned. For every workload UPDATE on such a relation,
// a maintenance index on the relation's key is added (unless an equivalent
// index already exists).
func DeriveMaintenanceIndexes(s *schema.Schema, views []*View, w *Workload, existing []*ViewIndex) []*ViewIndex {
	have := map[string]map[string]bool{} // view -> leading attr
	note := func(v *View, col string) {
		if have[v.Name()] == nil {
			have[v.Name()] = map[string]bool{}
		}
		have[v.Name()][col] = true
	}
	for _, ix := range existing {
		note(ix.View, ix.On[0])
	}
	for _, v := range views {
		note(v, v.Key[0])
	}

	var out []*ViewIndex
	for _, stmt := range w.Writes() {
		up, ok := stmt.(*sqlparser.UpdateStmt)
		if !ok {
			continue
		}
		rel := s.Relation(up.Table)
		if rel == nil {
			continue
		}
		for _, v := range views {
			if !v.Contains(up.Table) || v.Last() == up.Table {
				continue
			}
			if have[v.Name()] != nil && have[v.Name()][rel.PK[0]] {
				continue
			}
			ix := &ViewIndex{View: v, On: append([]string(nil), rel.PK...), Maintenance: true}
			out = append(out, ix)
			note(v, rel.PK[0])
		}
	}
	return out
}
