package core

import (
	"fmt"

	"synergy/internal/schema"
	"synergy/internal/sqlparser"
)

// Workload is the set of SQL statements W = {w1, ..., wm} of §II-B, parsed.
type Workload struct {
	Statements []sqlparser.Statement
	Sources    []string
}

// ParseWorkload parses SQL texts into a workload.
func ParseWorkload(sqls []string) (*Workload, error) {
	w := &Workload{}
	for _, src := range sqls {
		stmt, err := sqlparser.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("core: workload statement %q: %w", src, err)
		}
		w.Statements = append(w.Statements, stmt)
		w.Sources = append(w.Sources, src)
	}
	return w, nil
}

// Selects returns the workload's SELECT statements.
func (w *Workload) Selects() []*sqlparser.SelectStmt {
	var out []*sqlparser.SelectStmt
	for _, s := range w.Statements {
		if sel, ok := s.(*sqlparser.SelectStmt); ok {
			out = append(out, sel)
		}
	}
	return out
}

// Writes returns the workload's write statements.
func (w *Workload) Writes() []sqlparser.Statement {
	var out []sqlparser.Statement
	for _, s := range w.Statements {
		switch s.(type) {
		case *sqlparser.InsertStmt, *sqlparser.UpdateStmt, *sqlparser.DeleteStmt:
			out = append(out, s)
		}
	}
	return out
}

// queryJoin is one equi-join condition of a query resolved to relations:
// binding names mapped to their underlying relation names.
type queryJoin struct {
	relA, colA string
	relB, colB string
	// bindings preserved for rewriting
	bindA, bindB string
}

// bindingRelations maps every FROM binding of a select to its relation name.
// Derived tables map to "" (they never participate in view matching).
func bindingRelations(sel *sqlparser.SelectStmt) map[string]string {
	m := map[string]string{}
	for _, ref := range sel.From {
		if ref.Sub != nil {
			m[ref.Binding()] = ""
			continue
		}
		m[ref.Binding()] = ref.Name
	}
	return m
}

// relationUsedTwice reports whether any relation appears under two bindings
// (Synergy does not rewrite such queries to views, §VIII-C: "Synergy does
// not support queries in which a relation is used more than once").
func relationUsedTwice(sel *sqlparser.SelectStmt) bool {
	seen := map[string]bool{}
	for _, ref := range sel.From {
		if ref.Sub != nil {
			continue
		}
		if seen[ref.Name] {
			return true
		}
		seen[ref.Name] = true
	}
	return false
}

// extractJoins resolves a select's equi-join predicates to relation pairs.
// Joins involving derived tables resolve with an empty relation name.
func extractJoins(sel *sqlparser.SelectStmt) []queryJoin {
	binds := bindingRelations(sel)
	resolve := func(c sqlparser.ColumnRef) (bind, rel string) {
		if c.Table != "" {
			return c.Table, binds[c.Table]
		}
		// Unqualified: attribute names are globally unique in the
		// paper's schemas, so scan bindings for the owner. Without a
		// catalog we cannot check membership here; rewriting re-checks
		// against the schema. Unqualified columns stay unresolved.
		return "", ""
	}
	var out []queryJoin
	for _, p := range sel.JoinPredicates() {
		l := p.Left.(sqlparser.ColumnRef)
		r := p.Right.(sqlparser.ColumnRef)
		lb, lr := resolve(l)
		rb, rr := resolve(r)
		out = append(out, queryJoin{
			relA: lr, colA: l.Column, bindA: lb,
			relB: rr, colB: r.Column, bindB: rb,
		})
	}
	return out
}

// matchesEdge reports whether a query join condition is exactly the
// key/foreign-key join of a schema edge.
func (j queryJoin) matchesEdge(e schema.Edge) bool {
	if len(e.PK) != 1 || len(e.FK) != 1 {
		return false // workload joins are single-attribute (§IX)
	}
	if j.relA == e.Parent && j.colA == e.PK[0] && j.relB == e.Child && j.colB == e.FK[0] {
		return true
	}
	if j.relB == e.Parent && j.colB == e.PK[0] && j.relA == e.Child && j.colA == e.FK[0] {
		return true
	}
	return false
}

// collectJoins gathers every join condition of every SELECT in the workload.
func collectJoins(w *Workload) []queryJoin {
	var out []queryJoin
	for _, sel := range w.Selects() {
		out = append(out, extractJoins(sel)...)
	}
	return out
}

// weigher scores edges and paths by the number of overlapping workload
// joins, the heuristic the mechanism uses throughout (§V-B2).
//
// An edge's weight is the number of workload join conditions matching it. A
// path's weight counts the queries whose join conditions overlap the entire
// path — i.e. queries the path could materialize a view for. The
// whole-path interpretation is what keeps Orders under the Customer root in
// TPC-W: the alternative Country→Address→Orders chain overlaps Q7's join
// set only once, while Customer→Orders overlaps Q2 and Q7.
type weigher struct {
	perQuery [][]queryJoin
}

func newWeigher(w *Workload) *weigher {
	h := &weigher{}
	for _, sel := range w.Selects() {
		h.perQuery = append(h.perQuery, extractJoins(sel))
	}
	return h
}

func (h *weigher) edgeWeight(e schema.Edge) int {
	n := 0
	for _, joins := range h.perQuery {
		for _, j := range joins {
			if j.matchesEdge(e) {
				n++
			}
		}
	}
	return n
}

// pathWeight counts queries whose joins cover every edge of the path.
func (h *weigher) pathWeight(p schema.Path) int {
	if len(p.Edges) == 0 {
		return 0
	}
	n := 0
	for _, joins := range h.perQuery {
		all := true
		for _, e := range p.Edges {
			matched := false
			for _, j := range joins {
				if j.matchesEdge(e) {
					matched = true
					break
				}
			}
			if !matched {
				all = false
				break
			}
		}
		if all {
			n++
		}
	}
	return n
}
