package core

import (
	"strings"
	"testing"

	"synergy/internal/schema"
	"synergy/internal/sqlparser"
)

func companyDesign(t *testing.T) *Design {
	t.Helper()
	w, err := ParseWorkload(schema.CompanyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	d, err := BuildDesign(schema.Company(), schema.CompanyRoots(), w)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// Figure 5(a): the DAG transformation drops the (AID, EOffice_AID) edge
// because the home-address edge overlaps W1.
func TestCompanyDAGDropsOfficeEdge(t *testing.T) {
	d := companyDesign(t)
	for _, e := range d.Candidates.DAG.Edges() {
		if e.Parent == "Address" && e.Child == "Employee" {
			if e.FK[0] != "EHome_AID" {
				t.Fatalf("kept wrong Address->Employee edge: %v", e)
			}
		}
	}
	if got := len(d.Candidates.DAG.InEdges("Employee")); got != 2 { // Address + Department
		t.Fatalf("Employee in-edges in DAG = %d, want 2", got)
	}
}

// Figure 5(b): topological order respects every DAG edge.
func TestCompanyTopoOrder(t *testing.T) {
	d := companyDesign(t)
	pos := map[string]int{}
	for i, n := range d.Candidates.TopoOrder {
		pos[n] = i
	}
	for _, e := range d.Candidates.DAG.Edges() {
		if pos[e.Parent] >= pos[e.Child] {
			t.Fatalf("topo violation: %s >= %s", e.Parent, e.Child)
		}
	}
}

// Figure 4(b): rooted trees are A -> E -> {WO, DP} and D -> {DL, P}.
func TestCompanyRootedTrees(t *testing.T) {
	d := companyDesign(t)
	a := d.Candidates.Tree("Address")
	dep := d.Candidates.Tree("Department")
	if a == nil || dep == nil {
		t.Fatal("missing rooted trees")
	}
	wantA := []string{"Address", "Dependent", "Employee", "Works_On"}
	if got := strings.Join(a.Nodes(), ","); got != strings.Join(wantA, ",") {
		t.Fatalf("Address tree nodes = %s, want %s", got, strings.Join(wantA, ","))
	}
	wantD := []string{"Department", "Department_Location", "Project"}
	if got := strings.Join(dep.Nodes(), ","); got != strings.Join(wantD, ",") {
		t.Fatalf("Department tree nodes = %s, want %s", got, strings.Join(wantD, ","))
	}
	// Employee's parent is Address (via home address), Works_On's and
	// Dependent's parent is Employee.
	if e, _ := a.ParentEdge("Employee"); e.Parent != "Address" || e.FK[0] != "EHome_AID" {
		t.Fatalf("Employee parent edge = %v", e)
	}
	if e, _ := a.ParentEdge("Works_On"); e.Parent != "Employee" {
		t.Fatalf("Works_On parent edge = %v", e)
	}
	if e, _ := a.ParentEdge("Dependent"); e.Parent != "Employee" {
		t.Fatalf("Dependent parent edge = %v", e)
	}
}

func TestCompanyAssignments(t *testing.T) {
	d := companyDesign(t)
	want := map[string]string{
		"Employee":            "Address",
		"Works_On":            "Address",
		"Dependent":           "Address",
		"Department_Location": "Department",
		"Project":             "Department",
	}
	for rel, root := range want {
		if got := d.Candidates.RootOf[rel]; got != root {
			t.Errorf("RootOf(%s) = %q, want %q", rel, got, root)
		}
	}
	if len(d.Candidates.Unassigned) != 0 {
		t.Fatalf("unassigned = %v, want none", d.Candidates.Unassigned)
	}
}

// §VI-A on the Company workload: W1 selects Address-Employee, W2 and W3
// select Employee-Works_On (the D->E join is not a tree edge, so Department
// stays a base table in W2).
func TestCompanySelectedViews(t *testing.T) {
	d := companyDesign(t)
	var names []string
	for _, v := range d.Views {
		names = append(names, v.DisplayName())
	}
	want := "Address-Employee,Employee-Works_On"
	if got := strings.Join(names, ","); got != want {
		t.Fatalf("views = %s, want %s", got, want)
	}
	// Keys: Definition 5 — key of the last relation.
	ae := d.ViewByName("V_Address__Employee")
	if strings.Join(ae.Key, ",") != "EID" {
		t.Fatalf("Address-Employee key = %v", ae.Key)
	}
	ewo := d.ViewByName("V_Employee__Works_On")
	if strings.Join(ewo.Key, ",") != "WO_EID,WO_PNo" {
		t.Fatalf("Employee-Works_On key = %v", ewo.Key)
	}
	if ae.Root != "Address" || ewo.Root != "Address" {
		t.Fatalf("view roots = %s, %s; want Address", ae.Root, ewo.Root)
	}
}

func TestCompanyRewrites(t *testing.T) {
	d := companyDesign(t)
	sels := d.Workload.Selects()

	// W1: fully replaced by Address-Employee.
	rw1 := d.Rewritten[sels[0]]
	if !rw1.UsesViews() || len(rw1.Stmt.From) != 1 || rw1.Stmt.From[0].Name != "V_Address__Employee" {
		t.Fatalf("W1 rewrite = %s", rw1.Stmt)
	}
	if len(rw1.Stmt.Where) != 1 {
		t.Fatalf("W1 rewrite where = %v (join condition should be dropped)", rw1.Stmt.Where)
	}

	// W2: Department stays a base table joined with Employee-Works_On.
	rw2 := d.Rewritten[sels[1]]
	if len(rw2.Stmt.From) != 2 {
		t.Fatalf("W2 rewrite FROM = %v", rw2.Stmt.From)
	}
	var hasView, hasDept bool
	for _, ref := range rw2.Stmt.From {
		if ref.Name == "V_Employee__Works_On" {
			hasView = true
		}
		if ref.Name == "Department" {
			hasDept = true
		}
	}
	if !hasView || !hasDept {
		t.Fatalf("W2 rewrite FROM = %s", rw2.Stmt)
	}
	// The D-E join survives (cross view-base), the E-WO join is dropped.
	if len(rw2.Stmt.Where) != 2 {
		t.Fatalf("W2 rewrite WHERE = %v", rw2.Stmt.Where)
	}

	// W3: fully replaced by Employee-Works_On.
	rw3 := d.Rewritten[sels[2]]
	if len(rw3.Stmt.From) != 1 || rw3.Stmt.From[0].Name != "V_Employee__Works_On" {
		t.Fatalf("W3 rewrite = %s", rw3.Stmt)
	}
}

// §VI-C: W3 filters Employee-Works_On on Hours, which the view key
// (WO_EID, WO_PNo) does not cover, so a view-index on Hours is added. W1
// filters Address-Employee on EID, the view key — no index.
func TestCompanyViewIndexes(t *testing.T) {
	d := companyDesign(t)
	var got []string
	for _, ix := range d.ViewIndexes {
		got = append(got, ix.View.DisplayName()+":"+strings.Join(ix.On, ","))
	}
	if len(got) != 1 || got[0] != "Employee-Works_On:Hours" {
		t.Fatalf("view indexes = %v, want [Employee-Works_On:Hours]", got)
	}
}

// Figure 6: the generic R1..R6 example — the query selects views R2-R3-R4
// and R5-R6 (not R2-R5-R6).
func TestFigure6Example(t *testing.T) {
	s := schema.New()
	mk := func(name string, pk string, fks ...schema.ForeignKey) {
		cols := []schema.Column{{Name: pk, Type: schema.TInt}}
		for _, fk := range fks {
			cols = append(cols, schema.Column{Name: fk.Cols[0], Type: schema.TInt})
		}
		s.AddRelation(&schema.Relation{Name: name, Columns: cols, PK: []string{pk}, FKs: fks})
	}
	mk("R1", "pk1")
	mk("R2", "pk2", schema.ForeignKey{Cols: []string{"fk2"}, RefTable: "R1"})
	mk("R3", "pk3", schema.ForeignKey{Cols: []string{"fk3"}, RefTable: "R2"})
	mk("R4", "pk4", schema.ForeignKey{Cols: []string{"fk4"}, RefTable: "R3"})
	mk("R5", "pk5", schema.ForeignKey{Cols: []string{"fk5"}, RefTable: "R2"})
	mk("R6", "pk6", schema.ForeignKey{Cols: []string{"fk6"}, RefTable: "R5"})

	q := `SELECT * FROM R2, R3, R4, R5, R6
	      WHERE R2.pk2 = R3.fk3 and R3.pk3 = R4.fk4 and R2.pk2 = R5.fk5 and R5.pk5 = R6.fk6`
	w, err := ParseWorkload([]string{q})
	if err != nil {
		t.Fatal(err)
	}
	d, err := BuildDesign(s, []string{"R1"}, w)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, v := range d.Views {
		names = append(names, v.DisplayName())
	}
	want := "R2-R3-R4,R5-R6"
	if got := strings.Join(names, ","); got != want {
		t.Fatalf("Figure 6 views = %s, want %s", got, want)
	}
	// Rewrite: SELECT * FROM R2-R3-R4, R5-R6 WHERE v0.pk2 = v1.fk5.
	rw := d.Rewritten[d.Workload.Selects()[0]]
	if len(rw.Stmt.From) != 2 {
		t.Fatalf("rewrite FROM = %s", rw.Stmt)
	}
	if len(rw.Stmt.Where) != 1 {
		t.Fatalf("rewrite WHERE = %v, want single cross-view join", rw.Stmt.Where)
	}
}

func TestLockChains(t *testing.T) {
	d := companyDesign(t)
	// Works_On -> Employee -> Address: two hops.
	chain, ok := d.LockChain("Works_On")
	if !ok || len(chain) != 2 {
		t.Fatalf("LockChain(Works_On) = %v, %v", chain, ok)
	}
	if chain[0].Parent != "Address" || chain[1].Parent != "Employee" {
		t.Fatalf("chain order = %v", chain)
	}
	// Root locks itself.
	chain, ok = d.LockChain("Address")
	if !ok || len(chain) != 0 {
		t.Fatalf("LockChain(Address) = %v, %v", chain, ok)
	}
}

func TestPlanInsertReadChain(t *testing.T) {
	d := companyDesign(t)
	ins := sqlparser.MustParse("INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)")
	plan, err := PlanWrite(d, ins)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Root != "Address" {
		t.Fatalf("plan root = %q, want Address", plan.Root)
	}
	if len(plan.Actions) != 1 || plan.Actions[0].View.DisplayName() != "Employee-Works_On" {
		t.Fatalf("plan actions = %+v", plan.Actions)
	}
	// §VII-A2: k-1 = 1 read (Employee) to construct the view tuple.
	rc := plan.Actions[0].ReadChain
	if len(rc) != 1 || rc[0].Parent != "Employee" {
		t.Fatalf("read chain = %v", rc)
	}
	if plan.MultiRow() {
		t.Fatal("insert plans are single-row")
	}
}

func TestPlanInsertOnRootAppliesNoViews(t *testing.T) {
	d := companyDesign(t)
	ins := sqlparser.MustParse("INSERT INTO Address (AID, Street, City, Zip) VALUES (?, ?, ?, ?)")
	plan, err := PlanWrite(d, ins)
	if err != nil {
		t.Fatal(err)
	}
	// Address is in view Address-Employee but is not its last relation:
	// the insert applicability test fails (§VII-A1).
	if len(plan.Actions) != 0 {
		t.Fatalf("actions = %+v, want none", plan.Actions)
	}
	if plan.Root != "Address" {
		t.Fatalf("root = %q", plan.Root)
	}
}

func TestPlanUpdateLocators(t *testing.T) {
	d := companyDesign(t)
	// Update on Employee applies to both views; in Address-Employee it is
	// the last relation (by-key), in Employee-Works_On it needs a
	// maintenance index... but the company workload has no UPDATE
	// statements, so no maintenance index exists and the plan falls back
	// to a scan.
	up := sqlparser.MustParse("UPDATE Employee SET EName = ? WHERE EID = ?")
	plan, err := PlanWrite(d, up)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Actions) != 2 {
		t.Fatalf("actions = %d, want 2", len(plan.Actions))
	}
	locators := map[string]LocatorKind{}
	for _, a := range plan.Actions {
		locators[a.View.DisplayName()] = a.Locator
	}
	if locators["Address-Employee"] != LocateByViewKey {
		t.Fatalf("Address-Employee locator = %v, want by-view-key", locators["Address-Employee"])
	}
	if locators["Employee-Works_On"] != LocateByScan {
		t.Fatalf("Employee-Works_On locator = %v, want scan (no maintenance index without update workload)", locators["Employee-Works_On"])
	}
	if !plan.MultiRow() {
		t.Fatal("update on non-last relation must be multi-row")
	}
}

func TestMaintenanceIndexDerivedFromUpdateWorkload(t *testing.T) {
	stmts := append(schema.CompanyWorkload(), "UPDATE Employee SET EName = ? WHERE EID = ?")
	w, err := ParseWorkload(stmts)
	if err != nil {
		t.Fatal(err)
	}
	d, err := BuildDesign(schema.Company(), schema.CompanyRoots(), w)
	if err != nil {
		t.Fatal(err)
	}
	var maint []*ViewIndex
	for _, ix := range d.ViewIndexes {
		if ix.Maintenance {
			maint = append(maint, ix)
		}
	}
	if len(maint) != 1 || maint[0].View.DisplayName() != "Employee-Works_On" || maint[0].On[0] != "EID" {
		t.Fatalf("maintenance indexes = %+v, want Employee-Works_On on EID", maint)
	}
	// With the index present, the update plan locates by index.
	up := sqlparser.MustParse("UPDATE Employee SET EName = ? WHERE EID = ?")
	plan, _ := PlanWrite(d, up)
	for _, a := range plan.Actions {
		if a.View.DisplayName() == "Employee-Works_On" && a.Locator != LocateByIndex {
			t.Fatalf("locator = %v, want by-index", a.Locator)
		}
	}
}

func TestPlanDeleteAppliesOnlyToLastRelation(t *testing.T) {
	d := companyDesign(t)
	del := sqlparser.MustParse("DELETE FROM Employee WHERE EID = ?")
	plan, err := PlanWrite(d, del)
	if err != nil {
		t.Fatal(err)
	}
	// Employee is last in Address-Employee (applies) but not in
	// Employee-Works_On (no cascade, §VII-B1).
	if len(plan.Actions) != 1 || plan.Actions[0].View.DisplayName() != "Address-Employee" {
		t.Fatalf("delete actions = %+v", plan.Actions)
	}
}

func TestUnassignedRelationHasNoLock(t *testing.T) {
	// A standalone relation (no FKs, not a root) stays outside the trees.
	s := schema.New()
	s.AddRelation(&schema.Relation{
		Name:    "Cart",
		Columns: []schema.Column{{Name: "id", Type: schema.TInt}},
		PK:      []string{"id"},
	})
	s.AddRelation(&schema.Relation{
		Name:    "Root",
		Columns: []schema.Column{{Name: "rid", Type: schema.TInt}},
		PK:      []string{"rid"},
	})
	w, _ := ParseWorkload([]string{"INSERT INTO Cart (id) VALUES (?)"})
	d, err := BuildDesign(s, []string{"Root"}, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Candidates.Unassigned) != 1 || d.Candidates.Unassigned[0] != "Cart" {
		t.Fatalf("unassigned = %v", d.Candidates.Unassigned)
	}
	plan, err := PlanWrite(d, sqlparser.MustParse("INSERT INTO Cart (id) VALUES (?)"))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Root != "" || len(plan.Actions) != 0 {
		t.Fatalf("plan = %+v, want lock-free no-view plan", plan)
	}
}

func TestViewNameAndDisplay(t *testing.T) {
	d := companyDesign(t)
	v := d.ViewByName("V_Address__Employee")
	if v == nil {
		t.Fatal("view missing")
	}
	if v.DisplayName() != "Address-Employee" {
		t.Fatalf("display = %q", v.DisplayName())
	}
	if !v.Contains("Employee") || v.Contains("Project") {
		t.Fatal("Contains misbehaves")
	}
	if v.Last() != "Employee" {
		t.Fatalf("Last = %q", v.Last())
	}
}

func TestDesignSummaryMentionsEverything(t *testing.T) {
	d := companyDesign(t)
	sum := d.Summary()
	for _, want := range []string{"Address-Employee", "Employee-Works_On", "Roots: Address, Department", "Hours"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestCandidateViewEnumeration(t *testing.T) {
	d := companyDesign(t)
	tree := d.Candidates.Tree("Address")
	paths := tree.DownwardPaths()
	// Paths with >=1 edge in A->E->{WO,DP}: A-E, A-E-WO, A-E-DP, E-WO,
	// E-DP.
	if len(paths) != 5 {
		var names []string
		for _, p := range paths {
			names = append(names, p.String())
		}
		t.Fatalf("candidate paths = %v, want 5", names)
	}
}

func TestBadRootRejected(t *testing.T) {
	w, _ := ParseWorkload(nil)
	if _, err := BuildDesign(schema.Company(), []string{"Nope"}, w); err == nil {
		t.Fatal("unknown root should fail")
	}
}
