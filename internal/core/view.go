// Package core implements the paper's primary contribution: the schema
// based-workload driven materialized views selection mechanism (§V, §VI) and
// the view maintenance / transaction planning that cooperates with the
// hierarchical locking concurrency control (§VII, §VIII).
//
// The package is pure algorithm: it consumes a relational schema, a roots
// set and a SQL workload, and produces a Design — the selected views, the
// rewritten workload, the view indexes and the per-statement write plans.
// The synergy package materializes a Design against the store.
package core

import (
	"fmt"
	"strings"

	"synergy/internal/schema"
)

// View is a candidate or selected materialized view: a path in a rooted tree
// (Definition 5). It is stored physically as a relation whose attributes are
// the union of the path relations' attributes and whose key is the key of
// the last relation in the path.
type View struct {
	// Relations lists the path's relations, root-most first.
	Relations []string
	// Edges are the key/foreign-key joins along the path.
	Edges []schema.Edge
	// Root is the root relation of the tree the path was drawn from; it
	// identifies the lock table guarding this view (§VIII-A).
	Root string
	// Key is PK(V): the primary key of the last relation.
	Key []string
	// Cols is the union of the constituent relations' attributes.
	Cols []schema.Column
}

// Name returns the view's table name, derived from its path: the paper
// writes Customer-Order-Order_line; SQL identifiers use V_ and underscores.
func (v *View) Name() string {
	return "V_" + strings.Join(v.Relations, "__")
}

// DisplayName renders the paper's hyphenated notation.
func (v *View) DisplayName() string { return strings.Join(v.Relations, "-") }

// Last returns the last relation of the path (whose key is the view key and
// whose inserts/deletes apply to the view, §VII-A/B).
func (v *View) Last() string { return v.Relations[len(v.Relations)-1] }

// Contains reports whether the view's path includes the relation.
func (v *View) Contains(rel string) bool {
	for _, r := range v.Relations {
		if r == rel {
			return true
		}
	}
	return false
}

// buildView assembles a View from a path, resolving attributes from the
// schema. It panics on unknown relations (the path came from the same
// schema).
func buildView(s *schema.Schema, root string, p schema.Path) *View {
	v := &View{
		Relations: append([]string(nil), p.Relations...),
		Edges:     append([]schema.Edge(nil), p.Edges...),
		Root:      root,
	}
	seen := map[string]bool{}
	for _, rel := range v.Relations {
		r := s.Relation(rel)
		if r == nil {
			panic(fmt.Sprintf("core: view path references unknown relation %q", rel))
		}
		for _, c := range r.Columns {
			if seen[c.Name] {
				panic(fmt.Sprintf("core: view %s attribute collision on %q (schemas must use globally unique attribute names)", v.DisplayName(), c.Name))
			}
			seen[c.Name] = true
			v.Cols = append(v.Cols, c)
		}
	}
	last := s.Relation(v.Last())
	v.Key = append([]string(nil), last.PK...)
	return v
}

// ViewIndex is a covered index on a view (§VI-C), also used for maintenance
// indexes (§VII-C).
type ViewIndex struct {
	View *View
	On   []string
	// Maintenance marks indexes added for update-tuple construction
	// rather than query filters.
	Maintenance bool
}

// Name returns the index table name.
func (ix *ViewIndex) Name() string {
	return fmt.Sprintf("IX_%s__%s", ix.View.Name(), strings.Join(ix.On, "_"))
}
