package core

import (
	"fmt"
	"sort"
	"strings"

	"synergy/internal/schema"
	"synergy/internal/sqlparser"
)

// Design is the complete output of the Synergy mechanisms for one schema and
// workload (Figure 3): the rooted trees, the selected views, the rewritten
// workload and the supplementary indexes. The synergy package materializes a
// Design against the store.
type Design struct {
	Schema     *schema.Schema
	Roots      []string
	Workload   *Workload
	Candidates *CandidateResult

	// Views is the final selected view set (§VI-A).
	Views []*View
	// PerQuery maps each workload SELECT to the views selected for it.
	PerQuery map[*sqlparser.SelectStmt][]*View
	// Rewritten maps each workload SELECT to its view-based rewrite
	// (identity when no views apply).
	Rewritten map[*sqlparser.SelectStmt]*Rewritten
	// ViewIndexes lists query-driven (§VI-C) and maintenance (§VII-C)
	// view indexes.
	ViewIndexes []*ViewIndex
}

// BuildDesign runs the full pipeline of Figure 3: candidate views
// generation, views selection, query re-writing and view-index addition.
func BuildDesign(s *schema.Schema, roots []string, w *Workload) (*Design, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cand, err := GenerateCandidates(s, roots, w)
	if err != nil {
		return nil, err
	}
	views, perQuery := SelectViews(s, cand.Trees, w)

	rewritten := map[*sqlparser.SelectStmt]*Rewritten{}
	var rwList []*Rewritten
	for _, sel := range w.Selects() {
		rw := RewriteQuery(sel, perQuery[sel])
		rewritten[sel] = rw
		rwList = append(rwList, rw)
	}

	ixs := DeriveViewIndexes(rwList)
	ixs = append(ixs, DeriveMaintenanceIndexes(s, views, w, ixs)...)

	return &Design{
		Schema:      s,
		Roots:       append([]string(nil), roots...),
		Workload:    w,
		Candidates:  cand,
		Views:       views,
		PerQuery:    perQuery,
		Rewritten:   rewritten,
		ViewIndexes: ixs,
	}, nil
}

// ViewByName returns a selected view, or nil.
func (d *Design) ViewByName(name string) *View {
	for _, v := range d.Views {
		if v.Name() == name {
			return v
		}
	}
	return nil
}

// ViewsOnRelation lists selected views whose path contains the relation.
func (d *Design) ViewsOnRelation(rel string) []*View {
	var out []*View
	for _, v := range d.Views {
		if v.Contains(rel) {
			out = append(out, v)
		}
	}
	return out
}

// IndexesOnView lists the view-indexes of a view.
func (d *Design) IndexesOnView(v *View) []*ViewIndex {
	var out []*ViewIndex
	for _, ix := range d.ViewIndexes {
		if ix.View == v || ix.View.Name() == v.Name() {
			out = append(out, ix)
		}
	}
	return out
}

// RootOf returns the root relation guarding rel, with ok=false for
// relations outside every rooted tree (their writes need no hierarchical
// lock: single-row atomicity suffices since no view contains them).
func (d *Design) RootOf(rel string) (string, bool) {
	for _, r := range d.Roots {
		if r == rel {
			return r, true
		}
	}
	root, ok := d.Candidates.RootOf[rel]
	return root, ok
}

// LockChain returns the tree edges from the root down to rel; reversing the
// walk (child FK -> parent PK reads) resolves the root-relation row key a
// write on rel must lock (§VIII-A).
func (d *Design) LockChain(rel string) ([]schema.Edge, bool) {
	root, ok := d.RootOf(rel)
	if !ok {
		return nil, false
	}
	if root == rel {
		return nil, true
	}
	tree := d.Candidates.Tree(root)
	if tree == nil {
		return nil, false
	}
	p, ok := tree.PathFromRoot(rel)
	if !ok {
		return nil, false
	}
	return p.Edges, true
}

// Summary renders a human-readable report of the design, used by examples
// and the benchmark harness.
func (d *Design) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Roots: %s\n", strings.Join(d.Roots, ", "))
	fmt.Fprintf(&b, "Rooted trees:\n")
	for _, t := range d.Candidates.Trees {
		fmt.Fprintf(&b, "  %s\n", t)
	}
	if len(d.Candidates.Unassigned) > 0 {
		fmt.Fprintf(&b, "Unassigned relations: %s\n", strings.Join(d.Candidates.Unassigned, ", "))
	}
	fmt.Fprintf(&b, "Selected views (%d):\n", len(d.Views))
	for _, v := range d.Views {
		fmt.Fprintf(&b, "  %-40s key=(%s) root=%s\n", v.DisplayName(), strings.Join(v.Key, ","), v.Root)
	}
	var q, m int
	for _, ix := range d.ViewIndexes {
		if ix.Maintenance {
			m++
		} else {
			q++
		}
	}
	fmt.Fprintf(&b, "View indexes: %d query-driven, %d maintenance\n", q, m)
	names := make([]string, 0, len(d.ViewIndexes))
	for _, ix := range d.ViewIndexes {
		kind := "query"
		if ix.Maintenance {
			kind = "maint"
		}
		names = append(names, fmt.Sprintf("  %-50s on=(%s) [%s]", ix.Name(), strings.Join(ix.On, ","), kind))
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintln(&b, n)
	}
	return b.String()
}
