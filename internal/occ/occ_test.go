package occ

import (
	"errors"
	"testing"

	"synergy/internal/cluster"
	"synergy/internal/hbase"
	"synergy/internal/phoenix"
	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

// newSession builds an Account table over a fresh store and a validator
// sharing the store's timestamp oracle — the deployment wiring: begin
// snapshots must order consistently against flush-time cell stamps.
func newSession(t testing.TB) *Session {
	t.Helper()
	hc := hbase.NewHCluster(cluster.NewDefault(nil), nil, nil)
	cat := phoenix.NewCatalog(hc)
	rel := &schema.Relation{
		Name: "Account",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TInt},
			{Name: "bal", Type: schema.TInt},
			{Name: "owner", Type: schema.TString},
		},
		PK: []string{"id"},
	}
	if _, err := cat.RegisterRelation(rel, hbase.TableSpec{MaxVersions: 1000}); err != nil {
		t.Fatal(err)
	}
	return NewSession(phoenix.NewEngine(cat), NewValidatorWithOracle(hc.Costs(), hc.NextTS))
}

func insert(t testing.TB, s *Session, id, bal int64, owner string) {
	t.Helper()
	stmt := sqlparser.MustParse("INSERT INTO Account (id, bal, owner) VALUES (?, ?, ?)")
	if err := s.Exec(sim.NewCtx(), stmt, []schema.Value{id, bal, owner}); err != nil {
		t.Fatal(err)
	}
}

func balance(t testing.TB, s *Session, id int64) (int64, bool) {
	t.Helper()
	sel := sqlparser.MustParse("SELECT bal FROM Account WHERE id = ?").(*sqlparser.SelectStmt)
	rs, err := s.Query(sim.NewCtx(), sel, []schema.Value{id})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) == 0 {
		return 0, false
	}
	return rs.Rows[0]["bal"].(int64), true
}

// TestBackwardValidationPointConflict: a transaction that read a row another
// transaction wrote and committed while it ran fails validation; disjoint
// transactions both commit.
func TestBackwardValidationPointConflict(t *testing.T) {
	s := newSession(t)
	insert(t, s, 1, 100, "alice")
	insert(t, s, 2, 200, "bob")

	ctx := sim.NewCtx()
	up := sqlparser.MustParse("UPDATE Account SET bal = ? WHERE id = ?")

	// t1 reads (and writes) row 1; a concurrent transaction commits a write
	// to row 1 first.
	t1 := s.BeginTxn(ctx)
	if err := t1.Exec(ctx, up, []schema.Value{int64(111), int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Exec(ctx, up, []schema.Value{int64(150), int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(ctx); !errors.Is(err, ErrConflict) {
		t.Fatalf("commit after overlapping committed write = %v, want ErrConflict", err)
	}
	if bal, _ := balance(t, s, 1); bal != 150 {
		t.Fatalf("bal = %d, want the committed writer's 150 (loser flushed nothing)", bal)
	}

	// Disjoint rows: both commit.
	t2 := s.BeginTxn(ctx)
	if err := t2.Exec(ctx, up, []schema.Value{int64(222), int64(2)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Exec(ctx, up, []schema.Value{int64(151), int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(ctx); err != nil {
		t.Fatalf("disjoint commit: %v", err)
	}
	if bal, _ := balance(t, s, 2); bal != 222 {
		t.Fatalf("bal = %d, want 222", bal)
	}
}

// TestScanRangeCatchesPhantom: a transaction whose query scanned a range
// conflicts with a concurrently committed INSERT into that range, even
// though the scan never returned the inserted row — the read set records
// ranges, not returned keys.
func TestScanRangeCatchesPhantom(t *testing.T) {
	s := newSession(t)
	insert(t, s, 1, 100, "alice")

	ctx := sim.NewCtx()
	t1 := s.BeginTxn(ctx)
	sum := sqlparser.MustParse("SELECT id, bal FROM Account").(*sqlparser.SelectStmt)
	if _, err := t1.Query(ctx, sum, nil); err != nil {
		t.Fatal(err)
	}
	// t1's write depends on the scan; give it one.
	if err := t1.Exec(ctx, sqlparser.MustParse("UPDATE Account SET owner = ? WHERE id = ?"),
		[]schema.Value{"sum-holder", int64(1)}); err != nil {
		t.Fatal(err)
	}

	// A concurrent transaction inserts a row into the scanned range and
	// commits.
	insert(t, s, 9, 900, "phantom")

	if err := t1.Commit(ctx); !errors.Is(err, ErrConflict) {
		t.Fatalf("commit after phantom insert = %v, want ErrConflict", err)
	}
}

// TestSnapshotHorizonExcludesInFlightFlush pins the watermark mechanism: a
// snapshot taken while a validated commit is still flushing sits at the
// commit's flush watermark (so every one of its cells, stamped above the
// watermark, is hidden), and rises past it once the flush finalizes.
func TestSnapshotHorizonExcludesInFlightFlush(t *testing.T) {
	v := NewValidator(nil) // private counter: timestamps are 1, 2, 3, ...
	ctx := sim.NewCtx()

	tx := v.Begin(ctx) // begin ts 1
	tx.RecordWrite("T", "k")
	if err := v.Validate(ctx, tx, nil); err != nil { // watermark ts 2
		t.Fatal(err)
	}
	during := v.SnapshotTS(ctx) // allocates ts 3, pinned to watermark 2
	if during != 2 {
		t.Fatalf("snapshot during flush = %d, want the flush watermark 2", during)
	}
	v.Finalize(ctx, tx)
	after := v.SnapshotTS(ctx) // allocates ts 4, no watermark in flight
	if after != 4 {
		t.Fatalf("snapshot after finalize = %d, want 4", after)
	}
}

// TestCommittedWriteSetsPruned: write sets are retained only while a
// transaction that could conflict with them is active.
func TestCommittedWriteSetsPruned(t *testing.T) {
	v := NewValidator(nil)
	ctx := sim.NewCtx()
	for i := 0; i < 100; i++ {
		tx := v.Begin(ctx)
		tx.RecordWrite("T", "k")
		if err := v.Validate(ctx, tx, nil); err != nil {
			t.Fatal(err)
		}
		v.Finalize(ctx, tx)
	}
	if st := v.Stats(); st.RetainedWriteSets != 0 {
		t.Fatalf("retained write sets = %d with no active transactions, want 0", st.RetainedWriteSets)
	}

	// An active reader pins the records committed after its snapshot.
	reader := v.Begin(ctx)
	for i := 0; i < 5; i++ {
		tx := v.Begin(ctx)
		tx.RecordWrite("T", "k")
		if err := v.Validate(ctx, tx, nil); err != nil {
			t.Fatal(err)
		}
		v.Finalize(ctx, tx)
	}
	if st := v.Stats(); st.RetainedWriteSets != 5 {
		t.Fatalf("retained write sets = %d with an active reader, want 5", st.RetainedWriteSets)
	}
	v.Abort(ctx, reader)
}

// TestBeginDuringFlushWindowConflicts is the GC-horizon regression: a
// commit's write set must survive garbage collection while its flush is in
// flight, because a transaction that begins inside the flush window holds a
// snapshot below the watermark and must conflict with it at validation —
// pruning the record would let the stale read commit a lost update.
func TestBeginDuringFlushWindowConflicts(t *testing.T) {
	v := NewValidator(nil)
	ctx := sim.NewCtx()

	t1 := v.Begin(ctx)
	t1.RecordWrite("T", "x")
	if err := v.Validate(ctx, t1, nil); err != nil { // validated, flush in flight
		t.Fatal(err)
	}
	t2 := v.Begin(ctx) // snapshot pinned below t1's flush watermark
	t2.rs.AddPoint("T", "x")
	t2.RecordWrite("T", "x")
	v.Finalize(ctx, t1)
	if err := v.Validate(ctx, t2, nil); !errors.Is(err, ErrConflict) {
		t.Fatalf("validate = %v, want ErrConflict: t2 read x below t1's watermark (lost update)", err)
	}
}

// TestStampsReservedAtValidationKeepCommitsAtomic pins the fix for the
// stamp-straddling hazard: because a commit's cell timestamps are reserved
// inside the validation critical section, another transaction's watermark
// (or a snapshot) can never land between them. A snapshot lowered to a
// later commit's watermark therefore sees ALL of an earlier finalized
// commit's cells — under flush-time stamping it could see none (or part)
// of them while validation skipped the record as "older than the
// snapshot": an unvalidated stale read.
func TestStampsReservedAtValidationKeepCommitsAtomic(t *testing.T) {
	v := NewValidator(nil) // private counter: timestamps are 1, 2, 3, ...
	ctx := sim.NewCtx()

	// A validates with two pending mutations: watermark 2, stamps 3 and 4.
	a := v.Begin(ctx) // ts 1
	a.RecordWrite("T", "x")
	var aStamps []int64
	if err := v.Validate(ctx, a, func(next func() int64) int {
		aStamps = append(aStamps, next(), next())
		return len(aStamps)
	}); err != nil {
		t.Fatal(err)
	}
	v.Finalize(ctx, a)

	// B validates next (watermark 6 after its begin 5) and is mid-flush
	// when C begins: C's horizon drops to B's watermark.
	b := v.Begin(ctx)
	b.RecordWrite("T", "y")
	if err := v.Validate(ctx, b, nil); err != nil {
		t.Fatal(err)
	}
	c := v.Begin(ctx)
	for _, ts := range aStamps {
		if ts > c.Snapshot() {
			t.Fatalf("snapshot %d (lowered to B's watermark) excludes finalized commit A's cell at %d — torn/invisible committed data",
				c.Snapshot(), ts)
		}
	}
	v.Finalize(ctx, b)
	v.Abort(ctx, c)
}

// TestRangeContains covers the read-set range matcher directly.
func TestRangeContains(t *testing.T) {
	cases := []struct {
		r    Range
		key  string
		want bool
	}{
		{Range{Table: "T", Prefix: "ab"}, "abc", true},
		{Range{Table: "T", Prefix: "ab"}, "b", false},
		{Range{Table: "T", Start: "b", Stop: "d"}, "c", true},
		{Range{Table: "T", Start: "b", Stop: "d"}, "d", false},
		{Range{Table: "T", Start: "b", Stop: "d"}, "a", false},
		{Range{Table: "T"}, "anything", true}, // full scan
		{Range{Table: "T", Start: "b"}, "zz", true},
	}
	for _, c := range cases {
		if got := c.r.contains(c.key); got != c.want {
			t.Errorf("%+v contains %q = %v, want %v", c.r, c.key, got, c.want)
		}
	}
}
