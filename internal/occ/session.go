package occ

import (
	"synergy/internal/hbase"
	"synergy/internal/phoenix"
	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

// Session executes SQL statements through a Phoenix engine under optimistic
// concurrency control, the session-transaction mirror of mvcc.Session for
// the OCC configuration.
type Session struct {
	eng *phoenix.Engine
	v   *Validator
}

// NewSession binds an engine to a validator.
func NewSession(eng *phoenix.Engine, v *Validator) *Session {
	return &Session{eng: eng, v: v}
}

// Engine exposes the underlying SQL engine.
func (s *Session) Engine() *phoenix.Engine { return s.eng }

// Validator exposes the validation service.
func (s *Session) Validator() *Validator { return s.v }

// Query runs a SELECT against a fresh begin-timestamp snapshot. Read-only
// snapshot reads are serializable as of their begin point and need no
// validation, so the transaction costs one timestamp fetch and nothing else.
func (s *Session) Query(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) (*phoenix.ResultSet, error) {
	return s.eng.QueryOpts(ctx, sel, params, phoenix.QueryOpts{Read: hbase.SnapshotRead(s.v.SnapshotTS(ctx))})
}

// QueryStream is Query returning a streaming cursor. Snapshot reads carry no
// transaction state, so Close only releases the region scanner; the begin
// timestamp pins visibility for the cursor's whole lifetime.
func (s *Session) QueryStream(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) (phoenix.RowCursor, error) {
	return s.eng.QueryStreamOpts(ctx, sel, params, phoenix.QueryOpts{Read: hbase.SnapshotRead(s.v.SnapshotTS(ctx))})
}

// Exec runs one write statement as its own optimistic transaction. A
// validation conflict surfaces as ErrConflict; the caller owns the retry
// policy (the synergy transaction layer retries with bounded backoff).
func (s *Session) Exec(ctx *sim.Ctx, stmt sqlparser.Statement, params []schema.Value) error {
	tx := s.BeginTxn(ctx)
	if err := tx.Exec(ctx, stmt, params); err != nil {
		tx.Abort(ctx)
		return err
	}
	return tx.Commit(ctx)
}

// SessionTx is one multi-statement optimistic transaction: statements buffer
// into a transaction-scoped mutator, every read (query scans, point lookups
// and the read-before-write of UPDATE/DELETE) goes through the tracking
// read-your-writes view so the read set is complete, and Commit validates
// backward before flushing — on conflict nothing reaches the store.
type SessionTx struct {
	sess *Session
	tx   *Tx
	mut  *hbase.BufferedMutator
	rd   hbase.Reader // tracking reader over the RYW view
	done bool
}

// BeginTxn opens a multi-statement optimistic transaction on the session.
func (s *Session) BeginTxn(ctx *sim.Ctx) *SessionTx {
	tx := s.v.Begin(ctx)
	mut := s.eng.Client().NewTxMutator()
	return &SessionTx{sess: s, tx: tx, mut: mut, rd: tx.Track(mut.View())}
}

// writeOpts returns the per-statement options carrying the transaction's
// snapshot, read/write-set recorders and shared mutator. Mutations stay
// unstamped (TS 0): the commit flush assigns store timestamps, all above the
// flush watermark the validator allocated.
func (t *SessionTx) writeOpts() phoenix.WriteOpts {
	return phoenix.WriteOpts{
		Read:    t.tx.ReadOpts(),
		OnWrite: t.tx.RecordWrite,
		Mutator: t.mut,
		Reader:  t.rd,
	}
}

// Exec buffers one write statement into the transaction.
func (t *SessionTx) Exec(ctx *sim.Ctx, stmt sqlparser.Statement, params []schema.Value) error {
	if t.done {
		return ErrFinished
	}
	return t.sess.eng.Exec(ctx, stmt, params, t.writeOpts())
}

// Query runs a SELECT inside the transaction: scans and point lookups see
// the transaction's own buffered writes merged over its snapshot, and their
// ranges and keys join the read set.
func (t *SessionTx) Query(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) (*phoenix.ResultSet, error) {
	if t.done {
		return nil, ErrFinished
	}
	return t.sess.eng.QueryOpts(ctx, sel, params, phoenix.QueryOpts{Read: t.tx.ReadOpts(), Reader: t.rd})
}

// QueryStream is Query returning a cursor: rows stream off the tracking
// reader, so the scanned ranges still join the read set at open time. The
// cursor holds no transaction state — Close only releases the scanner, and
// the transaction outlives the cursor.
func (t *SessionTx) QueryStream(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) (phoenix.RowCursor, error) {
	if t.done {
		return nil, ErrFinished
	}
	return t.sess.eng.QueryStreamOpts(ctx, sel, params, phoenix.QueryOpts{Read: t.tx.ReadOpts(), Reader: t.rd})
}

// Commit validates backward and, on success, flushes the buffered writes as
// one batch round (their timestamps were reserved at validation). On
// conflict the buffer is discarded — nothing reached the store — and
// ErrConflict returns; the caller may retry with a fresh BeginTxn.
func (t *SessionTx) Commit(ctx *sim.Ctx) error {
	if t.done {
		return ErrFinished
	}
	t.done = true
	if err := t.sess.v.Validate(ctx, t.tx, t.mut.StampPending); err != nil {
		t.mut.Discard()
		return err
	}
	if err := t.mut.Flush(ctx); err != nil {
		t.sess.v.AbandonFlush(ctx, t.tx)
		return err
	}
	t.sess.v.Finalize(ctx, t.tx)
	return nil
}

// Abort discards the buffered writes — nothing reaches the store.
func (t *SessionTx) Abort(ctx *sim.Ctx) {
	if t.done {
		return
	}
	t.done = true
	t.mut.Discard()
	t.sess.v.Abort(ctx, t.tx)
}
