// Package occ is a backward-validation optimistic concurrency control layer
// in the style of Larson et al., "High-Performance Concurrency Control
// Mechanisms for Main-Memory Databases": transactions run lock-free against a
// begin-timestamp snapshot, record their read set (point reads and scan
// ranges) and write set as they execute, and validate at commit against the
// write sets of transactions that committed while they ran. A transaction
// whose read set overlaps a concurrently committed write set aborts — its
// buffered writes are discarded unapplied — and the caller retries with
// bounded backoff, the optimistic analogue of the lock path's contended
// checkAndPut spin.
//
// The layer is built on the transaction-scoped write pipeline: a transaction
// buffers every mutation in its BufferedMutator (nothing reaches the store
// before validation passes, so an abort is a pure buffer discard) and reads
// through the mutator's read-your-writes overlay. Snapshot isolation for
// readers comes from the store's cell timestamps alone — no transaction
// server sits on the read path, which is why OCC's per-statement overhead is
// closer to hierarchical locking's than to the Tephra-like MVCC layer's
// 800-900 ms (§IX-D4).
package occ

import (
	"errors"
	"fmt"
	"sync"

	"synergy/internal/hbase"
	"synergy/internal/sim"
)

// ErrConflict reports a validation failure at commit: the transaction read
// data that a concurrently committed transaction wrote, so its execution is
// not serializable after that commit. The transaction's buffered writes were
// discarded; the caller may retry from a fresh snapshot.
var ErrConflict = errors.New("occ: validation conflict")

// ErrFinished reports use of a transaction after commit or abort.
var ErrFinished = errors.New("occ: transaction already finished")

// commitRec is the write set of one validated transaction, kept for backward
// validation of transactions that overlapped it. start is the flush-start
// watermark: every cell of the commit was stamped after it, so a snapshot
// taken at or below start saw none of the commit's writes.
type commitRec struct {
	start  int64
	writes map[string]struct{}
}

// Validator is the commit-time validation service. Unlike the MVCC layer's
// transaction server it is not on the read path: Begin fetches one timestamp,
// reads carry no per-cell filter closures, and only commit pays a validation
// round trip.
type Validator struct {
	costs *sim.Costs
	// next allocates begin timestamps and flush watermarks. Deployments
	// share the store's timestamp oracle so snapshots order consistently
	// against every cell stamp in the cluster.
	next func() int64

	mu sync.Mutex
	// active tracks in-flight transactions; their snapshots bound how far
	// back committed write sets must be retained.
	active map[*Tx]struct{}
	// flushing holds the flush-start watermarks of validated commits whose
	// batch flush has not finished: new snapshots stay below them so no
	// reader ever observes half of a multi-region commit.
	flushing  map[int64]struct{}
	committed []commitRec
	// writeIdx maps every key in a retained committed write set to the
	// newest retained commit that wrote it. Point validation probes it —
	// one hash lookup per read-set point — instead of walking committed;
	// "newest start >= snap" is exactly "some conflicting commit exists",
	// because any other commit of the key has an older start. The record
	// slice remains the source of truth for range (phantom) validation and
	// for rebuilding the index on the rare AbandonFlush.
	writeIdx map[string]int64
	// stats
	begun, commits, aborts, conflicts int64
}

// ActiveTxns reports the number of in-flight transactions — snapshots that
// pin the retained committed write sets. Session layers use it to verify
// that a disconnected client's transaction was aborted and released.
func (v *Validator) ActiveTxns() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.active)
}

// NewValidator creates a standalone validator allocating timestamps from a
// private counter (tests); deployments use NewValidatorWithOracle.
func NewValidator(costs *sim.Costs) *Validator {
	var ctr int64
	return NewValidatorWithOracle(costs, func() int64 { ctr++; return ctr })
}

// NewValidatorWithOracle creates a validator drawing timestamps from the
// given oracle — deployments pass the store's clock so begin snapshots line
// up with every cell timestamp in the cluster.
func NewValidatorWithOracle(costs *sim.Costs, next func() int64) *Validator {
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	return &Validator{
		costs:    costs,
		next:     next,
		active:   map[*Tx]struct{}{},
		flushing: map[int64]struct{}{},
		writeIdx: map[string]int64{},
	}
}

// Tx is one in-flight optimistic transaction: a begin-timestamp snapshot, a
// read set accumulated by the tracking reader, and a write set accumulated
// through phoenix.WriteOpts.OnWrite. All fields are owned by the
// transaction's goroutine; the validator only touches them under its mutex
// during Begin/Validate/Abort.
type Tx struct {
	v      *Validator
	begin  int64 // oracle timestamp at begin
	snap   int64 // snapshot horizon (<= begin, lowered by in-flight flushes)
	rs     ReadSet
	writes map[string]struct{}
	// commitStart is the flush watermark allocated at validation; 0 until
	// validated (or for read-only commits, which need no watermark).
	commitStart int64
	done        bool
}

// Begin starts a transaction: one oracle round trip for the begin timestamp.
// The snapshot horizon is the begin timestamp lowered below the watermark of
// any commit still flushing, so a half-applied commit is invisible in its
// entirety rather than partially visible.
func (v *Validator) Begin(ctx *sim.Ctx) *Tx {
	ctx.Charge(v.costs.OCCBegin)
	v.mu.Lock()
	defer v.mu.Unlock()
	v.begun++
	begin := v.next()
	t := &Tx{v: v, begin: begin, snap: v.horizonLocked(begin), writes: map[string]struct{}{}}
	v.active[t] = struct{}{}
	return t
}

// SnapshotTS returns a fresh read snapshot horizon without registering a
// transaction: one oracle round trip. Read-only snapshot reads are
// serializable as of their begin point and validate nothing, so they need no
// registration — but they must still sit below the flush watermark of any
// commit in flight, or they would observe half of a multi-region flush.
func (v *Validator) SnapshotTS(ctx *sim.Ctx) int64 {
	ctx.Charge(v.costs.OCCBegin)
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.horizonLocked(v.next())
}

// horizonLocked lowers a begin timestamp below every in-flight flush
// watermark. Caller holds v.mu.
func (v *Validator) horizonLocked(begin int64) int64 {
	snap := begin
	for fs := range v.flushing {
		if fs < snap {
			snap = fs
		}
	}
	return snap
}

// Snapshot reports the transaction's snapshot horizon: cells stamped above
// it are invisible to the transaction's reads.
func (t *Tx) Snapshot() int64 { return t.snap }

// ReadOpts returns the snapshot visibility filter for the transaction's
// reads: everything committed at or below the snapshot horizon, plus the
// synthetic overlay timestamps of the transaction's own buffered writes.
func (t *Tx) ReadOpts() hbase.ReadOpts { return hbase.SnapshotRead(t.snap) }

// RecordWrite adds a row to the transaction's write set; it has the
// signature of phoenix.WriteOpts.OnWrite.
func (t *Tx) RecordWrite(table, rowKey string) {
	t.writes[table+"\x00"+rowKey] = struct{}{}
}

// HasWrite reports whether a row is in the transaction's write set (tests
// pin write-set completeness through it).
func (t *Tx) HasWrite(table, rowKey string) bool {
	_, ok := t.writes[table+"\x00"+rowKey]
	return ok
}

// Track wraps a reader so every point get and scan range it serves lands in
// the transaction's read set. Wrap the transaction's read-your-writes view
// (or the plain store client) and thread the result through the SQL layer's
// Reader options.
func (t *Tx) Track(r hbase.Reader) hbase.Reader {
	return &trackingReader{inner: r, rs: &t.rs}
}

// Validate is the first half of commit: backward validation against every
// write set that committed after the transaction's snapshot. On success it
// allocates the flush watermark, reserves the commit's cell timestamps by
// running stampPending (when non-nil) against the oracle inside the same
// critical section, and publishes the transaction's write set for future
// validators; the caller then flushes the buffered mutations and calls
// Finalize (or AbandonFlush if the flush failed). On conflict the
// transaction is finished — the caller discards its buffer and may retry
// from a fresh Begin.
//
// Stamping inside the critical section is what keeps commits atomic to
// snapshots: every timestamp the validator ever hands out (begin snapshots,
// watermarks, cell stamps) is allocated under the lock, so one commit's
// stamp block can never straddle another transaction's snapshot horizon —
// a snapshot sees all of a commit or none of it, and "fully visible" is
// exactly "rec.start < snap".
func (v *Validator) Validate(ctx *sim.Ctx, t *Tx, stampPending func(next func() int64) int) error {
	ctx.Charge(v.costs.OCCValidate)
	ctx.Charge(sim.Micros(int64(t.rs.Len()+len(t.writes)) * int64(v.costs.OCCValidatePerEntry)))
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.done {
		return ErrFinished
	}
	delete(v.active, t)
	// Point reads probe the write index: O(read set), independent of how
	// many commit records the active-transaction horizon retains.
	for p := range t.rs.points {
		if start, ok := v.writeIdx[p]; ok && start >= t.snap {
			t.done = true
			v.aborts++
			v.conflicts++
			return fmt.Errorf("%w: read of %s overlaps a write committed after snapshot %d", ErrConflict, describeKey(p), t.snap)
		}
	}
	// Blind write-write overlap (no read of the row, e.g. two concurrent
	// upserts): also non-serializable under last-writer-wins flushing, so
	// it aborts too. Same probe.
	for w := range t.writes {
		if start, ok := v.writeIdx[w]; ok && start >= t.snap {
			t.done = true
			v.aborts++
			v.conflicts++
			return fmt.Errorf("%w: write of %s overlaps a write committed after snapshot %d", ErrConflict, describeKey(w), t.snap)
		}
	}
	// Scan ranges cannot be hash-probed; only transactions that scanned
	// walk the retained records, and only the records above their snapshot.
	if len(t.rs.ranges) > 0 {
		for i := range v.committed {
			rec := &v.committed[i]
			if rec.start < t.snap {
				continue // fully visible in our snapshot: not a conflict
			}
			for w := range rec.writes {
				tbl, key := splitWriteKey(w)
				for _, r := range t.rs.ranges {
					if r.Table != tbl || !r.contains(key) {
						continue
					}
					t.done = true
					v.aborts++
					v.conflicts++
					return fmt.Errorf("%w: read of %s overlaps a write committed after snapshot %d", ErrConflict, describeKey(w), t.snap)
				}
			}
		}
	}
	t.done = true
	t.commitStart = 0
	pending := 0
	if len(t.writes) > 0 {
		t.commitStart = v.next()
		if stampPending != nil {
			pending = stampPending(v.next)
		}
		v.flushing[t.commitStart] = struct{}{}
		v.committed = append(v.committed, commitRec{start: t.commitStart, writes: t.writes})
		for w := range t.writes {
			v.writeIdx[w] = t.commitStart // newest commit of the key, by construction
		}
		v.gcLocked()
	} else if stampPending != nil {
		pending = stampPending(v.next)
	}
	if pending > 0 && len(t.writes) == 0 {
		// Pending mutations with an empty write set would flush invisibly
		// to validation; nothing in the write path produces this (quiet
		// mutations only ever accompany recorded ones), but guard the
		// invariant loudly rather than silently losing serializability.
		// The transaction is already finished — the caller discards the
		// buffer like any other failed commit.
		return fmt.Errorf("occ: %d pending mutations with an empty write set", pending)
	}
	return nil
}

// AbandonFlush retires a validated commit whose flush failed. The batch
// path resolves every table before applying any mutation, so a failed
// flush applied nothing: the watermark is retired and the write set
// published at validation is withdrawn — the dead commit neither pins
// snapshot horizons nor causes false conflicts.
func (v *Validator) AbandonFlush(ctx *sim.Ctx, t *Tx) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.commitStart != 0 {
		delete(v.flushing, t.commitStart)
		kept := v.committed[:0]
		for _, rec := range v.committed {
			if rec.start != t.commitStart {
				kept = append(kept, rec)
			}
		}
		tail := v.committed[len(kept):]
		for i := range tail {
			tail[i] = commitRec{}
		}
		v.committed = kept
		// The dead commit may have shadowed older commits of the same keys
		// in the index; this path is rare (flush failure), so rebuild from
		// the survivors instead of reasoning about shadowing.
		v.writeIdx = make(map[string]int64, len(v.writeIdx))
		for _, rec := range v.committed {
			for w := range rec.writes {
				if cur, ok := v.writeIdx[w]; !ok || rec.start > cur {
					v.writeIdx[w] = rec.start
				}
			}
		}
		t.commitStart = 0
	}
	v.aborts++
}

// Finalize is the second half of commit, called after the buffered mutations
// flushed: the commit's flush watermark is retired, so new snapshots admit
// its (now fully applied) writes.
func (v *Validator) Finalize(ctx *sim.Ctx, t *Tx) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.commitStart != 0 {
		delete(v.flushing, t.commitStart)
		// The retired watermark may have been the only thing pinning this
		// commit's write set (see gcLocked).
		v.gcLocked()
	}
	v.commits++
}

// Abort finishes the transaction without validation. Nothing was flushed —
// an optimistic transaction's writes live in its buffer until validation
// passes — so there is no visibility cleanup of any kind.
func (v *Validator) Abort(ctx *sim.Ctx, t *Tx) {
	ctx.Charge(v.costs.RPC)
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.done {
		return
	}
	t.done = true
	delete(v.active, t)
	v.aborts++
}

// gcLocked prunes committed write sets no active transaction can conflict
// with: a record is kept while some active snapshot predates it — or while
// its own flush is still in flight, because a transaction beginning inside
// the flush window gets a snapshot at or below the watermark and will need
// the record at validation (dropping it would let a stale read commit a
// lost update). Caller holds v.mu.
func (v *Validator) gcLocked() {
	minSnap := int64(1<<62 - 1)
	for t := range v.active {
		if t.snap < minSnap {
			minSnap = t.snap
		}
	}
	for fs := range v.flushing {
		if fs < minSnap {
			minSnap = fs
		}
	}
	kept := v.committed[:0]
	for _, rec := range v.committed {
		if rec.start >= minSnap {
			kept = append(kept, rec)
		}
	}
	tail := v.committed[len(kept):]
	for i := range tail {
		tail[i] = commitRec{}
	}
	dropped := len(tail) > 0
	v.committed = kept
	if dropped {
		// An index entry below the horizon has no surviving record: every
		// commit of its key is at most the (dropped) newest one.
		for k, start := range v.writeIdx {
			if start < minSnap {
				delete(v.writeIdx, k)
			}
		}
	}
}

// Stats reports validator counters.
type Stats struct {
	Begun, Commits, Aborts, Conflicts int64
	RetainedWriteSets                 int
	// IndexedKeys is the committed write-set index size; it shrinks with
	// RetainedWriteSets as the active-transaction horizon advances.
	IndexedKeys int
}

// Stats returns a snapshot of the validator counters.
func (v *Validator) Stats() Stats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return Stats{
		Begun: v.begun, Commits: v.commits, Aborts: v.aborts, Conflicts: v.conflicts,
		RetainedWriteSets: len(v.committed),
		IndexedKeys:       len(v.writeIdx),
	}
}

// describeKey renders a write-set key ("table\x00rowkey") readably.
func describeKey(k string) string {
	for i := 0; i < len(k); i++ {
		if k[i] == 0 {
			return fmt.Sprintf("%s/%q", k[:i], k[i+1:])
		}
	}
	return fmt.Sprintf("%q", k)
}
