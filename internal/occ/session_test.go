package occ

import (
	"errors"
	"sync"
	"testing"

	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

// TestSessionTxnReadYourWrites: inside one optimistic transaction, point
// gets and scans see the transaction's own buffered writes merged over its
// snapshot, while a concurrent reader sees nothing until commit.
func TestSessionTxnReadYourWrites(t *testing.T) {
	s := newSession(t)
	insert(t, s, 1, 100, "alice")

	ctx := sim.NewCtx()
	tx := s.BeginTxn(ctx)
	exec := func(q string, params ...schema.Value) {
		t.Helper()
		if err := tx.Exec(ctx, sqlparser.MustParse(q), params); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	exec("INSERT INTO Account (id, bal, owner) VALUES (?, ?, ?)", int64(3), int64(300), "carol")
	exec("UPDATE Account SET bal = ? WHERE id = ?", int64(333), int64(3))

	point := sqlparser.MustParse("SELECT bal FROM Account WHERE id = ?").(*sqlparser.SelectStmt)
	rs, err := tx.Query(ctx, point, []schema.Value{int64(3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0]["bal"].(int64) != 333 {
		t.Fatalf("point get inside txn = %v, want bal 333", rs.Rows)
	}
	full := sqlparser.MustParse("SELECT id FROM Account").(*sqlparser.SelectStmt)
	rs, err = tx.Query(ctx, full, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Fatalf("full scan inside txn = %d rows, want 2", len(rs.Rows))
	}

	// Concurrent snapshot reader sees nothing.
	if _, ok := balance(t, s, 3); ok {
		t.Fatal("concurrent reader saw an uncommitted insert")
	}

	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if bal, ok := balance(t, s, 3); !ok || bal != 333 {
		t.Fatalf("post-commit balance = %d, %v; want 333", bal, ok)
	}
}

// TestSessionTxnDeleteThenReinsert: flush-time stamping orders a buffered
// tombstone strictly below a later re-insert of the same row, so the row
// survives commit (the OCC analogue of the MVCC checkpoint regression).
func TestSessionTxnDeleteThenReinsert(t *testing.T) {
	s := newSession(t)
	insert(t, s, 1, 100, "alice")

	ctx := sim.NewCtx()
	tx := s.BeginTxn(ctx)
	if err := tx.Exec(ctx, sqlparser.MustParse("DELETE FROM Account WHERE id = ?"),
		[]schema.Value{int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Exec(ctx, sqlparser.MustParse("INSERT INTO Account (id, bal, owner) VALUES (?, ?, ?)"),
		[]schema.Value{int64(1), int64(500), "alice2"}); err != nil {
		t.Fatal(err)
	}
	point := sqlparser.MustParse("SELECT bal FROM Account WHERE id = ?").(*sqlparser.SelectStmt)
	rs, err := tx.Query(ctx, point, []schema.Value{int64(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0]["bal"].(int64) != 500 {
		t.Fatalf("read inside txn after delete+reinsert = %v, want bal 500", rs.Rows)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if bal, ok := balance(t, s, 1); !ok || bal != 500 {
		t.Fatalf("post-commit balance = %d, %v; re-inserted row lost", bal, ok)
	}
}

// TestSessionTxnAbortDiscards: an aborted optimistic transaction flushed
// nothing, so the abort is a pure buffer discard with no store cleanup.
func TestSessionTxnAbortDiscards(t *testing.T) {
	s := newSession(t)
	insert(t, s, 1, 100, "alice")

	ctx := sim.NewCtx()
	tx := s.BeginTxn(ctx)
	if err := tx.Exec(ctx, sqlparser.MustParse("UPDATE Account SET bal = ? WHERE id = ?"),
		[]schema.Value{int64(999), int64(1)}); err != nil {
		t.Fatal(err)
	}
	tx.Abort(ctx)

	if bal, _ := balance(t, s, 1); bal != 100 {
		t.Fatalf("aborted update visible: bal = %d", bal)
	}
	if st := s.Validator().Stats(); st.Aborts == 0 {
		t.Fatal("abort not recorded by the validator")
	}
	if err := tx.Commit(ctx); !errors.Is(err, ErrFinished) {
		t.Fatalf("commit after abort = %v, want ErrFinished", err)
	}
}

// TestConcurrentIncrementsSerializable is the classic OCC correctness
// check: many goroutines increment the same balance read-modify-write,
// retrying validation conflicts; every committed increment must survive, so
// the final balance equals the total number of increments.
func TestConcurrentIncrementsSerializable(t *testing.T) {
	s := newSession(t)
	insert(t, s, 1, 0, "counter")

	const workers, perWorker = 8, 20
	point := sqlparser.MustParse("SELECT bal FROM Account WHERE id = ?").(*sqlparser.SelectStmt)
	up := sqlparser.MustParse("UPDATE Account SET bal = ? WHERE id = ?")

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for {
					ctx := sim.NewCtx()
					tx := s.BeginTxn(ctx)
					rs, err := tx.Query(ctx, point, []schema.Value{int64(1)})
					if err != nil {
						tx.Abort(ctx)
						errs <- err
						return
					}
					cur := rs.Rows[0]["bal"].(int64)
					if err := tx.Exec(ctx, up, []schema.Value{cur + 1, int64(1)}); err != nil {
						tx.Abort(ctx)
						errs <- err
						return
					}
					err = tx.Commit(ctx)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrConflict) {
						errs <- err
						return
					}
					// Validation conflict: retry from a fresh snapshot.
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if bal, _ := balance(t, s, 1); bal != workers*perWorker {
		t.Fatalf("final balance = %d, want %d (lost increments are a serializability violation)",
			bal, workers*perWorker)
	}
	st := s.Validator().Stats()
	if st.Commits < workers*perWorker {
		t.Fatalf("commits = %d, want at least %d", st.Commits, workers*perWorker)
	}
	t.Logf("commits=%d conflicts=%d (contention on one hot row)", st.Commits, st.Conflicts)
}
