package occ

import (
	"synergy/internal/hbase"
	"synergy/internal/sim"
)

// Range is one scan's key range in a table's keyspace. Prefix ranges keep
// the prefix itself (a HasPrefix check beats bound arithmetic); bounded
// ranges use [Start, Stop) with "" meaning unbounded on that side.
type Range struct {
	Table  string
	Prefix string
	Start  string
	Stop   string
}

// contains reports whether a row key of the range's table falls inside it.
func (r Range) contains(key string) bool {
	if r.Prefix != "" {
		return len(key) >= len(r.Prefix) && key[:len(r.Prefix)] == r.Prefix
	}
	if key < r.Start {
		return false
	}
	return r.Stop == "" || key < r.Stop
}

// ReadSet is what a transaction read: point gets by (table, key) and scan
// ranges. Scan ranges — not the rows a scan happened to return — are what
// backward validation compares against committed write sets, so an insert
// into a scanned range (a would-be phantom) conflicts even though the scan
// never saw the row.
type ReadSet struct {
	points map[string]struct{} // "table\x00key"
	ranges []Range
}

// AddPoint records a point read.
func (rs *ReadSet) AddPoint(table, key string) {
	if rs.points == nil {
		rs.points = map[string]struct{}{}
	}
	rs.points[table+"\x00"+key] = struct{}{}
}

// AddRange records a scan range.
func (rs *ReadSet) AddRange(r Range) { rs.ranges = append(rs.ranges, r) }

// Len reports the read-set size (points + ranges), the quantity the
// validation cost model scales with.
func (rs *ReadSet) Len() int { return len(rs.points) + len(rs.ranges) }

func splitWriteKey(w string) (table, key string) {
	for i := 0; i < len(w); i++ {
		if w[i] == 0 {
			return w[:i], w[i+1:]
		}
	}
	return w, ""
}

// RangeOf derives the read-set range of a scan spec.
func RangeOf(table string, spec hbase.ScanSpec) Range {
	if spec.Prefix != "" {
		return Range{Table: table, Prefix: spec.Prefix}
	}
	return Range{Table: table, Start: spec.Start, Stop: spec.Stop}
}

// trackingReader wraps a Reader (the transaction's read-your-writes view, or
// a plain store client) so every point get and scan range lands in the read
// set. The phoenix openScan/GetRowVia choke points read through it, which is
// what makes the captured set complete: SELECT scans, index-nested-loop
// probes, the read-before-write of UPDATE/DELETE and view-maintenance
// locator reads all pass through one of the two methods.
type trackingReader struct {
	inner hbase.Reader
	rs    *ReadSet
}

func (t *trackingReader) Get(ctx *sim.Ctx, tbl, key string, opts hbase.ReadOpts) (hbase.RowResult, error) {
	t.rs.AddPoint(tbl, key)
	return t.inner.Get(ctx, tbl, key, opts)
}

func (t *trackingReader) OpenScan(ctx *sim.Ctx, tbl string, spec hbase.ScanSpec) (hbase.RowStream, error) {
	t.rs.AddRange(RangeOf(tbl, spec))
	return t.inner.OpenScan(ctx, tbl, spec)
}
