package occ

import (
	"errors"
	"testing"

	"synergy/internal/sim"
)

// TestWriteIndexFollowsRetention: the committed write-set index holds exactly
// the keys of the retained records — it fills while an active transaction
// pins history and empties when the horizon advances past it.
func TestWriteIndexFollowsRetention(t *testing.T) {
	v := NewValidator(nil)
	ctx := sim.NewCtx()

	reader := v.Begin(ctx)
	for i := 0; i < 5; i++ {
		tx := v.Begin(ctx)
		tx.RecordWrite("T", string(rune('a'+i)))
		if err := v.Validate(ctx, tx, nil); err != nil {
			t.Fatal(err)
		}
		v.Finalize(ctx, tx)
	}
	if st := v.Stats(); st.IndexedKeys != 5 {
		t.Fatalf("indexed keys = %d with an active reader, want 5", st.IndexedKeys)
	}
	v.Abort(ctx, reader)

	// The next GC (triggered by any commit) prunes records and index alike.
	tx := v.Begin(ctx)
	tx.RecordWrite("T", "z")
	if err := v.Validate(ctx, tx, nil); err != nil {
		t.Fatal(err)
	}
	v.Finalize(ctx, tx)
	if st := v.Stats(); st.RetainedWriteSets != 0 || st.IndexedKeys != 0 {
		t.Fatalf("retained=%d indexed=%d after horizon advanced, want 0/0",
			st.RetainedWriteSets, st.IndexedKeys)
	}
}

// TestWriteIndexNewestCommitWins: two retained commits of the same key index
// the newer start, and a snapshot between the two still conflicts — "newest
// >= snap" must hold even when only the older record conflicts... which can
// never happen: any snapshot that admits the newer commit admits the older
// one too. The test pins the conflicting direction.
func TestWriteIndexNewestCommitWins(t *testing.T) {
	v := NewValidator(nil)
	ctx := sim.NewCtx()

	pin := v.Begin(ctx)    // pins every later record
	victim := v.Begin(ctx) // snapshot predates both commits of "k"
	for i := 0; i < 2; i++ {
		tx := v.Begin(ctx)
		tx.RecordWrite("T", "k")
		if err := v.Validate(ctx, tx, nil); err != nil {
			t.Fatal(err)
		}
		v.Finalize(ctx, tx)
	}
	victim.rs.AddPoint("T", "k")
	victim.RecordWrite("T", "k")
	if err := v.Validate(ctx, victim, nil); !errors.Is(err, ErrConflict) {
		t.Fatalf("validate = %v, want ErrConflict against the retained commits of k", err)
	}
	v.Abort(ctx, pin)
}

// TestAbandonFlushReindexes: abandoning a validated-but-unflushed commit must
// (a) stop its write set from causing conflicts, and (b) restore the index
// entry of any older retained commit of the same key it shadowed.
func TestAbandonFlushReindexes(t *testing.T) {
	v := NewValidator(nil)
	ctx := sim.NewCtx()

	// victim's snapshot predates everything; it will validate last.
	victim := v.Begin(ctx)

	// A commits "shared"; B then commits "shared" and "bOnly" but its flush
	// fails and is abandoned. B's index entries shadowed A's.
	a := v.Begin(ctx)
	a.RecordWrite("T", "shared")
	if err := v.Validate(ctx, a, nil); err != nil {
		t.Fatal(err)
	}
	v.Finalize(ctx, a)

	bTx := v.Begin(ctx)
	bTx.RecordWrite("T", "shared")
	bTx.RecordWrite("T", "bOnly")
	if err := v.Validate(ctx, bTx, nil); err != nil {
		t.Fatal(err)
	}
	v.AbandonFlush(ctx, bTx)

	// bOnly was only ever written by the dead commit: no conflict.
	clean := v.Begin(ctx)
	clean.rs.AddPoint("T", "bOnly")
	clean.RecordWrite("T", "cOnly")
	if err := v.Validate(ctx, clean, nil); err != nil {
		t.Fatalf("read of the abandoned commit's private key conflicted: %v", err)
	}
	v.Finalize(ctx, clean)

	// shared still has A's retained record behind it: the victim, whose
	// snapshot predates A, must conflict even though B's entry is gone.
	victim.rs.AddPoint("T", "shared")
	victim.RecordWrite("T", "victim")
	if err := v.Validate(ctx, victim, nil); !errors.Is(err, ErrConflict) {
		t.Fatalf("validate = %v, want ErrConflict against A's surviving commit of shared", err)
	}
}

// BenchmarkValidatePointProbe measures commit validation with a deep retained
// history (an old reader pins 1024 single-key commit records): the indexed
// point probe is O(read set), where the former record walk was O(read set ×
// retained records). Read-only validations keep the history size fixed
// across iterations.
func BenchmarkValidatePointProbe(b *testing.B) {
	v := NewValidator(nil)
	ctx := sim.NewCtx()
	pin := v.Begin(ctx)
	for i := 0; i < 1024; i++ {
		tx := v.Begin(ctx)
		tx.RecordWrite("T", string(rune('a'+i%26))+string(rune('0'+i/26)))
		if err := v.Validate(ctx, tx, nil); err != nil {
			b.Fatal(err)
		}
		v.Finalize(ctx, tx)
	}
	if st := v.Stats(); st.RetainedWriteSets != 1024 {
		b.Fatalf("retained = %d, want 1024", st.RetainedWriteSets)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var simTotal sim.Micros
	for i := 0; i < b.N; i++ {
		c := sim.NewCtx()
		tx := v.Begin(c)
		tx.rs.AddPoint("T", "miss")
		if err := v.Validate(c, tx, nil); err != nil {
			b.Fatal(err)
		}
		v.Finalize(c, tx)
		simTotal += c.Elapsed()
	}
	b.ReportMetric(simTotal.Milliseconds()/float64(b.N), "sim-ms/op")
	_ = pin
}
