package cluster

import (
	"testing"

	"synergy/internal/sim"
)

func TestNewDefaultTopology(t *testing.T) {
	c := NewDefault(nil)
	if got := c.Size(); got != 8 {
		t.Fatalf("default cluster size = %d, want 8 (paper §IX-A1)", got)
	}
	if got := len(c.Nodes(RoleSlave)); got != 5 {
		t.Fatalf("slaves = %d, want 5", got)
	}
	if len(c.Nodes(RoleMaster)) != 1 || len(c.Nodes(RoleTxn)) != 1 || len(c.Nodes(RoleClient)) != 1 {
		t.Fatal("expected exactly one master, one txn node, one client")
	}
}

func TestNodesSortedDeterministically(t *testing.T) {
	c := New(nil)
	c.AddNode("b", RoleSlave)
	c.AddNode("a", RoleSlave)
	c.AddNode("c", RoleSlave)
	got := c.Nodes(RoleSlave)
	if got[0].Name != "a" || got[1].Name != "b" || got[2].Name != "c" {
		t.Fatalf("nodes not sorted: %v, %v, %v", got[0].Name, got[1].Name, got[2].Name)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate node")
		}
	}()
	c := New(nil)
	c.AddNode("x", RoleSlave)
	c.AddNode("x", RoleSlave)
}

func TestRPCChargesRoundTrip(t *testing.T) {
	costs := sim.DefaultCosts()
	c := NewDefault(costs)
	ctx := sim.NewCtx()
	c.RPC(ctx, "client-0", "slave-0", 0)
	if got := ctx.Elapsed(); got != costs.RPC {
		t.Fatalf("RPC elapsed = %v, want %v", got, costs.RPC)
	}
	if s := ctx.Snapshot(); s.RPCs != 1 {
		t.Fatalf("RPC count = %d, want 1", s.RPCs)
	}
}

func TestLoopbackIsCheap(t *testing.T) {
	costs := sim.DefaultCosts()
	c := NewDefault(costs)
	remote, local := sim.NewCtx(), sim.NewCtx()
	c.RPC(remote, "client-0", "slave-0", 0)
	c.RPC(local, "slave-0", "slave-0", 0)
	if local.Elapsed() >= remote.Elapsed() {
		t.Fatalf("loopback (%v) should be cheaper than remote (%v)", local.Elapsed(), remote.Elapsed())
	}
}

func TestTransferChargesPerByte(t *testing.T) {
	costs := sim.DefaultCosts()
	c := NewDefault(costs)
	ctx := sim.NewCtx()
	const payload = 1 << 20 // 1 MiB
	c.Transfer(ctx, "slave-0", "slave-1", payload)
	want := costs.PerByte.Mul(payload)
	if got := ctx.Elapsed(); got != want {
		t.Fatalf("transfer elapsed = %v, want %v", got, want)
	}
	if s := ctx.Snapshot(); s.BytesMoved != payload {
		t.Fatalf("bytes moved = %d, want %d", s.BytesMoved, payload)
	}
}

func TestTransferSameNodeFree(t *testing.T) {
	c := NewDefault(nil)
	ctx := sim.NewCtx()
	c.Transfer(ctx, "slave-0", "slave-0", 1<<20)
	if ctx.Elapsed() != 0 {
		t.Fatal("same-node transfer should be free")
	}
}

func TestRPCWithPayloadCostsMoreThanEmpty(t *testing.T) {
	c := NewDefault(nil)
	empty, loaded := sim.NewCtx(), sim.NewCtx()
	c.RPC(empty, "client-0", "slave-0", 0)
	c.RPC(loaded, "client-0", "slave-0", 64*1024)
	if loaded.Elapsed() <= empty.Elapsed() {
		t.Fatal("payload-bearing RPC should cost more than empty RPC")
	}
}
