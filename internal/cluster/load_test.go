package cluster

import (
	"testing"

	"synergy/internal/sim"
)

func TestServerWorkDisabledIsPlainCharge(t *testing.T) {
	c := NewDefault(nil)
	ctx := sim.NewCtx()
	c.ServerWork(ctx, "slave-0", sim.Micros(100))
	c.ServerWork(ctx, "slave-1", sim.Micros(50))
	if got := ctx.Elapsed(); got != 150 {
		t.Fatalf("disabled ServerWork elapsed = %v, want plain 150", got)
	}
	if s := ctx.Snapshot(); s.QueueWaits != 0 || s.QueueWaitTime != 0 {
		t.Fatalf("disabled ServerWork recorded queue waits: %+v", s)
	}
	if got := len(c.NodeLoads()); got != 0 {
		t.Fatalf("disabled model tracked %d nodes, want 0", got)
	}
}

// TestQueueingSerializesOneServer: two simultaneous arrivals at one node run
// FCFS — the second waits out the first's service time — while a third op on
// a different node pays no wait at all.
func TestQueueingSerializesOneServer(t *testing.T) {
	c := NewDefault(nil)
	c.EnableQueueing()
	const w = sim.Micros(100)

	first, second, elsewhere := sim.NewCtx(), sim.NewCtx(), sim.NewCtx()
	c.ServerWork(first, "slave-0", w)
	c.ServerWork(second, "slave-0", w)
	c.ServerWork(elsewhere, "slave-1", w)

	if got := first.Elapsed(); got != w {
		t.Fatalf("first op elapsed = %v, want service time %v", got, w)
	}
	if got := second.Elapsed(); got != 2*w {
		t.Fatalf("second op elapsed = %v, want wait+service %v", got, 2*w)
	}
	if s := second.Snapshot(); s.QueueWaits != 1 || s.QueueWaitTime != w {
		t.Fatalf("second op queue counters = %d/%v, want 1/%v", s.QueueWaits, s.QueueWaitTime, w)
	}
	if got := elsewhere.Elapsed(); got != w {
		t.Fatalf("other-node op elapsed = %v, want no wait (%v)", got, w)
	}
}

// TestAdvanceDrainsBacklog: advancing the virtual clock by the wave makespan
// empties the queue, so the next wave's first arrival is unqueued.
func TestAdvanceDrainsBacklog(t *testing.T) {
	c := NewDefault(nil)
	c.EnableQueueing()
	const w = sim.Micros(100)
	for i := 0; i < 3; i++ {
		c.ServerWork(sim.NewCtx(), "slave-0", w)
	}
	if nl := c.NodeLoads(); nl[0].Backlog != 3*w {
		t.Fatalf("backlog = %v, want %v", nl[0].Backlog, 3*w)
	}
	c.Advance(3 * w)
	if nl := c.NodeLoads(); nl[0].Backlog != 0 {
		t.Fatalf("backlog after Advance = %v, want 0", nl[0].Backlog)
	}
	ctx := sim.NewCtx()
	c.ServerWork(ctx, "slave-0", w)
	if got := ctx.Elapsed(); got != w {
		t.Fatalf("post-drain op elapsed = %v, want unqueued %v", got, w)
	}
}

// TestNodeLoadsAccounting: Busy accumulates service time (never the waits),
// Ops counts operations, and the snapshot is name-sorted.
func TestNodeLoadsAccounting(t *testing.T) {
	c := NewDefault(nil)
	c.EnableQueueing()
	c.ServerWork(sim.NewCtx(), "slave-2", sim.Micros(30))
	c.ServerWork(sim.NewCtx(), "slave-0", sim.Micros(10))
	c.ServerWork(sim.NewCtx(), "slave-0", sim.Micros(20))
	nl := c.NodeLoads()
	if len(nl) != 2 || nl[0].Node != "slave-0" || nl[1].Node != "slave-2" {
		t.Fatalf("NodeLoads order = %+v, want slave-0 then slave-2", nl)
	}
	if nl[0].Busy != 30 || nl[0].Ops != 2 {
		t.Fatalf("slave-0 busy/ops = %v/%d, want 30/2 (service only, no waits)", nl[0].Busy, nl[0].Ops)
	}
	if nl[1].Busy != 30 || nl[1].Ops != 1 {
		t.Fatalf("slave-2 busy/ops = %v/%d, want 30/1", nl[1].Busy, nl[1].Ops)
	}
}

// TestLateArrivalSkipsDrainedQueue: an op whose own elapsed time puts its
// arrival past the node's busy horizon starts immediately — the queue
// drained while the request was travelling.
func TestLateArrivalSkipsDrainedQueue(t *testing.T) {
	c := NewDefault(nil)
	c.EnableQueueing()
	c.ServerWork(sim.NewCtx(), "slave-0", sim.Micros(100))

	late := sim.NewCtx()
	late.Charge(sim.Micros(250)) // arrives at virtual time 250, queue drains at 100
	c.ServerWork(late, "slave-0", sim.Micros(40))
	if got := late.Elapsed(); got != 290 {
		t.Fatalf("late arrival elapsed = %v, want 250+40 with no wait", got)
	}
	if s := late.Snapshot(); s.QueueWaits != 0 {
		t.Fatalf("late arrival recorded a queue wait: %+v", s)
	}
}
