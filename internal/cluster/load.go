package cluster

import (
	"sort"
	"sync"

	"synergy/internal/sim"
)

// LoadModel is the per-server queueing model of the cluster: a virtual-time
// FCFS queue per node. When enabled, server-side work (seeks, scan rows,
// memstore applies, WAL syncs) charged through Cluster.ServerWork pays, on
// top of its service time, the wait behind the node's outstanding backlog —
// which is what makes a hot region server measurably slow and gives a
// balancer something to win.
//
// The model runs in simulated time, not wall-clock time: each node carries a
// busyUntil horizon, an arriving operation's start time is
// max(arrival, busyUntil), and busyUntil advances by the service time. The
// harness owns the clock — it issues a wave of requests (each request's
// arrival is the model's now plus the request's own elapsed time), then
// calls Advance with the wave's makespan so the backlog drains between
// waves. Results are deterministic as long as operations are issued in a
// deterministic order; wave harnesses issue sequentially from one goroutine.
//
// Disabled (the default), ServerWork charges exactly the service time, so
// every experiment that predates the model is byte-identical.
type LoadModel struct {
	mu      sync.Mutex
	enabled bool
	now     sim.Micros
	nodes   map[string]*nodeLoad
}

// nodeLoad is one server's queue state and cumulative service accounting.
type nodeLoad struct {
	busyUntil sim.Micros // virtual time at which the queue drains
	busy      sim.Micros // cumulative service time ever charged
	ops       int64
}

// NodeLoadStat is one server's load snapshot.
type NodeLoadStat struct {
	Node string
	// Busy is the cumulative service time the node has performed.
	Busy sim.Micros
	// Backlog is the outstanding queue (busyUntil - now), zero when drained.
	Backlog sim.Micros
	Ops     int64
}

// EnableQueueing turns the per-server queueing model on. There is
// deliberately no off switch: experiments opt in per deployment, and a
// mid-run disable would strand backlog.
func (c *Cluster) EnableQueueing() {
	c.load.mu.Lock()
	defer c.load.mu.Unlock()
	c.load.enabled = true
	if c.load.nodes == nil {
		c.load.nodes = make(map[string]*nodeLoad)
	}
}

// QueueingEnabled reports whether server work queues.
func (c *Cluster) QueueingEnabled() bool {
	c.load.mu.Lock()
	defer c.load.mu.Unlock()
	return c.load.enabled
}

// ServerWork charges w of server-side work performed on node to ctx. With
// the queueing model enabled the operation additionally waits out the
// node's backlog first — FCFS behind every operation that arrived earlier
// in virtual time — and the wait is recorded on the ctx's queue counters.
func (c *Cluster) ServerWork(ctx *sim.Ctx, node string, w sim.Micros) {
	if w <= 0 {
		return
	}
	c.load.mu.Lock()
	if !c.load.enabled {
		c.load.mu.Unlock()
		ctx.Charge(w)
		return
	}
	nl := c.load.nodes[node]
	if nl == nil {
		nl = &nodeLoad{}
		c.load.nodes[node] = nl
	}
	arrival := c.load.now + ctx.Elapsed()
	start := arrival
	if nl.busyUntil > start {
		start = nl.busyUntil
	}
	wait := start - arrival
	nl.busyUntil = start + w
	nl.busy += w
	nl.ops++
	c.load.mu.Unlock()
	if wait > 0 {
		ctx.Charge(wait)
		ctx.CountQueueWait(wait)
	}
	ctx.Charge(w)
}

// Advance moves the model's virtual clock forward by d — typically a wave
// harness passing the wave's makespan — so queued backlog drains between
// waves instead of compounding forever.
func (c *Cluster) Advance(d sim.Micros) {
	if d <= 0 {
		return
	}
	c.load.mu.Lock()
	defer c.load.mu.Unlock()
	c.load.now += d
}

// Now reports the model's virtual clock.
func (c *Cluster) Now() sim.Micros {
	c.load.mu.Lock()
	defer c.load.mu.Unlock()
	return c.load.now
}

// NodeLoads snapshots every node the model has seen work on, sorted by
// name for determinism.
func (c *Cluster) NodeLoads() []NodeLoadStat {
	c.load.mu.Lock()
	defer c.load.mu.Unlock()
	out := make([]NodeLoadStat, 0, len(c.load.nodes))
	for name, nl := range c.load.nodes {
		backlog := nl.busyUntil - c.load.now
		if backlog < 0 {
			backlog = 0
		}
		out = append(out, NodeLoadStat{Node: name, Busy: nl.busy, Backlog: backlog, Ops: nl.ops})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}
