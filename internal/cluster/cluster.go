// Package cluster models the physical testbed of the paper's evaluation
// (§IX-A): a set of named nodes connected by a uniform-latency network, as
// in a single EC2 placement group. Every layer above it — sdfs, zk, hbase,
// the transaction servers — builds its communication on this package, so it
// is where distributed work turns into simulated time.
//
// A Cluster is a registry of Nodes, each carrying a Role mirroring the
// paper's layout (master, slave, transaction server, client). Communication
// charges the calling request's sim.Ctx: RPC charges a fixed round-trip
// between two nodes, Transfer adds per-byte cost for bulk data movement,
// and local calls (same node) are free, exactly as the testbed's
// co-located daemons would be.
//
// Server-side work optionally queues. EnableQueueing installs a LoadModel
// (load.go) holding one virtual-time FCFS queue per node: work charged
// through ServerWork then pays the wait behind the node's outstanding
// backlog on top of its service time, with the waits recorded in
// sim.Stats.QueueWaits/QueueWaitTime. The model is off by default — every
// experiment predating it charges plain service time, byte-identically —
// and wave harnesses advance its clock explicitly (Advance) so backlog
// drains deterministically rather than by wall clock. Per-node load totals
// feed the hbase region balancer's placement decisions.
package cluster

import (
	"fmt"
	"sort"
	"sync"

	"synergy/internal/sim"
)

// Role describes what a node hosts, mirroring the paper's testbed layout.
type Role string

const (
	RoleMaster Role = "master" // NameNode + HMaster + ZooKeeper + Synergy master
	RoleSlave  Role = "slave"  // DataNode + RegionServer (+ VoltDB daemon)
	RoleTxn    Role = "txn"    // Synergy transaction-layer slave + Tephra server
	RoleClient Role = "client" // workload driver
)

// Node is one machine in the simulated cluster.
type Node struct {
	Name string
	Role Role
}

// Cluster is a set of nodes plus the latency model connecting them.
type Cluster struct {
	mu    sync.RWMutex
	nodes map[string]*Node
	costs *sim.Costs
	// load is the optional per-server queueing model (see load.go);
	// disabled by default so server work charges plain service time.
	load LoadModel
}

// New creates an empty cluster with the given latency calibration.
func New(costs *sim.Costs) *Cluster {
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	return &Cluster{nodes: make(map[string]*Node), costs: costs}
}

// NewDefault builds the eight node topology of §IX-A1: one master node, five
// slaves, one transaction-layer node and one client.
func NewDefault(costs *sim.Costs) *Cluster {
	c := New(costs)
	c.AddNode("master-0", RoleMaster)
	for i := 0; i < 5; i++ {
		c.AddNode(fmt.Sprintf("slave-%d", i), RoleSlave)
	}
	c.AddNode("txn-0", RoleTxn)
	c.AddNode("client-0", RoleClient)
	return c
}

// Costs exposes the latency calibration shared by all layers.
func (c *Cluster) Costs() *sim.Costs { return c.costs }

// AddNode registers a node. Adding a duplicate name is an error the caller
// made; it panics, as a mis-built topology cannot be recovered from.
func (c *Cluster) AddNode(name string, role Role) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.nodes[name]; dup {
		panic(fmt.Sprintf("cluster: duplicate node %q", name))
	}
	n := &Node{Name: name, Role: role}
	c.nodes[name] = n
	return n
}

// Node returns the named node, or nil.
func (c *Cluster) Node(name string) *Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nodes[name]
}

// Nodes returns all nodes with the given role, sorted by name for
// determinism.
func (c *Cluster) Nodes(role Role) []*Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*Node
	for _, n := range c.nodes {
		if n.Role == role {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Size reports the number of nodes.
func (c *Cluster) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.nodes)
}

// RPC charges one request/response round trip carrying payload bytes between
// two nodes. Same-node calls are loopback and charge only a token cost.
func (c *Cluster) RPC(ctx *sim.Ctx, from, to string, payload int) {
	ctx.CountRPC()
	if from == to {
		ctx.Charge(c.costs.RPC / 10)
		return
	}
	ctx.Charge(c.costs.RPC)
	c.Transfer(ctx, from, to, payload)
}

// Transfer charges the bandwidth cost of moving payload bytes between nodes
// without a round trip (streaming within an established connection).
func (c *Cluster) Transfer(ctx *sim.Ctx, from, to string, payload int) {
	if from == to || payload <= 0 {
		return
	}
	ctx.CountBytesMoved(payload)
	ctx.Charge(c.costs.PerByte.Mul(payload))
}
