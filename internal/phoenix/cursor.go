package phoenix

import (
	"synergy/internal/hbase"
	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

// RowCursor is the streaming result of a query: a forward-only iterator over
// projected rows. Next advances to the next row; Row returns the current
// row, valid only until the next Next or Close call (the cursor reuses one
// map). Callers that retain a row must copy it. Close releases the
// underlying region scanner and must always be called, even after Next
// returned false — a caller abandoning a cursor mid-stream would otherwise
// leak pooled scan jobs and chunk buffers.
type RowCursor interface {
	// Columns lists the output column names in projection order.
	Columns() []string
	// Types lists the declared column types, parallel to Columns. For
	// streamed table scans these come from the catalog; the materialized
	// path types by value inspection, which can differ for an all-NULL
	// column (TString there, the declared type here).
	Types() []schema.ColType
	// Next advances to the next row, charging the scan work performed to
	// ctx. It returns false when the result is exhausted or an error
	// occurred (check Err).
	Next(ctx *sim.Ctx) bool
	// Row returns the current row. The map is reused: valid only until
	// the next Next or Close.
	Row() schema.Row
	// Err reports the error that terminated iteration, if any.
	Err() error
	// Close releases the cursor's resources (region scanner, pooled scan
	// chunks). It is idempotent. For transactional cursors wrapped with
	// WithClose it also settles the transaction, so its error must be
	// checked.
	Close(ctx *sim.Ctx) error
}

// RawCursor is implemented by cursors that stream directly off a region
// scanner and can expose the current row's encoded cell bytes without
// decoding. RawValue returns the stored cell encoding (type tag + payload)
// of output column i, or nil when the value is NULL or the column is a
// literal select item. The returned slice is stable — store cell values are
// immutable and never recycled — but reflects the current row only until
// the next Next call. Wire servers use it to encode row packets with zero
// per-row value allocations.
type RawCursor interface {
	RowCursor
	RawValue(i int) []byte
}

// ---------------------------------------------------------------------------
// Streaming cursor: single-binding scan → filter → project → limit, pulled
// row by row off the region scanner.

type streamCursor struct {
	stream hbase.RowStream
	cols   []string
	quals  []string // source qualifier per output column; "" = literal item
	types  []schema.ColType
	raw    [][]byte   // current row's encoded values, parallel to cols
	row    schema.Row // reused decoded row, filled lazily by Row
	rowOK  bool
	limit  int // 0 = unlimited (defensive; the scan spec also carries it)
	n      int
	done   bool
	closed bool
}

func (c *streamCursor) Columns() []string       { return c.cols }
func (c *streamCursor) Types() []schema.ColType { return c.types }
func (c *streamCursor) Err() error              { return nil }

func (c *streamCursor) Next(ctx *sim.Ctx) bool {
	if c.done || c.closed {
		return false
	}
	if c.limit > 0 && c.n >= c.limit {
		c.done = true
		return false
	}
	r, ok := c.stream.Next(ctx)
	if !ok {
		c.done = true
		return false
	}
	c.n++
	// Copy out only the projected cell values (slice headers; the bytes
	// are store-owned and immutable). The Cells window itself is invalid
	// after the stream's next Next, so nothing else is retained.
	for i, q := range c.quals {
		if q == "" {
			c.raw[i] = nil
			continue
		}
		c.raw[i] = r.Cells.Get(q)
	}
	c.rowOK = false
	return true
}

func (c *streamCursor) Row() schema.Row {
	if c.rowOK {
		return c.row
	}
	if c.row == nil {
		c.row = make(schema.Row, len(c.cols))
	}
	for k := range c.row {
		delete(c.row, k)
	}
	for i, col := range c.cols {
		if c.quals[i] == "" {
			// Literal select items project no source column; the key
			// stays absent, matching the materialized buildResult.
			continue
		}
		c.row[col] = DecodeValue(c.raw[i])
	}
	c.rowOK = true
	return c.row
}

func (c *streamCursor) RawValue(i int) []byte { return c.raw[i] }

func (c *streamCursor) Close(ctx *sim.Ctx) error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.stream.Close(ctx)
	return nil
}

// ---------------------------------------------------------------------------
// Materialized cursor: blocking shapes (joins, aggregates, ORDER BY) run the
// buffering executor and drain through the same API.

type materializedCursor struct {
	rs     *ResultSet
	types  []schema.ColType
	pos    int
	closed bool
}

func newMaterializedCursor(rs *ResultSet) *materializedCursor {
	return &materializedCursor{rs: rs}
}

func (c *materializedCursor) Columns() []string { return c.rs.Columns }

func (c *materializedCursor) Types() []schema.ColType {
	if c.types == nil {
		c.types = c.rs.ColumnTypes()
	}
	return c.types
}

func (c *materializedCursor) Next(ctx *sim.Ctx) bool {
	if c.closed || c.pos >= len(c.rs.Rows) {
		return false
	}
	c.pos++
	return true
}

func (c *materializedCursor) Row() schema.Row          { return c.rs.Rows[c.pos-1] }
func (c *materializedCursor) Err() error               { return nil }
func (c *materializedCursor) Close(ctx *sim.Ctx) error { c.closed = true; return nil }

// ---------------------------------------------------------------------------
// Close hooks: transaction layers wrap cursors so Close settles the
// transaction (commit on clean drain, abort on error).

type closeHook struct {
	RowCursor
	onClose func(ctx *sim.Ctx, cur RowCursor) error
	closed  bool
}

func (c *closeHook) Unwrap() RowCursor { return c.RowCursor }

func (c *closeHook) Close(ctx *sim.Ctx) error {
	if c.closed {
		return nil
	}
	c.closed = true
	err := c.RowCursor.Close(ctx)
	if herr := c.onClose(ctx, c.RowCursor); err == nil {
		err = herr
	}
	return err
}

type rawCloseHook struct {
	closeHook
	raw RawCursor
}

func (c *rawCloseHook) RawValue(i int) []byte { return c.raw.RawValue(i) }

// WithClose returns cur with onClose running exactly once after the inner
// cursor's Close. The wrapper preserves RawCursor-ness, so the wire fast
// path survives transactional wrapping.
func WithClose(cur RowCursor, onClose func(ctx *sim.Ctx, cur RowCursor) error) RowCursor {
	h := closeHook{RowCursor: cur, onClose: onClose}
	if rc, ok := cur.(RawCursor); ok {
		return &rawCloseHook{closeHook: h, raw: rc}
	}
	return &h
}

// DrainCursor materializes a cursor into a ResultSet, closing it. It is the
// bridge that keeps the materialized Query API a thin wrapper over the
// streaming path: cursors that already hold a full ResultSet are returned
// as-is, streamed rows are copied out (the cursor's row map is reused).
func DrainCursor(ctx *sim.Ctx, cur RowCursor) (*ResultSet, error) {
	inner := cur
	for {
		u, ok := inner.(interface{ Unwrap() RowCursor })
		if !ok {
			break
		}
		inner = u.Unwrap()
	}
	if m, ok := inner.(*materializedCursor); ok {
		if err := cur.Close(ctx); err != nil {
			return nil, err
		}
		return m.rs, nil
	}
	cols := cur.Columns()
	rows := make([]schema.Row, 0)
	for cur.Next(ctx) {
		src := cur.Row()
		row := make(schema.Row, len(src))
		for k, v := range src {
			row[k] = v
		}
		rows = append(rows, row)
	}
	if err := cur.Err(); err != nil {
		cur.Close(ctx)
		return nil, err
	}
	if err := cur.Close(ctx); err != nil {
		return nil, err
	}
	return &ResultSet{Columns: cols, Rows: rows}, nil
}

// ---------------------------------------------------------------------------
// Stream planning

// tryStream opens a streaming cursor when the statement is a non-blocking
// single-binding shape: scan → filter → project → limit with no joins,
// aggregates or ORDER BY. ok=false means "not streamable, run the
// materialized executor" (including shapes buildResult would reject — the
// fallback reproduces the error); a non-nil error means the stream was
// eligible but opening it failed.
func (q *query) tryStream(ctx *sim.Ctx) (RowCursor, bool, error) {
	sel := q.sel
	if len(q.bindings) != 1 || len(q.joins) > 0 || len(q.residual) > 0 {
		return nil, false, nil
	}
	b := q.bindings[0]
	if b.info == nil {
		return nil, false, nil // derived tables are pre-materialized
	}
	if sel.GroupBy != nil || len(sel.OrderBy) > 0 || q.hasAggregates() {
		return nil, false, nil
	}
	if q.opts.DirtyCheck && b.info.IsView {
		// The §VIII-C dirty-restart loop re-scans from the top; once rows
		// have been handed out a cursor cannot restart.
		return nil, false, nil
	}

	// Resolve the projection. Single binding means every unambiguous
	// output name is the bare column name, exactly like buildResult.
	var cols, quals []string
	var types []schema.ColType
	if sel.Star {
		for _, c := range b.cols {
			t, _ := b.info.Col(c)
			cols = append(cols, c)
			quals = append(quals, c)
			types = append(types, t)
		}
	} else {
		for _, it := range sel.Items {
			switch x := it.Expr.(type) {
			case sqlparser.ColumnRef:
				if _, err := q.resolveColumn(x); err != nil {
					return nil, false, nil
				}
				name := it.Alias
				if name == "" {
					name = x.Column
				}
				t, _ := b.info.Col(x.Column)
				cols = append(cols, name)
				quals = append(quals, x.Column)
				types = append(types, t)
			case sqlparser.Literal:
				cols = append(cols, it.Expr.String())
				quals = append(quals, "")
				types = append(types, schema.TString)
			default:
				return nil, false, nil
			}
		}
	}

	// Build the scan spec exactly as the materialized scanBinding does,
	// plus limit pushdown: the scanner stops examining rows once the
	// post-filter row budget is met.
	plan := q.chooseAccess(b, nil)
	spec := hbase.ScanSpec{Read: q.opts.Read}
	tableName := b.info.Name
	switch plan.kind {
	case accessPKPrefix:
		vals := make([]schema.Value, 0, len(plan.eqCols))
		for _, c := range plan.eqCols {
			v, ok := q.localEqValue(b, c)
			if !ok {
				return nil, false, nil
			}
			vals = append(vals, v)
		}
		if len(plan.eqCols) == len(b.info.Key) {
			spec.Start = schema.EncodeKey(vals...)
			spec.Stop = spec.Start + "\x00"
			spec.Sequential = true // single-row point lookup
		} else {
			spec.Prefix = schema.KeyPrefix(vals...)
		}
	case accessIndexPrefix:
		tableName = plan.index.Name
		vals := make([]schema.Value, 0, len(plan.eqCols))
		for _, c := range plan.eqCols {
			v, ok := q.localEqValue(b, c)
			if !ok {
				return nil, false, nil
			}
			vals = append(vals, v)
		}
		spec.Prefix = schema.KeyPrefix(vals...)
		if len(plan.eqCols) == len(plan.index.On)+len(b.info.Key) {
			spec.Prefix = ""
			spec.Start = schema.EncodeKey(vals...)
			spec.Stop = spec.Start + "\x00"
			spec.Sequential = true // single-row point lookup
		}
	}
	if sel.Limit > 0 {
		spec.Limit = sel.Limit
	}

	// No local predicates → no filter, matching scanBinding: the region
	// skips the per-row decode an accept-all closure would pay.
	if local := q.local[b.name]; len(local) > 0 {
		spec.Filter = func(r hbase.RowResult) bool {
			row := CellsToRow(r)
			for _, p := range local {
				if !p.evalLocal(row) {
					return false
				}
			}
			return true
		}
	}

	if b.info.IsView && q.opts.OnViewScan != nil {
		if err := q.opts.OnViewScan(ctx, b.info.Name); err != nil {
			return nil, true, err
		}
	}
	sc, err := q.openScan(ctx, tableName, spec)
	if err != nil {
		return nil, true, err
	}
	return &streamCursor{
		stream: sc,
		cols:   cols,
		quals:  quals,
		types:  types,
		raw:    make([][]byte, len(cols)),
		limit:  sel.Limit,
	}, true, nil
}

// QueryStream plans and executes a SELECT, returning its rows as a cursor.
// Non-blocking single-table shapes stream directly off the region scanner —
// peak memory is one scan chunk, not the result — while blocking shapes
// (joins, GROUP BY/aggregates, ORDER BY) materialize internally and drain
// through the same API. The caller must Close the cursor.
func (e *Engine) QueryStream(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) (RowCursor, error) {
	return e.QueryStreamOpts(ctx, sel, params, QueryOpts{})
}

// QueryStreamOpts is QueryStream with explicit execution options.
func (e *Engine) QueryStreamOpts(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value, opts QueryOpts) (RowCursor, error) {
	q, err := e.analyzeStmt(ctx, sel, params, opts)
	if err != nil {
		return nil, err
	}
	if cur, ok, err := q.tryStream(ctx); err != nil {
		return nil, err
	} else if ok {
		return cur, nil
	}
	tuples, err := q.run(ctx)
	if err != nil {
		return nil, err
	}
	rs, err := q.project(ctx, tuples)
	if err != nil {
		return nil, err
	}
	return newMaterializedCursor(rs), nil
}
