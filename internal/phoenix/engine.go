package phoenix

import (
	"fmt"

	"synergy/internal/hbase"
	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

// Engine executes SQL against the catalog's store, as the client-embedded
// Phoenix JDBC driver does: it "transforms the SQL query into a series of
// HBase scans and coordinates the execution of scans" (§II-D). Join,
// aggregation and sort work happens client-side and is charged to the
// request context via the cost model.
type Engine struct {
	cat    *Catalog
	client *hbase.Client
	costs  *sim.Costs
}

// NewEngine returns an engine with a warm store client (long-running
// application servers hold warm connections; the cold-client path is
// exercised explicitly by the Figure 11 experiment).
func NewEngine(cat *Catalog) *Engine {
	return &Engine{cat: cat, client: cat.Store().NewWarmClient(), costs: cat.Store().Costs()}
}

// NewEngineWithClient returns an engine bound to a specific (possibly cold)
// client.
func NewEngineWithClient(cat *Catalog, client *hbase.Client) *Engine {
	return &Engine{cat: cat, client: client, costs: cat.Store().Costs()}
}

// Client exposes the engine's store client.
func (e *Engine) Client() *hbase.Client { return e.client }

// Catalog exposes the engine's catalog.
func (e *Engine) Catalog() *Catalog { return e.cat }

// QueryOpts control read execution.
type QueryOpts struct {
	// Read applies MVCC visibility filters to every scan and get.
	Read hbase.ReadOpts
	// DirtyCheck enables the Synergy read-committed protocol (§VIII-C):
	// scans over views re-start when they observe a dirty-marked row.
	DirtyCheck bool
	// MaxRestarts bounds dirty-read restarts (0 = default 50).
	MaxRestarts int
	// View, when set, overlays a transaction's buffered writes on every
	// scan and point lookup, so queries inside a multi-statement
	// transaction read their own uncommitted rows.
	View *hbase.ReadView
	// Reader, when set, serves every scan and point lookup instead of View
	// or the store client. OCC transactions thread their read-set-tracking
	// reader (wrapping the overlay view) through it, so the openScan choke
	// point records every range the query touched.
	Reader hbase.Reader
	// OnViewScan, when set, runs before a materialized view's rows are
	// fetched (once per view access — scan or index-nested-loop probe
	// phase). Synergy threads its asynchronous-maintenance freshness gate
	// through it: observing staleness in ReadStale mode, or erroring if a
	// view that should have been waited on is still behind.
	OnViewScan func(ctx *sim.Ctx, view string) error
}

// ResultSet is the client-visible output of a query.
type ResultSet struct {
	Columns []string
	Rows    []schema.Row
}

// ColumnTypes infers the result's column types from its values: the first
// non-NULL value of each column decides (int64 → TInt, float64 → TFloat,
// string → TString); an all-NULL column defaults to TString. The executor
// does not thread declared types through projection — aggregates and
// rewrites synthesize columns — so wire servers type result sets by
// inspection.
func (rs *ResultSet) ColumnTypes() []schema.ColType {
	out := make([]schema.ColType, len(rs.Columns))
	for i, col := range rs.Columns {
		out[i] = schema.TString
		for _, r := range rs.Rows {
			switch r[col].(type) {
			case int64:
				out[i] = schema.TInt
			case float64:
				out[i] = schema.TFloat
			case string:
				out[i] = schema.TString
			default:
				continue
			}
			break
		}
	}
	return out
}

// tuple is the executor's internal row representation, keyed
// "binding.column".
type tuple map[string]schema.Value

// Query plans and executes a SELECT.
func (e *Engine) Query(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) (*ResultSet, error) {
	return e.QueryOpts(ctx, sel, params, QueryOpts{})
}

// QueryOpts is Query with explicit execution options. It is a thin wrapper
// over the streaming path: QueryStreamOpts plans the statement, and the
// cursor is drained into a ResultSet (a no-op for blocking shapes, which
// materialize anyway).
func (e *Engine) QueryOpts(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value, opts QueryOpts) (*ResultSet, error) {
	cur, err := e.QueryStreamOpts(ctx, sel, params, opts)
	if err != nil {
		return nil, err
	}
	return DrainCursor(ctx, cur)
}

// ---------------------------------------------------------------------------
// Analysis

type binding struct {
	name    string
	info    *TableInfo // nil for derived tables
	derived []tuple    // materialized derived-table rows (plain col keys)
	cols    []string   // column names this binding exposes
}

func (b *binding) hasColumn(col string) bool {
	if b.info != nil {
		return b.info.HasColumn(col)
	}
	for _, c := range b.cols {
		if c == col {
			return true
		}
	}
	return false
}

// boundPred is a predicate with column refs resolved to bindings and
// params/literals resolved to values.
type boundPred struct {
	lBind, lCol string // left column (always set)
	op          sqlparser.CompareOp
	rBind, rCol string       // right column when join
	value       schema.Value // right value when not a join
	isJoin      bool
}

func (p boundPred) String() string {
	if p.isJoin {
		return fmt.Sprintf("%s.%s %s %s.%s", p.lBind, p.lCol, p.op, p.rBind, p.rCol)
	}
	return fmt.Sprintf("%s.%s %s %v", p.lBind, p.lCol, p.op, p.value)
}

type query struct {
	eng      *Engine
	sel      *sqlparser.SelectStmt
	params   []schema.Value
	opts     QueryOpts
	bindings []*binding
	byName   map[string]*binding
	local    map[string][]boundPred // binding -> single-binding predicates
	joins    []boundPred            // cross-binding equi-joins
	residual []boundPred            // everything else cross-binding
}

// analyzeStmt resolves FROM bindings (executing derived tables against the
// caller's ctx so their cost lands on the request) and classifies WHERE
// predicates into per-binding filters, equi-joins and residual conditions.
func (e *Engine) analyzeStmt(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value, opts QueryOpts) (*query, error) {
	q := &query{
		eng:    e,
		sel:    sel,
		params: params,
		opts:   opts,
		byName: map[string]*binding{},
		local:  map[string][]boundPred{},
	}
	for _, ref := range sel.From {
		b := &binding{name: ref.Binding()}
		if ref.Sub != nil {
			rs, err := e.QueryOpts(ctx, ref.Sub, params, opts)
			if err != nil {
				return nil, fmt.Errorf("phoenix: derived table %s: %w", b.name, err)
			}
			b.cols = rs.Columns
			b.derived = make([]tuple, len(rs.Rows))
			for i, row := range rs.Rows {
				t := make(tuple, len(row))
				for k, v := range row {
					t[b.name+"."+k] = v
				}
				b.derived[i] = t
			}
		} else {
			info, err := e.cat.Table(ref.Name)
			if err != nil {
				return nil, err
			}
			b.info = info
			b.cols = info.ColumnNames()
		}
		if _, dup := q.byName[b.name]; dup {
			return nil, fmt.Errorf("phoenix: duplicate binding %q", b.name)
		}
		q.bindings = append(q.bindings, b)
		q.byName[b.name] = b
	}
	for _, pred := range sel.Where {
		if err := q.bindPredicate(pred); err != nil {
			return nil, err
		}
	}
	return q, nil
}

// resolveColumn finds the binding that owns a column reference.
func (q *query) resolveColumn(c sqlparser.ColumnRef) (*binding, error) {
	if c.Table != "" {
		b := q.byName[c.Table]
		if b == nil {
			return nil, fmt.Errorf("%w: unknown table or alias %q", ErrUnknownTable, c.Table)
		}
		if !b.hasColumn(c.Column) {
			return nil, fmt.Errorf("%w: %s.%s", ErrUnknownColumn, c.Table, c.Column)
		}
		return b, nil
	}
	var owner *binding
	for _, b := range q.bindings {
		if b.hasColumn(c.Column) {
			if owner != nil {
				return nil, fmt.Errorf("%w: %q is ambiguous", ErrUnknownColumn, c.Column)
			}
			owner = b
		}
	}
	if owner == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownColumn, c.Column)
	}
	return owner, nil
}

func (q *query) evalOperand(e sqlparser.Expr) (schema.Value, error) {
	switch x := e.(type) {
	case sqlparser.Literal:
		return x.Value, nil
	case sqlparser.Param:
		if x.Index >= len(q.params) {
			return nil, fmt.Errorf("phoenix: missing parameter %d", x.Index)
		}
		return q.params[x.Index], nil
	default:
		return nil, fmt.Errorf("phoenix: unsupported operand %T", e)
	}
}

func (q *query) bindPredicate(p sqlparser.Predicate) error {
	lcol, lIsCol := p.Left.(sqlparser.ColumnRef)
	rcol, rIsCol := p.Right.(sqlparser.ColumnRef)
	switch {
	case lIsCol && rIsCol:
		lb, err := q.resolveColumn(lcol)
		if err != nil {
			return err
		}
		rb, err := q.resolveColumn(rcol)
		if err != nil {
			return err
		}
		bp := boundPred{
			lBind: lb.name, lCol: lcol.Column, op: p.Op,
			rBind: rb.name, rCol: rcol.Column, isJoin: true,
		}
		if lb == rb {
			// Same-binding column comparison: a local filter.
			q.local[lb.name] = append(q.local[lb.name], bp)
			return nil
		}
		if p.Op == sqlparser.OpEq {
			q.joins = append(q.joins, bp)
		} else {
			q.residual = append(q.residual, bp)
		}
		return nil
	case lIsCol:
		lb, err := q.resolveColumn(lcol)
		if err != nil {
			return err
		}
		v, err := q.evalOperand(p.Right)
		if err != nil {
			return err
		}
		q.local[lb.name] = append(q.local[lb.name], boundPred{lBind: lb.name, lCol: lcol.Column, op: p.Op, value: v})
		return nil
	case rIsCol:
		rb, err := q.resolveColumn(rcol)
		if err != nil {
			return err
		}
		v, err := q.evalOperand(p.Left)
		if err != nil {
			return err
		}
		q.local[rb.name] = append(q.local[rb.name], boundPred{lBind: rb.name, lCol: rcol.Column, op: flipOp(p.Op), value: v})
		return nil
	default:
		return fmt.Errorf("phoenix: predicate %s compares two constants", p)
	}
}

func flipOp(op sqlparser.CompareOp) sqlparser.CompareOp {
	switch op {
	case sqlparser.OpLt:
		return sqlparser.OpGt
	case sqlparser.OpLe:
		return sqlparser.OpGe
	case sqlparser.OpGt:
		return sqlparser.OpLt
	case sqlparser.OpGe:
		return sqlparser.OpLe
	default:
		return op
	}
}

func compareOK(cmp int, op sqlparser.CompareOp) bool {
	switch op {
	case sqlparser.OpEq:
		return cmp == 0
	case sqlparser.OpNe:
		return cmp != 0
	case sqlparser.OpLt:
		return cmp < 0
	case sqlparser.OpLe:
		return cmp <= 0
	case sqlparser.OpGt:
		return cmp > 0
	case sqlparser.OpGe:
		return cmp >= 0
	default:
		return false
	}
}

func (p boundPred) evalLocal(row schema.Row) bool {
	if p.isJoin { // same-binding column comparison
		return compareOK(schema.CompareValues(row[p.lCol], row[p.rCol]), p.op)
	}
	v, ok := row[p.lCol]
	if !ok || v == nil {
		return false
	}
	return compareOK(schema.CompareValues(v, p.value), p.op)
}

func (p boundPred) evalTuple(t tuple) bool {
	l := t[p.lBind+"."+p.lCol]
	if p.isJoin {
		return compareOK(schema.CompareValues(l, t[p.rBind+"."+p.rCol]), p.op)
	}
	return compareOK(schema.CompareValues(l, p.value), p.op)
}
