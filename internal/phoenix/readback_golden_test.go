package phoenix

import (
	"fmt"
	"testing"

	"synergy/internal/cluster"
	"synergy/internal/hbase"
	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

// TestSQLReadBackGolden is the SQL leg of the map-vs-slice parity suite:
// typed values of every encodable kind go in through DML and must come
// back byte- and type-identical through each access path the slice
// representation now feeds — full scan, PK point lookup, index prefix and
// the read-before-write of UPDATE — against hand-written golden rows.
func TestSQLReadBackGolden(t *testing.T) {
	hc := hbase.NewHCluster(cluster.NewDefault(nil), nil, nil)
	cat := NewCatalog(hc)
	rel := &schema.Relation{
		Name: "Item",
		Columns: []schema.Column{
			{Name: "i_id", Type: schema.TInt},
			{Name: "i_title", Type: schema.TString},
			{Name: "i_cost", Type: schema.TFloat},
			{Name: "i_stock", Type: schema.TInt},
		},
		PK: []string{"i_id"},
	}
	if _, err := cat.RegisterRelation(rel, hbase.TableSpec{}); err != nil {
		t.Fatal(err)
	}
	if err := cat.RegisterIndex("Item", IndexInfo{Name: "ix_item_title", On: []string{"i_title"}}, hbase.TableSpec{}); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(cat)
	ctx := sim.NewCtx()

	golden := []schema.Row{
		{"i_id": int64(1), "i_title": "alpha", "i_cost": 1.5, "i_stock": int64(7)},
		{"i_id": int64(2), "i_title": "beta", "i_cost": -0.25, "i_stock": int64(0)},
		{"i_id": int64(3), "i_title": "", "i_cost": 1e9, "i_stock": int64(-4)},
		{"i_id": int64(4), "i_title": "delta", "i_stock": int64(2)}, // NULL cost
	}
	info, _ := cat.Table("Item")
	for _, row := range golden {
		if err := eng.PutRow(ctx, info, row, WriteOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	// Exercise store files + memstore merge, not just memstore reads.
	if err := hc.FlushTable("Item"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Exec(ctx, sqlparser.MustParse("UPDATE Item SET i_stock = ? WHERE i_id = ?"),
		[]schema.Value{int64(99), int64(2)}, WriteOpts{}); err != nil {
		t.Fatal(err)
	}
	golden[1]["i_stock"] = int64(99)

	requireRow := func(where string, got schema.Row, want schema.Row) {
		t.Helper()
		for col := range want {
			if !schema.ValuesEqual(got[col], want[col]) {
				t.Fatalf("%s: %s = %#v, golden %#v", where, col, got[col], want[col])
			}
		}
	}

	// Full scan, ordered by key.
	sel := sqlparser.MustParse("SELECT * FROM Item as i ORDER BY i.i_id").(*sqlparser.SelectStmt)
	rs, err := eng.Query(ctx, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != len(golden) {
		t.Fatalf("scan returned %d rows, want %d", len(rs.Rows), len(golden))
	}
	for i, want := range golden {
		requireRow(fmt.Sprintf("scan row %d", i), rs.Rows[i], want)
		if v, ok := rs.Rows[i]["i_cost"]; i == 3 && (ok && v != nil) {
			t.Fatalf("NULL column came back as %#v", v)
		}
	}

	// PK point lookups.
	point := sqlparser.MustParse("SELECT * FROM Item as i WHERE i.i_id = ?").(*sqlparser.SelectStmt)
	for _, want := range golden {
		rs, err := eng.Query(ctx, point, []schema.Value{want["i_id"]})
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.Rows) != 1 {
			t.Fatalf("point lookup i_id=%v returned %d rows", want["i_id"], len(rs.Rows))
		}
		requireRow(fmt.Sprintf("point %v", want["i_id"]), rs.Rows[0], want)
	}

	// Index-prefix path.
	byTitle := sqlparser.MustParse("SELECT * FROM Item as i WHERE i.i_title = ?").(*sqlparser.SelectStmt)
	rs, err = eng.Query(ctx, byTitle, []schema.Value{"beta"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("index lookup returned %d rows", len(rs.Rows))
	}
	requireRow("index beta", rs.Rows[0], golden[1])
}
