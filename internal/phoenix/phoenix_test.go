package phoenix

import (
	"errors"
	"fmt"
	"testing"

	"synergy/internal/cluster"
	"synergy/internal/hbase"
	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

// testDB builds a small Customer/Orders/Order_line database, mirroring the
// micro-benchmark schema of Figure 8.
func testDB(t *testing.T) (*Engine, *sim.Ctx) {
	t.Helper()
	hc := hbase.NewHCluster(cluster.NewDefault(nil), nil, nil)
	cat := NewCatalog(hc)

	customer := &schema.Relation{
		Name: "Customer",
		Columns: []schema.Column{
			{Name: "c_id", Type: schema.TInt},
			{Name: "c_uname", Type: schema.TString},
			{Name: "c_bal", Type: schema.TFloat},
		},
		PK: []string{"c_id"},
	}
	orders := &schema.Relation{
		Name: "Orders",
		Columns: []schema.Column{
			{Name: "o_id", Type: schema.TInt},
			{Name: "o_c_id", Type: schema.TInt},
			{Name: "o_total", Type: schema.TFloat},
			{Name: "o_date", Type: schema.TInt},
		},
		PK:  []string{"o_id"},
		FKs: []schema.ForeignKey{{Cols: []string{"o_c_id"}, RefTable: "Customer"}},
	}
	orderLine := &schema.Relation{
		Name: "Order_line",
		Columns: []schema.Column{
			{Name: "ol_o_id", Type: schema.TInt},
			{Name: "ol_id", Type: schema.TInt},
			{Name: "ol_qty", Type: schema.TInt},
		},
		PK:  []string{"ol_o_id", "ol_id"},
		FKs: []schema.ForeignKey{{Cols: []string{"ol_o_id"}, RefTable: "Orders"}},
	}

	for _, r := range []*schema.Relation{customer, orders, orderLine} {
		if _, err := cat.RegisterRelation(r, hbase.TableSpec{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.RegisterIndex("Customer", IndexInfo{Name: "ix_customer_uname", On: []string{"c_uname"}}, hbase.TableSpec{}); err != nil {
		t.Fatal(err)
	}
	if err := cat.RegisterIndex("Orders", IndexInfo{Name: "ix_orders_cid", On: []string{"o_c_id"}}, hbase.TableSpec{}); err != nil {
		t.Fatal(err)
	}

	eng := NewEngine(cat)
	ctx := sim.NewCtx()

	// 10 customers, 3 orders each, 2 lines per order.
	oid := int64(0)
	for c := int64(1); c <= 10; c++ {
		row := schema.Row{"c_id": c, "c_uname": fmt.Sprintf("user%02d", c), "c_bal": float64(c) * 10}
		ct, _ := cat.Table("Customer")
		if err := eng.PutRow(ctx, ct, row, WriteOpts{}); err != nil {
			t.Fatal(err)
		}
		for o := 0; o < 3; o++ {
			oid++
			ot, _ := cat.Table("Orders")
			orow := schema.Row{"o_id": oid, "o_c_id": c, "o_total": float64(oid), "o_date": int64(1000 + oid)}
			if err := eng.PutRow(ctx, ot, orow, WriteOpts{}); err != nil {
				t.Fatal(err)
			}
			lt, _ := cat.Table("Order_line")
			for l := int64(1); l <= 2; l++ {
				lrow := schema.Row{"ol_o_id": oid, "ol_id": l, "ol_qty": l * 5}
				if err := eng.PutRow(ctx, lt, lrow, WriteOpts{}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return eng, sim.NewCtx()
}

func runQuery(t *testing.T, e *Engine, ctx *sim.Ctx, sql string, params ...schema.Value) *ResultSet {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	rs, err := e.Query(ctx, sel, params)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return rs
}

func TestPointSelectByPK(t *testing.T) {
	e, ctx := testDB(t)
	rs := runQuery(t, e, ctx, "SELECT * FROM Customer WHERE c_id = ?", int64(3))
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rs.Rows))
	}
	if rs.Rows[0]["c_uname"] != "user03" {
		t.Fatalf("row = %v", rs.Rows[0])
	}
}

func TestSelectByIndex(t *testing.T) {
	e, ctx := testDB(t)
	rs := runQuery(t, e, ctx, "SELECT c_id, c_bal FROM Customer WHERE c_uname = ?", "user07")
	if len(rs.Rows) != 1 || rs.Rows[0]["c_id"].(int64) != 7 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	if len(rs.Columns) != 2 {
		t.Fatalf("columns = %v", rs.Columns)
	}
}

func TestFullScanWithFilter(t *testing.T) {
	e, ctx := testDB(t)
	rs := runQuery(t, e, ctx, "SELECT * FROM Customer WHERE c_bal > 80.0")
	if len(rs.Rows) != 2 { // customers 9, 10
		t.Fatalf("rows = %d, want 2", len(rs.Rows))
	}
}

func TestPKPrefixScan(t *testing.T) {
	e, ctx := testDB(t)
	// ol_o_id is the leading PK column of Order_line.
	rs := runQuery(t, e, ctx, "SELECT * FROM Order_line WHERE ol_o_id = ?", int64(5))
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rs.Rows))
	}
}

func TestTwoWayJoin(t *testing.T) {
	e, ctx := testDB(t)
	rs := runQuery(t, e, ctx,
		"SELECT * FROM Customer c, Orders o WHERE c.c_id = o.o_c_id AND c.c_id = ?", int64(4))
	if len(rs.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rs.Rows))
	}
	for _, r := range rs.Rows {
		if r["o_c_id"].(int64) != 4 {
			t.Fatalf("join produced wrong row: %v", r)
		}
	}
}

func TestTwoWayJoinFull(t *testing.T) {
	e, ctx := testDB(t)
	rs := runQuery(t, e, ctx, "SELECT * FROM Customer c, Orders o WHERE c.c_id = o.o_c_id")
	if len(rs.Rows) != 30 {
		t.Fatalf("rows = %d, want 30", len(rs.Rows))
	}
}

func TestThreeWayJoin(t *testing.T) {
	e, ctx := testDB(t)
	rs := runQuery(t, e, ctx, `SELECT * FROM Customer c, Orders o, Order_line ol
		WHERE c.c_id = o.o_c_id AND o.o_id = ol.ol_o_id`)
	if len(rs.Rows) != 60 {
		t.Fatalf("rows = %d, want 60", len(rs.Rows))
	}
	// Every output row must satisfy both join conditions.
	for _, r := range rs.Rows {
		if r["c_id"] != r["o_c_id"] || r["o_id"] != r["ol_o_id"] {
			t.Fatalf("join condition violated: %v", r)
		}
	}
}

func TestSelfJoin(t *testing.T) {
	e, ctx := testDB(t)
	// Orders of the same customer as order 1 (including itself).
	rs := runQuery(t, e, ctx, `SELECT b.o_id FROM Orders a, Orders b
		WHERE a.o_c_id = b.o_c_id AND a.o_id = ?`, int64(1))
	if len(rs.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rs.Rows))
	}
}

func TestOrderByDescLimit(t *testing.T) {
	e, ctx := testDB(t)
	rs := runQuery(t, e, ctx, "SELECT o_id FROM Orders ORDER BY o_date DESC LIMIT 5")
	if len(rs.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rs.Rows))
	}
	if rs.Rows[0]["o_id"].(int64) != 30 || rs.Rows[4]["o_id"].(int64) != 26 {
		t.Fatalf("ordering wrong: %v", rs.Rows)
	}
}

func TestOrderByAscMultiKey(t *testing.T) {
	e, ctx := testDB(t)
	rs := runQuery(t, e, ctx, "SELECT ol_o_id, ol_id FROM Order_line ORDER BY ol_id DESC, ol_o_id ASC LIMIT 3")
	r := rs.Rows
	if r[0]["ol_id"].(int64) != 2 || r[0]["ol_o_id"].(int64) != 1 || r[2]["ol_o_id"].(int64) != 3 {
		t.Fatalf("rows = %v", r)
	}
}

func TestGroupByAggregates(t *testing.T) {
	e, ctx := testDB(t)
	rs := runQuery(t, e, ctx, `SELECT o_c_id, COUNT(*) AS n, SUM(o_total) AS tot
		FROM Orders GROUP BY o_c_id ORDER BY o_c_id`)
	if len(rs.Rows) != 10 {
		t.Fatalf("groups = %d, want 10", len(rs.Rows))
	}
	first := rs.Rows[0]
	if first["n"].(int64) != 3 {
		t.Fatalf("count = %v", first["n"])
	}
	if first["tot"].(int64) != 6 { // orders 1+2+3
		t.Fatalf("sum = %v", first["tot"])
	}
}

func TestAggregatesWithoutGroupBy(t *testing.T) {
	e, ctx := testDB(t)
	rs := runQuery(t, e, ctx, "SELECT COUNT(*) AS n, MIN(o_total) AS lo, MAX(o_total) AS hi, AVG(o_total) AS av FROM Orders")
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rs.Rows))
	}
	r := rs.Rows[0]
	if r["n"].(int64) != 30 || r["lo"].(float64) != 1 || r["hi"].(float64) != 30 {
		t.Fatalf("aggregates = %v", r)
	}
	if av := r["av"].(float64); av < 15.49 || av > 15.51 {
		t.Fatalf("avg = %v, want 15.5", av)
	}
}

func TestDerivedTableJoin(t *testing.T) {
	e, ctx := testDB(t)
	// The Q10/Q11 pattern: join against the most recent orders.
	rs := runQuery(t, e, ctx, `SELECT * FROM Order_line ol,
		(SELECT o_id FROM Orders ORDER BY o_date DESC LIMIT 3) recent
		WHERE ol.ol_o_id = recent.o_id`)
	if len(rs.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rs.Rows))
	}
	for _, r := range rs.Rows {
		if r["ol_o_id"].(int64) < 28 {
			t.Fatalf("joined non-recent order: %v", r)
		}
	}
}

func TestResidualInequalityJoin(t *testing.T) {
	e, ctx := testDB(t)
	// Lines in order 1 pairing distinct line ids (Q11 shape).
	rs := runQuery(t, e, ctx, `SELECT * FROM Order_line a, Order_line b
		WHERE a.ol_o_id = b.ol_o_id AND a.ol_o_id = ? AND a.ol_id <> b.ol_id`, int64(1))
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (ordered pairs)", len(rs.Rows))
	}
}

func TestAmbiguousColumnRejected(t *testing.T) {
	e, ctx := testDB(t)
	sel := sqlparser.MustParse("SELECT o_id FROM Orders a, Orders b WHERE a.o_id = b.o_id").(*sqlparser.SelectStmt)
	if _, err := e.Query(ctx, sel, nil); err == nil {
		t.Fatal("ambiguous bare column should fail")
	}
}

func TestUnknownTableAndColumn(t *testing.T) {
	e, ctx := testDB(t)
	sel := sqlparser.MustParse("SELECT * FROM Missing").(*sqlparser.SelectStmt)
	if _, err := e.Query(ctx, sel, nil); !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("err = %v, want ErrUnknownTable", err)
	}
	sel = sqlparser.MustParse("SELECT * FROM Customer WHERE nope = 1").(*sqlparser.SelectStmt)
	if _, err := e.Query(ctx, sel, nil); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("err = %v, want ErrUnknownColumn", err)
	}
}

func TestInsertThenSelect(t *testing.T) {
	e, ctx := testDB(t)
	ins := sqlparser.MustParse("INSERT INTO Customer (c_id, c_uname, c_bal) VALUES (?, ?, ?)")
	if err := e.Exec(ctx, ins, []schema.Value{int64(99), "newuser", 5.0}, WriteOpts{}); err != nil {
		t.Fatal(err)
	}
	rs := runQuery(t, e, ctx, "SELECT * FROM Customer WHERE c_id = ?", int64(99))
	if len(rs.Rows) != 1 || rs.Rows[0]["c_uname"] != "newuser" {
		t.Fatalf("rows = %v", rs.Rows)
	}
	// The covered index must serve the new row too.
	rs = runQuery(t, e, ctx, "SELECT c_id FROM Customer WHERE c_uname = ?", "newuser")
	if len(rs.Rows) != 1 || rs.Rows[0]["c_id"].(int64) != 99 {
		t.Fatalf("index lookup rows = %v", rs.Rows)
	}
}

func TestUpdateMaintainsIndexes(t *testing.T) {
	e, ctx := testDB(t)
	up := sqlparser.MustParse("UPDATE Customer SET c_uname = ? WHERE c_id = ?")
	if err := e.Exec(ctx, up, []schema.Value{"renamed", int64(2)}, WriteOpts{}); err != nil {
		t.Fatal(err)
	}
	if rs := runQuery(t, e, ctx, "SELECT * FROM Customer WHERE c_uname = ?", "user02"); len(rs.Rows) != 0 {
		t.Fatalf("old index entry still visible: %v", rs.Rows)
	}
	rs := runQuery(t, e, ctx, "SELECT c_id FROM Customer WHERE c_uname = ?", "renamed")
	if len(rs.Rows) != 1 || rs.Rows[0]["c_id"].(int64) != 2 {
		t.Fatalf("new index entry missing: %v", rs.Rows)
	}
}

func TestUpdateNonIndexedColumnInPlace(t *testing.T) {
	e, ctx := testDB(t)
	up := sqlparser.MustParse("UPDATE Customer SET c_bal = ? WHERE c_id = ?")
	if err := e.Exec(ctx, up, []schema.Value{123.0, int64(1)}, WriteOpts{}); err != nil {
		t.Fatal(err)
	}
	rs := runQuery(t, e, ctx, "SELECT c_bal FROM Customer WHERE c_uname = ?", "user01")
	if len(rs.Rows) != 1 || rs.Rows[0]["c_bal"].(float64) != 123.0 {
		t.Fatalf("index copy stale: %v", rs.Rows)
	}
}

func TestDeleteCleansIndexes(t *testing.T) {
	e, ctx := testDB(t)
	del := sqlparser.MustParse("DELETE FROM Customer WHERE c_id = ?")
	if err := e.Exec(ctx, del, []schema.Value{int64(5)}, WriteOpts{}); err != nil {
		t.Fatal(err)
	}
	if rs := runQuery(t, e, ctx, "SELECT * FROM Customer WHERE c_id = ?", int64(5)); len(rs.Rows) != 0 {
		t.Fatal("row visible after delete")
	}
	if rs := runQuery(t, e, ctx, "SELECT * FROM Customer WHERE c_uname = ?", "user05"); len(rs.Rows) != 0 {
		t.Fatal("index entry visible after delete")
	}
}

func TestWriteRequiresFullKey(t *testing.T) {
	e, ctx := testDB(t)
	up := sqlparser.MustParse("UPDATE Order_line SET ol_qty = ? WHERE ol_o_id = ?")
	err := e.Exec(ctx, up, []schema.Value{int64(1), int64(1)}, WriteOpts{})
	if !errors.Is(err, ErrKeyNotSpecified) {
		t.Fatalf("err = %v, want ErrKeyNotSpecified (§IV restriction)", err)
	}
	del := sqlparser.MustParse("DELETE FROM Order_line WHERE ol_o_id = ?")
	err = e.Exec(ctx, del, []schema.Value{int64(1)}, WriteOpts{})
	if !errors.Is(err, ErrKeyNotSpecified) {
		t.Fatalf("err = %v, want ErrKeyNotSpecified", err)
	}
}

func TestUpdateMissingRowIsNoop(t *testing.T) {
	e, ctx := testDB(t)
	up := sqlparser.MustParse("UPDATE Customer SET c_bal = ? WHERE c_id = ?")
	if err := e.Exec(ctx, up, []schema.Value{1.0, int64(12345)}, WriteOpts{}); err != nil {
		t.Fatal(err)
	}
}

func TestOnWriteCollectsWriteSet(t *testing.T) {
	e, ctx := testDB(t)
	var writes []string
	opts := WriteOpts{OnWrite: func(table, key string) { writes = append(writes, table) }}
	ins := sqlparser.MustParse("INSERT INTO Customer (c_id, c_uname, c_bal) VALUES (?, ?, ?)")
	if err := e.Exec(ctx, ins, []schema.Value{int64(50), "x", 1.0}, opts); err != nil {
		t.Fatal(err)
	}
	if len(writes) != 2 { // base + 1 index
		t.Fatalf("write set = %v, want base+index", writes)
	}
}

func TestMVCCSnapshotVisibility(t *testing.T) {
	hc := hbase.NewHCluster(cluster.NewDefault(nil), nil, nil)
	cat := NewCatalog(hc)
	rel := &schema.Relation{
		Name:    "T",
		Columns: []schema.Column{{Name: "id", Type: schema.TInt}, {Name: "v", Type: schema.TString}},
		PK:      []string{"id"},
	}
	if _, err := cat.RegisterRelation(rel, hbase.TableSpec{MaxVersions: 100}); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(cat)
	ctx := sim.NewCtx()
	tt, _ := cat.Table("T")
	// Write v1 at ts 10, v2 at ts 20.
	if err := eng.PutRow(ctx, tt, schema.Row{"id": int64(1), "v": "v1"}, WriteOpts{TS: 10}); err != nil {
		t.Fatal(err)
	}
	if err := eng.PutRow(ctx, tt, schema.Row{"id": int64(1), "v": "v2"}, WriteOpts{TS: 20}); err != nil {
		t.Fatal(err)
	}
	sel := sqlparser.MustParse("SELECT v FROM T WHERE id = ?").(*sqlparser.SelectStmt)
	rs, err := eng.QueryOpts(ctx, sel, []schema.Value{int64(1)}, QueryOpts{Read: hbase.ReadOpts{ReadTS: 15}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0]["v"] != "v1" {
		t.Fatalf("snapshot@15 = %v, want v1", rs.Rows)
	}
}

func TestJoinCostsChargedForHashJoin(t *testing.T) {
	e, _ := testDB(t)
	// Full join (no filters) must be costlier than a filtered one.
	full, filtered := sim.NewCtx(), sim.NewCtx()
	sel := sqlparser.MustParse("SELECT * FROM Customer c, Orders o WHERE c.c_id = o.o_c_id").(*sqlparser.SelectStmt)
	if _, err := e.Query(full, sel, nil); err != nil {
		t.Fatal(err)
	}
	sel2 := sqlparser.MustParse("SELECT * FROM Customer c, Orders o WHERE c.c_id = o.o_c_id AND c.c_id = ?").(*sqlparser.SelectStmt)
	if _, err := e.Query(filtered, sel2, []schema.Value{int64(1)}); err != nil {
		t.Fatal(err)
	}
	if full.Elapsed() <= filtered.Elapsed() {
		t.Fatalf("full join (%v) should cost more than filtered join (%v)", full.Elapsed(), filtered.Elapsed())
	}
}

func TestValueCodecRoundTrip(t *testing.T) {
	vals := []schema.Value{int64(-5), int64(1 << 40), float64(3.25), "hello", ""}
	for _, v := range vals {
		got := DecodeValue(EncodeValue(v))
		if !schema.ValuesEqual(got, v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
	if DecodeValue(EncodeValue(nil)) != nil {
		t.Error("nil should round trip to nil")
	}
}

func TestCellsToRowSkipsMarkers(t *testing.T) {
	res := hbase.RowResult{Key: "k", Cells: hbase.Cells{
		{Qualifier: DirtyQualifier, Value: []byte("1")},
		{Qualifier: "a", Value: EncodeValue(int64(1))},
	}}
	row := CellsToRow(res)
	if len(row) != 1 || row["a"].(int64) != 1 {
		t.Fatalf("row = %v", row)
	}
	if !IsDirty(res) {
		t.Fatal("IsDirty should report the marker")
	}
}
