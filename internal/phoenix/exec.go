package phoenix

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"synergy/internal/hbase"
	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

// ---------------------------------------------------------------------------
// Access paths

type accessKind int

const (
	accessFullScan accessKind = iota
	accessPKPrefix
	accessIndexPrefix
)

// accessPlan is how a table binding's rows are fetched.
type accessPlan struct {
	kind    accessKind
	index   *IndexInfo     // for accessIndexPrefix
	eqCols  []string       // leading key columns bound by equality
	eqVals  []schema.Value // their values
	rowsEst int
}

// chooseAccess picks the cheapest access path for a binding given its local
// equality predicates. extraEq supplies join-derived equalities (for INL
// probes).
func (q *query) chooseAccess(b *binding, extraEqCols []string) accessPlan {
	eq := map[string]bool{}
	for _, p := range q.local[b.name] {
		if !p.isJoin && p.op == sqlparser.OpEq {
			eq[p.lCol] = true
		}
	}
	for _, c := range extraEqCols {
		eq[c] = true
	}
	est := q.eng.cat.Store().RowEstimate(b.info.Name)
	if est < 1 {
		est = 1
	}
	best := accessPlan{kind: accessFullScan, rowsEst: est}

	consider := func(keyCols []string, idx *IndexInfo) {
		n := 0
		for _, k := range keyCols {
			if !eq[k] {
				break
			}
			n++
		}
		if n == 0 {
			return
		}
		// Selectivity heuristic: each bound key column divides the
		// table; a fully bound key yields ~1 row.
		rows := est
		if n == len(keyCols) {
			rows = 1
		} else {
			for i := 0; i < n && rows > 1; i++ {
				rows = rows / 100
			}
			if rows < 1 {
				rows = 1
			}
		}
		kind := accessPKPrefix
		if idx != nil {
			kind = accessIndexPrefix
		}
		if rows < best.rowsEst || (rows == best.rowsEst && best.kind == accessFullScan) {
			best = accessPlan{kind: kind, index: idx, eqCols: keyCols[:n], rowsEst: rows}
		}
	}

	consider(b.info.Key, nil)
	for _, idx := range b.info.Indexes {
		if idx.KeyOnly {
			continue // maintenance indexes cannot answer queries
		}
		full := append(append([]string(nil), idx.On...), b.info.Key...)
		consider(full, idx)
	}
	return best
}

// localEqValue returns the value bound to col by a local equality predicate.
func (q *query) localEqValue(b *binding, col string) (schema.Value, bool) {
	for _, p := range q.local[b.name] {
		if !p.isJoin && p.op == sqlparser.OpEq && p.lCol == col {
			return p.value, true
		}
	}
	return nil, false
}

// openScan opens a binding scan through the query's reader: an explicit
// Reader when one is set (an OCC transaction's tracking view), else the
// transaction overlay view (read-your-writes), else the plain store client.
// Every table read of a query funnels through here, which is what makes it
// the read-set capture choke point.
func (q *query) openScan(ctx *sim.Ctx, tbl string, spec hbase.ScanSpec) (hbase.RowStream, error) {
	if q.opts.Reader != nil {
		return q.opts.Reader.OpenScan(ctx, tbl, spec)
	}
	if q.opts.View != nil {
		return q.opts.View.OpenScan(ctx, tbl, spec)
	}
	return q.eng.client.Scan(ctx, tbl, spec)
}

// scanBinding fetches a binding's rows via its access plan, applying all
// local predicates (pushed down server-side) and converting to tuples.
func (q *query) scanBinding(ctx *sim.Ctx, b *binding, plan accessPlan) ([]tuple, error) {
	if b.derived != nil {
		out := make([]tuple, 0, len(b.derived))
		for _, t := range b.derived {
			ok := true
			for _, p := range q.local[b.name] {
				row := make(schema.Row, len(t))
				for k, v := range t {
					row[strings.TrimPrefix(k, b.name+".")] = v
				}
				if !p.evalLocal(row) {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, t)
			}
		}
		return out, nil
	}

	spec := hbase.ScanSpec{Read: q.opts.Read}
	tableName := b.info.Name
	switch plan.kind {
	case accessPKPrefix:
		vals := make([]schema.Value, 0, len(plan.eqCols))
		for _, c := range plan.eqCols {
			v, ok := q.localEqValue(b, c)
			if !ok {
				return nil, fmt.Errorf("phoenix: internal: missing eq value for %s.%s", b.name, c)
			}
			vals = append(vals, v)
		}
		if len(plan.eqCols) == len(b.info.Key) {
			spec.Start = schema.EncodeKey(vals...)
			spec.Stop = spec.Start + "\x00"
			spec.Sequential = true // single-row point lookup
		} else {
			spec.Prefix = schema.KeyPrefix(vals...)
		}
	case accessIndexPrefix:
		tableName = plan.index.Name
		vals := make([]schema.Value, 0, len(plan.eqCols))
		for _, c := range plan.eqCols {
			v, ok := q.localEqValue(b, c)
			if !ok {
				return nil, fmt.Errorf("phoenix: internal: missing eq value for %s.%s", b.name, c)
			}
			vals = append(vals, v)
		}
		spec.Prefix = schema.KeyPrefix(vals...)
		if len(plan.eqCols) == len(plan.index.On)+len(b.info.Key) {
			spec.Prefix = ""
			spec.Start = schema.EncodeKey(vals...)
			spec.Stop = spec.Start + "\x00"
			spec.Sequential = true // single-row point lookup
		}
	}
	// Full table and index-range scans scatter-gather across regions
	// (Phoenix intra-query parallelism); point lookups above opt out.

	// A scan with no local predicates ships no filter at all: the region
	// returns every visible row without the per-row decode an accept-all
	// closure would pay.
	if local := q.local[b.name]; len(local) > 0 {
		spec.Filter = func(r hbase.RowResult) bool {
			row := CellsToRow(r)
			for _, p := range local {
				if !p.evalLocal(row) {
					return false
				}
			}
			return true
		}
	}

	if b.info.IsView && q.opts.OnViewScan != nil {
		if err := q.opts.OnViewScan(ctx, b.info.Name); err != nil {
			return nil, err
		}
	}

	dirtyChecked := q.opts.DirtyCheck && b.info.IsView
	maxRestarts := q.opts.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = 50
	}
	for attempt := 0; ; attempt++ {
		sc, err := q.openScan(ctx, tableName, spec)
		if err != nil {
			return nil, err
		}
		var out []tuple
		dirty := false
		for {
			r, ok := sc.Next(ctx)
			if !ok {
				break
			}
			if dirtyChecked && IsDirty(r) {
				dirty = true
				sc.Close(ctx) // abandon in-flight region fetches
				break
			}
			row := CellsToRow(r)
			t := make(tuple, len(row))
			for k, v := range row {
				t[b.name+"."+k] = v
			}
			out = append(out, t)
		}
		if !dirty {
			return out, nil
		}
		// §VIII-C: "if a marked row is present ... re-scan".
		ctx.CountRestart()
		ctx.Charge(q.eng.costs.DirtyRestartPenalty)
		if attempt+1 >= maxRestarts {
			return nil, fmt.Errorf("%w: %s after %d restarts", ErrDirtyRead, tableName, attempt+1)
		}
	}
}

// ---------------------------------------------------------------------------
// Join execution

func (q *query) run(ctx *sim.Ctx) ([]tuple, error) {
	if len(q.bindings) == 0 {
		return nil, fmt.Errorf("phoenix: no FROM bindings")
	}
	// Pick the start binding: cheapest access.
	type cand struct {
		b    *binding
		plan accessPlan
	}
	var start cand
	for i, b := range q.bindings {
		var plan accessPlan
		if b.derived != nil {
			plan = accessPlan{kind: accessFullScan, rowsEst: len(b.derived)}
		} else {
			plan = q.chooseAccess(b, nil)
		}
		if i == 0 || plan.rowsEst < start.plan.rowsEst {
			start = cand{b: b, plan: plan}
		}
	}
	current, err := q.scanBinding(ctx, start.b, start.plan)
	if err != nil {
		return nil, err
	}
	joined := map[string]bool{start.b.name: true}
	remaining := make([]*binding, 0, len(q.bindings)-1)
	for _, b := range q.bindings {
		if b != start.b {
			remaining = append(remaining, b)
		}
	}

	for len(remaining) > 0 {
		// Prefer a binding connected to the joined set by equi-joins.
		picked := -1
		for i, b := range remaining {
			if len(q.joinCols(joined, b)) > 0 {
				picked = i
				break
			}
		}
		cartesian := false
		if picked < 0 {
			picked = 0
			cartesian = true
		}
		b := remaining[picked]
		remaining = append(remaining[:picked], remaining[picked+1:]...)

		if cartesian {
			current, err = q.cartesianJoin(ctx, current, b)
		} else {
			current, err = q.joinBinding(ctx, current, b, joined, len(remaining) > 0)
		}
		if err != nil {
			return nil, err
		}
		joined[b.name] = true
	}

	// Residual cross-binding predicates.
	if len(q.residual) > 0 {
		kept := current[:0]
		for _, t := range current {
			ok := true
			for _, p := range q.residual {
				if !p.evalTuple(t) {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, t)
			}
		}
		current = kept
	}
	return current, nil
}

// joinCols returns pairs (outerKey, innerCol) of equi-join conditions
// linking the joined set to binding b.
func (q *query) joinCols(joined map[string]bool, b *binding) (pairs [][2]string) {
	for _, j := range q.joins {
		switch {
		case joined[j.lBind] && j.rBind == b.name:
			pairs = append(pairs, [2]string{j.lBind + "." + j.lCol, j.rCol})
		case joined[j.rBind] && j.lBind == b.name:
			pairs = append(pairs, [2]string{j.rBind + "." + j.rCol, j.lCol})
		}
	}
	return pairs
}

// joinBinding joins the current intermediate result with binding b. It uses
// an index nested-loop when the outer side is small and the inner side has a
// usable key; otherwise a client hash join over a full (filtered) scan, which
// is where the Phoenix join-algorithm cost of Figure 10 comes from.
func (q *query) joinBinding(ctx *sim.Ctx, outer []tuple, b *binding, joined map[string]bool, moreStages bool) ([]tuple, error) {
	pairs := q.joinCols(joined, b)
	innerCols := make([]string, len(pairs))
	outerKeys := make([]string, len(pairs))
	for i, p := range pairs {
		outerKeys[i], innerCols[i] = p[0], p[1]
	}

	if b.derived == nil && len(outer) > 0 && len(outer) <= q.eng.costs.INLThreshold {
		if plan, ok := q.inlPlan(b, innerCols); ok {
			return q.indexNestedLoop(ctx, outer, b, plan, outerKeys, innerCols)
		}
	}

	// Hash join: scan inner fully (with local filters pushed down), build
	// hash on inner, probe with outer.
	var innerPlan accessPlan
	if b.derived != nil {
		innerPlan = accessPlan{kind: accessFullScan, rowsEst: len(b.derived)}
	} else {
		innerPlan = q.chooseAccess(b, nil)
	}
	inner, err := q.scanBinding(ctx, b, innerPlan)
	if err != nil {
		return nil, err
	}
	costs := q.eng.costs
	build := make(map[string][]tuple, len(inner))
	for _, t := range inner {
		key := joinKey(t, b.name, innerCols)
		build[key] = append(build[key], t)
	}
	ctx.Charge(sim.Micros(int64(len(inner)) * int64(costs.JoinBuildRow)))

	var out []tuple
	for _, o := range outer {
		key := joinKeyQualified(o, outerKeys)
		for _, in := range build[key] {
			merged := make(tuple, len(o)+len(in))
			for k, v := range o {
				merged[k] = v
			}
			for k, v := range in {
				merged[k] = v
			}
			out = append(out, merged)
		}
	}
	ctx.Charge(sim.Micros(int64(len(outer)) * int64(costs.JoinProbeRow)))

	if moreStages && len(out) > 0 {
		// Intermediate result carried into another stage: materialize
		// and spill (§III: joins are expensive in the NoSQL store).
		var bytes int
		for _, t := range out {
			bytes += tupleBytes(t)
		}
		ctx.Charge(sim.Micros(int64(len(out)) * int64(costs.IntermediateRow)))
		ctx.Charge(costs.SpillPerByte.Mul(bytes))
	}
	return out, nil
}

// inlPlan checks whether binding b can be probed by key for the given join
// columns (plus its local equalities), returning the probe plan.
func (q *query) inlPlan(b *binding, joinCols []string) (accessPlan, bool) {
	plan := q.chooseAccess(b, joinCols)
	if plan.kind == accessFullScan || len(plan.eqCols) == 0 {
		return plan, false
	}
	// Every join column must be part of the bound prefix; otherwise the
	// probe would miss conditions (they are re-checked anyway, but an
	// unbound join column means the probe isn't selective).
	bound := map[string]bool{}
	for _, c := range plan.eqCols {
		bound[c] = true
	}
	for _, c := range joinCols {
		if !bound[c] {
			return plan, false
		}
	}
	return plan, true
}

// indexNestedLoop probes the inner table once per outer tuple using point
// gets / prefix scans.
func (q *query) indexNestedLoop(ctx *sim.Ctx, outer []tuple, b *binding, plan accessPlan, outerKeys, innerCols []string) ([]tuple, error) {
	joinVal := map[string]int{} // inner col -> index into outerKeys
	for i, c := range innerCols {
		joinVal[c] = i
	}
	if b.info.IsView && q.opts.OnViewScan != nil {
		if err := q.opts.OnViewScan(ctx, b.info.Name); err != nil {
			return nil, err
		}
	}
	tableName := b.info.Name
	if plan.kind == accessIndexPrefix {
		tableName = plan.index.Name
	}
	local := q.local[b.name]
	var out []tuple
	for _, o := range outer {
		vals := make([]schema.Value, 0, len(plan.eqCols))
		ok := true
		for _, c := range plan.eqCols {
			if i, isJoin := joinVal[c]; isJoin {
				vals = append(vals, o[outerKeys[i]])
				continue
			}
			v, has := q.localEqValue(b, c)
			if !has {
				ok = false
				break
			}
			vals = append(vals, v)
		}
		if !ok {
			return nil, fmt.Errorf("phoenix: internal: INL probe missing values")
		}
		// INL probes are per-outer-row point/short-prefix reads; the
		// scatter-gather fan-out would cost more than it overlaps.
		spec := hbase.ScanSpec{Prefix: schema.KeyPrefix(vals...), Read: q.opts.Read, Sequential: true}
		fullKey := (plan.kind == accessPKPrefix && len(plan.eqCols) == len(b.info.Key)) ||
			(plan.kind == accessIndexPrefix && len(plan.eqCols) == len(plan.index.On)+len(b.info.Key))
		if fullKey {
			spec.Prefix = ""
			spec.Start = schema.EncodeKey(vals...)
			spec.Stop = spec.Start + "\x00"
		}
		if len(local) > 0 {
			spec.Filter = func(r hbase.RowResult) bool {
				row := CellsToRow(r)
				for _, p := range local {
					if !p.evalLocal(row) {
						return false
					}
				}
				return true
			}
		}
		sc, err := q.openScan(ctx, tableName, spec)
		if err != nil {
			return nil, err
		}
		for {
			r, scanOK := sc.Next(ctx)
			if !scanOK {
				break
			}
			if q.opts.DirtyCheck && b.info.IsView && IsDirty(r) {
				// Point probes re-read the row rather than
				// restarting the whole join.
				ctx.CountRestart()
				ctx.Charge(q.eng.costs.DirtyRestartPenalty)
				continue
			}
			row := CellsToRow(r)
			merged := make(tuple, len(o)+len(row))
			for k, v := range o {
				merged[k] = v
			}
			for k, v := range row {
				merged[b.name+"."+k] = v
			}
			// Re-check join equality (defensive; prefix probes
			// guarantee it).
			match := true
			for i, c := range innerCols {
				if !schema.ValuesEqual(merged[b.name+"."+c], o[outerKeys[i]]) {
					match = false
					break
				}
			}
			if match {
				out = append(out, merged)
			}
		}
	}
	return out, nil
}

func (q *query) cartesianJoin(ctx *sim.Ctx, outer []tuple, b *binding) ([]tuple, error) {
	var plan accessPlan
	if b.derived != nil {
		plan = accessPlan{kind: accessFullScan, rowsEst: len(b.derived)}
	} else {
		plan = q.chooseAccess(b, nil)
	}
	inner, err := q.scanBinding(ctx, b, plan)
	if err != nil {
		return nil, err
	}
	costs := q.eng.costs
	var out []tuple
	for _, o := range outer {
		for _, in := range inner {
			merged := make(tuple, len(o)+len(in))
			for k, v := range o {
				merged[k] = v
			}
			for k, v := range in {
				merged[k] = v
			}
			out = append(out, merged)
		}
	}
	ctx.Charge(sim.Micros(int64(len(out)) * int64(costs.JoinProbeRow)))
	return out, nil
}

func joinKey(t tuple, bind string, cols []string) string {
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(canonValue(t[bind+"."+c]))
	}
	return b.String()
}

func joinKeyQualified(t tuple, keys []string) string {
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(canonValue(t[k]))
	}
	return b.String()
}

// canonValue renders a value so that int64(5) and float64(5) hash equal.
func canonValue(v schema.Value) string {
	switch x := v.(type) {
	case nil:
		return "\x00nil"
	case int64:
		return fmt.Sprintf("n%d", x)
	case float64:
		if x == float64(int64(x)) {
			return fmt.Sprintf("n%d", int64(x))
		}
		return fmt.Sprintf("f%g", x)
	default:
		return fmt.Sprint(x)
	}
}

func tupleBytes(t tuple) int {
	n := 0
	for k, v := range t {
		n += len(k)
		switch x := v.(type) {
		case string:
			n += len(x)
		default:
			n += 9
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// Aggregation, ordering, projection

func (q *query) project(ctx *sim.Ctx, tuples []tuple) (*ResultSet, error) {
	costs := q.eng.costs
	sel := q.sel

	if len(sel.GroupBy) > 0 || q.hasAggregates() {
		var err error
		tuples, err = q.aggregate(ctx, tuples)
		if err != nil {
			return nil, err
		}
	}

	if len(sel.OrderBy) > 0 {
		keys := make([]string, len(sel.OrderBy))
		for i, o := range sel.OrderBy {
			k, err := q.outputKey(o.Col, tuples)
			if err != nil {
				return nil, err
			}
			keys[i] = k
		}
		n := len(tuples)
		if n > 1 {
			ctx.Charge(sim.Micros(int64(n) * int64(bits.Len(uint(n))) * int64(costs.SortRow)))
		}
		sort.SliceStable(tuples, func(i, j int) bool {
			for k, key := range keys {
				cmp := schema.CompareValues(tuples[i][key], tuples[j][key])
				if cmp == 0 {
					continue
				}
				if sel.OrderBy[k].Desc {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
	}

	if sel.Limit > 0 && len(tuples) > sel.Limit {
		tuples = tuples[:sel.Limit]
	}

	return q.buildResult(tuples)
}

func (q *query) hasAggregates() bool {
	for _, it := range q.sel.Items {
		if _, ok := it.Expr.(sqlparser.AggExpr); ok {
			return true
		}
	}
	return false
}

// outputKey resolves a column reference against tuple keys. For aggregated
// tuples the key may be an output alias.
func (q *query) outputKey(c sqlparser.ColumnRef, tuples []tuple) (string, error) {
	if c.Table != "" {
		return c.Table + "." + c.Column, nil
	}
	// Alias of a select item?
	for _, it := range q.sel.Items {
		if it.Alias == c.Column {
			return c.Column, nil
		}
	}
	b, err := q.resolveColumn(c)
	if err != nil {
		// Fall back to a bare key (post-aggregation columns).
		if len(tuples) > 0 {
			if _, ok := tuples[0][c.Column]; ok {
				return c.Column, nil
			}
		}
		return "", err
	}
	return b.name + "." + c.Column, nil
}

// aggregate evaluates GROUP BY + aggregate select items. The output tuples
// carry group-by columns under their qualified keys and aggregates under
// their alias (or rendered expression).
func (q *query) aggregate(ctx *sim.Ctx, tuples []tuple) ([]tuple, error) {
	sel := q.sel
	costs := q.eng.costs
	groupKeys := make([]string, len(sel.GroupBy))
	for i, c := range sel.GroupBy {
		k, err := q.outputKey(c, tuples)
		if err != nil {
			return nil, err
		}
		groupKeys[i] = k
	}

	type aggState struct {
		rep    tuple
		counts map[string]int64
		sums   map[string]float64
		mins   map[string]schema.Value
		maxs   map[string]schema.Value
	}
	groups := map[string]*aggState{}
	var order []string

	aggItems := map[string]sqlparser.AggExpr{}
	for _, it := range sel.Items {
		agg, ok := it.Expr.(sqlparser.AggExpr)
		if !ok {
			continue
		}
		aggItems[q.aggOutputName(it)] = agg
	}

	for _, t := range tuples {
		var kb strings.Builder
		for _, gk := range groupKeys {
			kb.WriteString(canonValue(t[gk]))
			kb.WriteByte(0)
		}
		key := kb.String()
		st := groups[key]
		if st == nil {
			st = &aggState{
				rep:    t,
				counts: map[string]int64{},
				sums:   map[string]float64{},
				mins:   map[string]schema.Value{},
				maxs:   map[string]schema.Value{},
			}
			groups[key] = st
			order = append(order, key)
		}
		for name, agg := range aggItems {
			if agg.Star {
				st.counts[name]++
				continue
			}
			akey, err := q.outputKey(*agg.Arg, tuples)
			if err != nil {
				return nil, err
			}
			v := t[akey]
			if v == nil {
				continue
			}
			st.counts[name]++
			if f, ok := toFloat(v); ok {
				st.sums[name] += f
			}
			if cur, ok := st.mins[name]; !ok || schema.CompareValues(v, cur) < 0 {
				st.mins[name] = v
			}
			if cur, ok := st.maxs[name]; !ok || schema.CompareValues(v, cur) > 0 {
				st.maxs[name] = v
			}
		}
	}
	ctx.Charge(sim.Micros(int64(len(tuples)) * int64(costs.AggRow)))

	out := make([]tuple, 0, len(groups))
	for _, key := range order {
		st := groups[key]
		t := make(tuple)
		for _, gk := range groupKeys {
			t[gk] = st.rep[gk]
		}
		// Non-aggregate select items ride along from the group's
		// representative row (TPC-W queries select columns functionally
		// dependent on the group key, e.g. i_title with GROUP BY i_id).
		for _, it := range sel.Items {
			if c, ok := it.Expr.(sqlparser.ColumnRef); ok {
				if k, err := q.outputKey(c, tuples); err == nil {
					t[k] = st.rep[k]
				}
			}
		}
		for name, agg := range aggItems {
			switch agg.Fn {
			case "COUNT":
				t[name] = st.counts[name]
			case "SUM":
				if st.counts[name] > 0 {
					t[name] = normalizeSum(st.sums[name])
				}
			case "AVG":
				if st.counts[name] > 0 {
					t[name] = st.sums[name] / float64(st.counts[name])
				}
			case "MIN":
				t[name] = st.mins[name]
			case "MAX":
				t[name] = st.maxs[name]
			default:
				return nil, fmt.Errorf("phoenix: unknown aggregate %q", agg.Fn)
			}
		}
		out = append(out, t)
	}
	return out, nil
}

func normalizeSum(f float64) schema.Value {
	if f == float64(int64(f)) {
		return int64(f)
	}
	return f
}

func toFloat(v schema.Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

func (q *query) aggOutputName(it sqlparser.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	return it.Expr.String()
}

// buildResult converts internal tuples to the client result set with
// friendly column names: unqualified when unambiguous, binding-qualified
// otherwise.
func (q *query) buildResult(tuples []tuple) (*ResultSet, error) {
	sel := q.sel
	aggregated := len(sel.GroupBy) > 0 || q.hasAggregates()

	// Count column ownership for ambiguity detection.
	owners := map[string]int{}
	for _, b := range q.bindings {
		for _, c := range b.cols {
			owners[c]++
		}
	}
	outName := func(bind, col string) string {
		if owners[col] > 1 {
			return bind + "." + col
		}
		return col
	}

	var cols []string
	type mapping struct {
		out string
		in  string
	}
	var maps []mapping

	if sel.Star && !aggregated {
		for _, b := range q.bindings {
			for _, c := range b.cols {
				maps = append(maps, mapping{out: outName(b.name, c), in: b.name + "." + c})
			}
		}
	} else if aggregated {
		for _, it := range sel.Items {
			switch x := it.Expr.(type) {
			case sqlparser.AggExpr:
				name := q.aggOutputName(it)
				maps = append(maps, mapping{out: name, in: name})
			case sqlparser.ColumnRef:
				key, err := q.outputKey(x, tuples)
				if err != nil {
					return nil, err
				}
				name := it.Alias
				if name == "" {
					name = x.Column
				}
				maps = append(maps, mapping{out: name, in: key})
			default:
				return nil, fmt.Errorf("phoenix: unsupported select item %s", it)
			}
		}
	} else {
		for _, it := range sel.Items {
			switch x := it.Expr.(type) {
			case sqlparser.ColumnRef:
				b, err := q.resolveColumn(x)
				if err != nil {
					return nil, err
				}
				name := it.Alias
				if name == "" {
					name = outName(b.name, x.Column)
				}
				maps = append(maps, mapping{out: name, in: b.name + "." + x.Column})
			case sqlparser.Literal:
				maps = append(maps, mapping{out: it.Expr.String(), in: ""})
			default:
				return nil, fmt.Errorf("phoenix: unsupported select item %s", it)
			}
		}
	}

	for _, m := range maps {
		cols = append(cols, m.out)
	}
	rows := make([]schema.Row, len(tuples))
	for i, t := range tuples {
		row := make(schema.Row, len(maps))
		for _, m := range maps {
			if m.in == "" {
				continue
			}
			row[m.out] = t[m.in]
		}
		rows[i] = row
	}
	return &ResultSet{Columns: cols, Rows: rows}, nil
}
