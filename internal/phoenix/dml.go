package phoenix

import (
	"fmt"

	"synergy/internal/hbase"
	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

// WriteOpts control DML execution.
type WriteOpts struct {
	// TS stamps every written cell (and tombstone) with an explicit
	// timestamp; 0 uses the server clock. MVCC transactions set this to
	// their transaction id.
	TS int64
	// Read applies visibility filters to the read-before-write.
	Read hbase.ReadOpts
	// OnWrite, when set, observes each (table, rowKey) mutation — the
	// MVCC layer collects the transaction's write set through it.
	OnWrite func(table, rowKey string)
	// Sequential issues every mutation as its own eager RPC instead of
	// batching them per statement — the pre-pipeline write path, kept for
	// batched-vs-sequential parity tests and benchmarks.
	Sequential bool
	// Mutator, when set, is the transaction-scoped BufferedMutator every
	// statement of the transaction emits into: mutations buffer across
	// statements and persist only at the transaction's commit flush (or at
	// explicit protocol phase barriers), and the read-before-write of
	// UPDATE/DELETE consults the mutator's read-your-writes overlay, so a
	// statement sees rows earlier statements wrote but have not yet
	// flushed. Flush/Discard lifecycle belongs to the transaction owner,
	// not to the statement.
	Mutator *hbase.BufferedMutator
	// Reader, when set, overrides the read side of the write path: the
	// read-before-write of UPDATE/DELETE and every maintenance read go
	// through it instead of the Mutator's view. OCC transactions pass
	// their read-set-tracking reader here so the GetRowVia choke point
	// records every key the transaction's writes depended on.
	Reader hbase.Reader
}

func (o WriteOpts) Notify(table, key string) {
	if o.OnWrite != nil {
		o.OnWrite(table, key)
	}
}

// Exec executes a write statement (INSERT, UPDATE or DELETE). In agreement
// with the paper's restrictions (§IV), writes must specify every key
// attribute and affect a single base-table row.
func (e *Engine) Exec(ctx *sim.Ctx, stmt sqlparser.Statement, params []schema.Value, opts WriteOpts) error {
	switch s := stmt.(type) {
	case *sqlparser.InsertStmt:
		return e.execInsert(ctx, s, params, opts)
	case *sqlparser.UpdateStmt:
		return e.execUpdate(ctx, s, params, opts)
	case *sqlparser.DeleteStmt:
		return e.execDelete(ctx, s, params, opts)
	default:
		return fmt.Errorf("%w: %T", ErrUnsupported, stmt)
	}
}

func evalConst(e sqlparser.Expr, params []schema.Value) (schema.Value, error) {
	switch x := e.(type) {
	case sqlparser.Literal:
		return x.Value, nil
	case sqlparser.Param:
		if x.Index >= len(params) {
			return nil, fmt.Errorf("phoenix: missing parameter %d", x.Index)
		}
		return params[x.Index], nil
	default:
		return nil, fmt.Errorf("%w: non-constant expression %s", ErrUnsupported, e)
	}
}

// keyFromWhere extracts the full-key equality values from a WHERE clause,
// erroring when any key attribute is unbound (multi-row writes are not
// supported, §IV).
func keyFromWhere(t *TableInfo, where []sqlparser.Predicate, params []schema.Value) (schema.Row, error) {
	bound := schema.Row{}
	for _, p := range where {
		col, ok := p.Left.(sqlparser.ColumnRef)
		if !ok || p.Op != sqlparser.OpEq {
			return nil, fmt.Errorf("%w: write WHERE must be key equality, got %s", ErrUnsupported, p)
		}
		v, err := evalConst(p.Right, params)
		if err != nil {
			return nil, err
		}
		bound[col.Column] = v
	}
	for _, k := range t.Key {
		if _, ok := bound[k]; !ok {
			return nil, fmt.Errorf("%w: %s.%s", ErrKeyNotSpecified, t.Name, k)
		}
	}
	return bound, nil
}

func (e *Engine) execInsert(ctx *sim.Ctx, s *sqlparser.InsertStmt, params []schema.Value, opts WriteOpts) error {
	t, err := e.cat.Table(s.Table)
	if err != nil {
		return err
	}
	cols := s.Columns
	if len(cols) == 0 {
		cols = t.ColumnNames()
	}
	if len(cols) != len(s.Values) {
		return fmt.Errorf("phoenix: %d columns, %d values", len(cols), len(s.Values))
	}
	row := schema.Row{}
	for i, c := range cols {
		if !t.HasColumn(c) {
			return fmt.Errorf("%w: %s.%s", ErrUnknownColumn, s.Table, c)
		}
		v, err := evalConst(s.Values[i], params)
		if err != nil {
			return err
		}
		row[c] = v
	}
	return e.PutRow(ctx, t, row, opts)
}

// IndexRowContent projects the stored content of an index entry: the full row for
// covered indexes, just the key attributes for key-only (maintenance)
// indexes.
func IndexRowContent(t *TableInfo, idx *IndexInfo, row schema.Row) schema.Row {
	if !idx.KeyOnly {
		return row
	}
	out := schema.Row{}
	for _, c := range idx.On {
		out[c] = row[c]
	}
	for _, c := range t.Key {
		out[c] = row[c]
	}
	return out
}

// IndexTouched reports whether an assignment affects an index's stored
// content.
func IndexTouched(t *TableInfo, idx *IndexInfo, assign schema.Row) bool {
	if !idx.KeyOnly {
		return true
	}
	for _, c := range idx.On {
		if _, ok := assign[c]; ok {
			return true
		}
	}
	for _, c := range t.Key {
		if _, ok := assign[c]; ok {
			return true
		}
	}
	return false
}

// StampCells sets every cell's timestamp to ts (0 leaves server-side
// stamping to the store).
func StampCells(cells []hbase.Cell, ts int64) []hbase.Cell {
	for i := range cells {
		cells[i].TS = ts
	}
	return cells
}

// WriteBatch is the mutation pipeline of one DML statement (or one phase of
// the Synergy maintenance protocol): mutations accumulate in a
// BufferedMutator and ship as one round of region-grouped batch RPCs,
// instead of one RPC per mutation. Write-set notifications are recorded in
// emission order and fire only after the statement's emission completes
// (for an owned batch, after its flush lands); the Quiet variants skip
// notification (dirty marks are not part of any write set — index-entry
// moves, by contrast, notify: their tombstones are real writes the OCC
// validator must see).
//
// A batch either owns a statement-scoped mutator (flushed by Flush at
// statement end, the PR-2 pipeline) or borrows the transaction-scoped
// mutator from WriteOpts.Mutator, in which case Flush leaves the mutations
// buffered for the transaction's commit and only Barrier forces them out.
type WriteBatch struct {
	m        *hbase.BufferedMutator
	owned    bool
	opts     WriteOpts
	notifies []struct{ table, key string }
}

// NewWriteBatch opens a batch honoring opts' Mutator, Sequential and
// OnWrite settings.
func (e *Engine) NewWriteBatch(opts WriteOpts) *WriteBatch {
	if opts.Mutator != nil {
		return &WriteBatch{m: opts.Mutator, opts: opts}
	}
	return &WriteBatch{m: e.client.NewBufferedMutator(opts.Sequential), owned: true, opts: opts}
}

// Reader returns the read side of a write: an explicit tracking reader when
// the options carry one, else the transaction's overlay view when a
// transaction-scoped mutator is present, else the plain store client. Reads
// through it see the transaction's own buffered writes.
func (e *Engine) Reader(opts WriteOpts) hbase.Reader {
	if opts.Reader != nil {
		return opts.Reader
	}
	if opts.Mutator != nil {
		return opts.Mutator.View()
	}
	return e.client
}

// Put buffers a row put and records its write-set notification.
func (b *WriteBatch) Put(ctx *sim.Ctx, tbl, key string, cells []hbase.Cell) error {
	if err := b.m.Put(ctx, tbl, key, cells); err != nil {
		return err
	}
	b.notifies = append(b.notifies, struct{ table, key string }{tbl, key})
	return nil
}

// PutQuiet buffers a row put with no notification.
func (b *WriteBatch) PutQuiet(ctx *sim.Ctx, tbl, key string, cells []hbase.Cell) error {
	return b.m.Put(ctx, tbl, key, cells)
}

// Delete buffers a row tombstone and records its notification.
func (b *WriteBatch) Delete(ctx *sim.Ctx, tbl, key string, ts int64) error {
	if err := b.m.Delete(ctx, tbl, key, ts); err != nil {
		return err
	}
	b.notifies = append(b.notifies, struct{ table, key string }{tbl, key})
	return nil
}

// DeleteQuiet buffers a row tombstone with no notification.
func (b *WriteBatch) DeleteQuiet(ctx *sim.Ctx, tbl, key string, ts int64) error {
	return b.m.Delete(ctx, tbl, key, ts)
}

// Flush ends the statement's emission: an owned batch ships its mutations,
// a transaction-scoped batch leaves them buffered for the transaction's
// commit flush. Pending notifications fire either way — the write set must
// be recorded before the transaction's commit-time conflict check.
func (b *WriteBatch) Flush(ctx *sim.Ctx) error {
	if b.owned {
		return b.Barrier(ctx)
	}
	b.notify()
	return nil
}

// Barrier forces the buffered mutations out regardless of ownership — the
// ordering barrier between phases of the Synergy §VIII-B maintenance
// protocol. On a transaction-scoped mutator it flushes everything buffered
// so far, including earlier statements of the transaction, which preserves
// buffer order across the barrier.
func (b *WriteBatch) Barrier(ctx *sim.Ctx) error {
	if err := b.m.Flush(ctx); err != nil {
		return err
	}
	b.notify()
	return nil
}

func (b *WriteBatch) notify() {
	for _, n := range b.notifies {
		b.opts.Notify(n.table, n.key)
	}
	b.notifies = b.notifies[:0]
}

// PutRow writes one full row to a table and all of its indexes (Phoenix
// maintains indexes synchronously on the write path). The base put and
// every index put travel in one batch flush.
func (e *Engine) PutRow(ctx *sim.Ctx, t *TableInfo, row schema.Row, opts WriteOpts) error {
	b := e.NewWriteBatch(opts)
	if err := e.putRowInto(ctx, b, t, row); err != nil {
		return err
	}
	return b.Flush(ctx)
}

func (e *Engine) putRowInto(ctx *sim.Ctx, b *WriteBatch, t *TableInfo, row schema.Row) error {
	key, err := PrimaryKey(t, row)
	if err != nil {
		return err
	}
	if err := b.Put(ctx, t.Name, key, StampCells(RowToCells(row), b.opts.TS)); err != nil {
		return err
	}
	for _, idx := range t.Indexes {
		ikey := IndexKey(t, idx, row)
		icells := StampCells(RowToCells(IndexRowContent(t, idx, row)), b.opts.TS)
		if err := b.Put(ctx, idx.Name, ikey, icells); err != nil {
			return err
		}
	}
	return nil
}

// GetRow reads one row by primary key values from the store.
func (e *Engine) GetRow(ctx *sim.Ctx, t *TableInfo, read hbase.ReadOpts, keyVals ...schema.Value) (schema.Row, bool, error) {
	return e.GetRowVia(ctx, e.client, t, read, keyVals...)
}

// GetRowVia reads one row by primary key values through an explicit reader
// — the store client, or a transaction's read-your-writes view.
func (e *Engine) GetRowVia(ctx *sim.Ctx, r hbase.Reader, t *TableInfo, read hbase.ReadOpts, keyVals ...schema.Value) (schema.Row, bool, error) {
	if len(keyVals) != len(t.Key) {
		return nil, false, fmt.Errorf("%w: %s wants %d key values, got %d", ErrKeyNotSpecified, t.Name, len(t.Key), len(keyVals))
	}
	res, err := r.Get(ctx, t.Name, schema.EncodeKey(keyVals...), read)
	if err != nil {
		return nil, false, err
	}
	if res.Empty() {
		return nil, false, nil
	}
	return CellsToRow(res), true, nil
}

func (e *Engine) execUpdate(ctx *sim.Ctx, s *sqlparser.UpdateStmt, params []schema.Value, opts WriteOpts) error {
	t, err := e.cat.Table(s.Table)
	if err != nil {
		return err
	}
	bound, err := keyFromWhere(t, s.Where, params)
	if err != nil {
		return err
	}
	assign := schema.Row{}
	for _, a := range s.Set {
		if !t.HasColumn(a.Column) {
			return fmt.Errorf("%w: %s.%s", ErrUnknownColumn, s.Table, a.Column)
		}
		v, err := evalConst(a.Value, params)
		if err != nil {
			return err
		}
		assign[a.Column] = v
	}
	keyVals := make([]schema.Value, len(t.Key))
	for i, k := range t.Key {
		keyVals[i] = bound[k]
		if _, changed := assign[k]; changed {
			return fmt.Errorf("%w: cannot update key attribute %s.%s", ErrUnsupported, t.Name, k)
		}
	}
	return e.UpdateRow(ctx, t, keyVals, assign, opts)
}

// UpdateRow applies assignments to one row identified by key values,
// maintaining indexes. The read-before-write (it feeds index key
// computation) goes through the transaction overlay when one is present, so
// an update inside a transaction sees the transaction's own buffered
// writes; the base put and every index delete/put emit into one batch.
func (e *Engine) UpdateRow(ctx *sim.Ctx, t *TableInfo, keyVals []schema.Value, assign schema.Row, opts WriteOpts) error {
	old, found, err := e.GetRowVia(ctx, e.Reader(opts), t, opts.Read, keyVals...)
	if err != nil {
		return err
	}
	if !found {
		return nil // SQL UPDATE of a missing row affects zero rows
	}
	updated := old.Clone()
	for c, v := range assign {
		updated[c] = v
	}
	b := e.NewWriteBatch(opts)
	key := schema.EncodeKey(keyVals...)
	if err := b.Put(ctx, t.Name, key, StampCells(RowToCells(assign), opts.TS)); err != nil {
		return err
	}

	for _, idx := range t.Indexes {
		oldKey := IndexKey(t, idx, old)
		newKey := IndexKey(t, idx, updated)
		if oldKey != newKey {
			if err := b.Delete(ctx, idx.Name, oldKey, opts.TS); err != nil {
				return err
			}
			icells := StampCells(RowToCells(IndexRowContent(t, idx, updated)), opts.TS)
			if err := b.Put(ctx, idx.Name, newKey, icells); err != nil {
				return err
			}
			continue
		}
		if !IndexTouched(t, idx, assign) {
			continue // key-only index content unchanged
		}
		icells := StampCells(RowToCells(IndexRowContent(t, idx, assign)), opts.TS)
		if len(icells) == 0 {
			continue
		}
		if err := b.Put(ctx, idx.Name, newKey, icells); err != nil {
			return err
		}
	}
	return b.Flush(ctx)
}

func (e *Engine) execDelete(ctx *sim.Ctx, s *sqlparser.DeleteStmt, params []schema.Value, opts WriteOpts) error {
	t, err := e.cat.Table(s.Table)
	if err != nil {
		return err
	}
	bound, err := keyFromWhere(t, s.Where, params)
	if err != nil {
		return err
	}
	keyVals := make([]schema.Value, len(t.Key))
	for i, k := range t.Key {
		keyVals[i] = bound[k]
	}
	return e.DeleteRow(ctx, t, keyVals, opts)
}

// DeleteRow removes one row by key values, cleaning up index entries. The
// read-before-write consults the transaction overlay when one is present;
// the base tombstone and every index tombstone emit into one batch.
func (e *Engine) DeleteRow(ctx *sim.Ctx, t *TableInfo, keyVals []schema.Value, opts WriteOpts) error {
	old, found, err := e.GetRowVia(ctx, e.Reader(opts), t, opts.Read, keyVals...)
	if err != nil {
		return err
	}
	if !found {
		return nil
	}
	b := e.NewWriteBatch(opts)
	key := schema.EncodeKey(keyVals...)
	if err := b.Delete(ctx, t.Name, key, opts.TS); err != nil {
		return err
	}
	for _, idx := range t.Indexes {
		if err := b.Delete(ctx, idx.Name, IndexKey(t, idx, old), opts.TS); err != nil {
			return err
		}
	}
	return b.Flush(ctx)
}

// ScanAll reads every row of a table (used by view builders and tests).
func (e *Engine) ScanAll(ctx *sim.Ctx, table string, read hbase.ReadOpts) ([]schema.Row, error) {
	sc, err := e.client.Scan(ctx, table, hbase.ScanSpec{Read: read})
	if err != nil {
		return nil, err
	}
	var out []schema.Row
	for {
		r, ok := sc.Next(ctx)
		if !ok {
			return out, nil
		}
		out = append(out, CellsToRow(r))
	}
}
