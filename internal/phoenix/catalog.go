// Package phoenix is the SQL skin over the HBase-like store, playing the
// role Apache Phoenix plays in the paper (§II-D): it maps relations and
// covered indexes onto NoSQL tables via the baseline transformation, compiles
// SQL into scans, coordinates client-side join execution, and maintains
// indexes on writes. The Synergy system, the MVCC systems and the Baseline
// system all execute their workloads through this layer.
package phoenix

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"synergy/internal/hbase"
	"synergy/internal/schema"
)

// Errors reported by the SQL layer.
var (
	ErrUnknownTable    = errors.New("phoenix: unknown table")
	ErrUnknownColumn   = errors.New("phoenix: unknown column")
	ErrUnsupported     = errors.New("phoenix: unsupported statement")
	ErrKeyNotSpecified = errors.New("phoenix: write must specify every key attribute")
	ErrDirtyRead       = errors.New("phoenix: dirty row observed")
)

// DirtyQualifier is the marker column Synergy sets on view rows while a
// multi-row update is in flight (§VIII-B). Scans configured with dirty
// checking restart when they observe it.
const DirtyQualifier = "_dirty"

// TableInfo describes one physical NoSQL table known to the catalog: a base
// relation, a materialized view, or nothing (indexes are attached to their
// table's info).
type TableInfo struct {
	Name string
	// Cols lists stored attributes in declaration order.
	Cols []schema.Column
	// Key lists the row-key attributes in order: PK(R) for a base table,
	// PK(V) = key of the view's last relation for a view (Definition 5).
	Key []string
	// Indexes are the covered indexes on this table.
	Indexes []*IndexInfo
	// IsView marks materialized views (subject to dirty-marking).
	IsView bool
	// BaseRelations lists the constituent relations for a view, in path
	// order (root-most first); nil for base tables.
	BaseRelations []string

	colTypes map[string]schema.ColType
}

// IndexInfo describes an index: row key = On ++ table key. By default every
// table column is stored (covered), so reads never hit the base table
// (§II-A). KeyOnly indexes store just the key attributes — the shape of the
// maintenance indexes of §VII-C, which exist to locate view rows, not to
// answer queries.
type IndexInfo struct {
	Name    string
	On      []string
	KeyOnly bool
}

// Col returns the column type, with ok=false for unknown columns.
func (t *TableInfo) Col(name string) (schema.ColType, bool) {
	ct, ok := t.colTypes[name]
	return ct, ok
}

// HasColumn reports whether the table stores the column.
func (t *TableInfo) HasColumn(name string) bool {
	_, ok := t.colTypes[name]
	return ok
}

// ColumnNames lists stored attributes in order.
func (t *TableInfo) ColumnNames() []string {
	out := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		out[i] = c.Name
	}
	return out
}

// Catalog maps SQL names onto NoSQL tables (the baseline schema
// transformation of §II-D) and tracks views and indexes.
type Catalog struct {
	mu     sync.RWMutex
	hc     *hbase.HCluster
	tables map[string]*TableInfo
	order  []string
}

// NewCatalog returns an empty catalog over the store.
func NewCatalog(hc *hbase.HCluster) *Catalog {
	return &Catalog{hc: hc, tables: map[string]*TableInfo{}}
}

// Store exposes the underlying store.
func (c *Catalog) Store() *hbase.HCluster { return c.hc }

func buildInfo(name string, cols []schema.Column, key []string) *TableInfo {
	info := &TableInfo{Name: name, Cols: cols, Key: key, colTypes: map[string]schema.ColType{}}
	for _, col := range cols {
		info.colTypes[col.Name] = col.Type
	}
	for _, k := range key {
		if !info.HasColumn(k) {
			panic(fmt.Sprintf("phoenix: table %s key column %q not stored", name, k))
		}
	}
	return info
}

// RegisterRelation creates the NoSQL table for a relation: same attributes,
// row key = delimited concatenation of PK values, one column family (§II-D).
func (c *Catalog) RegisterRelation(r *schema.Relation, spec hbase.TableSpec) (*TableInfo, error) {
	return c.register(r.Name, r.Columns, r.PK, false, nil, spec)
}

// RegisterView creates the NoSQL table for a materialized view: attributes
// are the union of the constituent relations' attributes, the key is the key
// of the last relation in the view (Definition 5).
func (c *Catalog) RegisterView(name string, cols []schema.Column, key []string, baseRelations []string, spec hbase.TableSpec) (*TableInfo, error) {
	return c.register(name, cols, key, true, baseRelations, spec)
}

func (c *Catalog) register(name string, cols []schema.Column, key []string, isView bool, baseRels []string, spec hbase.TableSpec) (*TableInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[name]; dup {
		return nil, fmt.Errorf("phoenix: table %q already registered", name)
	}
	info := buildInfo(name, cols, key)
	info.IsView = isView
	info.BaseRelations = append([]string(nil), baseRels...)
	spec.Name = name
	if err := c.hc.CreateTable(spec); err != nil {
		return nil, err
	}
	c.tables[name] = info
	c.order = append(c.order, name)
	return info, nil
}

// RegisterIndex creates a covered index table named idx.Name on table: row
// key = idx.On ++ table key; all table columns stored (§II-D: an index
// becomes a relation in the NoSQL schema).
func (c *Catalog) RegisterIndex(table string, idx IndexInfo, spec hbase.TableSpec) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.tables[table]
	if t == nil {
		return fmt.Errorf("%w: %s", ErrUnknownTable, table)
	}
	for _, col := range idx.On {
		if !t.HasColumn(col) {
			return fmt.Errorf("%w: %s.%s", ErrUnknownColumn, table, col)
		}
	}
	for _, existing := range t.Indexes {
		if existing.Name == idx.Name {
			return fmt.Errorf("phoenix: index %q already registered", idx.Name)
		}
	}
	spec.Name = idx.Name
	if err := c.hc.CreateTable(spec); err != nil {
		return err
	}
	ix := idx
	t.Indexes = append(t.Indexes, &ix)
	return nil
}

// Table returns the named table's info, or an error.
func (c *Catalog) Table(name string) (*TableInfo, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t := c.tables[name]
	if t == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTable, name)
	}
	return t, nil
}

// Tables lists registered tables in registration order.
func (c *Catalog) Tables() []*TableInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*TableInfo, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, c.tables[n])
	}
	return out
}

// Views lists registered views, sorted by name.
func (c *Catalog) Views() []*TableInfo {
	var out []*TableInfo
	for _, t := range c.Tables() {
		if t.IsView {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// IndexKey builds the row key of an index entry for the given row.
func IndexKey(t *TableInfo, idx *IndexInfo, row schema.Row) string {
	vals := make([]schema.Value, 0, len(idx.On)+len(t.Key))
	for _, c := range idx.On {
		vals = append(vals, row[c])
	}
	for _, c := range t.Key {
		vals = append(vals, row[c])
	}
	return schema.EncodeKey(vals...)
}

// PrimaryKey builds the row key of a table row.
func PrimaryKey(t *TableInfo, row schema.Row) (string, error) {
	vals := make([]schema.Value, 0, len(t.Key))
	for _, c := range t.Key {
		v, ok := row[c]
		if !ok || v == nil {
			return "", fmt.Errorf("%w: %s.%s", ErrKeyNotSpecified, t.Name, c)
		}
		vals = append(vals, v)
	}
	return schema.EncodeKey(vals...), nil
}
