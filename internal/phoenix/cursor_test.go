package phoenix

import (
	"reflect"
	"testing"

	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

// streamShapes covers every execution shape the cursor path handles: the
// streaming-eligible single-binding scans (point, index, filter, PK prefix,
// bare LIMIT) and the blocking shapes that materialize internally and drain
// through the same cursor (joins, ORDER BY, GROUP BY, global aggregates,
// derived tables).
var streamShapes = []struct {
	name   string
	sql    string
	params []schema.Value
}{
	{"point", "SELECT * FROM Customer WHERE c_id = ?", []schema.Value{int64(3)}},
	{"index", "SELECT c_id, c_bal FROM Customer WHERE c_uname = ?", []schema.Value{"user07"}},
	{"filter-scan", "SELECT * FROM Customer WHERE c_bal > 80.0", nil},
	{"full-scan", "SELECT * FROM Orders", nil},
	{"projection", "SELECT o_id, o_total FROM Orders", nil},
	{"limit", "SELECT * FROM Orders LIMIT 7", nil},
	{"join", "SELECT * FROM Customer c, Orders o WHERE c.c_id = o.o_c_id AND c.c_uname = ?", []schema.Value{"user02"}},
	{"order-by", "SELECT o_id FROM Orders ORDER BY o_date DESC LIMIT 5", nil},
	{"group-by", "SELECT o_c_id, COUNT(*) AS n, SUM(o_total) AS tot FROM Orders GROUP BY o_c_id", nil},
	{"aggregate", "SELECT COUNT(*) AS n, MIN(o_total) AS lo, MAX(o_total) AS hi FROM Orders", nil},
}

// TestQueryStreamMatchesQuery checks cursor execution returns exactly the
// materialized result — same columns, same rows, same order — for every
// shape, and that Row and RawValue views of a streamed row agree.
func TestQueryStreamMatchesQuery(t *testing.T) {
	for _, shape := range streamShapes {
		t.Run(shape.name, func(t *testing.T) {
			e, ctx := testDB(t)
			sel := sqlparser.MustParse(shape.sql).(*sqlparser.SelectStmt)
			want, err := e.Query(ctx, sel, shape.params)
			if err != nil {
				t.Fatal(err)
			}
			cur, err := e.QueryStream(sim.NewCtx(), sel, shape.params)
			if err != nil {
				t.Fatal(err)
			}
			ctx2 := sim.NewCtx()
			got, err := DrainCursor(ctx2, cur)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Columns, want.Columns) {
				t.Fatalf("columns: cursor %v, query %v", got.Columns, want.Columns)
			}
			if !reflect.DeepEqual(got.Rows, want.Rows) {
				t.Fatalf("rows diverge:\ncursor %v\nquery  %v", got.Rows, want.Rows)
			}
		})
	}
}

// TestStreamCursorRawView checks the zero-copy RawCursor view decodes to the
// same values the Row map reports, column by column.
func TestStreamCursorRawView(t *testing.T) {
	e, ctx := testDB(t)
	sel := sqlparser.MustParse("SELECT * FROM Customer").(*sqlparser.SelectStmt)
	cur, err := e.QueryStream(ctx, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close(ctx)
	raw, ok := cur.(RawCursor)
	if !ok {
		t.Fatal("single-binding scan did not expose a RawCursor")
	}
	n := 0
	for cur.Next(ctx) {
		n++
		row := cur.Row()
		for i, col := range cur.Columns() {
			v := DecodeValue(raw.RawValue(i))
			if !reflect.DeepEqual(v, row[col]) {
				t.Fatalf("row %d col %s: raw %v, map %v", n, col, v, row[col])
			}
		}
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("streamed %d rows, want 10", n)
	}
}

// TestCursorEarlyClose abandons a streamed scan after one row and checks the
// engine stays healthy: Close is idempotent, Next after Close reports
// exhaustion, and a fresh query over the same table still sees every row
// (the scanner returned its pooled chunk without corrupting it).
func TestCursorEarlyClose(t *testing.T) {
	e, ctx := testDB(t)
	sel := sqlparser.MustParse("SELECT * FROM Orders").(*sqlparser.SelectStmt)
	cur, err := e.QueryStream(ctx, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next(ctx) {
		t.Fatal("no first row")
	}
	if err := cur.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := cur.Close(ctx); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if cur.Next(ctx) {
		t.Fatal("Next after Close returned a row")
	}
	rs, err := e.Query(ctx, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 30 {
		t.Fatalf("post-abandon scan saw %d rows, want 30", len(rs.Rows))
	}
}

// TestCursorLimitPushdown checks a bare LIMIT reaches the region scanner:
// the streamed scan must charge strictly less simulated work than the
// unlimited one, not trim client-side after a full drain.
func TestCursorLimitPushdown(t *testing.T) {
	e, _ := testDB(t)
	cost := func(sql string) sim.Micros {
		ctx := sim.NewCtx()
		sel := sqlparser.MustParse(sql).(*sqlparser.SelectStmt)
		cur, err := e.QueryStream(ctx, sel, nil)
		if err != nil {
			t.Fatal(err)
		}
		for cur.Next(ctx) {
		}
		if err := cur.Err(); err != nil {
			t.Fatal(err)
		}
		if err := cur.Close(ctx); err != nil {
			t.Fatal(err)
		}
		return ctx.Elapsed()
	}
	full := cost("SELECT * FROM Orders")
	limited := cost("SELECT * FROM Orders LIMIT 2")
	if limited >= full {
		t.Fatalf("LIMIT 2 cost %d >= full scan cost %d; limit not pushed down", limited, full)
	}
}

// TestWithCloseHook checks the hook fires exactly once with the cursor's
// terminal state, and that wrapping preserves the raw fast path.
func TestWithCloseHook(t *testing.T) {
	e, ctx := testDB(t)
	sel := sqlparser.MustParse("SELECT * FROM Customer").(*sqlparser.SelectStmt)
	inner, err := e.QueryStream(ctx, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	cur := WithClose(inner, func(ctx *sim.Ctx, c RowCursor) error {
		calls++
		if err := c.Err(); err != nil {
			t.Fatalf("hook saw cursor error %v", err)
		}
		return nil
	})
	if _, ok := cur.(RawCursor); !ok {
		t.Fatal("WithClose dropped the RawCursor fast path")
	}
	n := 0
	for cur.Next(ctx) {
		n++
	}
	if err := cur.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := cur.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("close hook ran %d times, want 1", calls)
	}
	if n != 10 {
		t.Fatalf("streamed %d rows, want 10", n)
	}
}
