package phoenix

import (
	"encoding/binary"
	"fmt"
	"math"

	"synergy/internal/hbase"
	"synergy/internal/schema"
)

// Value cell encoding: one type-tag byte followed by the payload. NULLs are
// stored as absent cells, as Phoenix does.
const (
	tagInt    = 'i'
	tagFloat  = 'f'
	tagString = 's'
)

// EncodeValue renders a typed value into cell bytes.
func EncodeValue(v schema.Value) []byte {
	switch x := v.(type) {
	case nil:
		return nil
	case int64:
		buf := make([]byte, 9)
		buf[0] = tagInt
		binary.BigEndian.PutUint64(buf[1:], uint64(x))
		return buf
	case int:
		return EncodeValue(int64(x))
	case float64:
		buf := make([]byte, 9)
		buf[0] = tagFloat
		binary.BigEndian.PutUint64(buf[1:], math.Float64bits(x))
		return buf
	case string:
		buf := make([]byte, 1+len(x))
		buf[0] = tagString
		copy(buf[1:], x)
		return buf
	default:
		panic(fmt.Sprintf("phoenix: unencodable value %T", v))
	}
}

// DecodeValue parses cell bytes back into a typed value.
func DecodeValue(b []byte) schema.Value {
	if len(b) == 0 {
		return nil
	}
	switch b[0] {
	case tagInt:
		return int64(binary.BigEndian.Uint64(b[1:]))
	case tagFloat:
		return math.Float64frombits(binary.BigEndian.Uint64(b[1:]))
	case tagString:
		return string(b[1:])
	default:
		panic(fmt.Sprintf("phoenix: bad value tag %q", b[0]))
	}
}

// RowToCells encodes a row's non-nil attributes as cells.
func RowToCells(row schema.Row) []hbase.Cell {
	cells := make([]hbase.Cell, 0, len(row))
	for col, v := range row {
		if v == nil {
			continue
		}
		cells = append(cells, hbase.Cell{Qualifier: col, Value: EncodeValue(v)})
	}
	return cells
}

// CellsToRow decodes a stored row back into typed attributes. Marker columns
// (leading underscore) are skipped. The pair slice arrives sorted by
// qualifier, so this is a single ordered pass.
func CellsToRow(res hbase.RowResult) schema.Row {
	row := make(schema.Row, len(res.Cells))
	for i := range res.Cells {
		q := res.Cells[i].Qualifier
		if len(q) > 0 && q[0] == '_' {
			continue
		}
		row[q] = DecodeValue(res.Cells[i].Value)
	}
	return row
}

// CellKind classifies an encoded cell value by its type tag, letting wire
// encoders branch on the stored type without decoding (and, for strings,
// without allocating).
type CellKind byte

// Cell kinds. CellNull covers empty (absent) values.
const (
	CellNull   CellKind = 0
	CellInt    CellKind = tagInt
	CellFloat  CellKind = tagFloat
	CellString CellKind = tagString
)

// RawCellKind reports the kind of an encoded cell value.
func RawCellKind(b []byte) CellKind {
	if len(b) == 0 {
		return CellNull
	}
	switch b[0] {
	case tagInt:
		return CellInt
	case tagFloat:
		return CellFloat
	case tagString:
		return CellString
	default:
		return CellNull
	}
}

// RawCellInt decodes an int-tagged cell value. Callers must have checked
// RawCellKind.
func RawCellInt(b []byte) int64 { return int64(binary.BigEndian.Uint64(b[1:])) }

// RawCellFloat decodes a float-tagged cell value. Callers must have checked
// RawCellKind.
func RawCellFloat(b []byte) float64 { return math.Float64frombits(binary.BigEndian.Uint64(b[1:])) }

// RawCellBytes returns a string-tagged cell value's payload without copying.
// The bytes are store-owned and immutable; callers must not modify them.
func RawCellBytes(b []byte) []byte { return b[1:] }

// IsDirty reports whether a stored row carries the Synergy dirty marker.
func IsDirty(res hbase.RowResult) bool {
	v := res.Cells.Get(DirtyQualifier)
	return len(v) > 0 && v[len(v)-1] == '1'
}
