package tpcw

import (
	"fmt"
	"sync/atomic"

	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/tuning"
)

// Subjects are the 24 item subjects of the TPC-W specification.
var Subjects = []string{
	"ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN", "COMPUTERS", "COOKING",
	"HEALTH", "HISTORY", "HOME", "HUMOR", "LITERATURE", "MYSTERY",
	"NON-FICTION", "PARENTING", "POLITICS", "REFERENCE", "RELIGION",
	"ROMANCE", "SELF-HELP", "SCIENCE-NATURE", "SCIENCE-FICTION", "SPORTS",
	"YOUTH", "TRAVEL",
}

// Cardinalities scale with NUM_CUST per §IX-D1: NUM_ITEMS = 10 x NUM_CUST
// and the Customer:Orders ratio is 10 (the paper raises it from 0.9).
type Cardinalities struct {
	Customers int
	Items     int
	Authors   int
	Addresses int
	Orders    int
	Countries int
	Carts     int
}

// CardinalitiesFor derives the table sizes for a customer count.
func CardinalitiesFor(numCust int) Cardinalities {
	return Cardinalities{
		Customers: numCust,
		Items:     10 * numCust,
		Authors:   10 * numCust / 4, // TPC-W: NUM_ITEMS/4 authors
		Addresses: 2 * numCust,
		Orders:    10 * numCust,
		Countries: 92,
		Carts:     numCust/5 + 1,
	}
}

// Data is a generated database plus the id spaces the workload draws
// parameters from.
type Data struct {
	Card   Cardinalities
	Tables map[string][]schema.Row
	// CartLines samples existing (sc_id, i_id) pairs for W8/W12.
	CartLines [][2]int64
	// seq hands out fresh ids for insert statements.
	seqOrder, seqCust, seqAddr, seqCart, seqOL atomic.Int64
	// Uname returns the deterministic user name of a customer id.
}

// Uname is the deterministic c_uname of a customer id.
func Uname(cID int64) string { return fmt.Sprintf("user%08d", cID) }

// GenerateCustomers builds just the Customer table's rows for a customer
// count, byte-identical to what Generate(numCust, seed) would put there:
// every table's value stream derives independently from the seed, so one
// table can be produced without paying for the rest of the database. The
// large-scan bench uses it to load a single wide table of controllable size.
func GenerateCustomers(numCust int, seed int64) []schema.Row {
	return generateCustomers(sim.NewRNG(seed), CardinalitiesFor(numCust))
}

func generateCustomers(rng *sim.RNG, card Cardinalities) []schema.Row {
	cg := rng.Derive("customer")
	customers := make([]schema.Row, 0, card.Customers)
	for i := 1; i <= card.Customers; i++ {
		customers = append(customers, schema.Row{
			"c_id": int64(i), "c_uname": Uname(int64(i)),
			"c_passwd": cg.String(8, 8),
			"c_fname":  cg.String(5, 12), "c_lname": cg.String(5, 14),
			"c_addr_id": int64(cg.IntRange(1, card.Addresses)),
			"c_phone":   cg.String(10, 12), "c_email": cg.String(12, 20),
			"c_since": int64(cg.IntRange(10000, 19000)), "c_last_login": int64(cg.IntRange(19000, 20000)),
			"c_login": int64(cg.IntRange(0, 100)), "c_expiration": int64(cg.IntRange(20000, 21000)),
			"c_discount": float64(cg.IntRange(0, 50)) / 100,
			"c_balance":  float64(cg.IntRange(-100, 1000)), "c_ytd_pmt": float64(cg.IntRange(0, 10000)) / 10,
			"c_birthdate": int64(cg.IntRange(1920, 2005)), "c_data": cg.String(60, 120),
		})
	}
	return customers
}

// Generate builds the database deterministically from a seed.
func Generate(numCust int, seed int64) *Data {
	card := CardinalitiesFor(numCust)
	rng := sim.NewRNG(seed)
	d := &Data{Card: card, Tables: map[string][]schema.Row{}}

	countries := make([]schema.Row, 0, card.Countries)
	for i := 1; i <= card.Countries; i++ {
		countries = append(countries, schema.Row{
			"co_id":       int64(i),
			"co_name":     fmt.Sprintf("country-%02d", i),
			"co_exchange": 1 + rng.Derive("co").Float64(),
			"co_currency": "CUR",
		})
	}
	d.Tables["Country"] = countries

	ag := rng.Derive("author")
	authors := make([]schema.Row, 0, card.Authors)
	for i := 1; i <= card.Authors; i++ {
		authors = append(authors, schema.Row{
			"a_id":    int64(i),
			"a_fname": ag.String(6, 12),
			"a_lname": ag.String(6, 14),
			"a_mname": ag.String(1, 2),
			"a_dob":   int64(ag.IntRange(1900, 1995)),
			"a_bio":   ag.String(60, 120),
		})
	}
	d.Tables["Author"] = authors

	adg := rng.Derive("address")
	addresses := make([]schema.Row, 0, card.Addresses)
	for i := 1; i <= card.Addresses; i++ {
		addresses = append(addresses, schema.Row{
			"addr_id":      int64(i),
			"addr_street1": adg.String(12, 24),
			"addr_street2": adg.String(0, 12),
			"addr_city":    adg.String(6, 14),
			"addr_state":   adg.String(2, 2),
			"addr_zip":     adg.String(5, 5),
			"addr_co_id":   int64(adg.IntRange(1, card.Countries)),
		})
	}
	d.Tables["Address"] = addresses

	d.Tables["Customer"] = generateCustomers(rng, card)

	ig := rng.Derive("item")
	items := make([]schema.Row, 0, card.Items)
	for i := 1; i <= card.Items; i++ {
		items = append(items, schema.Row{
			"i_id": int64(i), "i_title": ig.String(10, 30),
			"i_a_id":      int64(ig.IntRange(1, card.Authors)),
			"i_pub_date":  int64(ig.IntRange(8000, 20000)),
			"i_publisher": ig.String(8, 20), "i_subject": Subjects[ig.Intn(len(Subjects))],
			"i_desc":     ig.String(50, 100),
			"i_related1": int64(ig.IntRange(1, card.Items)), "i_related2": int64(ig.IntRange(1, card.Items)),
			"i_related3": int64(ig.IntRange(1, card.Items)), "i_related4": int64(ig.IntRange(1, card.Items)),
			"i_related5":  int64(ig.IntRange(1, card.Items)),
			"i_thumbnail": ig.String(20, 30), "i_image": ig.String(20, 30),
			"i_srp": float64(ig.IntRange(100, 9999)) / 100, "i_cost": float64(ig.IntRange(50, 9000)) / 100,
			"i_avail": int64(ig.IntRange(19000, 20000)), "i_stock": int64(ig.IntRange(10, 30)),
			"i_isbn": ig.String(13, 13), "i_page": int64(ig.IntRange(20, 9999)),
			"i_backing": "HARDBACK", "i_dimensions": ig.String(10, 20),
		})
	}
	d.Tables["Item"] = items

	og := rng.Derive("orders")
	orders := make([]schema.Row, 0, card.Orders)
	orderLines := make([]schema.Row, 0, card.Orders*3)
	ccx := make([]schema.Row, 0, card.Orders)
	for o := 1; o <= card.Orders; o++ {
		cID := int64(og.IntRange(1, card.Customers))
		sub := float64(og.IntRange(1000, 99999)) / 100
		orders = append(orders, schema.Row{
			"o_id": int64(o), "o_c_id": cID,
			"o_date": int64(og.IntRange(19000, 20000)), "o_sub_total": sub,
			"o_tax": sub * 0.0825, "o_total": sub * 1.0825,
			"o_ship_type": "AIR", "o_ship_date": int64(og.IntRange(19000, 20100)),
			"o_bill_addr_id": int64(og.IntRange(1, card.Addresses)),
			"o_ship_addr_id": int64(og.IntRange(1, card.Addresses)),
			"o_status":       "SHIPPED",
		})
		nLines := og.IntRange(1, 5)
		for l := 1; l <= nLines; l++ {
			orderLines = append(orderLines, schema.Row{
				"ol_o_id": int64(o), "ol_id": int64(l),
				"ol_i_id":     int64(og.IntRange(1, card.Items)),
				"ol_qty":      int64(og.IntRange(1, 10)),
				"ol_discount": float64(og.IntRange(0, 30)) / 100,
				"ol_comments": og.String(20, 50),
			})
		}
		ccx = append(ccx, schema.Row{
			"cx_o_id": int64(o), "cx_type": "VISA",
			"cx_num": og.String(16, 16), "cx_name": og.String(10, 25),
			"cx_expire": int64(og.IntRange(20000, 22000)), "cx_auth_id": og.String(15, 15),
			"cx_xact_amt": sub * 1.0825, "cx_xact_date": int64(og.IntRange(19000, 20000)),
			"cx_co_id": int64(og.IntRange(1, card.Countries)),
		})
	}
	d.Tables["Orders"] = orders
	d.Tables["Order_line"] = orderLines
	d.Tables["CC_Xacts"] = ccx

	sg := rng.Derive("cart")
	carts := make([]schema.Row, 0, card.Carts)
	var cartLines []schema.Row
	for c := 1; c <= card.Carts; c++ {
		carts = append(carts, schema.Row{"sc_id": int64(c), "sc_time": int64(sg.IntRange(19000, 20000))})
		n := sg.IntRange(1, 4)
		seen := map[int64]bool{}
		for l := 0; l < n; l++ {
			iID := int64(sg.IntRange(1, card.Items))
			if seen[iID] {
				continue
			}
			seen[iID] = true
			cartLines = append(cartLines, schema.Row{
				"scl_sc_id": int64(c), "scl_i_id": iID, "scl_qty": int64(sg.IntRange(1, 5)),
			})
			if len(d.CartLines) < 1000 {
				d.CartLines = append(d.CartLines, [2]int64{int64(c), iID})
			}
		}
	}
	d.Tables["Shopping_cart"] = carts
	d.Tables["Shopping_cart_line"] = cartLines

	d.seqOrder.Store(int64(card.Orders))
	d.seqCust.Store(int64(card.Customers))
	d.seqAddr.Store(int64(card.Addresses))
	d.seqCart.Store(int64(card.Carts))
	return d
}

// Fresh id generators for insert statements.
func (d *Data) NextOrderID() int64    { return d.seqOrder.Add(1) }
func (d *Data) NextCustomerID() int64 { return d.seqCust.Add(1) }
func (d *Data) NextAddressID() int64  { return d.seqAddr.Add(1) }
func (d *Data) NextCartID() int64     { return d.seqCart.Add(1) }

// Stats summarizes the generated database for the tuning advisor.
func (d *Data) Stats() tuning.Stats {
	st := tuning.Stats{Rows: map[string]int64{}, AvgRowBytes: map[string]int64{}}
	for table, rows := range d.Tables {
		st.Rows[table] = int64(len(rows))
		if len(rows) == 0 {
			continue
		}
		var bytes int64
		sample := rows
		if len(sample) > 100 {
			sample = sample[:100]
		}
		for _, r := range sample {
			for k, v := range r {
				bytes += int64(len(k))
				if s, ok := v.(string); ok {
					bytes += int64(len(s))
				} else {
					bytes += 8
				}
			}
		}
		st.AvgRowBytes[table] = bytes / int64(len(sample))
	}
	return st
}
