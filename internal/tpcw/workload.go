package tpcw

import (
	"synergy/internal/schema"
	"synergy/internal/sim"
)

// StmtKind classifies workload statements.
type StmtKind int

const (
	KindJoin StmtKind = iota
	KindWrite
	KindRead
)

// Stmt is one statement of the extracted TPC-W workload: its SQL template
// and a parameter generator drawing valid values from the generated data.
type Stmt struct {
	ID     string
	SQL    string
	Kind   StmtKind
	Params func(d *Data, rng *sim.RNG) []schema.Value
}

func randCust(d *Data, rng *sim.RNG) int64  { return int64(rng.IntRange(1, d.Card.Customers)) }
func randItem(d *Data, rng *sim.RNG) int64  { return int64(rng.IntRange(1, d.Card.Items)) }
func randOrder(d *Data, rng *sim.RNG) int64 { return int64(rng.IntRange(1, d.Card.Orders)) }
func randCart(d *Data, rng *sim.RNG) int64  { return int64(rng.IntRange(1, d.Card.Carts)) }
func randSubject(rng *sim.RNG) string       { return Subjects[rng.Intn(len(Subjects))] }

// JoinQueries returns Q1-Q11 per Figure 15.
func JoinQueries() []Stmt {
	return []Stmt{
		{
			ID: "Q1", Kind: KindJoin,
			// Item x Order_line, filter ol_o_id (order display).
			SQL: `SELECT * FROM Item i, Order_line ol WHERE ol.ol_i_id = i.i_id AND ol.ol_o_id = ?`,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				return []schema.Value{randOrder(d, rng)}
			},
		},
		{
			ID: "Q2", Kind: KindJoin,
			// Customer x Orders, filter c_uname, most recent order.
			SQL: `SELECT * FROM Customer c, Orders o WHERE c.c_id = o.o_c_id AND c.c_uname = ?
			      ORDER BY o.o_date DESC, o.o_id DESC LIMIT 1`,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				return []schema.Value{Uname(randCust(d, rng))}
			},
		},
		{
			ID: "Q3", Kind: KindJoin,
			// Customer x Address x Country, filter c_uname.
			SQL: `SELECT * FROM Customer c, Address a, Country co
			      WHERE c.c_addr_id = a.addr_id AND a.addr_co_id = co.co_id AND c.c_uname = ?`,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				return []schema.Value{Uname(randCust(d, rng))}
			},
		},
		{
			ID: "Q4", Kind: KindJoin,
			// Author x Item, filter i_subject, order by title.
			SQL: `SELECT * FROM Author a, Item i WHERE a.a_id = i.i_a_id AND i.i_subject = ?
			      ORDER BY i.i_title LIMIT 50`,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				return []schema.Value{randSubject(rng)}
			},
		},
		{
			ID: "Q5", Kind: KindJoin,
			// Author x Item, filter i_subject, newest first.
			SQL: `SELECT * FROM Author a, Item i WHERE a.a_id = i.i_a_id AND i.i_subject = ?
			      ORDER BY i.i_pub_date DESC, i.i_title LIMIT 50`,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				return []schema.Value{randSubject(rng)}
			},
		},
		{
			ID: "Q6", Kind: KindJoin,
			// Author x Item, filter i_id (book detail page).
			SQL: `SELECT * FROM Author a, Item i WHERE a.a_id = i.i_a_id AND i.i_id = ?`,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				return []schema.Value{randItem(d, rng)}
			},
		},
		{
			ID: "Q7", Kind: KindJoin,
			// Order display: orders x customer x two addresses x two
			// countries, filter o_id.
			SQL: `SELECT * FROM Orders o, Customer c, Address ship_addr, Address bill_addr,
			      Country ship_co, Country bill_co
			      WHERE o.o_c_id = c.c_id
			      AND o.o_ship_addr_id = ship_addr.addr_id AND ship_addr.addr_co_id = ship_co.co_id
			      AND o.o_bill_addr_id = bill_addr.addr_id AND bill_addr.addr_co_id = bill_co.co_id
			      AND o.o_id = ?`,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				return []schema.Value{randOrder(d, rng)}
			},
		},
		{
			ID: "Q8", Kind: KindJoin,
			// Item x Shopping_cart_line, filter scl_sc_id (cart view).
			SQL: `SELECT * FROM Item i, Shopping_cart_line scl
			      WHERE scl.scl_i_id = i.i_id AND scl.scl_sc_id = ?`,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				return []schema.Value{randCart(d, rng)}
			},
		},
		{
			ID: "Q9", Kind: KindJoin,
			// Item self-join on related items (not a key/foreign-key
			// join: no view applies, and VoltDB cannot partition for
			// it).
			SQL: `SELECT J.i_id, J.i_title FROM Item I, Item J
			      WHERE I.i_related1 = J.i_id AND I.i_id = ?`,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				return []schema.Value{randItem(d, rng)}
			},
		},
		{
			ID: "Q10", Kind: KindJoin,
			// Best sellers: author x item x order_line restricted to
			// the 3333 most recent orders.
			SQL: `SELECT i.i_id, i.i_title, a.a_fname, a.a_lname, SUM(ol.ol_qty) AS qty
			      FROM Author a, Item i, Order_line ol,
			      (SELECT o_id FROM Orders ORDER BY o_date DESC LIMIT 3333) t
			      WHERE a.a_id = i.i_a_id AND ol.ol_i_id = i.i_id AND ol.ol_o_id = t.o_id
			      AND i.i_subject = ?
			      GROUP BY i.i_id ORDER BY qty DESC LIMIT 50`,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				return []schema.Value{randSubject(rng)}
			},
		},
		{
			ID: "Q11", Kind: KindJoin,
			// Also-bought: order lines co-occurring with an item in
			// recent orders.
			SQL: `SELECT ol2.ol_i_id, SUM(ol2.ol_qty) AS qty
			      FROM Order_line ol, Order_line ol2,
			      (SELECT o_id FROM Orders ORDER BY o_date DESC LIMIT 3333) t
			      WHERE ol.ol_i_id = ? AND ol.ol_o_id = t.o_id
			      AND ol2.ol_o_id = ol.ol_o_id AND ol2.ol_i_id <> ?
			      GROUP BY ol2.ol_i_id ORDER BY qty DESC LIMIT 5`,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				i := randItem(d, rng)
				return []schema.Value{i, i}
			},
		},
	}
}

// WriteStatements returns W1-W13 per Figure 16. The multi-row cart-clearing
// DELETE is excluded exactly as in §IX-D1.
func WriteStatements() []Stmt {
	return []Stmt{
		{
			ID: "W1", Kind: KindWrite, // Insert Orders
			SQL: `INSERT INTO Orders (o_id, o_c_id, o_date, o_sub_total, o_tax, o_total,
			      o_ship_type, o_ship_date, o_bill_addr_id, o_ship_addr_id, o_status)
			      VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)`,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				sub := float64(rng.IntRange(1000, 99999)) / 100
				return []schema.Value{
					d.NextOrderID(), randCust(d, rng), int64(rng.IntRange(19000, 20000)),
					sub, sub * 0.0825, sub * 1.0825, "AIR", int64(rng.IntRange(19000, 20100)),
					int64(rng.IntRange(1, d.Card.Addresses)), int64(rng.IntRange(1, d.Card.Addresses)),
					"PENDING",
				}
			},
		},
		{
			ID: "W2", Kind: KindWrite, // Insert CC_Xacts
			SQL: `INSERT INTO CC_Xacts (cx_o_id, cx_type, cx_num, cx_name, cx_expire,
			      cx_auth_id, cx_xact_amt, cx_xact_date, cx_co_id)
			      VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)`,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				return []schema.Value{
					randOrder(d, rng), "VISA", rng.String(16, 16), rng.String(10, 25),
					int64(rng.IntRange(20000, 22000)), rng.String(15, 15),
					float64(rng.IntRange(1000, 99999)) / 100, int64(rng.IntRange(19000, 20000)),
					int64(rng.IntRange(1, d.Card.Countries)),
				}
			},
		},
		{
			ID: "W3", Kind: KindWrite, // Insert Order_line
			SQL: `INSERT INTO Order_line (ol_o_id, ol_id, ol_i_id, ol_qty, ol_discount, ol_comments)
			      VALUES (?, ?, ?, ?, ?, ?)`,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				return []schema.Value{
					randOrder(d, rng), d.seqOL.Add(1) + 100, randItem(d, rng),
					int64(rng.IntRange(1, 10)), float64(rng.IntRange(0, 30)) / 100, rng.String(20, 50),
				}
			},
		},
		{
			ID: "W4", Kind: KindWrite, // Insert Customer
			SQL: `INSERT INTO Customer (c_id, c_uname, c_passwd, c_fname, c_lname, c_addr_id,
			      c_phone, c_email, c_since, c_last_login, c_login, c_expiration,
			      c_discount, c_balance, c_ytd_pmt, c_birthdate, c_data)
			      VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)`,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				id := d.NextCustomerID()
				return []schema.Value{
					id, Uname(id), rng.String(8, 8), rng.String(5, 12), rng.String(5, 14),
					int64(rng.IntRange(1, d.Card.Addresses)), rng.String(10, 12), rng.String(12, 20),
					int64(19500), int64(19600), int64(0), int64(21000),
					0.1, 0.0, 0.0, int64(1980), rng.String(60, 120),
				}
			},
		},
		{
			ID: "W5", Kind: KindWrite, // Insert Address
			SQL: `INSERT INTO Address (addr_id, addr_street1, addr_street2, addr_city,
			      addr_state, addr_zip, addr_co_id) VALUES (?, ?, ?, ?, ?, ?, ?)`,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				return []schema.Value{
					d.NextAddressID(), rng.String(12, 24), rng.String(0, 12), rng.String(6, 14),
					rng.String(2, 2), rng.String(5, 5), int64(rng.IntRange(1, d.Card.Countries)),
				}
			},
		},
		{
			ID:  "W6",
			SQL: `INSERT INTO Shopping_cart (sc_id, sc_time) VALUES (?, ?)`, Kind: KindWrite,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				return []schema.Value{d.NextCartID(), int64(rng.IntRange(19000, 20000))}
			},
		},
		{
			ID:  "W7",
			SQL: `INSERT INTO Shopping_cart_line (scl_sc_id, scl_i_id, scl_qty) VALUES (?, ?, ?)`, Kind: KindWrite,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				return []schema.Value{randCart(d, rng), randItem(d, rng), int64(rng.IntRange(1, 5))}
			},
		},
		{
			ID:  "W8",
			SQL: `DELETE FROM Shopping_cart_line WHERE scl_sc_id = ? AND scl_i_id = ?`, Kind: KindWrite,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				line := d.CartLines[rng.Intn(len(d.CartLines))]
				return []schema.Value{line[0], line[1]}
			},
		},
		{
			ID:  "W9", // Update Item1: stock after a purchase
			SQL: `UPDATE Item SET i_stock = ? WHERE i_id = ?`, Kind: KindWrite,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				return []schema.Value{int64(rng.IntRange(10, 30)), randItem(d, rng)}
			},
		},
		{
			ID: "W10", // Update Item2: admin update
			SQL: `UPDATE Item SET i_cost = ?, i_image = ?, i_thumbnail = ?, i_pub_date = ?
			      WHERE i_id = ?`, Kind: KindWrite,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				return []schema.Value{
					float64(rng.IntRange(50, 9000)) / 100, rng.String(20, 30), rng.String(20, 30),
					int64(rng.IntRange(19000, 20000)), randItem(d, rng),
				}
			},
		},
		{
			ID:  "W11",
			SQL: `UPDATE Shopping_cart SET sc_time = ? WHERE sc_id = ?`, Kind: KindWrite,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				return []schema.Value{int64(rng.IntRange(19000, 20000)), randCart(d, rng)}
			},
		},
		{
			ID:  "W12",
			SQL: `UPDATE Shopping_cart_line SET scl_qty = ? WHERE scl_sc_id = ? AND scl_i_id = ?`, Kind: KindWrite,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				line := d.CartLines[rng.Intn(len(d.CartLines))]
				return []schema.Value{int64(rng.IntRange(1, 9)), line[0], line[1]}
			},
		},
		{
			ID: "W13", // Update Customer (buy confirm)
			SQL: `UPDATE Customer SET c_balance = ?, c_ytd_pmt = ?, c_last_login = ?, c_login = ?
			      WHERE c_id = ?`, Kind: KindWrite,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				return []schema.Value{
					float64(rng.IntRange(-100, 1000)), float64(rng.IntRange(0, 10000)) / 10,
					int64(rng.IntRange(19000, 20000)), int64(rng.IntRange(0, 100)), randCust(d, rng),
				}
			},
		},
	}
}

// PointReads returns the non-join read statements the servlets issue.
func PointReads() []Stmt {
	return []Stmt{
		{
			ID:  "R1",
			SQL: `SELECT * FROM Item WHERE i_id = ?`, Kind: KindRead,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				return []schema.Value{randItem(d, rng)}
			},
		},
		{
			ID:  "R2",
			SQL: `SELECT * FROM Customer WHERE c_uname = ?`, Kind: KindRead,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				return []schema.Value{Uname(randCust(d, rng))}
			},
		},
		{
			ID:  "R3",
			SQL: `SELECT * FROM Shopping_cart_line WHERE scl_sc_id = ?`, Kind: KindRead,
			Params: func(d *Data, rng *sim.RNG) []schema.Value {
				return []schema.Value{randCart(d, rng)}
			},
		},
		{
			ID:     "R4",
			SQL:    `SELECT co_id, co_name FROM Country`,
			Kind:   KindRead,
			Params: func(d *Data, rng *sim.RNG) []schema.Value { return nil },
		},
	}
}

// AllStatements is the full extracted statement set (§IX-D1: "extracted set
// of SQL statements represents our workload").
func AllStatements() []Stmt {
	var out []Stmt
	out = append(out, JoinQueries()...)
	out = append(out, WriteStatements()...)
	out = append(out, PointReads()...)
	return out
}

// WorkloadSQL returns every statement's SQL, the input to the Synergy design
// pipeline.
func WorkloadSQL() []string {
	var out []string
	for _, s := range AllStatements() {
		out = append(out, s.SQL)
	}
	return out
}

// StatementByID finds a statement.
func StatementByID(id string) (Stmt, bool) {
	for _, s := range AllStatements() {
		if s.ID == id {
			return s, true
		}
	}
	return Stmt{}, false
}
