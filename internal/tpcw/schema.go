// Package tpcw implements the TPC-W transactional web benchmark as the
// paper's evaluation uses it (§IX-D1): the relational schema, a
// deterministic data generator with the paper's cardinalities (NUM_ITEMS =
// 10 x NUM_CUST, Customer:Orders = 1:10), the extracted SQL statement set —
// join queries Q1-Q11 (Figure 15), write statements W1-W13 (Figure 16) and
// the point reads the servlets issue — plus the Customer/Order/Order_line
// micro-benchmark of §IX-B (Figures 8 and 9).
package tpcw

import (
	"synergy/internal/newsql"
	"synergy/internal/schema"
	"synergy/internal/synergy"
)

// Roots is Q_TPC-W = {Author, Customer, Country} (§IX-D2).
func Roots() []string { return []string{"Author", "Customer", "Country"} }

// Schema builds the TPC-W relational schema. Attribute names follow the
// benchmark specification; i_related1..5 are intentionally NOT declared as
// foreign keys (they would make the schema graph cyclic; the paper assumes
// acyclic schemas, §V).
func Schema() *schema.Schema {
	s := schema.New()
	s.AddRelation(&schema.Relation{
		Name: "Country",
		Columns: []schema.Column{
			{Name: "co_id", Type: schema.TInt},
			{Name: "co_name", Type: schema.TString},
			{Name: "co_exchange", Type: schema.TFloat},
			{Name: "co_currency", Type: schema.TString},
		},
		PK: []string{"co_id"},
	})
	s.AddRelation(&schema.Relation{
		Name: "Author",
		Columns: []schema.Column{
			{Name: "a_id", Type: schema.TInt},
			{Name: "a_fname", Type: schema.TString},
			{Name: "a_lname", Type: schema.TString},
			{Name: "a_mname", Type: schema.TString},
			{Name: "a_dob", Type: schema.TInt},
			{Name: "a_bio", Type: schema.TString},
		},
		PK: []string{"a_id"},
	})
	s.AddRelation(&schema.Relation{
		Name: "Address",
		Columns: []schema.Column{
			{Name: "addr_id", Type: schema.TInt},
			{Name: "addr_street1", Type: schema.TString},
			{Name: "addr_street2", Type: schema.TString},
			{Name: "addr_city", Type: schema.TString},
			{Name: "addr_state", Type: schema.TString},
			{Name: "addr_zip", Type: schema.TString},
			{Name: "addr_co_id", Type: schema.TInt},
		},
		PK:  []string{"addr_id"},
		FKs: []schema.ForeignKey{{Cols: []string{"addr_co_id"}, RefTable: "Country"}},
	})
	s.AddRelation(&schema.Relation{
		Name: "Customer",
		Columns: []schema.Column{
			{Name: "c_id", Type: schema.TInt},
			{Name: "c_uname", Type: schema.TString},
			{Name: "c_passwd", Type: schema.TString},
			{Name: "c_fname", Type: schema.TString},
			{Name: "c_lname", Type: schema.TString},
			{Name: "c_addr_id", Type: schema.TInt},
			{Name: "c_phone", Type: schema.TString},
			{Name: "c_email", Type: schema.TString},
			{Name: "c_since", Type: schema.TInt},
			{Name: "c_last_login", Type: schema.TInt},
			{Name: "c_login", Type: schema.TInt},
			{Name: "c_expiration", Type: schema.TInt},
			{Name: "c_discount", Type: schema.TFloat},
			{Name: "c_balance", Type: schema.TFloat},
			{Name: "c_ytd_pmt", Type: schema.TFloat},
			{Name: "c_birthdate", Type: schema.TInt},
			{Name: "c_data", Type: schema.TString},
		},
		PK:  []string{"c_id"},
		FKs: []schema.ForeignKey{{Cols: []string{"c_addr_id"}, RefTable: "Address"}},
	})
	s.AddRelation(&schema.Relation{
		Name: "Item",
		Columns: []schema.Column{
			{Name: "i_id", Type: schema.TInt},
			{Name: "i_title", Type: schema.TString},
			{Name: "i_a_id", Type: schema.TInt},
			{Name: "i_pub_date", Type: schema.TInt},
			{Name: "i_publisher", Type: schema.TString},
			{Name: "i_subject", Type: schema.TString},
			{Name: "i_desc", Type: schema.TString},
			{Name: "i_related1", Type: schema.TInt},
			{Name: "i_related2", Type: schema.TInt},
			{Name: "i_related3", Type: schema.TInt},
			{Name: "i_related4", Type: schema.TInt},
			{Name: "i_related5", Type: schema.TInt},
			{Name: "i_thumbnail", Type: schema.TString},
			{Name: "i_image", Type: schema.TString},
			{Name: "i_srp", Type: schema.TFloat},
			{Name: "i_cost", Type: schema.TFloat},
			{Name: "i_avail", Type: schema.TInt},
			{Name: "i_stock", Type: schema.TInt},
			{Name: "i_isbn", Type: schema.TString},
			{Name: "i_page", Type: schema.TInt},
			{Name: "i_backing", Type: schema.TString},
			{Name: "i_dimensions", Type: schema.TString},
		},
		PK:  []string{"i_id"},
		FKs: []schema.ForeignKey{{Cols: []string{"i_a_id"}, RefTable: "Author"}},
	})
	s.AddRelation(&schema.Relation{
		Name: "Orders",
		Columns: []schema.Column{
			{Name: "o_id", Type: schema.TInt},
			{Name: "o_c_id", Type: schema.TInt},
			{Name: "o_date", Type: schema.TInt},
			{Name: "o_sub_total", Type: schema.TFloat},
			{Name: "o_tax", Type: schema.TFloat},
			{Name: "o_total", Type: schema.TFloat},
			{Name: "o_ship_type", Type: schema.TString},
			{Name: "o_ship_date", Type: schema.TInt},
			{Name: "o_bill_addr_id", Type: schema.TInt},
			{Name: "o_ship_addr_id", Type: schema.TInt},
			{Name: "o_status", Type: schema.TString},
		},
		PK: []string{"o_id"},
		FKs: []schema.ForeignKey{
			{Cols: []string{"o_c_id"}, RefTable: "Customer"},
			{Cols: []string{"o_bill_addr_id"}, RefTable: "Address"},
			{Cols: []string{"o_ship_addr_id"}, RefTable: "Address"},
		},
	})
	s.AddRelation(&schema.Relation{
		Name: "Order_line",
		Columns: []schema.Column{
			{Name: "ol_o_id", Type: schema.TInt},
			{Name: "ol_id", Type: schema.TInt},
			{Name: "ol_i_id", Type: schema.TInt},
			{Name: "ol_qty", Type: schema.TInt},
			{Name: "ol_discount", Type: schema.TFloat},
			{Name: "ol_comments", Type: schema.TString},
		},
		PK: []string{"ol_o_id", "ol_id"},
		FKs: []schema.ForeignKey{
			{Cols: []string{"ol_o_id"}, RefTable: "Orders"},
			{Cols: []string{"ol_i_id"}, RefTable: "Item"},
		},
	})
	s.AddRelation(&schema.Relation{
		Name: "CC_Xacts",
		Columns: []schema.Column{
			{Name: "cx_o_id", Type: schema.TInt},
			{Name: "cx_type", Type: schema.TString},
			{Name: "cx_num", Type: schema.TString},
			{Name: "cx_name", Type: schema.TString},
			{Name: "cx_expire", Type: schema.TInt},
			{Name: "cx_auth_id", Type: schema.TString},
			{Name: "cx_xact_amt", Type: schema.TFloat},
			{Name: "cx_xact_date", Type: schema.TInt},
			{Name: "cx_co_id", Type: schema.TInt},
		},
		PK: []string{"cx_o_id"},
		FKs: []schema.ForeignKey{
			{Cols: []string{"cx_o_id"}, RefTable: "Orders"},
			{Cols: []string{"cx_co_id"}, RefTable: "Country"},
		},
	})
	s.AddRelation(&schema.Relation{
		Name: "Shopping_cart",
		Columns: []schema.Column{
			{Name: "sc_id", Type: schema.TInt},
			{Name: "sc_time", Type: schema.TInt},
		},
		PK: []string{"sc_id"},
	})
	s.AddRelation(&schema.Relation{
		Name: "Shopping_cart_line",
		Columns: []schema.Column{
			{Name: "scl_sc_id", Type: schema.TInt},
			{Name: "scl_i_id", Type: schema.TInt},
			{Name: "scl_qty", Type: schema.TInt},
		},
		PK: []string{"scl_sc_id", "scl_i_id"},
		FKs: []schema.ForeignKey{
			{Cols: []string{"scl_sc_id"}, RefTable: "Shopping_cart"},
			{Cols: []string{"scl_i_id"}, RefTable: "Item"},
		},
	})
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// BaseIndexes lists the base-table covered indexes the input schema ships
// with — the access paths the workload's filters need.
func BaseIndexes() []synergy.IndexSpec {
	return []synergy.IndexSpec{
		{Table: "Customer", Name: "IX_Customer_uname", On: []string{"c_uname"}},
		{Table: "Item", Name: "IX_Item_subject", On: []string{"i_subject"}},
		{Table: "Item", Name: "IX_Item_author", On: []string{"i_a_id"}},
		{Table: "Orders", Name: "IX_Orders_customer", On: []string{"o_c_id"}},
		{Table: "Orders", Name: "IX_Orders_date", On: []string{"o_date"}},
		{Table: "Order_line", Name: "IX_Order_line_item", On: []string{"ol_i_id"}},
	}
}

// PartitionSchemes returns the three VoltDB partitioning schemes used to
// profile the maximum number of TPC-W joins (§IX-D2); under any single
// scheme fewer than half the joins are supported.
func PartitionSchemes() []newsql.Scheme {
	return []newsql.Scheme{
		{
			// Customer-centric: supports Q2 (customer x orders) and
			// Q11 (order_line self-join on ol_o_id).
			Name: "S1-customer",
			PartitionBy: map[string]string{
				"Customer": "c_id", "Orders": "o_c_id", "CC_Xacts": "cx_o_id",
				"Order_line": "ol_o_id", "Address": "addr_id",
				"Item": "i_id", "Author": "a_id",
				"Shopping_cart": "sc_id", "Shopping_cart_line": "scl_sc_id",
			},
		},
		{
			// Catalog-centric: supports Q4, Q5, Q6 (author x item).
			Name: "S2-catalog",
			PartitionBy: map[string]string{
				"Customer": "c_id", "Orders": "o_id", "CC_Xacts": "cx_o_id",
				"Order_line": "ol_o_id", "Address": "addr_id",
				"Item": "i_a_id", "Author": "a_id",
				"Shopping_cart": "sc_id", "Shopping_cart_line": "scl_sc_id",
			},
		},
		{
			// Item-centric: supports Q1 (item x order_line) and Q8
			// (item x shopping_cart_line).
			Name: "S3-item",
			PartitionBy: map[string]string{
				"Customer": "c_id", "Orders": "o_id", "CC_Xacts": "cx_o_id",
				"Order_line": "ol_i_id", "Address": "addr_id",
				"Item": "i_id", "Author": "a_id",
				"Shopping_cart": "sc_id", "Shopping_cart_line": "scl_i_id",
			},
		},
	}
}
