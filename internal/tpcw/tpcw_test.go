package tpcw

import (
	"strings"
	"testing"

	"synergy/internal/core"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

func TestSchemaValid(t *testing.T) {
	s := Schema()
	if got := len(s.Relations()); got != 10 {
		t.Fatalf("relations = %d, want 10", got)
	}
	g := strings.Join(s.RelationNames(), ",")
	for _, want := range []string{"Customer", "Orders", "Order_line", "Item", "Author", "CC_Xacts"} {
		if !strings.Contains(g, want) {
			t.Fatalf("missing relation %s", want)
		}
	}
}

func TestWorkloadParses(t *testing.T) {
	for _, s := range AllStatements() {
		if _, err := sqlparser.Parse(s.SQL); err != nil {
			t.Errorf("%s: %v", s.ID, err)
		}
	}
	if n := len(JoinQueries()); n != 11 {
		t.Fatalf("join queries = %d, want 11 (Figure 15)", n)
	}
	if n := len(WriteStatements()); n != 13 {
		t.Fatalf("write statements = %d, want 13 (Figure 16)", n)
	}
}

func TestGenerateCardinalities(t *testing.T) {
	d := Generate(100, 42)
	if got := len(d.Tables["Customer"]); got != 100 {
		t.Fatalf("customers = %d", got)
	}
	if got := len(d.Tables["Item"]); got != 1000 {
		t.Fatalf("items = %d, want 10x customers (§IX-D1)", got)
	}
	if got := len(d.Tables["Orders"]); got != 1000 {
		t.Fatalf("orders = %d, want 10x customers (§IX-D1)", got)
	}
	if got := len(d.Tables["Country"]); got != 92 {
		t.Fatalf("countries = %d, want 92", got)
	}
	ol := len(d.Tables["Order_line"])
	if ol < 2000 || ol > 5500 {
		t.Fatalf("order lines = %d, want ~3 per order", ol)
	}
	if len(d.CartLines) == 0 {
		t.Fatal("no cart lines sampled")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(50, 7)
	b := Generate(50, 7)
	ra := a.Tables["Item"][25]
	rb := b.Tables["Item"][25]
	if ra["i_title"] != rb["i_title"] || ra["i_subject"] != rb["i_subject"] {
		t.Fatal("generation not deterministic")
	}
}

func TestFreshIDsDoNotCollide(t *testing.T) {
	d := Generate(10, 1)
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		id := d.NextOrderID()
		if id <= int64(d.Card.Orders) || seen[id] {
			t.Fatalf("fresh order id %d collides", id)
		}
		seen[id] = true
	}
}

func TestParamsAreValid(t *testing.T) {
	d := Generate(50, 3)
	rng := sim.NewRNG(9)
	for _, s := range AllStatements() {
		params := s.Params(d, rng)
		stmt := sqlparser.MustParse(s.SQL)
		// Count placeholders and check coverage.
		n := strings.Count(s.SQL, "?")
		if len(params) != n {
			t.Errorf("%s: %d params for %d placeholders", s.ID, len(params), n)
		}
		_ = stmt
	}
}

// The design pipeline on the TPC-W schema/workload must reproduce §IX-D2's
// Synergy configuration: the views the roots set {Author, Customer, Country}
// induces.
func TestTPCWDesign(t *testing.T) {
	w, err := core.ParseWorkload(WorkloadSQL())
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.BuildDesign(Schema(), Roots(), w)
	if err != nil {
		t.Fatal(err)
	}

	var names []string
	for _, v := range d.Views {
		names = append(names, v.DisplayName())
	}
	got := strings.Join(names, ",")
	for _, want := range []string{
		"Customer-Orders",
		"Country-Address",
		"Author-Item",
		"Item-Order_line",
		"Item-Shopping_cart_line",
		"Author-Item-Order_line",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing view %s (got %s)", want, got)
		}
	}
	if len(d.Views) != 6 {
		t.Errorf("views = %d (%s), want 6", len(d.Views), got)
	}

	// Assignments: Order_line joins the Author tree (weight 6 beats the
	// Customer path's 2); CC_Xacts joins Customer; the shopping cart is
	// unassigned -> W6/W11 stay cheap (§IX-D4).
	assign := d.Candidates.RootOf
	if assign["Order_line"] != "Author" {
		t.Errorf("Order_line root = %q, want Author", assign["Order_line"])
	}
	if assign["CC_Xacts"] != "Customer" {
		t.Errorf("CC_Xacts root = %q, want Customer", assign["CC_Xacts"])
	}
	if assign["Address"] != "Country" {
		t.Errorf("Address root = %q, want Country", assign["Address"])
	}
	if len(d.Candidates.Unassigned) != 1 || d.Candidates.Unassigned[0] != "Shopping_cart" {
		t.Errorf("unassigned = %v, want [Shopping_cart]", d.Candidates.Unassigned)
	}

	// Query-driven view indexes: Customer-Orders(c_uname),
	// Author-Item(i_subject), Author-Item-Order_line(i_subject).
	var qIdx, mIdx []string
	for _, ix := range d.ViewIndexes {
		entry := ix.View.DisplayName() + ":" + ix.On[0]
		if ix.Maintenance {
			mIdx = append(mIdx, entry)
		} else {
			qIdx = append(qIdx, entry)
		}
	}
	for _, want := range []string{"Customer-Orders:c_uname", "Author-Item:i_subject", "Author-Item-Order_line:i_subject"} {
		if !contains(qIdx, want) {
			t.Errorf("missing query view-index %s (got %v)", want, qIdx)
		}
	}
	// Maintenance indexes: i_id within Item-* views, c_id within
	// Customer-Orders (§VII-C).
	for _, want := range []string{
		"Item-Order_line:i_id", "Item-Shopping_cart_line:i_id",
		"Author-Item-Order_line:i_id", "Customer-Orders:c_id",
	} {
		if !contains(mIdx, want) {
			t.Errorf("missing maintenance index %s (got %v)", want, mIdx)
		}
	}

	// Q7 rewriting uses Customer-Orders once and Country-Address twice.
	var q7 *sqlparser.SelectStmt
	for _, sel := range w.Selects() {
		if len(sel.From) == 6 {
			q7 = sel
		}
	}
	if q7 == nil {
		t.Fatal("Q7 not found")
	}
	rw := d.Rewritten[q7]
	if len(rw.Usages) != 3 {
		t.Fatalf("Q7 view usages = %d, want 3 (Customer-Orders + 2x Country-Address): %s", len(rw.Usages), rw.Stmt)
	}
	caCount := 0
	for _, u := range rw.Usages {
		if u.View.DisplayName() == "Country-Address" {
			caCount++
		}
	}
	if caCount != 2 {
		t.Fatalf("Country-Address usages in Q7 = %d, want 2", caCount)
	}

	// Q9 and Q11 (self-joins) must not be rewritten.
	for _, sel := range w.Selects() {
		rels := map[string]int{}
		for _, ref := range sel.From {
			if ref.Sub == nil {
				rels[ref.Name]++
			}
		}
		for rel, n := range rels {
			if n > 1 && rel != "Address" && rel != "Country" {
				if d.Rewritten[sel].UsesViews() {
					t.Errorf("self-join on %s was rewritten: %s", rel, d.Rewritten[sel].Stmt)
				}
			}
		}
	}
}

func contains(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}

func TestMicroDesign(t *testing.T) {
	w, err := core.ParseWorkload(MicroWorkloadSQL())
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.BuildDesign(MicroSchema(), MicroRoots(), w)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, v := range d.Views {
		names = append(names, v.DisplayName())
	}
	got := strings.Join(names, ",")
	// §IX-B1: "Customer-Order and Customer-Order-Order_line represent the
	// MVs corresponding to the join queries Q1 and Q2".
	if got != "Customer-MOrder,Customer-MOrder-MOrder_line" {
		t.Fatalf("micro views = %s", got)
	}
}

func TestMicroGenerateRatios(t *testing.T) {
	rows := MicroGenerate(20, 5)
	if len(rows["Customer"]) != 20 || len(rows["MOrder"]) != 200 || len(rows["MOrder_line"]) != 2000 {
		t.Fatalf("cardinalities = %d/%d/%d, want 20/200/2000 (1:10 ratios, §IX-B2)",
			len(rows["Customer"]), len(rows["MOrder"]), len(rows["MOrder_line"]))
	}
}

func TestStatsForAdvisor(t *testing.T) {
	d := Generate(50, 11)
	st := d.Stats()
	if st.Rows["Item"] != 500 || st.AvgRowBytes["Item"] <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStatementByID(t *testing.T) {
	if _, ok := StatementByID("Q10"); !ok {
		t.Fatal("Q10 missing")
	}
	if _, ok := StatementByID("W13"); !ok {
		t.Fatal("W13 missing")
	}
	if _, ok := StatementByID("nope"); ok {
		t.Fatal("unknown id found")
	}
}
