package tpcw

import (
	"synergy/internal/schema"
	"synergy/internal/sim"
)

// MicroSchema is the three-relation micro-benchmark schema of Figure 8:
// Customer, Order and Order_line linked by key/foreign-key edges.
func MicroSchema() *schema.Schema {
	s := schema.New()
	s.AddRelation(&schema.Relation{
		Name: "Customer",
		Columns: []schema.Column{
			{Name: "c_id", Type: schema.TInt},
			{Name: "c_uname", Type: schema.TString},
			{Name: "c_since", Type: schema.TInt},
		},
		PK: []string{"c_id"},
	})
	s.AddRelation(&schema.Relation{
		Name: "MOrder",
		Columns: []schema.Column{
			{Name: "o_id", Type: schema.TInt},
			{Name: "o_c_id", Type: schema.TInt},
			{Name: "o_date", Type: schema.TInt},
			{Name: "o_total", Type: schema.TFloat},
		},
		PK:  []string{"o_id"},
		FKs: []schema.ForeignKey{{Cols: []string{"o_c_id"}, RefTable: "Customer"}},
	})
	s.AddRelation(&schema.Relation{
		Name: "MOrder_line",
		Columns: []schema.Column{
			{Name: "ol_o_id", Type: schema.TInt},
			{Name: "ol_id", Type: schema.TInt},
			{Name: "ol_i_id", Type: schema.TInt},
			{Name: "ol_qty", Type: schema.TInt},
		},
		PK:  []string{"ol_o_id", "ol_id"},
		FKs: []schema.ForeignKey{{Cols: []string{"ol_o_id"}, RefTable: "MOrder"}},
	})
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// MicroRoots: the micro-benchmark hierarchy is rooted at Customer.
func MicroRoots() []string { return []string{"Customer"} }

// Micro-benchmark workload (Figure 9): the two full join queries whose
// materializations are Customer-Order and Customer-Order-Order_line.
const (
	MicroQ1 = `SELECT * FROM Customer c, MOrder o WHERE c.c_id = o.o_c_id`
	MicroQ2 = `SELECT * FROM Customer c, MOrder o, MOrder_line ol
	           WHERE c.c_id = o.o_c_id AND o.o_id = ol.ol_o_id`
)

// MicroWorkloadSQL feeds the design pipeline.
func MicroWorkloadSQL() []string { return []string{MicroQ1, MicroQ2} }

// MicroGenerate builds the micro-benchmark database with the paper's 1:10
// cardinality ratios: numCust customers, 10 orders each, 10 lines per order
// (§IX-B2).
func MicroGenerate(numCust int, seed int64) map[string][]schema.Row {
	rng := sim.NewRNG(seed).Derive("micro")
	customers := make([]schema.Row, 0, numCust)
	orders := make([]schema.Row, 0, numCust*10)
	lines := make([]schema.Row, 0, numCust*100)
	oid := int64(0)
	for c := int64(1); c <= int64(numCust); c++ {
		customers = append(customers, schema.Row{
			"c_id": c, "c_uname": Uname(c), "c_since": int64(rng.IntRange(10000, 20000)),
		})
		for o := 0; o < 10; o++ {
			oid++
			orders = append(orders, schema.Row{
				"o_id": oid, "o_c_id": c,
				"o_date":  int64(rng.IntRange(19000, 20000)),
				"o_total": float64(rng.IntRange(100, 99999)) / 100,
			})
			for l := int64(1); l <= 10; l++ {
				lines = append(lines, schema.Row{
					"ol_o_id": oid, "ol_id": l,
					"ol_i_id": int64(rng.IntRange(1, 10*numCust)),
					"ol_qty":  int64(rng.IntRange(1, 10)),
				})
			}
		}
	}
	return map[string][]schema.Row{
		"Customer": customers, "MOrder": orders, "MOrder_line": lines,
	}
}
