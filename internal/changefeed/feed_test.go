package changefeed

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"synergy/internal/sim"
)

func testCosts() *sim.Costs {
	c := sim.DefaultCosts()
	return c
}

// collectFeed returns a feed whose deltas record their apply order.
func collectFeed(cfg Config) (*Feed, func(view string, ts int64) Delta, *[]int64, *sync.Mutex) {
	f := New(cfg)
	var mu sync.Mutex
	var order []int64
	mk := func(view string, ts int64) Delta {
		return Delta{View: view, CommitTS: ts, Apply: func(ctx *sim.Ctx) error {
			mu.Lock()
			order = append(order, ts)
			mu.Unlock()
			return nil
		}}
	}
	return f, mk, &order, &mu
}

// Deltas of one view apply in publish order (FIFO), and Drain applies all.
func TestFeedFIFOWithinLane(t *testing.T) {
	f, mk, order, mu := collectFeed(Config{Costs: testCosts()})
	ctx := sim.NewCtx()
	for ts := int64(1); ts <= 50; ts++ {
		f.Publish(ctx, []Delta{mk("V", ts)})
	}
	if err := f.Drain(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*order) != 50 {
		t.Fatalf("applied %d deltas, want 50", len(*order))
	}
	for i, ts := range *order {
		if ts != int64(i+1) {
			t.Fatalf("apply order[%d] = %d, want %d (FIFO)", i, ts, i+1)
		}
	}
	if f.Published() != 50 || f.Applied() != 50 {
		t.Fatalf("published=%d applied=%d, want 50/50", f.Published(), f.Applied())
	}
}

// The watermark advances to the highest applied CommitTS, and StaleBehind
// reports zero once drained.
func TestFeedWatermarkAdvances(t *testing.T) {
	f, mk, _, _ := collectFeed(Config{Costs: testCosts()})
	ctx := sim.NewCtx()
	f.Pause()
	f.Publish(ctx, []Delta{mk("V", 10), mk("V", 20)})
	if lag := f.StaleBehind("V", 15); lag != 15-0 {
		t.Fatalf("paused StaleBehind(15) = %d, want 15 (watermark 0)", lag)
	}
	if lag := f.StaleBehind("V", 5); lag != 0 {
		t.Fatalf("StaleBehind(5) = %d, want 0 — no unapplied delta ≤ 5", lag)
	}
	if err := f.Drain(); err != nil {
		t.Fatal(err)
	}
	if wm := f.Watermark("V"); wm != 20 {
		t.Fatalf("watermark = %d, want 20", wm)
	}
	if lag := f.StaleBehind("V", 15); lag != 0 {
		t.Fatalf("drained StaleBehind(15) = %d, want 0", lag)
	}
}

// Publish charges the writer exactly one queue hop regardless of delta
// count; the apply work lands on background contexts (AppliedCost).
func TestFeedWriterChargedOnlyQueueHop(t *testing.T) {
	costs := testCosts()
	f := New(Config{Costs: costs})
	f.Pause()
	ctx := sim.NewCtx()
	work := sim.FromMillis(5)
	var deltas []Delta
	for i := int64(1); i <= 4; i++ {
		deltas = append(deltas, Delta{View: "V", CommitTS: i, Apply: func(c *sim.Ctx) error {
			c.Charge(work)
			return nil
		}})
	}
	f.Publish(ctx, deltas)
	if got := ctx.Elapsed(); got != costs.AsyncQueueHop {
		t.Fatalf("writer charged %v, want one queue hop %v", got, costs.AsyncQueueHop)
	}
	if err := f.Drain(); err != nil {
		t.Fatal(err)
	}
	// One batch (4 ≤ BatchMax): batch overhead + 4×work.
	want := costs.AsyncApplyBatch + 4*work
	if got := f.AppliedCost(); got != want {
		t.Fatalf("applied cost %v, want %v", got, want)
	}
}

// A full lane blocks the publisher (backpressure) and releases it once the
// applier frees space; nothing is dropped.
func TestFeedBackpressureBlocksNeverDrops(t *testing.T) {
	f, mk, order, mu := collectFeed(Config{QueueCap: 2, Costs: testCosts()})
	f.Pause()
	ctx := sim.NewCtx()
	f.Publish(ctx, []Delta{mk("V", 1), mk("V", 2)}) // lane now full

	var done atomic.Bool
	go func() {
		f.Publish(sim.NewCtx(), []Delta{mk("V", 3)})
		done.Store(true)
	}()
	time.Sleep(20 * time.Millisecond)
	if done.Load() {
		t.Fatal("publish into a full paused lane returned; want it blocked")
	}
	f.Resume()
	if err := f.Drain(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100 && !done.Load(); i++ {
		time.Sleep(5 * time.Millisecond)
		f.Drain()
	}
	if !done.Load() {
		t.Fatal("blocked publisher never released")
	}
	f.Drain()
	mu.Lock()
	defer mu.Unlock()
	if len(*order) != 3 {
		t.Fatalf("applied %d deltas, want 3 (no drops)", len(*order))
	}
}

// WaitWatermark returns immediately when fresh, blocks on a paused feed
// until Resume, and charges the reader the waited-out applier work.
func TestFeedWaitWatermark(t *testing.T) {
	costs := testCosts()
	f := New(Config{Costs: costs})
	work := sim.FromMillis(3)
	f.Pause()
	f.Publish(sim.NewCtx(), []Delta{{View: "V", CommitTS: 7, Apply: func(c *sim.Ctx) error {
		c.Charge(work)
		return nil
	}}})

	fresh := sim.NewCtx()
	f.WaitWatermark(fresh, "V", 0) // nothing ≤ 0 pending
	if fresh.Elapsed() != 0 || fresh.Snapshot().WatermarkWaits != 0 {
		t.Fatalf("fresh read charged %v / %d waits, want none", fresh.Elapsed(), fresh.Snapshot().WatermarkWaits)
	}

	reader := sim.NewCtx()
	released := make(chan struct{})
	go func() {
		f.WaitWatermark(reader, "V", 7)
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("watermark wait returned while feed paused")
	case <-time.After(20 * time.Millisecond):
	}
	f.Resume()
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("watermark wait never released after Resume")
	}
	s := reader.Snapshot()
	if s.WatermarkWaits != 1 {
		t.Fatalf("WatermarkWaits = %d, want 1", s.WatermarkWaits)
	}
	want := costs.WatermarkWait + costs.AsyncApplyBatch + work
	if got := reader.Elapsed(); got != want {
		t.Fatalf("reader charged %v, want %v (check + waited-out apply)", got, want)
	}
}

// Apply errors surface from Drain/Err without stopping later deltas.
func TestFeedApplyErrorSurfaces(t *testing.T) {
	f := New(Config{Costs: testCosts()})
	boom := errors.New("boom")
	var applied atomic.Int64
	f.Publish(sim.NewCtx(), []Delta{
		{View: "V", CommitTS: 1, Apply: func(*sim.Ctx) error { return boom }},
		{View: "V", CommitTS: 2, Apply: func(*sim.Ctx) error { applied.Add(1); return nil }},
	})
	if err := f.Drain(); !errors.Is(err, boom) {
		t.Fatalf("Drain err = %v, want %v", err, boom)
	}
	if applied.Load() != 1 {
		t.Fatal("delta after a failed one was not applied")
	}
	if wm := f.Watermark("V"); wm != 2 {
		t.Fatalf("watermark = %d, want 2", wm)
	}
}

// Lanes are independent: a slow view does not hold back another view's
// watermark.
func TestFeedLanesIndependent(t *testing.T) {
	f, mk, _, _ := collectFeed(Config{Costs: testCosts()})
	f.Pause()
	f.Publish(sim.NewCtx(), []Delta{mk("A", 5), mk("B", 9)})
	if err := f.Drain(); err != nil {
		t.Fatal(err)
	}
	if f.Watermark("A") != 5 || f.Watermark("B") != 9 {
		t.Fatalf("watermarks A=%d B=%d, want 5/9", f.Watermark("A"), f.Watermark("B"))
	}
}
