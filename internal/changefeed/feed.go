// Package changefeed is the asynchronous view-maintenance lane: a bounded
// per-view delta queue fed by committed base-table writes and drained by
// background applier workers.
//
// The paper's §VIII-B maintenance protocol runs synchronously inside the
// writing statement, so write latency scales with the number of views a
// table feeds. The changefeed takes that work off the client's critical
// path: the commit publishes a delta per affected view (paying only a queue
// hop), and appliers replay the mark/update/un-mark phases in background
// batches. Each view carries a freshness watermark — the highest commit
// timestamp whose delta has been applied — which is what staleness-aware
// reads (ReadStale / ReadWatermark) measure themselves against.
//
// Cost accounting is split the way the real system's would be: the writer is
// charged the enqueue hop, the applier's work accrues on background contexts
// (visible via AppliedCost), and a watermark reader that blocks is charged
// the applier work it actually waited out.
package changefeed

import (
	"sync"
	"sync/atomic"

	"synergy/internal/sim"
)

// Delta is one view's maintenance work for one committed transaction. Apply
// replays the view-maintenance phases for the transaction's writes against
// one view; CommitTS is the transaction's commit timestamp — once applied,
// the view's watermark covers it.
type Delta struct {
	// View names the materialized view this delta maintains.
	View string
	// CommitTS is the commit timestamp of the base-table transaction the
	// delta derives from.
	CommitTS int64
	// Apply performs the maintenance work, charging the supplied background
	// context.
	Apply func(ctx *sim.Ctx) error
}

// Config sizes a Feed.
type Config struct {
	// QueueCap bounds each view's queue (queued + in-flight deltas). A full
	// queue blocks the publisher — backpressure, never drops. Zero means a
	// default of 1024.
	QueueCap int
	// BatchMax caps the deltas an applier drains per batch. Zero means 32.
	BatchMax int
	// Costs supplies the async cost knobs (queue hop, per-batch apply
	// overhead, watermark wait).
	Costs *sim.Costs
}

// Feed is the changefeed: one bounded lane per view, each drained by at most
// one applier goroutine at a time. Publish order is apply order within a
// lane (FIFO), which is what makes drained-async state converge to the
// synchronous maintenance result.
type Feed struct {
	cfg Config

	mu    sync.Mutex
	lanes map[string]*lane

	paused bool

	published atomic.Int64
	applied   atomic.Int64

	errMu    sync.Mutex
	firstErr error
}

// lane is one view's delta queue plus its applier state.
type lane struct {
	f    *Feed
	view string

	mu   sync.Mutex
	cond *sync.Cond
	// queue holds published-but-not-yet-drained deltas in publish order.
	queue []Delta
	// inflight counts deltas the applier has drained but not yet applied;
	// inflightOldest is the smallest CommitTS among them. Together with the
	// queue they answer "is anything ≤ readTS still unapplied?".
	inflight       int
	inflightOldest int64
	// watermark is the highest CommitTS whose delta has been applied.
	watermark int64
	// appliedCost accumulates the applier's background sim time; watermark
	// waiters charge the slice that elapsed while they blocked.
	appliedCost sim.Micros
	running     bool
}

// New returns an empty feed.
func New(cfg Config) *Feed {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 1024
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 32
	}
	return &Feed{cfg: cfg, lanes: make(map[string]*lane)}
}

func (f *Feed) lane(view string) *lane {
	f.mu.Lock()
	defer f.mu.Unlock()
	l := f.lanes[view]
	if l == nil {
		l = &lane{f: f, view: view}
		l.cond = sync.NewCond(&l.mu)
		f.lanes[view] = l
	}
	return l
}

// Publish hands a committed transaction's view deltas to the feed. The
// writer is charged one queue hop; per-view publish order is preserved, and
// a full lane blocks the publisher until the applier frees space
// (backpressure — deltas are never dropped). Appliers start on demand.
func (f *Feed) Publish(ctx *sim.Ctx, deltas []Delta) {
	if len(deltas) == 0 {
		return
	}
	if f.cfg.Costs != nil {
		ctx.Charge(f.cfg.Costs.AsyncQueueHop)
	}
	for _, d := range deltas {
		l := f.lane(d.View)
		l.mu.Lock()
		for len(l.queue)+l.inflight >= f.cfg.QueueCap {
			l.cond.Wait()
		}
		l.queue = append(l.queue, d)
		f.published.Add(1)
		f.mu.Lock()
		paused := f.paused
		f.mu.Unlock()
		if !l.running && !paused {
			l.running = true
			go l.drain()
		}
		l.mu.Unlock()
	}
}

// drain is the applier loop of one lane: pop a batch, apply it on a fresh
// background context, advance the watermark, repeat until the queue empties
// (or the feed pauses). Runs with l.mu held only between batches.
func (l *lane) drain() {
	l.mu.Lock()
	for {
		f := l.f
		f.mu.Lock()
		paused := f.paused
		f.mu.Unlock()
		if paused || len(l.queue) == 0 {
			l.running = false
			l.cond.Broadcast()
			l.mu.Unlock()
			return
		}
		n := len(l.queue)
		if n > f.cfg.BatchMax {
			n = f.cfg.BatchMax
		}
		batch := make([]Delta, n)
		copy(batch, l.queue)
		l.queue = l.queue[n:]
		l.inflight = n
		l.inflightOldest = batch[0].CommitTS
		for _, d := range batch[1:] {
			if d.CommitTS < l.inflightOldest {
				l.inflightOldest = d.CommitTS
			}
		}
		l.cond.Broadcast() // queue space freed: unblock publishers
		l.mu.Unlock()

		actx := sim.NewCtx()
		if f.cfg.Costs != nil {
			actx.Charge(f.cfg.Costs.AsyncApplyBatch)
		}
		for _, d := range batch {
			if err := d.Apply(actx); err != nil {
				f.recordErr(err)
			}
		}

		l.mu.Lock()
		for _, d := range batch {
			if d.CommitTS > l.watermark {
				l.watermark = d.CommitTS
			}
		}
		l.inflight = 0
		l.inflightOldest = 0
		l.appliedCost += actx.Elapsed()
		f.applied.Add(int64(n))
		l.cond.Broadcast() // watermark advanced: wake waiters
	}
}

// staleBehindLocked reports whether any delta with CommitTS ≤ readTS is
// still unapplied. Caller holds l.mu.
func (l *lane) staleBehindLocked(readTS int64) bool {
	if l.inflight > 0 && l.inflightOldest <= readTS {
		return true
	}
	for i := range l.queue {
		if l.queue[i].CommitTS <= readTS {
			return true
		}
	}
	return false
}

// StaleBehind reports how far the view's watermark lags a reader's snapshot:
// zero when every delta at or below readTS has been applied, otherwise the
// positive timestamp gap (at least 1). This is the lag a ReadStale reader
// records.
func (f *Feed) StaleBehind(view string, readTS int64) int64 {
	l := f.lane(view)
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.staleBehindLocked(readTS) {
		return 0
	}
	lag := readTS - l.watermark
	if lag < 1 {
		lag = 1
	}
	return lag
}

// Watermark reports the view's freshness watermark — the highest commit
// timestamp whose delta has been applied.
func (f *Feed) Watermark(view string) int64 {
	l := f.lane(view)
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.watermark
}

// WaitWatermark blocks a ReadWatermark reader until every delta at or below
// readTS has been applied to the view. The reader is charged the fixed
// watermark-check cost plus the applier work that ran while it waited — the
// latency a real system's freshness barrier would expose. On a paused feed
// the wait holds until Resume/Drain restarts the appliers.
func (f *Feed) WaitWatermark(ctx *sim.Ctx, view string, readTS int64) {
	l := f.lane(view)
	l.mu.Lock()
	if !l.staleBehindLocked(readTS) {
		l.mu.Unlock()
		return
	}
	if f.cfg.Costs != nil {
		ctx.Charge(f.cfg.Costs.WatermarkWait)
	}
	ctx.CountWatermarkWait()
	c0 := l.appliedCost
	for l.staleBehindLocked(readTS) {
		if !l.running && len(l.queue) > 0 {
			f.mu.Lock()
			paused := f.paused
			f.mu.Unlock()
			if !paused {
				l.running = true
				go l.drain()
			}
		}
		l.cond.Wait()
	}
	ctx.Charge(l.appliedCost - c0)
	l.mu.Unlock()
}

// Drain applies every published delta and returns the first apply error, if
// any. It restarts appliers a Pause stopped.
func (f *Feed) Drain() error {
	f.mu.Lock()
	f.paused = false
	lanes := make([]*lane, 0, len(f.lanes))
	for _, l := range f.lanes {
		lanes = append(lanes, l)
	}
	f.mu.Unlock()
	for _, l := range lanes {
		l.mu.Lock()
		if !l.running && len(l.queue) > 0 {
			l.running = true
			go l.drain()
		}
		for len(l.queue) > 0 || l.inflight > 0 {
			l.cond.Wait()
		}
		l.mu.Unlock()
	}
	return f.Err()
}

// Pause stops appliers at their next batch boundary; published deltas stay
// queued. Benchmarks use it to keep background apply work out of a timed
// section.
func (f *Feed) Pause() {
	f.mu.Lock()
	f.paused = true
	f.mu.Unlock()
}

// Resume restarts draining after a Pause.
func (f *Feed) Resume() {
	f.mu.Lock()
	f.paused = false
	lanes := make([]*lane, 0, len(f.lanes))
	for _, l := range f.lanes {
		lanes = append(lanes, l)
	}
	f.mu.Unlock()
	for _, l := range lanes {
		l.mu.Lock()
		if !l.running && len(l.queue) > 0 {
			l.running = true
			go l.drain()
		}
		l.mu.Unlock()
	}
}

// Published reports the total deltas handed to the feed.
func (f *Feed) Published() int64 { return f.published.Load() }

// Applied reports the total deltas applied.
func (f *Feed) Applied() int64 { return f.applied.Load() }

// AppliedCost reports the summed background sim time the appliers have
// spent across all lanes — the maintenance cost the async lane moved off
// the writers' critical path.
func (f *Feed) AppliedCost() sim.Micros {
	f.mu.Lock()
	lanes := make([]*lane, 0, len(f.lanes))
	for _, l := range f.lanes {
		lanes = append(lanes, l)
	}
	f.mu.Unlock()
	var total sim.Micros
	for _, l := range lanes {
		l.mu.Lock()
		total += l.appliedCost
		l.mu.Unlock()
	}
	return total
}

func (f *Feed) recordErr(err error) {
	f.errMu.Lock()
	if f.firstErr == nil {
		f.firstErr = err
	}
	f.errMu.Unlock()
}

// Err returns the first apply error the feed has seen, if any.
func (f *Feed) Err() error {
	f.errMu.Lock()
	defer f.errMu.Unlock()
	return f.firstErr
}
