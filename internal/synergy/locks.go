package synergy

import (
	"fmt"
	"runtime"
	"sort"

	"synergy/internal/hbase"
	"synergy/internal/sim"
)

// lockQualifier is the single boolean column of a lock table (§VIII-A).
const lockQualifier = "l"

var (
	lockFree = []byte("0")
	lockHeld = []byte("1")
)

// LockTableName returns the lock table of a root relation.
func LockTableName(root string) string { return "LK_" + root }

// LockManager implements the hierarchical locking of §VIII-A: one lock table
// per root relation, with rows keyed like the root's rows and a boolean
// in-use column, acquired and released via checkAndPut.
type LockManager struct {
	store  *hbase.HCluster
	client *hbase.Client
	costs  *sim.Costs
	// MaxAttempts bounds the acquire retry loop.
	MaxAttempts int
}

// NewLockManager builds a manager with a warm store client.
func NewLockManager(store *hbase.HCluster) *LockManager {
	return &LockManager{
		store:       store,
		client:      store.NewWarmClient(),
		costs:       store.Costs(),
		MaxAttempts: 100_000,
	}
}

// CreateLockTables creates one lock table per root.
func (lm *LockManager) CreateLockTables(roots []string) error {
	for _, r := range roots {
		if err := lm.store.CreateTable(hbase.TableSpec{Name: LockTableName(r)}); err != nil {
			return err
		}
	}
	return nil
}

// BulkCreateEntries creates free lock entries for bulk-loaded root rows.
func (lm *LockManager) BulkCreateEntries(root string, rows []hbase.BulkRow) error {
	entries := make([]hbase.BulkRow, 0, len(rows))
	for _, r := range rows {
		entries = append(entries, hbase.BulkRow{
			Key:   r.Key,
			Cells: []hbase.Cell{{Qualifier: lockQualifier, Value: lockFree}},
		})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	return lm.store.BulkLoad(LockTableName(root), entries)
}

// EnsureEntry creates the lock entry for a newly inserted root row with an
// eager put — the path for transactions that own no write buffer (sequential
// and per-statement-flush modes, where every write is already eager).
func (lm *LockManager) EnsureEntry(ctx *sim.Ctx, root, key string) error {
	return lm.client.Put(ctx, LockTableName(root), key,
		[]hbase.Cell{{Qualifier: lockQualifier, Value: lockFree}})
}

// EnsureEntryDeferred folds the lock-table entry for a freshly inserted
// root row into the transaction's buffered mutator: the entry rides the
// commit flush as a create-if-absent CheckAndPut batch entry, replacing
// the three standalone lock RPCs the eager protocol pays per root insert
// (Acquire's guaranteed-miss checkAndPut plus its create-if-absent
// follow-up at statement time, and the Release checkAndPut at commit).
//
// The deferral is sound because a buffered transaction's new root row is
// unpublished until the mutator flushes: no concurrent transaction can
// resolve the group's key from the store, so there is nothing for the
// self-held lock to serialize during the transaction. Two guards keep the
// protocol airtight around that argument. First, a marked multi-row
// update's phase barrier publishes everything buffered mid-transaction —
// the transaction promotes every deferred entry to a held lock (AcquireNew)
// before its first barrier, restoring "row published ⟹ lock held until
// commit". Second, the deferred write is conditional where the eager entry
// put was not: if a concurrent Acquire created the entry meanwhile (it
// falls back to create-if-absent, so acquirability never depended on the
// entry existing), the commit-time CheckAndPut(absent → free) no-ops
// instead of clobbering a held lock with a free one.
//
// Like the paper's insert applicability rule, this assumes inserts carry
// fresh keys: an insert that silently upserts a live, contended root key
// serializes against the group's writers only in the eager modes.
func (lm *LockManager) EnsureEntryDeferred(ctx *sim.Ctx, m *hbase.BufferedMutator, root, key string) error {
	return m.CheckAndPut(ctx, LockTableName(root), key, lockQualifier, nil,
		hbase.Cell{Qualifier: lockQualifier, Value: lockFree})
}

// AcquireNew takes the lock on a root key whose entry is expected to be
// absent — the promotion path for a deferred fresh-root-insert entry (see
// EnsureEntryDeferred). It tries create-if-absent first, so the expected
// case is one checkAndPut instead of a guaranteed-miss attempt against a
// missing entry followed by the creating one; if the entry does exist
// after all, it falls back to the contended acquire loop.
func (lm *LockManager) AcquireNew(ctx *sim.Ctx, root, key string) error {
	ok, err := lm.client.CheckAndPut(ctx, LockTableName(root), key, lockQualifier, nil,
		hbase.Cell{Qualifier: lockQualifier, Value: lockHeld})
	if err != nil {
		return err
	}
	if ok {
		ctx.CountLock()
		return nil
	}
	return lm.acquire(ctx, lm.client, root, key)
}

// Acquire takes the lock on a root row key, spinning with capped exponential
// simulated backoff while contended (§IX-C uses the same checkAndPut
// mechanism). The client
// may be cold — the Figure 11 experiment measures exactly that path via
// AcquireWith.
func (lm *LockManager) Acquire(ctx *sim.Ctx, root, key string) error {
	return lm.acquire(ctx, lm.client, root, key)
}

// AcquireWith acquires using a caller-supplied (possibly cold) client.
func (lm *LockManager) AcquireWith(ctx *sim.Ctx, client *hbase.Client, root, key string) error {
	return lm.acquire(ctx, client, root, key)
}

// backoff returns the simulated wait before retry number attempt (0-based):
// the shared capped exponential schedule of Costs.LockBackoff.
func (lm *LockManager) backoff(attempt int) sim.Micros {
	return lm.costs.LockBackoff(attempt)
}

func (lm *LockManager) acquire(ctx *sim.Ctx, client *hbase.Client, root, key string) error {
	tbl := LockTableName(root)
	for attempt := 0; attempt < lm.MaxAttempts; attempt++ {
		ok, err := client.CheckAndPut(ctx, tbl, key, lockQualifier, lockFree,
			hbase.Cell{Qualifier: lockQualifier, Value: lockHeld})
		if err != nil {
			return err
		}
		if ok {
			ctx.CountLock()
			return nil
		}
		// Entry may not exist yet (root row inserted concurrently or
		// lock table sparse): try create-if-absent.
		ok, err = client.CheckAndPut(ctx, tbl, key, lockQualifier, nil,
			hbase.Cell{Qualifier: lockQualifier, Value: lockHeld})
		if err != nil {
			return err
		}
		if ok {
			ctx.CountLock()
			return nil
		}
		ctx.Charge(lm.backoff(attempt))
		runtime.Gosched()
	}
	return fmt.Errorf("synergy: lock %s/%q: too many attempts", root, key)
}

// Release frees the lock.
func (lm *LockManager) Release(ctx *sim.Ctx, root, key string) error {
	return lm.ReleaseWith(ctx, lm.client, root, key)
}

// ReleaseWith releases using a caller-supplied client.
func (lm *LockManager) ReleaseWith(ctx *sim.Ctx, client *hbase.Client, root, key string) error {
	ok, err := client.CheckAndPut(ctx, LockTableName(root), key, lockQualifier, lockHeld,
		hbase.Cell{Qualifier: lockQualifier, Value: lockFree})
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("synergy: release of %s/%q: lock not held", root, key)
	}
	return nil
}
