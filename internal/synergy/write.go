package synergy

import (
	"fmt"

	"synergy/internal/core"
	"synergy/internal/hbase"
	"synergy/internal/phoenix"
	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

// dirtyOn and dirtyOff are the marker values of the dirty-read protocol
// (§VIII-B): rows are marked before a multi-row view update and un-marked
// after; concurrent scans that observe a mark restart.
var (
	dirtyOn  = []byte("1")
	dirtyOff = []byte("0")
)

// writeParts is a parsed write statement.
type writeParts struct {
	table   string
	kind    core.WriteKind
	row     schema.Row // insert: full row
	assign  schema.Row // update: SET assignments
	keyVals []schema.Value
}

func (sys *System) parseWrite(stmt sqlparser.Statement, params []schema.Value) (*writeParts, *phoenix.TableInfo, error) {
	switch s := stmt.(type) {
	case *sqlparser.InsertStmt:
		info, err := sys.Catalog.Table(s.Table)
		if err != nil {
			return nil, nil, err
		}
		cols := s.Columns
		if len(cols) == 0 {
			cols = info.ColumnNames()
		}
		if len(cols) != len(s.Values) {
			return nil, nil, fmt.Errorf("synergy: %d columns, %d values", len(cols), len(s.Values))
		}
		row := schema.Row{}
		for i, c := range cols {
			v, err := evalConst(s.Values[i], params)
			if err != nil {
				return nil, nil, err
			}
			row[c] = v
		}
		keyVals := make([]schema.Value, len(info.Key))
		for i, k := range info.Key {
			keyVals[i] = row[k]
			if row[k] == nil {
				return nil, nil, fmt.Errorf("%w: %s.%s", phoenix.ErrKeyNotSpecified, s.Table, k)
			}
		}
		return &writeParts{table: s.Table, kind: core.WriteInsert, row: row, keyVals: keyVals}, info, nil

	case *sqlparser.UpdateStmt:
		info, err := sys.Catalog.Table(s.Table)
		if err != nil {
			return nil, nil, err
		}
		keyVals, err := keyValsFromWhere(info, s.Where, params)
		if err != nil {
			return nil, nil, err
		}
		assign := schema.Row{}
		for _, a := range s.Set {
			v, err := evalConst(a.Value, params)
			if err != nil {
				return nil, nil, err
			}
			assign[a.Column] = v
		}
		return &writeParts{table: s.Table, kind: core.WriteUpdate, assign: assign, keyVals: keyVals}, info, nil

	case *sqlparser.DeleteStmt:
		info, err := sys.Catalog.Table(s.Table)
		if err != nil {
			return nil, nil, err
		}
		keyVals, err := keyValsFromWhere(info, s.Where, params)
		if err != nil {
			return nil, nil, err
		}
		return &writeParts{table: s.Table, kind: core.WriteDelete, keyVals: keyVals}, info, nil
	default:
		return nil, nil, fmt.Errorf("%w: %T", phoenix.ErrUnsupported, stmt)
	}
}

func evalConst(e sqlparser.Expr, params []schema.Value) (schema.Value, error) {
	switch x := e.(type) {
	case sqlparser.Literal:
		return x.Value, nil
	case sqlparser.Param:
		if x.Index >= len(params) {
			return nil, fmt.Errorf("synergy: missing parameter %d", x.Index)
		}
		return params[x.Index], nil
	default:
		return nil, fmt.Errorf("%w: %s", phoenix.ErrUnsupported, e)
	}
}

func keyValsFromWhere(info *phoenix.TableInfo, where []sqlparser.Predicate, params []schema.Value) ([]schema.Value, error) {
	bound := map[string]schema.Value{}
	for _, p := range where {
		col, ok := p.Left.(sqlparser.ColumnRef)
		if !ok || p.Op != sqlparser.OpEq {
			return nil, fmt.Errorf("%w: write WHERE must be key equality (%s)", phoenix.ErrUnsupported, p)
		}
		v, err := evalConst(p.Right, params)
		if err != nil {
			return nil, err
		}
		bound[col.Column] = v
	}
	out := make([]schema.Value, len(info.Key))
	for i, k := range info.Key {
		v, ok := bound[k]
		if !ok {
			return nil, fmt.Errorf("%w: %s.%s", phoenix.ErrKeyNotSpecified, info.Name, k)
		}
		out[i] = v
	}
	return out, nil
}

// resolveRootKey walks the lock chain upward — child foreign key to parent
// primary key — to find the root-relation row key this write must lock
// (§VIII-A "to update a row for a relation in a rooted tree, we acquire the
// lock on the key of the associated row in the root relation").
func (sys *System) resolveRootKey(ctx *sim.Ctx, plan *core.WritePlan, baseRow schema.Row) (string, error) {
	if plan.Root == "" {
		return "", nil
	}
	if plan.Root == plan.Table {
		info, err := sys.Catalog.Table(plan.Table)
		if err != nil {
			return "", err
		}
		return phoenix.PrimaryKey(info, baseRow)
	}
	cur := baseRow
	chain := plan.LockChain
	for i := len(chain) - 1; i >= 0; i-- {
		e := chain[i]
		fkVals := make([]schema.Value, len(e.FK))
		for j, c := range e.FK {
			fkVals[j] = cur[c]
			if cur[c] == nil {
				return "", nil // dangling reference: nothing to lock
			}
		}
		if i == 0 {
			// The FK values are the root's primary key.
			return schema.EncodeKey(fkVals...), nil
		}
		parentInfo, err := sys.Catalog.Table(e.Parent)
		if err != nil {
			return "", err
		}
		parentRow, found, err := sys.Engine.GetRow(ctx, parentInfo, hbase.ReadOpts{}, fkVals...)
		if err != nil {
			return "", err
		}
		if !found {
			return "", nil
		}
		cur = parentRow
	}
	return "", nil
}

// ExecuteWrite runs the full write transaction procedure. Under hierarchical
// locking it is §VIII-B: acquire the single root lock, write the base table
// (and base indexes), maintain every applicable view per the §VII
// construction procedures — marking and un-marking rows around multi-row
// view updates — and release the lock. Under MVCC the same base write and
// view maintenance run inside a Tephra-like snapshot transaction (no locks,
// no dirty marking) — the MVCC-A configuration of §IX-D2.
func (sys *System) ExecuteWrite(ctx *sim.Ctx, stmt sqlparser.Statement, params []schema.Value) error {
	if sys.cfg.Concurrency == MVCC {
		tx := sys.MVCCServer.Begin(ctx)
		opts := phoenix.WriteOpts{TS: tx.ID(), Read: tx.ReadOpts(), OnWrite: tx.RecordWrite, Sequential: sys.cfg.SequentialWrites}
		if err := sys.executeWriteBody(ctx, stmt, params, opts, false); err != nil {
			sys.MVCCServer.Abort(ctx, tx)
			return err
		}
		return sys.MVCCServer.Commit(ctx, tx)
	}
	return sys.executeWriteBody(ctx, stmt, params, phoenix.WriteOpts{Sequential: sys.cfg.SequentialWrites}, true)
}

// executeWriteBody is the shared base-write + view-maintenance procedure.
// lock selects the hierarchical protocol (single root lock + dirty marking).
func (sys *System) executeWriteBody(ctx *sim.Ctx, stmt sqlparser.Statement, params []schema.Value, opts phoenix.WriteOpts, lock bool) error {
	parts, info, err := sys.parseWrite(stmt, params)
	if err != nil {
		return err
	}
	if sys.cfg.DisableViews {
		// Baseline deployment: plain Phoenix write.
		return sys.Engine.Exec(ctx, stmt, params, opts)
	}
	plan, err := core.PlanWrite(sys.Design, stmt)
	if err != nil {
		return err
	}

	// Materialize the base row: inserts carry it; updates/deletes read it
	// (also needed for view maintenance).
	baseRow := parts.row
	if parts.kind != core.WriteInsert {
		row, found, err := sys.Engine.GetRow(ctx, info, opts.Read, parts.keyVals...)
		if err != nil {
			return err
		}
		if !found {
			return nil // nothing to write
		}
		baseRow = row
	}

	// Step 1: acquire the single lock.
	if lock {
		rootKey, err := sys.resolveRootKey(ctx, plan, baseRow)
		if err != nil {
			return err
		}
		if plan.Root != "" && rootKey != "" {
			if err := sys.Locks.Acquire(ctx, plan.Root, rootKey); err != nil {
				return err
			}
			defer sys.Locks.Release(ctx, plan.Root, rootKey)
		}
	}

	// Base write (+ base indexes) through the SQL layer.
	if err := sys.Engine.Exec(ctx, stmt, params, opts); err != nil {
		return err
	}
	// New root rows get a lock-table entry (§VIII-A).
	if lock && parts.kind == core.WriteInsert && sys.isRoot(parts.table) {
		key, _ := phoenix.PrimaryKey(info, parts.row)
		if err := sys.Locks.EnsureEntry(ctx, parts.table, key); err != nil {
			return err
		}
	}

	// View maintenance.
	for _, action := range plan.Actions {
		switch parts.kind {
		case core.WriteInsert:
			if err := sys.maintainInsert(ctx, action, parts, opts); err != nil {
				return err
			}
		case core.WriteDelete:
			if err := sys.maintainDelete(ctx, action, parts, opts); err != nil {
				return err
			}
		case core.WriteUpdate:
			if err := sys.maintainUpdate(ctx, action, parts, opts, lock); err != nil {
				return err
			}
		}
	}
	return nil
}

// maintainInsert constructs and inserts the view tuple (§VII-A2): read the
// k-1 related base rows walking the foreign keys upward, merge, insert.
func (sys *System) maintainInsert(ctx *sim.Ctx, action core.ViewAction, parts *writeParts, opts phoenix.WriteOpts) error {
	combined := parts.row.Clone()
	cur := parts.row
	for _, e := range action.ReadChain {
		fkVals := make([]schema.Value, len(e.FK))
		for j, c := range e.FK {
			fkVals[j] = cur[c]
			if cur[c] == nil {
				return nil // dangling FK: no view tuple
			}
		}
		parentInfo, err := sys.Catalog.Table(e.Parent)
		if err != nil {
			return err
		}
		parentRow, found, err := sys.Engine.GetRow(ctx, parentInfo, opts.Read, fkVals...)
		if err != nil {
			return err
		}
		if !found {
			return nil
		}
		for k, v := range parentRow {
			combined[k] = v
		}
		cur = parentRow
	}
	viewInfo, err := sys.Catalog.Table(action.View.Name())
	if err != nil {
		return err
	}
	return sys.Engine.PutRow(ctx, viewInfo, combined, opts)
}

// maintainDelete removes the view tuple: the view key equals the base key
// (the deleted relation is the view's last); the view row is read first to
// construct the view-index keys (§VII-B2).
func (sys *System) maintainDelete(ctx *sim.Ctx, action core.ViewAction, parts *writeParts, opts phoenix.WriteOpts) error {
	viewInfo, err := sys.Catalog.Table(action.View.Name())
	if err != nil {
		return err
	}
	return sys.Engine.DeleteRow(ctx, viewInfo, parts.keyVals, opts)
}

// maintainUpdate applies a base-table update to a view. Under the
// hierarchical protocol (mark == true) it is the 6-step procedure of
// §VIII-B: (1) lock held by caller, (2) read affected rows, (3) mark them
// dirty, (4) update, (5) un-mark, (6) release by caller. Under MVCC the
// marking steps are skipped — snapshot visibility isolates readers.
func (sys *System) maintainUpdate(ctx *sim.Ctx, action core.ViewAction, parts *writeParts, opts phoenix.WriteOpts, mark bool) error {
	viewInfo, err := sys.Catalog.Table(action.View.Name())
	if err != nil {
		return err
	}

	// Step 2: read the view rows that need updating.
	rows, err := sys.locateViewRows(ctx, action, viewInfo, parts, opts.Read)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return nil
	}

	type target struct {
		viewKey string
		row     schema.Row
	}
	targets := make([]target, 0, len(rows))
	for _, r := range rows {
		key, err := phoenix.PrimaryKey(viewInfo, r)
		if err != nil {
			return err
		}
		targets = append(targets, target{viewKey: key, row: r})
	}

	// Each phase of the protocol is one batch: the dirty marks flush before
	// any update is issued, the updates flush before any row is un-marked.
	// Within a phase, mutations to independent rows (and regions) carry no
	// ordering requirement, so they ship as region-grouped batch RPCs; the
	// Flush boundaries preserve exactly the ordering the dirty-read
	// protocol requires. Marks are quiet (not part of the MVCC write set);
	// the step-4 notifications fire when that phase's flush lands.
	batch := sys.Engine.NewWriteBatch(opts)
	markCell := func(v []byte) []hbase.Cell {
		return []hbase.Cell{{Qualifier: phoenix.DirtyQualifier, Value: v, TS: opts.TS}}
	}
	putCells := func(row schema.Row) []hbase.Cell {
		return phoenix.StampCells(phoenix.RowToCells(row), opts.TS)
	}
	markAll := func(value []byte) error {
		for _, tg := range targets {
			if err := batch.PutQuiet(ctx, viewInfo.Name, tg.viewKey, markCell(value)); err != nil {
				return err
			}
			for _, idx := range viewInfo.Indexes {
				if idx.KeyOnly {
					continue
				}
				if err := batch.PutQuiet(ctx, idx.Name, phoenix.IndexKey(viewInfo, idx, tg.row), markCell(value)); err != nil {
					return err
				}
			}
		}
		return batch.Flush(ctx)
	}

	// Step 3: mark rows (view + covered view-index copies; key-only
	// maintenance indexes are never read by queries and need no marks).
	if mark {
		if err := markAll(dirtyOn); err != nil {
			return err
		}
	}

	// Step 4: issue the updates as one batch.
	for ti := range targets {
		tg := &targets[ti]
		updated := tg.row.Clone()
		for c, v := range parts.assign {
			updated[c] = v
		}
		if err := batch.Put(ctx, viewInfo.Name, tg.viewKey, putCells(parts.assign)); err != nil {
			return err
		}
		for _, idx := range viewInfo.Indexes {
			oldKey := phoenix.IndexKey(viewInfo, idx, tg.row)
			newKey := phoenix.IndexKey(viewInfo, idx, updated)
			if oldKey != newKey {
				if err := batch.DeleteQuiet(ctx, idx.Name, oldKey, opts.TS); err != nil {
					return err
				}
				cells := putCells(phoenix.IndexRowContent(viewInfo, idx, updated))
				if mark && !idx.KeyOnly {
					cells = append(cells, hbase.Cell{Qualifier: phoenix.DirtyQualifier, Value: dirtyOn, TS: opts.TS})
				}
				if err := batch.Put(ctx, idx.Name, newKey, cells); err != nil {
					return err
				}
				continue
			}
			if !phoenix.IndexTouched(viewInfo, idx, parts.assign) {
				continue
			}
			if err := batch.Put(ctx, idx.Name, newKey, putCells(parts.assign)); err != nil {
				return err
			}
		}
		tg.row = updated
	}
	if err := batch.Flush(ctx); err != nil {
		return err
	}

	// Step 5: un-mark.
	if mark {
		if err := markAll(dirtyOff); err != nil {
			return err
		}
	}
	return nil
}

// locateViewRows finds the view rows affected by an update per the plan's
// locator (§VII-C).
func (sys *System) locateViewRows(ctx *sim.Ctx, action core.ViewAction, viewInfo *phoenix.TableInfo, parts *writeParts, read hbase.ReadOpts) ([]schema.Row, error) {
	switch action.Locator {
	case core.LocateByViewKey:
		row, found, err := sys.Engine.GetRow(ctx, viewInfo, read, parts.keyVals...)
		if err != nil || !found {
			return nil, err
		}
		return []schema.Row{row}, nil

	case core.LocateByIndex:
		// The maintenance index stores only keys (§VII-C); collect the
		// view keys it yields, then read the full rows. Locator probes
		// are short prefix reads, so they stay sequential.
		prefix := schema.KeyPrefix(parts.keyVals...)
		sc, err := sys.Engine.Client().Scan(ctx, action.LocatorIndex.Name(), hbase.ScanSpec{Prefix: prefix, Read: read, Sequential: true})
		if err != nil {
			return nil, err
		}
		var keys [][]schema.Value
		for {
			r, ok := sc.Next(ctx)
			if !ok {
				break
			}
			row := phoenix.CellsToRow(r)
			vals := make([]schema.Value, len(viewInfo.Key))
			for i, c := range viewInfo.Key {
				vals[i] = row[c]
			}
			keys = append(keys, vals)
		}
		var out []schema.Row
		for _, vals := range keys {
			full, found, err := sys.Engine.GetRow(ctx, viewInfo, read, vals...)
			if err != nil {
				return nil, err
			}
			if found {
				out = append(out, full)
			}
		}
		return out, nil

	default: // LocateByScan
		// A full view scan with a pushed-down filter; multi-region views
		// scatter-gather the regions like any other full scan.
		rel := sys.Design.Schema.Relation(parts.table)
		pk := rel.PK
		keyVals := parts.keyVals
		sc, err := sys.Engine.Client().Scan(ctx, viewInfo.Name, hbase.ScanSpec{
			Read: read,
			Filter: func(r hbase.RowResult) bool {
				row := phoenix.CellsToRow(r)
				for i, c := range pk {
					if !schema.ValuesEqual(row[c], keyVals[i]) {
						return false
					}
				}
				return true
			},
		})
		if err != nil {
			return nil, err
		}
		var out []schema.Row
		for {
			r, ok := sc.Next(ctx)
			if !ok {
				return out, nil
			}
			out = append(out, phoenix.CellsToRow(r))
		}
	}
}
