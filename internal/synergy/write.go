package synergy

import (
	"errors"
	"fmt"

	"synergy/internal/changefeed"
	"synergy/internal/core"
	"synergy/internal/hbase"
	"synergy/internal/mvcc"
	"synergy/internal/occ"
	"synergy/internal/phoenix"
	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

// dirtyOn and dirtyOff are the marker values of the dirty-read protocol
// (§VIII-B): rows are marked before a multi-row view update and un-marked
// after; concurrent scans that observe a mark restart.
var (
	dirtyOn  = []byte("1")
	dirtyOff = []byte("0")
)

// writeParts is a parsed write statement.
type writeParts struct {
	table   string
	kind    core.WriteKind
	row     schema.Row // insert: full row
	assign  schema.Row // update: SET assignments
	keyVals []schema.Value
}

func (sys *System) parseWrite(stmt sqlparser.Statement, params []schema.Value) (*writeParts, *phoenix.TableInfo, error) {
	switch s := stmt.(type) {
	case *sqlparser.InsertStmt:
		info, err := sys.Catalog.Table(s.Table)
		if err != nil {
			return nil, nil, err
		}
		cols := s.Columns
		if len(cols) == 0 {
			cols = info.ColumnNames()
		}
		if len(cols) != len(s.Values) {
			return nil, nil, fmt.Errorf("synergy: %d columns, %d values", len(cols), len(s.Values))
		}
		row := schema.Row{}
		for i, c := range cols {
			v, err := evalConst(s.Values[i], params)
			if err != nil {
				return nil, nil, err
			}
			row[c] = v
		}
		keyVals := make([]schema.Value, len(info.Key))
		for i, k := range info.Key {
			keyVals[i] = row[k]
			if row[k] == nil {
				return nil, nil, fmt.Errorf("%w: %s.%s", phoenix.ErrKeyNotSpecified, s.Table, k)
			}
		}
		return &writeParts{table: s.Table, kind: core.WriteInsert, row: row, keyVals: keyVals}, info, nil

	case *sqlparser.UpdateStmt:
		info, err := sys.Catalog.Table(s.Table)
		if err != nil {
			return nil, nil, err
		}
		keyVals, err := keyValsFromWhere(info, s.Where, params)
		if err != nil {
			return nil, nil, err
		}
		assign := schema.Row{}
		for _, a := range s.Set {
			v, err := evalConst(a.Value, params)
			if err != nil {
				return nil, nil, err
			}
			assign[a.Column] = v
		}
		return &writeParts{table: s.Table, kind: core.WriteUpdate, assign: assign, keyVals: keyVals}, info, nil

	case *sqlparser.DeleteStmt:
		info, err := sys.Catalog.Table(s.Table)
		if err != nil {
			return nil, nil, err
		}
		keyVals, err := keyValsFromWhere(info, s.Where, params)
		if err != nil {
			return nil, nil, err
		}
		return &writeParts{table: s.Table, kind: core.WriteDelete, keyVals: keyVals}, info, nil
	default:
		return nil, nil, fmt.Errorf("%w: %T", phoenix.ErrUnsupported, stmt)
	}
}

func evalConst(e sqlparser.Expr, params []schema.Value) (schema.Value, error) {
	switch x := e.(type) {
	case sqlparser.Literal:
		return x.Value, nil
	case sqlparser.Param:
		if x.Index >= len(params) {
			return nil, fmt.Errorf("synergy: missing parameter %d", x.Index)
		}
		return params[x.Index], nil
	default:
		return nil, fmt.Errorf("%w: %s", phoenix.ErrUnsupported, e)
	}
}

func keyValsFromWhere(info *phoenix.TableInfo, where []sqlparser.Predicate, params []schema.Value) ([]schema.Value, error) {
	bound := map[string]schema.Value{}
	for _, p := range where {
		col, ok := p.Left.(sqlparser.ColumnRef)
		if !ok || p.Op != sqlparser.OpEq {
			return nil, fmt.Errorf("%w: write WHERE must be key equality (%s)", phoenix.ErrUnsupported, p)
		}
		v, err := evalConst(p.Right, params)
		if err != nil {
			return nil, err
		}
		bound[col.Column] = v
	}
	out := make([]schema.Value, len(info.Key))
	for i, k := range info.Key {
		v, ok := bound[k]
		if !ok {
			return nil, fmt.Errorf("%w: %s.%s", phoenix.ErrKeyNotSpecified, info.Name, k)
		}
		out[i] = v
	}
	return out, nil
}

// Tx is the write-pipeline state of one in-flight transaction: under
// hierarchical locking the §VIII procedure (root locks held to commit,
// dirty marking around multi-row view updates), under MVCC a Tephra-like
// snapshot transaction. A transaction owns one BufferedMutator for its
// whole lifetime: every statement emits into it, reads consult its
// read-your-writes overlay, the maintenance protocol's phase barriers flush
// it mid-flight, Commit flushes it once (one batch-RPC round, one WAL sync
// per touched region) and releases the locks, and Abort discards it with
// nothing buffered persisted.
type Tx struct {
	sys     *System
	opts    phoenix.WriteOpts
	mutator *hbase.BufferedMutator // nil in per-statement / sequential modes
	mvccTx  *mvcc.Tx               // nil unless Concurrency == MVCC
	occTx   *occ.Tx                // nil unless Concurrency == OCC
	lock    bool                   // hierarchical: root locks + dirty marks

	locks   []lockRef
	lockSet map[lockRef]struct{}
	// deferred are fresh-root-insert lock entries riding the commit flush
	// as conditional batch entries instead of being self-acquired (see
	// LockManager.EnsureEntryDeferred). While a ref is deferred the root
	// row is still unpublished; any phase barrier promotes all deferred
	// refs to held locks before it flushes.
	deferred []lockRef
	// marks are dirty marks a phase barrier has flushed but the protocol
	// has not yet un-marked; Abort un-marks them eagerly so an aborted
	// transaction never leaves rows permanently dirty (readers would
	// restart forever).
	marks []markRef
	// deltas are view-maintenance actions deferred to the changefeed
	// (async/hybrid views): captured during statement execution, published
	// only on commit, dropped on abort.
	deltas []viewDelta
	stmts  int // statements executed (MVCC checkpoints between them)
	done   bool
}

// viewDelta is one deferred view-maintenance action: enough to replay the
// §VII construction procedure for one view from the background applier.
type viewDelta struct {
	view   string
	action core.ViewAction
	parts  *writeParts
}

type lockRef struct{ root, key string }

// markRef locates one flushed dirty mark: a view row or a covered
// view-index row.
type markRef struct{ table, key string }

// BeginTx opens a write transaction on the local system. Under
// hierarchical locking the caller is normally the transaction layer, which
// WAL-logs the statements around it; MVCC transactions need no logging.
func (sys *System) BeginTx(ctx *sim.Ctx) *Tx {
	tx := &Tx{sys: sys, lock: sys.cfg.Concurrency == Hierarchical}
	switch sys.cfg.Concurrency {
	case MVCC:
		t := sys.MVCCServer.Begin(ctx)
		tx.mvccTx = t
		tx.opts = phoenix.WriteOpts{TS: t.ID(), Read: t.ReadOpts(), OnWrite: t.RecordWrite, Sequential: sys.cfg.SequentialWrites}
	case OCC:
		t := sys.OCC.Begin(ctx)
		tx.occTx = t
		tx.opts = phoenix.WriteOpts{Read: t.ReadOpts(), OnWrite: t.RecordWrite}
	default:
		tx.opts = phoenix.WriteOpts{Sequential: sys.cfg.SequentialWrites}
	}
	// SequentialWrites (eager per-mutation RPCs) and StatementFlush
	// (PR-2-style statement-scoped batches) both keep the per-statement
	// pipeline; otherwise the transaction owns the mutator. OCC has no
	// per-statement variant: nothing may reach the store before validation
	// passes, so the transaction-scoped mutator is mandatory and the two
	// pipeline knobs are ignored.
	if sys.cfg.Concurrency == OCC || (!sys.cfg.SequentialWrites && !sys.cfg.StatementFlush) {
		tx.mutator = sys.Engine.Client().NewTxMutator()
		tx.opts.Mutator = tx.mutator
	}
	if tx.occTx != nil {
		// Every read of the write path (read-before-write, lock-chain
		// walks, view-maintenance locates, query scans) goes through the
		// tracking reader, so the read set is complete — including scan
		// ranges, which is what catches phantom-shaped conflicts.
		tx.opts.Reader = tx.occTx.Track(tx.mutator.View())
	}
	return tx
}

// Exec runs one write statement inside the transaction. On error the
// caller must Abort — the statement's buffered mutations are still in the
// transaction buffer and must not survive. Under MVCC every statement
// after the first runs at a fresh checkpoint (write pointer), so one
// statement's tombstones never shadow a later statement's puts at an equal
// timestamp.
func (tx *Tx) Exec(ctx *sim.Ctx, stmt sqlparser.Statement, params []schema.Value) error {
	if tx.done {
		return fmt.Errorf("synergy: transaction already finished")
	}
	if tx.mvccTx != nil && tx.stmts > 0 {
		tx.mvccTx.Checkpoint(ctx)
		tx.opts.TS = tx.mvccTx.ID()
		tx.opts.Read = tx.mvccTx.ReadOpts()
	}
	tx.stmts++
	return tx.sys.executeWriteBody(ctx, tx, stmt, params)
}

// Query runs a SELECT inside the transaction at the configured freshness
// default. See QueryWithReads.
func (tx *Tx) Query(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) (*phoenix.ResultSet, error) {
	return tx.QueryWithReads(ctx, sel, params, tx.sys.cfg.AsyncReads)
}

// QueryWithReads runs a SELECT inside the transaction with an explicit
// freshness contract. The query runs its view-based rewrite, and reads see
// the transaction's own buffered writes: under hierarchical locking the
// mutator overlay merges over latest-committed rows (with the §VIII-C
// dirty-restart protocol guarding view scans), under MVCC the overlay merges
// over the transaction's snapshot at its current checkpoint, and under OCC
// the query runs through the tracking reader — its ranges and keys join the
// read set, so commit-time validation covers what the transaction saw, not
// just what it wrote.
//
// The ReadWatermark gate waits to the transaction's read point rather than
// the arrival clock: an in-flight MVCC/OCC transaction cannot move its
// snapshot forward, so deltas applied beyond it would be invisible anyway —
// waiting past the snapshot would charge the reader for freshness it cannot
// observe.
func (tx *Tx) QueryWithReads(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value, reads ViewReadMode) (*phoenix.ResultSet, error) {
	cur, err := tx.QueryStreamWithReads(ctx, sel, params, reads)
	if err != nil {
		return nil, err
	}
	return phoenix.DrainCursor(ctx, cur)
}

// QueryStream runs a SELECT inside the transaction as a streaming cursor at
// the configured freshness default. See QueryStreamWithReads.
func (tx *Tx) QueryStream(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) (phoenix.RowCursor, error) {
	return tx.QueryStreamWithReads(ctx, sel, params, tx.sys.cfg.AsyncReads)
}

// QueryStreamWithReads is QueryWithReads returning a cursor. The cursor
// reads at the transaction's snapshot (and through its write overlay /
// tracking reader), but holds no transaction state of its own: Close only
// releases the scanner, and the transaction outlives the cursor. The cursor
// must be closed before the next statement runs — it reads through the
// transaction's current checkpoint, which the next Exec advances.
func (tx *Tx) QueryStreamWithReads(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value, reads ViewReadMode) (phoenix.RowCursor, error) {
	if tx.done {
		return nil, fmt.Errorf("synergy: transaction already finished")
	}
	sys := tx.sys
	stmt := sys.rewriteFor(sel)
	var readTS int64
	switch {
	case tx.mvccTx != nil:
		readTS = tx.mvccTx.ID()
	case tx.occTx != nil:
		readTS = tx.occTx.Snapshot()
	default:
		readTS = sys.Store.CurrentTS()
	}
	if sys.Feed != nil && reads == ReadWatermark {
		for _, v := range sys.asyncViewsIn(stmt) {
			sys.Feed.WaitWatermark(ctx, v, readTS)
		}
	}
	opts := phoenix.QueryOpts{OnViewScan: sys.staleObserver(readTS, reads)}
	switch {
	case tx.occTx != nil:
		opts.Read = tx.occTx.ReadOpts()
		opts.Reader = tx.opts.Reader
	case tx.mvccTx != nil:
		opts.Read = tx.opts.Read // checkpoint-current snapshot
		if tx.mutator != nil {
			opts.View = tx.mutator.View()
		}
	default:
		opts.DirtyCheck = true
		if tx.mutator != nil {
			opts.View = tx.mutator.View()
		}
	}
	return sys.Engine.QueryStreamOpts(ctx, stmt, params, opts)
}

// Commit flushes every buffered mutation as one region-grouped batch round,
// finishes the MVCC transaction when present, and releases the held locks —
// writes become visible before the locks free, preserving the §VIII
// protocol. An OCC transaction validates first: only a commit whose read
// set survived backward validation flushes anything, and a conflict returns
// occ.ErrConflict with the buffer discarded untouched.
func (tx *Tx) Commit(ctx *sim.Ctx) error {
	if tx.done {
		return fmt.Errorf("synergy: transaction already finished")
	}
	tx.done = true
	if tx.occTx != nil {
		// Validation reserves the commit's cell timestamps (StampPending
		// runs inside the validator's critical section) so the flushed
		// cells form one atomic block under every snapshot horizon.
		if err := tx.sys.OCC.Validate(ctx, tx.occTx, tx.mutator.StampPending); err != nil {
			tx.mutator.Discard()
			return err
		}
		// The validator holds new snapshots below the flush watermark
		// until Finalize, so nobody observes a half-applied commit; a
		// failed flush (which applies nothing) withdraws the commit.
		if err := tx.mutator.Flush(ctx); err != nil {
			tx.sys.OCC.AbandonFlush(ctx, tx.occTx)
			return err
		}
		tx.sys.OCC.Finalize(ctx, tx.occTx)
		tx.publishDeltas(ctx)
		return nil
	}
	if tx.mutator != nil {
		// Lock entries for fresh root inserts that stayed deferred to the
		// end (no barrier or same-group statement promoted them) join the
		// commit flush as conditional create-free batch entries.
		for _, ref := range tx.deferred {
			if err := tx.sys.Locks.EnsureEntryDeferred(ctx, tx.mutator, ref.root, ref.key); err != nil {
				tx.releaseLocks(ctx)
				return err
			}
		}
		if err := tx.mutator.Flush(ctx); err != nil {
			if tx.mvccTx != nil {
				tx.sys.MVCCServer.Abort(ctx, tx.mvccTx)
			}
			tx.releaseLocks(ctx)
			return err
		}
	}
	if tx.mvccTx != nil {
		if err := tx.sys.MVCCServer.Commit(ctx, tx.mvccTx); err != nil {
			return err
		}
		tx.publishDeltas(ctx)
		return nil
	}
	// Publish before the locks release: lock serialization on a root makes
	// the per-view publish order match commit order, so each changefeed lane
	// applies deltas FIFO in commit order.
	tx.publishDeltas(ctx)
	return tx.releaseLocks(ctx)
}

// publishDeltas hands the transaction's deferred view deltas to the
// changefeed, tagged with the commit timestamp: the high stamp of the
// transaction's flushes when it owned a mutator, else the store clock (an
// upper bound — eager-write modes stamped everything at or below it).
func (tx *Tx) publishDeltas(ctx *sim.Ctx) {
	if len(tx.deltas) == 0 {
		return
	}
	sys := tx.sys
	commitTS := sys.Store.CurrentTS()
	if tx.mutator != nil {
		if ts := tx.mutator.FlushTS(); ts > 0 {
			commitTS = ts
		}
	}
	out := make([]changefeed.Delta, len(tx.deltas))
	for i, d := range tx.deltas {
		d := d
		out[i] = changefeed.Delta{View: d.view, CommitTS: commitTS, Apply: func(actx *sim.Ctx) error {
			return sys.applyDelta(actx, d)
		}}
	}
	tx.deltas = nil
	sys.Feed.Publish(ctx, out)
}

// deferMaintenance reports whether this view's maintenance for this write
// kind rides the changefeed instead of the writing statement.
func (tx *Tx) deferMaintenance(kind core.WriteKind, view string) bool {
	if tx.sys.Feed == nil {
		return false
	}
	switch tx.sys.maintModeFor(view) {
	case AsyncMaintenance:
		return true
	case HybridMaintenance:
		// Inserts and deletes stay synchronous (a view tuple's existence is
		// never stale); only the multi-row update phase is deferred.
		return kind == core.WriteUpdate
	}
	return false
}

// applyDelta replays one deferred maintenance action from the changefeed
// applier. The apply runs as its own statement-scoped write: no locks and no
// dirty marks (readers of an async view accept staleness instead of
// restarts), no transaction overlay (the base writes are flushed and
// visible), and zero-TS mutations pick up fresh oracle stamps at flush — so
// a snapshot begun after the apply sees the maintained view under every
// concurrency mode.
func (sys *System) applyDelta(ctx *sim.Ctx, d viewDelta) error {
	atx := &Tx{sys: sys, opts: phoenix.WriteOpts{}}
	switch d.parts.kind {
	case core.WriteInsert:
		return sys.maintainInsert(ctx, atx, d.action, d.parts)
	case core.WriteDelete:
		return sys.maintainDelete(ctx, atx, d.action, d.parts)
	default:
		return sys.maintainUpdate(ctx, atx, d.action, d.parts)
	}
}

// Abort discards the buffered mutations unapplied, eagerly un-marks any
// dirty marks a phase barrier already flushed, invalidates the MVCC
// transaction when present, and releases every held lock. Work a barrier
// already persisted stays durable — under MVCC it is invisible (the
// transaction id is invalidated); under hierarchical locking §VIII-B has no
// undo, which is why barriers only fire inside the marked window.
func (tx *Tx) Abort(ctx *sim.Ctx) error {
	if tx.done {
		return nil
	}
	tx.done = true
	tx.deltas = nil // deferred maintenance dies with the transaction
	if tx.mutator != nil {
		tx.mutator.Discard()
	}
	var first error
	if len(tx.marks) > 0 {
		first = tx.sys.unmarkEager(ctx, tx.marks, tx.opts)
		tx.marks = nil
	}
	if tx.mvccTx != nil {
		tx.sys.MVCCServer.Abort(ctx, tx.mvccTx)
	}
	if tx.occTx != nil {
		// Nothing flushed (OCC runs no phase barriers), nothing marked,
		// nothing locked: the abort is a pure buffer discard.
		tx.sys.OCC.Abort(ctx, tx.occTx)
	}
	if err := tx.releaseLocks(ctx); err != nil && first == nil {
		first = err
	}
	return first
}

// acquireLock takes (and records) a root lock, holding it until Commit or
// Abort; re-acquisition of a lock the transaction already holds is free.
func (tx *Tx) acquireLock(ctx *sim.Ctx, root, key string) error {
	ref := lockRef{root, key}
	if _, held := tx.lockSet[ref]; held {
		return nil
	}
	// A ref this transaction deferred has a known-absent entry (the
	// conditional create is still buffered): take the create-first path.
	acquire := tx.sys.Locks.Acquire
	for i, d := range tx.deferred {
		if d == ref {
			acquire = tx.sys.Locks.AcquireNew
			tx.deferred = append(tx.deferred[:i], tx.deferred[i+1:]...)
			break
		}
	}
	if err := acquire(ctx, root, key); err != nil {
		return err
	}
	if tx.lockSet == nil {
		tx.lockSet = map[lockRef]struct{}{}
	}
	tx.lockSet[ref] = struct{}{}
	tx.locks = append(tx.locks, ref)
	return nil
}

// promoteDeferred converts every deferred lock entry into a held lock —
// called before the first phase barrier of a marked update, which would
// otherwise publish the still-unlocked fresh root rows mid-transaction.
// The buffered conditional entry writes then no-op at the commit flush
// (the entries exist, held or freed by then) and Release frees the locks.
func (tx *Tx) promoteDeferred(ctx *sim.Ctx) error {
	for len(tx.deferred) > 0 {
		ref := tx.deferred[0]
		if err := tx.acquireLock(ctx, ref.root, ref.key); err != nil {
			return err
		}
	}
	return nil
}

func (tx *Tx) isDeferred(ref lockRef) bool {
	for _, d := range tx.deferred {
		if d == ref {
			return true
		}
	}
	return false
}

func (tx *Tx) releaseLocks(ctx *sim.Ctx) error {
	var first error
	for i := len(tx.locks) - 1; i >= 0; i-- {
		if err := tx.sys.Locks.Release(ctx, tx.locks[i].root, tx.locks[i].key); err != nil && first == nil {
			first = err
		}
	}
	// Deferred entries were never held: on commit the flush just created
	// them free; on abort the discarded buffer never created them.
	tx.locks, tx.lockSet, tx.deferred = nil, nil, nil
	return first
}

// unmarkEager writes dirty-off marks for flushed-but-not-unmarked rows on
// the abort path, through a private statement-scoped batch (the
// transaction's own mutator was just discarded).
func (sys *System) unmarkEager(ctx *sim.Ctx, marks []markRef, opts phoenix.WriteOpts) error {
	b := sys.Engine.NewWriteBatch(phoenix.WriteOpts{TS: opts.TS, Sequential: opts.Sequential})
	for _, mk := range marks {
		cell := []hbase.Cell{{Qualifier: phoenix.DirtyQualifier, Value: dirtyOff, TS: opts.TS}}
		if err := b.PutQuiet(ctx, mk.table, mk.key, cell); err != nil {
			return err
		}
	}
	return b.Flush(ctx)
}

// resolveRootKey walks the lock chain upward — child foreign key to parent
// primary key — to find the root-relation row key this write must lock
// (§VIII-A "to update a row for a relation in a rooted tree, we acquire the
// lock on the key of the associated row in the root relation"). Parent
// lookups go through rd so rows buffered by earlier statements of the same
// transaction resolve.
func (sys *System) resolveRootKey(ctx *sim.Ctx, rd hbase.Reader, plan *core.WritePlan, baseRow schema.Row) (string, error) {
	if plan.Root == "" {
		return "", nil
	}
	if plan.Root == plan.Table {
		info, err := sys.Catalog.Table(plan.Table)
		if err != nil {
			return "", err
		}
		return phoenix.PrimaryKey(info, baseRow)
	}
	cur := baseRow
	chain := plan.LockChain
	for i := len(chain) - 1; i >= 0; i-- {
		e := chain[i]
		fkVals := make([]schema.Value, len(e.FK))
		for j, c := range e.FK {
			fkVals[j] = cur[c]
			if cur[c] == nil {
				return "", nil // dangling reference: nothing to lock
			}
		}
		if i == 0 {
			// The FK values are the root's primary key.
			return schema.EncodeKey(fkVals...), nil
		}
		parentInfo, err := sys.Catalog.Table(e.Parent)
		if err != nil {
			return "", err
		}
		parentRow, found, err := sys.Engine.GetRowVia(ctx, rd, parentInfo, hbase.ReadOpts{}, fkVals...)
		if err != nil {
			return "", err
		}
		if !found {
			return "", nil
		}
		cur = parentRow
	}
	return "", nil
}

// ExecuteWrite runs one write statement as its own transaction. Under
// hierarchical locking it is §VIII-B: acquire the single root lock, write
// the base table (and base indexes), maintain every applicable view per the
// §VII construction procedures — marking and un-marking rows around
// multi-row view updates — and release the lock. Under MVCC the same base
// write and view maintenance run inside a Tephra-like snapshot transaction
// (no locks, no dirty marking) — the MVCC-A configuration of §IX-D2.
func (sys *System) ExecuteWrite(ctx *sim.Ctx, stmt sqlparser.Statement, params []schema.Value) error {
	return sys.ExecuteTxn(ctx, []sqlparser.Statement{stmt}, [][]schema.Value{params})
}

// ExecuteTxn runs stmts as one transaction on the local system: one
// transaction-scoped mutator shared by every statement, locks held to
// commit, a single commit flush. A statement error aborts the transaction —
// buffered mutations are discarded, flushed dirty marks un-marked, locks
// released. Note the §VIII-B durability caveat: under hierarchical locking
// a marked multi-row update's phase barriers flush everything buffered so
// far, and there is no undo log — an abort after such a barrier keeps that
// flushed work durable (under MVCC it is invisible instead, via the
// invalidated transaction id). Under OCC a validation conflict retries the
// whole transaction from a fresh snapshot with capped exponential backoff —
// the optimistic mirror of the lock path's contended spin — before
// surfacing occ.ErrConflict; a retried attempt re-executes every statement,
// and an aborted attempt has flushed nothing (OCC runs no phase barriers),
// so retry leaves no dirty marks and no partial state. The transaction
// layer calls this after WAL-logging; use System.ExecTxn to route through
// it.
func (sys *System) ExecuteTxn(ctx *sim.Ctx, stmts []sqlparser.Statement, paramsList [][]schema.Value) error {
	if len(stmts) != len(paramsList) {
		return fmt.Errorf("synergy: %d statements, %d parameter lists", len(stmts), len(paramsList))
	}
	maxRetries := sys.cfg.Costs.OCCMaxRetries
	if maxRetries <= 0 {
		maxRetries = 1
	}
	for attempt := 0; ; attempt++ {
		err := sys.executeTxnOnce(ctx, stmts, paramsList)
		if err == nil || !errors.Is(err, occ.ErrConflict) || attempt+1 >= maxRetries {
			return err
		}
		ctx.CountOCCRetry()
		// Conflict retries back off on the lock path's capped exponential
		// schedule before re-running from a fresh snapshot.
		ctx.Charge(sys.cfg.Costs.LockBackoff(attempt))
	}
}

// executeTxnOnce runs one attempt of the transaction.
func (sys *System) executeTxnOnce(ctx *sim.Ctx, stmts []sqlparser.Statement, paramsList [][]schema.Value) error {
	tx := sys.BeginTx(ctx)
	if tx.occTx != nil && sys.occPostBegin != nil {
		sys.occPostBegin()
	}
	for i, stmt := range stmts {
		if err := tx.Exec(ctx, stmt, paramsList[i]); err != nil {
			// A failed abort (un-mark or lock release) must surface too:
			// it leaves rows dirty or locked, which the operator needs to
			// know about far more than the statement error alone.
			if aerr := tx.Abort(ctx); aerr != nil {
				return fmt.Errorf("%w (abort: %v)", err, aerr)
			}
			return err
		}
	}
	return tx.Commit(ctx)
}

// executeWriteBody is the shared base-write + view-maintenance procedure of
// one statement inside tx.
func (sys *System) executeWriteBody(ctx *sim.Ctx, tx *Tx, stmt sqlparser.Statement, params []schema.Value) error {
	opts := tx.opts
	parts, info, err := sys.parseWrite(stmt, params)
	if err != nil {
		return err
	}
	if sys.cfg.DisableViews {
		// Baseline deployment: plain Phoenix write.
		return sys.Engine.Exec(ctx, stmt, params, opts)
	}
	plan, err := core.PlanWrite(sys.Design, stmt)
	if err != nil {
		return err
	}

	// Materialize the base row: inserts carry it; updates/deletes read it
	// (also needed for view maintenance). The read goes through the
	// transaction's overlay so rows written by earlier statements of the
	// same transaction — still buffered, invisible in the store — resolve.
	rd := sys.Engine.Reader(opts)
	baseRow := parts.row
	if parts.kind != core.WriteInsert {
		row, found, err := sys.Engine.GetRowVia(ctx, rd, info, opts.Read, parts.keyVals...)
		if err != nil {
			return err
		}
		if !found {
			return nil // nothing to write
		}
		baseRow = row
	}

	// Step 1: acquire the single lock, held until the transaction commits.
	// A fresh root insert on a buffered transaction skips self-acquisition:
	// the new row is unpublished until a barrier or the commit flush, so no
	// concurrent transaction can resolve its group yet — its lock entry is
	// deferred into the commit flush below, and any phase barrier promotes
	// it to a held lock before publishing (see EnsureEntryDeferred).
	if tx.lock {
		rootKey, err := sys.resolveRootKey(ctx, rd, plan, baseRow)
		if err != nil {
			return err
		}
		deferEntry := tx.mutator != nil && parts.kind == core.WriteInsert && plan.Root == parts.table
		if plan.Root != "" && rootKey != "" && !deferEntry {
			if err := tx.acquireLock(ctx, plan.Root, rootKey); err != nil {
				return err
			}
		}
	}

	// Base write (+ base indexes) through the SQL layer, emitting into the
	// transaction's mutator.
	if err := sys.Engine.Exec(ctx, stmt, params, opts); err != nil {
		return err
	}
	// New root rows get a lock-table entry (§VIII-A). On a buffered
	// transaction the self-lock was skipped above and the entry is only
	// recorded here: Commit buffers a conditional create-free batch entry
	// for every ref still deferred (see EnsureEntryDeferred), while a ref
	// promoted to a held lock meanwhile needs no entry write at all —
	// Acquire created it and Release frees it. Buffer-less modes
	// self-acquired in step 1, so the held-lock check keeps this from
	// overwriting their live lock; the eager put stays as the fallback
	// for refs locked some other way.
	if tx.lock && parts.kind == core.WriteInsert && sys.isRoot(parts.table) {
		key, _ := phoenix.PrimaryKey(info, parts.row)
		ref := lockRef{parts.table, key}
		if _, held := tx.lockSet[ref]; !held {
			if tx.mutator != nil {
				if !tx.isDeferred(ref) {
					tx.deferred = append(tx.deferred, ref)
				}
			} else if err := sys.Locks.EnsureEntry(ctx, parts.table, key); err != nil {
				return err
			}
		}
	}

	// View maintenance. Async (and, for updates, hybrid) views defer to the
	// changefeed: the delta is captured now but published only if the
	// transaction commits, so an abort leaves no view delta applied.
	for _, action := range plan.Actions {
		if tx.deferMaintenance(parts.kind, action.View.Name()) {
			tx.deltas = append(tx.deltas, viewDelta{view: action.View.Name(), action: action, parts: parts})
			continue
		}
		switch parts.kind {
		case core.WriteInsert:
			if err := sys.maintainInsert(ctx, tx, action, parts); err != nil {
				return err
			}
		case core.WriteDelete:
			if err := sys.maintainDelete(ctx, tx, action, parts); err != nil {
				return err
			}
		case core.WriteUpdate:
			if err := sys.maintainUpdate(ctx, tx, action, parts); err != nil {
				return err
			}
		}
	}
	return nil
}

// maintainInsert constructs and inserts the view tuple (§VII-A2): read the
// k-1 related base rows walking the foreign keys upward (through the
// transaction overlay), merge, insert.
func (sys *System) maintainInsert(ctx *sim.Ctx, tx *Tx, action core.ViewAction, parts *writeParts) error {
	opts := tx.opts
	rd := sys.Engine.Reader(opts)
	combined := parts.row.Clone()
	cur := parts.row
	for _, e := range action.ReadChain {
		fkVals := make([]schema.Value, len(e.FK))
		for j, c := range e.FK {
			fkVals[j] = cur[c]
			if cur[c] == nil {
				return nil // dangling FK: no view tuple
			}
		}
		parentInfo, err := sys.Catalog.Table(e.Parent)
		if err != nil {
			return err
		}
		parentRow, found, err := sys.Engine.GetRowVia(ctx, rd, parentInfo, opts.Read, fkVals...)
		if err != nil {
			return err
		}
		if !found {
			return nil
		}
		for k, v := range parentRow {
			combined[k] = v
		}
		cur = parentRow
	}
	viewInfo, err := sys.Catalog.Table(action.View.Name())
	if err != nil {
		return err
	}
	return sys.Engine.PutRow(ctx, viewInfo, combined, opts)
}

// maintainDelete removes the view tuple: the view key equals the base key
// (the deleted relation is the view's last); the view row is read first to
// construct the view-index keys (§VII-B2).
func (sys *System) maintainDelete(ctx *sim.Ctx, tx *Tx, action core.ViewAction, parts *writeParts) error {
	viewInfo, err := sys.Catalog.Table(action.View.Name())
	if err != nil {
		return err
	}
	return sys.Engine.DeleteRow(ctx, viewInfo, parts.keyVals, tx.opts)
}

// maintainUpdate applies a base-table update to a view. Under the
// hierarchical protocol (tx.lock) it is the 6-step procedure of §VIII-B:
// (1) lock held by the transaction, (2) read affected rows, (3) mark them
// dirty, (4) update, (5) un-mark, (6) release at commit. Under MVCC the
// marking steps are skipped — snapshot visibility isolates readers.
func (sys *System) maintainUpdate(ctx *sim.Ctx, tx *Tx, action core.ViewAction, parts *writeParts) error {
	opts := tx.opts
	mark := tx.lock
	viewInfo, err := sys.Catalog.Table(action.View.Name())
	if err != nil {
		return err
	}

	// Step 2: read the view rows that need updating (overlay-aware: a view
	// tuple an earlier statement inserted but has not flushed is located).
	rows, err := sys.locateViewRows(ctx, sys.Engine.Reader(opts), action, viewInfo, parts, opts.Read)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return nil
	}

	// The phase barriers below publish everything the transaction has
	// buffered, including any fresh root rows whose lock entries are still
	// deferred: promote those to held locks first, so a published row is
	// always covered by its group lock until commit.
	if mark && len(tx.deferred) > 0 {
		if err := tx.promoteDeferred(ctx); err != nil {
			return err
		}
	}

	type target struct {
		viewKey string
		row     schema.Row
	}
	targets := make([]target, 0, len(rows))
	for _, r := range rows {
		key, err := phoenix.PrimaryKey(viewInfo, r)
		if err != nil {
			return err
		}
		targets = append(targets, target{viewKey: key, row: r})
	}

	// Each phase of the protocol ends in an ordering barrier: the dirty
	// marks flush before any update is issued, the updates flush before any
	// row is un-marked. On a transaction-scoped mutator a barrier also
	// flushes whatever earlier statements buffered — buffer order is
	// preserved across it, so the §VIII-B ordering holds for the whole
	// transaction. Within a phase, mutations to independent rows carry no
	// ordering requirement and ship as region-grouped batch RPCs. Marks are
	// quiet (not part of the MVCC write set); under MVCC no barrier fires —
	// everything rides to the commit flush. The transaction records flushed
	// marks so an abort can un-mark them.
	batch := sys.Engine.NewWriteBatch(opts)
	markCell := func(v []byte) []hbase.Cell {
		return []hbase.Cell{{Qualifier: phoenix.DirtyQualifier, Value: v, TS: opts.TS}}
	}
	putCells := func(row schema.Row) []hbase.Cell {
		return phoenix.StampCells(phoenix.RowToCells(row), opts.TS)
	}
	// markAll emits one phase of marks and barriers it. The dirty-on phase
	// records the marked rows on the transaction (reusing the index keys
	// it already computes) so an abort can un-mark them; the un-mark phase
	// has nothing to record.
	markAll := func(value []byte, record bool) error {
		var refs []markRef
		if record {
			refs = make([]markRef, 0, len(targets))
		}
		for _, tg := range targets {
			if err := batch.PutQuiet(ctx, viewInfo.Name, tg.viewKey, markCell(value)); err != nil {
				return err
			}
			if record {
				refs = append(refs, markRef{viewInfo.Name, tg.viewKey})
			}
			for _, idx := range viewInfo.Indexes {
				if idx.KeyOnly {
					continue
				}
				ikey := phoenix.IndexKey(viewInfo, idx, tg.row)
				if err := batch.PutQuiet(ctx, idx.Name, ikey, markCell(value)); err != nil {
					return err
				}
				if record {
					refs = append(refs, markRef{idx.Name, ikey})
				}
			}
		}
		if err := batch.Barrier(ctx); err != nil {
			return err
		}
		if record {
			tx.marks = refs
		}
		return nil
	}

	// Step 3: mark rows (view + covered view-index copies; key-only
	// maintenance indexes are never read by queries and need no marks).
	if mark {
		if err := markAll(dirtyOn, true); err != nil {
			return err
		}
	}

	// Step 4: issue the updates as one batch. Index keys may move with the
	// update, so the marked set is re-recorded from the keys this loop
	// computes — after the barrier an abort must un-mark the rows that are
	// actually marked now.
	var updatedRefs []markRef
	if mark {
		updatedRefs = make([]markRef, 0, len(tx.marks))
	}
	for ti := range targets {
		tg := &targets[ti]
		updated := tg.row.Clone()
		for c, v := range parts.assign {
			updated[c] = v
		}
		if err := batch.Put(ctx, viewInfo.Name, tg.viewKey, putCells(parts.assign)); err != nil {
			return err
		}
		if mark {
			updatedRefs = append(updatedRefs, markRef{viewInfo.Name, tg.viewKey})
		}
		for _, idx := range viewInfo.Indexes {
			oldKey := phoenix.IndexKey(viewInfo, idx, tg.row)
			newKey := phoenix.IndexKey(viewInfo, idx, updated)
			if mark && !idx.KeyOnly {
				updatedRefs = append(updatedRefs, markRef{idx.Name, newKey})
			}
			if oldKey != newKey {
				// The old entry's tombstone is a real write: it must be in
				// the transaction's write set (phoenix.UpdateRow notifies
				// its moved base-index deletes the same way), or OCC
				// validation would admit a transaction that scanned the old
				// key's range as conflict-free.
				if err := batch.Delete(ctx, idx.Name, oldKey, opts.TS); err != nil {
					return err
				}
				cells := putCells(phoenix.IndexRowContent(viewInfo, idx, updated))
				if mark && !idx.KeyOnly {
					cells = append(cells, hbase.Cell{Qualifier: phoenix.DirtyQualifier, Value: dirtyOn, TS: opts.TS})
				}
				if err := batch.Put(ctx, idx.Name, newKey, cells); err != nil {
					return err
				}
				continue
			}
			if !phoenix.IndexTouched(viewInfo, idx, parts.assign) {
				continue
			}
			if err := batch.Put(ctx, idx.Name, newKey, putCells(parts.assign)); err != nil {
				return err
			}
		}
		tg.row = updated
	}
	if mark {
		if err := batch.Barrier(ctx); err != nil {
			return err
		}
		tx.marks = updatedRefs
	} else if err := batch.Flush(ctx); err != nil {
		return err
	}

	// Step 5: un-mark.
	if mark {
		if err := markAll(dirtyOff, false); err != nil {
			return err
		}
		tx.marks = nil
	}
	return nil
}

// locateViewRows finds the view rows affected by an update per the plan's
// locator (§VII-C). All reads go through rd, so view tuples buffered by
// earlier statements of the same transaction are located too.
func (sys *System) locateViewRows(ctx *sim.Ctx, rd hbase.Reader, action core.ViewAction, viewInfo *phoenix.TableInfo, parts *writeParts, read hbase.ReadOpts) ([]schema.Row, error) {
	switch action.Locator {
	case core.LocateByViewKey:
		row, found, err := sys.Engine.GetRowVia(ctx, rd, viewInfo, read, parts.keyVals...)
		if err != nil || !found {
			return nil, err
		}
		return []schema.Row{row}, nil

	case core.LocateByIndex:
		// The maintenance index stores only keys (§VII-C); collect the
		// view keys it yields, then read the full rows. Locator probes
		// are short prefix reads, so they stay sequential.
		prefix := schema.KeyPrefix(parts.keyVals...)
		sc, err := rd.OpenScan(ctx, action.LocatorIndex.Name(), hbase.ScanSpec{Prefix: prefix, Read: read, Sequential: true})
		if err != nil {
			return nil, err
		}
		var keys [][]schema.Value
		for {
			r, ok := sc.Next(ctx)
			if !ok {
				break
			}
			row := phoenix.CellsToRow(r)
			vals := make([]schema.Value, len(viewInfo.Key))
			for i, c := range viewInfo.Key {
				vals[i] = row[c]
			}
			keys = append(keys, vals)
		}
		var out []schema.Row
		for _, vals := range keys {
			full, found, err := sys.Engine.GetRowVia(ctx, rd, viewInfo, read, vals...)
			if err != nil {
				return nil, err
			}
			if found {
				out = append(out, full)
			}
		}
		return out, nil

	default: // LocateByScan
		// A full view scan with a pushed-down filter; multi-region views
		// scatter-gather the regions like any other full scan.
		rel := sys.Design.Schema.Relation(parts.table)
		pk := rel.PK
		keyVals := parts.keyVals
		sc, err := rd.OpenScan(ctx, viewInfo.Name, hbase.ScanSpec{
			Read: read,
			Filter: func(r hbase.RowResult) bool {
				row := phoenix.CellsToRow(r)
				for i, c := range pk {
					if !schema.ValuesEqual(row[c], keyVals[i]) {
						return false
					}
				}
				return true
			},
		})
		if err != nil {
			return nil, err
		}
		var out []schema.Row
		for {
			r, ok := sc.Next(ctx)
			if !ok {
				return out, nil
			}
			out = append(out, phoenix.CellsToRow(r))
		}
	}
}
