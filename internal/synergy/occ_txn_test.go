package synergy

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"synergy/internal/hbase"
	"synergy/internal/occ"
	"synergy/internal/phoenix"
	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

// occConfig is the standard OCC deployment of the fanout fixture.
var occConfig = Config{Concurrency: OCC, MaxVersions: 16}

// TestOCCTxnMultiStatementParity: the full multi-statement transaction
// workload (leaf inserts, a read-your-writes update, a delete, view
// maintenance throughout) leaves the same visible state under OCC as under
// hierarchical locking.
func TestOCCTxnMultiStatementParity(t *testing.T) {
	const views, rowsPer = 4, 6
	stmts, params := txnWorkload(views)

	hier := fanoutSystem(t, views, rowsPer, Config{})
	if err := hier.ExecTxn(sim.NewCtx(), stmts, params); err != nil {
		t.Fatal(err)
	}
	optimistic := fanoutSystem(t, views, rowsPer, occConfig)
	if err := optimistic.ExecTxn(sim.NewCtx(), stmts, params); err != nil {
		t.Fatal(err)
	}
	// Hierarchical leaves _dirty=0 cells behind (the un-mark phase writes
	// them); OCC never marks at all. An off mark is semantically absent, so
	// normalize it away before comparing.
	requireSameState(t, stripDirtyOff(dropLockTables(dumpState(t, hier))),
		stripDirtyOff(dropLockTables(dumpState(t, optimistic))))
}

// stripDirtyOff removes dirty-off marker cells from a state dump: a mark
// that is off is semantically the same as a mark never written.
func stripDirtyOff(state map[string][]string) map[string][]string {
	out := map[string][]string{}
	for tbl, rows := range state {
		cleaned := make([]string, len(rows))
		for i, r := range rows {
			r = strings.ReplaceAll(r, " "+phoenix.DirtyQualifier+"=0", "")
			r = strings.ReplaceAll(r, "{"+phoenix.DirtyQualifier+"=0}", "{}")
			cleaned[i] = r
		}
		out[tbl] = cleaned
	}
	return out
}

// TestOCCValidationConflict pins the backward-validation contract at the
// system level: a transaction that read a root row loses to a write on that
// row committed while it ran, and its buffered writes (including view
// maintenance) never reach the store.
func TestOCCValidationConflict(t *testing.T) {
	sys := fanoutSystem(t, 2, 4, occConfig)
	up := sqlparser.MustParse("UPDATE Root SET RVal = ? WHERE RID = ?")

	ctx := sim.NewCtx()
	tx := sys.BeginTx(ctx)
	if err := tx.Exec(ctx, up, []schema.Value{"loser", int64(1)}); err != nil {
		t.Fatal(err)
	}
	// A concurrent transaction writes the same root row and commits first
	// (through the WAL-logged transaction layer, with its own retry loop).
	if err := sys.Exec(sim.NewCtx(), up, []schema.Value{"winner", int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); !errors.Is(err, occ.ErrConflict) {
		t.Fatalf("commit after overlapping committed write = %v, want occ.ErrConflict", err)
	}

	// The winner's value (and its view maintenance) stands; the loser left
	// nothing — no partial writes, no dirty marks.
	sel := sys.Design.Workload.Selects()[0]
	rs, err := sys.Query(sim.NewCtx(), sel, []schema.Value{"Leaf00-0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) == 0 {
		t.Fatal("fixture query returned nothing")
	}
	for _, r := range rs.Rows {
		if got := r["RVal"]; !schema.ValuesEqual(got, "winner") {
			t.Fatalf("RVal = %v, want winner (view out of sync or loser leaked)", got)
		}
	}
	requireNoDirtyMarks(t, sys)
}

// TestOCCRetryAfterInjectedConflict pins the ExecuteTxn retry loop
// deterministically: the fault-injection hook commits a conflicting write
// inside the first attempt's validation window, so attempt one must abort
// on validation, the retry must run from a fresh snapshot, and exactly one
// retry must be recorded — with the final state reflecting the retried
// transaction over the interloper's.
func TestOCCRetryAfterInjectedConflict(t *testing.T) {
	sys := fanoutSystem(t, 4, 6, occConfig)
	up := sqlparser.MustParse("UPDATE Root SET RVal = ? WHERE RID = ?")

	injected := false
	sys.occPostBegin = func() {
		if injected {
			return
		}
		injected = true
		hook := sys.occPostBegin
		sys.occPostBegin = nil // the interloper's own attempt must not recurse
		defer func() { sys.occPostBegin = hook }()
		if err := sys.ExecuteTxn(sim.NewCtx(), []sqlparser.Statement{up},
			[][]schema.Value{{schema.Value("interloper"), int64(1)}}); err != nil {
			t.Errorf("injected write: %v", err)
		}
	}

	ctx := sim.NewCtx()
	if err := sys.ExecTxn(ctx, []sqlparser.Statement{up},
		[][]schema.Value{{schema.Value("final"), int64(1)}}); err != nil {
		t.Fatal(err)
	}
	sys.occPostBegin = nil
	if got := ctx.Snapshot().OCCRetries; got != 1 {
		t.Fatalf("OCC retries = %d, want exactly 1 (conflict injected into attempt one only)", got)
	}
	st := sys.OCC.Stats()
	if st.Conflicts != 1 {
		t.Fatalf("validator conflicts = %d, want 1", st.Conflicts)
	}
	// The retried transaction committed over the interloper; views agree.
	sel := sys.Design.Workload.Selects()[0]
	rs, err := sys.Query(sim.NewCtx(), sel, []schema.Value{"Leaf00-0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) == 0 {
		t.Fatal("fixture query returned nothing")
	}
	for _, r := range rs.Rows {
		if got := r["RVal"]; !schema.ValuesEqual(got, "final") {
			t.Fatalf("RVal = %v, want final (retry lost or view stale)", got)
		}
	}
	requireNoDirtyMarks(t, sys)
}

// TestOCCConflictRetrySerializable: concurrent conflicting transactions
// through System.ExecTxn all eventually commit — validation aborts are
// absorbed by the bounded-backoff retry loop — and the validator's counters
// balance: every begun writer either committed or was retried.
func TestOCCConflictRetrySerializable(t *testing.T) {
	sys := fanoutSystem(t, 2, 4, occConfig)
	up := sqlparser.MustParse("UPDATE Root SET RVal = ? WHERE RID = ?")

	const workers, perWorker = 6, 5
	var wg sync.WaitGroup
	var retries sync.Map
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine int64
			for i := 0; i < perWorker; i++ {
				ctx := sim.NewCtx()
				// All workers hammer root row 1: every transaction reads
				// the row (read-before-write + lock-chain walk) and
				// writes it, so any overlap in flight is a conflict.
				if err := sys.ExecTxn(ctx, []sqlparser.Statement{up},
					[][]schema.Value{{schema.Value("w"), int64(1)}}); err != nil {
					errs <- err
					return
				}
				mine += ctx.Snapshot().OCCRetries
			}
			retries.Store(w, mine)
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("contended transaction failed despite retry: %v", err)
	}

	var totalRetries int64
	retries.Range(func(_, v any) bool { totalRetries += v.(int64); return true })
	st := sys.OCC.Stats()
	if st.Commits != workers*perWorker {
		t.Fatalf("validator commits = %d, want %d", st.Commits, workers*perWorker)
	}
	if st.Conflicts != totalRetries {
		t.Fatalf("validator conflicts (%d) != observed retries (%d): an abort was not retried",
			st.Conflicts, totalRetries)
	}
	requireNoDirtyMarks(t, sys)
	t.Logf("commits=%d conflicts=%d retries=%d", st.Commits, st.Conflicts, totalRetries)
}

// TestOCCViewMaintenanceSurvivesConflictRetry: a multi-row view update that
// loses validation leaves no dirty marks and no partial view state (OCC runs
// the §VIII-B phases without marks and without barriers — nothing flushes
// before validation), and a retried execution converges to the same state a
// clean run produces.
func TestOCCViewMaintenanceSurvivesConflictRetry(t *testing.T) {
	sys := fanoutSystem(t, 4, 6, occConfig)
	up := sqlparser.MustParse("UPDATE Root SET RVal = ? WHERE RID = ?")

	// First attempt loses: a conflicting write commits mid-flight.
	ctx := sim.NewCtx()
	tx := sys.BeginTx(ctx)
	if err := tx.Exec(ctx, up, []schema.Value{"retry-me", int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Exec(sim.NewCtx(), up, []schema.Value{"interloper", int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); !errors.Is(err, occ.ErrConflict) {
		t.Fatalf("commit = %v, want occ.ErrConflict", err)
	}
	requireNoDirtyMarks(t, sys)

	// The retry (fresh snapshot, whole transaction re-executed) succeeds.
	if err := sys.ExecTxn(sim.NewCtx(), []sqlparser.Statement{up},
		[][]schema.Value{{schema.Value("retry-me"), int64(1)}}); err != nil {
		t.Fatal(err)
	}

	// Reference: the same two committed updates on a fresh system.
	ref := fanoutSystem(t, 4, 6, occConfig)
	for _, v := range []string{"interloper", "retry-me"} {
		if err := ref.Exec(sim.NewCtx(), up, []schema.Value{schema.Value(v), int64(1)}); err != nil {
			t.Fatal(err)
		}
	}
	requireSameState(t, dropLockTables(dumpState(t, ref)), dropLockTables(dumpState(t, sys)))
	requireNoDirtyMarks(t, sys)
}

// TestOCCAbortedTxnNotReplayed mirrors TestAbortedTxnNotReplayed for OCC:
// a transaction that fails writes an abort record under its txid, so WAL
// recovery skips it and its buffered writes never resurrect.
func TestOCCAbortedTxnNotReplayed(t *testing.T) {
	sys := fanoutSystem(t, 2, 4, occConfig)
	stmts := []sqlparser.Statement{
		sqlparser.MustParse("INSERT INTO Leaf00 (Leaf00ID, Leaf00_RID, Leaf00Val) VALUES (?, ?, ?)"),
		sqlparser.MustParse("INSERT INTO Nonexistent (X) VALUES (?)"),
	}
	params := [][]schema.Value{{int64(900), int64(1), "ghost"}, {int64(1)}}
	if err := sys.ExecTxn(sim.NewCtx(), stmts, params); err == nil {
		t.Fatal("transaction against missing table succeeded")
	}

	for _, s := range sys.Txn.Slaves() {
		s.Kill()
	}
	if _, err := sys.Txn.DetectAndRecover(sim.NewCtx()); err != nil {
		t.Fatalf("recovery replayed an aborted transaction: %v", err)
	}
	raw, err := sys.Engine.Client().Get(sim.NewCtx(), "Leaf00", schema.EncodeKey(int64(900)), hbase.ReadOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !raw.Empty() {
		t.Fatalf("aborted transaction's write resurrected by replay: %s", raw)
	}
}

// TestOCCTxnGroupedReplay: a multi-statement OCC transaction logged but not
// executed before a slave died replays as one transaction — the replay
// validates like any other commit and lands the same state as a normal run.
func TestOCCTxnGroupedReplay(t *testing.T) {
	sys := fanoutSystem(t, 2, 4, occConfig)
	slave := sys.Txn.Slaves()[0]
	stmts, params := txnWorkload(2)

	slave.KillBeforeNextExec()
	if err := slave.ExecuteTxn(sim.NewCtx(), stmts, params); err == nil {
		t.Fatal("expected mid-transaction crash")
	}
	if _, err := sys.Txn.DetectAndRecover(sim.NewCtx()); err != nil {
		t.Fatal(err)
	}

	ref := fanoutSystem(t, 2, 4, occConfig)
	if err := ref.ExecTxn(sim.NewCtx(), stmts, params); err != nil {
		t.Fatal(err)
	}
	requireSameState(t, dumpState(t, ref), dumpState(t, sys))
}

// TestOCCMovedIndexTombstoneInWriteSet pins write-set completeness: when a
// view-indexed column changes, the old index entry's tombstone must enter
// the OCC write set — a quiet delete there would let a transaction that
// scanned the old key's range validate as conflict-free against this one.
func TestOCCMovedIndexTombstoneInWriteSet(t *testing.T) {
	sys := fanoutSystem(t, 1, 4, occConfig)
	viewInfo, err := sys.Catalog.Table(sys.Design.Views[0].Name())
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewCtx()
	oldRow, found, err := sys.Engine.GetRow(ctx, viewInfo, hbase.ReadOpts{}, int64(1))
	if err != nil || !found {
		t.Fatalf("fixture view row: found=%v err=%v", found, err)
	}
	newRow := oldRow.Clone()
	newRow["Leaf00Val"] = "moved"

	tx := sys.BeginTx(ctx)
	if err := tx.Exec(ctx, sqlparser.MustParse("UPDATE Leaf00 SET Leaf00Val = ? WHERE Leaf00ID = ?"),
		[]schema.Value{"moved", int64(1)}); err != nil {
		t.Fatal(err)
	}
	movedKeys := 0
	for _, idx := range viewInfo.Indexes {
		oldKey := phoenix.IndexKey(viewInfo, idx, oldRow)
		if phoenix.IndexKey(viewInfo, idx, newRow) == oldKey {
			continue
		}
		movedKeys++
		if !tx.occTx.HasWrite(idx.Name, oldKey) {
			t.Errorf("moved index entry %s/%q: tombstone missing from the OCC write set", idx.Name, oldKey)
		}
	}
	if movedKeys == 0 {
		t.Fatal("fixture moved no index keys; the test asserts nothing")
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
}

// requireNoDirtyMarks scans every table for a surviving dirty mark.
func requireNoDirtyMarks(t *testing.T, sys *System) {
	t.Helper()
	for tbl, rows := range dumpState(t, sys) {
		for _, r := range rows {
			if strings.Contains(r, phoenix.DirtyQualifier+"=1") {
				t.Fatalf("dirty mark present in %s: %s", tbl, r)
			}
		}
	}
}
