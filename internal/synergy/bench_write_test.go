package synergy

import (
	"fmt"
	"testing"

	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

// BenchmarkMaintenanceWrite measures the maintenance-heavy write path: one
// UPDATE on the root relation fans out to `views` multi-row view
// maintenances (locate + mark + update + un-mark over 16 view rows each),
// batched pipeline vs the sequential per-mutation baseline. Reported
// sim-ms/op is the simulated statement response time; batched must sit
// strictly below sequential from 4 views up (the acceptance criterion is
// also pinned by TestBatchedWriteSimulatedSpeedup).
func BenchmarkMaintenanceWrite(b *testing.B) {
	for _, views := range []int{1, 4, 16} {
		for _, mode := range []struct {
			name       string
			sequential bool
		}{
			{"sequential", true},
			{"batched", false},
		} {
			b.Run(fmt.Sprintf("views=%d/%s", views, mode.name), func(b *testing.B) {
				sys := fanoutSystem(b, views, 16, Config{SequentialWrites: mode.sequential})
				up := sqlparser.MustParse("UPDATE Root SET RVal = ? WHERE RID = ?")
				b.ReportAllocs()
				var total sim.Micros
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ctx := sim.NewCtx()
					if err := sys.Exec(ctx, up, []schema.Value{fmt.Sprintf("v-%d", i), int64(1)}); err != nil {
						b.Fatal(err)
					}
					total += ctx.Elapsed()
				}
				b.ReportMetric(total.Milliseconds()/float64(b.N), "sim-ms/op")
			})
		}
	}
}

// BenchmarkInsertWithViews measures view-tuple construction on insert (one
// parent read + view put + index puts per applicable view), batched vs
// sequential. Keys rotate so every iteration inserts a fresh row.
func BenchmarkInsertWithViews(b *testing.B) {
	for _, mode := range []struct {
		name       string
		sequential bool
	}{
		{"sequential", true},
		{"batched", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			sys := fanoutSystem(b, 4, 16, Config{SequentialWrites: mode.sequential})
			ins := sqlparser.MustParse("INSERT INTO Leaf00 (Leaf00ID, Leaf00_RID, Leaf00Val) VALUES (?, ?, ?)")
			b.ReportAllocs()
			var total sim.Micros
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx := sim.NewCtx()
				params := []schema.Value{int64(1000 + i), int64(1), fmt.Sprintf("ins-%d", i)}
				if err := sys.Exec(ctx, ins, params); err != nil {
					b.Fatal(err)
				}
				total += ctx.Elapsed()
			}
			b.ReportMetric(total.Milliseconds()/float64(b.N), "sim-ms/op")
		})
	}
}

// BenchmarkDeleteWithViews measures view-tuple teardown on delete (base
// tombstone + index tombstones + view and view-index tombstones), batched
// vs sequential. Each iteration inserts (untimed) then deletes (timed).
func BenchmarkDeleteWithViews(b *testing.B) {
	for _, mode := range []struct {
		name       string
		sequential bool
	}{
		{"sequential", true},
		{"batched", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			sys := fanoutSystem(b, 4, 16, Config{SequentialWrites: mode.sequential})
			ins := sqlparser.MustParse("INSERT INTO Leaf00 (Leaf00ID, Leaf00_RID, Leaf00Val) VALUES (?, ?, ?)")
			del := sqlparser.MustParse("DELETE FROM Leaf00 WHERE Leaf00ID = ?")
			b.ReportAllocs()
			var total sim.Micros
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				id := int64(1000 + i)
				if err := sys.Exec(sim.NewCtx(), ins, []schema.Value{id, int64(1), "doomed"}); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				ctx := sim.NewCtx()
				if err := sys.Exec(ctx, del, []schema.Value{id}); err != nil {
					b.Fatal(err)
				}
				total += ctx.Elapsed()
			}
			b.ReportMetric(total.Milliseconds()/float64(b.N), "sim-ms/op")
		})
	}
}
