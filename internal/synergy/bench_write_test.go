package synergy

import (
	"fmt"
	"testing"

	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

// benchModes are the three write pipelines — eager per-mutation RPCs
// (paper-faithful), one batch per statement (PR-2), the transaction-scoped
// mutator flushed at commit/phase barriers (default) — plus the optimistic
// concurrency mode, which rides the transaction-scoped pipeline with
// commit-time validation instead of locks and dirty marks.
var benchModes = []struct {
	name string
	cfg  Config
}{
	{"sequential", Config{SequentialWrites: true}},
	{"batched", Config{StatementFlush: true}},
	{"txn", Config{}},
	{"occ", Config{Concurrency: OCC, MaxVersions: 16}},
}

// BenchmarkMaintenanceWrite measures the maintenance-heavy write path: one
// UPDATE on the root relation fans out to `views` multi-row view
// maintenances (locate + mark + update + un-mark over 16 view rows each),
// across the three pipeline modes. Reported sim-ms/op is the simulated
// statement response time; batched must sit strictly below sequential from
// 4 views up, txn at or below batched (the acceptance criteria are pinned
// by TestBatchedWriteSimulatedSpeedup and
// TestTxnScopedWriteBatchesAcrossStatements). allocs/op shows the Mutation
// buffer pooling delta on the batched paths.
func BenchmarkMaintenanceWrite(b *testing.B) {
	for _, views := range []int{1, 4, 16} {
		for _, mode := range benchModes {
			b.Run(fmt.Sprintf("views=%d/%s", views, mode.name), func(b *testing.B) {
				sys := fanoutSystem(b, views, 16, mode.cfg)
				up := sqlparser.MustParse("UPDATE Root SET RVal = ? WHERE RID = ?")
				b.ReportAllocs()
				var total sim.Micros
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ctx := sim.NewCtx()
					if err := sys.Exec(ctx, up, []schema.Value{fmt.Sprintf("v-%d", i), int64(1)}); err != nil {
						b.Fatal(err)
					}
					total += ctx.Elapsed()
				}
				b.ReportMetric(total.Milliseconds()/float64(b.N), "sim-ms/op")
			})
		}
	}
}

// BenchmarkMaintenanceLanes measures the same fanout update across the
// three view-maintenance lanes: sync pays the full §VIII-B protocol inline,
// async defers every view's maintenance to the changefeed, hybrid defers
// updates only (which this workload is made of, so it tracks async here).
// The feed is paused during timed sections and drained under StopTimer so
// the applier's work never lands on the timed writer — sim-ms/op isolates
// the writer-visible latency each lane produces.
func BenchmarkMaintenanceLanes(b *testing.B) {
	lanes := []struct {
		name string
		mode MaintenanceMode
	}{
		{"sync", SyncMaintenance},
		{"async", AsyncMaintenance},
		{"hybrid", HybridMaintenance},
	}
	for _, views := range []int{1, 4, 16} {
		for _, lane := range lanes {
			b.Run(fmt.Sprintf("views=%d/%s", views, lane.name), func(b *testing.B) {
				sys := fanoutSystem(b, views, 16, Config{Maintenance: lane.mode})
				if sys.Feed != nil {
					sys.Feed.Pause()
				}
				up := sqlparser.MustParse("UPDATE Root SET RVal = ? WHERE RID = ?")
				b.ReportAllocs()
				var total sim.Micros
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ctx := sim.NewCtx()
					if err := sys.Exec(ctx, up, []schema.Value{fmt.Sprintf("v-%d", i), int64(1)}); err != nil {
						b.Fatal(err)
					}
					total += ctx.Elapsed()
					if sys.Feed != nil && (i+1)%64 == 0 {
						// Keep the paused backlog bounded below the queue cap
						// without the drain showing up in time or allocs.
						b.StopTimer()
						sys.Feed.Resume()
						if err := sys.Feed.Drain(); err != nil {
							b.Fatal(err)
						}
						sys.Feed.Pause()
						b.StartTimer()
					}
				}
				b.StopTimer()
				if sys.Feed != nil {
					sys.Feed.Resume()
					if err := sys.Feed.Drain(); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(total.Milliseconds()/float64(b.N), "sim-ms/op")
			})
		}
	}
}

// BenchmarkTxnWrite measures a multi-statement TPC-W-like write
// transaction (repeated leaf inserts, a read-your-writes update, a delete)
// across the three pipelines. The transaction-scoped mutator pays one
// commit flush instead of a batch round per statement; sim-ms/op is the
// simulated transaction response time.
func BenchmarkTxnWrite(b *testing.B) {
	for _, mode := range benchModes {
		b.Run(mode.name, func(b *testing.B) {
			sys := fanoutSystem(b, 4, 16, mode.cfg)
			// Inserts are upserts, so re-running the transaction reaches a
			// steady state after the first iteration.
			stmts, params := txnWorkload(4)
			b.ReportAllocs()
			var total sim.Micros
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx := sim.NewCtx()
				if err := sys.ExecTxn(ctx, stmts, params); err != nil {
					b.Fatal(err)
				}
				total += ctx.Elapsed()
			}
			b.ReportMetric(total.Milliseconds()/float64(b.N), "sim-ms/op")
		})
	}
}

// BenchmarkTxnRootInsert measures the lock-table maintenance cost of
// inserting fresh root rows inside a transaction — the path that pays
// lock-entry creation. Keys rotate so every iteration inserts a brand-new
// root. The "root" shape is a root-insert-only transaction; "rootLeaf"
// follows the insert with a leaf insert referencing it, which re-locks the
// just-created group within the same transaction. On the buffered pipeline
// (txn mode) the lock entry rides the commit flush as a conditional batch
// entry instead of being self-acquired and released through standalone
// checkAndPut RPCs; sequential/batched keep the eager protocol and occ
// never locks, so those columns are the unchanged references.
func BenchmarkTxnRootInsert(b *testing.B) {
	insRoot := sqlparser.MustParse("INSERT INTO Root (RID, RVal) VALUES (?, ?)")
	insLeaf := sqlparser.MustParse("INSERT INTO Leaf00 (Leaf00ID, Leaf00_RID, Leaf00Val) VALUES (?, ?, ?)")
	shapes := []struct {
		name  string
		stmts []sqlparser.Statement
	}{
		{"root", []sqlparser.Statement{insRoot}},
		{"rootLeaf", []sqlparser.Statement{insRoot, insLeaf}},
	}
	for _, shape := range shapes {
		for _, mode := range benchModes {
			b.Run(fmt.Sprintf("%s/%s", shape.name, mode.name), func(b *testing.B) {
				sys := fanoutSystem(b, 4, 16, mode.cfg)
				b.ReportAllocs()
				var total sim.Micros
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ctx := sim.NewCtx()
					rid := int64(100_000 + i)
					params := [][]schema.Value{{rid, fmt.Sprintf("r-%d", i)}}
					if len(shape.stmts) > 1 {
						params = append(params, []schema.Value{rid, rid, fmt.Sprintf("l-%d", i)})
					}
					if err := sys.ExecTxn(ctx, shape.stmts, params); err != nil {
						b.Fatal(err)
					}
					total += ctx.Elapsed()
				}
				b.ReportMetric(total.Milliseconds()/float64(b.N), "sim-ms/op")
			})
		}
	}
}

// BenchmarkInsertWithViews measures view-tuple construction on insert (one
// parent read + view put + index puts per applicable view) across the
// three pipelines. Keys rotate so every iteration inserts a fresh row.
func BenchmarkInsertWithViews(b *testing.B) {
	for _, mode := range benchModes {
		b.Run(mode.name, func(b *testing.B) {
			sys := fanoutSystem(b, 4, 16, mode.cfg)
			ins := sqlparser.MustParse("INSERT INTO Leaf00 (Leaf00ID, Leaf00_RID, Leaf00Val) VALUES (?, ?, ?)")
			b.ReportAllocs()
			var total sim.Micros
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx := sim.NewCtx()
				params := []schema.Value{int64(1000 + i), int64(1), fmt.Sprintf("ins-%d", i)}
				if err := sys.Exec(ctx, ins, params); err != nil {
					b.Fatal(err)
				}
				total += ctx.Elapsed()
			}
			b.ReportMetric(total.Milliseconds()/float64(b.N), "sim-ms/op")
		})
	}
}

// BenchmarkDeleteWithViews measures view-tuple teardown on delete (base
// tombstone + index tombstones + view and view-index tombstones) across
// the three pipelines. Each iteration inserts (untimed) then deletes
// (timed).
func BenchmarkDeleteWithViews(b *testing.B) {
	for _, mode := range benchModes {
		b.Run(mode.name, func(b *testing.B) {
			sys := fanoutSystem(b, 4, 16, mode.cfg)
			ins := sqlparser.MustParse("INSERT INTO Leaf00 (Leaf00ID, Leaf00_RID, Leaf00Val) VALUES (?, ?, ?)")
			del := sqlparser.MustParse("DELETE FROM Leaf00 WHERE Leaf00ID = ?")
			b.ReportAllocs()
			var total sim.Micros
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				id := int64(1000 + i)
				if err := sys.Exec(sim.NewCtx(), ins, []schema.Value{id, int64(1), "doomed"}); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				ctx := sim.NewCtx()
				if err := sys.Exec(ctx, del, []schema.Value{id}); err != nil {
					b.Fatal(err)
				}
				total += ctx.Elapsed()
			}
			b.ReportMetric(total.Milliseconds()/float64(b.N), "sim-ms/op")
		})
	}
}
