package synergy

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

// concurrencyConfigs are the three concurrency modes every async-maintenance
// contract must hold under.
var concurrencyConfigs = []struct {
	name string
	cfg  Config
}{
	{"hierarchical", Config{}},
	{"mvcc", Config{Concurrency: MVCC, MaxVersions: 16}},
	{"occ", Config{Concurrency: OCC, MaxVersions: 16}},
}

func normalizeState(m map[string][]string) map[string][]string {
	return stripDirtyOff(dropLockTables(m))
}

// TestAsyncMaintenanceParity is the tentpole's correctness contract: after
// the changefeed drains, an async- (or hybrid-) maintained system holds
// exactly the state synchronous maintenance produces — store-wide and
// through SQL read-back — under all three concurrency modes.
func TestAsyncMaintenanceParity(t *testing.T) {
	const views, rowsPer = 4, 6
	lanes := []struct {
		name string
		mode MaintenanceMode
	}{
		{"async", AsyncMaintenance},
		{"hybrid", HybridMaintenance},
	}
	for _, cm := range concurrencyConfigs {
		for _, lane := range lanes {
			t.Run(cm.name+"/"+lane.name, func(t *testing.T) {
				syncSys := fanoutSystem(t, views, rowsPer, cm.cfg)
				acfg := cm.cfg
				acfg.Maintenance = lane.mode
				asyncSys := fanoutSystem(t, views, rowsPer, acfg)
				if asyncSys.Feed == nil {
					t.Fatal("async-configured system has no changefeed")
				}

				// Single-statement churn (inserts, multi-row updates,
				// deletes, index moves) plus the multi-statement
				// transaction workload (read-your-writes, same-tx
				// insert+update+delete).
				writeWorkload(t, syncSys)
				writeWorkload(t, asyncSys)
				stmts, params := txnWorkload(views)
				if err := syncSys.ExecTxn(sim.NewCtx(), stmts, params); err != nil {
					t.Fatal(err)
				}
				if err := asyncSys.ExecTxn(sim.NewCtx(), stmts, params); err != nil {
					t.Fatal(err)
				}
				if err := asyncSys.Feed.Drain(); err != nil {
					t.Fatal(err)
				}

				// Synchronous maintenance leaves _dirty=0 cells behind
				// (hierarchical un-mark phase); the async applier never
				// marks. An off mark is semantically absent — normalize
				// both sides before comparing.
				requireSameState(t, normalizeState(dumpState(t, syncSys)),
					normalizeState(dumpState(t, asyncSys)))

				// SQL read-back parity through the view-routed plans.
				for i, sel := range syncSys.Design.Workload.Selects() {
					ps := []schema.Value{fmt.Sprintf("Leaf%02d-%d", i, 4)}
					s, err := syncSys.Query(sim.NewCtx(), sel, ps)
					if err != nil {
						t.Fatal(err)
					}
					a, err := asyncSys.Query(sim.NewCtx(), sel, ps)
					if err != nil {
						t.Fatal(err)
					}
					if len(s.Rows) != len(a.Rows) {
						t.Fatalf("query %d: %d vs %d rows", i, len(s.Rows), len(a.Rows))
					}
					if len(s.Rows) == 0 {
						t.Fatalf("query %d returned nothing; fixture broken", i)
					}
					for j := range s.Rows {
						for col, v := range s.Rows[j] {
							if !schema.ValuesEqual(v, a.Rows[j][col]) {
								t.Fatalf("query %d row %d col %s: sync %v vs async %v", i, j, col, v, a.Rows[j][col])
							}
						}
					}
				}
			})
		}
	}
}

// queryRVals runs the fixture's view query and collects the RVal column.
func queryRVals(t *testing.T, sys *System, sel *sqlparser.SelectStmt, ctx *sim.Ctx) []string {
	t.Helper()
	rs, err := sys.Query(ctx, sel, []schema.Value{"Leaf00-0"})
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, r := range rs.Rows {
		out = append(out, fmt.Sprintf("%v", r["RVal"]))
	}
	if len(out) == 0 {
		t.Fatal("fixture query returned no rows")
	}
	return out
}

// TestWatermarkReadNeverStale pins the ReadWatermark guarantee under every
// concurrency mode: a query issued after a committed base write never
// observes the async view older than its snapshot — the wait happens before
// the snapshot is taken, so MVCC/OCC snapshot horizons include the applied
// deltas.
func TestWatermarkReadNeverStale(t *testing.T) {
	for _, cm := range concurrencyConfigs {
		t.Run(cm.name, func(t *testing.T) {
			cfg := cm.cfg
			cfg.Maintenance = AsyncMaintenance
			cfg.AsyncReads = ReadWatermark
			sys := fanoutSystem(t, 1, 4, cfg)
			sel := sys.Design.Workload.Selects()[0]
			up := sqlparser.MustParse("UPDATE Root SET RVal = ? WHERE RID = ?")
			for round := 1; round <= 5; round++ {
				want := fmt.Sprintf("v%d", round)
				if err := sys.Exec(sim.NewCtx(), up, []schema.Value{want, int64(1)}); err != nil {
					t.Fatal(err)
				}
				for _, got := range queryRVals(t, sys, sel, sim.NewCtx()) {
					if got != want {
						t.Fatalf("round %d: watermark read observed %q, want %q", round, got, want)
					}
				}
			}
		})
	}
}

// TestWatermarkReadBlocksOnPausedFeed drives the race deterministically: a
// paused feed holds the delta, the watermark reader blocks, and Resume
// releases it with the fresh value and the wait recorded. A ReadStale query
// meanwhile returns immediately with the old value and the lag recorded.
func TestWatermarkReadBlocksOnPausedFeed(t *testing.T) {
	cfg := Config{Maintenance: AsyncMaintenance, AsyncReads: ReadStale}
	sys := fanoutSystem(t, 1, 4, cfg)
	sel := sys.Design.Workload.Selects()[0]
	up := sqlparser.MustParse("UPDATE Root SET RVal = ? WHERE RID = ?")

	sys.Feed.Pause()
	if err := sys.Exec(sim.NewCtx(), up, []schema.Value{"pending", int64(1)}); err != nil {
		t.Fatal(err)
	}

	// ReadStale: old value, staleness recorded.
	staleCtx := sim.NewCtx()
	for _, got := range queryRVals(t, sys, sel, staleCtx) {
		if got != "one" {
			t.Fatalf("stale read observed %q, want pre-update %q", got, "one")
		}
	}
	if s := staleCtx.Snapshot(); s.StaleReads != 1 || s.StaleLag < 1 {
		t.Fatalf("stale read stats = %+v, want StaleReads=1 with positive lag", s)
	}

	// ReadWatermark: blocks until the feed resumes, then sees the update.
	sys.SetAsyncReadMode(ReadWatermark)
	wmCtx := sim.NewCtx()
	got := make(chan []string, 1)
	go func() { got <- queryRVals(t, sys, sel, wmCtx) }()
	select {
	case <-got:
		t.Fatal("watermark read returned while the feed was paused")
	case <-time.After(30 * time.Millisecond):
	}
	sys.Feed.Resume()
	select {
	case vals := <-got:
		for _, v := range vals {
			if v != "pending" {
				t.Fatalf("watermark read observed %q, want %q", v, "pending")
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watermark read never released after Resume")
	}
	if s := wmCtx.Snapshot(); s.WatermarkWaits != 1 {
		t.Fatalf("WatermarkWaits = %d, want 1", s.WatermarkWaits)
	}
}

// TestAsyncBackpressureBlocksWriters pins the bounded-queue contract: a full
// lane blocks the committing writer until the applier frees space; no delta
// is ever dropped.
func TestAsyncBackpressureBlocksWriters(t *testing.T) {
	cfg := Config{Maintenance: AsyncMaintenance, AsyncQueueCap: 2}
	sys := fanoutSystem(t, 1, 4, cfg)
	up := sqlparser.MustParse("UPDATE Root SET RVal = ? WHERE RID = ?")

	sys.Feed.Pause()
	for i := 0; i < 2; i++ { // fill the lane to its cap
		if err := sys.Exec(sim.NewCtx(), up, []schema.Value{fmt.Sprintf("fill-%d", i), int64(1)}); err != nil {
			t.Fatal(err)
		}
	}
	var done atomic.Bool
	go func() {
		if err := sys.Exec(sim.NewCtx(), up, []schema.Value{"blocked", int64(1)}); err != nil {
			t.Error(err)
		}
		done.Store(true)
	}()
	time.Sleep(30 * time.Millisecond)
	if done.Load() {
		t.Fatal("writer committed into a full lane; want it blocked on backpressure")
	}
	sys.Feed.Resume()
	deadline := time.Now().Add(5 * time.Second)
	for !done.Load() {
		if time.Now().After(deadline) {
			t.Fatal("blocked writer never released")
		}
		time.Sleep(5 * time.Millisecond)
		if err := sys.Feed.Drain(); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Feed.Drain(); err != nil {
		t.Fatal(err)
	}
	if p, a := sys.Feed.Published(), sys.Feed.Applied(); p != 3 || a != 3 {
		t.Fatalf("published=%d applied=%d, want 3/3 (nothing dropped)", p, a)
	}
	sys.SetAsyncReadMode(ReadWatermark)
	sel := sys.Design.Workload.Selects()[0]
	for _, got := range queryRVals(t, sys, sel, sim.NewCtx()) {
		if got != "blocked" {
			t.Fatalf("final view value %q, want %q", got, "blocked")
		}
	}
}

// TestAbortDropsDeferredDeltas: a transaction that captured view deltas and
// aborted publishes nothing — the changefeed never sees the work and the
// store is untouched, under every concurrency mode.
func TestAbortDropsDeferredDeltas(t *testing.T) {
	for _, cm := range concurrencyConfigs {
		t.Run(cm.name, func(t *testing.T) {
			cfg := cm.cfg
			cfg.Maintenance = AsyncMaintenance
			sys := fanoutSystem(t, 2, 4, cfg)
			before := dumpState(t, sys)

			ctx := sim.NewCtx()
			tx := sys.BeginTx(ctx)
			if err := tx.Exec(ctx, sqlparser.MustParse("UPDATE Root SET RVal = ? WHERE RID = ?"),
				[]schema.Value{"doomed", int64(1)}); err != nil {
				t.Fatal(err)
			}
			if len(tx.deltas) == 0 {
				t.Fatal("update captured no deferred deltas; fixture broken")
			}
			if err := tx.Abort(ctx); err != nil {
				t.Fatal(err)
			}
			if p := sys.Feed.Published(); p != 0 {
				t.Fatalf("aborted transaction published %d deltas, want 0", p)
			}
			if err := sys.Feed.Drain(); err != nil {
				t.Fatal(err)
			}
			requireSameState(t, normalizeState(before), normalizeState(dumpState(t, sys)))
		})
	}
}

// TestAsyncMaintenanceSpeedup pins the acceptance criterion: at 16 views the
// async lane improves the multi-row maintenance write's simulated latency by
// at least 3x over synchronous maintenance — and the drained async state
// still matches sync exactly.
func TestAsyncMaintenanceSpeedup(t *testing.T) {
	const views, rowsPer = 16, 8
	syncSys := fanoutSystem(t, views, rowsPer, Config{})
	asyncSys := fanoutSystem(t, views, rowsPer, Config{Maintenance: AsyncMaintenance})
	up := sqlparser.MustParse("UPDATE Root SET RVal = ? WHERE RID = ?")
	run := func(sys *System) sim.Micros {
		ctx := sim.NewCtx()
		if err := sys.Exec(ctx, up, []schema.Value{"renamed", int64(1)}); err != nil {
			t.Fatal(err)
		}
		return ctx.Elapsed()
	}
	syncCost, asyncCost := run(syncSys), run(asyncSys)
	ratio := float64(syncCost) / float64(asyncCost)
	if ratio < 3 {
		t.Fatalf("async write %v vs sync %v: %.2fx, want >= 3x", asyncCost, syncCost, ratio)
	}
	t.Logf("views=%d: sync %v, async %v (%.1fx)", views, syncCost, asyncCost, ratio)

	if err := asyncSys.Feed.Drain(); err != nil {
		t.Fatal(err)
	}
	requireSameState(t, normalizeState(dumpState(t, syncSys)),
		normalizeState(dumpState(t, asyncSys)))
}

// TestHybridKeepsInsertsSync: under hybrid maintenance a view tuple's
// existence is never stale — an insert's view tuple is visible the moment
// the statement returns, with nothing queued.
func TestHybridKeepsInsertsSync(t *testing.T) {
	cfg := Config{Maintenance: HybridMaintenance}
	sys := fanoutSystem(t, 1, 4, cfg)
	if err := sys.Exec(sim.NewCtx(), sqlparser.MustParse(
		"INSERT INTO Leaf00 (Leaf00ID, Leaf00_RID, Leaf00Val) VALUES (?, ?, ?)"),
		[]schema.Value{int64(200), int64(1), "hybrid-fresh"}); err != nil {
		t.Fatal(err)
	}
	if p := sys.Feed.Published(); p != 0 {
		t.Fatalf("hybrid insert published %d deltas, want 0 (inserts stay sync)", p)
	}
	rs, err := sys.Query(sim.NewCtx(), sys.Design.Workload.Selects()[0], []schema.Value{"hybrid-fresh"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("inserted view tuple not visible: got %d rows, want 1", len(rs.Rows))
	}
	// An update, by contrast, defers.
	if err := sys.Exec(sim.NewCtx(), sqlparser.MustParse("UPDATE Root SET RVal = ? WHERE RID = ?"),
		[]schema.Value{"later", int64(1)}); err != nil {
		t.Fatal(err)
	}
	if p := sys.Feed.Published(); p != 1 {
		t.Fatalf("hybrid update published %d deltas, want 1", p)
	}
	if err := sys.Feed.Drain(); err != nil {
		t.Fatal(err)
	}
}
