package synergy

import (
	"fmt"
	"sort"
	"testing"

	"synergy/internal/hbase"
	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

// fanoutSchema builds a root relation plus n leaf relations, each leaf
// carrying a workload query that materializes the Root-Leaf_i view. An
// update on Root therefore fans out to n multi-row view maintenances — the
// write-amplification scenario the batched mutation pipeline targets.
func fanoutSchema(n int) (*schema.Schema, []string) {
	s := schema.New()
	s.AddRelation(&schema.Relation{
		Name: "Root",
		Columns: []schema.Column{
			{Name: "RID", Type: schema.TInt},
			{Name: "RVal", Type: schema.TString},
		},
		PK: []string{"RID"},
	})
	var workload []string
	for i := 0; i < n; i++ {
		leaf := fmt.Sprintf("Leaf%02d", i)
		s.AddRelation(&schema.Relation{
			Name: leaf,
			Columns: []schema.Column{
				{Name: leaf + "ID", Type: schema.TInt},
				{Name: leaf + "_RID", Type: schema.TInt},
				{Name: leaf + "Val", Type: schema.TString},
			},
			PK:  []string{leaf + "ID"},
			FKs: []schema.ForeignKey{{Cols: []string{leaf + "_RID"}, RefTable: "Root"}},
		})
		workload = append(workload, fmt.Sprintf(
			"SELECT * FROM Root as r, %[1]s as l WHERE r.RID = l.%[1]s_RID and l.%[1]sVal = ?", leaf))
	}
	workload = append(workload, "UPDATE Root SET RVal = ? WHERE RID = ?")
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s, workload
}

// fanoutSystem deploys the fanout schema with rowsPer leaf rows per leaf,
// all referencing root row 1 (so one Root update touches every view row).
func fanoutSystem(tb testing.TB, views, rowsPer int, cfg Config) *System {
	tb.Helper()
	s, workload := fanoutSchema(views)
	sys, err := New(s, []string{"Root"}, workload, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	roots := []schema.Row{
		{"RID": int64(1), "RVal": "one"},
		{"RID": int64(2), "RVal": "two"},
	}
	if err := sys.LoadBase("Root", roots); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < views; i++ {
		leaf := fmt.Sprintf("Leaf%02d", i)
		var rows []schema.Row
		for j := 0; j < rowsPer; j++ {
			rows = append(rows, schema.Row{
				leaf + "ID":   int64(j + 1),
				leaf + "_RID": int64(1),
				leaf + "Val":  fmt.Sprintf("%s-%d", leaf, j),
			})
		}
		if err := sys.LoadBase(leaf, rows); err != nil {
			tb.Fatal(err)
		}
	}
	if err := sys.BuildViews(); err != nil {
		tb.Fatal(err)
	}
	if got := len(sys.Design.Views); got != views {
		tb.Fatalf("design selected %d views, want %d", got, views)
	}
	return sys
}

// dumpState scans every table (views, indexes, lock tables included) and
// renders the visible rows, giving a store-wide fingerprint for parity
// comparison.
func dumpState(t *testing.T, sys *System) map[string][]string {
	t.Helper()
	out := map[string][]string{}
	client := sys.Engine.Client()
	for _, tbl := range sys.Store.Tables() {
		sc, err := client.Scan(sim.NewCtx(), tbl, hbase.ScanSpec{Sequential: true})
		if err != nil {
			t.Fatal(err)
		}
		var rows []string
		for _, r := range sc.All(sim.NewCtx()) {
			rows = append(rows, r.String())
		}
		out[tbl] = rows
	}
	return out
}

func requireSameState(t *testing.T, seq, bat map[string][]string) {
	t.Helper()
	var tables []string
	for tbl := range seq {
		tables = append(tables, tbl)
	}
	sort.Strings(tables)
	if len(seq) != len(bat) {
		t.Fatalf("table sets differ: %d vs %d", len(seq), len(bat))
	}
	for _, tbl := range tables {
		s, b := seq[tbl], bat[tbl]
		if len(s) != len(b) {
			t.Fatalf("%s: row counts differ: sequential=%d batched=%d", tbl, len(s), len(b))
		}
		for i := range s {
			if s[i] != b[i] {
				t.Fatalf("%s row %d:\n  sequential: %s\n  batched:    %s", tbl, i, s[i], b[i])
			}
		}
	}
}

// writeWorkload drives one system through inserts, multi-row updates and
// deletes that exercise view-tuple construction, all three maintenance
// phases and index cleanup.
func writeWorkload(t *testing.T, sys *System) {
	t.Helper()
	exec := func(q string, params ...schema.Value) {
		t.Helper()
		if err := sys.Exec(sim.NewCtx(), sqlparser.MustParse(q), params); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	// Insert: new leaf rows build view tuples (read parent + merged put).
	exec("INSERT INTO Leaf00 (Leaf00ID, Leaf00_RID, Leaf00Val) VALUES (?, ?, ?)",
		int64(100), int64(1), "fresh")
	exec("INSERT INTO Leaf01 (Leaf01ID, Leaf01_RID, Leaf01Val) VALUES (?, ?, ?)",
		int64(101), int64(2), "other-root")
	// Insert a new root row (lock-table entry creation).
	exec("INSERT INTO Root (RID, RVal) VALUES (?, ?)", int64(3), "three")
	// Multi-row update: every view row under root 1 is marked, updated,
	// un-marked — the three batched phases.
	exec("UPDATE Root SET RVal = ? WHERE RID = ?", "one-renamed", int64(1))
	// Leaf update: single-row view update by view key, index key moves.
	exec("UPDATE Leaf02 SET Leaf02Val = ? WHERE Leaf02ID = ?", "moved", int64(2))
	// Deletes: view tuple and index entries removed.
	exec("DELETE FROM Leaf00 WHERE Leaf00ID = ?", int64(100))
	exec("DELETE FROM Leaf03 WHERE Leaf03ID = ?", int64(3))
	// Second multi-row update after the churn.
	exec("UPDATE Root SET RVal = ? WHERE RID = ?", "one-again", int64(1))
}

// TestBatchedSequentialWriteParity is the pipeline's contract: the batched
// write path and the eager per-mutation path leave every table — base,
// views, indexes, lock tables — in an identical visible state, and answer
// the workload queries identically.
func TestBatchedSequentialWriteParity(t *testing.T) {
	const views, rowsPer = 4, 6
	for _, mode := range []struct {
		name string
		cfg  func(sequential bool) Config
	}{
		{"hierarchical", func(seq bool) Config {
			return Config{SequentialWrites: seq}
		}},
		{"mvcc", func(seq bool) Config {
			return Config{Concurrency: MVCC, MaxVersions: 16, SequentialWrites: seq}
		}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			seqSys := fanoutSystem(t, views, rowsPer, mode.cfg(true))
			batSys := fanoutSystem(t, views, rowsPer, mode.cfg(false))
			writeWorkload(t, seqSys)
			writeWorkload(t, batSys)
			requireSameState(t, dumpState(t, seqSys), dumpState(t, batSys))

			// Read-back parity through the SQL layer, including the
			// view-index path. Row 5 (value suffix -4) is untouched by
			// the write workload, so every query must find it.
			for i, sel := range seqSys.Design.Workload.Selects() {
				params := []schema.Value{fmt.Sprintf("Leaf%02d-%d", i, 4)}
				s, err := seqSys.Query(sim.NewCtx(), sel, params)
				if err != nil {
					t.Fatal(err)
				}
				b, err := batSys.Query(sim.NewCtx(), sel, params)
				if err != nil {
					t.Fatal(err)
				}
				if len(s.Rows) != len(b.Rows) {
					t.Fatalf("query %d: %d vs %d rows", i, len(s.Rows), len(b.Rows))
				}
				if len(s.Rows) == 0 {
					t.Fatalf("query %d returned nothing; fixture broken", i)
				}
				for j := range s.Rows {
					for col, v := range s.Rows[j] {
						if !schema.ValuesEqual(v, b.Rows[j][col]) {
							t.Fatalf("query %d row %d col %s: %v vs %v", i, j, col, v, b.Rows[j][col])
						}
					}
				}
			}
		})
	}
}

// The batched pipeline must log the same durability work, except for the
// one saving it is allowed: a fresh root insert's lock entry rides the
// commit flush as a single conditional create-free write, where the eager
// pipeline logs two lock-table writes (Acquire's create-held checkAndPut,
// Release's free). writeWorkload inserts exactly one fresh root row.
func TestBatchedSequentialWALParity(t *testing.T) {
	const views, rowsPer = 4, 6
	const deferredLockSavings = 1 // one fresh root insert in writeWorkload
	walTotal := func(sys *System) int64 {
		var n int64
		for _, node := range []string{"master-0", "slave-0", "slave-1", "slave-2", "slave-3", "slave-4"} {
			n += sys.Store.WALEdits(node)
		}
		return n
	}
	seqSys := fanoutSystem(t, views, rowsPer, Config{SequentialWrites: true})
	batSys := fanoutSystem(t, views, rowsPer, Config{})
	seqBase, batBase := walTotal(seqSys), walTotal(batSys)
	writeWorkload(t, seqSys)
	writeWorkload(t, batSys)
	if s, b := walTotal(seqSys)-seqBase, walTotal(batSys)-batBase; s != b+deferredLockSavings {
		t.Fatalf("WAL edits diverge: sequential=%d batched=%d (want sequential == batched+%d)",
			s, b, deferredLockSavings)
	}
}

// TestBatchedWriteSimulatedSpeedup pins the acceptance criterion: at 4 and
// 16 views the batched multi-row maintenance write simulates strictly
// faster than the sequential baseline.
func TestBatchedWriteSimulatedSpeedup(t *testing.T) {
	for _, views := range []int{4, 16} {
		seqSys := fanoutSystem(t, views, 8, Config{SequentialWrites: true})
		batSys := fanoutSystem(t, views, 8, Config{})
		up := sqlparser.MustParse("UPDATE Root SET RVal = ? WHERE RID = ?")
		run := func(sys *System) sim.Micros {
			ctx := sim.NewCtx()
			if err := sys.Exec(ctx, up, []schema.Value{"renamed", int64(1)}); err != nil {
				t.Fatal(err)
			}
			return ctx.Elapsed()
		}
		seq, bat := run(seqSys), run(batSys)
		if bat >= seq {
			t.Fatalf("views=%d: batched %v not below sequential %v", views, bat, seq)
		}
		t.Logf("views=%d: sequential %v, batched %v (%.1fx)", views, seq, bat, float64(seq)/float64(bat))
	}
}
