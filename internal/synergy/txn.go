package synergy

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
	"synergy/internal/zk"
)

// ErrNoSlaves reports that every transaction-layer slave is down.
var ErrNoSlaves = errors.New("synergy: no live transaction-layer slaves")

const slavesZNode = "/synergy/slaves"

// walRecord is one entry of a slave's write-ahead log. A transaction's
// statements are logged with their parameters before execution; a commit
// record marks completion, an abort record marks a transaction whose
// buffered writes were discarded. Recovery re-executes transactions with
// neither record — grouped by transaction id, so a multi-statement
// transaction replays as one transaction (§VIII: "starting a new slave node
// to take over and replay the WAL of a failed slave node").
type walRecord struct {
	TxID   int64      `json:"tx"`
	SQL    string     `json:"sql,omitempty"`
	Params []walParam `json:"params,omitempty"`
	Commit bool       `json:"commit,omitempty"`
	Abort  bool       `json:"abort,omitempty"`
}

type walParam struct {
	T string `json:"t"` // i, f, s
	V string `json:"v"`
}

func encodeParams(params []schema.Value) ([]walParam, error) {
	out := make([]walParam, len(params))
	for i, p := range params {
		switch x := p.(type) {
		case int64:
			out[i] = walParam{T: "i", V: strconv.FormatInt(x, 10)}
		case float64:
			out[i] = walParam{T: "f", V: strconv.FormatFloat(x, 'g', -1, 64)}
		case string:
			out[i] = walParam{T: "s", V: x}
		case nil:
			out[i] = walParam{T: "n"}
		default:
			return nil, fmt.Errorf("synergy: unsupported parameter type %T", p)
		}
	}
	return out, nil
}

func decodeParams(ps []walParam) ([]schema.Value, error) {
	out := make([]schema.Value, len(ps))
	for i, p := range ps {
		switch p.T {
		case "i":
			v, err := strconv.ParseInt(p.V, 10, 64)
			if err != nil {
				return nil, err
			}
			out[i] = v
		case "f":
			v, err := strconv.ParseFloat(p.V, 64)
			if err != nil {
				return nil, err
			}
			out[i] = v
		case "s":
			out[i] = p.V
		case "n":
			out[i] = nil
		default:
			return nil, fmt.Errorf("synergy: bad wal param type %q", p.T)
		}
	}
	return out, nil
}

// Slave is one transaction-layer worker: it assigns transaction ids, logs
// statements to its WAL in the distributed FS, and executes write
// transaction procedures (Figure 7).
type Slave struct {
	ID      string
	layer   *TxnLayer
	walPath string
	sess    *zk.Session
	seq     atomic.Int64
	alive   atomic.Bool
	walMu   sync.Mutex

	// killBeforeExec is a fault-injection hook: when set, the slave dies
	// after logging the next statement but before executing it.
	killBeforeExec atomic.Bool
}

// Alive reports liveness.
func (s *Slave) Alive() bool { return s.alive.Load() }

// Kill simulates slave failure: the ZooKeeper session closes (dropping the
// ephemeral registration the master watches) and the slave stops accepting
// work.
func (s *Slave) Kill() {
	if s.alive.CompareAndSwap(true, false) {
		s.sess.Close()
	}
}

// KillBeforeNextExec arms the fault-injection hook.
func (s *Slave) KillBeforeNextExec() { s.killBeforeExec.Store(true) }

// Execute logs and runs one single-statement write transaction.
func (s *Slave) Execute(ctx *sim.Ctx, stmt sqlparser.Statement, params []schema.Value) error {
	return s.ExecuteTxn(ctx, []sqlparser.Statement{stmt}, [][]schema.Value{params})
}

// ExecuteTxn logs and runs one write transaction of any number of
// statements: every statement is WAL-logged under one transaction id before
// execution, the statements execute against a single transaction-scoped
// mutator (commit flushes once), and the outcome is logged as a commit or
// abort record. Recovery replays transactions with neither record as whole
// transactions.
func (s *Slave) ExecuteTxn(ctx *sim.Ctx, stmts []sqlparser.Statement, paramsList [][]schema.Value) error {
	if !s.alive.Load() {
		return fmt.Errorf("%w: %s is down", ErrNoSlaves, s.ID)
	}
	if len(stmts) != len(paramsList) {
		return fmt.Errorf("synergy: %d statements, %d parameter lists", len(stmts), len(paramsList))
	}
	sys := s.layer.sys
	ctx.Charge(sys.Cluster.Costs().TxnLayerHop)

	// All of the transaction's statement records travel in one WAL append:
	// one replication-pipeline round instead of one per statement, and the
	// records stay contiguous even with concurrent transactions on the
	// same slave.
	txid := s.seq.Add(1)
	var log []byte
	for i, stmt := range stmts {
		ps, err := encodeParams(paramsList[i])
		if err != nil {
			return err
		}
		rec, err := json.Marshal(walRecord{TxID: txid, SQL: stmt.String(), Params: ps})
		if err != nil {
			return err
		}
		log = append(log, rec...)
		log = append(log, '\n')
	}
	s.walMu.Lock()
	err := sys.FS.Append(ctx, s.walPath, log)
	s.walMu.Unlock()
	if err != nil {
		return err
	}

	if s.killBeforeExec.CompareAndSwap(true, false) {
		s.Kill()
		return fmt.Errorf("%w: %s crashed mid-transaction", ErrNoSlaves, s.ID)
	}

	if err := sys.ExecuteTxn(ctx, stmts, paramsList); err != nil {
		// The transaction aborted and discarded its buffered writes;
		// record that so recovery does not replay it. A failed abort
		// record must surface — without it, recovery would re-execute
		// (and possibly durably commit) a transaction the client was
		// told failed.
		if lerr := s.logOutcome(ctx, walRecord{TxID: txid, Abort: true}); lerr != nil {
			return fmt.Errorf("%w (abort record not logged: %v)", err, lerr)
		}
		return err
	}
	return s.logOutcome(ctx, walRecord{TxID: txid, Commit: true})
}

// logOutcome appends a commit/abort record.
func (s *Slave) logOutcome(ctx *sim.Ctx, rec walRecord) error {
	data, _ := json.Marshal(rec)
	s.walMu.Lock()
	err := s.layer.sys.FS.Append(ctx, s.walPath, append(data, '\n'))
	s.walMu.Unlock()
	return err
}

// TxnLayer is the master + slaves transaction tier.
type TxnLayer struct {
	sys    *System
	master *zk.Session

	mu     sync.Mutex
	slaves []*Slave
	next   int
	nextID int
}

// NewTxnLayer starts the layer with n slaves registered in ZooKeeper.
func NewTxnLayer(sys *System, n int) *TxnLayer {
	l := &TxnLayer{sys: sys, master: sys.ZK.NewSession()}
	l.master.Create("/synergy", nil, zk.CreateOpts{})
	l.master.Create(slavesZNode, nil, zk.CreateOpts{})
	for i := 0; i < n; i++ {
		l.spawnSlave()
	}
	return l
}

// spawnSlave starts a new slave. Caller may hold l.mu.
func (l *TxnLayer) spawnSlave() *Slave {
	l.mu.Lock()
	id := fmt.Sprintf("txn-slave-%d", l.nextID)
	l.nextID++
	l.mu.Unlock()

	sess := l.sys.ZK.NewSession()
	s := &Slave{
		ID:      id,
		layer:   l,
		walPath: "/synergy/wal/" + id + ".log",
		sess:    sess,
	}
	s.alive.Store(true)
	sess.Create(slavesZNode+"/"+id, []byte(id), zk.CreateOpts{Ephemeral: true})
	l.sys.FS.Append(sim.NewCtx(), s.walPath, nil)

	l.mu.Lock()
	l.slaves = append(l.slaves, s)
	l.mu.Unlock()
	return s
}

// Slaves lists current slaves (live and dead).
func (l *TxnLayer) Slaves() []*Slave {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Slave(nil), l.slaves...)
}

// Submit routes a write statement to a live slave (round-robin).
func (l *TxnLayer) Submit(ctx *sim.Ctx, stmt sqlparser.Statement, params []schema.Value) error {
	return l.SubmitTxn(ctx, []sqlparser.Statement{stmt}, [][]schema.Value{params})
}

// SubmitTxn routes a multi-statement write transaction to a live slave
// (round-robin).
func (l *TxnLayer) SubmitTxn(ctx *sim.Ctx, stmts []sqlparser.Statement, paramsList [][]schema.Value) error {
	chosen := l.pickSlave()
	if chosen == nil {
		return ErrNoSlaves
	}
	return chosen.ExecuteTxn(ctx, stmts, paramsList)
}

// pickSlave returns the next live slave round-robin, or nil when none.
func (l *TxnLayer) pickSlave() *Slave {
	l.mu.Lock()
	defer l.mu.Unlock()
	for range l.slaves {
		s := l.slaves[l.next%len(l.slaves)]
		l.next++
		if s.Alive() {
			return s
		}
	}
	return nil
}

// LogCommitted records an interactively driven transaction in a slave's WAL
// after it committed: every statement record plus the commit record travel
// in one append under a fresh transaction id. An interactive session (the
// SQL wire server) executes statements as the client sends them, so unlike
// SubmitTxn there is never an accepted-but-unexecuted transaction for
// recovery to replay — the log is written at commit, binlog-style, and
// recovery always finds the transaction finished. A rolled-back interactive
// transaction logs nothing: its buffered writes never reached the store.
func (l *TxnLayer) LogCommitted(ctx *sim.Ctx, stmts []sqlparser.Statement, paramsList [][]schema.Value) error {
	if len(stmts) != len(paramsList) {
		return fmt.Errorf("synergy: %d statements, %d parameter lists", len(stmts), len(paramsList))
	}
	chosen := l.pickSlave()
	if chosen == nil {
		return ErrNoSlaves
	}
	return chosen.logCommitted(ctx, stmts, paramsList)
}

// logCommitted appends a whole committed transaction — statements and commit
// record — as one WAL append.
func (s *Slave) logCommitted(ctx *sim.Ctx, stmts []sqlparser.Statement, paramsList [][]schema.Value) error {
	if !s.alive.Load() {
		return fmt.Errorf("%w: %s is down", ErrNoSlaves, s.ID)
	}
	sys := s.layer.sys
	ctx.Charge(sys.Cluster.Costs().TxnLayerHop)
	txid := s.seq.Add(1)
	var log []byte
	for i, stmt := range stmts {
		ps, err := encodeParams(paramsList[i])
		if err != nil {
			return err
		}
		rec, err := json.Marshal(walRecord{TxID: txid, SQL: stmt.String(), Params: ps})
		if err != nil {
			return err
		}
		log = append(log, rec...)
		log = append(log, '\n')
	}
	rec, _ := json.Marshal(walRecord{TxID: txid, Commit: true})
	log = append(log, rec...)
	log = append(log, '\n')
	s.walMu.Lock()
	err := sys.FS.Append(ctx, s.walPath, log)
	s.walMu.Unlock()
	return err
}

// DetectAndRecover is the master's failure-detection pass (§VIII): it
// compares the slaves registered in ZooKeeper (ephemeral nodes vanish with
// their sessions) against the roster, and for each dead slave starts a
// replacement that replays the dead slave's WAL. It returns the number of
// slaves recovered.
func (l *TxnLayer) DetectAndRecover(ctx *sim.Ctx) (int, error) {
	present := map[string]bool{}
	kids, err := l.master.Children(slavesZNode, nil)
	if err != nil {
		return 0, err
	}
	for _, k := range kids {
		present[k] = true
	}

	l.mu.Lock()
	var dead []*Slave
	live := l.slaves[:0]
	for _, s := range l.slaves {
		if present[s.ID] && s.Alive() {
			live = append(live, s)
			continue
		}
		dead = append(dead, s)
	}
	l.slaves = live
	l.mu.Unlock()

	for _, d := range dead {
		replacement := l.spawnSlave()
		if err := l.replayWAL(ctx, d.walPath, replacement); err != nil {
			return 0, fmt.Errorf("synergy: replaying %s: %w", d.walPath, err)
		}
	}
	return len(dead), nil
}

// replayWAL re-executes the transactions of a dead slave's WAL that have
// neither a commit nor an abort record, each as one whole transaction in
// the order its first statement was logged.
func (l *TxnLayer) replayWAL(ctx *sim.Ctx, walPath string, onto *Slave) error {
	data, err := l.sys.FS.ReadAll(ctx, walPath)
	if err != nil {
		return err
	}
	finished := map[int64]bool{}
	grouped := map[int64][]walRecord{}
	var order []int64
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec walRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return err
		}
		if rec.Commit || rec.Abort {
			finished[rec.TxID] = true
			continue
		}
		if _, seen := grouped[rec.TxID]; !seen {
			order = append(order, rec.TxID)
		}
		grouped[rec.TxID] = append(grouped[rec.TxID], rec)
	}
	for _, txid := range order {
		if finished[txid] {
			continue
		}
		recs := grouped[txid]
		stmts := make([]sqlparser.Statement, len(recs))
		paramsList := make([][]schema.Value, len(recs))
		for i, rec := range recs {
			stmt, err := sqlparser.Parse(rec.SQL)
			if err != nil {
				return err
			}
			params, err := decodeParams(rec.Params)
			if err != nil {
				return err
			}
			stmts[i], paramsList[i] = stmt, params
		}
		if err := onto.ExecuteTxn(ctx, stmts, paramsList); err != nil {
			return err
		}
	}
	return nil
}
