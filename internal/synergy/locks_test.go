package synergy

import (
	"sync"
	"testing"

	"synergy/internal/cluster"
	"synergy/internal/hbase"
	"synergy/internal/sim"
)

func bareLockManager(t *testing.T) *LockManager {
	t.Helper()
	store := hbase.NewHCluster(cluster.NewDefault(nil), nil, nil)
	lm := NewLockManager(store)
	if err := lm.CreateLockTables([]string{"R"}); err != nil {
		t.Fatal(err)
	}
	return lm
}

func TestLockBackoffExponentialWithCap(t *testing.T) {
	lm := bareLockManager(t)
	base := lm.costs.LockRetryBackoff
	max := lm.costs.LockRetryBackoffMax
	want := []sim.Micros{base, 2 * base, 4 * base, 8 * base, 16 * base}
	for i, w := range want {
		if w > max {
			w = max
		}
		if got := lm.backoff(i); got != w {
			t.Fatalf("backoff(%d) = %v, want %v", i, got, w)
		}
	}
	// Far past the cap it stays pinned.
	if got := lm.backoff(40); got != max {
		t.Fatalf("backoff(40) = %v, want cap %v", got, max)
	}
}

// A contended acquire must charge the exponential backoff schedule: the
// elapsed time of an n-attempt spin is dominated by sum(backoff(0..n-1)),
// which grows much faster than the old fixed n*base schedule.
func TestLockContendedAcquireChargesExponentialBackoff(t *testing.T) {
	lm := bareLockManager(t)
	holder := sim.NewCtx()
	if err := lm.Acquire(holder, "R", "k"); err != nil {
		t.Fatal(err)
	}
	lm.MaxAttempts = 6
	ctx := sim.NewCtx()
	if err := lm.acquire(ctx, lm.client, "R", "k"); err == nil {
		t.Fatal("contended acquire should exhaust MaxAttempts")
	}
	var backoffs sim.Micros
	for i := 0; i < lm.MaxAttempts; i++ {
		backoffs += lm.backoff(i)
	}
	// 5+10+20+40+80+80 = 235ms of backoff; the 12 checkAndPut round trips
	// add a few ms more.
	if got := ctx.Elapsed(); got < backoffs {
		t.Fatalf("elapsed %v below backoff schedule %v", got, backoffs)
	}
	if got := ctx.Elapsed(); got > backoffs+sim.FromMillis(25) {
		t.Fatalf("elapsed %v far above backoff schedule %v: wrong backoff applied?", got, backoffs)
	}
}

// TestLockContentionRetryLoop drives real goroutine contention through the
// retry loop: every contender must eventually win the lock exactly once per
// cycle and the lock must end up free.
func TestLockContentionRetryLoop(t *testing.T) {
	lm := bareLockManager(t)
	const goroutines, cycles = 8, 5
	ctxs := make([]*sim.Ctx, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		ctxs[g] = sim.NewCtx()
		wg.Add(1)
		go func(ctx *sim.Ctx) {
			defer wg.Done()
			for c := 0; c < cycles; c++ {
				if err := lm.Acquire(ctx, "R", "hot"); err != nil {
					t.Error(err)
					return
				}
				if err := lm.Release(ctx, "R", "hot"); err != nil {
					t.Error(err)
					return
				}
			}
		}(ctxs[g])
	}
	wg.Wait()
	var locks int64
	for _, ctx := range ctxs {
		locks += ctx.Snapshot().Locks
	}
	if locks != goroutines*cycles {
		t.Fatalf("lock cycles = %d, want %d", locks, goroutines*cycles)
	}
	// The lock must be free afterwards: a fresh acquire succeeds first try.
	ctx := sim.NewCtx()
	if err := lm.Acquire(ctx, "R", "hot"); err != nil {
		t.Fatal(err)
	}
	if err := lm.Release(ctx, "R", "hot"); err != nil {
		t.Fatal(err)
	}
}
