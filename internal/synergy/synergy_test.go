package synergy

import (
	"fmt"
	"sync"
	"testing"

	"synergy/internal/core"
	"synergy/internal/phoenix"
	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

// companySystem deploys the Company schema with a small deterministic
// dataset: 4 addresses, 2 departments, 6 employees, 2 projects, works_on
// rows, dependents.
func companySystem(t *testing.T) *System {
	t.Helper()
	workload := append(schema.CompanyWorkload(),
		"UPDATE Employee SET EName = ? WHERE EID = ?", // forces a maintenance index
	)
	sys, err := New(schema.Company(), schema.CompanyRoots(), workload, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var addresses, departments, employees, projects, worksOn, dependents []schema.Row
	for a := int64(1); a <= 4; a++ {
		addresses = append(addresses, schema.Row{
			"AID": a, "Street": fmt.Sprintf("street-%d", a), "City": "Springfield", "Zip": fmt.Sprintf("%05d", a),
		})
	}
	for d := int64(1); d <= 2; d++ {
		departments = append(departments, schema.Row{"DNo": d, "DName": fmt.Sprintf("dept-%d", d)})
	}
	for e := int64(1); e <= 6; e++ {
		employees = append(employees, schema.Row{
			"EID": e, "EName": fmt.Sprintf("emp-%d", e),
			"EHome_AID": (e % 4) + 1, "EOffice_AID": ((e + 1) % 4) + 1, "E_DNo": (e % 2) + 1,
		})
	}
	for p := int64(1); p <= 2; p++ {
		projects = append(projects, schema.Row{"PNo": p, "PName": fmt.Sprintf("proj-%d", p), "P_DNo": p})
	}
	for e := int64(1); e <= 6; e++ {
		for p := int64(1); p <= 2; p++ {
			worksOn = append(worksOn, schema.Row{"WO_EID": e, "WO_PNo": p, "Hours": (e*10 + p)})
		}
	}
	dependents = append(dependents, schema.Row{"DP_EID": int64(1), "DPName": "kid", "DPHome_AID": int64(2)})

	for table, rows := range map[string][]schema.Row{
		"Address": addresses, "Department": departments, "Employee": employees,
		"Project": projects, "Works_On": worksOn, "Dependent": dependents,
	} {
		if err := sys.LoadBase(table, rows); err != nil {
			t.Fatalf("load %s: %v", table, err)
		}
	}
	if err := sys.BuildViews(); err != nil {
		t.Fatal(err)
	}
	return sys
}

func companyW1(t *testing.T, sys *System, eid int64) []schema.Row {
	t.Helper()
	sel := sys.Design.Workload.Selects()[0]
	rs, err := sys.Query(sim.NewCtx(), sel, []schema.Value{eid})
	if err != nil {
		t.Fatal(err)
	}
	return rs.Rows
}

func TestViewContentsMatchBaseJoin(t *testing.T) {
	sys := companySystem(t)
	// W1 for employee 3: home address is (3 % 4) + 1 = 4.
	rows := companyW1(t, sys, 3)
	if len(rows) != 1 {
		t.Fatalf("W1 rows = %d, want 1", len(rows))
	}
	if rows[0]["Street"] != "street-4" || rows[0]["EName"] != "emp-3" {
		t.Fatalf("W1 row = %v", rows[0])
	}
}

func TestW2JoinsViewWithBaseTable(t *testing.T) {
	sys := companySystem(t)
	sel := sys.Design.Workload.Selects()[1]
	rs, err := sys.Query(sim.NewCtx(), sel, []schema.Value{int64(1)})
	if err != nil {
		t.Fatal(err)
	}
	// Department 1: employees with E_DNo == 1 are 2, 4, 6; each has 2
	// works_on rows.
	if len(rs.Rows) != 6 {
		t.Fatalf("W2 rows = %d, want 6", len(rs.Rows))
	}
	for _, r := range rs.Rows {
		if r["DName"] != "dept-1" {
			t.Fatalf("W2 row = %v", r)
		}
	}
}

func TestW3UsesViewIndex(t *testing.T) {
	sys := companySystem(t)
	sel := sys.Design.Workload.Selects()[2]
	rs, err := sys.Query(sim.NewCtx(), sel, []schema.Value{int64(31)})
	if err != nil {
		t.Fatal(err)
	}
	// Hours = 31 is employee 3, project 1.
	if len(rs.Rows) != 1 || rs.Rows[0]["EID"].(int64) != 3 {
		t.Fatalf("W3 rows = %v", rs.Rows)
	}
}

func TestInsertMaintainsViews(t *testing.T) {
	sys := companySystem(t)
	ctx := sim.NewCtx()
	// New employee 7 living at address 1.
	ins := sqlparser.MustParse("INSERT INTO Employee (EID, EName, EHome_AID, EOffice_AID, E_DNo) VALUES (?, ?, ?, ?, ?)")
	if err := sys.Exec(ctx, ins, []schema.Value{int64(7), "emp-7", int64(1), int64(2), int64(1)}); err != nil {
		t.Fatal(err)
	}
	rows := companyW1(t, sys, 7)
	if len(rows) != 1 || rows[0]["Street"] != "street-1" {
		t.Fatalf("view row after insert = %v", rows)
	}
	// Insert a works_on row: the view tuple needs the k-1 = 1 read of
	// Employee (§VII-A2).
	ins2 := sqlparser.MustParse("INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)")
	if err := sys.Exec(ctx, ins2, []schema.Value{int64(7), int64(1), int64(99)}); err != nil {
		t.Fatal(err)
	}
	sel := sys.Design.Workload.Selects()[2]
	rs, _ := sys.Query(sim.NewCtx(), sel, []schema.Value{int64(99)})
	if len(rs.Rows) != 1 || rs.Rows[0]["EName"] != "emp-7" {
		t.Fatalf("Employee-Works_On after insert = %v", rs.Rows)
	}
}

func TestSingleLockPerTransaction(t *testing.T) {
	sys := companySystem(t)
	ctx := sim.NewCtx()
	ins := sqlparser.MustParse("INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)")
	if err := sys.Exec(ctx, ins, []schema.Value{int64(2), int64(3), int64(55)}); err != nil {
		t.Fatal(err)
	}
	// The paper's core invariant (§III-2, §VIII-A): one lock per write
	// transaction.
	if got := ctx.Snapshot().Locks; got != 1 {
		t.Fatalf("locks per transaction = %d, want exactly 1", got)
	}
}

func TestDeletePropagatesToViews(t *testing.T) {
	sys := companySystem(t)
	ctx := sim.NewCtx()
	del := sqlparser.MustParse("DELETE FROM Works_On WHERE WO_EID = ? AND WO_PNo = ?")
	if err := sys.Exec(ctx, del, []schema.Value{int64(3), int64(1)}); err != nil {
		t.Fatal(err)
	}
	sel := sys.Design.Workload.Selects()[2]
	rs, _ := sys.Query(sim.NewCtx(), sel, []schema.Value{int64(31)})
	if len(rs.Rows) != 0 {
		t.Fatalf("deleted works_on still in view: %v", rs.Rows)
	}
}

func TestUpdatePropagatesByViewKey(t *testing.T) {
	sys := companySystem(t)
	ctx := sim.NewCtx()
	up := sqlparser.MustParse("UPDATE Employee SET EName = ? WHERE EID = ?")
	if err := sys.Exec(ctx, up, []schema.Value{"renamed", int64(3)}); err != nil {
		t.Fatal(err)
	}
	// Address-Employee (last = Employee): by view key.
	rows := companyW1(t, sys, 3)
	if len(rows) != 1 || rows[0]["EName"] != "renamed" {
		t.Fatalf("Address-Employee after update = %v", rows)
	}
	// Employee-Works_On: multi-row via maintenance index.
	sel := sys.Design.Workload.Selects()[2]
	rs, _ := sys.Query(sim.NewCtx(), sel, []schema.Value{int64(31)})
	if len(rs.Rows) != 1 || rs.Rows[0]["EName"] != "renamed" {
		t.Fatalf("Employee-Works_On after update = %v", rs.Rows)
	}
}

func TestUpdateMultiRowUsesMaintenanceIndex(t *testing.T) {
	sys := companySystem(t)
	// The design must have derived a maintenance index for updates on
	// Employee within Employee-Works_On.
	var found bool
	for _, ix := range sys.Design.ViewIndexes {
		if ix.Maintenance && ix.View.DisplayName() == "Employee-Works_On" {
			found = true
		}
	}
	if !found {
		t.Fatal("maintenance index missing from design")
	}
}

func TestNoDirtyRowEverVisible(t *testing.T) {
	sys := companySystem(t)
	sel := sys.Design.Workload.Selects()[2] // scans Employee-Works_On via index or view
	full, err := sqlparser.ParseSelect("SELECT * FROM Employee as e, Works_On as wo WHERE e.EID = wo.WO_EID and wo.Hours > 0")
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: repeatedly rename employee 2 (multi-row view update)
		defer wg.Done()
		up := sqlparser.MustParse("UPDATE Employee SET EName = ? WHERE EID = ?")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("name-%d", i)
			if err := sys.Exec(sim.NewCtx(), up, []schema.Value{name, int64(2)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for i := 0; i < 30; i++ {
		ctx := sim.NewCtx()
		rs, err := sys.Query(ctx, full, nil)
		if err != nil {
			t.Fatalf("reader error (restart budget exceeded?): %v", err)
		}
		for _, r := range rs.Rows {
			if r[phoenix.DirtyQualifier] != nil {
				t.Fatalf("dirty marker leaked into results: %v", r)
			}
		}
		_ = sel
	}
	close(stop)
	wg.Wait()
}

func TestConcurrentWritersSerializeOnRootLock(t *testing.T) {
	sys := companySystem(t)
	// Employees 2 and 6 share home address 3 -> same root row lock.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			up := sqlparser.MustParse("UPDATE Employee SET EName = ? WHERE EID = ?")
			eid := int64(2)
			if i%2 == 0 {
				eid = 6
			}
			if err := sys.Exec(sim.NewCtx(), up, []schema.Value{fmt.Sprintf("w%d", i), eid}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	// Both employees must have a consistent final name in base and views.
	for _, eid := range []int64{2, 6} {
		base, _ := sqlparser.ParseSelect("SELECT EName FROM Employee WHERE EID = ?")
		rs, err := sys.Engine.Query(sim.NewCtx(), base, []schema.Value{eid})
		if err != nil || len(rs.Rows) != 1 {
			t.Fatalf("base read: %v %v", rs, err)
		}
		want := rs.Rows[0]["EName"]
		viewRows := companyW1(t, sys, eid)
		if len(viewRows) != 1 || viewRows[0]["EName"] != want {
			t.Fatalf("view/base divergence for %d: %v vs %v", eid, viewRows, want)
		}
	}
}

func TestLockMutualExclusion(t *testing.T) {
	sys := companySystem(t)
	lm := sys.Locks
	ctx := sim.NewCtx()
	key := schema.EncodeKey(int64(1))
	if err := lm.Acquire(ctx, "Address", key); err != nil {
		t.Fatal(err)
	}
	// A second acquire must spin; run it in a goroutine and release.
	done := make(chan error, 1)
	go func() {
		done <- lm.Acquire(sim.NewCtx(), "Address", key)
	}()
	if err := lm.Release(ctx, "Address", key); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := lm.Release(ctx, "Address", key); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseWithoutHoldFails(t *testing.T) {
	sys := companySystem(t)
	if err := sys.Locks.Release(sim.NewCtx(), "Address", schema.EncodeKey(int64(1))); err == nil {
		t.Fatal("release of a free lock should fail")
	}
}

func TestRootKeyResolution(t *testing.T) {
	sys := companySystem(t)
	stmt := sqlparser.MustParse("INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)")
	plan, err := core.PlanWrite(sys.Design, stmt)
	if err != nil {
		t.Fatal(err)
	}
	row := schema.Row{"WO_EID": int64(3), "WO_PNo": int64(1), "Hours": int64(1)}
	key, err := sys.resolveRootKey(sim.NewCtx(), sys.Engine.Client(), plan, row)
	if err != nil {
		t.Fatal(err)
	}
	// Employee 3's home address is 4.
	if want := schema.EncodeKey(int64(4)); key != want {
		t.Fatalf("root key = %q, want address 4", key)
	}
}

func TestTxnLayerFailover(t *testing.T) {
	sys := companySystem(t)
	ctx := sim.NewCtx()

	// Arm the crash hook on every slave so whichever gets the statement
	// dies after WAL append, before execution.
	for _, s := range sys.Txn.Slaves() {
		s.KillBeforeNextExec()
	}
	ins := sqlparser.MustParse("INSERT INTO Employee (EID, EName, EHome_AID, EOffice_AID, E_DNo) VALUES (?, ?, ?, ?, ?)")
	params := []schema.Value{int64(42), "phoenix-rise", int64(1), int64(1), int64(1)}
	if err := sys.Exec(ctx, ins, params); err == nil {
		t.Fatal("expected mid-transaction crash")
	}

	// The insert must not be visible yet.
	if rows := companyW1(t, sys, 42); len(rows) != 0 {
		t.Fatalf("uncommitted write visible before recovery: %v", rows)
	}

	// Master detects the dead slave and replays its WAL.
	recovered, err := sys.Txn.DetectAndRecover(sim.NewCtx())
	if err != nil {
		t.Fatal(err)
	}
	if recovered == 0 {
		t.Fatal("no slave recovered")
	}
	rows := companyW1(t, sys, 42)
	if len(rows) != 1 || rows[0]["EName"] != "phoenix-rise" {
		t.Fatalf("WAL replay lost the write: %v", rows)
	}

	// The layer keeps accepting work afterwards.
	up := sqlparser.MustParse("UPDATE Employee SET EName = ? WHERE EID = ?")
	if err := sys.Exec(sim.NewCtx(), up, []schema.Value{"post-recovery", int64(42)}); err != nil {
		t.Fatal(err)
	}
}

func TestCommittedWALNotReplayed(t *testing.T) {
	sys := companySystem(t)
	ins := sqlparser.MustParse("INSERT INTO Department (DNo, DName) VALUES (?, ?)")
	if err := sys.Exec(sim.NewCtx(), ins, []schema.Value{int64(9), "dept-9"}); err != nil {
		t.Fatal(err)
	}
	// Kill all slaves; recovery must not duplicate the committed insert
	// (idempotent here, but replay of committed txids must be skipped —
	// observable via the WAL length of the replacement slaves).
	for _, s := range sys.Txn.Slaves() {
		s.Kill()
	}
	if _, err := sys.Txn.DetectAndRecover(sim.NewCtx()); err != nil {
		t.Fatal(err)
	}
	for _, s := range sys.Txn.Slaves() {
		n, err := sys.FS.Length(s.walPath)
		if err != nil {
			t.Fatal(err)
		}
		if n != 0 {
			t.Fatalf("replacement slave WAL not empty (%d bytes): committed records were replayed", n)
		}
	}
}

func TestDatabaseBytesGrowWithViews(t *testing.T) {
	baseline, err := New(schema.Company(), schema.CompanyRoots(), schema.CompanyWorkload(), Config{DisableViews: true})
	if err != nil {
		t.Fatal(err)
	}
	withViews := companySystem(t)
	// Same base rows into baseline.
	var employees []schema.Row
	for e := int64(1); e <= 6; e++ {
		employees = append(employees, schema.Row{
			"EID": e, "EName": fmt.Sprintf("emp-%d", e),
			"EHome_AID": (e % 4) + 1, "EOffice_AID": ((e + 1) % 4) + 1, "E_DNo": (e % 2) + 1,
		})
	}
	if err := baseline.LoadBase("Employee", employees); err != nil {
		t.Fatal(err)
	}
	if withViews.DatabaseBytes() <= baseline.DatabaseBytes() {
		t.Fatal("views should increase disk utilization (Table III)")
	}
}
