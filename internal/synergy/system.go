// Package synergy assembles the full Synergy system of §IV and §VIII: the
// HBase layer (store + distributed FS + coordination), the Phoenix-style SQL
// layer with the selected materialized views and view-indexes registered,
// the hierarchical lock manager, and the transaction layer (master + slaves
// with write-ahead logging) that executes the auto-generated write plans.
package synergy

import (
	"fmt"
	"sort"

	"synergy/internal/changefeed"
	"synergy/internal/cluster"
	"synergy/internal/core"
	"synergy/internal/hbase"
	"synergy/internal/mvcc"
	"synergy/internal/occ"
	"synergy/internal/phoenix"
	"synergy/internal/schema"
	"synergy/internal/sdfs"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
	"synergy/internal/zk"
)

// IndexSpec names a base-table covered index supplied with the input schema
// (§VI-C: "we assume that the input schema has necessary base table
// indexes").
type IndexSpec struct {
	Table string
	Name  string
	On    []string
}

// ConcurrencyMode selects the concurrency control mechanism (Figure 13).
type ConcurrencyMode int

const (
	// Hierarchical is Synergy's single-lock-per-transaction control
	// (§VIII).
	Hierarchical ConcurrencyMode = iota
	// MVCC replaces the Synergy transaction layer with the Tephra-like
	// snapshot transaction server, as the MVCC-A, MVCC-UA and Baseline
	// systems do (§IX-D2).
	MVCC
	// OCC keeps the Synergy transaction layer (WAL-logged slaves) but
	// replaces the hierarchical locks with backward-validation optimistic
	// concurrency control (Larson et al.): transactions run lock-free
	// against a begin-timestamp snapshot, record read and write sets, and
	// validate at commit — aborting and retrying with bounded backoff when
	// a concurrently committed write set overlaps what they read. The
	// third column of the contention comparison next to Hierarchical and
	// MVCC.
	OCC
)

// MaintenanceMode selects how a materialized view is kept up to date with
// its base tables.
type MaintenanceMode int

const (
	// SyncMaintenance is the paper's §VIII-B protocol: the writing
	// statement maintains every view before it returns.
	SyncMaintenance MaintenanceMode = iota
	// AsyncMaintenance takes all view upkeep off the critical path: the
	// commit publishes deltas to the changefeed and background appliers
	// replay the maintenance procedures; reads may observe staleness.
	AsyncMaintenance
	// HybridMaintenance keeps inserts and deletes synchronous (a view
	// tuple's existence is never stale) but defers the multi-row updates —
	// the expensive marked phase — to the changefeed.
	HybridMaintenance
)

// ViewReadMode selects what a read does when it touches an asynchronously
// maintained view.
type ViewReadMode int

const (
	// ReadStale accepts whatever the view holds, recording the observed
	// staleness (lag behind the reader's snapshot) in sim.Stats.
	ReadStale ViewReadMode = iota
	// ReadWatermark blocks before the snapshot is taken until every async
	// view the query touches has applied all deltas up to the read's
	// arrival point, charging the reader the wait.
	ReadWatermark
)

// Config parameterizes system construction.
type Config struct {
	// Costs overrides the latency calibration (nil = defaults).
	Costs *sim.Costs
	// BaseIndexes lists the input schema's base-table indexes.
	BaseIndexes []IndexSpec
	// Slaves is the number of transaction-layer slaves (default 2).
	Slaves int
	// MaxVersions for created tables (default 1; MVCC deployments use
	// more).
	MaxVersions int
	// DisableViews deploys only the baseline transformation (used to
	// stand up the Baseline and MVCC-UA systems on shared plumbing).
	DisableViews bool
	// SplitThreshold overrides region split size (0 = store default).
	SplitThreshold int
	// Concurrency selects hierarchical locking (Synergy), MVCC
	// (Phoenix-Tephra style) or OCC (backward validation).
	Concurrency ConcurrencyMode
	// SequentialWrites disables the batched mutation pipeline: every
	// mutation of the write path pays its own RPC, as the pre-batching
	// client did. Kept for batched-vs-sequential parity tests and
	// benchmarks (and the figure harness, matching the paper's testbed).
	SequentialWrites bool
	// StatementFlush keeps batching but flushes one batch per statement
	// instead of buffering across a whole transaction — the PR-2 pipeline,
	// kept as the baseline the transaction-scoped pipeline is measured
	// against. Ignored when SequentialWrites is set (which is stricter).
	StatementFlush bool
	// Maintenance is the default view-maintenance mode (SyncMaintenance
	// keeps the historical behavior).
	Maintenance MaintenanceMode
	// ViewMaintenance overrides the maintenance mode per view name.
	ViewMaintenance map[string]MaintenanceMode
	// AsyncReads selects the read behavior against async-maintained views
	// (default ReadStale).
	AsyncReads ViewReadMode
	// AsyncQueueCap bounds each view's changefeed lane; a full lane blocks
	// the committing writer (default 1024).
	AsyncQueueCap int
	// AsyncBatchMax caps the deltas an applier drains per batch (default 32).
	AsyncBatchMax int
}

// System is a deployed Synergy instance.
type System struct {
	Cluster *cluster.Cluster
	FS      *sdfs.FS
	ZK      *zk.Ensemble
	Store   *hbase.HCluster
	Catalog *phoenix.Catalog
	Engine  *phoenix.Engine
	Design  *core.Design
	Locks   *LockManager
	Txn     *TxnLayer
	// MVCCServer is the transaction server when Concurrency == MVCC.
	MVCCServer *mvcc.Server
	// OCC is the commit-time validation service when Concurrency == OCC.
	OCC *occ.Validator
	// Feed is the asynchronous view-maintenance changefeed; nil when every
	// view is synchronously maintained.
	Feed *changefeed.Feed

	// occPostBegin is a test-only fault-injection hook (like the slave's
	// kill-before-exec): when set, it runs after each OCC transaction
	// attempt begins, so tests can commit a conflicting write inside the
	// validation window deterministically.
	occPostBegin func()

	cfg Config
}

// New builds and deploys a system for the schema, roots and workload: it
// runs the design pipeline (Figure 3), registers base tables, views and
// indexes, creates the lock tables and starts the transaction layer.
func New(sch *schema.Schema, roots []string, workloadSQL []string, cfg Config) (*System, error) {
	if cfg.Costs == nil {
		cfg.Costs = sim.DefaultCosts()
	}
	if cfg.Slaves <= 0 {
		cfg.Slaves = 2
	}
	if cfg.MaxVersions <= 0 {
		cfg.MaxVersions = 1
	}

	w, err := core.ParseWorkload(workloadSQL)
	if err != nil {
		return nil, err
	}
	design, err := core.BuildDesign(sch, roots, w)
	if err != nil {
		return nil, err
	}

	cl := cluster.NewDefault(cfg.Costs)
	fs := sdfs.NewFS(cl, 3)
	ens := zk.NewEnsemble()
	store := hbase.NewHCluster(cl, fs, ens)
	cat := phoenix.NewCatalog(store)

	sys := &System{
		Cluster: cl, FS: fs, ZK: ens, Store: store,
		Catalog: cat, Design: design, cfg: cfg,
	}

	spec := hbase.TableSpec{MaxVersions: cfg.MaxVersions, SplitThreshold: cfg.SplitThreshold}

	// Baseline transformation (§II-D): every relation and base index
	// becomes a NoSQL table.
	for _, r := range sch.Relations() {
		if _, err := cat.RegisterRelation(r, spec); err != nil {
			return nil, err
		}
	}
	for _, ix := range cfg.BaseIndexes {
		if err := cat.RegisterIndex(ix.Table, phoenix.IndexInfo{Name: ix.Name, On: ix.On}, spec); err != nil {
			return nil, err
		}
	}

	if !cfg.DisableViews {
		for _, v := range design.Views {
			if _, err := cat.RegisterView(v.Name(), v.Cols, v.Key, v.Relations, spec); err != nil {
				return nil, err
			}
		}
		for _, ix := range design.ViewIndexes {
			// Query-driven view-indexes are covered (§VI-C);
			// maintenance indexes only locate view rows (§VII-C) and
			// store just the keys.
			info := phoenix.IndexInfo{Name: ix.Name(), On: ix.On, KeyOnly: ix.Maintenance}
			if err := cat.RegisterIndex(ix.View.Name(), info, spec); err != nil {
				return nil, err
			}
		}
	}

	sys.Engine = phoenix.NewEngine(cat)
	if !cfg.DisableViews && (cfg.Maintenance != SyncMaintenance || len(cfg.ViewMaintenance) > 0) {
		sys.Feed = changefeed.New(changefeed.Config{
			QueueCap: cfg.AsyncQueueCap,
			BatchMax: cfg.AsyncBatchMax,
			Costs:    cfg.Costs,
		})
	}
	sys.Locks = NewLockManager(store)
	if err := sys.Locks.CreateLockTables(roots); err != nil {
		return nil, err
	}
	if cfg.Concurrency == MVCC {
		// The transaction server shares the store's timestamp oracle, so
		// snapshot ids order consistently against bulk-loaded cell stamps
		// (a fresh transaction must see the loaded database).
		sys.MVCCServer = mvcc.NewServerWithOracle(cfg.Costs, store.NextTS)
	} else {
		// Hierarchical and OCC both route writes through the WAL-logged
		// transaction layer: an OCC commit is durable exactly like a
		// locked one (statements logged under one txid, the outcome as a
		// commit or abort record), only the concurrency mechanism differs.
		sys.Txn = NewTxnLayer(sys, cfg.Slaves)
		if cfg.Concurrency == OCC {
			// The validator shares the store's oracle so begin snapshots
			// order consistently against every cell stamp.
			sys.OCC = occ.NewValidatorWithOracle(cfg.Costs, store.NextTS)
		}
	}
	return sys, nil
}

// LoadBase bulk-loads rows into a base table (and its base indexes),
// creating lock-table entries for root relations. Rows need not be sorted.
func (sys *System) LoadBase(table string, rows []schema.Row) error {
	info, err := sys.Catalog.Table(table)
	if err != nil {
		return err
	}
	bulk := make([]hbase.BulkRow, 0, len(rows))
	for _, r := range rows {
		key, err := phoenix.PrimaryKey(info, r)
		if err != nil {
			return err
		}
		bulk = append(bulk, hbase.BulkRow{Key: key, Cells: phoenix.RowToCells(r)})
	}
	sort.Slice(bulk, func(i, j int) bool { return bulk[i].Key < bulk[j].Key })
	if err := sys.Store.BulkLoad(table, bulk); err != nil {
		return err
	}
	for _, idx := range info.Indexes {
		ibulk := make([]hbase.BulkRow, 0, len(rows))
		for _, r := range rows {
			ibulk = append(ibulk, hbase.BulkRow{Key: phoenix.IndexKey(info, idx, r), Cells: phoenix.RowToCells(phoenix.IndexRowContent(info, idx, r))})
		}
		sort.Slice(ibulk, func(i, j int) bool { return ibulk[i].Key < ibulk[j].Key })
		if err := sys.Store.BulkLoad(idx.Name, ibulk); err != nil {
			return err
		}
	}
	// §VIII-A: "a lock table entry is created when a tuple is inserted
	// into the root relation".
	if sys.isRoot(table) {
		if err := sys.Locks.BulkCreateEntries(table, bulk); err != nil {
			return err
		}
	}
	return nil
}

func (sys *System) isRoot(table string) bool {
	for _, r := range sys.Design.Roots {
		if r == table {
			return true
		}
	}
	return false
}

// BuildViews materializes every selected view (and its view-indexes) from
// the loaded base tables, then major-compacts everything — the population
// procedure of §IX-D1.
func (sys *System) BuildViews() error {
	if sys.cfg.DisableViews {
		return sys.MajorCompactAll()
	}
	ctx := sim.NewCtx() // population cost is not a measured response time
	for _, v := range sys.Design.Views {
		if err := sys.buildView(ctx, v); err != nil {
			return fmt.Errorf("synergy: building %s: %w", v.DisplayName(), err)
		}
	}
	return sys.MajorCompactAll()
}

// buildView computes the view contents by joining down the path and bulk
// loads the result.
func (sys *System) buildView(ctx *sim.Ctx, v *core.View) error {
	sch := sys.Design.Schema
	// acc holds joined rows keyed by the current relation's PK.
	first := v.Relations[0]
	firstRows, err := sys.Engine.ScanAll(ctx, first, hbase.ReadOpts{})
	if err != nil {
		return err
	}
	acc := map[string]schema.Row{}
	firstRel := sch.Relation(first)
	for _, r := range firstRows {
		acc[rowKeyOf(firstRel.PK, r)] = r
	}
	var joined []schema.Row
	for i, e := range v.Edges {
		child := v.Relations[i+1]
		childRows, err := sys.Engine.ScanAll(ctx, child, hbase.ReadOpts{})
		if err != nil {
			return err
		}
		childRel := sch.Relation(child)
		next := map[string]schema.Row{}
		joined = joined[:0]
		for _, c := range childRows {
			parentKey := rowKeyOf(e.FK, c)
			p, ok := acc[parentKey]
			if !ok {
				continue // dangling FK: inner join drops it
			}
			m := p.Clone()
			for k, val := range c {
				m[k] = val
			}
			next[rowKeyOf(childRel.PK, c)] = m
			joined = append(joined, m)
		}
		acc = next
	}

	info, err := sys.Catalog.Table(v.Name())
	if err != nil {
		return err
	}
	rows := make([]schema.Row, 0, len(acc))
	for _, r := range acc {
		rows = append(rows, r)
	}
	bulk := make([]hbase.BulkRow, 0, len(rows))
	for _, r := range rows {
		key, err := phoenix.PrimaryKey(info, r)
		if err != nil {
			return err
		}
		bulk = append(bulk, hbase.BulkRow{Key: key, Cells: phoenix.RowToCells(r)})
	}
	sort.Slice(bulk, func(i, j int) bool { return bulk[i].Key < bulk[j].Key })
	if err := sys.Store.BulkLoad(v.Name(), bulk); err != nil {
		return err
	}
	for _, idx := range info.Indexes {
		ibulk := make([]hbase.BulkRow, 0, len(rows))
		for _, r := range rows {
			ibulk = append(ibulk, hbase.BulkRow{Key: phoenix.IndexKey(info, idx, r), Cells: phoenix.RowToCells(phoenix.IndexRowContent(info, idx, r))})
		}
		sort.Slice(ibulk, func(i, j int) bool { return ibulk[i].Key < ibulk[j].Key })
		if err := sys.Store.BulkLoad(idx.Name, ibulk); err != nil {
			return err
		}
	}
	return nil
}

func rowKeyOf(cols []string, r schema.Row) string {
	vals := make([]schema.Value, len(cols))
	for i, c := range cols {
		vals[i] = r[c]
	}
	return schema.EncodeKey(vals...)
}

// MajorCompactAll compacts every table (§IX: done after population).
func (sys *System) MajorCompactAll() error {
	for _, t := range sys.Store.Tables() {
		if err := sys.Store.MajorCompact(t); err != nil {
			return err
		}
	}
	return nil
}

// rewriteFor returns the view-based rewrite of a query (identity when views
// are disabled or none apply).
func (sys *System) rewriteFor(sel *sqlparser.SelectStmt) *sqlparser.SelectStmt {
	if sys.cfg.DisableViews {
		return sel
	}
	if rw, ok := sys.Design.Rewritten[sel]; ok {
		return rw.Stmt
	}
	views := core.SelectViewsForQuery(sys.Design.Schema, sys.Design.Candidates.Trees, sel)
	var mat []*core.View
	for _, v := range views {
		if fv := sys.Design.ViewByName(v.Name()); fv != nil {
			mat = append(mat, fv)
		}
	}
	return core.RewriteQuery(sel, mat).Stmt
}

// maintModeFor returns the effective maintenance mode of one view: the
// per-view override when present, else the system default.
func (sys *System) maintModeFor(view string) MaintenanceMode {
	if m, ok := sys.cfg.ViewMaintenance[view]; ok {
		return m
	}
	return sys.cfg.Maintenance
}

// SetAsyncReadMode switches how reads treat asynchronously maintained views
// (the bench harness flips one system between ReadStale probes and
// ReadWatermark barriers). Not safe to call concurrently with queries —
// concurrent callers with different needs use QueryWithReads instead.
func (sys *System) SetAsyncReadMode(m ViewReadMode) { sys.cfg.AsyncReads = m }

// Concurrency reports the deployment's concurrency control mechanism. The
// mode is baked in at construction (it decides which transaction tier
// exists), so a serving layer fronting several modes holds one System per
// mode and routes by this.
func (sys *System) Concurrency() ConcurrencyMode { return sys.cfg.Concurrency }

// DefaultReadMode reports the configured read behavior against
// asynchronously maintained views.
func (sys *System) DefaultReadMode() ViewReadMode { return sys.cfg.AsyncReads }

// asyncViewsIn lists the asynchronously maintained views a (rewritten)
// query reads, including inside derived tables.
func (sys *System) asyncViewsIn(stmt *sqlparser.SelectStmt) []string {
	if sys.Feed == nil {
		return nil
	}
	var out []string
	seen := map[string]bool{}
	var walk func(s *sqlparser.SelectStmt)
	walk = func(s *sqlparser.SelectStmt) {
		for _, ref := range s.From {
			if ref.Sub != nil {
				walk(ref.Sub)
				continue
			}
			if seen[ref.Name] {
				continue
			}
			seen[ref.Name] = true
			info, err := sys.Catalog.Table(ref.Name)
			if err != nil || !info.IsView {
				continue
			}
			if sys.maintModeFor(ref.Name) != SyncMaintenance {
				out = append(out, ref.Name)
			}
		}
	}
	walk(stmt)
	return out
}

// staleObserver returns the OnViewScan hook of a ReadStale query: it records
// (once per view per query) how far behind the reader's snapshot an
// async-maintained view lags. Nil when there is nothing to observe.
func (sys *System) staleObserver(readTS int64, reads ViewReadMode) func(*sim.Ctx, string) error {
	if sys.Feed == nil || reads != ReadStale {
		return nil
	}
	seen := map[string]bool{}
	return func(c *sim.Ctx, view string) error {
		if seen[view] || sys.maintModeFor(view) == SyncMaintenance {
			return nil
		}
		seen[view] = true
		if lag := sys.Feed.StaleBehind(view, readTS); lag > 0 {
			c.CountStaleRead(lag)
		}
		return nil
	}
}

// Query executes a read. Workload queries run their view-based rewrite;
// reads go directly to the HBase layer (Figure 7). Under hierarchical
// locking the dirty-read restart protocol guards view scans (§VIII-C); under
// MVCC the read runs inside a snapshot transaction; under OCC it runs
// against a begin-timestamp snapshot — read-only snapshot reads are
// serializable as of their begin point and need no validation, and the
// snapshot horizon hides commits still flushing, so no dirty marking is
// needed either.
//
// Asynchronously maintained views add a freshness gate. In ReadWatermark
// mode the query waits — before its snapshot is taken, so the snapshot
// includes the applied deltas under every concurrency mode — until each
// async view it touches covers the read's arrival point. In ReadStale mode
// the query runs immediately and records the observed lag per view.
func (sys *System) Query(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) (*phoenix.ResultSet, error) {
	return sys.QueryWithReads(ctx, sel, params, sys.cfg.AsyncReads)
}

// QueryWithReads is Query with an explicit freshness contract for the async
// views the query touches, overriding the configured default for this call
// only. Serving-layer sessions thread their per-session `SET synergy_reads`
// choice through it, so concurrent sessions with different contracts never
// race on the system-wide default.
func (sys *System) QueryWithReads(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value, reads ViewReadMode) (*phoenix.ResultSet, error) {
	cur, err := sys.QueryStreamWithReads(ctx, sel, params, reads)
	if err != nil {
		return nil, err
	}
	return phoenix.DrainCursor(ctx, cur)
}

// QueryStream executes a read as a streaming cursor at the configured
// freshness default. See QueryStreamWithReads.
func (sys *System) QueryStream(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) (phoenix.RowCursor, error) {
	return sys.QueryStreamWithReads(ctx, sel, params, sys.cfg.AsyncReads)
}

// QueryStreamWithReads is QueryWithReads returning a cursor instead of a
// materialized result: non-blocking single-table shapes stream directly off
// the region scanner, so peak memory is one scan chunk regardless of result
// size. The snapshot semantics are identical to QueryWithReads — under MVCC
// the read runs inside a snapshot transaction that stays open for the
// cursor's lifetime and is settled by Close (committed on a clean drain,
// aborted if the cursor saw an error); OCC and hierarchical reads carry no
// per-read transaction state, so their cursors only release the scanner.
// The caller must Close the cursor and check its error.
func (sys *System) QueryStreamWithReads(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value, reads ViewReadMode) (phoenix.RowCursor, error) {
	stmt := sys.rewriteFor(sel)
	if sys.Feed != nil && reads == ReadWatermark {
		arrival := sys.Store.CurrentTS()
		for _, v := range sys.asyncViewsIn(stmt) {
			sys.Feed.WaitWatermark(ctx, v, arrival)
		}
	}
	switch sys.cfg.Concurrency {
	case MVCC:
		tx := sys.MVCCServer.Begin(ctx)
		cur, err := sys.Engine.QueryStreamOpts(ctx, stmt, params, phoenix.QueryOpts{Read: tx.ReadOpts(), OnViewScan: sys.staleObserver(tx.ID(), reads)})
		if err != nil {
			sys.MVCCServer.Abort(ctx, tx)
			return nil, err
		}
		return phoenix.WithClose(cur, func(ctx *sim.Ctx, inner phoenix.RowCursor) error {
			if inner.Err() != nil {
				sys.MVCCServer.Abort(ctx, tx)
				return nil
			}
			return sys.MVCCServer.Commit(ctx, tx)
		}), nil
	case OCC:
		snap := sys.OCC.SnapshotTS(ctx)
		return sys.Engine.QueryStreamOpts(ctx, stmt, params, phoenix.QueryOpts{Read: hbase.SnapshotRead(snap), OnViewScan: sys.staleObserver(snap, reads)})
	}
	return sys.Engine.QueryStreamOpts(ctx, stmt, params, phoenix.QueryOpts{DirtyCheck: true, OnViewScan: sys.staleObserver(sys.Store.CurrentTS(), reads)})
}

// Exec executes a write statement: through the Synergy transaction layer
// under hierarchical locking, or as an MVCC transaction otherwise.
func (sys *System) Exec(ctx *sim.Ctx, stmt sqlparser.Statement, params []schema.Value) error {
	if sys.cfg.Concurrency == MVCC {
		return sys.ExecuteWrite(ctx, stmt, params)
	}
	return sys.Txn.Submit(ctx, stmt, params)
}

// ExecTxn executes stmts as one multi-statement write transaction: all
// statements share one transaction-scoped mutator, reads see the
// transaction's own buffered writes, and commit flushes + WAL-syncs once.
// Under hierarchical locking the transaction routes through the Synergy
// transaction layer (WAL-logged, recoverable); under MVCC it runs as a
// single snapshot transaction.
func (sys *System) ExecTxn(ctx *sim.Ctx, stmts []sqlparser.Statement, paramsList [][]schema.Value) error {
	if sys.cfg.Concurrency == MVCC {
		return sys.ExecuteTxn(ctx, stmts, paramsList)
	}
	return sys.Txn.SubmitTxn(ctx, stmts, paramsList)
}

// DatabaseBytes reports the total storage footprint (tables + indexes +
// views + lock tables), the quantity Table III compares.
func (sys *System) DatabaseBytes() int64 {
	return sys.Store.TotalBytes()
}
