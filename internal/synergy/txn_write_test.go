package synergy

import (
	"fmt"
	"strings"
	"testing"

	"synergy/internal/hbase"
	"synergy/internal/phoenix"
	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

// txnWorkload is a multi-statement TPC-W-like write transaction over the
// fanout fixture: repeated inserts into every leaf (same tables touched
// again and again, which is where cross-statement batching pays), one
// update of a row inserted earlier in the same transaction (read-your-
// writes), and a delete.
func txnWorkload(views int) ([]sqlparser.Statement, [][]schema.Value) {
	var stmts []sqlparser.Statement
	var params [][]schema.Value
	add := func(q string, ps ...schema.Value) {
		stmts = append(stmts, sqlparser.MustParse(q))
		params = append(params, ps)
	}
	for i := 0; i < views; i++ {
		leaf := fmt.Sprintf("Leaf%02d", i)
		for j := 0; j < 2; j++ {
			add(fmt.Sprintf("INSERT INTO %[1]s (%[1]sID, %[1]s_RID, %[1]sVal) VALUES (?, ?, ?)", leaf),
				int64(500+j), int64(1), fmt.Sprintf("tx-%s-%d", leaf, j))
		}
	}
	// Update a row this transaction inserted: the read-before-write and the
	// view-row locate must resolve from the buffer.
	add("UPDATE Leaf00 SET Leaf00Val = ? WHERE Leaf00ID = ?", "tx-updated", int64(500))
	add("DELETE FROM Leaf01 WHERE Leaf01ID = ?", int64(501))
	return stmts, params
}

// dropLockTables filters the lock tables out of a state dump: an aborted
// transaction may legitimately leave a (free) lock entry behind for a root
// row it never ended up inserting.
func dropLockTables(state map[string][]string) map[string][]string {
	out := map[string][]string{}
	for tbl, rows := range state {
		if strings.HasPrefix(tbl, "LK_") {
			continue
		}
		out[tbl] = rows
	}
	return out
}

// TestTxnScopedWriteBatchesAcrossStatements is the PR's acceptance
// criterion: a multi-statement transaction at 4 materialized views issues
// strictly fewer batch RPCs and WAL syncs — and simulates strictly faster —
// under the transaction-scoped pipeline than under the per-statement
// pipeline, while leaving an identical visible state.
func TestTxnScopedWriteBatchesAcrossStatements(t *testing.T) {
	const views, rowsPer = 4, 6
	run := func(cfg Config) (stats sim.Stats, walSyncs int64, state map[string][]string) {
		sys := fanoutSystem(t, views, rowsPer, cfg)
		stmts, params := txnWorkload(views)
		base := sys.Store.WALSyncs()
		ctx := sim.NewCtx()
		if err := sys.ExecTxn(ctx, stmts, params); err != nil {
			t.Fatal(err)
		}
		return ctx.Snapshot(), sys.Store.WALSyncs() - base, dumpState(t, sys)
	}

	txn, txnSyncs, txnState := run(Config{})
	stmt, stmtSyncs, stmtState := run(Config{StatementFlush: true})
	seq, seqSyncs, seqState := run(Config{SequentialWrites: true})

	if txn.RPCs >= stmt.RPCs {
		t.Errorf("txn-scoped RPCs = %d, not below per-statement %d", txn.RPCs, stmt.RPCs)
	}
	if txnSyncs >= stmtSyncs {
		t.Errorf("txn-scoped WAL syncs = %d, not below per-statement %d", txnSyncs, stmtSyncs)
	}
	if txn.Elapsed >= stmt.Elapsed {
		t.Errorf("txn-scoped sim latency %v not below per-statement %v", txn.Elapsed, stmt.Elapsed)
	}
	if stmtSyncs >= seqSyncs {
		t.Errorf("per-statement WAL syncs = %d, not below sequential %d", stmtSyncs, seqSyncs)
	}
	if txn.Elapsed >= seq.Elapsed {
		t.Errorf("txn-scoped sim latency %v not below sequential %v", txn.Elapsed, seq.Elapsed)
	}
	t.Logf("RPCs: txn=%d stmt=%d seq=%d; WAL syncs: txn=%d stmt=%d seq=%d; sim: txn=%v stmt=%v seq=%v",
		txn.RPCs, stmt.RPCs, seq.RPCs, txnSyncs, stmtSyncs, seqSyncs, txn.Elapsed, stmt.Elapsed, seq.Elapsed)

	requireSameState(t, seqState, stmtState)
	requireSameState(t, seqState, txnState)
}

// TestTxnReadYourWrites: a transaction that inserts a row and then updates
// it in a later statement must see its own buffered write — while the store
// and concurrent transactions see nothing until commit.
func TestTxnReadYourWrites(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  Config
	}{
		{"hierarchical", Config{}},
		{"mvcc", Config{Concurrency: MVCC, MaxVersions: 16}},
		{"occ", Config{Concurrency: OCC, MaxVersions: 16}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			sys := fanoutSystem(t, 4, 6, mode.cfg)
			ctx := sim.NewCtx()
			tx := sys.BeginTx(ctx)
			exec := func(q string, params ...schema.Value) {
				t.Helper()
				if err := tx.Exec(ctx, sqlparser.MustParse(q), params); err != nil {
					t.Fatalf("%s: %v", q, err)
				}
			}
			exec("INSERT INTO Leaf00 (Leaf00ID, Leaf00_RID, Leaf00Val) VALUES (?, ?, ?)",
				int64(700), int64(1), "buffered")

			// The store must not have the row yet...
			raw, err := sys.Engine.Client().Get(sim.NewCtx(), "Leaf00", schema.EncodeKey(int64(700)), hbase.ReadOpts{})
			if err != nil {
				t.Fatal(err)
			}
			if !raw.Empty() {
				t.Fatalf("buffered insert leaked to the store: %s", raw)
			}
			// ...and a concurrent reader must not see it.
			sel := sys.Design.Workload.Selects()[0] // Root ⋈ Leaf00 by Leaf00Val
			rs, err := sys.Query(sim.NewCtx(), sel, []schema.Value{"buffered"})
			if err != nil {
				t.Fatal(err)
			}
			if len(rs.Rows) != 0 {
				t.Fatalf("concurrent reader saw %d uncommitted rows", len(rs.Rows))
			}

			// The update's read-before-write (and the view-row locate) must
			// resolve from the transaction's own buffer.
			exec("UPDATE Leaf00 SET Leaf00Val = ? WHERE Leaf00ID = ?", "updated", int64(700))
			if err := tx.Commit(ctx); err != nil {
				t.Fatal(err)
			}

			rs, err = sys.Query(sim.NewCtx(), sel, []schema.Value{"updated"})
			if err != nil {
				t.Fatal(err)
			}
			if len(rs.Rows) != 1 {
				t.Fatalf("committed transaction produced %d rows, want 1 (update lost its own insert)", len(rs.Rows))
			}
			if got := rs.Rows[0]["Leaf00Val"]; !schema.ValuesEqual(got, "updated") {
				t.Fatalf("Leaf00Val = %v, want updated", got)
			}
		})
	}
}

// TestTxnDeleteThenReinsert: a row deleted and re-inserted by later
// statements of the same transaction survives commit — in both
// concurrency configurations (under MVCC this needs the per-statement
// checkpoints; under hierarchical locking flush-time stamping orders the
// tombstone below the re-insert).
func TestTxnDeleteThenReinsert(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  Config
	}{
		{"hierarchical", Config{}},
		{"mvcc", Config{Concurrency: MVCC, MaxVersions: 16}},
		{"occ", Config{Concurrency: OCC, MaxVersions: 16}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			sys := fanoutSystem(t, 2, 4, mode.cfg)
			stmts := []sqlparser.Statement{
				sqlparser.MustParse("DELETE FROM Leaf00 WHERE Leaf00ID = ?"),
				sqlparser.MustParse("INSERT INTO Leaf00 (Leaf00ID, Leaf00_RID, Leaf00Val) VALUES (?, ?, ?)"),
			}
			params := [][]schema.Value{{int64(1)}, {int64(1), int64(1), "reborn"}}
			if err := sys.ExecTxn(sim.NewCtx(), stmts, params); err != nil {
				t.Fatal(err)
			}
			sel := sys.Design.Workload.Selects()[0]
			rs, err := sys.Query(sim.NewCtx(), sel, []schema.Value{"reborn"})
			if err != nil {
				t.Fatal(err)
			}
			if len(rs.Rows) != 1 {
				t.Fatalf("re-inserted row query = %d rows, want 1 (tombstone shadowed the re-insert)", len(rs.Rows))
			}
		})
	}
}

// TestTxnAbortDiscards is the abort-path regression: an aborted transaction
// leaves base tables, views and indexes untouched, holds no locks, and no
// dirty mark survives — in both concurrency configurations.
func TestTxnAbortDiscards(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  Config
	}{
		{"hierarchical", Config{}},
		{"mvcc", Config{Concurrency: MVCC, MaxVersions: 16}},
		{"occ", Config{Concurrency: OCC, MaxVersions: 16}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			sys := fanoutSystem(t, 4, 6, mode.cfg)
			before := dropLockTables(dumpState(t, sys))

			ctx := sim.NewCtx()
			tx := sys.BeginTx(ctx)
			exec := func(q string, params ...schema.Value) {
				t.Helper()
				if err := tx.Exec(ctx, sqlparser.MustParse(q), params); err != nil {
					t.Fatalf("%s: %v", q, err)
				}
			}
			exec("INSERT INTO Leaf00 (Leaf00ID, Leaf00_RID, Leaf00Val) VALUES (?, ?, ?)",
				int64(800), int64(1), "doomed")
			exec("INSERT INTO Root (RID, RVal) VALUES (?, ?)", int64(9), "doomed-root")
			exec("DELETE FROM Leaf01 WHERE Leaf01ID = ?", int64(1))
			if err := tx.Abort(ctx); err != nil {
				t.Fatalf("abort: %v", err)
			}

			after := dropLockTables(dumpState(t, sys))
			requireSameState(t, before, after)
			for tbl, rows := range dumpState(t, sys) {
				for _, r := range rows {
					if strings.Contains(r, phoenix.DirtyQualifier+"=1") {
						t.Fatalf("dirty mark survived abort in %s: %s", tbl, r)
					}
				}
			}

			// Locks must be free again: the same root row must be writable.
			if err := sys.Exec(sim.NewCtx(), sqlparser.MustParse("UPDATE Root SET RVal = ? WHERE RID = ?"),
				[]schema.Value{"post-abort", int64(1)}); err != nil {
				t.Fatalf("write after abort blocked: %v", err)
			}
		})
	}
}

// TestAbortAfterBarrierSemantics pins the documented §VIII-B durability
// caveat: a marked multi-row update's phase barriers flush the transaction
// buffer, and hierarchical locking has no undo log — an abort after such a
// barrier keeps the flushed statement durable (with no dirty mark left and
// locks released), while MVCC makes the same flushed work invisible via
// the invalidated transaction id.
func TestAbortAfterBarrierSemantics(t *testing.T) {
	stmts := []sqlparser.Statement{
		sqlparser.MustParse("UPDATE Root SET RVal = ? WHERE RID = ?"), // barriers under hierarchical
		sqlparser.MustParse("INSERT INTO Nonexistent (X) VALUES (?)"), // aborts the transaction
	}
	params := [][]schema.Value{{"barrier-flushed", int64(1)}, {int64(1)}}
	sel := "SELECT * FROM Root as r, Leaf00 as l WHERE r.RID = l.Leaf00_RID and l.Leaf00Val = ?"

	for _, mode := range []struct {
		name    string
		cfg     Config
		durable bool
	}{
		{"hierarchical", Config{}, true},                            // no undo log: barrier-flushed work survives
		{"mvcc", Config{Concurrency: MVCC, MaxVersions: 16}, false}, // invalidated: invisible
	} {
		t.Run(mode.name, func(t *testing.T) {
			sys := fanoutSystem(t, 4, 6, mode.cfg)
			if err := sys.ExecTxn(sim.NewCtx(), stmts, params); err == nil {
				t.Fatal("transaction against missing table succeeded")
			}
			rs, err := sys.Query(sim.NewCtx(), sqlparser.MustParse(sel).(*sqlparser.SelectStmt),
				[]schema.Value{"Leaf00-0"})
			if err != nil {
				t.Fatal(err)
			}
			if len(rs.Rows) == 0 {
				t.Fatal("fixture query returned nothing")
			}
			got := fmt.Sprint(rs.Rows[0]["RVal"])
			if mode.durable && got != "barrier-flushed" {
				t.Fatalf("RVal = %q; hierarchical barrier-flushed update should be durable", got)
			}
			if !mode.durable && got == "barrier-flushed" {
				t.Fatal("aborted MVCC transaction's flushed update is visible")
			}
			// Either way: no dirty mark survives and the root lock is free.
			for tbl, rows := range dumpState(t, sys) {
				for _, r := range rows {
					if strings.Contains(r, phoenix.DirtyQualifier+"=1") {
						t.Fatalf("dirty mark survived abort in %s: %s", tbl, r)
					}
				}
			}
			if err := sys.Exec(sim.NewCtx(), sqlparser.MustParse("UPDATE Root SET RVal = ? WHERE RID = ?"),
				[]schema.Value{"post-abort", int64(1)}); err != nil {
				t.Fatalf("write after abort blocked: %v", err)
			}
		})
	}
}

// TestAbortUnmarksFlushedDirtyMarks covers the hardening path: when an
// abort happens after a mark phase barrier flushed dirty marks (a failure
// between protocol phases), Abort eagerly un-marks them so readers do not
// restart forever against a dead transaction's marks.
func TestAbortUnmarksFlushedDirtyMarks(t *testing.T) {
	sys := fanoutSystem(t, 1, 4, Config{})
	view := sys.Design.Views[0].Name()
	client := sys.Engine.Client()

	sc, err := client.Scan(sim.NewCtx(), view, hbase.ScanSpec{Sequential: true, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows := sc.All(sim.NewCtx())
	if len(rows) == 0 {
		t.Fatal("fixture view empty")
	}
	key := rows[0].Key

	// Simulate a crashed update phase: the mark is flushed, the un-mark
	// phase never ran.
	ctx := sim.NewCtx()
	tx := sys.BeginTx(ctx)
	if err := client.Put(ctx, view, key, []hbase.Cell{{Qualifier: phoenix.DirtyQualifier, Value: []byte("1")}}); err != nil {
		t.Fatal(err)
	}
	tx.marks = []markRef{{table: view, key: key}}
	if err := tx.Abort(ctx); err != nil {
		t.Fatalf("abort: %v", err)
	}

	got, err := client.Get(sim.NewCtx(), view, key, hbase.ReadOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if phoenix.IsDirty(got) {
		t.Fatalf("dirty mark survived abort: %s", got)
	}
	// And the dirty-checked read path must not restart on the row anymore.
	sel := sys.Design.Workload.Selects()[0]
	if _, err := sys.Query(sim.NewCtx(), sel, []schema.Value{"Leaf00-0"}); err != nil {
		t.Fatalf("query after unmark: %v", err)
	}
}

// TestAbortedTxnNotReplayed: a transaction that aborts writes an abort
// record, so WAL recovery skips it instead of re-applying (or re-failing)
// its statements.
func TestAbortedTxnNotReplayed(t *testing.T) {
	sys := fanoutSystem(t, 2, 4, Config{})
	stmts := []sqlparser.Statement{
		sqlparser.MustParse("INSERT INTO Leaf00 (Leaf00ID, Leaf00_RID, Leaf00Val) VALUES (?, ?, ?)"),
		sqlparser.MustParse("INSERT INTO Nonexistent (X) VALUES (?)"),
	}
	params := [][]schema.Value{{int64(900), int64(1), "ghost"}, {int64(1)}}
	if err := sys.ExecTxn(sim.NewCtx(), stmts, params); err == nil {
		t.Fatal("transaction against missing table succeeded")
	}

	for _, s := range sys.Txn.Slaves() {
		s.Kill()
	}
	if _, err := sys.Txn.DetectAndRecover(sim.NewCtx()); err != nil {
		t.Fatalf("recovery replayed an aborted transaction: %v", err)
	}
	raw, err := sys.Engine.Client().Get(sim.NewCtx(), "Leaf00", schema.EncodeKey(int64(900)), hbase.ReadOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !raw.Empty() {
		t.Fatalf("aborted transaction's write resurrected by replay: %s", raw)
	}
}

// TestTxnGroupedReplay: a multi-statement transaction that died without a
// commit record replays as one transaction and leaves the same state a
// normal execution would.
func TestTxnGroupedReplay(t *testing.T) {
	sys := fanoutSystem(t, 2, 4, Config{})
	slave := sys.Txn.Slaves()[0]
	stmts, params := txnWorkload(2)

	// Log the statements, then die before executing them.
	slave.KillBeforeNextExec()
	if err := slave.ExecuteTxn(sim.NewCtx(), stmts, params); err == nil {
		t.Fatal("expected mid-transaction crash")
	}
	if _, err := sys.Txn.DetectAndRecover(sim.NewCtx()); err != nil {
		t.Fatal(err)
	}

	// A reference system executes the same transaction normally.
	ref := fanoutSystem(t, 2, 4, Config{})
	if err := ref.ExecTxn(sim.NewCtx(), stmts, params); err != nil {
		t.Fatal(err)
	}
	requireSameState(t, dumpState(t, ref), dumpState(t, sys))
}

// TestTxnStatementFlushParity: the per-statement knob reproduces the PR-2
// pipeline — single-statement writes behave identically across the three
// modes (the existing parity suite covers default vs sequential; this pins
// StatementFlush against sequential too).
func TestTxnStatementFlushParity(t *testing.T) {
	seqSys := fanoutSystem(t, 4, 6, Config{SequentialWrites: true})
	stmtSys := fanoutSystem(t, 4, 6, Config{StatementFlush: true})
	writeWorkload(t, seqSys)
	writeWorkload(t, stmtSys)
	requireSameState(t, dumpState(t, seqSys), dumpState(t, stmtSys))
}
