// Package newsql is a VoltDB-like NewSQL engine (§IX-D2): an in-memory,
// horizontally partitioned SQL store executing transactions serially within
// each partition (serializable isolation, Figure 13's "single threaded
// partition processing").
//
// Tables are either partitioned on a single column or replicated. Joins
// between partitioned tables are only supported on equality of their
// partitioning columns — the expressiveness restriction that leaves Q3, Q7,
// Q9 and Q10 of the TPC-W workload unsupported (Figure 12) and forces the
// paper to profile three different partitioning schemes.
package newsql

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/bits"
	"sort"
	"strings"
	"sync"

	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

// Errors reported by the engine.
var (
	ErrUnsupportedJoin = errors.New("newsql: join of partitioned tables must be on partitioning columns")
	ErrUnknownTable    = errors.New("newsql: unknown table")
	ErrKeyRequired     = errors.New("newsql: write must specify the full primary key")
)

// Scheme assigns each table a partitioning column, or "" for replication.
type Scheme struct {
	Name string
	// PartitionBy maps table -> partition column; absent tables are
	// replicated.
	PartitionBy map[string]string
}

// Partitioned reports the partition column of a table ("" = replicated).
func (s Scheme) Partitioned(table string) string { return s.PartitionBy[table] }

// memTable holds one table's rows in one partition, keyed by encoded PK.
type memTable struct {
	rows map[string]schema.Row
}

// partition executes serially: its mutex is the single-threaded execution
// site of the VoltDB model.
type partition struct {
	mu     sync.Mutex
	tables map[string]*memTable
}

func (p *partition) table(name string) *memTable {
	t := p.tables[name]
	if t == nil {
		t = &memTable{rows: map[string]schema.Row{}}
		p.tables[name] = t
	}
	return t
}

// Engine is one deployment under one partitioning scheme.
type Engine struct {
	sch    *schema.Schema
	scheme Scheme
	parts  []*partition
	repl   *partition // replicated tables live here (single logical copy)
	costs  *sim.Costs
}

// New builds an engine with nparts partitions (the paper's cluster hosts 5
// VoltDB daemons).
func New(sch *schema.Schema, scheme Scheme, nparts int, costs *sim.Costs) *Engine {
	if nparts <= 0 {
		nparts = 5
	}
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	e := &Engine{sch: sch, scheme: scheme, costs: costs, repl: &partition{tables: map[string]*memTable{}}}
	for i := 0; i < nparts; i++ {
		e.parts = append(e.parts, &partition{tables: map[string]*memTable{}})
	}
	return e
}

// Scheme returns the engine's partitioning scheme.
func (e *Engine) Scheme() Scheme { return e.scheme }

func (e *Engine) partitionFor(v schema.Value) *partition {
	h := fnv.New64a()
	fmt.Fprintf(h, "%v", v)
	return e.parts[h.Sum64()%uint64(len(e.parts))]
}

// homes returns the partitions holding a table's data.
func (e *Engine) homes(table string) []*partition {
	if e.scheme.Partitioned(table) == "" {
		return []*partition{e.repl}
	}
	return e.parts
}

// Load bulk-inserts rows (setup path; no latency charged).
func (e *Engine) Load(table string, rows []schema.Row) error {
	rel := e.sch.Relation(table)
	if rel == nil {
		return fmt.Errorf("%w: %s", ErrUnknownTable, table)
	}
	pcol := e.scheme.Partitioned(table)
	for _, r := range rows {
		key := pkKey(rel, r)
		if pcol == "" {
			e.repl.table(table).rows[key] = r
			continue
		}
		e.partitionFor(r[pcol]).table(table).rows[key] = r
	}
	return nil
}

func pkKey(rel *schema.Relation, r schema.Row) string {
	vals := make([]schema.Value, len(rel.PK))
	for i, c := range rel.PK {
		vals[i] = r[c]
	}
	return schema.EncodeKey(vals...)
}

// RowCount reports total rows of a table.
func (e *Engine) RowCount(table string) int {
	n := 0
	for _, p := range e.homes(table) {
		p.mu.Lock()
		if t := p.tables[table]; t != nil {
			n += len(t.rows)
		}
		p.mu.Unlock()
	}
	return n
}

// DatabaseBytes reports the packed-tuple storage footprint: VoltDB stores
// typed tuples without per-cell key overhead, which is why its database is
// the smallest in Table III.
func (e *Engine) DatabaseBytes() int64 {
	var total int64
	seen := append([]*partition{e.repl}, e.parts...)
	for _, p := range seen {
		p.mu.Lock()
		for _, t := range p.tables {
			for _, r := range t.rows {
				total += tupleBytes(r) + 8 // tuple header
			}
		}
		p.mu.Unlock()
	}
	return total
}

func tupleBytes(r schema.Row) int64 {
	var n int64
	for _, v := range r {
		switch x := v.(type) {
		case string:
			n += int64(len(x)) + 4
		default:
			n += 8
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// Planning: routing and join-support checks

// analyzeRouting decides single-partition vs multi-partition execution and
// validates join support. It returns the partitions to lock.
func (e *Engine) analyzeRouting(sel *sqlparser.SelectStmt, params []schema.Value) ([]*partition, error) {
	binds := map[string]string{} // binding -> table ("" derived)
	for _, ref := range sel.From {
		if ref.Sub != nil {
			binds[ref.Binding()] = ""
			// Derived tables are validated recursively.
			if _, err := e.analyzeRouting(ref.Sub, params); err != nil {
				return nil, err
			}
			continue
		}
		if e.sch.Relation(ref.Name) == nil {
			return nil, fmt.Errorf("%w: %s", ErrUnknownTable, ref.Name)
		}
		binds[ref.Binding()] = ref.Name
	}

	// Join support: partitioned x partitioned joins must pair the two
	// partitioning columns.
	for _, p := range sel.JoinPredicates() {
		l := p.Left.(sqlparser.ColumnRef)
		r := p.Right.(sqlparser.ColumnRef)
		lt, lok := binds[l.Table]
		rt, rok := binds[r.Table]
		if !lok || !rok || lt == "" || rt == "" {
			continue // derived side: computed result joined at the coordinator
		}
		lp := e.scheme.Partitioned(lt)
		rp := e.scheme.Partitioned(rt)
		if lp == "" || rp == "" {
			continue // replicated side joins freely
		}
		if l.Column != lp || r.Column != rp {
			return nil, fmt.Errorf("%w: %s.%s = %s.%s under scheme %s",
				ErrUnsupportedJoin, l.Table, l.Column, r.Table, r.Column, e.scheme.Name)
		}
	}

	// Routing: a filter binding a partition column to a constant makes
	// the statement single-partition.
	for _, p := range sel.Where {
		if p.Op != sqlparser.OpEq || p.IsJoin() {
			continue
		}
		col, ok := p.Left.(sqlparser.ColumnRef)
		if !ok {
			continue
		}
		table := binds[col.Table]
		if table == "" && col.Table == "" {
			// Unqualified: find the owning table.
			for _, t := range binds {
				if t != "" && e.sch.Relation(t).HasColumn(col.Column) {
					table = t
					break
				}
			}
		}
		if table == "" || e.scheme.Partitioned(table) != col.Column {
			continue
		}
		v, err := constValue(p.Right, params)
		if err != nil {
			continue
		}
		return []*partition{e.partitionFor(v)}, nil
	}

	// Multi-partition read: all partitions participate.
	return e.parts, nil
}

func constValue(expr sqlparser.Expr, params []schema.Value) (schema.Value, error) {
	switch x := expr.(type) {
	case sqlparser.Literal:
		return x.Value, nil
	case sqlparser.Param:
		if x.Index >= len(params) {
			return nil, fmt.Errorf("newsql: missing parameter %d", x.Index)
		}
		return params[x.Index], nil
	default:
		return nil, fmt.Errorf("newsql: not a constant")
	}
}

// lockAll acquires the partitions in address order (deadlock-free) — the
// multi-partition coordinator of the VoltDB model.
func lockAll(parts []*partition) func() {
	sorted := append([]*partition(nil), parts...)
	sort.Slice(sorted, func(i, j int) bool {
		return fmt.Sprintf("%p", sorted[i]) < fmt.Sprintf("%p", sorted[j])
	})
	for _, p := range sorted {
		p.mu.Lock()
	}
	return func() {
		for _, p := range sorted {
			p.mu.Unlock()
		}
	}
}

// ---------------------------------------------------------------------------
// Query execution

// Query executes a SELECT with serializable isolation.
func (e *Engine) Query(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) ([]schema.Row, error) {
	parts, err := e.analyzeRouting(sel, params)
	if err != nil {
		return nil, err
	}
	ctx.Charge(e.costs.NewSQLBase)
	if len(parts) > 1 {
		ctx.Charge(e.costs.NewSQLMultiPartition)
	}
	unlock := lockAll(append(parts, e.repl))
	defer unlock()
	return e.execSelect(ctx, sel, params)
}

// execSelect runs the relational pipeline in memory. Callers hold the
// partition locks.
func (e *Engine) execSelect(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) ([]schema.Row, error) {
	type binding struct {
		name string
		rows []schema.Row
	}
	var bindings []binding
	for _, ref := range sel.From {
		b := binding{name: ref.Binding()}
		if ref.Sub != nil {
			sub, err := e.execSelect(ctx, ref.Sub, params)
			if err != nil {
				return nil, err
			}
			b.rows = sub
		} else {
			for _, p := range e.homes(ref.Name) {
				if t := p.tables[ref.Name]; t != nil {
					for _, r := range t.rows {
						b.rows = append(b.rows, r)
					}
				}
			}
		}
		bindings = append(bindings, b)
	}

	// Qualify tuples as binding.col.
	qualify := func(b binding) []schema.Row {
		out := make([]schema.Row, len(b.rows))
		for i, r := range b.rows {
			q := make(schema.Row, len(r))
			for k, v := range r {
				q[b.name+"."+k] = v
			}
			out[i] = q
		}
		return out
	}

	resolve := func(c sqlparser.ColumnRef, row schema.Row) (schema.Value, bool) {
		if c.Table != "" {
			v, ok := row[c.Table+"."+c.Column]
			return v, ok
		}
		for k, v := range row {
			if strings.HasSuffix(k, "."+c.Column) {
				return v, true
			}
		}
		v, ok := row[c.Column]
		return v, ok
	}

	evalPred := func(p sqlparser.Predicate, row schema.Row) (bool, bool) {
		l, lIsCol := p.Left.(sqlparser.ColumnRef)
		r, rIsCol := p.Right.(sqlparser.ColumnRef)
		var lv, rv schema.Value
		if lIsCol {
			v, ok := resolve(l, row)
			if !ok {
				return false, false
			}
			lv = v
		} else {
			v, err := constValue(p.Left, params)
			if err != nil {
				return false, false
			}
			lv = v
		}
		if rIsCol {
			v, ok := resolve(r, row)
			if !ok {
				return false, false
			}
			rv = v
		} else {
			v, err := constValue(p.Right, params)
			if err != nil {
				return false, false
			}
			rv = v
		}
		cmp := schema.CompareValues(lv, rv)
		switch p.Op {
		case sqlparser.OpEq:
			return cmp == 0, true
		case sqlparser.OpNe:
			return cmp != 0, true
		case sqlparser.OpLt:
			return cmp < 0, true
		case sqlparser.OpLe:
			return cmp <= 0, true
		case sqlparser.OpGt:
			return cmp > 0, true
		case sqlparser.OpGe:
			return cmp >= 0, true
		}
		return false, false
	}

	// resolve2 looks a column up across a pending join pair.
	resolve2 := func(c sqlparser.ColumnRef, l, r schema.Row) (schema.Value, bool) {
		if v, ok := resolve(c, l); ok {
			return v, true
		}
		return resolve(c, r)
	}
	evalPredPair := func(p sqlparser.Predicate, l, r schema.Row) (bool, bool) {
		var lv, rv schema.Value
		if c, isCol := p.Left.(sqlparser.ColumnRef); isCol {
			v, ok := resolve2(c, l, r)
			if !ok {
				return false, false
			}
			lv = v
		} else {
			v, err := constValue(p.Left, params)
			if err != nil {
				return false, false
			}
			lv = v
		}
		if c, isCol := p.Right.(sqlparser.ColumnRef); isCol {
			v, ok := resolve2(c, l, r)
			if !ok {
				return false, false
			}
			rv = v
		} else {
			v, err := constValue(p.Right, params)
			if err != nil {
				return false, false
			}
			rv = v
		}
		cmp := schema.CompareValues(lv, rv)
		switch p.Op {
		case sqlparser.OpEq:
			return cmp == 0, true
		case sqlparser.OpNe:
			return cmp != 0, true
		case sqlparser.OpLt:
			return cmp < 0, true
		case sqlparser.OpLe:
			return cmp <= 0, true
		case sqlparser.OpGt:
			return cmp > 0, true
		case sqlparser.OpGe:
			return cmp >= 0, true
		}
		return false, false
	}

	// Left-deep joins with predicates pushed into the pair loop (never
	// materialize non-matching pairs) and hash buckets on the first
	// connecting equi-join condition (VoltDB executes joins via indexes).
	var current []schema.Row
	for i, b := range bindings {
		qrows := qualify(b)
		if i == 0 {
			kept := qrows[:0]
			for _, row := range qrows {
				ok := true
				for _, p := range sel.Where {
					res, decidable := evalPred(p, row)
					if decidable && !res {
						ok = false
						break
					}
				}
				if ok {
					kept = append(kept, row)
				}
			}
			current = kept
			continue
		}

		// Find an equi-join condition linking current to the new
		// binding: decidable on (l) for one side, on (r) for the other.
		var leftKey, rightKey *sqlparser.ColumnRef
		if len(current) > 0 && len(qrows) > 0 {
			for _, p := range sel.Where {
				if p.Op != sqlparser.OpEq || !p.IsJoin() {
					continue
				}
				lc := p.Left.(sqlparser.ColumnRef)
				rc := p.Right.(sqlparser.ColumnRef)
				_, lInCur := resolve(lc, current[0])
				_, rInNew := resolve(rc, qrows[0])
				if lInCur && rInNew {
					leftKey, rightKey = &lc, &rc
					break
				}
				_, rInCur := resolve(rc, current[0])
				_, lInNew := resolve(lc, qrows[0])
				if rInCur && lInNew {
					leftKey, rightKey = &rc, &lc
					break
				}
			}
		}

		var joined []schema.Row
		tryPair := func(l, r schema.Row) {
			for _, p := range sel.Where {
				res, decidable := evalPredPair(p, l, r)
				if decidable && !res {
					return
				}
			}
			m := make(schema.Row, len(l)+len(r))
			for k, v := range l {
				m[k] = v
			}
			for k, v := range r {
				m[k] = v
			}
			joined = append(joined, m)
		}

		if leftKey != nil {
			buckets := make(map[string][]schema.Row, len(qrows))
			for _, r := range qrows {
				v, _ := resolve(*rightKey, r)
				buckets[fmt.Sprintf("%v", v)] = append(buckets[fmt.Sprintf("%v", v)], r)
			}
			for _, l := range current {
				v, ok := resolve(*leftKey, l)
				if !ok {
					continue
				}
				for _, r := range buckets[fmt.Sprintf("%v", v)] {
					tryPair(l, r)
				}
			}
		} else {
			for _, l := range current {
				for _, r := range qrows {
					tryPair(l, r)
				}
			}
		}
		current = joined
	}
	ctx.Charge(sim.Micros(int64(len(current)+1) * int64(e.costs.NewSQLRow)))

	// Aggregation.
	hasAgg := false
	for _, it := range sel.Items {
		if _, ok := it.Expr.(sqlparser.AggExpr); ok {
			hasAgg = true
		}
	}
	if hasAgg || len(sel.GroupBy) > 0 {
		current = aggregate(sel, current, resolve)
	}

	// Order, limit.
	if len(sel.OrderBy) > 0 {
		n := len(current)
		if n > 1 {
			ctx.Charge(sim.Micros(int64(n) * int64(bits.Len(uint(n))) * int64(e.costs.NewSQLRow)))
		}
		sort.SliceStable(current, func(i, j int) bool {
			for _, o := range sel.OrderBy {
				li, _ := resolve(o.Col, current[i])
				lj, _ := resolve(o.Col, current[j])
				cmp := schema.CompareValues(li, lj)
				if cmp == 0 {
					continue
				}
				if o.Desc {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
	}
	if sel.Limit > 0 && len(current) > sel.Limit {
		current = current[:sel.Limit]
	}

	// Projection to friendly names.
	out := make([]schema.Row, len(current))
	for i, row := range current {
		if sel.Star && !hasAgg {
			pr := make(schema.Row, len(row))
			for k, v := range row {
				short := k
				if idx := strings.LastIndex(k, "."); idx >= 0 {
					short = k[idx+1:]
				}
				if _, dup := pr[short]; dup {
					pr[k] = v // ambiguous: keep qualified
					continue
				}
				pr[short] = v
			}
			out[i] = pr
			continue
		}
		pr := schema.Row{}
		for _, it := range sel.Items {
			name := it.Alias
			switch x := it.Expr.(type) {
			case sqlparser.ColumnRef:
				if name == "" {
					name = x.Column
				}
				v, _ := resolve(x, row)
				pr[name] = v
			case sqlparser.AggExpr:
				if name == "" {
					name = x.String()
				}
				pr[name] = row[aggKey(it)]
			}
		}
		out[i] = pr
	}
	return out, nil
}

func aggKey(it sqlparser.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	return it.Expr.String()
}

func aggregate(sel *sqlparser.SelectStmt, rows []schema.Row, resolve func(sqlparser.ColumnRef, schema.Row) (schema.Value, bool)) []schema.Row {
	type state struct {
		rep    schema.Row
		counts map[string]int64
		sums   map[string]float64
		mins   map[string]schema.Value
		maxs   map[string]schema.Value
	}
	groups := map[string]*state{}
	var order []string
	for _, row := range rows {
		var kb strings.Builder
		for _, g := range sel.GroupBy {
			v, _ := resolve(g, row)
			fmt.Fprintf(&kb, "%v\x00", v)
		}
		k := kb.String()
		st := groups[k]
		if st == nil {
			st = &state{rep: row, counts: map[string]int64{}, sums: map[string]float64{},
				mins: map[string]schema.Value{}, maxs: map[string]schema.Value{}}
			groups[k] = st
			order = append(order, k)
		}
		for _, it := range sel.Items {
			agg, ok := it.Expr.(sqlparser.AggExpr)
			if !ok {
				continue
			}
			name := aggKey(it)
			if agg.Star {
				st.counts[name]++
				continue
			}
			v, ok := resolve(*agg.Arg, row)
			if !ok || v == nil {
				continue
			}
			st.counts[name]++
			switch x := v.(type) {
			case int64:
				st.sums[name] += float64(x)
			case float64:
				st.sums[name] += x
			}
			if cur, ok := st.mins[name]; !ok || schema.CompareValues(v, cur) < 0 {
				st.mins[name] = v
			}
			if cur, ok := st.maxs[name]; !ok || schema.CompareValues(v, cur) > 0 {
				st.maxs[name] = v
			}
		}
	}
	out := make([]schema.Row, 0, len(groups))
	for _, k := range order {
		st := groups[k]
		row := st.rep.Clone()
		for _, it := range sel.Items {
			agg, ok := it.Expr.(sqlparser.AggExpr)
			if !ok {
				continue
			}
			name := aggKey(it)
			switch agg.Fn {
			case "COUNT":
				row[name] = st.counts[name]
			case "SUM":
				if st.counts[name] > 0 {
					s := st.sums[name]
					if s == float64(int64(s)) {
						row[name] = int64(s)
					} else {
						row[name] = s
					}
				}
			case "AVG":
				if st.counts[name] > 0 {
					row[name] = st.sums[name] / float64(st.counts[name])
				}
			case "MIN":
				row[name] = st.mins[name]
			case "MAX":
				row[name] = st.maxs[name]
			}
		}
		out = append(out, row)
	}
	return out
}
