package newsql

import (
	"errors"
	"fmt"

	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

// Exec runs a single-row write transaction (insert, update or delete),
// serialized on the owning partition — serializable isolation by
// construction.
func (e *Engine) Exec(ctx *sim.Ctx, stmt sqlparser.Statement, params []schema.Value) error {
	ctx.Charge(e.costs.NewSQLBase)
	switch s := stmt.(type) {
	case *sqlparser.InsertStmt:
		return e.execInsert(ctx, s, params)
	case *sqlparser.UpdateStmt:
		return e.execUpdate(ctx, s, params)
	case *sqlparser.DeleteStmt:
		return e.execDelete(ctx, s, params)
	default:
		return fmt.Errorf("newsql: unsupported statement %T", stmt)
	}
}

// homeFor locates the partition owning a row of table.
func (e *Engine) homeFor(table string, row schema.Row) (*partition, error) {
	pcol := e.scheme.Partitioned(table)
	if pcol == "" {
		return e.repl, nil
	}
	v, ok := row[pcol]
	if !ok || v == nil {
		return nil, fmt.Errorf("newsql: write to %s must bind partition column %s", table, pcol)
	}
	return e.partitionFor(v), nil
}

func (e *Engine) execInsert(ctx *sim.Ctx, s *sqlparser.InsertStmt, params []schema.Value) error {
	rel := e.sch.Relation(s.Table)
	if rel == nil {
		return fmt.Errorf("%w: %s", ErrUnknownTable, s.Table)
	}
	cols := s.Columns
	if len(cols) == 0 {
		cols = rel.ColumnNames()
	}
	if len(cols) != len(s.Values) {
		return fmt.Errorf("newsql: %d columns, %d values", len(cols), len(s.Values))
	}
	row := schema.Row{}
	for i, c := range cols {
		v, err := constValue(s.Values[i], params)
		if err != nil {
			return err
		}
		row[c] = v
	}
	for _, k := range rel.PK {
		if row[k] == nil {
			return fmt.Errorf("%w: %s.%s", ErrKeyRequired, s.Table, k)
		}
	}
	p, err := e.homeFor(s.Table, row)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.table(s.Table).rows[pkKey(rel, row)] = row
	ctx.Charge(e.costs.NewSQLRow)
	return nil
}

func (e *Engine) keyRowFromWhere(rel *schema.Relation, where []sqlparser.Predicate, params []schema.Value) (schema.Row, error) {
	bound := schema.Row{}
	for _, p := range where {
		col, ok := p.Left.(sqlparser.ColumnRef)
		if !ok || p.Op != sqlparser.OpEq {
			return nil, fmt.Errorf("newsql: write WHERE must be key equality (%s)", p)
		}
		v, err := constValue(p.Right, params)
		if err != nil {
			return nil, err
		}
		bound[col.Column] = v
	}
	for _, k := range rel.PK {
		if bound[k] == nil {
			return nil, fmt.Errorf("%w: %s.%s", ErrKeyRequired, rel.Name, k)
		}
	}
	return bound, nil
}

// findRow locates an existing row by its bound key attributes, searching the
// owning partition when the partition column is bound and all partitions
// otherwise (a multi-partition write).
func (e *Engine) findRow(ctx *sim.Ctx, table string, rel *schema.Relation, bound schema.Row) (*partition, *memTable, string, schema.Row) {
	key := pkKey(rel, bound)
	pcol := e.scheme.Partitioned(table)
	var candidates []*partition
	if pcol == "" {
		candidates = []*partition{e.repl}
	} else if v, ok := bound[pcol]; ok && v != nil {
		candidates = []*partition{e.partitionFor(v)}
	} else {
		candidates = e.parts
		ctx.Charge(e.costs.NewSQLMultiPartition)
	}
	for _, p := range candidates {
		p.mu.Lock()
		t := p.tables[table]
		if t != nil {
			if row, ok := t.rows[key]; ok {
				return p, t, key, row // caller unlocks p
			}
		}
		p.mu.Unlock()
	}
	return nil, nil, "", nil
}

func (e *Engine) execUpdate(ctx *sim.Ctx, s *sqlparser.UpdateStmt, params []schema.Value) error {
	rel := e.sch.Relation(s.Table)
	if rel == nil {
		return fmt.Errorf("%w: %s", ErrUnknownTable, s.Table)
	}
	bound, err := e.keyRowFromWhere(rel, s.Where, params)
	if err != nil {
		return err
	}
	p, t, key, row := e.findRow(ctx, s.Table, rel, bound)
	if p == nil {
		return nil // zero rows affected
	}
	defer p.mu.Unlock()
	updated := row.Clone()
	for _, a := range s.Set {
		v, err := constValue(a.Value, params)
		if err != nil {
			return err
		}
		updated[a.Column] = v
	}
	t.rows[key] = updated
	ctx.Charge(e.costs.NewSQLRow)
	return nil
}

func (e *Engine) execDelete(ctx *sim.Ctx, s *sqlparser.DeleteStmt, params []schema.Value) error {
	rel := e.sch.Relation(s.Table)
	if rel == nil {
		return fmt.Errorf("%w: %s", ErrUnknownTable, s.Table)
	}
	bound, err := e.keyRowFromWhere(rel, s.Where, params)
	if err != nil {
		return err
	}
	p, t, key, _ := e.findRow(ctx, s.Table, rel, bound)
	if p == nil {
		return nil
	}
	defer p.mu.Unlock()
	delete(t.rows, key)
	ctx.Charge(e.costs.NewSQLRow)
	return nil
}

// Fleet runs one engine per partitioning scheme, mirroring the paper's
// methodology: "to profile the performance of the maximum number of joins
// ... we use three different partitioning schemes" (§IX-D2). A query runs on
// the first scheme that supports it.
type Fleet struct {
	Engines []*Engine
}

// NewFleet deploys one engine per scheme and loads each with the same data.
func NewFleet(sch *schema.Schema, schemes []Scheme, nparts int, costs *sim.Costs) *Fleet {
	f := &Fleet{}
	for _, s := range schemes {
		f.Engines = append(f.Engines, New(sch, s, nparts, costs))
	}
	return f
}

// Load loads rows into every engine.
func (f *Fleet) Load(table string, rows []schema.Row) error {
	for _, e := range f.Engines {
		if err := e.Load(table, rows); err != nil {
			return err
		}
	}
	return nil
}

// Query tries each scheme in order; ErrUnsupportedJoin falls through to the
// next. The error of the last engine is returned when none supports it.
func (f *Fleet) Query(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) ([]schema.Row, error) {
	var lastErr error
	for _, e := range f.Engines {
		rows, err := e.Query(ctx, sel, params)
		if err == nil {
			return rows, nil
		}
		lastErr = err
		if !isUnsupported(err) {
			return nil, err
		}
	}
	return nil, lastErr
}

// Exec applies a write to every engine (each scheme's copy must stay
// consistent); the cost is charged once — the paper ran one scheme at a
// time.
func (f *Fleet) Exec(ctx *sim.Ctx, stmt sqlparser.Statement, params []schema.Value) error {
	for i, e := range f.Engines {
		c := ctx
		if i > 0 {
			c = sim.NewCtx() // keep other replicas consistent without double-charging
		}
		if err := e.Exec(c, stmt, params); err != nil {
			return err
		}
	}
	return nil
}

// Supported reports whether any scheme can run the query.
func (f *Fleet) Supported(sel *sqlparser.SelectStmt, params []schema.Value) bool {
	for _, e := range f.Engines {
		if _, err := e.analyzeRouting(sel, params); err == nil {
			return true
		}
	}
	return false
}

// DatabaseBytes reports the footprint of ONE engine (the paper deploys one
// scheme at a time; the fleet exists only to profile all queries).
func (f *Fleet) DatabaseBytes() int64 {
	if len(f.Engines) == 0 {
		return 0
	}
	return f.Engines[0].DatabaseBytes()
}

func isUnsupported(err error) bool {
	return errors.Is(err, ErrUnsupportedJoin)
}
