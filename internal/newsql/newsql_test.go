package newsql

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
)

func microSchema() *schema.Schema {
	s := schema.New()
	s.AddRelation(&schema.Relation{
		Name: "Customer",
		Columns: []schema.Column{
			{Name: "c_id", Type: schema.TInt},
			{Name: "c_uname", Type: schema.TString},
		},
		PK: []string{"c_id"},
	})
	s.AddRelation(&schema.Relation{
		Name: "Orders",
		Columns: []schema.Column{
			{Name: "o_id", Type: schema.TInt},
			{Name: "o_c_id", Type: schema.TInt},
			{Name: "o_total", Type: schema.TFloat},
		},
		PK:  []string{"o_id"},
		FKs: []schema.ForeignKey{{Cols: []string{"o_c_id"}, RefTable: "Customer"}},
	})
	s.AddRelation(&schema.Relation{
		Name: "Country",
		Columns: []schema.Column{
			{Name: "co_id", Type: schema.TInt},
			{Name: "co_name", Type: schema.TString},
		},
		PK: []string{"co_id"},
	})
	return s
}

// scheme partitions Customer by c_id and Orders by o_c_id (co-located
// customer transactions); Country is replicated.
func custScheme() Scheme {
	return Scheme{Name: "by-customer", PartitionBy: map[string]string{
		"Customer": "c_id",
		"Orders":   "o_c_id",
	}}
}

func loadedEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(microSchema(), custScheme(), 5, nil)
	var customers, orders, countries []schema.Row
	for c := int64(1); c <= 20; c++ {
		customers = append(customers, schema.Row{"c_id": c, "c_uname": fmt.Sprintf("u%02d", c)})
		for o := int64(0); o < 3; o++ {
			oid := c*100 + o
			orders = append(orders, schema.Row{"o_id": oid, "o_c_id": c, "o_total": float64(oid)})
		}
	}
	countries = append(countries, schema.Row{"co_id": int64(1), "co_name": "GB"})
	if err := e.Load("Customer", customers); err != nil {
		t.Fatal(err)
	}
	if err := e.Load("Orders", orders); err != nil {
		t.Fatal(err)
	}
	if err := e.Load("Country", countries); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSinglePartitionPointQuery(t *testing.T) {
	e := loadedEngine(t)
	sel := sqlparser.MustParse("SELECT * FROM Customer WHERE c_id = ?").(*sqlparser.SelectStmt)
	rows, err := e.Query(sim.NewCtx(), sel, []schema.Value{int64(7)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["c_uname"] != "u07" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestPartitionKeyJoinSupported(t *testing.T) {
	e := loadedEngine(t)
	sel := sqlparser.MustParse(`SELECT * FROM Customer c, Orders o
		WHERE c.c_id = o.o_c_id AND c.c_id = ?`).(*sqlparser.SelectStmt)
	rows, err := e.Query(sim.NewCtx(), sel, []schema.Value{int64(3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
}

func TestNonPartitionKeyJoinRejected(t *testing.T) {
	e := loadedEngine(t)
	// Joining Orders to Customer on o_id (not the partition column) is
	// the paper's unsupported-join case.
	sel := sqlparser.MustParse(`SELECT * FROM Customer c, Orders o
		WHERE c.c_id = o.o_id`).(*sqlparser.SelectStmt)
	_, err := e.Query(sim.NewCtx(), sel, nil)
	if !errors.Is(err, ErrUnsupportedJoin) {
		t.Fatalf("err = %v, want ErrUnsupportedJoin", err)
	}
}

func TestReplicatedTableJoinsFreely(t *testing.T) {
	e := loadedEngine(t)
	sel := sqlparser.MustParse(`SELECT * FROM Customer c, Country x
		WHERE c.c_id = x.co_id`).(*sqlparser.SelectStmt)
	rows, err := e.Query(sim.NewCtx(), sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
}

func TestMultiPartitionCostsMore(t *testing.T) {
	e := loadedEngine(t)
	sp, mp := sim.NewCtx(), sim.NewCtx()
	point := sqlparser.MustParse("SELECT * FROM Customer WHERE c_id = ?").(*sqlparser.SelectStmt)
	if _, err := e.Query(sp, point, []schema.Value{int64(1)}); err != nil {
		t.Fatal(err)
	}
	full := sqlparser.MustParse("SELECT * FROM Customer").(*sqlparser.SelectStmt)
	if _, err := e.Query(mp, full, nil); err != nil {
		t.Fatal(err)
	}
	if mp.Elapsed() <= sp.Elapsed() {
		t.Fatalf("multi-partition (%v) should cost more than single-partition (%v)", mp.Elapsed(), sp.Elapsed())
	}
}

func TestAggregatesOrderLimit(t *testing.T) {
	e := loadedEngine(t)
	sel := sqlparser.MustParse(`SELECT o_c_id, SUM(o_total) AS tot FROM Orders
		GROUP BY o_c_id ORDER BY tot DESC LIMIT 3`).(*sqlparser.SelectStmt)
	rows, err := e.Query(sim.NewCtx(), sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// Customer 20 has the largest totals.
	if rows[0]["o_c_id"].(int64) != 20 {
		t.Fatalf("top group = %v", rows[0])
	}
}

func TestDerivedTable(t *testing.T) {
	e := loadedEngine(t)
	sel := sqlparser.MustParse(`SELECT * FROM Orders o,
		(SELECT c_id FROM Customer WHERE c_uname = ?) u
		WHERE o.o_c_id = u.c_id`).(*sqlparser.SelectStmt)
	rows, err := e.Query(sim.NewCtx(), sel, []schema.Value{"u05"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
}

func TestInsertUpdateDelete(t *testing.T) {
	e := loadedEngine(t)
	ctx := sim.NewCtx()
	ins := sqlparser.MustParse("INSERT INTO Customer (c_id, c_uname) VALUES (?, ?)")
	if err := e.Exec(ctx, ins, []schema.Value{int64(99), "new"}); err != nil {
		t.Fatal(err)
	}
	if n := e.RowCount("Customer"); n != 21 {
		t.Fatalf("rows = %d, want 21", n)
	}
	up := sqlparser.MustParse("UPDATE Customer SET c_uname = ? WHERE c_id = ?")
	if err := e.Exec(ctx, up, []schema.Value{"renamed", int64(99)}); err != nil {
		t.Fatal(err)
	}
	sel := sqlparser.MustParse("SELECT c_uname FROM Customer WHERE c_id = ?").(*sqlparser.SelectStmt)
	rows, _ := e.Query(ctx, sel, []schema.Value{int64(99)})
	if len(rows) != 1 || rows[0]["c_uname"] != "renamed" {
		t.Fatalf("rows = %v", rows)
	}
	del := sqlparser.MustParse("DELETE FROM Customer WHERE c_id = ?")
	if err := e.Exec(ctx, del, []schema.Value{int64(99)}); err != nil {
		t.Fatal(err)
	}
	if n := e.RowCount("Customer"); n != 20 {
		t.Fatalf("rows after delete = %d, want 20", n)
	}
}

func TestWriteRequiresKey(t *testing.T) {
	e := loadedEngine(t)
	up := sqlparser.MustParse("UPDATE Orders SET o_total = ? WHERE o_c_id = ?")
	if err := e.Exec(sim.NewCtx(), up, []schema.Value{1.0, int64(1)}); !errors.Is(err, ErrKeyRequired) {
		t.Fatalf("err = %v, want ErrKeyRequired", err)
	}
}

func TestSerializablePerPartition(t *testing.T) {
	e := loadedEngine(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			up := sqlparser.MustParse("UPDATE Orders SET o_total = ? WHERE o_id = ? AND o_c_id = ?")
			for i := 0; i < 50; i++ {
				if err := e.Exec(sim.NewCtx(), up, []schema.Value{float64(w*100 + i), int64(101), int64(1)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	sel := sqlparser.MustParse("SELECT o_total FROM Orders WHERE o_id = ? AND o_c_id = ?").(*sqlparser.SelectStmt)
	rows, err := e.Query(sim.NewCtx(), sel, []schema.Value{int64(101), int64(1)})
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows = %v, err = %v", rows, err)
	}
}

func TestFleetFallsBackAcrossSchemes(t *testing.T) {
	sch := microSchema()
	schemes := []Scheme{
		custScheme(),
		{Name: "by-order", PartitionBy: map[string]string{"Customer": "c_id", "Orders": "o_id"}},
	}
	f := NewFleet(sch, schemes, 5, nil)
	var orders []schema.Row
	for o := int64(1); o <= 10; o++ {
		orders = append(orders, schema.Row{"o_id": o, "o_c_id": o % 3, "o_total": float64(o)})
	}
	var customers []schema.Row
	for c := int64(0); c < 3; c++ {
		customers = append(customers, schema.Row{"c_id": c, "c_uname": fmt.Sprintf("u%d", c)})
	}
	if err := f.Load("Orders", orders); err != nil {
		t.Fatal(err)
	}
	if err := f.Load("Customer", customers); err != nil {
		t.Fatal(err)
	}

	// Supported by scheme 1, not scheme 2.
	q1 := sqlparser.MustParse("SELECT * FROM Customer c, Orders o WHERE c.c_id = o.o_c_id").(*sqlparser.SelectStmt)
	rows, err := f.Query(sim.NewCtx(), q1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	if !f.Supported(q1, nil) {
		t.Fatal("q1 should be supported")
	}

	// Supported by neither: Customer x Orders on o_id under scheme 1;
	// under scheme 2 c_id x o_id IS the partition-column pair, so pick a
	// join unsupported in both.
	q2 := sqlparser.MustParse("SELECT * FROM Customer c, Orders o WHERE c.c_id = o.o_total").(*sqlparser.SelectStmt)
	if f.Supported(q2, nil) {
		t.Fatal("q2 should be unsupported in every scheme")
	}
	if _, err := f.Query(sim.NewCtx(), q2, nil); !errors.Is(err, ErrUnsupportedJoin) {
		t.Fatalf("err = %v, want ErrUnsupportedJoin", err)
	}
}

func TestFleetWritesKeepSchemesConsistent(t *testing.T) {
	sch := microSchema()
	f := NewFleet(sch, []Scheme{custScheme(), {Name: "alt", PartitionBy: map[string]string{"Customer": "c_id"}}}, 3, nil)
	ins := sqlparser.MustParse("INSERT INTO Customer (c_id, c_uname) VALUES (?, ?)")
	if err := f.Exec(sim.NewCtx(), ins, []schema.Value{int64(1), "x"}); err != nil {
		t.Fatal(err)
	}
	for i, e := range f.Engines {
		if n := e.RowCount("Customer"); n != 1 {
			t.Fatalf("engine %d rows = %d, want 1", i, n)
		}
	}
}

func TestDatabaseBytesSmallerThanKVFormat(t *testing.T) {
	e := loadedEngine(t)
	bytes := e.DatabaseBytes()
	if bytes <= 0 {
		t.Fatal("expected positive storage")
	}
	// 20 customers + 60 orders + 1 country, packed tuples: well under
	// 16KB — the point of Table III's VoltDB column.
	if bytes > 16*1024 {
		t.Fatalf("packed storage = %d bytes, implausibly large", bytes)
	}
}
