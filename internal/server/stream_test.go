package server

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"runtime"
	"testing"

	"synergy/internal/schema"
	"synergy/internal/synergy"
)

// collectStream drains one query through the streaming client API, returning
// the decoded result and an FNV-64a checksum over every row packet payload.
// The hash is what proves byte-identity on the wire between the server's
// streamed and materialized paths.
func collectStream(t *testing.T, c *Client, sql string) (cols []string, rows []schema.Row, hash uint64) {
	t.Helper()
	rs, err := c.QueryStream(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	h := fnv.New64a()
	cols = append(cols, rs.Columns()...)
	for rs.Next() {
		h.Write(rs.RawBytes())
		row, err := rs.Row()
		if err != nil {
			t.Fatalf("%s: row: %v", sql, err)
		}
		rows = append(rows, row)
	}
	if err := rs.Close(); err != nil {
		t.Fatalf("%s: close: %v", sql, err)
	}
	return cols, rows, h.Sum64()
}

// setStream flips the connection's result-set delivery path.
func setStream(t *testing.T, c *Client, on bool) {
	t.Helper()
	v := "0"
	if on {
		v = "1"
	}
	if err := c.Exec("SET synergy_stream = " + v); err != nil {
		t.Fatal(err)
	}
}

// TestStreamedMaterializedParity runs every result-set shape against every
// backend twice — streamed and materialized — and requires the two paths to
// agree exactly: same columns, same rows in the same order, and identical
// row packet bytes on the wire.
func TestStreamedMaterializedParity(t *testing.T) {
	env := startServer(t, Config{})
	shapes := []struct{ name, sql string }{
		{"point", "SELECT * FROM Root WHERE RID = 2"},
		{"scan", "SELECT * FROM Leaf"},
		{"projection", "SELECT LID, LVal FROM Leaf"},
		{"limit", "SELECT * FROM Leaf LIMIT 2"},
		{"order-by", "SELECT LID FROM Leaf ORDER BY LID DESC LIMIT 3"},
		{"group-by", "SELECT L_RID, COUNT(*) AS n FROM Leaf GROUP BY L_RID"},
		{"aggregate", "SELECT COUNT(*) AS n, MAX(LID) AS hi FROM Leaf"},
		{"join", "SELECT * FROM Root as r, Leaf as l WHERE r.RID = l.L_RID and l.LVal = 'l3'"},
	}
	for _, mode := range []string{"hier", "mvcc", "occ", "mvccdirect", "occdirect"} {
		t.Run(mode, func(t *testing.T) {
			c := env.dial(t, mode)
			for _, shape := range shapes {
				t.Run(shape.name, func(t *testing.T) {
					setStream(t, c, true)
					sCols, sRows, sHash := collectStream(t, c, shape.sql)
					setStream(t, c, false)
					mCols, mRows, mHash := collectStream(t, c, shape.sql)
					if !reflect.DeepEqual(sCols, mCols) {
						t.Fatalf("columns diverge: streamed %v, materialized %v", sCols, mCols)
					}
					if !reflect.DeepEqual(sRows, mRows) {
						t.Fatalf("rows diverge:\nstreamed     %v\nmaterialized %v", sRows, mRows)
					}
					if sHash != mHash {
						t.Fatalf("row packet bytes diverge: streamed %016x, materialized %016x", sHash, mHash)
					}
					if len(sRows) == 0 {
						t.Fatal("shape returned no rows; the parity check is vacuous")
					}
				})
			}
		})
	}
}

// TestStreamedBinaryParity repeats the parity check over the binary row
// protocol (prepared statements), where the encoders differ the most.
func TestStreamedBinaryParity(t *testing.T) {
	env := startServer(t, Config{})
	for _, mode := range []string{"hier", "mvcc", "occ"} {
		c := env.dial(t, mode)
		st, err := c.Prepare(testSelect)
		if err != nil {
			t.Fatal(err)
		}
		query := func() (rows []schema.Row, hash uint64) {
			rs, err := st.QueryStream("l2")
			if err != nil {
				t.Fatal(err)
			}
			h := fnv.New64a()
			for rs.Next() {
				h.Write(rs.RawBytes())
				row, err := rs.Row()
				if err != nil {
					t.Fatal(err)
				}
				rows = append(rows, row)
			}
			if err := rs.Close(); err != nil {
				t.Fatal(err)
			}
			return rows, h.Sum64()
		}
		setStream(t, c, true)
		sRows, sHash := query()
		setStream(t, c, false)
		mRows, mHash := query()
		if !reflect.DeepEqual(sRows, mRows) {
			t.Fatalf("%s: binary rows diverge:\nstreamed     %v\nmaterialized %v", mode, sRows, mRows)
		}
		if sHash != mHash || len(sRows) == 0 {
			t.Fatalf("%s: binary packets diverge (%016x vs %016x over %d rows)",
				mode, sHash, mHash, len(sRows))
		}
		st.Close()
	}
}

// TestStreamInTransaction checks a streamed read inside an explicit
// transaction sees the transaction's own buffered write, exactly like the
// materialized path.
func TestStreamInTransaction(t *testing.T) {
	env := startServer(t, Config{})
	for _, mode := range []string{"hier", "mvcc", "occ"} {
		c := env.dial(t, mode)
		setStream(t, c, true)
		if err := c.Begin(); err != nil {
			t.Fatal(err)
		}
		val := "stream-txn-" + mode
		if err := c.Exec(fmt.Sprintf(
			"INSERT INTO Leaf (LID, L_RID, LVal) VALUES (900, 1, '%s')", val)); err != nil {
			t.Fatal(err)
		}
		_, rows, _ := collectStream(t, c,
			fmt.Sprintf("SELECT * FROM Root as r, Leaf as l WHERE r.RID = l.L_RID and l.LVal = '%s'", val))
		if len(rows) != 1 {
			t.Fatalf("%s: streamed in-txn read saw %d rows, want 1 (own write)", mode, len(rows))
		}
		if err := c.Rollback(); err != nil {
			t.Fatal(err)
		}
	}
}

// streamScanServer serves one MVCC-mode system with a table big enough that
// the server must block mid-stream on the unbuffered in-process pipe (the
// response far exceeds the 4 KiB write buffer).
func streamScanServer(t *testing.T, rows int) (*testEnv, *synergy.System) {
	t.Helper()
	s := schema.New()
	s.AddRelation(&schema.Relation{
		Name: "Big",
		Columns: []schema.Column{
			{Name: "K", Type: schema.TInt},
			{Name: "V", Type: schema.TString},
		},
		PK: []string{"K"},
	})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	sys, err := synergy.New(s, []string{"Big"}, nil,
		synergy.Config{Concurrency: synergy.MVCC, MaxVersions: 16})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]schema.Row, 0, rows)
	for i := 1; i <= rows; i++ {
		data = append(data, schema.Row{"K": int64(i), "V": fmt.Sprintf("padding-%06d", i)})
	}
	if err := sys.LoadBase("Big", data); err != nil {
		t.Fatal(err)
	}
	if err := sys.BuildViews(); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Backends: []Backend{SystemBackend("big", sys)}})
	if err != nil {
		t.Fatal(err)
	}
	env := &testEnv{srv: srv, addr: t.Name()}
	l, err := ListenInproc(env.addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return env, sys
}

// TestStreamClientDisconnectMidScan hangs up while the server is blocked
// writing row packets. The write error must propagate: the cursor closes
// (releasing the scanner and its pooled chunk), the MVCC autocommit
// transaction unpins, the connection tears down, and no goroutine leaks —
// the -race run is what gives the leak check teeth.
func TestStreamClientDisconnectMidScan(t *testing.T) {
	env, sys := streamScanServer(t, 4000)
	before := runtime.NumGoroutine()

	c, err := Dial("inproc", env.addr, "test", "big")
	if err != nil {
		t.Fatal(err)
	}
	setStream(t, c, true)
	rs, err := c.QueryStream("SELECT * FROM Big")
	if err != nil {
		t.Fatal(err)
	}
	// Read a few rows to prove streaming started, then vanish. The server is
	// deep in the result set with tens of KiB still unsent: it is blocked in
	// a row packet write, not done and waiting for the next command.
	for i := 0; i < 3; i++ {
		if !rs.Next() {
			t.Fatalf("stream ended after %d rows", i)
		}
	}
	c.nc.Close()

	waitFor(t, "connection teardown", func() bool { return env.srv.Stats().LiveConns == 0 })
	waitFor(t, "mvcc autocommit txn release", func() bool {
		return sys.MVCCServer.ActiveTxns() == 0
	})
	waitFor(t, "goroutines to drain", func() bool {
		return runtime.NumGoroutine() <= before
	})

	// The server survived: a fresh connection streams the whole table.
	c2, err := Dial("inproc", env.addr, "test", "big")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	setStream(t, c2, true)
	_, rows, _ := collectStream(t, c2, "SELECT * FROM Big")
	if len(rows) != 4000 {
		t.Fatalf("post-disconnect scan saw %d rows, want 4000", len(rows))
	}
}

// TestStreamClientCloseEarlyDrains checks ClientRows.Close after a partial
// read drains the rest of the result set (the protocol has no mid-result
// abort) and leaves the connection synchronized for the next command.
func TestStreamClientCloseEarlyDrains(t *testing.T) {
	env, _ := streamScanServer(t, 1000)
	c, err := Dial("inproc", env.addr, "test", "big")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	setStream(t, c, true)
	rs, err := c.QueryStream("SELECT * FROM Big")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !rs.Next() {
			t.Fatal("stream ended early")
		}
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	// The connection is still in sync: the next query sees every row.
	_, rows, _ := collectStream(t, c, "SELECT * FROM Big")
	if len(rows) != 1000 {
		t.Fatalf("post-early-close scan saw %d rows, want 1000", len(rows))
	}
}

// TestStreamTTFR checks the time-to-first-row sysvar: statement-relative,
// and strictly earlier for a streamed scan than a materialized one over the
// same table (the streamed first row goes out after one region chunk).
func TestStreamTTFR(t *testing.T) {
	env, _ := streamScanServer(t, 4000)
	c, err := Dial("inproc", env.addr, "test", "big")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ttfrAfterScan := func(stream bool) int64 {
		setStream(t, c, stream)
		_, rows, _ := collectStream(t, c, "SELECT * FROM Big")
		if len(rows) != 4000 {
			t.Fatalf("scan saw %d rows", len(rows))
		}
		v, err := c.SysVar("synergy_sim_ttfr_micros")
		if err != nil {
			t.Fatal(err)
		}
		return v.(int64)
	}
	streamed := ttfrAfterScan(true)
	materialized := ttfrAfterScan(false)
	if streamed <= 0 || materialized <= 0 {
		t.Fatalf("ttfr not measured: streamed %d, materialized %d", streamed, materialized)
	}
	if streamed >= materialized {
		t.Fatalf("streamed ttfr %d >= materialized %d; first row did not go out early", streamed, materialized)
	}
}

// TestConcurrentStreaming hammers the streamed path from 8 connections
// across every backend mode at once; run under -race in CI. Each worker
// interleaves streamed scans with writes so cursors and transactions mix.
func TestConcurrentStreaming(t *testing.T) {
	env := startServer(t, Config{})
	const workers, iters = 8, 5
	modes := []string{"hier", "mvcc", "occ"}
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		mode := modes[w%len(modes)]
		base := int64(2000 + 100*w)
		c := env.dial(t, mode)
		go func(c *Client, base int64) {
			done <- func() error {
				if err := c.Exec("SET synergy_stream = 1"); err != nil {
					return err
				}
				for i := int64(0); i < iters; i++ {
					val := fmt.Sprintf("cs-%d-%d", base, i)
					if err := c.Exec(fmt.Sprintf(
						"INSERT INTO Leaf (LID, L_RID, LVal) VALUES (%d, %d, '%s')",
						base+i, (base+i)%4+1, val)); err != nil {
						return err
					}
					rs, err := c.QueryStream(fmt.Sprintf(
						"SELECT * FROM Root as r, Leaf as l WHERE r.RID = l.L_RID and l.LVal = '%s'", val))
					if err != nil {
						return err
					}
					n := 0
					for rs.Next() {
						n++
					}
					if err := rs.Close(); err != nil {
						return err
					}
					if n != 1 {
						return fmt.Errorf("want 1 row for %s, got %d", val, n)
					}
					// Unlimited streamed scan with rows from every worker in
					// flight.
					rs, err = c.QueryStream("SELECT * FROM Leaf")
					if err != nil {
						return err
					}
					for rs.Next() {
					}
					if err := rs.Close(); err != nil {
						return err
					}
				}
				return nil
			}()
		}(c, base)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
