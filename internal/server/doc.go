// Package server is Synergy's serving layer: a MySQL-compatible wire
// listener over per-connection sessions, with admission control above the
// engine.
//
// The wire protocol is the MySQL client/server protocol 4.1 subset a
// database/sql-shaped client needs: handshake, COM_QUERY with text result
// sets, COM_STMT_PREPARE/EXECUTE/CLOSE with binary result sets, COM_PING
// and COM_QUIT. Intentional deviations from the real protocol are listed in
// docs/PROTOCOL.md.
//
// One connection owns one Session — the transaction context. A Session
// unifies the three engine transaction shapes (synergy.Tx for full
// deployments, mvcc.SessionTx and occ.SessionTx for engine-direct ones)
// behind BEGIN/COMMIT/ROLLBACK with autocommit on top: outside an explicit
// transaction every write runs as its own WAL-logged transaction and every
// read as its own snapshot. Sessions pick their concurrency mode
// (`SET synergy_mode`) by switching between the server's named backends —
// one deployed engine per mode — and their freshness contract
// (`SET synergy_reads`) per session, never racing on a global default.
//
// Above the sessions sits the admission Gate: a fixed number of statement
// execution slots plus a bounded wait queue. Overload queues callers with
// backpressure instead of melting the engine; past the queue bound the
// server fails fast with a clean "too many connections" error, and a
// mid-transaction disconnect rolls the session's transaction back, releasing
// its locks and snapshots.
//
// All engine work is charged to a per-session sim.Ctx, so wire-served
// latencies are as deterministic as in-process ones; the per-session total
// is readable as `SELECT @@synergy_sim_micros`.
package server
