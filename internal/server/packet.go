package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
)

// maxPacketPayload is the largest payload one wire packet carries; longer
// payloads continue in follow-up packets (standard MySQL framing).
const maxPacketPayload = 0xffffff

// packetConn frames payloads as MySQL packets over a net.Conn: a 3-byte
// little-endian payload length, a 1-byte sequence id, then the payload.
// Sequence ids start at 0 for each command and increment per packet in
// either direction.
type packetConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	seq  uint8
	// rhdr and whdr are reused header scratch. io.ReadFull and the bufio
	// large-write passthrough take their buffers through interfaces, so a
	// per-call stack array would escape — one heap allocation per packet,
	// which a row-streaming loop pays per row.
	rhdr, whdr [4]byte
}

func newPacketConn(c net.Conn) *packetConn {
	return &packetConn{conn: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}
}

// resetSeq starts a new command exchange.
func (p *packetConn) resetSeq() { p.seq = 0 }

// readPacket reads one logical packet, joining continuation packets.
func (p *packetConn) readPacket() ([]byte, error) {
	return p.readPacketInto(nil)
}

// readPacketInto is readPacket reusing buf's capacity when it suffices, so a
// row-streaming loop reads every packet into one scratch slice. The returned
// payload aliases buf (possibly regrown); it is valid only until the next
// readPacketInto with the same buffer.
func (p *packetConn) readPacketInto(buf []byte) ([]byte, error) {
	payload := buf[:0]
	for {
		hdr := p.rhdr[:]
		if _, err := io.ReadFull(p.r, hdr); err != nil {
			return nil, err
		}
		n := int(hdr[0]) | int(hdr[1])<<8 | int(hdr[2])<<16
		p.seq = hdr[3] + 1
		start := len(payload)
		if start+n > cap(payload) {
			grown := make([]byte, start+n)
			copy(grown, payload)
			payload = grown
		} else {
			payload = payload[:start+n]
		}
		if _, err := io.ReadFull(p.r, payload[start:]); err != nil {
			return nil, err
		}
		if n < maxPacketPayload {
			return payload, nil
		}
	}
}

// writePacket writes one logical packet, splitting payloads at the framing
// limit. The caller flushes.
func (p *packetConn) writePacket(payload []byte) error {
	for {
		chunk := payload
		if len(chunk) > maxPacketPayload {
			chunk = chunk[:maxPacketPayload]
		}
		hdr := p.whdr[:]
		hdr[0] = byte(len(chunk))
		hdr[1] = byte(len(chunk) >> 8)
		hdr[2] = byte(len(chunk) >> 16)
		hdr[3] = p.seq
		p.seq++
		if _, err := p.w.Write(hdr); err != nil {
			return err
		}
		if _, err := p.w.Write(chunk); err != nil {
			return err
		}
		if len(payload) < maxPacketPayload {
			return nil
		}
		payload = payload[maxPacketPayload:]
	}
}

func (p *packetConn) flush() error { return p.w.Flush() }

// --------------------------------------------------------------------------
// Length-encoded integers and strings (the protocol's variable-size scalars).

func appendLencInt(b []byte, v uint64) []byte {
	switch {
	case v < 251:
		return append(b, byte(v))
	case v < 1<<16:
		return append(b, 0xfc, byte(v), byte(v>>8))
	case v < 1<<24:
		return append(b, 0xfd, byte(v), byte(v>>8), byte(v>>16))
	default:
		b = append(b, 0xfe)
		return binary.LittleEndian.AppendUint64(b, v)
	}
}

func appendLencBytes(b, s []byte) []byte {
	b = appendLencInt(b, uint64(len(s)))
	return append(b, s...)
}

func appendLencString(b []byte, s string) []byte {
	b = appendLencInt(b, uint64(len(s)))
	return append(b, s...)
}

var errShortPacket = fmt.Errorf("server: truncated packet")

// readLencInt decodes a length-encoded integer at b[off], returning the
// value and the next offset.
func readLencInt(b []byte, off int) (uint64, int, error) {
	if off >= len(b) {
		return 0, 0, errShortPacket
	}
	switch c := b[off]; {
	case c < 251:
		return uint64(c), off + 1, nil
	case c == 0xfc:
		if off+3 > len(b) {
			return 0, 0, errShortPacket
		}
		return uint64(b[off+1]) | uint64(b[off+2])<<8, off + 3, nil
	case c == 0xfd:
		if off+4 > len(b) {
			return 0, 0, errShortPacket
		}
		return uint64(b[off+1]) | uint64(b[off+2])<<8 | uint64(b[off+3])<<16, off + 4, nil
	case c == 0xfe:
		if off+9 > len(b) {
			return 0, 0, errShortPacket
		}
		return binary.LittleEndian.Uint64(b[off+1:]), off + 9, nil
	default:
		return 0, 0, fmt.Errorf("server: invalid length-encoded integer 0x%02x", c)
	}
}

// readLencBytes decodes a length-encoded string at b[off].
func readLencBytes(b []byte, off int) ([]byte, int, error) {
	n, off, err := readLencInt(b, off)
	if err != nil {
		return nil, 0, err
	}
	if off+int(n) > len(b) {
		return nil, 0, errShortPacket
	}
	return b[off : off+int(n)], off + int(n), nil
}

// readNulString reads a NUL-terminated string at b[off].
func readNulString(b []byte, off int) (string, int, error) {
	for i := off; i < len(b); i++ {
		if b[i] == 0 {
			return string(b[off:i]), i + 1, nil
		}
	}
	return "", 0, errShortPacket
}
