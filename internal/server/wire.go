package server

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"

	"synergy/internal/phoenix"
	"synergy/internal/schema"
)

// Commands of the MySQL client/server protocol this server implements.
const (
	comQuit        = 0x01
	comInitDB      = 0x02
	comQuery       = 0x03
	comFieldList   = 0x04
	comPing        = 0x0e
	comStmtPrepare = 0x16
	comStmtExecute = 0x17
	comStmtClose   = 0x19
)

// Column wire types (subset). phoenix results carry int64/float64/string,
// mapped to LONGLONG/DOUBLE/VAR_STRING; the execute decoder accepts the
// common client-sent types beyond those.
const (
	typeTiny       = 0x01
	typeShort      = 0x02
	typeLong       = 0x03
	typeFloat      = 0x04
	typeDouble     = 0x05
	typeNull       = 0x06
	typeLonglong   = 0x08
	typeInt24      = 0x09
	typeVarchar    = 0x0f
	typeNewDecimal = 0xf6
	typeBlob       = 0xfc
	typeVarString  = 0xfd
	typeString     = 0xfe
)

// Capability flags (subset).
const (
	capLongPassword  = 0x00000001
	capConnectWithDB = 0x00000008
	capProtocol41    = 0x00000200
	capTransactions  = 0x00002000
	capSecureConn    = 0x00008000
)

// Status flags.
const (
	statusInTrans    = 0x0001
	statusAutocommit = 0x0002
)

// Error codes (MySQL numbering where a faithful match exists).
const (
	errConCount     = 1040 // too many connections / admission queue full
	errParse        = 1064
	errUnknownCom   = 1047
	errUnknownVar   = 1193
	errWrongVarVal  = 1231
	errLockWait     = 1205
	errDeadlock     = 1213 // concurrency conflict (OCC/MVCC)
	errUnknownTable = 1146
	errUnknownCol   = 1054
	errTooManyStmts = 1461
	errUnknown      = 1105
)

const (
	charsetUTF8   = 33
	charsetBinary = 63
)

// wireTypeOf maps a phoenix column type to its wire type.
func wireTypeOf(t schema.ColType) byte {
	switch t {
	case schema.TInt:
		return typeLonglong
	case schema.TFloat:
		return typeDouble
	default:
		return typeVarString
	}
}

// formatValue renders a value for the text protocol; ok=false means NULL.
func formatValue(v schema.Value) (string, bool) {
	switch x := v.(type) {
	case int64:
		return strconv.FormatInt(x, 10), true
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64), true
	case string:
		return x, true
	default:
		return "", false
	}
}

// appendOK appends an OK packet payload.
func appendOK(b []byte, affected uint64, status uint16, info string) []byte {
	b = append(b, 0x00)
	b = appendLencInt(b, affected)
	b = appendLencInt(b, 0) // last insert id
	b = binary.LittleEndian.AppendUint16(b, status)
	b = binary.LittleEndian.AppendUint16(b, 0) // warnings
	return append(b, info...)
}

// appendErr appends an ERR packet payload.
func appendErr(b []byte, code uint16, sqlState, msg string) []byte {
	b = append(b, 0xff)
	b = binary.LittleEndian.AppendUint16(b, code)
	b = append(b, '#')
	if len(sqlState) != 5 {
		sqlState = "HY000"
	}
	b = append(b, sqlState...)
	return append(b, msg...)
}

// appendEOF appends an EOF packet payload.
func appendEOF(b []byte, status uint16) []byte {
	b = append(b, 0xfe)
	b = binary.LittleEndian.AppendUint16(b, 0) // warnings
	return binary.LittleEndian.AppendUint16(b, status)
}

// columnDef builds a protocol-4.1 column definition packet payload.
func columnDef(name string, wireType byte) []byte {
	b := make([]byte, 0, 64)
	b = appendLencString(b, "def")     // catalog
	b = appendLencString(b, "synergy") // schema
	b = appendLencString(b, "")        // table
	b = appendLencString(b, "")        // org table
	b = appendLencString(b, name)
	b = appendLencString(b, name) // org name
	b = appendLencInt(b, 0x0c)    // fixed-length fields
	charset := uint16(charsetUTF8)
	length := uint32(255 * 3)
	decimals := byte(0)
	switch wireType {
	case typeLonglong:
		charset, length = charsetBinary, 21
	case typeDouble:
		charset, length, decimals = charsetBinary, 22, 31
	}
	b = binary.LittleEndian.AppendUint16(b, charset)
	b = binary.LittleEndian.AppendUint32(b, length)
	b = append(b, wireType)
	b = binary.LittleEndian.AppendUint16(b, 0) // flags
	b = append(b, decimals)
	return append(b, 0x00, 0x00) // filler
}

// textRow builds a text-protocol row packet payload.
func textRow(rs *phoenix.ResultSet, row schema.Row) []byte {
	var b []byte
	for _, col := range rs.Columns {
		s, ok := formatValue(row[col])
		if !ok {
			b = append(b, 0xfb) // NULL
			continue
		}
		b = appendLencString(b, s)
	}
	return b
}

// binaryRow builds a binary-protocol row packet payload (prepared-statement
// result sets): 0x00 header, a null bitmap with bit offset 2, then each
// non-NULL value encoded by its column's wire type.
func binaryRow(rs *phoenix.ResultSet, types []byte, row schema.Row) []byte {
	ncols := len(rs.Columns)
	bitmap := make([]byte, (ncols+7+2)/8)
	b := []byte{0x00}
	b = append(b, bitmap...)
	for i, col := range rs.Columns {
		v := row[col]
		if v == nil {
			pos := i + 2
			b[1+pos/8] |= 1 << (pos % 8)
			continue
		}
		switch types[i] {
		case typeLonglong:
			b = binary.LittleEndian.AppendUint64(b, uint64(v.(int64)))
		case typeDouble:
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.(float64)))
		default:
			s, _ := formatValue(v)
			b = appendLencString(b, s)
		}
	}
	return b
}

// decodeBinaryValue decodes one execute-request parameter of the given wire
// type at b[off], returning a schema.Value (int64, float64 or string).
func decodeBinaryValue(b []byte, off int, wireType byte, unsigned bool) (schema.Value, int, error) {
	need := func(n int) error {
		if off+n > len(b) {
			return errShortPacket
		}
		return nil
	}
	switch wireType {
	case typeNull:
		return nil, off, nil
	case typeTiny:
		if err := need(1); err != nil {
			return nil, 0, err
		}
		if unsigned {
			return int64(b[off]), off + 1, nil
		}
		return int64(int8(b[off])), off + 1, nil
	case typeShort:
		if err := need(2); err != nil {
			return nil, 0, err
		}
		u := binary.LittleEndian.Uint16(b[off:])
		if unsigned {
			return int64(u), off + 2, nil
		}
		return int64(int16(u)), off + 2, nil
	case typeLong, typeInt24:
		if err := need(4); err != nil {
			return nil, 0, err
		}
		u := binary.LittleEndian.Uint32(b[off:])
		if unsigned {
			return int64(u), off + 4, nil
		}
		return int64(int32(u)), off + 4, nil
	case typeLonglong:
		if err := need(8); err != nil {
			return nil, 0, err
		}
		u := binary.LittleEndian.Uint64(b[off:])
		if unsigned && u > math.MaxInt64 {
			// schema.Value carries integers as int64; refuse rather than
			// silently wrap to a negative parameter.
			return nil, 0, fmt.Errorf("server: unsigned BIGINT parameter %d out of range (max %d)", u, int64(math.MaxInt64))
		}
		return int64(u), off + 8, nil
	case typeFloat:
		if err := need(4); err != nil {
			return nil, 0, err
		}
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(b[off:]))), off + 4, nil
	case typeDouble:
		if err := need(8); err != nil {
			return nil, 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b[off:])), off + 8, nil
	case typeVarchar, typeVarString, typeString, typeBlob, typeNewDecimal:
		s, next, err := readLencBytes(b, off)
		if err != nil {
			return nil, 0, err
		}
		return string(s), next, nil
	default:
		return nil, 0, fmt.Errorf("server: unsupported parameter wire type 0x%02x", wireType)
	}
}
